// Command koalasim runs one malleability experiment on the simulated DAS-3
// testbed and reports per-job metrics and aggregates.
//
// Usage:
//
//	koalasim [-workload Wm|Wmr|W'm|W'mr] [-policy FPSMA|EGS|EQUI|FOLD]
//	         [-approach PRA|PWA] [-placement WF|CF|CM|FCM]
//	         [-runs N] [-parallel N] [-seed S] [-reserve N] [-poll SEC]
//	         [-no-background] [-csv FILE] [-stream] [-version]
//	         [-workers http://hostA:8080,http://hostB:8080]
//	         [-cpuprofile FILE] [-memprofile FILE]
//	         [-trace FILE] [-simstats]
//
// With -workers the experiment executes on a remote koalad worker
// (chosen by config fingerprint) instead of in-process, falling back
// to local execution if the worker is unreachable; results are
// byte-identical either way. Remote execution uses the streaming
// aggregation path, so it requires -stream.
//
// -trace writes the run's lifecycle spans (submit, execute, per-
// replication; plus any spans a remote worker streamed back) as JSON.
// -simstats prints the simulation engine's counters after the run —
// events scheduled/fired/canceled, peak pending, grow/shrink decisions
// — collected through a passive hook that never perturbs results.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/backend"
	"repro/internal/buildinfo"
	"repro/internal/experiment"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() { os.Exit(run()) }

// run parses flags and executes the experiment. It returns the process
// exit code instead of calling os.Exit so the profiling defers always
// flush their files, even on error paths.
func run() int {
	version := flag.Bool("version", false, "print version and exit")
	wl := flag.String("workload", "Wm", "workload: Wm, Wmr, W'm, W'mr")
	policy := flag.String("policy", "FPSMA", "malleability policy: FPSMA, EGS, EQUI, FOLD")
	approach := flag.String("approach", "PRA", "job management approach: PRA or PWA")
	placement := flag.String("placement", "WF", "placement policy: WF, CF, CM, FCM")
	runs := flag.Int("runs", 1, "independent runs to pool")
	par := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines for the runs (1 = serial; default: one per CPU)")
	seed := flag.Uint64("seed", 1, "base random seed")
	reserve := flag.Int("reserve", 0, "growth reserve per cluster for local users")
	poll := flag.Float64("poll", 0, "scheduler poll interval in seconds (0 = default)")
	noBg := flag.Bool("no-background", false, "disable bypassing local users")
	csvPath := flag.String("csv", "", "write per-job records to this CSV file")
	stream := flag.Bool("stream", false, "stream per-replication aggregates instead of pooling records (constant memory; quantiles are sketch-approximate; incompatible with -csv)")
	workers := flag.String("workers", "", "comma-separated koalad worker base URLs: execute the experiment on a remote worker instead of in-process (requires -stream)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the experiment to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (after the experiment) to this file")
	tracePath := flag.String("trace", "", "write the run's lifecycle trace (JSON spans) to this file")
	simStats := flag.Bool("simstats", false, "print simulation-engine counters (events, grow/shrink decisions) after the run; in-process execution only")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String("koalasim"))
		return 0
	}
	// Fail bad execution knobs fast, before any simulation state exists.
	if *par < 1 {
		fmt.Fprintf(os.Stderr, "koalasim: -parallel must be at least 1 worker (got %d); omit the flag for one per CPU\n", *par)
		return 1
	}
	if *runs < 1 {
		fmt.Fprintf(os.Stderr, "koalasim: -runs must be at least 1 (got %d)\n", *runs)
		return 1
	}
	if *stream && *csvPath != "" {
		fmt.Fprintln(os.Stderr, "koalasim: -csv needs per-job records, which -stream does not retain")
		return 1
	}
	if *workers != "" && !*stream {
		fmt.Fprintln(os.Stderr, "koalasim: -workers executes remotely on the streaming path; add -stream")
		return 1
	}
	if *simStats && *workers != "" {
		fmt.Fprintln(os.Stderr, "koalasim: -simstats reads the in-process engine; it cannot observe a remote worker's")
		return 1
	}
	var remote *backend.Remote
	if *workers != "" {
		var err error
		log, _ := obs.NewLogger(os.Stderr, obs.LogText, 0)
		remote, err = backend.NewRemote(backend.RemoteOptions{
			Workers: strings.Split(*workers, ","),
			Log:     log,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "koalasim:", err)
			return 1
		}
	}
	spec, err := workload.SpecByName(*wl, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "koalasim:", err)
		return 1
	}

	// Flags are valid: start profiling only now, so a usage error never
	// leaves a truncated profile behind.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "koalasim:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "koalasim:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "koalasim:", err)
			return 1
		}
		defer func() {
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "koalasim:", err)
			}
			f.Close()
		}()
	}
	cfg := experiment.Config{
		Workload:      spec,
		Policy:        *policy,
		Approach:      *approach,
		Placement:     *placement,
		Runs:          *runs,
		Parallelism:   *par,
		Seed:          *seed,
		PollInterval:  *poll,
		GrowthReserve: *reserve,
		NoBackground:  *noBg,
	}
	var collector *obs.SimStats
	if *simStats {
		collector = obs.NewSimStats()
		cfg.SimStats = collector
	}
	// The CLI trace mirrors koalad's run lifecycle: a root span over the
	// whole experiment, an execute span around the backend call, and —
	// via the same context propagation the daemon uses — any spans a
	// remote worker streams back, parented under the execute span.
	var tr *obs.Trace
	var rootSpan string
	if *tracePath != "" {
		tr = obs.NewTrace("")
		rootSpan = tr.StartSpan("", "koalasim", map[string]string{
			"workload": spec.Name, "policy": *policy, "approach": *approach,
			"placement": *placement, "runs": fmt.Sprint(*runs), "seed": fmt.Sprint(*seed),
		})
	}
	finishTrace := func() {
		if tr == nil {
			return
		}
		tr.EndSpan(rootSpan)
		b, err := json.MarshalIndent(tr.Snapshot(), "", "  ")
		if err == nil {
			err = os.WriteFile(*tracePath, append(b, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "koalasim: writing trace:", err)
			return
		}
		fmt.Printf("trace      : written to %s\n", *tracePath)
	}
	printSimStats := func() {
		if collector == nil {
			return
		}
		snap := collector.Snapshot()
		fmt.Printf("sim events : %d scheduled, %d fired, %d canceled (peak pending %d)\n",
			snap.EventsScheduled, snap.EventsFired, snap.EventsCanceled, snap.PendingPeak)
		fmt.Printf("sim ops    : %d grow, %d shrink decisions\n", snap.GrowDecisions, snap.ShrinkDecisions)
		fmt.Printf("sim horizon: %.1f sim-seconds\n", snap.SimHorizon)
	}

	if *stream {
		var res *experiment.StreamResult
		var err error
		ctx := context.Background()
		var execSpan string
		if tr != nil {
			name := "local"
			if remote != nil {
				name = remote.Name()
			}
			execSpan = tr.StartSpan(rootSpan, "execute", map[string]string{"backend": name})
			ctx = obs.ContextWithSpanContext(ctx, obs.SpanContext{TraceID: tr.ID, SpanID: execSpan})
			ctx = obs.ContextWithSpanSink(ctx, tr.Import)
		}
		if remote != nil {
			res, err = remote.RunPoint(ctx, cfg, experiment.StreamHooks{})
		} else {
			res, err = experiment.RunStream(cfg)
		}
		if tr != nil {
			tr.EndSpan(execSpan)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "koalasim:", err)
			return 1
		}
		where := "streamed"
		if remote != nil {
			where = "streamed via workers"
		}
		// Print from the wire summary: identical for local and remote
		// execution (remote results carry no in-process aggregate).
		sum := res.Summary()
		fmt.Printf("experiment : %s/%s/%s placement=%s runs=%d seed=%d (%s)\n",
			*approach, *policy, spec.Name, *placement, *runs, *seed, where)
		fmt.Printf("jobs       : %d finished, %d rejected\n", sum.Jobs, sum.Rejected)
		fmt.Printf("exec time  : %s\n", sum.Exec)
		fmt.Printf("response   : %s\n", sum.Response)
		if sum.Malleable > 0 {
			fmt.Printf("avg procs  : %s\n", sum.AvgProcs)
			fmt.Printf("max procs  : %s\n", sum.MaxProcs)
		}
		fmt.Printf("mean util  : %.1f processors\n", sum.MeanUtilization)
		fmt.Printf("ops/run    : %.1f malleability operations\n", sum.OpsPerRun)
		printSimStats()
		finishTrace()
		return 0
	}

	var execSpan string
	if tr != nil {
		execSpan = tr.StartSpan(rootSpan, "execute", map[string]string{"backend": "local"})
	}
	res, err := experiment.Run(cfg)
	if tr != nil {
		tr.EndSpan(execSpan)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "koalasim:", err)
		return 1
	}

	fmt.Printf("experiment : %s/%s/%s placement=%s runs=%d seed=%d\n",
		*approach, *policy, spec.Name, *placement, *runs, *seed)
	fmt.Printf("jobs       : %d finished", len(res.Pooled))
	rejected := 0
	for _, run := range res.Runs {
		rejected += run.Rejected
	}
	fmt.Printf(", %d rejected\n", rejected)
	fmt.Printf("exec time  : %s\n", stats.Summarize(metrics.ExecTimesOf(res.Pooled)))
	fmt.Printf("response   : %s\n", stats.Summarize(metrics.ResponseTimesOf(res.Pooled)))
	mall := res.MalleableRecords()
	if len(mall) > 0 {
		fmt.Printf("avg procs  : %s\n", stats.Summarize(metrics.AvgProcsOf(mall)))
		fmt.Printf("max procs  : %s\n", stats.Summarize(metrics.MaxProcsOf(mall)))
	}
	fmt.Printf("mean util  : %.1f processors\n", res.MeanUtilization())
	fmt.Printf("ops/run    : %.1f malleability operations\n", res.TotalOps())
	printSimStats()
	finishTrace()

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "koalasim:", err)
			return 1
		}
		defer f.Close()
		if err := metrics.WriteCSV(f, res.Pooled); err != nil {
			fmt.Fprintln(os.Stderr, "koalasim:", err)
			return 1
		}
		fmt.Printf("records    : written to %s\n", *csvPath)
	}
	return 0
}
