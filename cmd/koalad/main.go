// Command koalad is the long-running experiment server: it accepts
// experiment configs as JSON over HTTP, executes them on a bounded run
// pool with the streaming aggregation path (constant memory per run),
// streams per-replication progress as NDJSON and caches completed
// results by the config's canonical content hash — identical
// re-submissions are answered without re-simulating.
//
// Usage:
//
//	koalad [-addr :8080] [-parallel N] [-max-runs N] [-queue N]
//	       [-workers http://hostA:8080,http://hostB:8080] [-role worker]
//	       [-worker-retry-max N] [-worker-timeout D] [-breaker-threshold N]
//	       [-breaker-cooldown D] [-health-interval D]
//	       [-data-dir DIR] [-store-max-bytes N] [-store-max-age D]
//	       [-store-fsync] [-store-gc-interval D] [-pprof]
//	       [-log-format text|json] [-log-level info] [-version]
//
// Endpoints:
//
//	POST /v1/experiments             submit a config (JSON), get a run ID
//	GET  /v1/experiments             list resident runs (id, hash, status, source)
//	GET  /v1/experiments/{id}        status, source, timings + final summary
//	GET  /v1/experiments/{id}/events NDJSON progress stream (replay + follow)
//	GET  /v1/experiments/{id}/trace  the run's lifecycle spans (JSON)
//	POST /v1/runs/execute            internal worker endpoint: submit + follow
//	                                 in one NDJSON response (coordinators
//	                                 dispatch shards here)
//	GET  /healthz                    liveness, version, role, queue gauges
//	GET  /metrics                    Prometheus text metrics
//	GET  /debug/pprof/               live profiling (opt-in via -pprof; the
//	                                 endpoints are unauthenticated)
//
// With -workers the daemon is a multi-node coordinator: admitted runs
// are sharded across the listed worker daemons by config fingerprint
// (the same config always lands on the same worker, so worker stores
// dedupe re-submissions without simulating) and progress streams back
// through the normal event path. Dispatches are fault tolerant: a torn
// stream or 429/5xx is retried -worker-retry-max times with capped
// exponential backoff (jitter is deterministic per run fingerprint), a
// worker that keeps failing trips a per-worker circuit breaker after
// -breaker-threshold consecutive failures (probed again after
// -breaker-cooldown), unhealthy or draining workers are dropped from
// the routing ring by the -health-interval /healthz poll, and a point
// that exhausts every healthy worker fails over to the local backend —
// results are byte-identical on every path (see docs/resilience.md).
// -role worker labels a daemon that only serves execution (it refuses
// -workers, so work cannot be re-forwarded).
//
// With -data-dir the daemon is durable: completed summaries are written
// through to a content-addressed on-disk store, run transitions are
// journaled, and a restart recovers everything — cached results answer
// identical re-POSTs without re-simulating, and runs that were in
// flight when the process died are re-enqueued. -store-max-bytes and
// -store-max-age bound the store; a GC sweep enforces them at startup
// and every -store-gc-interval.
//
// SIGINT/SIGTERM drain gracefully: new submissions are refused while
// admitted runs finish (bounded by -drain-timeout), then the process
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/backend"
	"repro/internal/buildinfo"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/store"
)

// fatal logs an error record and exits: koalad's startup validation
// must fail the process with a clear message, not a stack trace.
func fatal(log *slog.Logger, msg string, attrs ...any) {
	log.Error(msg, attrs...)
	os.Exit(1)
}

func main() {
	version := flag.Bool("version", false, "print version and exit")
	addr := flag.String("addr", ":8080", "listen address")
	par := flag.Int("parallel", runtime.GOMAXPROCS(0), "per-run simulation parallelism for configs that do not set their own (default: one worker per CPU)")
	maxRuns := flag.Int("max-runs", 2, "maximum concurrently executing runs")
	queue := flag.Int("queue", 8, "maximum admitted runs waiting for a slot (beyond it POST returns 429)")
	retain := flag.Int("retain", 256, "terminal runs kept resident (results + event logs); the oldest beyond this are forgotten")
	workers := flag.String("workers", "", "comma-separated worker koalad base URLs (http://host:port): shard runs across them by config fingerprint, with local failover")
	role := flag.String("role", "coordinator", "daemon role: coordinator (dispatches to -workers when set) or worker (execution only; refuses -workers)")
	workerRetryMax := flag.Int("worker-retry-max", 2, "retries per worker dispatch before rerouting/failing over (0 = default, negative = no retries)")
	workerTimeout := flag.Duration("worker-timeout", 2*time.Minute, "abort a worker stream that goes this long without an NDJSON event (negative = no idle watchdog)")
	breakerThreshold := flag.Int("breaker-threshold", 3, "consecutive dispatch failures before a worker's circuit breaker opens (negative = breaker disabled)")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "how long an open breaker waits before admitting a half-open probe dispatch")
	healthInterval := flag.Duration("health-interval", 15*time.Second, "how often the coordinator polls worker /healthz to gate the shard ring (0 = no background polling)")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "how long a shutdown waits for in-flight runs before aborting them")
	enablePprof := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ on the daemon's mux (unauthenticated; enable only on trusted networks)")
	dataDir := flag.String("data-dir", "", "directory for the persistent result store and run journal (empty = in-memory only, results do not survive a restart)")
	storeMaxBytes := flag.Int64("store-max-bytes", 0, "GC bound on the result store's total size in bytes (0 = unbounded)")
	storeMaxAge := flag.Duration("store-max-age", 0, "GC bound on a stored result's age (0 = unbounded)")
	storeFsync := flag.Bool("store-fsync", false, "fsync store writes and journal appends (survives power loss, not just process death; slower)")
	storeGCInterval := flag.Duration("store-gc-interval", 10*time.Minute, "how often the store GC sweep enforces -store-max-bytes/-store-max-age (0 = only at startup)")
	logFormat := flag.String("log-format", obs.LogText, "log output format: text or json (structured either way)")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String("koalad"))
		return
	}

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "koalad: %v\n", err)
		os.Exit(1)
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat, level)
	if err != nil {
		fmt.Fprintf(os.Stderr, "koalad: %v\n", err)
		os.Exit(1)
	}
	// One metrics registry for the whole process: the server's lifecycle
	// histograms, the backend's dispatch RTT and the store's I/O
	// latencies all land here and render together on /metrics.
	metrics := obs.NewRegistry()
	// Validate execution knobs up front: a bad value must fail the
	// process at startup with a clear message, not surface as a wedged
	// pool or a dispatch error minutes into a run.
	if *par < 1 {
		fatal(logger, "koalad: -parallel must be at least 1 simulation worker; omit the flag for one per CPU", "got", *par)
	}
	if *maxRuns < 1 {
		fatal(logger, "koalad: -max-runs must be at least 1", "got", *maxRuns)
	}
	if *queue < 1 {
		fatal(logger, "koalad: -queue must be at least 1", "got", *queue)
	}
	if *retain < 1 {
		fatal(logger, "koalad: -retain must be at least 1", "got", *retain)
	}
	if *role != "coordinator" && *role != "worker" {
		fatal(logger, "koalad: -role must be coordinator or worker", "got", *role)
	}
	if *role == "worker" && *workers != "" {
		fatal(logger, "koalad: -role worker cannot dispatch; drop -workers (a worker must never re-forward runs)")
	}
	var be backend.Backend
	if *workers != "" {
		rb, err := backend.NewRemote(backend.RemoteOptions{
			Workers:          strings.Split(*workers, ","),
			Log:              logger,
			Metrics:          metrics,
			Retry:            backend.RetryPolicy{MaxRetries: *workerRetryMax},
			IdleEventTimeout: *workerTimeout,
			BreakerThreshold: *breakerThreshold,
			BreakerCooldown:  *breakerCooldown,
			HealthInterval:   *healthInterval,
		})
		if err != nil {
			fatal(logger, "koalad: bad -workers", "err", err)
		}
		defer rb.Close()
		be = rb
		logger.Info("koalad: dispatching to workers",
			"count", len(rb.Workers()), "workers", strings.Join(rb.Workers(), ", "),
			"retry_max", *workerRetryMax, "breaker_threshold", *breakerThreshold)
	}
	var st *store.Store
	if *dataDir != "" {
		var err error
		st, err = store.Open(*dataDir, store.Options{Fsync: *storeFsync, Log: logger, Metrics: metrics})
		if err != nil {
			fatal(logger, "koalad: opening data dir", "dir", *dataDir, "err", err)
		}
		defer st.Close()
	}
	srv := server.New(server.Options{
		Parallelism:   *par,
		MaxConcurrent: *maxRuns,
		QueueDepth:    *queue,
		MaxRetained:   *retain,
		Version:       buildinfo.Version(),
		EnablePprof:   *enablePprof,
		Store:         st,
		Backend:       be,
		Role:          *role,
		Log:           logger,
		Metrics:       metrics,
	})
	if st != nil {
		rec, err := srv.Recover()
		if err != nil {
			fatal(logger, "koalad: recovery failed", "dir", *dataDir, "err", err)
		}
		logger.Info("koalad: recovered", "dir", *dataDir, "stats", rec.String())
		runGC := func() {
			if *storeMaxBytes == 0 && *storeMaxAge == 0 {
				return
			}
			res, err := st.GC(*storeMaxBytes, *storeMaxAge)
			if err != nil {
				logger.Warn("koalad: store gc failed", "err", err)
				return
			}
			if res.Removed > 0 {
				logger.Info("koalad: store gc",
					"removed", res.Removed, "removed_bytes", res.RemovedBytes,
					"entries", res.Entries, "bytes", res.Bytes)
			}
		}
		runGC()
		if *storeGCInterval > 0 && (*storeMaxBytes != 0 || *storeMaxAge != 0) {
			gcDone := make(chan struct{})
			defer close(gcDone)
			go func() {
				ticker := time.NewTicker(*storeGCInterval)
				defer ticker.Stop()
				for {
					select {
					case <-ticker.C:
						runGC()
					case <-gcDone:
						return
					}
				}
			}()
		}
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() {
		logger.Info("koalad: listening",
			"build", buildinfo.String("koalad"), "addr", *addr, "max_runs", *maxRuns, "queue", *queue)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)

	select {
	case sig := <-sigCh:
		logger.Info("koalad: draining on signal", "signal", sig.String(), "timeout", drainTimeout.String())
	case err := <-errCh:
		fatal(logger, "koalad: serve failed", "err", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Refuse new submissions and drain admitted runs first, then close
	// the listener and any streaming connections.
	if err := srv.Shutdown(ctx); err != nil {
		logger.Warn("koalad: drain incomplete, in-flight runs aborted", "err", err)
	} else {
		logger.Info("koalad: drained all in-flight runs")
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("koalad: http shutdown failed", "err", err)
	}
	logger.Info("koalad: bye")
}
