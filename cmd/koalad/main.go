// Command koalad is the long-running experiment server: it accepts
// experiment configs as JSON over HTTP, executes them on a bounded run
// pool with the streaming aggregation path (constant memory per run),
// streams per-replication progress as NDJSON and caches completed
// results by the config's canonical content hash — identical
// re-submissions are answered without re-simulating.
//
// Usage:
//
//	koalad [-addr :8080] [-parallel N] [-max-runs N] [-queue N]
//	       [-data-dir DIR] [-store-max-bytes N] [-store-max-age D]
//	       [-store-fsync] [-store-gc-interval D] [-pprof] [-version]
//
// Endpoints:
//
//	POST /v1/experiments             submit a config (JSON), get a run ID
//	GET  /v1/experiments             list resident runs (id, hash, status, source)
//	GET  /v1/experiments/{id}        status + final summary
//	GET  /v1/experiments/{id}/events NDJSON progress stream (replay + follow)
//	GET  /healthz                    liveness, version, queue gauges
//	GET  /metrics                    Prometheus text metrics
//	GET  /debug/pprof/               live profiling (opt-in via -pprof; the
//	                                 endpoints are unauthenticated)
//
// With -data-dir the daemon is durable: completed summaries are written
// through to a content-addressed on-disk store, run transitions are
// journaled, and a restart recovers everything — cached results answer
// identical re-POSTs without re-simulating, and runs that were in
// flight when the process died are re-enqueued. -store-max-bytes and
// -store-max-age bound the store; a GC sweep enforces them at startup
// and every -store-gc-interval.
//
// SIGINT/SIGTERM drain gracefully: new submissions are refused while
// admitted runs finish (bounded by -drain-timeout), then the process
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	version := flag.Bool("version", false, "print version and exit")
	addr := flag.String("addr", ":8080", "listen address")
	par := flag.Int("parallel", 0, "per-run simulation parallelism for configs that do not set their own (0 = one worker per CPU)")
	maxRuns := flag.Int("max-runs", 2, "maximum concurrently executing runs")
	queue := flag.Int("queue", 8, "maximum admitted runs waiting for a slot (beyond it POST returns 429)")
	retain := flag.Int("retain", 256, "terminal runs kept resident (results + event logs); the oldest beyond this are forgotten")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "how long a shutdown waits for in-flight runs before aborting them")
	enablePprof := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ on the daemon's mux (unauthenticated; enable only on trusted networks)")
	dataDir := flag.String("data-dir", "", "directory for the persistent result store and run journal (empty = in-memory only, results do not survive a restart)")
	storeMaxBytes := flag.Int64("store-max-bytes", 0, "GC bound on the result store's total size in bytes (0 = unbounded)")
	storeMaxAge := flag.Duration("store-max-age", 0, "GC bound on a stored result's age (0 = unbounded)")
	storeFsync := flag.Bool("store-fsync", false, "fsync store writes and journal appends (survives power loss, not just process death; slower)")
	storeGCInterval := flag.Duration("store-gc-interval", 10*time.Minute, "how often the store GC sweep enforces -store-max-bytes/-store-max-age (0 = only at startup)")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String("koalad"))
		return
	}

	logger := log.New(os.Stderr, "", log.LstdFlags)
	var st *store.Store
	if *dataDir != "" {
		var err error
		st, err = store.Open(*dataDir, store.Options{Fsync: *storeFsync, Logf: logger.Printf})
		if err != nil {
			logger.Fatalf("koalad: opening data dir: %v", err)
		}
		defer st.Close()
	}
	srv := server.New(server.Options{
		Parallelism:   *par,
		MaxConcurrent: *maxRuns,
		QueueDepth:    *queue,
		MaxRetained:   *retain,
		Version:       buildinfo.Version(),
		EnablePprof:   *enablePprof,
		Store:         st,
		Logf:          logger.Printf,
	})
	if st != nil {
		rec, err := srv.Recover()
		if err != nil {
			logger.Fatalf("koalad: recovering from %s: %v", *dataDir, err)
		}
		logger.Printf("koalad: recovered from %s: %s", *dataDir, rec)
		runGC := func() {
			if *storeMaxBytes == 0 && *storeMaxAge == 0 {
				return
			}
			res, err := st.GC(*storeMaxBytes, *storeMaxAge)
			if err != nil {
				logger.Printf("koalad: store gc: %v", err)
				return
			}
			if res.Removed > 0 {
				logger.Printf("koalad: store gc removed %d entries (%d bytes); %d entries (%d bytes) remain",
					res.Removed, res.RemovedBytes, res.Entries, res.Bytes)
			}
		}
		runGC()
		if *storeGCInterval > 0 && (*storeMaxBytes != 0 || *storeMaxAge != 0) {
			gcDone := make(chan struct{})
			defer close(gcDone)
			go func() {
				ticker := time.NewTicker(*storeGCInterval)
				defer ticker.Stop()
				for {
					select {
					case <-ticker.C:
						runGC()
					case <-gcDone:
						return
					}
				}
			}()
		}
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() {
		logger.Printf("koalad: %s listening on %s (max-runs=%d queue=%d)",
			buildinfo.String("koalad"), *addr, *maxRuns, *queue)
		errCh <- httpSrv.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)

	select {
	case sig := <-sigCh:
		logger.Printf("koalad: received %s, draining (timeout %s)", sig, *drainTimeout)
	case err := <-errCh:
		logger.Fatalf("koalad: serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Refuse new submissions and drain admitted runs first, then close
	// the listener and any streaming connections.
	if err := srv.Shutdown(ctx); err != nil {
		logger.Printf("koalad: drain incomplete, in-flight runs aborted: %v", err)
	} else {
		logger.Printf("koalad: drained all in-flight runs")
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("koalad: http shutdown: %v", err)
	}
	logger.Printf("koalad: bye")
}
