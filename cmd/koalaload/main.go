// Command koalaload drives a simulated-client fleet against a koalad
// and reports what the clients experienced: p50/p95/p99 submit-to-
// first-event and submit-to-terminal latency per behavior class,
// events/sec fanout, throttle and error rates, and the server-side
// cache deltas scraped from /metrics. It is the user-facing half of
// the observability plane — docs/load.md explains how to read it.
//
// Usage:
//
//	koalaload [-url http://127.0.0.1:8080 | -self-host]
//	          [-clients 200] [-requests 5] [-seed 1]
//	          [-mix cachehot=5,cold=1,follower=3,disconnect=1]
//	          [-hot 4] [-jobs 2] [-runs 1] [-op-timeout 2m]
//	          [-o BENCH_KOALALOAD.json] [-version]
//
// The fleet is deterministic per -seed: the same seed issues the same
// request schedule against the same config fingerprints, so a rerun
// against a warm daemon is intentionally cache-hot and a new seed is
// fully cold. With -o the measurements are also written as a
// tools/benchjson-compatible BENCH_*.json, so load numbers ride the
// same `benchjson -compare` regression gate as the microbenchmarks.
//
// -self-host starts an in-process koalad on a loopback listener and
// aims the fleet at it — a one-command load smoke (`make load`) that
// needs no running daemon.
//
// Exit status: 0 on a clean run, 1 when any client reported an
// unexpected error (transport failures, non-429 HTTP errors, failed
// runs — deliberate disconnects and absorbed 429s are not errors),
// 2 on setup failures.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/loadgen"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	version := flag.Bool("version", false, "print version and exit")
	url := flag.String("url", "http://127.0.0.1:8080", "base URL of the koalad under test")
	selfHost := flag.Bool("self-host", false, "start an in-process koalad on a loopback listener and load-test it (ignores -url)")
	clients := flag.Int("clients", 200, "fleet size (goroutine-cheap simulated clients)")
	requests := flag.Int("requests", 5, "operations per client")
	seed := flag.Uint64("seed", 1, "fleet seed: derives every per-client PRNG and every submitted config fingerprint")
	mixFlag := flag.String("mix", "cachehot=5,cold=1,follower=3,disconnect=1", "behavior mix as class=weight terms")
	hot := flag.Int("hot", 4, "size of the pre-warmed cache-hot config pool")
	jobs := flag.Int("jobs", 2, "jobs per submitted experiment")
	runs := flag.Int("runs", 1, "replications per submitted experiment")
	opTimeout := flag.Duration("op-timeout", 2*time.Minute, "deadline for one client operation including 429 retries")
	out := flag.String("o", "", "also write results as benchjson-compatible JSON to this file")
	maxRuns := flag.Int("self-host-max-runs", 2, "with -self-host: koalad -max-runs")
	queue := flag.Int("self-host-queue", 64, "with -self-host: koalad -queue")
	retain := flag.Int("self-host-retain", 8192, "with -self-host: koalad -retain (sized to the fleet so runs are not retired mid-stream)")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String("koalaload"))
		return
	}

	mix, err := loadgen.ParseMix(*mixFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "koalaload: %v\n", err)
		os.Exit(2)
	}

	baseURL := *url
	if *selfHost {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "koalaload: self-host listen: %v\n", err)
			os.Exit(2)
		}
		srv := server.New(server.Options{
			MaxConcurrent: *maxRuns,
			QueueDepth:    *queue,
			MaxRetained:   *retain,
			Version:       buildinfo.Version(),
			Log:           obs.NopLogger(),
		})
		httpSrv := &http.Server{Handler: srv.Handler()}
		go httpSrv.Serve(ln)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
			httpSrv.Shutdown(ctx)
		}()
		baseURL = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "koalaload: self-hosting koalad at %s (max-runs %d, queue %d)\n",
			baseURL, *maxRuns, *queue)
	}

	res, err := loadgen.Run(context.Background(), loadgen.Options{
		BaseURL:    baseURL,
		Clients:    *clients,
		Requests:   *requests,
		Seed:       *seed,
		Mix:        mix,
		HotConfigs: *hot,
		Jobs:       *jobs,
		Runs:       *runs,
		OpTimeout:  *opTimeout,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "koalaload: %v\n", err)
		os.Exit(2)
	}

	fmt.Print(res.HumanReport())

	if *out != "" {
		if err := res.BenchFile().Write(*out); err != nil {
			fmt.Fprintf(os.Stderr, "koalaload: writing %s: %v\n", *out, err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "koalaload: wrote %s\n", *out)
	}

	if errs := res.Errors(); len(errs) > 0 {
		fmt.Fprintf(os.Stderr, "koalaload: %d unexpected client error(s)\n", len(errs))
		os.Exit(1)
	}
}
