// Command workloadgen generates, inspects and round-trips the workload
// traces of §VI-C.
//
// Usage:
//
//	workloadgen -workload Wmr -seed 7 -out trace.swf   # generate
//	workloadgen -in trace.swf                          # inspect
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/buildinfo"
	"repro/internal/workload"
)

func main() {
	version := flag.Bool("version", false, "print version and exit")
	wl := flag.String("workload", "Wm", "workload: Wm, Wmr, W'm, W'mr")
	seed := flag.Uint64("seed", 1, "random seed")
	out := flag.String("out", "", "write the trace to this file (default stdout)")
	in := flag.String("in", "", "read and summarise an existing trace instead")
	poisson := flag.Bool("poisson", false, "use Poisson arrivals instead of fixed spacing")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String("workloadgen"))
		return
	}

	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "workloadgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w, err := workload.ReadTrace(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "workloadgen:", err)
			os.Exit(1)
		}
		summarize(w)
		return
	}

	spec, err := workload.SpecByName(*wl, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "workloadgen:", err)
		os.Exit(1)
	}
	spec.PoissonArrivals = *poisson
	w, err := workload.Generate(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "workloadgen:", err)
		os.Exit(1)
	}
	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "workloadgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		dst = f
	}
	if err := workload.WriteTrace(dst, w); err != nil {
		fmt.Fprintln(os.Stderr, "workloadgen:", err)
		os.Exit(1)
	}
	if *out != "" {
		summarize(w)
	}
}

func summarize(w *workload.Workload) {
	ft, gadget := 0, 0
	for _, it := range w.Items {
		if it.App == workload.FT {
			ft++
		} else {
			gadget++
		}
	}
	fmt.Printf("workload %s: %d jobs (%d malleable, %d FT / %d GADGET2), span %.0f s\n",
		w.Name, len(w.Items), w.CountMalleable(), ft, gadget, w.Duration())
}
