// Command figures regenerates every table and figure of the paper's
// evaluation (Table I, Fig. 6, Figs. 7a–f, Figs. 8a–f) from the simulation.
//
// Usage:
//
//	figures [-runs N] [-parallel N] [-seed S] [-csv] [-only 7a,8f,...]
//
// Without -only, everything is produced in paper order. Output goes to
// stdout; -csv switches from aligned columns to CSV.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiment"
)

func main() {
	runs := flag.Int("runs", 4, "independent runs per combination (the paper uses 4)")
	par := flag.Int("parallel", 0, "worker goroutines per sweep fan-out (0 = one per CPU, 1 = serial)")
	seed := flag.Uint64("seed", 1, "base random seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned columns")
	only := flag.String("only", "", "comma-separated subset (table1,6,7a..7f,8a..8f,summary)")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(k))] = true
		}
	}
	selected := func(k string) bool { return len(want) == 0 || want[k] }

	emit := func(fig experiment.Figure) {
		if *csv {
			fmt.Print(fig.CSV())
		} else {
			fmt.Print(fig.Render())
		}
		fmt.Println()
	}

	if selected("table1") {
		fmt.Println("# Table I — the distribution of the nodes over the DAS clusters")
		fmt.Println(experiment.Table1())
	}
	if selected("6") {
		emit(experiment.Fig6())
	}

	needPRA := false
	for _, k := range []string{"7a", "7b", "7c", "7d", "7e", "7f", "summary"} {
		if selected(k) {
			needPRA = true
		}
	}
	needPWA := false
	for _, k := range []string{"8a", "8b", "8c", "8d", "8e", "8f", "summary"} {
		if selected(k) {
			needPWA = true
		}
	}

	base := experiment.Config{Runs: *runs, Parallelism: *par, Seed: *seed}

	if needPRA {
		set, err := experiment.RunSet("PRA", experiment.PRACombos(), base)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		if selected("7a") {
			emit(set.FigSizesAvg("7a"))
		}
		if selected("7b") {
			emit(set.FigSizesMax("7b"))
		}
		if selected("7c") {
			emit(set.FigExecTimes("7c"))
		}
		if selected("7d") {
			emit(set.FigResponseTimes("7d"))
		}
		if selected("7e") {
			emit(set.FigUtilization("7e", 0, 40000, 500))
		}
		if selected("7f") {
			emit(set.FigOps("7f", 0, 40000, 500))
		}
		if selected("summary") {
			fmt.Println("# PRA summary (Fig. 7 aggregate)")
			fmt.Println(set.SummaryTable())
		}
	}
	if needPWA {
		set, err := experiment.RunSet("PWA", experiment.PWACombos(), base)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		if selected("8a") {
			emit(set.FigSizesAvg("8a"))
		}
		if selected("8b") {
			emit(set.FigSizesMax("8b"))
		}
		if selected("8c") {
			emit(set.FigExecTimes("8c"))
		}
		if selected("8d") {
			emit(set.FigResponseTimes("8d"))
		}
		if selected("8e") {
			emit(set.FigUtilization("8e", 0, 12000, 200))
		}
		if selected("8f") {
			emit(set.FigOps("8f", 0, 12000, 200))
		}
		if selected("summary") {
			fmt.Println("# PWA summary (Fig. 8 aggregate)")
			fmt.Println(set.SummaryTable())
		}
	}
}
