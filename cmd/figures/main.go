// Command figures regenerates every table and figure of the paper's
// evaluation (Table I, Fig. 6, Figs. 7a–f, Figs. 8a–f) from the simulation.
//
// Usage:
//
//	figures [-runs N] [-parallel N] [-seed S] [-csv] [-only 7a,8f,...]
//	        [-stream] [-version]
//
// Without -only, everything is produced in paper order. Output goes to
// stdout; -csv switches from aligned columns to CSV. -stream replaces
// the pooled summary tables with the constant-memory streaming
// aggregation path (per-job records are never retained); the CDF/series
// figures need the records, so -stream implies -only summary.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/buildinfo"
	"repro/internal/experiment"
)

func main() {
	version := flag.Bool("version", false, "print version and exit")
	runs := flag.Int("runs", 4, "independent runs per combination (the paper uses 4)")
	par := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines per sweep fan-out (1 = serial; default: one per CPU)")
	seed := flag.Uint64("seed", 1, "base random seed")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned columns")
	only := flag.String("only", "", "comma-separated subset (table1,6,7a..7f,8a..8f,summary)")
	stream := flag.Bool("stream", false, "compute the summary tables on the streaming aggregation path (constant memory, no per-job records; implies -only summary)")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String("figures"))
		return
	}
	if *par < 1 {
		fmt.Fprintf(os.Stderr, "figures: -parallel must be at least 1 worker (got %d); omit the flag for one per CPU\n", *par)
		os.Exit(1)
	}
	if *runs < 1 {
		fmt.Fprintf(os.Stderr, "figures: -runs must be at least 1 (got %d)\n", *runs)
		os.Exit(1)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(k))] = true
		}
	}
	selected := func(k string) bool { return len(want) == 0 || want[k] }

	if *stream {
		// The CDF/series figures need the per-job records that -stream
		// deliberately never retains, and the summary tables are plain
		// aligned text in batch mode too — reject the combinations
		// instead of silently ignoring the flags.
		if *csv {
			fmt.Fprintln(os.Stderr, "figures: -csv formats figure output; -stream produces summary tables only")
			os.Exit(1)
		}
		if *only != "" && !(len(want) == 1 && want["summary"]) {
			fmt.Fprintln(os.Stderr, "figures: -stream computes no figures; only -only summary is compatible")
			os.Exit(1)
		}
		base := experiment.Config{Runs: *runs, Parallelism: *par, Seed: *seed}
		for _, ap := range []struct {
			name   string
			fig    string
			combos []experiment.Combo
		}{
			{"PRA", "7", experiment.PRACombos()},
			{"PWA", "8", experiment.PWACombos()},
		} {
			// One flattened pool per approach, like the batch sweep.
			results, err := experiment.RunSetStream(context.Background(), ap.name, ap.combos, base)
			if err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				os.Exit(1)
			}
			fmt.Printf("# %s summary (Fig. %s aggregate, streamed)\n", ap.name, ap.fig)
			fmt.Printf("%-14s %8s %10s %10s %10s %10s %8s\n",
				"combo", "jobs", "mean-exec", "mean-resp", "mean-util", "ops/run", "rejected")
			for i, res := range results {
				fmt.Printf("%-14s %8d %10.1f %10.1f %10.1f %10.1f %8d\n",
					ap.combos[i].Label, res.Jobs(), res.MeanExecution(), res.MeanResponse(),
					res.MeanUtilization(), res.TotalOps(), res.Rejected())
			}
			fmt.Println()
		}
		return
	}

	emit := func(fig experiment.Figure) {
		if *csv {
			fmt.Print(fig.CSV())
		} else {
			fmt.Print(fig.Render())
		}
		fmt.Println()
	}

	if selected("table1") {
		fmt.Println("# Table I — the distribution of the nodes over the DAS clusters")
		fmt.Println(experiment.Table1())
	}
	if selected("6") {
		emit(experiment.Fig6())
	}

	needPRA := false
	for _, k := range []string{"7a", "7b", "7c", "7d", "7e", "7f", "summary"} {
		if selected(k) {
			needPRA = true
		}
	}
	needPWA := false
	for _, k := range []string{"8a", "8b", "8c", "8d", "8e", "8f", "summary"} {
		if selected(k) {
			needPWA = true
		}
	}

	base := experiment.Config{Runs: *runs, Parallelism: *par, Seed: *seed}

	if needPRA {
		set, err := experiment.RunSet("PRA", experiment.PRACombos(), base)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		if selected("7a") {
			emit(set.FigSizesAvg("7a"))
		}
		if selected("7b") {
			emit(set.FigSizesMax("7b"))
		}
		if selected("7c") {
			emit(set.FigExecTimes("7c"))
		}
		if selected("7d") {
			emit(set.FigResponseTimes("7d"))
		}
		if selected("7e") {
			emit(set.FigUtilization("7e", 0, 40000, 500))
		}
		if selected("7f") {
			emit(set.FigOps("7f", 0, 40000, 500))
		}
		if selected("summary") {
			fmt.Println("# PRA summary (Fig. 7 aggregate)")
			fmt.Println(set.SummaryTable())
		}
	}
	if needPWA {
		set, err := experiment.RunSet("PWA", experiment.PWACombos(), base)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		if selected("8a") {
			emit(set.FigSizesAvg("8a"))
		}
		if selected("8b") {
			emit(set.FigSizesMax("8b"))
		}
		if selected("8c") {
			emit(set.FigExecTimes("8c"))
		}
		if selected("8d") {
			emit(set.FigResponseTimes("8d"))
		}
		if selected("8e") {
			emit(set.FigUtilization("8e", 0, 12000, 200))
		}
		if selected("8f") {
			emit(set.FigOps("8f", 0, 12000, 200))
		}
		if selected("summary") {
			fmt.Println("# PWA summary (Fig. 8 aggregate)")
			fmt.Println(set.SummaryTable())
		}
	}
}
