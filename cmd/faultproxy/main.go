// Command faultproxy is the out-of-process face of the fault-injection
// harness (internal/faults): a scripted-fault TCP proxy the chaos CI
// smoke puts between a coordinator koalad and its workers. Each
// accepted connection consumes one step of the schedule; past the end
// of the script every connection passes through untouched, so a finite
// script perturbs exactly the traffic it names and nothing after.
//
// Usage:
//
//	faultproxy -listen 127.0.0.1:9181 -target 127.0.0.1:9081 \
//	           -schedule 'ok,reset@2048,503*2,delay=250ms'
//
// Schedule grammar (comma-separated, each step optionally *N):
//
//	ok           pass the connection through untouched
//	drop         close the accepted connection without dialing the target
//	delay=DUR    dial the target after sleeping DUR, then pipe
//	reset@N      pipe, then hard-reset the client after N response bytes
//	truncate@N   pipe, then close the client cleanly after N response bytes
//	CODE         answer an HTTP CODE (5xx) without dialing the target
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/buildinfo"
	"repro/internal/faults"
)

func main() {
	version := flag.Bool("version", false, "print version and exit")
	listen := flag.String("listen", "127.0.0.1:0", "address to accept connections on")
	target := flag.String("target", "", "host:port to forward connections to (required)")
	schedule := flag.String("schedule", "", "scripted fault schedule; empty passes everything through")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String("faultproxy"))
		return
	}
	if *target == "" {
		fmt.Fprintln(os.Stderr, "faultproxy: -target is required")
		os.Exit(2)
	}
	sched, err := faults.ParseSchedule(*schedule)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faultproxy: %v\n", err)
		os.Exit(2)
	}
	proxy, err := faults.NewProxy(*listen, *target, sched)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faultproxy: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("faultproxy: %s -> %s (schedule %q)\n", proxy.Addr(), *target, *schedule)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	<-sigCh
	_ = proxy.Close()
}
