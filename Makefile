GO ?= go

.PHONY: build test bench bench-smoke bench-compare vet figures serve load \
	lint koalalint staticcheck vuln lint-tools

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test -race ./...

# --- Static analysis (see docs/determinism.md) -------------------------------
#
# koalalint is the repo's own go/analysis-style suite: detwalltime,
# detorder, detrand and hotpathalloc mechanically enforce the determinism
# and hot-path invariants the byte-identical-summaries claim rests on. It
# is stdlib-only, so it always runs. staticcheck and govulncheck are
# external, pinned below; their targets use an installed binary when one
# is present and skip with install instructions otherwise (the module
# itself stays dependency-free). CI installs both via `make lint-tools`.

STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4

lint: koalalint staticcheck vuln

koalalint:
	$(GO) run ./tools/koalalint ./...

lint-tools:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)

staticcheck:
	@bin="$$(command -v staticcheck || true)"; \
	[ -n "$$bin" ] || { p="$$($(GO) env GOPATH)/bin/staticcheck"; [ -x "$$p" ] && bin="$$p"; }; \
	if [ -n "$$bin" ]; then \
		echo "$$bin ./..."; "$$bin" ./...; \
	else \
		echo "staticcheck not installed; skipping (run: make lint-tools)"; \
	fi

vuln:
	@bin="$$(command -v govulncheck || true)"; \
	[ -n "$$bin" ] || { p="$$($(GO) env GOPATH)/bin/govulncheck"; [ -x "$$p" ] && bin="$$p"; }; \
	if [ -n "$$bin" ]; then \
		echo "$$bin ./..."; "$$bin" ./...; \
	else \
		echo "govulncheck not installed; skipping (run: make lint-tools)"; \
	fi

# Full benchmark run; writes $(BENCH_OUT) (name -> ns/op, allocs/op and
# custom metrics) so the perf trajectory accrues one file per PR — bump
# the default each PR, or override: make bench BENCH_OUT=BENCH_PRn.json.
# Two steps so a failing benchmark run fails the target instead of being
# masked by the pipe's exit status.
BENCH_OUT ?= BENCH_PR10.json

bench:
	$(GO) test -run=NONE -bench=. -benchmem -count=1 . ./internal/sim ./internal/koala > bench.raw.tmp
	$(GO) run ./tools/benchjson -o $(BENCH_OUT) < bench.raw.tmp
	@rm -f bench.raw.tmp

# One iteration of every benchmark — a fast CI smoke that they still run.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x -benchmem ./...

# The CI regression gate, locally: a 1x smoke run diffed against the
# committed baseline (allocs/op gates; ns/op needs >1 iteration).
BENCH_BASELINE ?= BENCH_PR10.json

bench-compare:
	$(GO) test -run=NONE -bench=. -benchtime=1x -benchmem ./... > bench.smoke.tmp
	$(GO) run ./tools/benchjson -o bench.smoke.json < bench.smoke.tmp > /dev/null
	$(GO) run ./tools/benchjson -compare $(BENCH_BASELINE) bench.smoke.json -threshold 10
	@rm -f bench.smoke.tmp bench.smoke.json

figures: build
	$(GO) run ./cmd/figures -runs 4

# Run the koalad experiment server on :8080 (see README "Server mode").
serve: build
	$(GO) run ./cmd/koalad

# One-command load test: koalaload self-hosts a koalad and drives the
# default 2000-client fleet at it, writing the measurements as
# $(LOAD_OUT) (benchjson schema; see docs/load.md). Exit status is
# nonzero if any client saw an unexpected error.
LOAD_OUT ?= BENCH_KOALALOAD.json
LOAD_CLIENTS ?= 2000

load: build
	$(GO) run ./cmd/koalaload -self-host -clients $(LOAD_CLIENTS) -o $(LOAD_OUT)
