GO ?= go

.PHONY: build test bench vet figures serve

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

figures: build
	$(GO) run ./cmd/figures -runs 4

# Run the koalad experiment server on :8080 (see README "Server mode").
serve: build
	$(GO) run ./cmd/koalad
