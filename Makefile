GO ?= go

.PHONY: build test bench bench-smoke vet figures serve

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test -race ./...

# Full benchmark run; writes $(BENCH_OUT) (name -> ns/op, allocs/op and
# custom metrics) so the perf trajectory accrues one file per PR — bump
# the default each PR, or override: make bench BENCH_OUT=BENCH_PRn.json.
# Two steps so a failing benchmark run fails the target instead of being
# masked by the pipe's exit status.
BENCH_OUT ?= BENCH_PR4.json

bench:
	$(GO) test -run=NONE -bench=. -benchmem -count=1 . ./internal/sim ./internal/koala > bench.raw.tmp
	$(GO) run ./tools/benchjson -o $(BENCH_OUT) < bench.raw.tmp
	@rm -f bench.raw.tmp

# One iteration of every benchmark — a fast CI smoke that they still run.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

figures: build
	$(GO) run ./cmd/figures -runs 4

# Run the koalad experiment server on :8080 (see README "Server mode").
serve: build
	$(GO) run ./cmd/koalad
