GO ?= go

.PHONY: build test bench bench-smoke bench-compare vet figures serve

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test -race ./...

# Full benchmark run; writes $(BENCH_OUT) (name -> ns/op, allocs/op and
# custom metrics) so the perf trajectory accrues one file per PR — bump
# the default each PR, or override: make bench BENCH_OUT=BENCH_PRn.json.
# Two steps so a failing benchmark run fails the target instead of being
# masked by the pipe's exit status.
BENCH_OUT ?= BENCH_PR5.json

bench:
	$(GO) test -run=NONE -bench=. -benchmem -count=1 . ./internal/sim ./internal/koala > bench.raw.tmp
	$(GO) run ./tools/benchjson -o $(BENCH_OUT) < bench.raw.tmp
	@rm -f bench.raw.tmp

# One iteration of every benchmark — a fast CI smoke that they still run.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x -benchmem ./...

# The CI regression gate, locally: a 1x smoke run diffed against the
# committed baseline (allocs/op gates; ns/op needs >1 iteration).
BENCH_BASELINE ?= BENCH_PR3.json

bench-compare:
	$(GO) test -run=NONE -bench=. -benchtime=1x -benchmem ./... > bench.smoke.tmp
	$(GO) run ./tools/benchjson -o bench.smoke.json < bench.smoke.tmp > /dev/null
	$(GO) run ./tools/benchjson -compare $(BENCH_BASELINE) bench.smoke.json -threshold 10
	@rm -f bench.smoke.tmp bench.smoke.json

figures: build
	$(GO) run ./cmd/figures -runs 4

# Run the koalad experiment server on :8080 (see README "Server mode").
serve: build
	$(GO) run ./cmd/koalad
