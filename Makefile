GO ?= go

.PHONY: build test bench vet figures

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

figures: build
	$(GO) run ./cmd/figures -runs 4
