// Pwa_shrink: demonstrate the PWA approach of §V-B — when a waiting job
// cannot be placed, running malleable jobs are mandatorily shrunk to make
// room for it.
//
// Run with: go run ./examples/pwa_shrink
package main

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/koala"
)

func main() {
	grid := cluster.NewMulticluster(cluster.New("single", 48))
	sys := core.NewSystem(core.SystemConfig{
		Grid: grid,
		Manager: core.ManagerConfig{
			Policy:   core.FPSMA{},
			Approach: core.PWA{},
		},
	})

	// A long malleable job grows to fill the cluster...
	long, err := sys.SubmitMalleable("long-gadget", app.GadgetProfile(), 2)
	if err != nil {
		panic(err)
	}
	sys.Run(200)
	fmt.Printf("t=%3.0fs  long job grown to %d processors, cluster idle=%d\n",
		sys.Engine.Now(), long.CurrentProcs(), grid.Get("single").Idle())

	// ...then a rigid job arrives that needs 8 processors. Under PRA it
	// would wait for the long job to finish; under PWA the manager shrinks
	// the long job (a mandatory shrink) to host it.
	rigid, err := sys.SubmitRigid("rigid-ft", app.FTModel(), 8)
	if err != nil {
		panic(err)
	}
	fmt.Printf("t=%3.0fs  rigid job needing 8 processors submitted\n", sys.Engine.Now())

	for t := 220.0; rigid.State() != koala.Running && t < 2000; t += 20 {
		sys.Run(t)
	}
	fmt.Printf("t=%3.0fs  rigid job state=%s; long job shrunk to %d processors\n",
		sys.Engine.Now(), rigid.State(), long.CurrentProcs())
	fmt.Printf("         mandatory shrink operations so far: %.0f\n",
		sys.Manager.ShrinkOps().Total())

	if err := sys.RunUntilDone(20000); err != nil {
		panic(err)
	}
	fmt.Printf("\nall jobs done: long exec=%.0fs, rigid exec=%.0fs (wait %.0fs)\n",
		long.EndTime()-long.StartTime(),
		rigid.EndTime()-rigid.StartTime(),
		rigid.StartTime()-rigid.SubmitTime())
}
