// Backgroundload: demonstrate §V-B — local users who bypass KOALA entirely.
// The malleability manager discovers their load only through periodic KIS
// polling, and a growth reserve keeps a minimum of processors free for them.
//
// Run with: go run ./examples/backgroundload
package main

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/core"
)

func main() {
	grid := cluster.NewMulticluster(cluster.New("delft", 68))
	clus := grid.Get("delft")

	// Reserve 8 processors for local users: KOALA never grows jobs into
	// that headroom.
	sys := core.NewSystem(core.SystemConfig{
		Grid: grid,
		Manager: core.ManagerConfig{
			Policy:        core.EGS{},
			Approach:      core.PRA{},
			GrowthReserve: 8,
		},
	})

	// Local users seize 30 nodes directly (bypassing KOALA) before the grid
	// job arrives; they leave at t=150.
	if err := clus.SeizeBackground(30); err != nil {
		panic(err)
	}
	fmt.Println("t=  0s  local users seize 30 nodes (KOALA discovers this only by polling)")
	sys.Engine.At(150, func() {
		if err := clus.ReleaseBackground(30); err != nil {
			panic(err)
		}
		fmt.Println("t=150s  local users leave")
	})

	job, err := sys.SubmitMalleable("gadget", app.GadgetProfile(), 2)
	if err != nil {
		panic(err)
	}

	maxUnderLoad := 0
	for t := 25.0; t <= 400; t += 25 {
		sys.Run(t)
		if sys.Engine.Now() <= 150 && job.CurrentProcs() > maxUnderLoad {
			maxUnderLoad = job.CurrentProcs()
		}
		fmt.Printf("t=%3.0fs  job=%2d procs  cluster: used=%2d background=%2d idle=%2d\n",
			sys.Engine.Now(), job.CurrentProcs(), clus.Used(), clus.Background(), clus.Idle())
	}
	if err := sys.RunUntilDone(10000); err != nil {
		panic(err)
	}
	fmt.Printf("\njob finished at t=%.0fs\n", job.EndTime())
	fmt.Printf("while local users were active it never exceeded %d procs\n", maxUnderLoad)
	fmt.Println("(68 nodes − 30 background − 8 growth reserve = 30 available for growth);")
	fmt.Println("after they left it grew towards its own maximum of 46.")
}
