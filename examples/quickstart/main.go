// Quickstart: build a simulated multicluster, submit a handful of malleable
// jobs through KOALA, and watch the malleability manager grow them as
// processors become available.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/koala"
)

func main() {
	// A small two-cluster grid (use cluster.DAS3() for the full testbed).
	grid := cluster.NewMulticluster(
		cluster.New("left", 64),
		cluster.New("right", 32),
	)

	// KOALA + the malleability manager: FPSMA policy under the PRA approach.
	sys := core.NewSystem(core.SystemConfig{
		Grid: grid,
		Manager: core.ManagerConfig{
			Policy:   core.FPSMA{},
			Approach: core.PRA{},
		},
	})

	// Submit three malleable jobs at their minimal size of 2 processors:
	// two long GADGET-2 runs and one short FT kernel.
	var jobs []*koala.Job
	for i, profile := range []*app.Profile{
		app.GadgetProfile(), app.GadgetProfile(), app.FTProfile(),
	} {
		id := fmt.Sprintf("job-%d", i)
		j, err := sys.SubmitMalleable(id, profile, 2)
		if err != nil {
			panic(err)
		}
		jobs = append(jobs, j)
	}

	// Observe the system once a minute of virtual time.
	for t := 60.0; t <= 600; t += 60 {
		sys.Run(t)
		fmt.Printf("t=%4.0fs  grid: %-28s", sys.Engine.Now(), grid.String())
		for _, j := range jobs {
			fmt.Printf("  %s=%d procs (%s)", j.Spec.ID, j.CurrentProcs(), j.State())
		}
		fmt.Println()
	}

	// Let everything finish and report.
	if err := sys.RunUntilDone(10000); err != nil {
		panic(err)
	}
	fmt.Println()
	for _, j := range jobs {
		fmt.Printf("%s: execution %.0f s, response %.0f s\n",
			j.Spec.ID, j.EndTime()-j.StartTime(), j.EndTime()-j.SubmitTime())
	}
	fmt.Printf("grow operations performed by the manager: %.0f\n",
		sys.Manager.GrowOps().Total())
}
