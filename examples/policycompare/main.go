// Policycompare: run the paper's Wm workload (scaled down) under the PRA
// approach with each malleability policy — FPSMA and EGS from the paper,
// plus the Equipartition and Folding baselines of §III — and compare the
// Fig. 7 style metrics.
//
// Run with: go run ./examples/policycompare
package main

import (
	"fmt"

	"repro/internal/experiment"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	fmt.Println("Policy comparison on Wm (120 s inter-arrival, all malleable), PRA approach")
	fmt.Printf("%-8s %10s %10s %10s %10s %10s\n",
		"policy", "exec(s)", "resp(s)", "avg-size", "stuck@2", "ops/run")

	for _, policy := range []string{"FPSMA", "EGS", "EQUI", "FOLD"} {
		spec := workload.Wm(1)
		spec.Jobs = 100 // scaled down for a quick demo; use 300 for the paper
		res, err := experiment.Run(experiment.Config{
			Workload: spec,
			Policy:   policy,
			Approach: "PRA",
			Runs:     2,
			Seed:     1,
		})
		if err != nil {
			panic(err)
		}
		mall := res.MalleableRecords()
		stuck := 0
		for _, r := range mall {
			if r.MaxProcs <= 2 {
				stuck++
			}
		}
		fmt.Printf("%-8s %10.1f %10.1f %10.1f %9.0f%% %10.1f\n",
			policy,
			res.MeanExecution(),
			res.MeanResponse(),
			stats.Mean(metrics.AvgProcsOf(mall)),
			100*float64(stuck)/float64(len(mall)),
			res.TotalOps(),
		)
	}
	fmt.Println("\nEGS spreads growth over all jobs (fewer stuck at the minimum);")
	fmt.Println("FPSMA concentrates it on the oldest. EQUI and FOLD are the §III baselines.")
}
