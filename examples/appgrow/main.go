// Appgrow: demonstrate the §II-C / §VIII extension — grow operations
// initiated by the *application* rather than the scheduler, for irregular
// parallelism patterns. The application asks KOALA's malleability manager
// for more processors when its computation calls for it; the manager grants
// at most the current headroom (such requests are voluntary for the
// scheduler and never preempt other jobs).
//
// Run with: go run ./examples/appgrow
package main

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/core"
)

func main() {
	grid := cluster.NewMulticluster(cluster.New("site", 32))
	sys := core.NewSystem(core.SystemConfig{
		Grid: grid,
		Manager: core.ManagerConfig{
			Policy: core.FPSMA{},
			// The Manual approach never grows jobs on its own: every size
			// change below is application-initiated.
			Approach: core.Manual{},
		},
	})

	job, err := sys.SubmitMalleable("irregular", app.GadgetProfile(), 2)
	if err != nil {
		panic(err)
	}

	// The application hits a computation phase needing more parallelism at
	// t=60 and an even wider phase at t=120.
	for _, req := range []struct {
		at     float64
		amount int
	}{{60, 8}, {120, 16}} {
		req := req
		sys.Engine.At(req.at, func() {
			got := job.AppRequestGrow(req.amount)
			fmt.Printf("t=%3.0fs  application asked for +%d processors, obtained %d (now %d planned)\n",
				sys.Engine.Now(), req.amount, got, job.PlannedProcs())
		})
	}

	// A competing rigid job eats headroom at t=90, so the second request
	// can only be granted partially.
	sys.Engine.At(90, func() {
		if _, err := sys.SubmitRigid("competitor", app.FTModel(), 12); err != nil {
			panic(err)
		}
		fmt.Println("t= 90s  a rigid 12-processor job arrives and is placed")
	})

	maxSeen := 0
	for t := 30.0; t <= 300; t += 30 {
		sys.Run(t)
		if p := job.CurrentProcs(); p > maxSeen {
			maxSeen = p
		}
	}
	if err := sys.RunUntilDone(10000); err != nil {
		panic(err)
	}
	fmt.Printf("\napplication-initiated grow requests granted by the manager: %d\n",
		sys.Manager.AppGrowRequests())
	fmt.Printf("job finished at t=%.0fs having reached %d processors\n",
		job.EndTime(), maxSeen)
}
