package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain lets the test binary impersonate the benchjson CLI: the gate's
// exit codes and messages are contract (CI shell scripts branch on them),
// so they are pinned end-to-end through a re-exec rather than by calling
// compareFiles in-process.
func TestMain(m *testing.M) {
	if os.Getenv("BENCHJSON_BE_TOOL") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runCompare re-executes the test binary as `benchjson -compare args...`
// and returns combined stdout, stderr and the exit code.
func runCompare(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], append([]string{"-compare"}, args...)...)
	cmd.Env = append(os.Environ(), "BENCHJSON_BE_TOOL=1")
	var out, errb strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	code = 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("re-exec: %v", err)
	}
	return out.String(), errb.String(), code
}

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const oneBench = `{"go_version":"go-test","benchmarks":{"BenchmarkHot":{"iterations":100,"ns_per_op":1000,"allocs_per_op":100}}}`

func TestCompareCLIMissingBenchmarkInNewFile(t *testing.T) {
	oldP := writeTemp(t, "old.json", `{"benchmarks":{
		"BenchmarkHot":{"iterations":100,"ns_per_op":1000,"allocs_per_op":100},
		"BenchmarkGone":{"iterations":100,"ns_per_op":500,"allocs_per_op":50}}}`)
	newP := writeTemp(t, "new.json", oneBench)
	stdout, stderr, code := runCompare(t, oldP, newP)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (removed benchmarks never fail)\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "BenchmarkGone") || !strings.Contains(stdout, "removed") {
		t.Errorf("report does not mention the removed benchmark:\n%s", stdout)
	}
	if !strings.Contains(stderr, "no regressions beyond 10%") {
		t.Errorf("stderr = %q, want the no-regressions summary", stderr)
	}
}

func TestCompareCLIZeroIterationEntries(t *testing.T) {
	// A zero-iteration entry is what a skipped or crashed benchmark run
	// serializes to. Time must not be gated (one cold measurement means
	// nothing); allocations still gate, with the wide cold-run slack.
	oldP := writeTemp(t, "old.json", oneBench)

	slow := writeTemp(t, "slow.json",
		`{"benchmarks":{"BenchmarkHot":{"iterations":0,"ns_per_op":900000,"allocs_per_op":100}}}`)
	stdout, stderr, code := runCompare(t, oldP, slow)
	if code != 0 {
		t.Fatalf("exit = %d, want 0: ns/op of a zero-iteration entry must not gate\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if strings.Contains(stdout, "ns/op") {
		t.Errorf("report compares ns/op despite a zero-iteration side:\n%s", stdout)
	}

	leaky := writeTemp(t, "leaky.json",
		`{"benchmarks":{"BenchmarkHot":{"iterations":0,"ns_per_op":1000,"allocs_per_op":200}}}`)
	stdout, stderr, code = runCompare(t, oldP, leaky)
	if code != 1 {
		t.Fatalf("exit = %d, want 1: +100 allocs/op is beyond even the cold slack\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "REG") || !strings.Contains(stdout, "allocs/op") {
		t.Errorf("report missing the allocs/op regression line:\n%s", stdout)
	}
	if !strings.Contains(stderr, "1 regression(s) beyond 10%") {
		t.Errorf("stderr = %q, want the regression summary", stderr)
	}
}

func TestCompareCLIEmptyJSON(t *testing.T) {
	empty := writeTemp(t, "empty.json", `{}`)
	newP := writeTemp(t, "new.json", oneBench)
	for _, order := range [][2]string{{empty, newP}, {newP, empty}} {
		_, stderr, code := runCompare(t, order[0], order[1])
		if code != 2 {
			t.Fatalf("exit = %d, want 2 for a benchmark-less file\nstderr:\n%s", code, stderr)
		}
		if !strings.Contains(stderr, "no benchmarks") || !strings.Contains(stderr, "empty.json") {
			t.Errorf("stderr = %q, want 'no benchmarks' naming empty.json", stderr)
		}
	}
}

func TestCompareCLICorruptJSON(t *testing.T) {
	cases := map[string]string{
		"truncated.json": `{"benchmarks":{"BenchmarkHot":{"iterations":`,
		"notjson.json":   `not json at all`,
		"zerobyte.json":  ``,
	}
	newP := writeTemp(t, "new.json", oneBench)
	for name, content := range cases {
		corrupt := writeTemp(t, name, content)
		_, stderr, code := runCompare(t, corrupt, newP)
		if code != 2 {
			t.Fatalf("%s: exit = %d, want 2\nstderr:\n%s", name, code, stderr)
		}
		if !strings.Contains(stderr, "benchjson:") || !strings.Contains(stderr, name) {
			t.Errorf("%s: stderr = %q, want a benchjson: error naming the file", name, stderr)
		}
	}
}

func TestCompareCLIMissingFile(t *testing.T) {
	newP := writeTemp(t, "new.json", oneBench)
	_, stderr, code := runCompare(t, filepath.Join(t.TempDir(), "nope.json"), newP)
	if code != 2 {
		t.Fatalf("exit = %d, want 2 for a missing file\nstderr:\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "no such file") {
		t.Errorf("stderr = %q, want the underlying open error", stderr)
	}
}

func TestCompareCLIUsageErrors(t *testing.T) {
	_, stderr, code := runCompare(t, "only-one.json")
	if code != 2 || !strings.Contains(stderr, "needs two files") {
		t.Errorf("one-arg: exit = %d stderr = %q, want 2 + usage message", code, stderr)
	}
	oldP := writeTemp(t, "old.json", oneBench)
	newP := writeTemp(t, "new.json", oneBench)
	_, stderr, code = runCompare(t, oldP, newP, "-threshold", "-5")
	if code != 2 || !strings.Contains(stderr, "-threshold must be >= 0") {
		t.Errorf("negative threshold: exit = %d stderr = %q", code, stderr)
	}
}
