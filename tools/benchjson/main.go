// Command benchjson converts `go test -bench` output on stdin into a JSON
// perf record so successive PRs can diff benchmark trajectories (ns/op,
// allocs/op and custom metrics per benchmark) instead of eyeballing text.
//
// Usage:
//
//	go test -run=NONE -bench=. -benchmem ./... | go run ./tools/benchjson -o BENCH_PR3.json
//
// With -compare it becomes the regression gate the bench-smoke CI job
// runs against the committed baseline:
//
//	go run ./tools/benchjson -compare BENCH_PR3.json BENCH_SMOKE.json -threshold 10
//
// A benchmark regresses when its new value exceeds the old by more than
// -threshold percent AND by an absolute slack (50 ns/op, 8 allocs/op)
// that keeps tiny benchmarks from flaking the gate. ns/op is compared
// only when both runs used more than one iteration — a -benchtime=1x
// smoke run measures allocations reliably but not time. Any regression
// exits nonzero; added or removed benchmarks are reported but pass.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/tools/benchjson/benchfmt"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	compare := flag.Bool("compare", false, "diff mode: benchjson -compare old.json new.json; exits 1 on ns/op or allocs/op regressions")
	threshold := flag.Float64("threshold", 10, "with -compare: regression threshold in percent")
	flag.Parse()

	if *compare {
		args := flag.Args()
		if len(args) < 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs two files: old.json new.json")
			os.Exit(2)
		}
		oldPath, newPath := args[0], args[1]
		// The documented form puts -threshold after the files
		// (`-compare old.json new.json -threshold 10`), where the
		// standard parser stops; pick up such trailing flags here.
		trailing := flag.NewFlagSet("compare", flag.ExitOnError)
		trailing.Float64Var(threshold, "threshold", *threshold, "regression threshold in percent")
		if err := trailing.Parse(args[2:]); err != nil || trailing.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "benchjson: unexpected arguments after old.json new.json")
			os.Exit(2)
		}
		if *threshold < 0 {
			fmt.Fprintln(os.Stderr, "benchjson: -threshold must be >= 0")
			os.Exit(2)
		}
		oldFile, err := benchfmt.Load(oldPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		newFile, err := benchfmt.Load(newPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(2)
		}
		report, regs := benchfmt.Compare(oldFile, newFile, *threshold)
		for _, line := range report {
			fmt.Println(line)
		}
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) beyond %.0f%% vs %s\n",
				len(regs), *threshold, oldPath)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: no regressions beyond %.0f%% vs %s\n", *threshold, oldPath)
		return
	}

	file := benchfmt.New()

	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if *out != "" {
			fmt.Println(line) // JSON goes to a file: echo the run for the human
		}
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		// Strip the -N GOMAXPROCS suffix go test appends to benchmark
		// names, but only when N matches this process's GOMAXPROCS (the
		// tool runs in the same environment as the test, per make bench).
		// go test omits the suffix entirely at GOMAXPROCS=1, and a blind
		// numeric strip would mangle sub-benchmarks whose own names end
		// in a number (…/size-512).
		name := strings.TrimSuffix(fields[0], fmt.Sprintf("-%d", runtime.GOMAXPROCS(0)))
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := benchfmt.Result{Package: pkg, Iterations: iters}
		// The remainder is (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = map[string]float64{}
				}
				res.Metrics[fields[i+1]] = v
			}
		}
		// Same benchmark name in two packages: qualify both so neither
		// measurement is silently dropped.
		if prev, ok := file.Benchmarks[name]; ok && prev.Package != res.Package {
			delete(file.Benchmarks, name)
			file.Benchmarks[prev.Package+":"+name] = prev
			name = res.Package + ":" + name
		}
		file.Benchmarks[name] = res
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(file.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(file.Benchmarks), *out)
}
