// Command benchjson converts `go test -bench` output on stdin into a JSON
// perf record so successive PRs can diff benchmark trajectories (ns/op,
// allocs/op and custom metrics per benchmark) instead of eyeballing text.
//
// Usage:
//
//	go test -run=NONE -bench=. -benchmem ./... | go run ./tools/benchjson -o BENCH_PR3.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurement.
type Result struct {
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	BytesPerOp float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64           `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// File is the BENCH_*.json schema.
type File struct {
	GoVersion  string            `json:"go_version"`
	GoOS       string            `json:"goos"`
	GoArch     string            `json:"goarch"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	file := File{
		GoVersion:  runtime.Version(),
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		Benchmarks: map[string]Result{},
	}

	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if *out != "" {
			fmt.Println(line) // JSON goes to a file: echo the run for the human
		}
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		// Strip the -N GOMAXPROCS suffix go test appends to benchmark
		// names, but only when N matches this process's GOMAXPROCS (the
		// tool runs in the same environment as the test, per make bench).
		// go test omits the suffix entirely at GOMAXPROCS=1, and a blind
		// numeric strip would mangle sub-benchmarks whose own names end
		// in a number (…/size-512).
		name := strings.TrimSuffix(fields[0], fmt.Sprintf("-%d", runtime.GOMAXPROCS(0)))
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Package: pkg, Iterations: iters}
		// The remainder is (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				if res.Metrics == nil {
					res.Metrics = map[string]float64{}
				}
				res.Metrics[fields[i+1]] = v
			}
		}
		// Same benchmark name in two packages: qualify both so neither
		// measurement is silently dropped.
		if prev, ok := file.Benchmarks[name]; ok && prev.Package != res.Package {
			delete(file.Benchmarks, name)
			file.Benchmarks[prev.Package+":"+name] = prev
			name = res.Package + ":" + name
		}
		file.Benchmarks[name] = res
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}
	if len(file.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(file.Benchmarks), *out)
}
