package benchfmt

import (
	"strings"
	"testing"
)

func bench(iters int64, ns, allocs float64) Result {
	return Result{Iterations: iters, NsPerOp: ns, AllocsPerOp: allocs}
}

func file(benchmarks map[string]Result) File {
	return File{GoVersion: "go-test", Benchmarks: benchmarks}
}

func TestCompareFlagsRegressions(t *testing.T) {
	oldF := file(map[string]Result{
		"BenchmarkHot":  bench(100, 10000, 1000),
		"BenchmarkTiny": bench(100, 40, 2),
		"BenchmarkGone": bench(100, 500, 50),
	})
	newF := file(map[string]Result{
		"BenchmarkHot":  bench(100, 12000, 1200), // +20% on both, well past slack
		"BenchmarkTiny": bench(100, 80, 6),       // +100%, but inside absolute slack
		"BenchmarkNew":  bench(100, 1, 1),
	})
	report, regs := Compare(oldF, newF, 10)
	if len(regs) != 2 {
		t.Fatalf("regressions = %d (%+v), want ns/op + allocs/op of BenchmarkHot", len(regs), regs)
	}
	for _, r := range regs {
		if r.Name != "BenchmarkHot" {
			t.Errorf("unexpected regression: %+v", r)
		}
	}
	joined := strings.Join(report, "\n")
	for _, want := range []string{"REG BenchmarkHot", "BenchmarkGone", "removed", "BenchmarkNew", "added"} {
		if !strings.Contains(joined, want) {
			t.Errorf("report missing %q:\n%s", want, joined)
		}
	}
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	oldF := file(map[string]Result{"BenchmarkHot": bench(100, 10000, 1000)})
	newF := file(map[string]Result{"BenchmarkHot": bench(100, 10500, 1040)}) // +5%, +4%
	if _, regs := Compare(oldF, newF, 10); len(regs) != 0 {
		t.Fatalf("within-threshold diff flagged: %+v", regs)
	}
	// Improvements never fail, however large.
	better := file(map[string]Result{"BenchmarkHot": bench(100, 2000, 100)})
	if _, regs := Compare(oldF, better, 10); len(regs) != 0 {
		t.Fatalf("improvement flagged: %+v", regs)
	}
}

// TestCompareSkipsTimeOfSingleIterationRuns pins the smoke-run rule:
// a -benchtime=1x run gates allocations only, because one cold
// iteration is not a time measurement.
func TestCompareSkipsTimeOfSingleIterationRuns(t *testing.T) {
	oldF := file(map[string]Result{"BenchmarkHot": bench(100, 10000, 1000)})
	newF := file(map[string]Result{"BenchmarkHot": bench(1, 900000, 1010)}) // 90x slower "time", 1 iteration
	report, regs := Compare(oldF, newF, 10)
	if len(regs) != 0 {
		t.Fatalf("1x-iteration time flagged: %+v", regs)
	}
	if strings.Contains(strings.Join(report, "\n"), "ns/op") {
		t.Fatalf("report compared ns/op of a 1-iteration run:\n%s", strings.Join(report, "\n"))
	}
	// Allocations of the same run still gate.
	newF = file(map[string]Result{"BenchmarkHot": bench(1, 900000, 1500)})
	if _, regs := Compare(oldF, newF, 10); len(regs) != 1 {
		t.Fatalf("1x-iteration alloc regression missed: %+v", regs)
	}
}

// TestCompareColdRunAllocSlack pins the warmup rule: one cold
// iteration may charge a few dozen one-time allocations to a
// zero-alloc benchmark without tripping the gate, but growth beyond
// the cold slack still fails.
func TestCompareColdRunAllocSlack(t *testing.T) {
	oldF := file(map[string]Result{"BenchmarkZeroAlloc": bench(1000, 500, 0)})
	warm := file(map[string]Result{"BenchmarkZeroAlloc": bench(1, 500, 16)})
	if _, regs := Compare(oldF, warm, 10); len(regs) != 0 {
		t.Fatalf("cold-run warmup allocations flagged: %+v", regs)
	}
	bad := file(map[string]Result{"BenchmarkZeroAlloc": bench(1, 500, 64)})
	if _, regs := Compare(oldF, bad, 10); len(regs) != 1 {
		t.Fatalf("cold-run real regression missed: %+v", regs)
	}
	// Steady-state runs keep the strict slack.
	steady := file(map[string]Result{"BenchmarkZeroAlloc": bench(1000, 500, 16)})
	if _, regs := Compare(oldF, steady, 10); len(regs) != 1 {
		t.Fatalf("steady-state regression missed: %+v", regs)
	}
}

func TestCompareZeroBaselineUsesAbsoluteSlack(t *testing.T) {
	oldF := file(map[string]Result{"BenchmarkZero": bench(100, 100, 0)})
	ok := file(map[string]Result{"BenchmarkZero": bench(100, 100, 4)})
	if _, regs := Compare(oldF, ok, 10); len(regs) != 0 {
		t.Fatalf("slack-sized growth over zero baseline flagged: %+v", regs)
	}
	bad := file(map[string]Result{"BenchmarkZero": bench(100, 100, 40)})
	if _, regs := Compare(oldF, bad, 10); len(regs) != 1 {
		t.Fatalf("real growth over zero baseline missed: %+v", regs)
	}
}
