// Package benchfmt is the BENCH_*.json schema and regression gate
// shared by the benchjson CLI and every other producer of perf
// trajectory files (cmd/koalaload writes its fleet results in this
// format so load numbers ride the same -compare gate as the
// microbenchmarks).
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
)

// Result is one benchmark's measurement.
type Result struct {
	Package     string             `json:"package,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// File is the BENCH_*.json schema.
type File struct {
	GoVersion  string            `json:"go_version"`
	GoOS       string            `json:"goos"`
	GoArch     string            `json:"goarch"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// New returns an empty File stamped with this build's toolchain and
// platform.
func New() File {
	return File{
		GoVersion:  runtime.Version(),
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		Benchmarks: map[string]Result{},
	}
}

// Load reads a BENCH_*.json produced by this schema. A file without a
// single benchmark is an error: gating against it would pass vacuously.
func Load(path string) (File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return File{}, err
	}
	var f File
	if err := json.Unmarshal(b, &f); err != nil {
		return File{}, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Benchmarks) == 0 {
		return File{}, fmt.Errorf("%s: no benchmarks", path)
	}
	return f, nil
}

// Write marshals the file (indented, trailing newline) to path.
func (f File) Write(path string) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Absolute slack under which a delta is noise, not a regression: tiny
// benchmarks jitter by a few ns or a warmup allocation, and a pure
// percentage gate would flake on them.
const (
	nsSlack     = 50.0 // ns/op
	allocsSlack = 8.0  // allocs/op, steady-state runs
	// A single cold iteration charges one-time warmup allocations
	// (sync.Once, lazy tables, map growth) to the benchmark; in a full
	// run they amortize to ~0. Smoke runs get a wider absolute slack
	// so a zero-alloc hot path's warmup does not read as a regression.
	coldAllocsSlack = 32.0
)

// allocSlack picks the allocs/op slack for a pair of measurements:
// cold if either run made just one iteration.
func allocSlack(oldR, newR Result) float64 {
	if oldR.Iterations <= 1 || newR.Iterations <= 1 {
		return coldAllocsSlack
	}
	return allocsSlack
}

// Regression is one metric of one benchmark exceeding the gate.
type Regression struct {
	Name, Metric string
	Old, New     float64
	DeltaPercent float64
}

// exceeds applies the gate: relative growth beyond threshold percent
// AND absolute growth beyond slack.
func exceeds(oldV, newV, threshold, slack float64) (float64, bool) {
	if oldV <= 0 {
		// A zero baseline has no meaningful relative delta; the
		// absolute slack alone decides.
		return 0, newV-oldV > slack
	}
	pct := (newV - oldV) / oldV * 100
	return pct, pct > threshold && newV-oldV > slack
}

// Compare diffs new against old benchmark by benchmark, returning a
// human report and the regressions that should fail the gate.
// Benchmarks present on only one side are reported but never fail —
// suites legitimately grow and shrink across PRs.
func Compare(oldFile, newFile File, threshold float64) (report []string, regs []Regression) {
	names := make([]string, 0, len(oldFile.Benchmarks))
	for name := range oldFile.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		oldR := oldFile.Benchmarks[name]
		newR, ok := newFile.Benchmarks[name]
		if !ok {
			report = append(report, fmt.Sprintf("  %-60s removed", name))
			continue
		}
		// ns/op only means something when the run iterated: a
		// -benchtime=1x smoke measures a single call, cold.
		if oldR.NsPerOp > 0 && newR.NsPerOp > 0 && oldR.Iterations > 1 && newR.Iterations > 1 {
			if pct, bad := exceeds(oldR.NsPerOp, newR.NsPerOp, threshold, nsSlack); bad {
				regs = append(regs, Regression{name, "ns/op", oldR.NsPerOp, newR.NsPerOp, pct})
				report = append(report, fmt.Sprintf("REG %-60s ns/op     %12.1f -> %12.1f (%+.1f%%)",
					name, oldR.NsPerOp, newR.NsPerOp, pct))
			} else {
				report = append(report, fmt.Sprintf("  %-60s ns/op     %12.1f -> %12.1f (%+.1f%%)",
					name, oldR.NsPerOp, newR.NsPerOp, pct))
			}
		}
		if pct, bad := exceeds(oldR.AllocsPerOp, newR.AllocsPerOp, threshold, allocSlack(oldR, newR)); bad {
			regs = append(regs, Regression{name, "allocs/op", oldR.AllocsPerOp, newR.AllocsPerOp, pct})
			report = append(report, fmt.Sprintf("REG %-60s allocs/op %12.0f -> %12.0f (%+.1f%%)",
				name, oldR.AllocsPerOp, newR.AllocsPerOp, pct))
		} else if oldR.AllocsPerOp > 0 || newR.AllocsPerOp > 0 {
			report = append(report, fmt.Sprintf("  %-60s allocs/op %12.0f -> %12.0f (%+.1f%%)",
				name, oldR.AllocsPerOp, newR.AllocsPerOp, pct))
		}
	}
	added := make([]string, 0)
	for name := range newFile.Benchmarks {
		if _, ok := oldFile.Benchmarks[name]; !ok {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		report = append(report, fmt.Sprintf("  %-60s added", name))
	}
	return report, regs
}
