// Command koalalint mechanically enforces the repo's determinism and
// hot-path invariants: the claim that summaries are byte-identical across
// serial, parallel, streaming and multi-node execution holds only while no
// deterministic package reads the wall clock, iterates maps where order
// matters, draws unseeded randomness, or allocates closures on the event
// hot path. Reviewers used to hold those rules; this tool holds them at
// lint time, on every path, covered config or not.
//
// Usage:
//
//	go run ./tools/koalalint ./...
//	go run ./tools/koalalint -list
//
// It exits 1 when any analyzer reports a diagnostic, 2 on usage or load
// errors. The analyzers, their scopes and the //koalalint:ordered and
// //koalalint:alloc escape hatches are documented in docs/determinism.md.
//
// The checker is built on tools/koalalint/lint, a stdlib-only frame in the
// shape of golang.org/x/tools/go/analysis (the module deliberately has no
// dependencies, so the real multichecker is not available). It loads
// packages with `go list -deps` and type-checks them — standard library
// included — from source, so `go run ./tools/koalalint` needs nothing but
// the toolchain.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/tools/koalalint/analyzers"
	"repro/tools/koalalint/lint"
)

func main() {
	list := flag.Bool("list", false, "print the analyzers and their docs, then exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: koalalint [-list] [packages]\n\nAnalyzers: ")
		for i, a := range analyzers.All() {
			if i > 0 {
				fmt.Fprint(os.Stderr, ", ")
			}
			fmt.Fprint(os.Stderr, a.Name)
		}
		fmt.Fprintf(os.Stderr, "\n\nPackages default to ./... under the current directory.\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers.All() {
			fmt.Printf("%s: %s\n\n", a.Name, a.Doc)
		}
		return
	}

	pkgs, err := lint.Load(".", flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, analyzers.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "koalalint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "koalalint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "koalalint: %d package(s) clean\n", len(pkgs))
}
