package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Standard   bool
	GoFiles    []string
	ImportMap  map[string]string
}

// Load resolves the patterns with the go command, parses and type-checks
// every matched package and its transitive dependencies from source, and
// returns the matched packages ready for analysis. Test files are not
// loaded: the invariants koalalint enforces are about production code, and
// fixtures under testdata hold the violating examples.
//
// The loader shells out to `go list` (the toolchain is the only build
// dependency this module has) and type-checks the standard library from
// GOROOT sources with CGO_ENABLED=0, so it needs no pre-built export data
// and no module downloads.
func Load(dir string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := goList(dir, append([]string{"list", "--"}, patterns...))
	if err != nil {
		return nil, err
	}
	isTarget := make(map[string]bool, len(targets))
	for _, line := range bytes.Split(bytes.TrimSpace(targets), []byte("\n")) {
		if len(line) > 0 {
			isTarget[string(line)] = true
		}
	}

	args := append([]string{"list", "-deps", "-json=ImportPath,Dir,Name,Standard,GoFiles,ImportMap", "--"}, patterns...)
	out, err := goList(dir, args)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	checked := map[string]*types.Package{"unsafe": types.Unsafe}
	var result []*Package

	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		lp := new(listPackage)
		if err := dec.Decode(lp); err != nil {
			return nil, fmt.Errorf("koalalint: decoding go list output: %w", err)
		}
		if lp.ImportPath == "unsafe" {
			continue
		}
		files := make([]*ast.File, 0, len(lp.GoFiles))
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("koalalint: %w", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{
			Importer: mapImporter{checked: checked, importMap: lp.ImportMap},
			Sizes:    types.SizesFor("gc", runtime.GOARCH),
		}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("koalalint: type-checking %s: %w", lp.ImportPath, err)
		}
		checked[lp.ImportPath] = tpkg
		if isTarget[lp.ImportPath] {
			result = append(result, &Package{
				ImportPath: lp.ImportPath,
				Name:       lp.Name,
				Dir:        lp.Dir,
				Fset:       fset,
				Files:      files,
				Types:      tpkg,
				TypesInfo:  info,
			})
		}
	}
	return result, nil
}

// mapImporter resolves imports against the already-checked set, honoring
// the package's vendor/ImportMap indirections from go list.
type mapImporter struct {
	checked   map[string]*types.Package
	importMap map[string]string
}

func (m mapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	if pkg, ok := m.checked[path]; ok {
		return pkg, nil
	}
	// go list -deps emits dependencies before dependents, so a miss here
	// means the loader's input was not a closed dependency graph.
	return nil, fmt.Errorf("package %q not in dependency-ordered load", path)
}

// goList runs the go command in dir with cgo disabled (the pure-Go file set
// is what the source type-checker can close over).
func goList(dir string, args []string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("koalalint: go %s: %v\n%s", args[0], err, stderr.String())
	}
	return out, nil
}
