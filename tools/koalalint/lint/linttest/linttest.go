// Package linttest runs a lint.Analyzer over fixture packages and checks
// its diagnostics against // want comments, in the manner of
// golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under the test's testdata/src/<analyzer>/<pkg>; a line
// expecting a diagnostic carries a trailing comment:
//
//	for k := range m { // want `iterates in randomized order`
//
// The quoted text is a regexp matched against the diagnostic message.
// Every want must be matched by a diagnostic on its line and every
// diagnostic must be matched by a want, or the test fails.
package linttest

import (
	"fmt"
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/tools/koalalint/lint"
)

var wantRe = regexp.MustCompile("//\\s*want\\s+(`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads each fixture package dir (relative to testdata/src) and checks
// the analyzer's diagnostics against the fixtures' want comments.
func Run(t *testing.T, a *lint.Analyzer, fixtureDirs ...string) {
	t.Helper()
	patterns := make([]string, len(fixtureDirs))
	for i, d := range fixtureDirs {
		patterns[i] = "./testdata/src/" + d
	}
	pkgs, err := lint.Load(".", patterns)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run(pkgs, []*lint.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			wants = append(wants, collectWants(t, pkg, f)...)
		}
	}

	key := func(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }
	byLine := make(map[string][]*want)
	for _, w := range wants {
		byLine[key(w.file, w.line)] = append(byLine[key(w.file, w.line)], w)
	}
	for _, d := range diags {
		found := false
		for _, w := range byLine[key(d.Pos.Filename, d.Pos.Line)] {
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.re)
		}
	}
}

func collectWants(t *testing.T, pkg *lint.Package, f *ast.File) []*want {
	t.Helper()
	var out []*want
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			text := m[1]
			var pattern string
			if strings.HasPrefix(text, "`") {
				pattern = strings.Trim(text, "`")
			} else {
				var err error
				pattern, err = strconv.Unquote(text)
				if err != nil {
					t.Fatalf("%s: bad want string %s: %v", pkg.Fset.Position(c.Pos()), text, err)
				}
			}
			re, err := regexp.Compile(pattern)
			if err != nil {
				t.Fatalf("%s: bad want regexp %q: %v", pkg.Fset.Position(c.Pos()), pattern, err)
			}
			pos := pkg.Fset.Position(c.Pos())
			out = append(out, &want{file: pos.Filename, line: pos.Line, re: re})
		}
	}
	return out
}
