// Package lint is a small, dependency-free analysis framework in the shape
// of golang.org/x/tools/go/analysis: an Analyzer inspects one type-checked
// package at a time through a Pass and reports position-anchored
// diagnostics. The repo vendors nothing, so the x/tools multichecker is not
// available; this package provides the same seams (Analyzer, Pass,
// Diagnostic) on the standard library only, and the analyzers in
// tools/koalalint/analyzers would port to go/analysis mechanically if the
// dependency ever lands.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a single package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics (lowercase, no spaces).
	Name string
	// Doc is the one-paragraph description printed by `koalalint -help`.
	Doc string
	// Run inspects pass.Pkg and reports findings via pass.Report*.
	Run func(*Pass) error
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info

	directives map[string][]Directive // file name -> directives, built lazily
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies the analyzers to the packages and returns every diagnostic,
// sorted by file, line and column.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.ImportPath, err)
			}
			out = append(out, pass.diags...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// A Directive is a //koalalint:<kind> <justification> comment. Directives
// attach to the line they sit on and, for the statement-level kinds
// (ordered, alloc), to the line immediately below — the idiomatic spot is
// the line above the statement they justify.
type Directive struct {
	Kind          string // "ordered", "alloc", "hotpath", ...
	Justification string // everything after the kind, trimmed
	Line          int
}

const directivePrefix = "koalalint:"

// buildDirectives scans every comment in the package once.
func (p *Package) buildDirectives() {
	p.directives = make(map[string][]Directive)
	for _, f := range p.Files {
		file := p.Fset.File(f.Pos())
		if file == nil {
			continue
		}
		name := file.Name()
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSpace(strings.TrimSuffix(text, "*/"))
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, directivePrefix)
				kind, just, _ := strings.Cut(rest, " ")
				p.directives[name] = append(p.directives[name], Directive{
					Kind:          kind,
					Justification: strings.TrimSpace(just),
					Line:          p.Fset.Position(c.Pos()).Line,
				})
			}
		}
	}
}

// DirectiveAt returns the directive of the given kind governing the node:
// one on the node's first line, or on the line immediately above it.
func (p *Package) DirectiveAt(node ast.Node, kind string) (Directive, bool) {
	if p.directives == nil {
		p.buildDirectives()
	}
	pos := p.Fset.Position(node.Pos())
	for _, d := range p.directives[pos.Filename] {
		if d.Kind == kind && (d.Line == pos.Line || d.Line == pos.Line-1) {
			return d, true
		}
	}
	return Directive{}, false
}

// FuncDirective returns the directive of the given kind in the function's
// doc comment or on its declaration line.
func (p *Package) FuncDirective(fn *ast.FuncDecl, kind string) (Directive, bool) {
	if p.directives == nil {
		p.buildDirectives()
	}
	pos := p.Fset.Position(fn.Pos())
	lo := pos.Line
	if fn.Doc != nil {
		lo = p.Fset.Position(fn.Doc.Pos()).Line
	}
	for _, d := range p.directives[pos.Filename] {
		if d.Kind == kind && d.Line >= lo-1 && d.Line <= pos.Line {
			return d, true
		}
	}
	return Directive{}, false
}
