// Package analyzers holds the five repo-specific koalalint checks that
// mechanically enforce the determinism and hot-path invariants the
// byte-identical-summaries claim rests on:
//
//   - detwalltime: no wall-clock time in deterministic packages
//   - detorder:    no unordered map iteration without a justification
//   - detrand:     no unseeded randomness
//   - hotpathalloc: no closures or allocation on the event hot path
//   - obshook:     observability hooks nil-guarded and allocation-free
//
// See docs/determinism.md for the invariants and the escape hatches.
package analyzers

import (
	"go/ast"
	"go/types"
	"path"

	"repro/tools/koalalint/lint"
)

// deterministicDirs names the packages whose output feeds the
// byte-identical summaries: the sim kernel and everything that runs on it.
// Matching is by final import-path element so the analyzers apply equally
// to repro/internal/sim and to test fixtures under testdata/src.
// internal/server and internal/store are deliberately absent: they are the
// wall-clock edge of the system (uptime, journal timestamps, GC ages).
var deterministicDirs = map[string]bool{
	"sim":        true,
	"koala":      true,
	"gram":       true,
	"lrm":        true,
	"dynaco":     true,
	"runner":     true,
	"app":        true,
	"workload":   true,
	"stats":      true,
	"metrics":    true,
	"experiment": true,
}

// hotPathDirs is the scheduling stack swept by hotpathalloc: the sim
// kernel plus every package that schedules events in steady state. The
// setup-time packages (workload submission, experiment wiring) may use the
// closure API — they run once per replication, not once per event.
var hotPathDirs = map[string]bool{
	"sim":    true,
	"koala":  true,
	"gram":   true,
	"lrm":    true,
	"dynaco": true,
	"runner": true,
}

func isDeterministic(pkgPath string) bool { return deterministicDirs[path.Base(pkgPath)] }
func isHotPath(pkgPath string) bool       { return hotPathDirs[path.Base(pkgPath)] }

// All returns the koalalint suite in reporting order.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{DetWallTime, DetOrder, DetRand, HotPathAlloc, ObsHook}
}

// usedPackageFunc reports the package-level function from pkgPath that the
// identifier resolves to, if any. Methods and non-functions return nil.
func usedPackageFunc(info *types.Info, id *ast.Ident, pkgPath string) *types.Func {
	obj := info.Uses[id]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return nil
	}
	if fn.Signature().Recv() != nil {
		return nil
	}
	return fn
}

// inspectFiles walks every file of the package.
func inspectFiles(pkg *lint.Package, visit func(ast.Node) bool) {
	for _, f := range pkg.Files {
		ast.Inspect(f, visit)
	}
}
