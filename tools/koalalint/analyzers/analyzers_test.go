package analyzers

import (
	"testing"

	"repro/tools/koalalint/lint/linttest"
)

func TestDetWallTime(t *testing.T) {
	linttest.Run(t, DetWallTime, "detwalltime/sim", "detwalltime/notdet")
}

func TestDetOrder(t *testing.T) {
	linttest.Run(t, DetOrder, "detorder/koala")
}

func TestDetRand(t *testing.T) {
	linttest.Run(t, DetRand, "detrand/workload", "detrand/stats")
}

func TestHotPathAlloc(t *testing.T) {
	linttest.Run(t, HotPathAlloc, "hotpathalloc/sim", "hotpathalloc/workload")
}

func TestObsHook(t *testing.T) {
	linttest.Run(t, ObsHook, "obshook/obs", "obshook/sim", "obshook/koala", "obshook/notdet")
}

// TestDeterministicScope pins the package sets: the wall-clock edge of the
// system must stay out of the deterministic sweep, and the scheduling
// stack in the hot-path sweep.
func TestDeterministicScope(t *testing.T) {
	for _, p := range []string{
		"repro/internal/sim", "repro/internal/koala", "repro/internal/experiment",
		"repro/internal/stats", "repro/internal/metrics", "repro/internal/workload",
	} {
		if !isDeterministic(p) {
			t.Errorf("isDeterministic(%q) = false, want true", p)
		}
	}
	for _, p := range []string{
		"repro/internal/server", "repro/internal/store", "repro/internal/backend",
		"repro/internal/parallel", "repro/cmd/koalad", "repro/tools/benchjson",
	} {
		if isDeterministic(p) {
			t.Errorf("isDeterministic(%q) = true, want false", p)
		}
	}
	for _, p := range []string{"repro/internal/sim", "repro/internal/koala", "repro/internal/runner"} {
		if !isHotPath(p) {
			t.Errorf("isHotPath(%q) = false, want true", p)
		}
	}
	if isHotPath("repro/internal/workload") || isHotPath("repro/internal/experiment") {
		t.Error("setup-time packages must not be in the hot-path sweep")
	}
	for _, p := range []string{"repro/internal/sim", "repro/internal/core", "repro/internal/koala"} {
		if !isObsConsumer(p) {
			t.Errorf("isObsConsumer(%q) = false, want true", p)
		}
	}
	if isObsConsumer("repro/internal/server") || isObsConsumer("repro/internal/obs") {
		t.Error("the wall-clock edge and obs itself must not be in the hook-guard sweep")
	}
}
