package analyzers

import (
	"go/ast"
	"go/types"
	"path"

	"repro/tools/koalalint/lint"
)

// closureEntryPoints are the sim.Engine scheduling methods that take a
// func() and therefore allocate a closure per event when handed a literal.
// The allocation-free counterparts are AtOp/AfterOp/ImmediatelyOp.
var closureEntryPoints = map[string]string{
	"At":          "AtOp",
	"After":       "AfterOp",
	"Immediately": "ImmediatelyOp",
}

// allocBuiltins are the allocating builtins flagged inside
// //koalalint:hotpath functions.
var allocBuiltins = map[string]bool{"make": true, "new": true, "append": true}

// HotPathAlloc keeps the event hot path closure- and allocation-free.
var HotPathAlloc = &lint.Analyzer{
	Name: "hotpathalloc",
	Doc: `forbid closures and allocation on the event hot path

Two checks over the scheduling stack (internal/sim and the scheduler
packages):

 1. A function literal passed to Engine.At/After/Immediately allocates a
    closure per scheduled event. Steady-state callers must use the
    handler ops (AtOp/AfterOp/ImmediatelyOp) with a pre-bound sim.Handler.

 2. Inside functions marked //koalalint:hotpath (the engine's dispatch
    loop and heap operations), any allocating form is flagged: function
    literals, composite literals, make, new and append.

Either site can carry //koalalint:alloc <why> when the allocation is
amortized or setup-only; the justification text is required and the
allocs/op regression gate (make bench-compare) keeps it honest.`,
	Run: runHotPathAlloc,
}

func runHotPathAlloc(pass *lint.Pass) error {
	pkg := pass.Pkg
	if !isHotPath(pkg.ImportPath) {
		return nil
	}
	report := func(n ast.Node, format string, args ...any) {
		if d, ok := pkg.DirectiveAt(n, "alloc"); ok {
			if d.Justification == "" {
				pass.Reportf(n.Pos(), "//koalalint:alloc needs a justification for the allocation it permits")
			}
			return
		}
		pass.Reportf(n.Pos(), format, args...)
	}

	inspectFiles(pkg, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		opName, isEntry := closureEntryPoints[sel.Sel.Name]
		if !isEntry || !recvIsSimEngine(pkg.TypesInfo, sel) {
			return true
		}
		for _, arg := range call.Args {
			if _, isLit := arg.(*ast.FuncLit); isLit {
				report(call, "function literal passed to Engine.%s allocates a closure per event; pre-bind a sim.Handler and use Engine.%s",
					sel.Sel.Name, opName)
			}
		}
		return true
	})

	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, hot := pkg.FuncDirective(fn, "hotpath"); !hot {
				continue
			}
			name := fn.Name.Name
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					report(n, "function literal allocates in hot-path function %s", name)
					return false // its body is a different (escaped) context
				case *ast.CompositeLit:
					report(n, "composite literal allocates in hot-path function %s", name)
				case *ast.CallExpr:
					if id, ok := n.Fun.(*ast.Ident); ok && allocBuiltins[id.Name] && isBuiltin(pkg.TypesInfo, id) {
						report(n, "%s allocates in hot-path function %s", id.Name, name)
					}
				}
				return true
			})
		}
	}
	return nil
}

// recvIsSimEngine reports whether the selector is a method call on a type
// named Engine from a package whose final path element is "sim".
func recvIsSimEngine(info *types.Info, sel *ast.SelectorExpr) bool {
	s, ok := info.Selections[sel]
	if !ok {
		return false
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Engine" && obj.Pkg() != nil && path.Base(obj.Pkg().Path()) == "sim"
}

// isBuiltin reports whether the identifier resolves to a language builtin
// (and not, say, a local function shadowing the name).
func isBuiltin(info *types.Info, id *ast.Ident) bool {
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}
