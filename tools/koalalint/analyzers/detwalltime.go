package analyzers

import (
	"go/ast"

	"repro/tools/koalalint/lint"
)

// wallClockFuncs are the package time entry points that read or depend on
// the machine clock. Pure data types (time.Duration arithmetic, constants)
// are fine: they carry no nondeterminism.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"After":     true,
	"AfterFunc": true,
	"Sleep":     true,
}

// DetWallTime forbids wall-clock time in the deterministic packages.
var DetWallTime = &lint.Analyzer{
	Name: "detwalltime",
	Doc: `forbid wall-clock time in deterministic packages

Simulation results must be a pure function of (config, seed). time.Now and
friends leak the machine clock into that function; simulated time comes
from the sim engine (Engine.Now, Engine.At/AtOp). Packages outside the
deterministic set (internal/server, internal/store) may use the clock.`,
	Run: runDetWallTime,
}

func runDetWallTime(pass *lint.Pass) error {
	pkg := pass.Pkg
	if !isDeterministic(pkg.ImportPath) {
		return nil
	}
	inspectFiles(pkg, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn := usedPackageFunc(pkg.TypesInfo, sel.Sel, "time")
		if fn == nil || !wallClockFuncs[fn.Name()] {
			return true
		}
		pass.Reportf(sel.Pos(),
			"time.%s reads the wall clock in a deterministic package; simulated time must come from the sim engine (Engine.Now / AtOp)",
			fn.Name())
		return true
	})
	return nil
}
