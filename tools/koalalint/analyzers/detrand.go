package analyzers

import (
	"go/ast"
	"strconv"
	"strings"

	"repro/tools/koalalint/lint"
)

// DetRand forbids unseeded randomness in deterministic packages: the
// global math/rand source (process-seeded since Go 1.20) and crypto/rand
// (never reproducible). Randomness must flow through the seeded generator
// the experiment config threads in — sim.RNG, or a *rand.Rand constructed
// from the experiment seed.
var DetRand = &lint.Analyzer{
	Name: "detrand",
	Doc: `forbid unseeded randomness in deterministic packages

Top-level math/rand functions (rand.Intn, rand.Float64, rand.Shuffle, ...)
draw from the process-global source, which Go seeds randomly at startup;
crypto/rand is nondeterministic by contract. Either one breaks the
(config, seed) -> summary function. Instance methods on a seeded
*rand.Rand and the constructors (rand.New, rand.NewSource, ...) are
allowed; the repo's own seeded generator is sim.RNG.`,
	Run: runDetRand,
}

func runDetRand(pass *lint.Pass) error {
	pkg := pass.Pkg
	if !isDeterministic(pkg.ImportPath) {
		return nil
	}
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if p == "crypto/rand" {
				pass.Reportf(imp.Pos(),
					"crypto/rand is nondeterministic by contract and has no place in a deterministic package; derive randomness from the experiment seed (sim.RNG)")
			}
		}
	}
	inspectFiles(pkg, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		for _, randPath := range []string{"math/rand", "math/rand/v2"} {
			fn := usedPackageFunc(pkg.TypesInfo, sel.Sel, randPath)
			if fn == nil {
				continue
			}
			// Constructors build a caller-seeded instance; only the
			// top-level draws hit the global source.
			if strings.HasPrefix(fn.Name(), "New") {
				return true
			}
			pass.Reportf(sel.Pos(),
				"%s.%s draws from the unseeded process-global source; thread the seeded generator from the experiment config (sim.RNG or a *rand.Rand built with rand.New)",
				randPath, fn.Name())
			return true
		}
		return true
	})
	return nil
}
