// Package stats is a detrand fixture for the crypto/rand half of the
// check: the import alone is the finding.
package stats

import (
	crand "crypto/rand" // want `crypto/rand is nondeterministic by contract`
)

func entropy(buf []byte) {
	_, _ = crand.Read(buf)
}
