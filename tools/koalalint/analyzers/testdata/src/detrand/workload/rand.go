// Package workload is a detrand fixture: randomness must come from a
// seeded generator, never the process-global source.
package workload

import (
	"math/rand"
)

func violations() {
	_ = rand.Intn(10)     // want `math/rand\.Intn draws from the unseeded process-global source`
	_ = rand.Float64()    // want `math/rand\.Float64 draws from the unseeded process-global source`
	rand.Shuffle(3, swap) // want `math/rand\.Shuffle draws from the unseeded process-global source`
	rand.Seed(42)         // want `math/rand\.Seed draws from the unseeded process-global source`
}

func swap(i, j int) {}

// allowed: a caller-seeded instance is exactly how randomness should flow.
func allowed(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64() + float64(r.Intn(10))
}
