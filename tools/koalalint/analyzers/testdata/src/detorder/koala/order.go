// Package koala is a detorder fixture: map iteration order must either be
// laundered through a sort or justified as order-insensitive.
package koala

import (
	"sort"
	"sync"
)

func violation(m map[string]int) int {
	total := 0
	for _, v := range m { // want `range over map iterates in randomized order`
		total += v
	}
	return total
}

func syncMapViolation(m *sync.Map) {
	m.Range(func(k, v any) bool { return true }) // want `sync\.Map\.Range iterates in randomized order`
}

// justified: the fold is commutative, order cannot reach the output.
func annotated(m map[string]int) int {
	total := 0
	//koalalint:ordered integer addition is commutative; only the total escapes
	for _, v := range m {
		total += v
	}
	return total
}

// A bare annotation is not a justification.
func annotatedWithoutReason(m map[string]int) int {
	n := 0
	//koalalint:ordered
	for range m { // want `needs a justification`
		n++
	}
	return n
}

// sortedKeys is the preferred fix: iterate a sorted key slice.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//koalalint:ordered keys are sorted before any ordered use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Slices and channels range deterministically; a Range method on a
// non-sync.Map type is someone else's contract.
func allowed(xs []int, ch chan int, t customMap) {
	for range xs {
	}
	for range ch {
		break
	}
	t.Range(func(k, v any) bool { return true })
}

type customMap struct{}

func (customMap) Range(func(k, v any) bool) {}
