// Package sim is a hotpathalloc fixture: a miniature of the real engine's
// scheduling API, with the closure entry points and a marked hot loop.
package sim

// Handler mirrors the real sim.Handler.
type Handler interface{ OnEvent(op int) }

// Event mirrors the real event handle.
type Event struct{}

// Engine mirrors the real engine's scheduling surface; hotpathalloc keys
// on the type name and the package's final path element.
type Engine struct {
	queue []*Event
	now   float64
}

func (e *Engine) At(t float64, fn func()) *Event           { return &Event{} }
func (e *Engine) After(d float64, fn func()) *Event        { return &Event{} }
func (e *Engine) Immediately(fn func()) *Event             { return &Event{} }
func (e *Engine) AtOp(t float64, h Handler, op int) *Event { return &Event{} }

type prebound struct{ e *Engine }

func (p *prebound) OnEvent(op int) {}

func closureViolations(e *Engine) {
	e.At(1, func() {})       // want `function literal passed to Engine\.At .* use Engine\.AtOp`
	e.After(1, func() {})    // want `function literal passed to Engine\.After .* use Engine\.AfterOp`
	e.Immediately(func() {}) // want `function literal passed to Engine\.Immediately .* use Engine\.ImmediatelyOp`
}

func closureAllowed(e *Engine, p *prebound, cb func()) {
	e.AtOp(1, p, 0) // the closure-free handler op
	e.At(1, cb)     // a passed-through func value is the caller's allocation
	//koalalint:alloc one-shot horizon stop scheduled at setup, not per event
	e.Immediately(func() {})
}

//koalalint:hotpath
func (e *Engine) step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.queue[0]
	e.queue = e.queue[1:]
	_ = ev
	e.now++
	return true
}

//koalalint:hotpath
func (e *Engine) push(ev *Event) {
	//koalalint:alloc amortized: queue capacity is retained across events
	e.queue = append(e.queue, ev)
}

//koalalint:hotpath
func (e *Engine) hotViolations(n int) {
	e.queue = append(e.queue, nil) // want `append allocates in hot-path function hotViolations`
	_ = make([]int, n)             // want `make allocates in hot-path function hotViolations`
	_ = new(Event)                 // want `new allocates in hot-path function hotViolations`
	_ = &Event{}                   // want `composite literal allocates in hot-path function hotViolations`
	_ = func() {}                  // want `function literal allocates in hot-path function hotViolations`
}

// Unmarked functions may allocate freely.
func coldSetup(n int) []*Event {
	out := make([]*Event, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, &Event{})
	}
	return out
}
