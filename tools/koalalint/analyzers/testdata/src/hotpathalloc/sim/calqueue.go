package sim

// Calendar-queue fixture: a miniature of the real queue's insert/pop/
// resize surface, checking that the marked hot-path operations stay
// allocation-free except for the annotated amortized growth points.

// QEvent mirrors the event handle the queue stores.
type QEvent struct {
	time float64
	seq  uint64
	pos  int32
}

type calQueue struct {
	buckets  [][]*QEvent
	overflow []*QEvent
	cur      int
}

//koalalint:hotpath
func (q *calQueue) push(ev *QEvent) {
	if ev.time > 1e6 {
		//koalalint:alloc amortized: the overflow rung retains its capacity across events
		q.overflow = append(q.overflow, ev)
		return
	}
	q.bucketInsert(0, ev)
}

//koalalint:hotpath
func (q *calQueue) bucketInsert(b int, ev *QEvent) {
	s := q.buckets[b]
	//koalalint:alloc amortized: bucket slices retain their capacity across events
	s = append(s, ev)
	q.buckets[b] = s
}

//koalalint:hotpath
func (q *calQueue) popMin() *QEvent {
	s := q.buckets[q.cur]
	ev := s[0]
	q.buckets[q.cur] = s[1:]
	return ev
}

// grow is the resize path: unmarked, so the doubling allocation is free to
// happen here (it is amortized across years in the real queue).
func (q *calQueue) grow() {
	grown := make([][]*QEvent, 2*len(q.buckets))
	copy(grown, q.buckets)
	q.buckets = grown
}

//koalalint:hotpath
func (q *calQueue) queueViolations() {
	q.overflow = append(q.overflow, nil) // want `append allocates in hot-path function queueViolations`
	_ = &QEvent{}                        // want `composite literal allocates in hot-path function queueViolations`
	_ = make([]*QEvent, 8)               // want `make allocates in hot-path function queueViolations`
}
