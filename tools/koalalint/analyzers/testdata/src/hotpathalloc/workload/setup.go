// Package workload is deterministic but not part of the scheduling stack:
// submission-time closures run once per replication, not once per event,
// so hotpathalloc leaves them alone.
package workload

import "repro/tools/koalalint/analyzers/testdata/src/hotpathalloc/sim"

func Submit(e *sim.Engine, at float64) {
	e.At(at, func() {})
}
