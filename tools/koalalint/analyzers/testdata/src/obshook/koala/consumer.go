// Package koala is an obshook fixture: a deterministic consumer feeding
// the concrete SimStats collector through nil-guarded hooks.
package koala

import "repro/tools/koalalint/analyzers/testdata/src/obshook/obs"

// Manager mirrors the real manager's Stats wiring.
type Manager struct {
	now   float64
	Stats *obs.SimStats
}

func (m *Manager) round() {
	if m.Stats != nil {
		m.Stats.GrowDecisions(m.now, 1) // guarded: fine
	}
	m.Stats.EventFired(m.now) // want `m\.Stats\.EventFired called without an enclosing .if m\.Stats != nil. guard`
	if m.Stats == nil {
		return
	}
	// An early-return guard is not a lexical if-body: the directive is
	// the documented escape for this shape.
	//koalalint:obs guarded by the early return above
	m.Stats.EventFired(m.now)
	//koalalint:obs
	m.Stats.EventFired(m.now) // want `//koalalint:obs needs a justification`
}
