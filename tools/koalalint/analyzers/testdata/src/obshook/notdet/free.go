// Package notdet sits outside the deterministic sweep (and outside
// internal/core), so obshook leaves its hook calls alone: server-side
// consumers own their collectors and may call them unguarded.
package notdet

import "repro/tools/koalalint/analyzers/testdata/src/obshook/obs"

func report(s *obs.SimStats) obs.Snapshot {
	s.EventFired(1) // unguarded, but not in scope
	return s.TakeSnapshot()
}
