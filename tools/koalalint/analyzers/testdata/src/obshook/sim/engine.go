// Package sim is an obshook fixture for the interface side: calls through
// the Stats interface in a deterministic package need the same nil guard
// as calls on the concrete collector.
package sim

// Stats mirrors the real engine hook interface; obshook keys on the type
// name and the package's final path element.
type Stats interface {
	EventFired(now float64)
	EventScheduled(at float64)
}

// Engine mirrors the real engine's stats seam.
type Engine struct {
	now   float64
	stats Stats
}

func (e *Engine) step() {
	e.now++
	if e.stats != nil {
		e.stats.EventFired(e.now) // guarded: fine
	}
	e.stats.EventScheduled(e.now) // want `e\.stats\.EventScheduled called without an enclosing .if e\.stats != nil. guard`
}

func (e *Engine) guardedElsewhere(other *Engine) {
	if e.stats != nil {
		// The guard names a different receiver than the call.
		other.stats.EventFired(e.now) // want `other\.stats\.EventFired called without an enclosing .if other\.stats != nil. guard`
	}
	if e.stats != nil && e.now > 0 {
		e.stats.EventFired(e.now) // a conjunct guards the whole body
	}
	//koalalint:obs constructor-owned collector, never nil by construction
	e.stats.EventFired(e.now)
}
