// Package obs is an obshook fixture: a miniature of the real SimStats
// collector. Recording hooks (methods with no results) must not read the
// wall clock or allocate; accessors returning values may do both.
package obs

import "time"

// SimStats mirrors the real collector; obshook keys on the type name and
// the package's final path element.
type SimStats struct {
	fired   int64
	horizon float64
	labels  []string
}

// Snapshot mirrors the real accessor shape.
type Snapshot struct {
	Fired   int64
	Horizon float64
}

// EventFired is a well-behaved hook: plain arithmetic on simulated time.
func (s *SimStats) EventFired(now float64) {
	s.fired++
	if now > s.horizon {
		s.horizon = now
	}
}

// EventScheduled reads the machine clock inside a hook.
func (s *SimStats) EventScheduled(at float64) {
	_ = time.Now() // want `time\.Now reads the wall clock in SimStats hook EventScheduled`
	s.fired++
}

// EventCanceled allocates inside a hook.
func (s *SimStats) EventCanceled(now float64) {
	s.labels = append(s.labels, "canceled") // want `append allocates in SimStats hook EventCanceled`
	_ = make([]int, 4)                      // want `make allocates in SimStats hook EventCanceled`
	_ = &Snapshot{}                         // want `composite literal allocates in SimStats hook EventCanceled`
	_ = func() {}                           // want `function literal allocates in SimStats hook EventCanceled`
}

// GrowDecisions carries a justified amortized allocation.
func (s *SimStats) GrowDecisions(now float64, n int) {
	//koalalint:alloc amortized: the label slice retains its capacity
	s.labels = append(s.labels, "grow")
}

// TakeSnapshot returns a value, so it is an accessor, not a hook: the
// composite literal and the wall-clock read are both fine here.
func (s *SimStats) TakeSnapshot() Snapshot {
	_ = time.Now()
	return Snapshot{Fired: s.fired, Horizon: s.horizon}
}
