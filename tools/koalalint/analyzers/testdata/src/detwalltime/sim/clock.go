// Package sim is a detwalltime fixture: its import path ends in a
// deterministic package name, so every wall-clock read is a finding.
package sim

import "time"

func violations() time.Time {
	t := time.Now()                        // want `time\.Now reads the wall clock`
	_ = time.Since(t)                      // want `time\.Since reads the wall clock`
	_ = time.Tick(time.Second)             // want `time\.Tick reads the wall clock`
	_ = time.After(time.Second)            // want `time\.After reads the wall clock`
	time.Sleep(1)                          // want `time\.Sleep reads the wall clock`
	_ = time.NewTimer(time.Second)         // want `time\.NewTimer reads the wall clock`
	time.AfterFunc(time.Second, func() {}) // want `time\.AfterFunc reads the wall clock`
	return t
}

// allowed: pure time arithmetic carries no nondeterminism.
func allowed() time.Duration {
	d := 3 * time.Second
	_ = time.Duration(42).String()
	_ = time.Unix(0, 0)
	return d
}
