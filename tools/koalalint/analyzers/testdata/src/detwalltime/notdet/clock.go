// Package notdet is outside the deterministic set: wall-clock reads are
// its business (cf. internal/server, internal/store) and none may be
// flagged.
package notdet

import "time"

func Uptime(start time.Time) time.Duration { return time.Since(start) }

func Stamp() int64 { return time.Now().UnixNano() }
