package analyzers

import (
	"go/ast"
	"go/types"

	"repro/tools/koalalint/lint"
)

// DetOrder flags map iteration in deterministic packages: Go randomizes
// map range order, and that order leaks straight into event order, NDJSON
// streams and summary bytes unless the loop is order-insensitive.
var DetOrder = &lint.Analyzer{
	Name: "detorder",
	Doc: `flag unordered map iteration in deterministic packages

range over a map (and sync.Map.Range) observes Go's randomized iteration
order. On any path that feeds events, streams or summaries that makes
output depend on the hash seed. Loops that are genuinely order-insensitive
(commutative folds, key collection followed by a sort) carry a
justification:

    //koalalint:ordered keys are sorted before use below

The justification text is required; a bare //koalalint:ordered is itself
a diagnostic.`,
	Run: runDetOrder,
}

func runDetOrder(pass *lint.Pass) error {
	pkg := pass.Pkg
	if !isDeterministic(pkg.ImportPath) {
		return nil
	}
	report := func(n ast.Node, what string) {
		if d, ok := pkg.DirectiveAt(n, "ordered"); ok {
			if d.Justification == "" {
				pass.Reportf(n.Pos(), "//koalalint:ordered needs a justification explaining why %s is order-insensitive", what)
			}
			return
		}
		pass.Reportf(n.Pos(),
			"%s iterates in randomized order in a deterministic package; iterate a sorted key slice, or annotate the loop with //koalalint:ordered <why order cannot matter>",
			what)
	}
	inspectFiles(pkg, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			tv, ok := pkg.TypesInfo.Types[n.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				report(n, "range over map")
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Range" {
				return true
			}
			if recvIsSyncMap(pkg.TypesInfo, sel) {
				report(n, "sync.Map.Range")
			}
		}
		return true
	})
	return nil
}

// recvIsSyncMap reports whether the selector is a method call on sync.Map.
func recvIsSyncMap(info *types.Info, sel *ast.SelectorExpr) bool {
	s, ok := info.Selections[sel]
	if !ok {
		return false
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Map"
}
