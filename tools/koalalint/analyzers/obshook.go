package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"

	"repro/tools/koalalint/lint"
)

// ObsHook keeps the passive observability hooks passive. The obs.SimStats
// collector is fed from the event hot path of deterministic packages, so
// two invariants carry its zero-overhead-when-disabled claim.
var ObsHook = &lint.Analyzer{
	Name: "obshook",
	Doc: `keep the obs.SimStats observability hooks nil-guarded and allocation-free

Two checks:

 1. In the deterministic packages (plus internal/core, which wires the
    manager), every method call on an obs.SimStats value or a sim.Stats
    interface must sit inside an if-statement guarding that exact
    receiver against nil (if x != nil { x.Hook(...) }). An unguarded
    call either panics when collection is off or forces callers to box
    nil pointers into the interface, which defeats the engine's guard.
    //koalalint:obs <why> on the call line exempts a justified site.

 2. In package obs itself, SimStats recording hooks — methods with no
    results, fed per event — must not read the wall clock and must not
    allocate (no closures, composite literals, make, new or append):
    their callers sit on the hot path whose allocs/op budget is zero,
    and wall-clock reads would leak nondeterminism back into the run.
    Accessors that return values (Snapshot) may allocate freely;
    //koalalint:alloc <why> exempts an amortized allocation.`,
	Run: runObsHook,
}

// isObsConsumer reports whether rule 1 applies: the deterministic sweep
// plus internal/core, which owns the manager's Stats wiring.
func isObsConsumer(pkgPath string) bool {
	return isDeterministic(pkgPath) || path.Base(pkgPath) == "core"
}

func runObsHook(pass *lint.Pass) error {
	pkg := pass.Pkg
	if isObsConsumer(pkg.ImportPath) {
		checkObsGuards(pass)
	}
	if path.Base(pkg.ImportPath) == "obs" {
		checkObsHookBodies(pass)
	}
	return nil
}

// nilGuard is one `expr != nil` comparison and the statement range it
// protects (the if-statement's body).
type nilGuard struct {
	expr     string
	from, to token.Pos
}

// checkObsGuards enforces rule 1: hook-receiver method calls must be
// lexically inside an if-body guarded by `<receiver> != nil`.
func checkObsGuards(pass *lint.Pass) {
	pkg := pass.Pkg

	var guards []nilGuard
	inspectFiles(pkg, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		for _, expr := range nilCheckedExprs(ifs.Cond) {
			guards = append(guards, nilGuard{expr: expr, from: ifs.Body.Pos(), to: ifs.Body.End()})
		}
		return true
	})

	inspectFiles(pkg, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !recvIsObsHook(pkg.TypesInfo, sel) {
			return true
		}
		recv := exprString(sel.X)
		if recv == "" {
			// A receiver too complex to render (call results, index
			// expressions) cannot match a guard textually; require the
			// directive.
			recv = "<complex receiver>"
		}
		for _, g := range guards {
			if g.expr == recv && call.Pos() >= g.from && call.Pos() <= g.to {
				return true
			}
		}
		if d, ok := pkg.DirectiveAt(call, "obs"); ok {
			if d.Justification == "" {
				pass.Reportf(call.Pos(), "//koalalint:obs needs a justification for the unguarded hook call it permits")
			}
			return true
		}
		pass.Reportf(call.Pos(),
			"%s.%s called without an enclosing `if %s != nil` guard; observability hooks must cost nothing when disabled",
			recv, sel.Sel.Name, recv)
		return true
	})
}

// nilCheckedExprs extracts the rendered left-hand sides of `x != nil`
// comparisons from an if condition, descending through && conjunctions
// (either conjunct guards the whole body).
func nilCheckedExprs(cond ast.Expr) []string {
	switch e := cond.(type) {
	case *ast.ParenExpr:
		return nilCheckedExprs(e.X)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			return append(nilCheckedExprs(e.X), nilCheckedExprs(e.Y)...)
		case token.NEQ:
			if isNilIdent(e.Y) {
				if s := exprString(e.X); s != "" {
					return []string{s}
				}
			}
			if isNilIdent(e.X) {
				if s := exprString(e.Y); s != "" {
					return []string{s}
				}
			}
		}
	}
	return nil
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// exprString renders the simple receiver forms a nil guard can name:
// identifiers and selector chains. Anything else renders empty.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if x := exprString(e.X); x != "" {
			return x + "." + e.Sel.Name
		}
	case *ast.ParenExpr:
		return exprString(e.X)
	}
	return ""
}

// recvIsObsHook reports whether the selector is a method call on
// obs.SimStats (by value or pointer) or on the sim.Stats interface,
// matching by type name and final package-path element so the analyzer
// applies equally to the real packages and to test fixtures.
func recvIsObsHook(info *types.Info, sel *ast.SelectorExpr) bool {
	s, ok := info.Selections[sel]
	if !ok {
		return false
	}
	t := s.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	base := path.Base(obj.Pkg().Path())
	return (obj.Name() == "SimStats" && base == "obs") ||
		(obj.Name() == "Stats" && base == "sim")
}

// checkObsHookBodies enforces rule 2: SimStats recording hooks (methods
// with no results) stay wall-clock-free and allocation-free.
func checkObsHookBodies(pass *lint.Pass) {
	pkg := pass.Pkg
	report := func(n ast.Node, format string, args ...any) {
		if d, ok := pkg.DirectiveAt(n, "alloc"); ok {
			if d.Justification == "" {
				pass.Reportf(n.Pos(), "//koalalint:alloc needs a justification for the allocation it permits")
			}
			return
		}
		pass.Reportf(n.Pos(), format, args...)
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isSimStatsHook(pkg.TypesInfo, fn) {
				continue
			}
			name := fn.Name.Name
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					report(n, "function literal allocates in SimStats hook %s", name)
					return false
				case *ast.CompositeLit:
					report(n, "composite literal allocates in SimStats hook %s", name)
				case *ast.CallExpr:
					if id, ok := n.Fun.(*ast.Ident); ok && allocBuiltins[id.Name] && isBuiltin(pkg.TypesInfo, id) {
						report(n, "%s allocates in SimStats hook %s", id.Name, name)
					}
				case *ast.SelectorExpr:
					if wf := usedPackageFunc(pkg.TypesInfo, n.Sel, "time"); wf != nil && wallClockFuncs[wf.Name()] {
						pass.Reportf(n.Pos(),
							"time.%s reads the wall clock in SimStats hook %s; hooks record only simulated time",
							wf.Name(), name)
					}
				}
				return true
			})
		}
	}
}

// isSimStatsHook reports whether fn is a recording hook: a method on
// SimStats (value or pointer receiver) with no results. Accessors that
// return values (Snapshot) are not hooks and may allocate.
func isSimStatsHook(info *types.Info, fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return false
	}
	if fn.Type.Results != nil && len(fn.Type.Results.List) > 0 {
		return false
	}
	obj, ok := info.Defs[fn.Name].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "SimStats"
}
