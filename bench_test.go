// Package repro's root benchmark harness regenerates every table and figure
// of the paper's evaluation (§VI–VII) as testing.B benchmarks — one per
// table and figure — and reports the headline statistic of each as a custom
// benchmark metric so `go test -bench=.` doubles as a results table.
//
// Absolute numbers need not match the paper (our substrate is a simulator,
// not the authors' DAS-3 testbed); the *shapes* — who wins, by roughly what
// factor — are pinned by the regression tests in internal/experiment.
package repro

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/app"
	"repro/internal/experiment"
	"repro/internal/gram"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/workload"
)

// benchSets caches one PRA and one PWA set so the twelve figure benchmarks
// measure figure *extraction* against a realistic base without re-running
// the four-combination simulation twelve times per -bench invocation.
var (
	setOnce sync.Once
	praSet  *experiment.Set
	pwaSet  *experiment.Set
)

func figureSets(b *testing.B) (*experiment.Set, *experiment.Set) {
	b.Helper()
	setOnce.Do(func() {
		var err error
		praSet, err = experiment.RunSet("PRA", experiment.PRACombos(), experiment.Config{Runs: 1, Seed: 1})
		if err != nil {
			panic(err)
		}
		pwaSet, err = experiment.RunSet("PWA", experiment.PWACombos(), experiment.Config{Runs: 1, Seed: 1})
		if err != nil {
			panic(err)
		}
	})
	return praSet, pwaSet
}

// BenchmarkTable1Testbed regenerates Table I (the DAS-3 node distribution).
func BenchmarkTable1Testbed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiment.Table1() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig6Scaling regenerates Fig. 6 (application runtimes vs machine
// count) and reports the best execution times of both applications.
func BenchmarkFig6Scaling(b *testing.B) {
	var fig experiment.Figure
	for i := 0; i < b.N; i++ {
		fig = experiment.Fig6()
	}
	ft, gadget := app.FTModel(), app.GadgetModel()
	b.ReportMetric(ft.Time(app.BestProcs(ft, 32)), "FT-best-s")
	b.ReportMetric(gadget.Time(app.BestProcs(gadget, 46)), "GADGET-best-s")
	_ = fig
}

// praFigBench benchmarks one Fig. 7 sub-figure extraction and reports the
// headline metric for the EGS/Wm and FPSMA/Wm curves.
func praFigBench(b *testing.B, extract func(*experiment.Set) experiment.Figure,
	metric func(*experiment.Result) float64, unit string) {
	pra, _ := figureSets(b)
	b.ResetTimer()
	var fig experiment.Figure
	for i := 0; i < b.N; i++ {
		fig = extract(pra)
	}
	b.StopTimer()
	if len(fig.Series) != 4 {
		b.Fatalf("figure has %d series, want 4", len(fig.Series))
	}
	b.ReportMetric(metric(pra.Results["EGS/Wm"]), "EGS-"+unit)
	b.ReportMetric(metric(pra.Results["FPSMA/Wm"]), "FPSMA-"+unit)
}

// pwaFigBench is praFigBench for Fig. 8 (W'm curves).
func pwaFigBench(b *testing.B, extract func(*experiment.Set) experiment.Figure,
	metric func(*experiment.Result) float64, unit string) {
	_, pwa := figureSets(b)
	b.ResetTimer()
	var fig experiment.Figure
	for i := 0; i < b.N; i++ {
		fig = extract(pwa)
	}
	b.StopTimer()
	if len(fig.Series) != 4 {
		b.Fatalf("figure has %d series, want 4", len(fig.Series))
	}
	b.ReportMetric(metric(pwa.Results["EGS/W'm"]), "EGS-"+unit)
	b.ReportMetric(metric(pwa.Results["FPSMA/W'm"]), "FPSMA-"+unit)
}

func meanAvgSize(r *experiment.Result) float64 {
	return stats.Mean(metrics.AvgProcsOf(r.MalleableRecords()))
}

func meanMaxSize(r *experiment.Result) float64 {
	return stats.Mean(metrics.MaxProcsOf(r.MalleableRecords()))
}

// BenchmarkFig7aAvgSizePRA — CDF of per-job average processor counts.
func BenchmarkFig7aAvgSizePRA(b *testing.B) {
	praFigBench(b, func(s *experiment.Set) experiment.Figure { return s.FigSizesAvg("7a") },
		meanAvgSize, "mean-avg-procs")
}

// BenchmarkFig7bMaxSizePRA — CDF of per-job maximum processor counts.
func BenchmarkFig7bMaxSizePRA(b *testing.B) {
	praFigBench(b, func(s *experiment.Set) experiment.Figure { return s.FigSizesMax("7b") },
		meanMaxSize, "mean-max-procs")
}

// BenchmarkFig7cExecTimePRA — CDF of execution times.
func BenchmarkFig7cExecTimePRA(b *testing.B) {
	praFigBench(b, func(s *experiment.Set) experiment.Figure { return s.FigExecTimes("7c") },
		(*experiment.Result).MeanExecution, "mean-exec-s")
}

// BenchmarkFig7dRespTimePRA — CDF of response times.
func BenchmarkFig7dRespTimePRA(b *testing.B) {
	praFigBench(b, func(s *experiment.Set) experiment.Figure { return s.FigResponseTimes("7d") },
		(*experiment.Result).MeanResponse, "mean-resp-s")
}

// BenchmarkFig7eUtilizationPRA — platform utilisation over time.
func BenchmarkFig7eUtilizationPRA(b *testing.B) {
	praFigBench(b, func(s *experiment.Set) experiment.Figure { return s.FigUtilization("7e", 0, 40000, 500) },
		(*experiment.Result).MeanUtilization, "mean-util-procs")
}

// BenchmarkFig7fGrowMsgsPRA — cumulative grow messages over time.
func BenchmarkFig7fGrowMsgsPRA(b *testing.B) {
	praFigBench(b, func(s *experiment.Set) experiment.Figure { return s.FigOps("7f", 0, 40000, 500) },
		(*experiment.Result).TotalOps, "ops")
}

// BenchmarkFig8aAvgSizePWA — CDF of per-job average processor counts (PWA).
func BenchmarkFig8aAvgSizePWA(b *testing.B) {
	pwaFigBench(b, func(s *experiment.Set) experiment.Figure { return s.FigSizesAvg("8a") },
		meanAvgSize, "mean-avg-procs")
}

// BenchmarkFig8bMaxSizePWA — CDF of per-job maximum processor counts (PWA).
func BenchmarkFig8bMaxSizePWA(b *testing.B) {
	pwaFigBench(b, func(s *experiment.Set) experiment.Figure { return s.FigSizesMax("8b") },
		meanMaxSize, "mean-max-procs")
}

// BenchmarkFig8cExecTimePWA — CDF of execution times (PWA).
func BenchmarkFig8cExecTimePWA(b *testing.B) {
	pwaFigBench(b, func(s *experiment.Set) experiment.Figure { return s.FigExecTimes("8c") },
		(*experiment.Result).MeanExecution, "mean-exec-s")
}

// BenchmarkFig8dRespTimePWA — CDF of response times (PWA).
func BenchmarkFig8dRespTimePWA(b *testing.B) {
	pwaFigBench(b, func(s *experiment.Set) experiment.Figure { return s.FigResponseTimes("8d") },
		(*experiment.Result).MeanResponse, "mean-resp-s")
}

// BenchmarkFig8eUtilizationPWA — platform utilisation over time (PWA).
func BenchmarkFig8eUtilizationPWA(b *testing.B) {
	pwaFigBench(b, func(s *experiment.Set) experiment.Figure { return s.FigUtilization("8e", 0, 12000, 200) },
		(*experiment.Result).MeanUtilization, "mean-util-procs")
}

// BenchmarkFig8fOpsPWA — cumulative malleability operations (PWA).
func BenchmarkFig8fOpsPWA(b *testing.B) {
	pwaFigBench(b, func(s *experiment.Set) experiment.Figure { return s.FigOps("8f", 0, 12000, 200) },
		(*experiment.Result).TotalOps, "ops")
}

// BenchmarkSweepParallelSpeedup measures the full Fig. 7 sweep (four PRA
// combinations × four seeded replications each) executed serially and on
// the bounded worker pool, and reports the wall-clock speedup as a custom
// metric. On a 1-CPU machine the two are equivalent (speedup ≈ 1); with 4+
// cores the pool should report ≥ 2×. The determinism tests in
// internal/experiment pin that both modes produce identical results.
func BenchmarkSweepParallelSpeedup(b *testing.B) {
	runSweep := func(parallelism int) time.Duration {
		base := experiment.Config{Runs: 4, Seed: 1, Parallelism: parallelism}
		start := time.Now()
		set, err := experiment.RunSet("PRA", experiment.PRACombos(), base)
		if err != nil {
			b.Fatal(err)
		}
		elapsed := time.Since(start)
		if len(set.Labels) != 4 {
			b.Fatalf("sweep produced %d combos, want 4", len(set.Labels))
		}
		return elapsed
	}
	var serial, pooled time.Duration
	for i := 0; i < b.N; i++ {
		serial += runSweep(1)
		pooled += runSweep(0)
	}
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
	b.ReportMetric(serial.Seconds()/pooled.Seconds(), "speedup")
}

// BenchmarkEndToEndPRARun measures one complete full-scale PRA simulation
// (300 jobs on DAS-3) — the cost of regenerating one Fig. 7 curve.
func BenchmarkEndToEndPRARun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunOnce(experiment.Config{
			Workload: workload.Wm(1),
			Policy:   "EGS",
			Approach: "PRA",
		}, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Records) != 300 {
			b.Fatalf("records = %d", len(res.Records))
		}
	}
}

// BenchmarkEndToEndPRABatched is BenchmarkEndToEndPRARun through the
// shared-setup path: one Prepare amortized over all replications, the way
// Run/RunStream execute a sweep point. The delta against the single-shot
// benchmark is the per-replication setup cost batching eliminates.
func BenchmarkEndToEndPRABatched(b *testing.B) {
	prep, err := experiment.Prepare(experiment.Config{
		Workload: workload.Wm(1),
		Policy:   "EGS",
		Approach: "PRA",
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := prep.RunOnce(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Records) != 300 {
			b.Fatalf("records = %d", len(res.Records))
		}
	}
}

// BenchmarkAblationPolicies compares all four malleability policies
// (FPSMA, EGS and the §III baselines Equipartition and Folding) on Wm and
// reports mean execution times.
func BenchmarkAblationPolicies(b *testing.B) {
	for _, policy := range []string{"FPSMA", "EGS", "EQUI", "FOLD"} {
		policy := policy
		b.Run(policy, func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunOnce(experiment.Config{
					Workload: workload.Wm(1),
					Policy:   policy,
					Approach: "PRA",
				}, 1)
				if err != nil {
					b.Fatal(err)
				}
				last = stats.Mean(metrics.ExecTimesOf(res.Records))
			}
			b.ReportMetric(last, "mean-exec-s")
		})
	}
}

// BenchmarkAblationPlacement compares KOALA's four placement policies on
// the mixed workload Wmr and reports mean response times.
func BenchmarkAblationPlacement(b *testing.B) {
	for _, placement := range []string{"WF", "CF", "CM", "FCM"} {
		placement := placement
		b.Run(placement, func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunOnce(experiment.Config{
					Workload:  workload.Wmr(1),
					Policy:    "FPSMA",
					Approach:  "PRA",
					Placement: placement,
				}, 1)
				if err != nil {
					b.Fatal(err)
				}
				last = stats.Mean(metrics.ResponseTimesOf(res.Records))
			}
			b.ReportMetric(last, "mean-resp-s")
		})
	}
}

// BenchmarkAblationGramGatekeeper sweeps the GRAM gatekeeper concurrency —
// the knob behind §V-A's "poor reactivity" — and reports mean average job
// sizes.
func BenchmarkAblationGramGatekeeper(b *testing.B) {
	for _, conc := range []int{1, 4, 16} {
		conc := conc
		b.Run(map[int]string{1: "serial", 4: "conc4", 16: "conc16"}[conc], func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				g := gram.Config{SubmitLatency: 5, ReleaseLatency: 0.5, SubmitConcurrency: conc}
				res, err := experiment.RunOnce(experiment.Config{
					Workload:     workload.Wm(1),
					Policy:       "EGS",
					Approach:     "PRA",
					GramOverride: &g,
				}, 1)
				if err != nil {
					b.Fatal(err)
				}
				last = stats.Mean(metrics.AvgProcsOf(metrics.OnlyMalleable(res.Records)))
			}
			b.ReportMetric(last, "mean-avg-procs")
		})
	}
}

// BenchmarkAblationMalleabilityOff compares malleable scheduling against
// plain KOALA (everything stays at its submitted size) on the same
// workload — the headline "malleability is beneficial" comparison.
func BenchmarkAblationMalleabilityOff(b *testing.B) {
	for _, on := range []bool{true, false} {
		on := on
		name := "malleable"
		if !on {
			name = "rigid-baseline"
		}
		b.Run(name, func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunOnce(experiment.Config{
					Workload:            workload.Wm(1),
					Policy:              "FPSMA",
					Approach:            "PRA",
					DisableMalleability: !on,
				}, 1)
				if err != nil {
					b.Fatal(err)
				}
				last = stats.Mean(metrics.ExecTimesOf(res.Records))
			}
			b.ReportMetric(last, "mean-exec-s")
		})
	}
}
