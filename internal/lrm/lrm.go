// Package lrm models the local resource manager of each cluster — the Sun
// Grid Engine of the DAS-3 testbed (§VI-B). SGE is configured space-shared:
// jobs get exclusive nodes, the allocation granularity is the node, and
// queued jobs start first-come-first-served as nodes free up.
//
// The grid layers above (GRAM, KOALA) never touch cluster allocations
// directly; every node held on behalf of a grid job is held through an LRM
// job, exactly as on the real testbed.
package lrm

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// State is the lifecycle state of an LRM job.
type State int

const (
	// Queued means the job waits for enough idle nodes.
	Queued State = iota
	// Running means the job holds its nodes.
	Running
	// Finished means the job completed and released its nodes.
	Finished
	// Canceled means the job was removed from the queue before starting.
	Canceled
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Finished:
		return "finished"
	case Canceled:
		return "canceled"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Starter receives the start notification of an LRM job without the
// allocation cost of a per-job closure; it is the hot-path alternative to
// Submit's onStart callback.
type Starter interface {
	JobStarted(*Job)
}

// Job is one space-shared job managed by the LRM.
type Job struct {
	Nodes int

	id      string // explicit ID, or "" for a lazily formatted one
	seq     int
	state   State
	alloc   *cluster.Allocation
	onStart func(*Job)
	starter Starter
	mgr     *Manager
}

// ID returns the job's identifier (lazily formatted for auto-named jobs).
func (j *Job) ID() string {
	if j.id != "" {
		return j.id
	}
	return fmt.Sprintf("%s-job-%d", j.mgr.clus.Name(), j.seq)
}

// State returns the job's lifecycle state.
func (j *Job) State() State { return j.state }

// opStart is the Job's only sim.Handler op: deliver the start callback.
const opStart = 0

// OnEvent implements sim.Handler: the deferred start notification fires on
// the job itself, so dispatch schedules no closures.
func (j *Job) OnEvent(int) {
	if j.starter != nil {
		j.starter.JobStarted(j)
	} else if j.onStart != nil {
		j.onStart(j)
	}
}

// SchedulingInterval is the period at which a non-empty queue is rescanned
// even without submissions or completions — the SGE scheduler run interval.
// Nodes can free up behind the LRM's back (local users logging out), and on
// the real testbed SGE's periodic scheduling pass picks those up.
const SchedulingInterval = 15.0

// Manager is the per-cluster local resource manager.
type Manager struct {
	engine *sim.Engine
	clus   *cluster.Cluster
	// queue is a head-indexed FIFO: dispatch advances head instead of
	// re-slicing from the front, which would force an append reallocation
	// per submission under steady stub churn.
	queue []*Job
	head  int

	dispatching bool
	retry       *sim.Event
	seq         int
	running     int

	// arena batch-allocates Job structs (never reused; batching only cuts
	// the per-submission allocation count).
	arena []Job
}

// opRetry is the Manager's only sim.Handler op: the periodic SGE-style
// scheduling pass while jobs wait.
const opRetry = 0

// OnEvent implements sim.Handler.
func (m *Manager) OnEvent(int) {
	m.retry = nil
	m.dispatch()
}

// New creates an LRM driving the given cluster.
func New(engine *sim.Engine, clus *cluster.Cluster) *Manager {
	return &Manager{engine: engine, clus: clus}
}

// Cluster returns the managed cluster.
func (m *Manager) Cluster() *cluster.Cluster { return m.clus }

// QueueLength returns the number of jobs waiting for nodes.
func (m *Manager) QueueLength() int { return len(m.queue) - m.head }

// RunningJobs returns the number of currently running LRM jobs.
func (m *Manager) RunningJobs() int { return m.running }

// Submit enqueues a job for nodes nodes; onStart fires (via the simulation
// engine, at the start instant) once the job holds its nodes. Jobs start
// FCFS as capacity allows.
func (m *Manager) Submit(id string, nodes int, onStart func(*Job)) (*Job, error) {
	j, err := m.submit(id, nodes)
	if err != nil {
		return nil, err
	}
	j.onStart = onStart
	m.queue = append(m.queue, j)
	m.dispatch()
	return j, nil
}

// SubmitFor is Submit with a Starter receiver instead of a closure — the
// allocation-free path the GRAM layer uses for its stub churn. The job is
// auto-named.
func (m *Manager) SubmitFor(starter Starter, nodes int) (*Job, error) {
	j, err := m.submit("", nodes)
	if err != nil {
		return nil, err
	}
	j.starter = starter
	m.queue = append(m.queue, j)
	m.dispatch()
	return j, nil
}

func (m *Manager) submit(id string, nodes int) (*Job, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("lrm %s: job %q requests %d nodes", m.clus.Name(), id, nodes)
	}
	if nodes > m.clus.Nodes() {
		return nil, fmt.Errorf("lrm %s: job %q requests %d nodes but cluster has %d",
			m.clus.Name(), id, nodes, m.clus.Nodes())
	}
	if len(m.arena) == 0 {
		m.arena = make([]Job, 64)
	}
	j := &m.arena[0]
	m.arena = m.arena[1:]
	j.id = id
	j.seq = m.seq
	j.Nodes = nodes
	j.state = Queued
	j.mgr = m
	m.seq++
	return j, nil
}

// Cancel removes a queued job. Canceling a running or completed job fails;
// use Finish for running jobs.
func (m *Manager) Cancel(j *Job) error {
	if j.state != Queued {
		return fmt.Errorf("lrm %s: cancel of %s job %q", m.clus.Name(), j.state, j.ID())
	}
	for i := m.head; i < len(m.queue); i++ {
		if m.queue[i] == j {
			copy(m.queue[i:], m.queue[i+1:])
			m.queue[len(m.queue)-1] = nil
			m.queue = m.queue[:len(m.queue)-1]
			j.state = Canceled
			return nil
		}
	}
	return fmt.Errorf("lrm %s: job %q not found in queue", m.clus.Name(), j.ID())
}

// Finish completes a running job, releasing its nodes and dispatching any
// queued jobs that now fit.
func (m *Manager) Finish(j *Job) error {
	if j.state != Running {
		return fmt.Errorf("lrm %s: finish of %s job %q", m.clus.Name(), j.state, j.ID())
	}
	if err := j.alloc.Release(); err != nil {
		return err
	}
	j.state = Finished
	j.alloc = nil
	m.running--
	m.dispatch()
	return nil
}

// dispatch starts queued jobs FCFS while the head fits. It defers actual
// start callbacks through the engine so that state transitions triggered by
// a release do not reentrantly interleave with the releasing caller. When
// the head still does not fit, a retry is armed at the SGE scheduling
// interval so that nodes freed outside the LRM's view (background users
// leaving) are eventually picked up.
func (m *Manager) dispatch() {
	if m.dispatching {
		return
	}
	m.dispatching = true
	defer func() {
		m.dispatching = false
		m.armRetry()
	}()
	for m.head < len(m.queue) {
		head := m.queue[m.head]
		alloc, err := m.clus.Allocate(head.Nodes)
		if err != nil {
			return // strict FCFS: the head blocks the queue (no backfilling)
		}
		m.queue[m.head] = nil
		m.head++
		if m.head == len(m.queue) {
			m.queue = m.queue[:0]
			m.head = 0
		}
		head.state = Running
		head.alloc = alloc
		m.running++
		if head.onStart != nil || head.starter != nil {
			m.engine.ImmediatelyOp(head, opStart)
		}
	}
}

// armRetry schedules the next periodic scheduling pass while jobs wait.
func (m *Manager) armRetry() {
	if m.QueueLength() == 0 || m.retry != nil {
		return
	}
	m.retry = m.engine.AfterOp(SchedulingInterval, m, opRetry)
}
