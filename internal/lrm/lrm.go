// Package lrm models the local resource manager of each cluster — the Sun
// Grid Engine of the DAS-3 testbed (§VI-B). SGE is configured space-shared:
// jobs get exclusive nodes, the allocation granularity is the node, and
// queued jobs start first-come-first-served as nodes free up.
//
// The grid layers above (GRAM, KOALA) never touch cluster allocations
// directly; every node held on behalf of a grid job is held through an LRM
// job, exactly as on the real testbed.
package lrm

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// State is the lifecycle state of an LRM job.
type State int

const (
	// Queued means the job waits for enough idle nodes.
	Queued State = iota
	// Running means the job holds its nodes.
	Running
	// Finished means the job completed and released its nodes.
	Finished
	// Canceled means the job was removed from the queue before starting.
	Canceled
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Finished:
		return "finished"
	case Canceled:
		return "canceled"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Job is one space-shared job managed by the LRM.
type Job struct {
	ID    string
	Nodes int

	state   State
	alloc   *cluster.Allocation
	onStart func(*Job)
	mgr     *Manager
}

// State returns the job's lifecycle state.
func (j *Job) State() State { return j.state }

// SchedulingInterval is the period at which a non-empty queue is rescanned
// even without submissions or completions — the SGE scheduler run interval.
// Nodes can free up behind the LRM's back (local users logging out), and on
// the real testbed SGE's periodic scheduling pass picks those up.
const SchedulingInterval = 15.0

// Manager is the per-cluster local resource manager.
type Manager struct {
	engine *sim.Engine
	clus   *cluster.Cluster
	queue  []*Job

	dispatching bool
	retry       *sim.Event
	seq         int
	running     int
}

// New creates an LRM driving the given cluster.
func New(engine *sim.Engine, clus *cluster.Cluster) *Manager {
	return &Manager{engine: engine, clus: clus}
}

// Cluster returns the managed cluster.
func (m *Manager) Cluster() *cluster.Cluster { return m.clus }

// QueueLength returns the number of jobs waiting for nodes.
func (m *Manager) QueueLength() int { return len(m.queue) }

// RunningJobs returns the number of currently running LRM jobs.
func (m *Manager) RunningJobs() int { return m.running }

// Submit enqueues a job for nodes nodes; onStart fires (via the simulation
// engine, at the start instant) once the job holds its nodes. Jobs start
// FCFS as capacity allows.
func (m *Manager) Submit(id string, nodes int, onStart func(*Job)) (*Job, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("lrm %s: job %q requests %d nodes", m.clus.Name(), id, nodes)
	}
	if nodes > m.clus.Nodes() {
		return nil, fmt.Errorf("lrm %s: job %q requests %d nodes but cluster has %d",
			m.clus.Name(), id, nodes, m.clus.Nodes())
	}
	if id == "" {
		id = fmt.Sprintf("%s-job-%d", m.clus.Name(), m.seq)
	}
	m.seq++
	j := &Job{ID: id, Nodes: nodes, state: Queued, onStart: onStart, mgr: m}
	m.queue = append(m.queue, j)
	m.dispatch()
	return j, nil
}

// Cancel removes a queued job. Canceling a running or completed job fails;
// use Finish for running jobs.
func (m *Manager) Cancel(j *Job) error {
	if j.state != Queued {
		return fmt.Errorf("lrm %s: cancel of %s job %q", m.clus.Name(), j.state, j.ID)
	}
	for i, q := range m.queue {
		if q == j {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			j.state = Canceled
			return nil
		}
	}
	return fmt.Errorf("lrm %s: job %q not found in queue", m.clus.Name(), j.ID)
}

// Finish completes a running job, releasing its nodes and dispatching any
// queued jobs that now fit.
func (m *Manager) Finish(j *Job) error {
	if j.state != Running {
		return fmt.Errorf("lrm %s: finish of %s job %q", m.clus.Name(), j.state, j.ID)
	}
	if err := j.alloc.Release(); err != nil {
		return err
	}
	j.state = Finished
	j.alloc = nil
	m.running--
	m.dispatch()
	return nil
}

// dispatch starts queued jobs FCFS while the head fits. It defers actual
// start callbacks through the engine so that state transitions triggered by
// a release do not reentrantly interleave with the releasing caller. When
// the head still does not fit, a retry is armed at the SGE scheduling
// interval so that nodes freed outside the LRM's view (background users
// leaving) are eventually picked up.
func (m *Manager) dispatch() {
	if m.dispatching {
		return
	}
	m.dispatching = true
	defer func() {
		m.dispatching = false
		m.armRetry()
	}()
	for len(m.queue) > 0 {
		head := m.queue[0]
		alloc, err := m.clus.Allocate(head.Nodes)
		if err != nil {
			return // strict FCFS: the head blocks the queue (no backfilling)
		}
		m.queue = m.queue[1:]
		head.state = Running
		head.alloc = alloc
		m.running++
		if head.onStart != nil {
			h := head
			m.engine.Immediately(func() { h.onStart(h) })
		}
	}
}

// armRetry schedules the next periodic scheduling pass while jobs wait.
func (m *Manager) armRetry() {
	if len(m.queue) == 0 || m.retry != nil {
		return
	}
	m.retry = m.engine.After(SchedulingInterval, func() {
		m.retry = nil
		m.dispatch()
	})
}
