package lrm

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/sim"
)

func setup(nodes int) (*sim.Engine, *cluster.Cluster, *Manager) {
	e := sim.New()
	c := cluster.New("c", nodes)
	return e, c, New(e, c)
}

func TestImmediateStart(t *testing.T) {
	e, c, m := setup(10)
	started := false
	j, err := m.Submit("a", 4, func(*Job) { started = true })
	if err != nil {
		t.Fatal(err)
	}
	e.Run()
	if !started || j.State() != Running {
		t.Fatalf("job did not start: state=%v", j.State())
	}
	if c.Used() != 4 {
		t.Fatalf("used = %d, want 4", c.Used())
	}
	if m.RunningJobs() != 1 {
		t.Fatalf("running = %d", m.RunningJobs())
	}
}

func TestFCFSQueueing(t *testing.T) {
	e, c, m := setup(10)
	var order []string
	start := func(j *Job) { order = append(order, j.ID()) }
	a, _ := m.Submit("a", 8, start)
	b, _ := m.Submit("b", 8, start)
	small, _ := m.Submit("small", 2, start)
	e.RunUntil(1)
	// Strict FCFS without backfilling: "small" must wait behind "b" even
	// though 2 nodes are idle while "a" runs.
	if len(order) != 1 || order[0] != "a" {
		t.Fatalf("started %v, want only a", order)
	}
	if b.State() != Queued || small.State() != Queued {
		t.Fatal("b and small should be queued")
	}
	if c.Idle() != 2 {
		t.Fatalf("idle = %d", c.Idle())
	}
	if m.QueueLength() != 2 {
		t.Fatalf("queue length = %d", m.QueueLength())
	}
	if err := m.Finish(a); err != nil {
		t.Fatal(err)
	}
	e.RunUntil(2)
	if len(order) != 3 || order[1] != "b" || order[2] != "small" {
		t.Fatalf("order = %v", order)
	}
}

func TestFinishReleasesNodes(t *testing.T) {
	e, c, m := setup(6)
	j, _ := m.Submit("a", 6, nil)
	e.Run()
	if err := m.Finish(j); err != nil {
		t.Fatal(err)
	}
	if c.Idle() != 6 || j.State() != Finished {
		t.Fatalf("idle=%d state=%v", c.Idle(), j.State())
	}
	if err := m.Finish(j); err == nil {
		t.Fatal("double finish should fail")
	}
}

func TestCancelQueuedJob(t *testing.T) {
	e, _, m := setup(4)
	a, _ := m.Submit("a", 4, nil)
	b, _ := m.Submit("b", 4, nil)
	e.RunUntil(1)
	if err := m.Cancel(b); err != nil {
		t.Fatal(err)
	}
	if b.State() != Canceled {
		t.Fatalf("state = %v", b.State())
	}
	if err := m.Cancel(a); err == nil {
		t.Fatal("cancel of running job should fail")
	}
	if err := m.Cancel(b); err == nil {
		t.Fatal("cancel of canceled job should fail")
	}
}

func TestSubmitValidation(t *testing.T) {
	_, _, m := setup(4)
	if _, err := m.Submit("x", 0, nil); err == nil {
		t.Fatal("zero-node job should fail")
	}
	if _, err := m.Submit("x", 5, nil); err == nil {
		t.Fatal("job larger than cluster should fail")
	}
}

func TestAutoID(t *testing.T) {
	e, _, m := setup(4)
	a, _ := m.Submit("", 1, nil)
	b, _ := m.Submit("", 1, nil)
	e.Run()
	if a.ID() == "" || a.ID() == b.ID() {
		t.Fatalf("auto IDs not unique: %q %q", a.ID(), b.ID())
	}
}

func TestStartCallbackSeesRunningState(t *testing.T) {
	e, _, m := setup(2)
	var seen State = -1
	j, _ := m.Submit("a", 2, func(j *Job) { seen = j.State() })
	e.Run()
	if seen != Running {
		t.Fatalf("callback saw state %v", seen)
	}
	_ = j
}

func TestManyOneNodeJobs(t *testing.T) {
	// The MRunner pattern: a malleable app is a collection of size-1 jobs.
	e, c, m := setup(5)
	started := 0
	var jobs []*Job
	for i := 0; i < 8; i++ {
		j, err := m.Submit("", 1, func(*Job) { started++ })
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	e.RunUntil(1)
	if started != 5 || c.Idle() != 0 {
		t.Fatalf("started=%d idle=%d", started, c.Idle())
	}
	m.Finish(jobs[0])
	m.Finish(jobs[1])
	e.RunUntil(2)
	if started != 7 {
		t.Fatalf("started=%d after finishing two", started)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Queued: "queued", Running: "running", Finished: "finished", Canceled: "canceled", State(9): "state(9)"} {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q", int(s), s.String())
		}
	}
}

func TestBackgroundLoadBlocksDispatch(t *testing.T) {
	e, c, m := setup(10)
	c.SeizeBackground(8)
	j, _ := m.Submit("a", 4, nil)
	e.RunUntil(1)
	if j.State() != Queued {
		t.Fatal("job should queue behind background load")
	}
	// Background users leave without telling the LRM; the periodic SGE
	// scheduling pass must pick the freed nodes up on its own.
	c.ReleaseBackground(8)
	e.RunUntil(1 + 2*SchedulingInterval)
	if j.State() != Running {
		t.Fatalf("job state = %v after background release", j.State())
	}
}

func TestRetryPassDoesNotLeakWhenQueueDrains(t *testing.T) {
	e, _, m := setup(4)
	a, _ := m.Submit("a", 4, nil)
	b, _ := m.Submit("b", 4, nil)
	e.RunUntil(1)
	m.Finish(a)
	e.RunUntil(2)
	if b.State() != Running {
		t.Fatalf("b = %v", b.State())
	}
	// Queue is empty; the engine must drain completely (no immortal retry).
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("events still pending after drain: %d", e.Pending())
	}
}
