package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanBasics(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %g", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %g, want 2.5", got)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 {
		t.Fatalf("Min = %g", Min(xs))
	}
	if Max(xs) != 7 {
		t.Fatalf("Max = %g", Max(xs))
	}
	if Sum(xs) != 11 {
		t.Fatalf("Sum = %g", Sum(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty Min/Max sentinel wrong")
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Fatalf("Variance = %g, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("StdDev = %g, want 2", got)
	}
	if Variance([]float64{5}) != 0 {
		t.Fatal("single-sample variance should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
	if Percentile([]float64{9}, 75) != 9 {
		t.Fatal("singleton percentile should be the element")
	}
}

func TestPercentileOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Percentile(101) did not panic")
		}
	}()
	Percentile([]float64{1}, 101)
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if s.N != 10 || s.Mean != 5.5 || s.Min != 1 || s.Max != 10 {
		t.Fatalf("bad summary: %+v", s)
	}
	if s.Median != 5.5 {
		t.Fatalf("median = %g", s.Median)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summary should be zero")
	}
	if Summarize([]float64{1, 2}).String() == "" {
		t.Fatal("String should render")
	}
}

// Property: for any sample and p, min ≤ Percentile(p) ≤ max.
func TestPropertyPercentileBounded(t *testing.T) {
	f := func(raw []int16, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		p := float64(pRaw) / 255 * 100
		v := Percentile(xs, p)
		return v >= Min(xs)-1e-9 && v <= Max(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: percentiles are monotone in p.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(raw []int16, aRaw, bRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		a := float64(aRaw) / 255 * 100
		b := float64(bRaw) / 255 * 100
		if a > b {
			a, b = b, a
		}
		return Percentile(xs, a) <= Percentile(xs, b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
