package stats

import (
	"math"
	"sort"
	"testing"
)

func relClose(a, b, tol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*math.Max(scale, 1)
}

func TestOnlineMatchesBatch(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2.5, 6, 5.25, 3.5}
	var o Online
	for _, x := range xs {
		o.Add(x)
	}
	if o.N() != len(xs) {
		t.Fatalf("N = %d, want %d", o.N(), len(xs))
	}
	// A serial feed accumulates the sum in the same order as the batch
	// helpers, so mean and sum are bit-identical.
	if o.Sum() != Sum(xs) {
		t.Errorf("Sum = %v, want %v", o.Sum(), Sum(xs))
	}
	if o.Mean() != Mean(xs) {
		t.Errorf("Mean = %v, want %v", o.Mean(), Mean(xs))
	}
	if o.Min() != Min(xs) || o.Max() != Max(xs) {
		t.Errorf("Min/Max = %v/%v, want %v/%v", o.Min(), o.Max(), Min(xs), Max(xs))
	}
	if !relClose(o.Variance(), Variance(xs), 1e-12) {
		t.Errorf("Variance = %v, want %v", o.Variance(), Variance(xs))
	}
}

func TestOnlineEmpty(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Variance() != 0 {
		t.Errorf("empty Online: mean=%v var=%v, want 0/0", o.Mean(), o.Variance())
	}
	if !math.IsInf(o.Min(), 1) || !math.IsInf(o.Max(), -1) {
		t.Errorf("empty Online: min=%v max=%v, want +Inf/-Inf", o.Min(), o.Max())
	}
}

func TestOnlineMergeMatchesSerial(t *testing.T) {
	xs := []float64{10, 20, 0.5, 7, 13, 42, 8, 8, 8, 1e6, 3}
	var serial Online
	for _, x := range xs {
		serial.Add(x)
	}
	var a, b Online
	for _, x := range xs[:4] {
		a.Add(x)
	}
	for _, x := range xs[4:] {
		b.Add(x)
	}
	a.Merge(&b)
	if a.N() != serial.N() || a.Sum() != serial.Sum() {
		t.Fatalf("merged N/Sum = %d/%v, want %d/%v", a.N(), a.Sum(), serial.N(), serial.Sum())
	}
	if !relClose(a.Variance(), serial.Variance(), 1e-9) {
		t.Errorf("merged Variance = %v, serial %v", a.Variance(), serial.Variance())
	}
	if a.Min() != serial.Min() || a.Max() != serial.Max() {
		t.Errorf("merged Min/Max = %v/%v, serial %v/%v", a.Min(), a.Max(), serial.Min(), serial.Max())
	}

	// Merging into an empty accumulator copies, merging an empty one is
	// a no-op.
	var empty Online
	empty.Merge(&serial)
	if empty.N() != serial.N() || empty.Mean() != serial.Mean() {
		t.Error("merge into empty accumulator did not copy")
	}
	n := serial.N()
	serial.Merge(&Online{})
	if serial.N() != n {
		t.Error("merging an empty accumulator changed N")
	}
}

func TestSketchQuantileWithinRelativeError(t *testing.T) {
	// A skewed sample spanning several orders of magnitude.
	var xs []float64
	for i := 1; i <= 2000; i++ {
		xs = append(xs, float64(i)*float64(i)/100)
	}
	s := NewSketch(DefaultSketchAccuracy)
	for _, x := range xs {
		s.Add(x)
	}
	// The sketch's guarantee is relative to the nearest-rank sample value
	// (not the interpolated percentile), so compare against that.
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for _, q := range []float64{0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		got := s.Quantile(q)
		rank := int(math.Ceil(q * float64(len(sorted))))
		if rank < 1 {
			rank = 1
		}
		want := sorted[rank-1]
		if !relClose(got, want, 3*DefaultSketchAccuracy) {
			t.Errorf("Quantile(%g) = %g, exact %g (outside relative error)", q, got, want)
		}
	}
}

func TestSketchZeroAndEmpty(t *testing.T) {
	s := NewSketch(DefaultSketchAccuracy)
	if s.Quantile(0.5) != 0 {
		t.Error("empty sketch quantile should be 0")
	}
	s.Add(0)
	s.Add(0)
	s.Add(10)
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("median of {0,0,10} = %g, want 0", got)
	}
	if got := s.Quantile(1); !relClose(got, 10, 3*DefaultSketchAccuracy) {
		t.Errorf("max quantile = %g, want ~10", got)
	}
	if s.N() != 3 {
		t.Errorf("N = %d, want 3", s.N())
	}
}

func TestSketchMergeMatchesSerial(t *testing.T) {
	a := NewSketch(DefaultSketchAccuracy)
	b := NewSketch(DefaultSketchAccuracy)
	serial := NewSketch(DefaultSketchAccuracy)
	for i := 1; i <= 100; i++ {
		x := float64(i)
		serial.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != serial.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), serial.N())
	}
	for _, q := range []float64{0.1, 0.5, 0.9} {
		if a.Quantile(q) != serial.Quantile(q) {
			t.Errorf("Quantile(%g): merged %g != serial %g", q, a.Quantile(q), serial.Quantile(q))
		}
	}
}

func TestStreamSummaryApproximatesBatch(t *testing.T) {
	var xs []float64
	for i := 0; i < 500; i++ {
		xs = append(xs, math.Sqrt(float64(i))*7+0.5)
	}
	st := NewStream()
	for _, x := range xs {
		st.Add(x)
	}
	got := st.Summary()
	want := Summarize(xs)
	if got.N != want.N || got.Mean != want.Mean || got.Min != want.Min || got.Max != want.Max {
		t.Errorf("exact fields differ: got %+v, want %+v", got, want)
	}
	for _, pair := range [][2]float64{{got.P25, want.P25}, {got.Median, want.Median}, {got.P75, want.P75}, {got.P90, want.P90}} {
		if !relClose(pair[0], pair[1], 3*DefaultSketchAccuracy) {
			t.Errorf("quantile %g outside error bound of exact %g", pair[0], pair[1])
		}
	}
}
