package stats

import (
	"testing"
	"testing/quick"
)

func TestTimeSeriesAtStepSemantics(t *testing.T) {
	ts := NewTimeSeries()
	ts.Add(0, 1)
	ts.Add(10, 5)
	ts.Add(20, 2)
	cases := []struct{ tm, want float64 }{
		{-1, 0}, {0, 1}, {5, 1}, {10, 5}, {15, 5}, {20, 2}, {100, 2},
	}
	for _, c := range cases {
		if got := ts.At(c.tm); got != c.want {
			t.Errorf("At(%g) = %g, want %g", c.tm, got, c.want)
		}
	}
}

func TestTimeSeriesSameInstantOverwrites(t *testing.T) {
	ts := NewTimeSeries()
	ts.Add(5, 1)
	ts.Add(5, 9)
	if ts.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ts.Len())
	}
	if ts.At(5) != 9 {
		t.Fatalf("At(5) = %g, want 9", ts.At(5))
	}
}

func TestTimeSeriesOutOfOrderPanics(t *testing.T) {
	ts := NewTimeSeries()
	ts.Add(10, 1)
	defer func() {
		if recover() == nil {
			t.Error("out-of-order Add did not panic")
		}
	}()
	ts.Add(5, 2)
}

func TestTimeSeriesIntegral(t *testing.T) {
	ts := NewTimeSeries()
	ts.Add(0, 2)
	ts.Add(10, 4)
	// [0,10): 2*10 = 20 ; [10,20]: 4*10 = 40.
	if got := ts.Integral(0, 20); got != 60 {
		t.Fatalf("Integral = %g, want 60", got)
	}
	if got := ts.Integral(5, 15); got != 2*5+4*5 {
		t.Fatalf("clipped Integral = %g, want 30", got)
	}
	if got := ts.MeanOver(0, 20); got != 3 {
		t.Fatalf("MeanOver = %g, want 3", got)
	}
	if ts.Integral(5, 5) != 0 || ts.Integral(10, 5) != 0 {
		t.Fatal("degenerate intervals should integrate to 0")
	}
}

func TestTimeSeriesSample(t *testing.T) {
	ts := NewTimeSeries()
	ts.Add(0, 1)
	ts.Add(10, 2)
	pts := ts.Sample(0, 20, 10)
	if len(pts) != 3 {
		t.Fatalf("Sample points = %d, want 3", len(pts))
	}
	want := []float64{1, 2, 2}
	for i, p := range pts {
		if p.Percent != want[i] {
			t.Fatalf("sample[%d] = %g, want %g", i, p.Percent, want[i])
		}
	}
}

func TestTimeSeriesSampleBadStepPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive step did not panic")
		}
	}()
	NewTimeSeries().Sample(0, 10, 0)
}

func TestTimeSeriesMaxAndLast(t *testing.T) {
	ts := NewTimeSeries()
	if _, _, ok := ts.Last(); ok {
		t.Fatal("empty Last should report !ok")
	}
	ts.Add(1, 3)
	ts.Add(2, 8)
	ts.Add(3, 5)
	if ts.MaxValue() != 8 {
		t.Fatalf("MaxValue = %g", ts.MaxValue())
	}
	tm, v, ok := ts.Last()
	if !ok || tm != 3 || v != 5 {
		t.Fatalf("Last = (%g,%g,%v)", tm, v, ok)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc(1, 2)
	c.Inc(5, 3)
	if c.Total() != 5 {
		t.Fatalf("Total = %g", c.Total())
	}
	if got := c.Series().At(3); got != 2 {
		t.Fatalf("Series().At(3) = %g, want 2", got)
	}
	if got := c.Series().At(5); got != 5 {
		t.Fatalf("Series().At(5) = %g, want 5", got)
	}
}

// Property: Integral over adjacent intervals adds up.
func TestPropertyIntegralAdditive(t *testing.T) {
	f := func(vals []uint8) bool {
		ts := NewTimeSeries()
		for i, v := range vals {
			ts.Add(float64(i), float64(v))
		}
		end := float64(len(vals)) + 5
		whole := ts.Integral(0, end)
		mid := end / 2
		split := ts.Integral(0, mid) + ts.Integral(mid, end)
		return almostEqual(whole, split, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{0, 1, 2.5, 9.9, 11, -3} {
		h.Add(v)
	}
	if h.N() != 6 {
		t.Fatalf("N = %d", h.N())
	}
	// -3 clamps into bin 0; 11 clamps into bin 4.
	if h.Bin(0) != 3 {
		t.Fatalf("bin0 = %d, want 3", h.Bin(0))
	}
	if h.Bin(4) != 2 {
		t.Fatalf("bin4 = %d, want 2", h.Bin(4))
	}
	lo, hi := h.BinRange(1)
	if lo != 2 || hi != 4 {
		t.Fatalf("BinRange(1) = [%g,%g)", lo, hi)
	}
	if h.Bins() != 5 {
		t.Fatalf("Bins = %d", h.Bins())
	}
	if h.Render(20) == "" {
		t.Fatal("Render should produce output")
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(5, 5, 3) },
		func() { NewHistogram(0, 10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
