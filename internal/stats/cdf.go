package stats

import (
	"fmt"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution function over a sample. The
// paper reports most of its results as "cumulative number of jobs (%)"
// versus a metric; CDF.Points renders exactly those curves.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the sample xs. The input is copied.
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the sample size.
func (c *CDF) N() int { return len(c.sorted) }

// At returns the fraction of samples ≤ x, in [0,1]. An empty CDF returns 0.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	idx := sort.SearchFloat64s(c.sorted, x)
	for idx < len(c.sorted) && c.sorted[idx] == x {
		idx++
	}
	return float64(idx) / float64(len(c.sorted))
}

// Percent returns the percentage of samples ≤ x, in [0,100].
func (c *CDF) Percent(x float64) float64 { return c.At(x) * 100 }

// Quantile returns the smallest sample value v such that At(v) ≥ q, for q in
// (0,1]. Quantile(0) returns the minimum. An empty CDF returns 0.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q > 1 {
		q = 1
	}
	idx := int(q*float64(len(c.sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c.sorted) {
		idx = len(c.sorted) - 1
	}
	return c.sorted[idx]
}

// Point is one (x, cumulative-percent) sample of a CDF curve.
type Point struct {
	X       float64
	Percent float64
}

// Points returns the full step curve of the CDF: one point per distinct
// sample value, with Percent the cumulative percentage of samples ≤ X.
func (c *CDF) Points() []Point {
	var pts []Point
	n := float64(len(c.sorted))
	for i := 0; i < len(c.sorted); {
		j := i
		for j < len(c.sorted) && c.sorted[j] == c.sorted[i] {
			j++
		}
		pts = append(pts, Point{X: c.sorted[i], Percent: float64(j) / n * 100})
		i = j
	}
	return pts
}

// SampleAt evaluates the CDF (as percent) at each x in xs — convenient for
// comparing several CDFs on a common axis, as the paper's figures do.
func (c *CDF) SampleAt(xs []float64) []Point {
	pts := make([]Point, len(xs))
	for i, x := range xs {
		pts[i] = Point{X: x, Percent: c.Percent(x)}
	}
	return pts
}

// Render formats the CDF sampled at xs as an aligned two-column table.
func (c *CDF) Render(label string, xs []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %8s\n", label, "cum.%")
	for _, p := range c.SampleAt(xs) {
		fmt.Fprintf(&b, "%-18.6g %8.1f\n", p.X, p.Percent)
	}
	return b.String()
}
