package stats

import (
	"fmt"
	"strings"
)

// Histogram bins samples into fixed-width buckets over [lo, hi). Values
// outside the range are clamped into the first/last bucket so no sample is
// silently dropped.
type Histogram struct {
	lo, hi float64
	bins   []int
	n      int
}

// NewHistogram creates a histogram with the given number of equal-width bins
// over [lo, hi). It panics on a degenerate range or non-positive bin count.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if hi <= lo {
		panic(fmt.Sprintf("stats: histogram range [%g,%g) is empty", lo, hi))
	}
	if bins <= 0 {
		panic("stats: histogram needs at least one bin")
	}
	return &Histogram{lo: lo, hi: hi, bins: make([]int, bins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	idx := int((x - h.lo) / (h.hi - h.lo) * float64(len(h.bins)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.bins) {
		idx = len(h.bins) - 1
	}
	h.bins[idx]++
	h.n++
}

// N returns the number of recorded samples.
func (h *Histogram) N() int { return h.n }

// Bin returns the count of bin i.
func (h *Histogram) Bin(i int) int { return h.bins[i] }

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.bins) }

// BinRange returns the [lo,hi) range covered by bin i.
func (h *Histogram) BinRange(i int) (lo, hi float64) {
	w := (h.hi - h.lo) / float64(len(h.bins))
	return h.lo + float64(i)*w, h.lo + float64(i+1)*w
}

// Render returns a textual bar chart, one line per bin.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 40
	}
	maxCount := 0
	for _, c := range h.bins {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range h.bins {
		lo, hi := h.BinRange(i)
		bar := 0
		if maxCount > 0 {
			bar = c * width / maxCount
		}
		fmt.Fprintf(&b, "[%8.1f,%8.1f) %6d %s\n", lo, hi, c, strings.Repeat("#", bar))
	}
	return b.String()
}
