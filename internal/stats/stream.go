package stats

import (
	"fmt"
	"math"
	"sort"
)

// This file is the streaming counterpart of the batch helpers above:
// one-pass, constant-memory accumulators that replace "collect every
// sample, then Summarize" on paths that must not materialize per-job
// records (the koalad server and the -stream CLI mode). Two pieces
// compose: Online tracks the moments exactly (sum, mean, variance via
// Welford, min, max) and Sketch tracks the distribution approximately
// (log-bucketed histogram with bounded relative error, mergeable).

// Online accumulates count, sum, mean, variance, min and max of a
// sample in one pass and O(1) memory. The zero value is ready to use.
// Mean is defined as Sum/N with Sum accumulated in arrival order, so a
// serial feed reproduces the batch Mean() bit for bit; variance uses
// Welford's recurrence and Chan's pairwise rule under Merge.
type Online struct {
	n    int
	sum  float64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (o *Online) Add(x float64) {
	if o.n == 0 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	o.n++
	o.sum += x
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// Merge folds another accumulator into o (Chan et al. pairwise update).
// Merging in a fixed order yields deterministic results.
func (o *Online) Merge(b *Online) {
	if b == nil || b.n == 0 {
		return
	}
	if o.n == 0 {
		*o = *b
		return
	}
	if b.min < o.min {
		o.min = b.min
	}
	if b.max > o.max {
		o.max = b.max
	}
	n1, n2 := float64(o.n), float64(b.n)
	d := b.mean - o.mean
	o.m2 += b.m2 + d*d*n1*n2/(n1+n2)
	o.mean = (n1*o.mean + n2*b.mean) / (n1 + n2)
	o.n += b.n
	o.sum += b.sum
}

// N returns the number of observations.
func (o *Online) N() int { return o.n }

// Sum returns the running sum.
func (o *Online) Sum() float64 { return o.sum }

// Mean returns Sum/N, or 0 for an empty accumulator.
func (o *Online) Mean() float64 {
	if o.n == 0 {
		return 0
	}
	return o.sum / float64(o.n)
}

// Variance returns the population variance, or 0 for fewer than two
// observations (matching the batch Variance).
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n)
}

// StdDev returns the population standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Min returns the minimum, or +Inf for an empty accumulator (matching
// the batch Min).
func (o *Online) Min() float64 {
	if o.n == 0 {
		return math.Inf(1)
	}
	return o.min
}

// Max returns the maximum, or -Inf for an empty accumulator.
func (o *Online) Max() float64 {
	if o.n == 0 {
		return math.Inf(-1)
	}
	return o.max
}

// DefaultSketchAccuracy is the relative error guarantee of sketches
// built by NewSketch: quantile estimates land within 1% of the true
// sample value.
const DefaultSketchAccuracy = 0.01

// Sketch is a mergeable quantile sketch for non-negative samples (all
// of the paper's metrics — times, processor counts — are non-negative).
// Values are assigned to logarithmic buckets i = ceil(log_gamma(x))
// with gamma = (1+alpha)/(1-alpha), which bounds the relative error of
// any quantile estimate by alpha while keeping memory proportional to
// the dynamic range's log, not the sample count (the DDSketch scheme).
type Sketch struct {
	alpha   float64
	gamma   float64
	lnGamma float64
	counts  map[int]int64
	zeros   int64 // observations <= MinTrackable collapse into one bucket
	n       int64
}

// minTrackable is the smallest magnitude stored in a log bucket;
// anything below (including 0) lands in the zero bucket.
const minTrackable = 1e-9

// NewSketch returns an empty sketch with the given relative accuracy in
// (0,1); pass DefaultSketchAccuracy for the standard 1%.
func NewSketch(alpha float64) *Sketch {
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("stats: sketch accuracy %g outside (0,1)", alpha))
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{
		alpha:   alpha,
		gamma:   gamma,
		lnGamma: math.Log(gamma),
		counts:  make(map[int]int64),
	}
}

// Add folds one observation into the sketch. Negative values are
// clamped to the zero bucket: they cannot occur for the simulator's
// metrics, and clamping keeps the accessor contracts total.
func (s *Sketch) Add(x float64) {
	s.n++
	if x <= minTrackable {
		s.zeros++
		return
	}
	s.counts[int(math.Ceil(math.Log(x)/s.lnGamma))]++
}

// Merge folds another sketch into s. Both must share the same accuracy
// (they do when both come from NewSketch with the same alpha).
func (s *Sketch) Merge(b *Sketch) {
	if b == nil || b.n == 0 {
		return
	}
	if b.alpha != s.alpha {
		panic(fmt.Sprintf("stats: merging sketches of different accuracy (%g vs %g)", s.alpha, b.alpha))
	}
	s.n += b.n
	s.zeros += b.zeros
	//koalalint:ordered bucket counts add commutatively; only the merged totals escape
	for k, c := range b.counts {
		s.counts[k] += c
	}
}

// N returns the number of observations.
func (s *Sketch) N() int64 { return s.n }

// Quantile returns an estimate of the q-th quantile (q in [0,1]) with
// relative error at most the sketch accuracy. It returns 0 for an
// empty sketch and panics for q outside [0,1].
func (s *Sketch) Quantile(q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %g out of [0,1]", q))
	}
	if s.n == 0 {
		return 0
	}
	// The target rank mirrors the nearest-rank definition: the smallest
	// bucket whose cumulative count reaches it.
	rank := int64(math.Ceil(q * float64(s.n)))
	if rank < 1 {
		rank = 1
	}
	if s.zeros >= rank {
		return 0
	}
	keys := make([]int, 0, len(s.counts))
	//koalalint:ordered keys are sorted before the cumulative walk below
	for k := range s.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	cum := s.zeros
	for _, k := range keys {
		cum += s.counts[k]
		if cum >= rank {
			// The bucket spans (gamma^(k-1), gamma^k]; its midpoint
			// 2·gamma^k/(gamma+1) is within alpha of every value in it.
			return 2 * math.Exp(float64(k)*s.lnGamma) / (s.gamma + 1)
		}
	}
	// Unreachable: cum equals n after the loop and rank <= n.
	return 0
}

// Percentile is Quantile with p in [0,100], mirroring the batch API.
func (s *Sketch) Percentile(p float64) float64 { return s.Quantile(p / 100) }

// Stream couples an Online accumulator with a quantile Sketch: the
// one-pass replacement for Summarize.
type Stream struct {
	Online Online
	Sketch *Sketch
}

// NewStream returns an empty Stream with the default sketch accuracy.
func NewStream() *Stream {
	return &Stream{Sketch: NewSketch(DefaultSketchAccuracy)}
}

// Add folds one observation into both halves.
func (s *Stream) Add(x float64) {
	s.Online.Add(x)
	s.Sketch.Add(x)
}

// Merge folds another Stream into s.
func (s *Stream) Merge(b *Stream) {
	if b == nil {
		return
	}
	s.Online.Merge(&b.Online)
	s.Sketch.Merge(b.Sketch)
}

// N returns the number of observations.
func (s *Stream) N() int { return s.Online.N() }

// Summary renders the stream as the batch Summary shape: the moments
// (N, Mean, StdDev, Min, Max) are exact, the quantiles (P25, Median,
// P75, P90) come from the sketch and carry its relative error.
func (s *Stream) Summary() Summary {
	if s.Online.N() == 0 {
		return Summary{}
	}
	return Summary{
		N:      s.Online.N(),
		Mean:   s.Online.Mean(),
		StdDev: s.Online.StdDev(),
		Min:    s.Online.Min(),
		P25:    s.Sketch.Quantile(0.25),
		Median: s.Sketch.Quantile(0.50),
		P75:    s.Sketch.Quantile(0.75),
		P90:    s.Sketch.Quantile(0.90),
		Max:    s.Online.Max(),
	}
}
