package stats

import (
	"testing"
	"testing/quick"
)

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); got != cse.want {
			t.Errorf("At(%g) = %g, want %g", cse.x, got, cse.want)
		}
	}
	if c.N() != 4 {
		t.Fatalf("N = %d", c.N())
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(5) != 0 || c.Quantile(0.5) != 0 || len(c.Points()) != 0 {
		t.Fatal("empty CDF should be all-zero")
	}
}

func TestCDFPercent(t *testing.T) {
	c := NewCDF([]float64{10, 20})
	if got := c.Percent(10); got != 50 {
		t.Fatalf("Percent(10) = %g, want 50", got)
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if got := c.Quantile(0.5); got != 2 {
		t.Fatalf("Quantile(0.5) = %g, want 2", got)
	}
	if got := c.Quantile(1); got != 4 {
		t.Fatalf("Quantile(1) = %g, want 4", got)
	}
	if got := c.Quantile(0); got != 1 {
		t.Fatalf("Quantile(0) = %g, want 1", got)
	}
	if got := c.Quantile(2); got != 4 {
		t.Fatalf("Quantile(2) clamps to max, got %g", got)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{5, 5, 7})
	pts := c.Points()
	if len(pts) != 2 {
		t.Fatalf("Points len = %d, want 2 (distinct values)", len(pts))
	}
	if pts[0].X != 5 || !almostEqual(pts[0].Percent, 200.0/3, 1e-9) {
		t.Fatalf("pts[0] = %+v", pts[0])
	}
	if pts[1].X != 7 || pts[1].Percent != 100 {
		t.Fatalf("pts[1] = %+v", pts[1])
	}
}

func TestCDFSampleAtAndRender(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3})
	pts := c.SampleAt([]float64{0, 2, 4})
	want := []float64{0, 200.0 / 3, 100}
	for i, p := range pts {
		if !almostEqual(p.Percent, want[i], 1e-9) {
			t.Fatalf("SampleAt[%d] = %g, want %g", i, p.Percent, want[i])
		}
	}
	if c.Render("x", []float64{1}) == "" {
		t.Fatal("Render should produce output")
	}
}

func TestCDFInputNotMutated(t *testing.T) {
	xs := []float64{3, 1, 2}
	NewCDF(xs)
	if xs[0] != 3 {
		t.Fatalf("input mutated: %v", xs)
	}
}

// Property: CDF is monotone non-decreasing and bounded in [0,1].
func TestPropertyCDFMonotone(t *testing.T) {
	f := func(raw []int16, probes []int16) bool {
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		c := NewCDF(xs)
		prevX, prevV := -1e18, -1.0
		for _, p := range probes {
			x := float64(p)
			if x < prevX {
				continue
			}
			v := c.At(x)
			if v < 0 || v > 1 {
				return false
			}
			if x >= prevX && v < prevV {
				return false
			}
			prevX, prevV = x, v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: At(max) == 1 for non-empty samples.
func TestPropertyCDFReachesOne(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		c := NewCDF(xs)
		return c.At(Max(xs)) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
