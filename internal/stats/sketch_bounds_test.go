package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// These tests pin the Sketch's headline contract — every quantile
// estimate within relative error alpha of the exact nearest-rank
// sample quantile — against distributions chosen to stress the
// log-bucket scheme: wide dynamic range, heavy tails, bucket-boundary
// values, huge bimodal gaps. koalaload's p99 latency numbers (and the
// benchjson gate on them) are only as trustworthy as this bound.

// exactQuantile is the nearest-rank sample quantile the sketch
// documents itself against: the smallest sample whose rank reaches
// ceil(q*n).
func exactQuantile(sorted []float64, q float64) float64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// checkBounds asserts the relative-error guarantee for a spread of
// quantiles including the extremes and koalaload's p50/p95/p99.
func checkBounds(t *testing.T, name string, s *Sketch, values []float64, alpha float64) {
	t.Helper()
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	for _, q := range []float64{0, 0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999, 1} {
		exact := exactQuantile(sorted, q)
		got := s.Quantile(q)
		if exact <= minTrackable {
			// Zero-bucket samples have no meaningful relative error; the
			// sketch must answer 0 for them.
			if got != 0 {
				t.Errorf("%s: q=%g exact %g (zero bucket), sketch %g, want 0", name, q, exact, got)
			}
			continue
		}
		relErr := math.Abs(got-exact) / exact
		// The midpoint estimate carries float rounding on top of the
		// analytic alpha bound; allow a hair of slack.
		if relErr > alpha*(1+1e-9) {
			t.Errorf("%s: q=%g exact=%g sketch=%g rel err %.6f > alpha %g",
				name, q, exact, got, relErr, alpha)
		}
	}
}

// adversarialDistributions builds the test corpus. Deterministic: the
// PRNG is seeded per distribution.
func adversarialDistributions() map[string][]float64 {
	dists := make(map[string][]float64)

	// Log-uniform over 15 decades: every sample in a different region
	// of the bucket space; exercises bucket spread and the cumulative
	// walk.
	rng := rand.New(rand.NewSource(1))
	wide := make([]float64, 5000)
	for i := range wide {
		wide[i] = math.Pow(10, -6+15*rng.Float64())
	}
	dists["log-uniform-15-decades"] = wide

	// Pareto tail (alpha=1.1, barely integrable): the p99/p999 live
	// orders of magnitude above the median — the shape of latency under
	// contention collapse.
	rng = rand.New(rand.NewSource(2))
	pareto := make([]float64, 5000)
	for i := range pareto {
		pareto[i] = math.Pow(1-rng.Float64(), -1/1.1)
	}
	dists["pareto-heavy-tail"] = pareto

	// Bimodal with an 8-decade gap: cache hits vs timeouts. Quantiles
	// right at the mode boundary are where rank bookkeeping breaks.
	bimodal := make([]float64, 0, 1000)
	for i := 0; i < 900; i++ {
		bimodal = append(bimodal, 1.0+float64(i)*1e-4)
	}
	for i := 0; i < 100; i++ {
		bimodal = append(bimodal, 1e8+float64(i))
	}
	dists["bimodal-8-decade-gap"] = bimodal

	// Exact bucket boundaries gamma^k: ceil(log_gamma(x)) is most
	// fragile when log_gamma(x) is an integer (float noise can push a
	// value into the neighbor bucket, which must still satisfy the
	// bound).
	gamma := (1 + DefaultSketchAccuracy) / (1 - DefaultSketchAccuracy)
	boundaries := make([]float64, 0, 1200)
	for k := -300; k < 900; k++ {
		boundaries = append(boundaries, math.Pow(gamma, float64(k)))
	}
	dists["bucket-boundaries"] = boundaries

	// All-equal samples: every quantile is the same value; the estimate
	// must still be within alpha of it (not exactly equal — it is a
	// bucket midpoint).
	constant := make([]float64, 500)
	for i := range constant {
		constant[i] = 137.5
	}
	dists["constant"] = constant

	// Tiny magnitudes hugging the zero-bucket threshold, mixed with
	// zeros: exercises the zeros/counts split.
	rng = rand.New(rand.NewSource(3))
	tiny := make([]float64, 2000)
	for i := range tiny {
		if i%5 == 0 {
			tiny[i] = 0
		} else {
			tiny[i] = minTrackable * math.Pow(10, 6*rng.Float64())
		}
	}
	dists["near-zero-and-zeros"] = tiny

	return dists
}

func TestSketchQuantileErrorBounds(t *testing.T) {
	for _, alpha := range []float64{DefaultSketchAccuracy, 0.05} {
		for name, values := range adversarialDistributions() {
			s := NewSketch(alpha)
			for _, v := range values {
				s.Add(v)
			}
			checkBounds(t, fmt.Sprintf("alpha=%g/%s", alpha, name), s, values, alpha)
		}
	}
}

// TestSketchMergePreservesErrorBounds pins what koalaload relies on
// directly: per-client sketches merged into one fleet sketch answer
// quantiles with the same guarantee as a single sketch fed everything
// — and identically to it, since merging only adds bucket counts.
func TestSketchMergePreservesErrorBounds(t *testing.T) {
	for name, values := range adversarialDistributions() {
		single := NewSketch(DefaultSketchAccuracy)
		const shards = 7
		parts := make([]*Sketch, shards)
		for i := range parts {
			parts[i] = NewSketch(DefaultSketchAccuracy)
		}
		for i, v := range values {
			single.Add(v)
			parts[i%shards].Add(v)
		}
		merged := NewSketch(DefaultSketchAccuracy)
		for _, p := range parts {
			merged.Merge(p)
		}
		if merged.N() != int64(len(values)) {
			t.Fatalf("%s: merged N = %d, want %d", name, merged.N(), len(values))
		}
		checkBounds(t, "merged/"+name, merged, values, DefaultSketchAccuracy)
		for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
			if got, want := merged.Quantile(q), single.Quantile(q); got != want {
				t.Errorf("%s: q=%g merged %g != single %g (merge must be exact on buckets)",
					name, q, got, want)
			}
		}
	}
}

// TestSketchQuantileMonotone: estimates must be non-decreasing in q on
// every adversarial distribution — a reporting invariant (p99 >= p50)
// koalaload's report and the benchjson metrics both assume.
func TestSketchQuantileMonotone(t *testing.T) {
	for name, values := range adversarialDistributions() {
		s := NewSketch(DefaultSketchAccuracy)
		for _, v := range values {
			s.Add(v)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.005 {
			got := s.Quantile(q)
			if got < prev {
				t.Fatalf("%s: Quantile(%g) = %g < Quantile(%g) = %g", name, q, got, q-0.005, prev)
			}
			prev = got
		}
	}
}
