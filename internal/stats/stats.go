// Package stats provides the small statistics toolkit used by the metrics
// and experiment layers: descriptive statistics, empirical CDFs, histograms
// and step time series. All of the paper's figures are either ECDFs
// (Figs. 7a–d, 8a–d) or time series (Figs. 7e–f, 8e–f), so these types are
// the lingua franca between the simulator and the figure harness.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice and
// panics for p outside [0,100].
func Percentile(xs []float64, p float64) float64 {
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %g out of [0,100]", p))
	}
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Summary is a compact five-number-plus description of a sample. The
// JSON tags make it directly usable in koalad's wire payloads.
type Summary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	P25    float64 `json:"p25"`
	Median float64 `json:"median"`
	P75    float64 `json:"p75"`
	P90    float64 `json:"p90"`
	Max    float64 `json:"max"`
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		P25:    Percentile(xs, 25),
		Median: Median(xs),
		P75:    Percentile(xs, 75),
		P90:    Percentile(xs, 90),
		Max:    Max(xs),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f sd=%.2f min=%.2f p25=%.2f med=%.2f p75=%.2f p90=%.2f max=%.2f",
		s.N, s.Mean, s.StdDev, s.Min, s.P25, s.Median, s.P75, s.P90, s.Max)
}
