package stats

import (
	"fmt"
	"sort"
)

// TimeSeries is a piecewise-constant (step) time series: the value set at
// time t holds until the next sample. It backs the utilisation curves
// (Figs. 7e, 8e) and the cumulative malleability-operation counts
// (Figs. 7f, 8f).
type TimeSeries struct {
	times  []float64
	values []float64
}

// NewTimeSeries returns an empty series.
func NewTimeSeries() *TimeSeries { return &TimeSeries{} }

// Reserve grows the series' capacity to hold at least n samples, sparing
// callers that know their sample count up front the append doublings.
func (ts *TimeSeries) Reserve(n int) {
	if n <= cap(ts.times) {
		return
	}
	times := make([]float64, len(ts.times), n)
	values := make([]float64, len(ts.values), n)
	copy(times, ts.times)
	copy(values, ts.values)
	ts.times, ts.values = times, values
}

// Add appends a sample at time t. Samples must be added in non-decreasing
// time order; a sample at the same instant overwrites the previous value
// (last writer wins, matching events that change state "simultaneously").
func (ts *TimeSeries) Add(t, v float64) {
	if n := len(ts.times); n > 0 {
		if t < ts.times[n-1] {
			panic(fmt.Sprintf("stats: time series sample out of order: %g after %g", t, ts.times[n-1]))
		}
		if t == ts.times[n-1] {
			ts.values[n-1] = v
			return
		}
	}
	ts.times = append(ts.times, t)
	ts.values = append(ts.values, v)
}

// Len returns the number of stored samples.
func (ts *TimeSeries) Len() int { return len(ts.times) }

// At returns the series value at time t (the value of the latest sample with
// time ≤ t), or 0 before the first sample.
func (ts *TimeSeries) At(t float64) float64 {
	idx := sort.SearchFloat64s(ts.times, t)
	// idx is the first index with times[idx] >= t; we want the last <= t.
	if idx < len(ts.times) && ts.times[idx] == t {
		return ts.values[idx]
	}
	if idx == 0 {
		return 0
	}
	return ts.values[idx-1]
}

// Sample evaluates the series on a regular grid [start, end] with the given
// step, returning one Point per grid instant.
func (ts *TimeSeries) Sample(start, end, step float64) []Point {
	if step <= 0 {
		panic("stats: non-positive sampling step")
	}
	var pts []Point
	for t := start; t <= end+1e-9; t += step {
		pts = append(pts, Point{X: t, Percent: ts.At(t)})
	}
	return pts
}

// Integral returns the integral of the step series over [start, end] — used
// to compute time-averaged utilisation.
func (ts *TimeSeries) Integral(start, end float64) float64 {
	if end <= start || len(ts.times) == 0 {
		return 0
	}
	total := 0.0
	// Walk segments [times[i], times[i+1]) clipped to [start, end].
	for i := 0; i < len(ts.times); i++ {
		segStart := ts.times[i]
		segEnd := end
		if i+1 < len(ts.times) {
			segEnd = ts.times[i+1]
		}
		lo := segStart
		if lo < start {
			lo = start
		}
		hi := segEnd
		if hi > end {
			hi = end
		}
		if hi > lo {
			total += ts.values[i] * (hi - lo)
		}
	}
	return total
}

// MeanOver returns the time-averaged value over [start, end].
func (ts *TimeSeries) MeanOver(start, end float64) float64 {
	if end <= start {
		return 0
	}
	return ts.Integral(start, end) / (end - start)
}

// MaxValue returns the maximum sampled value, or 0 for an empty series.
func (ts *TimeSeries) MaxValue() float64 {
	m := 0.0
	for _, v := range ts.values {
		if v > m {
			m = v
		}
	}
	return m
}

// Last returns the final (time, value) sample; ok is false when empty.
func (ts *TimeSeries) Last() (t, v float64, ok bool) {
	if len(ts.times) == 0 {
		return 0, 0, false
	}
	n := len(ts.times) - 1
	return ts.times[n], ts.values[n], true
}

// Counter is a monotone event counter rendered as a cumulative time series
// (e.g. "number of grown messages" in Fig. 7f).
type Counter struct {
	ts    TimeSeries
	count float64
}

// NewCounter returns a zeroed counter.
func NewCounter() *Counter { return &Counter{} }

// Inc adds n occurrences at time t.
func (c *Counter) Inc(t float64, n int) {
	c.count += float64(n)
	c.ts.Add(t, c.count)
}

// Total returns the current count.
func (c *Counter) Total() float64 { return c.count }

// Series exposes the cumulative series.
func (c *Counter) Series() *TimeSeries { return &c.ts }
