package gram

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/lrm"
	"repro/internal/sim"
)

func TestGatekeeperSerializesSubmissions(t *testing.T) {
	e := sim.New()
	c := cluster.New("site", 32)
	s := New(e, lrm.New(e, c), Config{SubmitLatency: 5, ReleaseLatency: 0.5, SubmitConcurrency: 1})
	var activeTimes []float64
	for i := 0; i < 4; i++ {
		s.Submit(1, func(*Job) { activeTimes = append(activeTimes, e.Now()) })
	}
	if s.Backlog() != 3 {
		t.Fatalf("backlog = %d, want 3", s.Backlog())
	}
	e.Run()
	want := []float64{5, 10, 15, 20}
	if len(activeTimes) != 4 {
		t.Fatalf("activations = %v", activeTimes)
	}
	for i, w := range want {
		if activeTimes[i] != w {
			t.Fatalf("activations = %v, want %v", activeTimes, want)
		}
	}
}

func TestGatekeeperConcurrencyTwo(t *testing.T) {
	e := sim.New()
	c := cluster.New("site", 32)
	s := New(e, lrm.New(e, c), Config{SubmitLatency: 5, ReleaseLatency: 0.5, SubmitConcurrency: 2})
	active := 0
	for i := 0; i < 4; i++ {
		s.Submit(1, func(*Job) { active++ })
	}
	e.RunUntil(5)
	if active != 2 {
		t.Fatalf("active = %d at t=5, want 2", active)
	}
	e.RunUntil(10)
	if active != 4 {
		t.Fatalf("active = %d at t=10, want 4", active)
	}
}

func TestGatekeeperUnlimitedWhenZero(t *testing.T) {
	e := sim.New()
	c := cluster.New("site", 32)
	s := New(e, lrm.New(e, c), Config{SubmitLatency: 5, ReleaseLatency: 0.5, SubmitConcurrency: 0})
	active := 0
	for i := 0; i < 10; i++ {
		s.Submit(1, func(*Job) { active++ })
	}
	e.RunUntil(5)
	if active != 10 {
		t.Fatalf("active = %d at t=5, want all 10", active)
	}
}

func TestReleaseWhileInBacklogNeverSubmits(t *testing.T) {
	e := sim.New()
	c := cluster.New("site", 32)
	s := New(e, lrm.New(e, c), Config{SubmitLatency: 5, ReleaseLatency: 0.5, SubmitConcurrency: 1})
	s.Submit(1, nil) // occupies the gatekeeper
	victim, _ := s.Submit(1, func(*Job) { t.Error("released backlog job became active") })
	if err := s.Release(victim); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if victim.State() != Released {
		t.Fatalf("state = %v", victim.State())
	}
	if c.Used() != 1 {
		t.Fatalf("used = %d, want 1 (only the first job)", c.Used())
	}
}

func TestNegativeConcurrencyPanics(t *testing.T) {
	e := sim.New()
	c := cluster.New("x", 1)
	defer func() {
		if recover() == nil {
			t.Error("negative concurrency did not panic")
		}
	}()
	New(e, lrm.New(e, c), Config{SubmitLatency: 1, SubmitConcurrency: -1})
}
