package gram

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/lrm"
	"repro/internal/sim"
)

func setup(nodes int, cfg Config) (*sim.Engine, *cluster.Cluster, *Service) {
	e := sim.New()
	c := cluster.New("site", nodes)
	return e, c, New(e, lrm.New(e, c), cfg)
}

func TestSubmitLatency(t *testing.T) {
	e, c, s := setup(8, Config{SubmitLatency: 5, ReleaseLatency: 1})
	var activeAt float64 = -1
	j, err := s.Submit(2, func(*Job) { activeAt = e.Now() })
	if err != nil {
		t.Fatal(err)
	}
	if j.State() != Submitted {
		t.Fatalf("state = %v right after submit", j.State())
	}
	e.Run()
	if activeAt != 5 {
		t.Fatalf("job active at %g, want 5", activeAt)
	}
	if j.State() != Active || c.Used() != 2 {
		t.Fatalf("state=%v used=%d", j.State(), c.Used())
	}
}

func TestReleaseActiveJob(t *testing.T) {
	e, c, s := setup(8, Config{SubmitLatency: 2, ReleaseLatency: 3})
	j, _ := s.Submit(4, nil)
	e.RunUntil(2)
	if j.State() != Active {
		t.Fatalf("state = %v", j.State())
	}
	if err := s.Release(j); err != nil {
		t.Fatal(err)
	}
	if c.Used() != 4 {
		t.Fatal("nodes should still be held during release latency")
	}
	e.RunUntil(5.1)
	if c.Used() != 0 || j.State() != Released {
		t.Fatalf("used=%d state=%v after release", c.Used(), j.State())
	}
}

func TestReleaseInFlightJobNeverHoldsNodes(t *testing.T) {
	e, c, s := setup(8, Config{SubmitLatency: 5, ReleaseLatency: 1})
	j, _ := s.Submit(3, func(*Job) { t.Error("onActive fired for released job") })
	if err := s.Release(j); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if c.Used() != 0 || j.State() != Released {
		t.Fatalf("used=%d state=%v", c.Used(), j.State())
	}
}

func TestReleasePendingJob(t *testing.T) {
	e, c, s := setup(4, Config{SubmitLatency: 1, ReleaseLatency: 1})
	blocker, _ := s.Submit(4, nil)
	j, _ := s.Submit(2, func(*Job) { t.Error("onActive fired for released pending job") })
	e.RunUntil(1.5)
	if j.State() != Pending {
		t.Fatalf("state = %v, want pending", j.State())
	}
	if err := s.Release(j); err != nil {
		t.Fatal(err)
	}
	e.Run()
	if j.State() != Released {
		t.Fatalf("state = %v", j.State())
	}
	_ = blocker
	_ = c
}

func TestDoubleReleaseFails(t *testing.T) {
	e, _, s := setup(4, DefaultConfig())
	j, _ := s.Submit(1, nil)
	e.Run()
	if err := s.Release(j); err != nil {
		t.Fatal(err)
	}
	if err := s.Release(j); err == nil {
		t.Fatal("double release should fail")
	}
}

func TestSubmitValidation(t *testing.T) {
	_, _, s := setup(4, DefaultConfig())
	if _, err := s.Submit(0, nil); err == nil {
		t.Fatal("zero-node submit should fail")
	}
	if _, err := s.Submit(5, nil); err == nil {
		t.Fatal("oversize submit should fail")
	}
}

func TestForeignJobRelease(t *testing.T) {
	e := sim.New()
	c1 := cluster.New("a", 4)
	c2 := cluster.New("b", 4)
	s1 := New(e, lrm.New(e, c1), DefaultConfig())
	s2 := New(e, lrm.New(e, c2), DefaultConfig())
	j, _ := s1.Submit(1, nil)
	if err := s2.Release(j); err == nil {
		t.Fatal("releasing a foreign job should fail")
	}
}

func TestStubCollectionGrowShrink(t *testing.T) {
	// The MRunner pattern end to end: grow by submitting size-1 stubs,
	// shrink by releasing some of them.
	e, c, s := setup(10, Config{SubmitLatency: 2, ReleaseLatency: 0.5})
	active := 0
	var jobs []*Job
	for i := 0; i < 6; i++ {
		j, err := s.Submit(1, func(*Job) { active++ })
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	e.Run()
	if active != 6 || c.Used() != 6 {
		t.Fatalf("active=%d used=%d", active, c.Used())
	}
	for _, j := range jobs[:3] {
		if err := s.Release(j); err != nil {
			t.Fatal(err)
		}
	}
	e.Run()
	if c.Used() != 3 {
		t.Fatalf("used=%d after shrink", c.Used())
	}
	sub, act, rel := s.Stats()
	if sub != 6 || act != 6 || rel != 3 {
		t.Fatalf("stats = %d/%d/%d", sub, act, rel)
	}
}

func TestNegativeLatencyPanics(t *testing.T) {
	e := sim.New()
	c := cluster.New("x", 1)
	defer func() {
		if recover() == nil {
			t.Error("negative latency did not panic")
		}
	}()
	New(e, lrm.New(e, c), Config{SubmitLatency: -1})
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Submitted: "submitted", Pending: "pending", Active: "active", Released: "released", State(7): "state(7)"} {
		if s.String() != want {
			t.Errorf("State(%d) = %q, want %q", int(s), s.String(), want)
		}
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.SubmitLatency <= 0 || cfg.ReleaseLatency <= 0 {
		t.Fatalf("default config not positive: %+v", cfg)
	}
	if cfg.ReleaseLatency >= cfg.SubmitLatency {
		t.Fatal("release should be cheaper than submission (§V-A)")
	}
}
