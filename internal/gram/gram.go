// Package gram models the GLOBUS GRAM job-submission service that KOALA's
// runners use to acquire processors (§IV-A, §V-A). GRAM is not
// malleability-aware, so the Malleable Runner manages a malleable
// application as a *collection of GRAM jobs of size 1*: growth submits new
// size-1 jobs (each paying the full submission latency — security
// enforcement, queue management), and shrinking releases some of them.
//
// Submissions launch an empty *stub* rather than the application program;
// the stub is recruited into an application process later, which is much
// faster than a submission (§V-A). The latency model below captures exactly
// that asymmetry.
package gram

import (
	"fmt"

	"repro/internal/lrm"
	"repro/internal/sim"
)

// Config holds the latency model of a GRAM service.
type Config struct {
	// SubmitLatency is the delay between Submit and the moment the stub
	// reaches the local resource manager (security, staging, queue
	// management). The stub becomes Active once the LRM starts it.
	SubmitLatency float64
	// ReleaseLatency is the delay between Release and the nodes actually
	// returning to the idle pool.
	ReleaseLatency float64
	// SubmitConcurrency bounds how many submissions the gatekeeper
	// processes at once; further submissions queue. This is the "poor
	// reactivity" of managing a malleable job as a collection of size-1
	// GRAM jobs that §V-A points out: growing by k processors costs about
	// k/SubmitConcurrency·SubmitLatency. Zero means unlimited.
	SubmitConcurrency int
}

// DefaultConfig reflects the order of magnitude observed on DAS-3 with
// GLOBUS pre-WS GRAM: a few seconds per submission, sub-second releases,
// and a gatekeeper that serves a handful of submissions concurrently. The
// per-stub overhead is what makes managing a malleable job as a collection
// of size-1 GRAM jobs poorly reactive (§V-A) without starving the rest of
// the site for minutes.
func DefaultConfig() Config {
	return Config{SubmitLatency: 5, ReleaseLatency: 0.5, SubmitConcurrency: 8}
}

// State is the lifecycle state of a GRAM job.
type State int

const (
	// Submitted means the job is in flight towards the LRM.
	Submitted State = iota
	// Pending means the job reached the LRM and waits for nodes.
	Pending
	// Active means the stub runs and its nodes are held.
	Active
	// Released means the job has terminated and freed its nodes.
	Released
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Submitted:
		return "submitted"
	case Pending:
		return "pending"
	case Active:
		return "active"
	case Released:
		return "released"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Job is one GRAM job (size-1 for the Malleable Runner's stubs, arbitrary
// size for rigid jobs).
type Job struct {
	Nodes int

	seq      int
	state    State
	lrmJob   *lrm.Job
	svc      *Service
	onActive func(*Job)
	// activator is the interface form of onActive (see SubmitTo); at most
	// one of the two is set.
	activator Activator
	released  bool // release requested (possibly while still in flight)
}

// ID returns the job's identifier. It is formatted lazily: the hot path
// never pays for a per-submission string.
func (j *Job) ID() string { return fmt.Sprintf("gram-%s-%d", j.svc.SiteName(), j.seq) }

// State returns the job's lifecycle state.
func (j *Job) State() State { return j.state }

// Event op codes for the Job's sim.Handler implementation.
const (
	opArrive      = iota // submission latency elapsed: hand to the LRM
	opReleaseDone        // release latency elapsed: free the LRM job
)

// OnEvent implements sim.Handler: the job's latency events fire on the job
// itself, so the gatekeeper and release paths schedule no closures.
func (j *Job) OnEvent(op int) {
	switch op {
	case opArrive:
		s := j.svc
		s.inFlight--
		s.arriveAtLRM(j)
		s.drainBacklog()
	case opReleaseDone:
		if j.lrmJob.State() == lrm.Running {
			j.svc.mgr.Finish(j.lrmJob)
		}
	}
}

// Service is the GRAM endpoint of one execution site.
type Service struct {
	engine *sim.Engine
	mgr    *lrm.Manager
	cfg    Config
	seq    int

	inFlight int
	// backlog is a head-indexed FIFO of submissions waiting for a
	// gatekeeper slot (see lrm.Manager.queue for the rationale).
	backlog     []*Job
	backlogHead int
	submitted   uint64
	activated   uint64
	releases    uint64

	// arena batch-allocates Job structs; handles stay valid for the life
	// of the service (jobs are never reused), the batching only cuts the
	// per-submission allocation count.
	arena []Job
}

// newJob hands out a zeroed Job from the arena.
func (s *Service) newJob() *Job {
	if len(s.arena) == 0 {
		s.arena = make([]Job, 64)
	}
	j := &s.arena[0]
	s.arena = s.arena[1:]
	return j
}

// New creates a GRAM service submitting to the given LRM.
func New(engine *sim.Engine, mgr *lrm.Manager, cfg Config) *Service {
	if cfg.SubmitLatency < 0 || cfg.ReleaseLatency < 0 {
		panic("gram: negative latency")
	}
	if cfg.SubmitConcurrency < 0 {
		panic("gram: negative submit concurrency")
	}
	return &Service{engine: engine, mgr: mgr, cfg: cfg}
}

// SiteName returns the name of the execution site (the LRM's cluster).
func (s *Service) SiteName() string { return s.mgr.Cluster().Name() }

// Stats returns cumulative (submitted, activated, released) job counts.
func (s *Service) Stats() (submitted, activated, released uint64) {
	return s.submitted, s.activated, s.releases
}

// Activator receives stub activation callbacks. It is the interface form
// of Submit's onActive parameter: a caller that submits many stubs (the
// Malleable Runner's acquisitions) implements it once and passes itself to
// SubmitTo, so the grow hot path allocates no per-submission closures.
type Activator interface {
	JobActive(j *Job)
}

// Submit launches a GRAM job for nodes nodes. onActive fires once the stub
// holds its nodes. The returned handle can be released at any point of its
// life (including before it becomes active).
func (s *Service) Submit(nodes int, onActive func(*Job)) (*Job, error) {
	j, err := s.submit(nodes)
	if err != nil {
		return nil, err
	}
	j.onActive = onActive
	s.dispatch(j)
	return j, nil
}

// SubmitTo is Submit with the activation callback as an interface — the
// closure-free form used on the stub-acquisition hot path.
func (s *Service) SubmitTo(nodes int, a Activator) (*Job, error) {
	j, err := s.submit(nodes)
	if err != nil {
		return nil, err
	}
	j.activator = a
	s.dispatch(j)
	return j, nil
}

func (s *Service) submit(nodes int) (*Job, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("gram %s: submit of %d nodes", s.SiteName(), nodes)
	}
	if nodes > s.mgr.Cluster().Nodes() {
		return nil, fmt.Errorf("gram %s: %d nodes exceed cluster size %d",
			s.SiteName(), nodes, s.mgr.Cluster().Nodes())
	}
	j := s.newJob()
	j.Nodes = nodes
	j.seq = s.seq
	j.state = Submitted
	j.svc = s
	s.seq++
	s.submitted++
	return j, nil
}

// dispatch hands a freshly built job to the gatekeeper (or its backlog).
func (s *Service) dispatch(j *Job) {
	if s.cfg.SubmitConcurrency > 0 && s.inFlight >= s.cfg.SubmitConcurrency {
		s.backlog = append(s.backlog, j)
		return
	}
	s.beginSubmission(j)
}

// beginSubmission occupies a gatekeeper slot for SubmitLatency.
func (s *Service) beginSubmission(j *Job) {
	s.inFlight++
	s.engine.AfterOp(s.cfg.SubmitLatency, j, opArrive)
}

func (s *Service) drainBacklog() {
	for s.backlogHead < len(s.backlog) && (s.cfg.SubmitConcurrency == 0 || s.inFlight < s.cfg.SubmitConcurrency) {
		next := s.backlog[s.backlogHead]
		s.backlog[s.backlogHead] = nil
		s.backlogHead++
		if s.backlogHead == len(s.backlog) {
			s.backlog = s.backlog[:0]
			s.backlogHead = 0
		}
		if next.released {
			next.state = Released
			continue
		}
		s.beginSubmission(next)
	}
}

// Backlog returns the number of submissions queued at the gatekeeper.
func (s *Service) Backlog() int { return len(s.backlog) - s.backlogHead }

func (s *Service) arriveAtLRM(j *Job) {
	if j.released { // released while still in flight: never reaches the LRM
		j.state = Released
		return
	}
	lj, err := s.mgr.SubmitFor(j, j.Nodes)
	if err != nil {
		// Validated at Submit; reaching this means the model is inconsistent.
		panic(fmt.Sprintf("gram %s: LRM rejected validated job: %v", s.SiteName(), err))
	}
	j.state = Pending
	j.lrmJob = lj
}

// JobStarted implements lrm.Starter: the LRM job holds its nodes.
func (j *Job) JobStarted(*lrm.Job) { j.svc.activate(j) }

func (s *Service) activate(j *Job) {
	if j.released {
		// Released while queued at the LRM: free the nodes right away.
		s.mgr.Finish(j.lrmJob)
		j.state = Released
		return
	}
	j.state = Active
	s.activated++
	if j.activator != nil {
		j.activator.JobActive(j)
	} else if j.onActive != nil {
		j.onActive(j)
	}
}

// Release terminates a GRAM job at whatever stage it is. For an active job
// the nodes return to the idle pool after ReleaseLatency; for an in-flight
// or pending job the release takes effect when the job would have started.
func (s *Service) Release(j *Job) error {
	if j.svc != s {
		return fmt.Errorf("gram %s: job %q belongs to another service", s.SiteName(), j.ID())
	}
	if j.released || j.state == Released {
		return fmt.Errorf("gram %s: double release of %q", s.SiteName(), j.ID())
	}
	j.released = true
	s.releases++
	switch j.state {
	case Active:
		s.engine.AfterOp(s.cfg.ReleaseLatency, j, opReleaseDone)
		j.state = Released
	case Pending:
		if err := s.mgr.Cancel(j.lrmJob); err == nil {
			j.state = Released
		}
		// If Cancel failed the job is racing into Running; activate() will
		// observe j.released and finish it.
	case Submitted:
		// arriveAtLRM will observe j.released and drop the job.
	}
	return nil
}
