package loadgen

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"
)

// client is one simulated user: a behavior class, a private PRNG, and
// private accumulators the fleet merges after the join (no shared
// state during the run, so 2000 clients contend only on the server
// under test, not on the harness).
type client struct {
	id    int
	class Class
	rng   *rand.Rand
	opts  Options
	acc   *classAccum
}

func newClient(id int, opts Options) *client {
	return &client{
		id:    id,
		class: opts.Mix.classOf(id),
		rng:   rand.New(rand.NewSource(int64(splitmix64(opts.fleetBase() ^ uint64(id))))),
		opts:  opts,
		acc:   newClassAccum(),
	}
}

// run performs the client's Requests operations in sequence. Operation
// op of a follower/disconnector targets wave round op, so all
// same-round clients pile onto the same fingerprint and coalesce.
func (c *client) run(ctx context.Context) {
	for op := 0; op < c.opts.Requests; op++ {
		if ctx.Err() != nil {
			return
		}
		c.operate(ctx, op)
	}
}

func (c *client) operate(ctx context.Context, op int) {
	opCtx, cancel := context.WithTimeout(ctx, c.opts.OpTimeout)
	defer cancel()

	var body []byte
	disconnectAfter := 0 // 0: hold to terminal
	switch c.class {
	case CacheHot:
		body = c.opts.configJSON(CacheHot, c.opts.hotSeed(c.rng.Intn(c.opts.HotConfigs)))
	case ColdSweep:
		body = c.opts.configJSON(ColdSweep, c.opts.coldSeed(c.id, op))
	case Follower:
		body = c.opts.configJSON(Follower, c.opts.waveSeed(op))
	case Disconnector:
		// Same wave fingerprint as the followers, but leave after 1–3
		// events — always before the terminal event of a live run.
		body = c.opts.configJSON(Follower, c.opts.waveSeed(op))
		disconnectAfter = 1 + c.rng.Intn(3)
	}

	start := time.Now()
	var (
		events  int
		firstAt time.Time
	)
	// A run can be retired from the registry (MaxRetained) between the
	// submit response and the events GET under heavy fleets — the stream
	// then 404s. The POST is idempotent by content hash, so a real
	// client's recovery is to re-submit; bound the loop so a
	// genuinely-broken server still errors out.
	for attempt := 0; ; attempt++ {
		sub, err := c.submit(opCtx, body)
		if err != nil {
			c.acc.errorf("client %d (%s) op %d: submit: %v", c.id, c.class, op, err)
			return
		}
		if attempt == 0 {
			c.acc.submit.Add(float64(time.Since(start)))
		} else {
			c.acc.resubmits++
		}
		if sub.Cached {
			c.acc.cached++
		}
		if sub.Coalesced {
			c.acc.coalesced++
		}

		events, firstAt, err = c.stream(opCtx, sub.EventsURL, disconnectAfter)
		c.acc.events += int64(events)
		if errors.Is(err, errGone) && attempt < 4 && opCtx.Err() == nil {
			continue
		}
		if disconnectAfter > 0 && errors.Is(err, errDisconnected) {
			c.acc.disconnects++
			return // deliberate hangup, not a failure and not a latency sample
		}
		if err != nil {
			c.acc.errorf("client %d (%s) op %d: stream %s: %v", c.id, c.class, op, sub.EventsURL, err)
			return
		}
		break
	}
	c.acc.firstEvent.Add(float64(firstAt.Sub(start)))
	c.acc.terminal.Add(float64(time.Since(start)))
	c.acc.ops++
}

// submitResponse mirrors the wire shape of POST /v1/experiments.
type submitResponse struct {
	ID        string `json:"id"`
	Hash      string `json:"hash"`
	Status    string `json:"status"`
	Cached    bool   `json:"cached"`
	Coalesced bool   `json:"coalesced"`
	EventsURL string `json:"events_url"`
}

// submit POSTs the config, retrying 429 backpressure with capped
// exponential backoff and PRNG jitter. Throttles are counted but are
// not errors — backpressure working as designed; only exhausting the
// op deadline turns into a giveup error.
func (c *client) submit(ctx context.Context, body []byte) (submitResponse, error) {
	backoff := 5 * time.Millisecond
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.opts.BaseURL+"/v1/experiments", bytes.NewReader(body))
		if err != nil {
			return submitResponse{}, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.opts.HTTPClient.Do(req)
		if err != nil {
			return submitResponse{}, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			c.acc.throttled++
			jitter := time.Duration(c.rng.Int63n(int64(backoff)))
			select {
			case <-ctx.Done():
				return submitResponse{}, fmt.Errorf("gave up after %d throttles: %w", c.acc.throttled, ctx.Err())
			case <-time.After(backoff + jitter):
			}
			if backoff < 500*time.Millisecond {
				backoff *= 2
			}
			continue
		}
		rb, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if err != nil {
			return submitResponse{}, err
		}
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusAccepted {
			return submitResponse{}, fmt.Errorf("POST /v1/experiments: %s: %s", resp.Status, truncate(rb, 200))
		}
		var sub submitResponse
		if err := json.Unmarshal(rb, &sub); err != nil {
			return submitResponse{}, fmt.Errorf("decode submit response: %w", err)
		}
		if sub.EventsURL == "" {
			return submitResponse{}, fmt.Errorf("submit response for %s has no events_url", sub.ID)
		}
		return sub, nil
	}
}

// errDisconnected marks a deliberate mid-stream hangup.
var errDisconnected = errors.New("loadgen: deliberate disconnect")

// errGone marks an events URL whose run has been retired (404) —
// recoverable by re-submitting the config.
var errGone = errors.New("loadgen: run retired")

// streamEvent is the minimal probe of an NDJSON line: just enough to
// spot the terminal event.
type streamEvent struct {
	Type  string `json:"type"`
	Error string `json:"error"`
}

// stream follows the run's NDJSON event stream. It returns the number
// of events read and the arrival time of the first one. With
// disconnectAfter > 0 it closes the connection after that many events
// and returns errDisconnected — unless the stream ends first (a cached
// replay can be shorter than the hangup depth). A terminal
// `{"type":"error"}` event is a client-visible run failure and is
// returned as an error.
func (c *client) stream(ctx context.Context, url string, disconnectAfter int) (events int, firstAt time.Time, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.opts.BaseURL+url, nil)
	if err != nil {
		return 0, time.Time{}, err
	}
	resp, err := c.opts.HTTPClient.Do(req)
	if err != nil {
		return 0, time.Time{}, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	if resp.StatusCode == http.StatusNotFound {
		return 0, time.Time{}, errGone
	}
	if resp.StatusCode != http.StatusOK {
		return 0, time.Time{}, fmt.Errorf("GET %s: %s", url, resp.Status)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		events++
		if events == 1 {
			firstAt = time.Now()
		}
		var ev streamEvent
		if jsonErr := json.Unmarshal(line, &ev); jsonErr != nil {
			return events, firstAt, fmt.Errorf("malformed event %d: %w", events, jsonErr)
		}
		switch ev.Type {
		case "summary":
			return events, firstAt, nil
		case "error":
			return events, firstAt, fmt.Errorf("run failed: %s", ev.Error)
		}
		if disconnectAfter > 0 && events >= disconnectAfter {
			return events, firstAt, errDisconnected
		}
	}
	if scErr := sc.Err(); scErr != nil {
		return events, firstAt, scErr
	}
	return events, firstAt, fmt.Errorf("stream ended without terminal event after %d events", events)
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(bytes.TrimSpace(b))
	}
	return string(bytes.TrimSpace(b[:n])) + "..."
}
