// Package loadgen is koalaload's simulated-client fleet: N
// goroutine-cheap clients with deterministic per-client PRNGs driving
// mixed behaviors against a live koalad, in the style of
// kolide/launcher's simulator. The fleet is the user-side half of the
// observability plane — where internal/obs measures what the server
// does, loadgen measures what a client experiences: submit-to-first-
// event and submit-to-terminal latency per behavior class, events/sec
// fanout, error and 429 rates, and cache hit/coalesce rates scraped
// from /metrics before and after the run.
//
// Determinism: every client decision (which hot config to re-POST,
// backoff jitter, disconnect depth) comes from a per-client PRNG
// seeded from (fleet seed, client index), so a fleet run issues a
// reproducible request schedule. The measured latencies are wall
// clock and of course vary run to run — the schedule is deterministic,
// the weather is not.
package loadgen

import (
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"
)

// Class is a client behavior class.
type Class int

const (
	// CacheHot clients re-POST configs from a small pre-warmed pool:
	// every submission is a cache hit and the stream replays instantly.
	// They measure the server's request-path latency floor.
	CacheHot Class = iota
	// ColdSweep clients submit configs nobody has seen before: every
	// submission misses the cache and simulates. They measure admission,
	// queueing and end-to-end simulation latency, and they are the ones
	// that hit 429 backpressure when the queue fills.
	ColdSweep
	// Follower clients submit from a shared per-round pool so many of
	// them coalesce onto one in-flight run, then hold the NDJSON stream
	// open to the terminal event. They measure event fanout.
	Follower
	// Disconnector clients attach to the same in-flight runs the
	// followers create and hang up mid-stream after a PRNG-chosen number
	// of events, exercising the server's disconnect accounting and
	// follower cleanup under churn.
	Disconnector

	numClasses
)

// String names the class as it appears in reports and metric keys.
func (c Class) String() string {
	switch c {
	case CacheHot:
		return "cachehot"
	case ColdSweep:
		return "coldsweep"
	case Follower:
		return "follower"
	case Disconnector:
		return "disconnector"
	}
	return fmt.Sprintf("class-%d", int(c))
}

// Mix is the fleet's behavior composition as integer weights. Clients
// are assigned classes by weighted round-robin over the client index,
// so a 2000-client fleet with weights {5,1,3,1} has exactly 1000
// cache-hot, 200 cold-sweep, 600 follower and 200 disconnector clients.
type Mix struct {
	CacheHot     int
	ColdSweep    int
	Follower     int
	Disconnector int
}

// DefaultMix is a read-heavy composition: half the fleet hammering the
// cache, a tail of cold work, and a strong follower contingent.
func DefaultMix() Mix { return Mix{CacheHot: 5, ColdSweep: 1, Follower: 3, Disconnector: 1} }

func (m Mix) total() int { return m.CacheHot + m.ColdSweep + m.Follower + m.Disconnector }

// classOf assigns a class to client i by weighted partition of
// i mod total — deterministic, exact proportions.
func (m Mix) classOf(i int) Class {
	r := i % m.total()
	if r < m.CacheHot {
		return CacheHot
	}
	r -= m.CacheHot
	if r < m.ColdSweep {
		return ColdSweep
	}
	r -= m.ColdSweep
	if r < m.Follower {
		return Follower
	}
	return Disconnector
}

// ParseMix parses "cachehot=5,cold=1,follower=3,disconnect=1". Absent
// classes get weight 0; at least one weight must be positive.
func ParseMix(s string) (Mix, error) {
	var m Mix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return Mix{}, fmt.Errorf("loadgen: mix term %q is not name=weight", part)
		}
		var w int
		if _, err := fmt.Sscanf(val, "%d", &w); err != nil || w < 0 {
			return Mix{}, fmt.Errorf("loadgen: mix weight %q must be a non-negative integer", val)
		}
		switch name {
		case "cachehot":
			m.CacheHot = w
		case "cold", "coldsweep":
			m.ColdSweep = w
		case "follower":
			m.Follower = w
		case "disconnect", "disconnector":
			m.Disconnector = w
		default:
			return Mix{}, fmt.Errorf("loadgen: unknown mix class %q (want cachehot, cold, follower, disconnect)", name)
		}
	}
	if m.total() <= 0 {
		return Mix{}, fmt.Errorf("loadgen: mix has no positive weight")
	}
	return m, nil
}

// Options tune the fleet.
type Options struct {
	// BaseURL is the koalad under test (http://host:port).
	BaseURL string
	// Clients is the fleet size (goroutines; default 200).
	Clients int
	// Requests is how many operations each client performs (default 5).
	Requests int
	// Seed derives every per-client PRNG and the config fingerprints the
	// fleet submits. Two runs with the same seed issue the same request
	// schedule against the same fingerprints; a different seed is a
	// fully cold fleet.
	Seed uint64
	// Mix is the behavior composition (default DefaultMix).
	Mix Mix
	// HotConfigs is the size of the pre-warmed cache-hot pool
	// (default 4).
	HotConfigs int
	// Jobs and Runs size the submitted experiments (default 2 jobs,
	// 1 replication — the point of the fleet is server load, not
	// simulation depth).
	Jobs int
	Runs int
	// OpTimeout bounds one client operation end to end, including 429
	// retries (default 2 minutes).
	OpTimeout time.Duration
	// HTTPClient overrides the fleet's tuned shared client (tests).
	HTTPClient *http.Client
}

func (o Options) withDefaults() (Options, error) {
	if o.BaseURL == "" {
		return o, fmt.Errorf("loadgen: BaseURL is required")
	}
	o.BaseURL = strings.TrimRight(o.BaseURL, "/")
	if o.Clients == 0 {
		o.Clients = 200
	}
	if o.Clients < 1 {
		return o, fmt.Errorf("loadgen: Clients must be positive, got %d", o.Clients)
	}
	if o.Requests == 0 {
		o.Requests = 5
	}
	if o.Requests < 1 {
		return o, fmt.Errorf("loadgen: Requests must be positive, got %d", o.Requests)
	}
	if o.Mix == (Mix{}) {
		o.Mix = DefaultMix()
	}
	if o.Mix.total() <= 0 || o.Mix.CacheHot < 0 || o.Mix.ColdSweep < 0 || o.Mix.Follower < 0 || o.Mix.Disconnector < 0 {
		return o, fmt.Errorf("loadgen: mix weights must be non-negative with a positive total")
	}
	if o.HotConfigs == 0 {
		o.HotConfigs = 4
	}
	if o.HotConfigs < 1 {
		return o, fmt.Errorf("loadgen: HotConfigs must be positive, got %d", o.HotConfigs)
	}
	if o.Jobs == 0 {
		o.Jobs = 2
	}
	if o.Runs == 0 {
		o.Runs = 1
	}
	if o.Jobs < 1 || o.Runs < 1 {
		return o, fmt.Errorf("loadgen: Jobs and Runs must be positive")
	}
	if o.OpTimeout == 0 {
		o.OpTimeout = 2 * time.Minute
	}
	if o.HTTPClient == nil {
		o.HTTPClient = newFleetHTTPClient()
	}
	return o, nil
}

// newFleetHTTPClient returns a client tuned for thousands of concurrent
// short requests plus long-held NDJSON streams against one host: the
// default Transport caps idle conns per host at 2, which would make a
// 2000-client fleet re-dial on nearly every request.
func newFleetHTTPClient() *http.Client {
	return &http.Client{
		Transport: &http.Transport{
			DialContext: (&net.Dialer{
				Timeout:   10 * time.Second,
				KeepAlive: 30 * time.Second,
			}).DialContext,
			MaxIdleConns:        4096,
			MaxIdleConnsPerHost: 4096,
			IdleConnTimeout:     90 * time.Second,
		},
	}
}

// Config-seed derivation. Every fingerprint the fleet submits embeds
// the fleet seed, so re-running with a new seed is fully cold even
// against a long-lived daemon, and re-running with the same seed is
// intentionally cache-warm.
const (
	hotSeedSpan  = 0          // hot pool: fleetBase + [0, HotConfigs)
	waveSeedSpan = 1 << 28    // follower/disconnector rounds: fleetBase + span + round
	coldSeedSpan = 1 << 29    // cold sweeps: fleetBase + span + client*Requests + op
	fleetStride  = uint64(1) << 32
)

func (o Options) fleetBase() uint64 { return o.Seed * fleetStride }

func (o Options) hotSeed(idx int) uint64 { return o.fleetBase() + hotSeedSpan + uint64(idx) }

func (o Options) waveSeed(round int) uint64 { return o.fleetBase() + waveSeedSpan + uint64(round) }

func (o Options) coldSeed(clientID, op int) uint64 {
	return o.fleetBase() + coldSeedSpan + uint64(clientID)*uint64(o.Requests) + uint64(op)
}

// configJSON renders the wire-form ConfigSpec a client submits: an
// inline workload on a fixed two-cluster grid, no background load, so
// one run costs milliseconds and the fingerprint is a pure function of
// the derived seed.
func (o Options) configJSON(class Class, seed uint64) []byte {
	name := "koalaload-" + class.String()
	return fmt.Appendf(nil,
		`{"name":%q,"workload":{"name":%q,"jobs":%d,"inter_arrival":30,"malleable_fraction":1,"initial_size":2,"rigid_size":2},"grid":{"clusters":[{"name":"A","nodes":48},{"name":"B","nodes":32}]},"no_background":true,"runs":%d,"seed":%d}`,
		name, name, o.Jobs, o.Runs, seed)
}

// splitmix64 is the per-client seed derivation: a full-avalanche mix of
// the fleet seed and client index, so adjacent clients get uncorrelated
// PRNG streams.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
