package loadgen

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/stats"
	"repro/tools/benchjson/benchfmt"
)

// classAccum is one client's private measurement plane: latency
// streams on stats.Online+Sketch plus behavior counters. Clients never
// share an accumulator — the fleet merges them in client-index order
// after the join, so the aggregation itself is deterministic.
type classAccum struct {
	submit     *stats.Stream // POST round trip (ns)
	firstEvent *stats.Stream // POST start -> first NDJSON event (ns)
	terminal   *stats.Stream // POST start -> terminal summary/error (ns)

	ops         int64 // operations that reached the terminal event
	events      int64 // NDJSON events read (all streams, incl. partial)
	cached      int64 // submissions answered from the result cache
	coalesced   int64 // submissions coalesced onto an in-flight run
	throttled   int64 // 429 responses absorbed by backoff
	resubmits   int64 // re-POSTs after a retired run's stream 404ed
	disconnects int64 // deliberate mid-stream hangups
	errs        []string
}

func newClassAccum() *classAccum {
	return &classAccum{
		submit:     stats.NewStream(),
		firstEvent: stats.NewStream(),
		terminal:   stats.NewStream(),
	}
}

const maxErrorsKept = 32

func (a *classAccum) errorf(format string, args ...any) {
	if len(a.errs) < maxErrorsKept {
		a.errs = append(a.errs, fmt.Sprintf(format, args...))
	} else {
		a.errs[maxErrorsKept-1] = fmt.Sprintf("... and more (%s)", fmt.Sprintf(format, args...))
	}
}

func (a *classAccum) merge(b *classAccum) {
	a.submit.Merge(b.submit)
	a.firstEvent.Merge(b.firstEvent)
	a.terminal.Merge(b.terminal)
	a.ops += b.ops
	a.events += b.events
	a.cached += b.cached
	a.coalesced += b.coalesced
	a.throttled += b.throttled
	a.resubmits += b.resubmits
	a.disconnects += b.disconnects
	for _, e := range b.errs {
		if len(a.errs) < maxErrorsKept {
			a.errs = append(a.errs, e)
		}
	}
}

// Latency is one latency distribution in milliseconds.
type Latency struct {
	N    int
	Mean float64
	P50  float64
	P95  float64
	P99  float64
	Max  float64
}

func latencyOf(s *stats.Stream) Latency {
	if s.N() == 0 {
		return Latency{}
	}
	toMs := func(ns float64) float64 { return ns / 1e6 }
	return Latency{
		N:    s.N(),
		Mean: toMs(s.Online.Mean()),
		P50:  toMs(s.Sketch.Quantile(0.50)),
		P95:  toMs(s.Sketch.Quantile(0.95)),
		P99:  toMs(s.Sketch.Quantile(0.99)),
		Max:  toMs(s.Online.Max()),
	}
}

// ClassResult is the per-behavior-class slice of a fleet run.
type ClassResult struct {
	Class       Class
	Clients     int
	Ops         int64 // operations that reached the terminal event
	Events      int64
	Cached      int64
	Coalesced   int64
	Throttled   int64
	Resubmits   int64
	Disconnects int64
	Errors      []string

	Submit     Latency // POST round trip
	FirstEvent Latency // submit -> first event
	Terminal   Latency // submit -> terminal event
}

// ServerCounters is the slice of /metrics the fleet reads before and
// after a run; Delta(before, after) is what the run itself caused.
type ServerCounters struct {
	CacheHits      float64
	CacheCoalesced float64
	CacheMisses    float64
	Found          bool // false when /metrics was unreachable or unparseable
}

// Delta returns after-before, counter by counter.
func (after ServerCounters) Delta(before ServerCounters) ServerCounters {
	return ServerCounters{
		CacheHits:      after.CacheHits - before.CacheHits,
		CacheCoalesced: after.CacheCoalesced - before.CacheCoalesced,
		CacheMisses:    after.CacheMisses - before.CacheMisses,
		Found:          after.Found && before.Found,
	}
}

// Results is everything a fleet run measured.
type Results struct {
	Options  Options
	Duration time.Duration
	Classes  []ClassResult  // dense, indexed by Class, zero-client classes included
	Server   ServerCounters // /metrics delta attributable to this run
}

// TotalOps sums terminal-reaching operations across classes.
func (r Results) TotalOps() int64 {
	var n int64
	for _, c := range r.Classes {
		n += c.Ops
	}
	return n
}

// TotalEvents sums NDJSON events read across classes.
func (r Results) TotalEvents() int64 {
	var n int64
	for _, c := range r.Classes {
		n += c.Events
	}
	return n
}

// EventsPerSec is the fleet-wide NDJSON fanout rate.
func (r Results) EventsPerSec() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.TotalEvents()) / r.Duration.Seconds()
}

// Errors collects every class's unexpected client errors.
func (r Results) Errors() []string {
	var all []string
	for _, c := range r.Classes {
		all = append(all, c.Errors...)
	}
	return all
}

// scrapeCounters pulls the cache counters off /metrics. Best-effort:
// a missing or unparseable endpoint yields Found=false, never an error
// — the fleet's own measurements stand on their own.
func scrapeCounters(ctx context.Context, hc *http.Client, baseURL string) ServerCounters {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/metrics", nil)
	if err != nil {
		return ServerCounters{}
	}
	resp, err := hc.Do(req)
	if err != nil {
		return ServerCounters{}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return ServerCounters{}
	}
	var sc ServerCounters
	scn := bufio.NewScanner(resp.Body)
	scn.Buffer(make([]byte, 64*1024), 1<<20)
	for scn.Scan() {
		line := scn.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			continue
		}
		switch name {
		case "koalad_cache_hits_total":
			sc.CacheHits, sc.Found = f, true
		case "koalad_cache_coalesced_total":
			sc.CacheCoalesced, sc.Found = f, true
		case "koalad_cache_misses_total":
			sc.CacheMisses, sc.Found = f, true
		}
	}
	if scn.Err() != nil {
		return ServerCounters{}
	}
	return sc
}

// HumanReport renders the run for a terminal.
func (r Results) HumanReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "koalaload: %d clients x %d ops against %s (seed %d) in %s\n",
		r.Options.Clients, r.Options.Requests, r.Options.BaseURL, r.Options.Seed,
		r.Duration.Round(time.Millisecond))
	fmt.Fprintf(&b, "fleet: %d ops reached terminal, %d events read (%.0f events/sec)\n",
		r.TotalOps(), r.TotalEvents(), r.EventsPerSec())
	if r.Server.Found {
		fmt.Fprintf(&b, "server cache delta: %+.0f hits, %+.0f coalesced, %+.0f misses\n",
			r.Server.CacheHits, r.Server.CacheCoalesced, r.Server.CacheMisses)
	} else {
		b.WriteString("server cache delta: /metrics not scraped\n")
	}
	for _, c := range r.Classes {
		if c.Clients == 0 {
			continue
		}
		fmt.Fprintf(&b, "\n%-12s %d clients, %d ops, %d events, %d cached, %d coalesced, %d throttled, %d resubmits, %d disconnects\n",
			c.Class, c.Clients, c.Ops, c.Events, c.Cached, c.Coalesced, c.Throttled, c.Resubmits, c.Disconnects)
		writeLatency := func(label string, l Latency) {
			if l.N == 0 {
				return
			}
			fmt.Fprintf(&b, "  %-12s n=%-6d p50=%8.2fms  p95=%8.2fms  p99=%8.2fms  mean=%8.2fms  max=%8.2fms\n",
				label, l.N, l.P50, l.P95, l.P99, l.Mean, l.Max)
		}
		writeLatency("submit", c.Submit)
		writeLatency("first_event", c.FirstEvent)
		writeLatency("terminal", c.Terminal)
		if len(c.Errors) > 0 {
			fmt.Fprintf(&b, "  ERRORS (%d):\n", len(c.Errors))
			for _, e := range c.Errors {
				fmt.Fprintf(&b, "    %s\n", e)
			}
		}
	}
	return b.String()
}

// BenchFile renders the run in the BENCH_*.json schema so load numbers
// ride the same benchjson -compare gate as the microbenchmarks.
// Each class/phase pair becomes one "benchmark": ns/op is the p99 in
// nanoseconds (the gated headline), iterations is the sample count,
// and the full p50/p95/p99/mean distribution rides along as custom
// metrics in milliseconds.
func (r Results) BenchFile() benchfmt.File {
	f := benchfmt.New()
	put := func(name string, l Latency) {
		if l.N == 0 {
			return
		}
		f.Benchmarks[name] = benchfmt.Result{
			Package:    "repro/internal/loadgen",
			Iterations: int64(l.N),
			NsPerOp:    l.P99 * 1e6,
			Metrics: map[string]float64{
				"p50-ms":  l.P50,
				"p95-ms":  l.P95,
				"p99-ms":  l.P99,
				"mean-ms": l.Mean,
			},
		}
	}
	for _, c := range r.Classes {
		if c.Clients == 0 {
			continue
		}
		base := "Koalaload/" + c.Class.String()
		put(base+"/submit", c.Submit)
		put(base+"/first_event", c.FirstEvent)
		put(base+"/terminal", c.Terminal)
	}
	fleet := benchfmt.Result{
		Package:    "repro/internal/loadgen",
		Iterations: r.TotalOps(),
		Metrics: map[string]float64{
			"events/sec": r.EventsPerSec(),
			"errors":     float64(len(r.Errors())),
		},
	}
	if r.Server.Found {
		fleet.Metrics["cache-hits"] = r.Server.CacheHits
		fleet.Metrics["cache-coalesced"] = r.Server.CacheCoalesced
		fleet.Metrics["cache-misses"] = r.Server.CacheMisses
	}
	f.Benchmarks["Koalaload/fleet"] = fleet
	return f
}

// sortedClassErrors keeps error output deterministic for tests.
func sortedClassErrors(errs []string) []string {
	out := append([]string(nil), errs...)
	sort.Strings(out)
	return out
}
