package loadgen

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Run executes one fleet run: pre-warm the cache-hot pool, scrape
// /metrics, launch the clients, join, scrape again, and merge every
// client's private accumulators (in client-index order, so aggregation
// is deterministic) into Results.
//
// Run returns an error only for setup failures — bad options, an
// unreachable server, a failed warmup. Per-client errors during the
// run are data, not failures: they land in Results and the caller
// decides whether any are acceptable.
func Run(ctx context.Context, opts Options) (Results, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return Results{}, err
	}

	if err := warmup(ctx, opts); err != nil {
		return Results{}, fmt.Errorf("loadgen: warmup: %w", err)
	}

	before := scrapeCounters(ctx, opts.HTTPClient, opts.BaseURL)

	clients := make([]*client, opts.Clients)
	for i := range clients {
		clients[i] = newClient(i, opts)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for _, c := range clients {
		wg.Add(1)
		go func(c *client) {
			defer wg.Done()
			c.run(ctx)
		}(c)
	}
	wg.Wait()
	duration := time.Since(start)

	after := scrapeCounters(ctx, opts.HTTPClient, opts.BaseURL)

	res := Results{
		Options:  opts,
		Duration: duration,
		Classes:  make([]ClassResult, numClasses),
		Server:   after.Delta(before),
	}
	merged := make([]*classAccum, numClasses)
	for cl := range merged {
		merged[cl] = newClassAccum()
		res.Classes[cl].Class = Class(cl)
	}
	for _, c := range clients {
		res.Classes[c.class].Clients++
		merged[c.class].merge(c.acc)
	}
	for cl, acc := range merged {
		r := &res.Classes[cl]
		r.Ops = acc.ops
		r.Events = acc.events
		r.Cached = acc.cached
		r.Coalesced = acc.coalesced
		r.Throttled = acc.throttled
		r.Resubmits = acc.resubmits
		r.Disconnects = acc.disconnects
		r.Errors = sortedClassErrors(acc.errs)
		r.Submit = latencyOf(acc.submit)
		r.FirstEvent = latencyOf(acc.firstEvent)
		r.Terminal = latencyOf(acc.terminal)
	}
	return res, nil
}

// warmup submits every hot-pool config and waits for its terminal
// event, so cache-hot clients measure the hit path from their first
// operation instead of folding one cold simulation into the
// distribution. Serial on purpose: the pool is small and warmup is
// not measured. Skipped when the mix fields no cache-hot clients.
func warmup(ctx context.Context, opts Options) error {
	if opts.Mix.CacheHot == 0 {
		return nil
	}
	// A synthetic client outside the fleet's id range; its accumulator
	// is discarded.
	w := newClient(-1, opts)
	w.class = CacheHot
	for i := 0; i < opts.HotConfigs; i++ {
		wCtx, cancel := context.WithTimeout(ctx, opts.OpTimeout)
		sub, err := w.submit(wCtx, opts.configJSON(CacheHot, opts.hotSeed(i)))
		if err != nil {
			cancel()
			return fmt.Errorf("hot config %d: %w", i, err)
		}
		if _, _, err := w.stream(wCtx, sub.EventsURL, 0); err != nil {
			cancel()
			return fmt.Errorf("hot config %d (run %s): %w", i, sub.ID, err)
		}
		cancel()
	}
	return nil
}
