package loadgen

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/server"
	"repro/tools/benchjson/benchfmt"
)

func TestMixClassOfExactProportions(t *testing.T) {
	m := DefaultMix() // 5/1/3/1
	counts := map[Class]int{}
	for i := 0; i < 2000; i++ {
		counts[m.classOf(i)]++
	}
	want := map[Class]int{CacheHot: 1000, ColdSweep: 200, Follower: 600, Disconnector: 200}
	for cl, n := range want {
		if counts[cl] != n {
			t.Errorf("class %s: %d clients, want %d", cl, counts[cl], n)
		}
	}
}

func TestParseMix(t *testing.T) {
	m, err := ParseMix("cachehot=2,cold=1,follower=0,disconnect=1")
	if err != nil {
		t.Fatal(err)
	}
	if m != (Mix{CacheHot: 2, ColdSweep: 1, Follower: 0, Disconnector: 1}) {
		t.Fatalf("ParseMix = %+v", m)
	}
	for _, bad := range []string{"", "cachehot", "cachehot=x", "nope=1", "cachehot=0,cold=0"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}

func TestSeedDerivationDisjointAndDeterministic(t *testing.T) {
	o, err := Options{BaseURL: "http://x", Clients: 100, Requests: 5}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]string{}
	note := func(s uint64, kind string) {
		if prev, ok := seen[s]; ok && prev != kind {
			t.Fatalf("seed %d derived by both %s and %s", s, prev, kind)
		}
		seen[s] = kind
	}
	for i := 0; i < o.HotConfigs; i++ {
		note(o.hotSeed(i), "hot")
	}
	for r := 0; r < o.Requests; r++ {
		note(o.waveSeed(r), "wave")
	}
	for c := 0; c < o.Clients; c++ {
		for op := 0; op < o.Requests; op++ {
			note(o.coldSeed(c, op), "cold")
		}
	}
	// Cold seeds are unique per (client, op); total count checks that.
	if len(seen) != o.HotConfigs+o.Requests+o.Clients*o.Requests {
		t.Fatalf("seed collision: %d distinct seeds", len(seen))
	}
	// A different fleet seed shifts every derived seed.
	o2 := o
	o2.Seed = 7
	if o2.hotSeed(0) == o.hotSeed(0) || o2.coldSeed(3, 1) == o.coldSeed(3, 1) {
		t.Fatal("fleet seed does not separate derived config seeds")
	}
}

// TestFleetAgainstInProcessKoalad is the package's end-to-end check: a
// small mixed fleet against a real server.New handler, asserting zero
// unexpected client errors, samples in every class, a cache-hit delta
// from /metrics, and a BenchFile that round-trips through the
// benchfmt loader (i.e. is accepted by `benchjson -compare`).
func TestFleetAgainstInProcessKoalad(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet run in -short mode")
	}
	srv := server.New(server.Options{MaxConcurrent: 2, QueueDepth: 64})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := Run(ctx, Options{
		BaseURL:    ts.URL,
		Clients:    40,
		Requests:   3,
		Seed:       1,
		HotConfigs: 2,
		HTTPClient: ts.Client(),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	if errs := res.Errors(); len(errs) != 0 {
		t.Fatalf("fleet reported %d unexpected client errors, e.g.:\n%s", len(errs), errs[0])
	}
	if res.TotalOps() == 0 || res.TotalEvents() == 0 {
		t.Fatalf("fleet did no work: %d ops, %d events", res.TotalOps(), res.TotalEvents())
	}
	for _, cl := range []Class{CacheHot, ColdSweep, Follower} {
		c := res.Classes[cl]
		if c.Clients == 0 {
			t.Fatalf("%s: no clients assigned", cl)
		}
		if c.Terminal.N == 0 {
			t.Errorf("%s: no submit-to-terminal samples", cl)
		}
		if c.FirstEvent.N == 0 {
			t.Errorf("%s: no first-event samples", cl)
		}
		if c.Terminal.P99 < c.Terminal.P50 {
			t.Errorf("%s: p99 %.3fms < p50 %.3fms", cl, c.Terminal.P99, c.Terminal.P50)
		}
	}
	// Cache-hot clients re-POST a warmed pool: every one of their
	// submissions must be a cache hit.
	hot := res.Classes[CacheHot]
	if hot.Cached == 0 {
		t.Error("cachehot clients never hit the cache")
	}
	// Disconnectors must actually have hung up at least once (on a
	// replayed run the stream can end before the hangup depth, so not
	// every op disconnects — but across ops some must).
	if d := res.Classes[Disconnector]; d.Clients > 0 && d.Disconnects == 0 {
		t.Error("disconnector clients never disconnected")
	}
	if !res.Server.Found {
		t.Fatal("/metrics scrape failed")
	}
	if res.Server.CacheHits <= 0 {
		t.Errorf("server cache-hit delta = %.0f, want > 0", res.Server.CacheHits)
	}

	// The BenchFile must survive the same loader the -compare gate uses.
	f := res.BenchFile()
	path := filepath.Join(t.TempDir(), "BENCH_KOALALOAD.json")
	if err := f.Write(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := benchfmt.Load(path)
	if err != nil {
		t.Fatalf("BenchFile does not round-trip through benchfmt.Load: %v", err)
	}
	for _, name := range []string{
		"Koalaload/cachehot/first_event",
		"Koalaload/cachehot/terminal",
		"Koalaload/coldsweep/terminal",
		"Koalaload/follower/terminal",
		"Koalaload/fleet",
	} {
		if _, ok := loaded.Benchmarks[name]; !ok {
			t.Errorf("BenchFile missing %s", name)
		}
	}
	hotFE := loaded.Benchmarks["Koalaload/cachehot/first_event"]
	if hotFE.Iterations <= 1 {
		t.Errorf("cachehot first_event iterations = %d; -compare would skip its ns/op", hotFE.Iterations)
	}
	if hotFE.NsPerOp <= 0 {
		t.Errorf("cachehot first_event p99 = %v ns", hotFE.NsPerOp)
	}
	// Comparing a run against itself must pass the gate.
	if _, regs := benchfmt.Compare(loaded, loaded, 10); len(regs) != 0 {
		t.Fatalf("self-compare regressed: %+v", regs)
	}

	if os.Getenv("KOALALOAD_TEST_VERBOSE") != "" {
		t.Log("\n" + res.HumanReport())
	}
}

// TestFleetScheduleDeterminism pins reproducibility: two fleets with
// the same seed submit the same set of config fingerprints (observed
// via identical cache behavior on a shared server — the second fleet's
// cold sweeps all hit the results the first fleet populated), and a
// different seed is fully cold again.
func TestFleetScheduleDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet run in -short mode")
	}
	srv := server.New(server.Options{MaxConcurrent: 2, QueueDepth: 64})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	opts := Options{
		BaseURL: ts.URL, Clients: 10, Requests: 2, Seed: 42,
		HotConfigs: 2, HTTPClient: ts.Client(),
		// Retention large enough that nothing the first fleet ran has
		// been evicted when the second fleet re-submits it.
	}
	first, err := Run(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if errs := first.Errors(); len(errs) != 0 {
		t.Fatalf("first fleet errors: %v", errs)
	}
	second, err := Run(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if errs := second.Errors(); len(errs) != 0 {
		t.Fatalf("second fleet errors: %v", errs)
	}
	// Same seed: the second fleet's cold sweeps re-submit fingerprints
	// the first fleet already completed, so nothing misses.
	if second.Server.CacheMisses != 0 {
		t.Errorf("same-seed rerun caused %.0f cache misses, want 0", second.Server.CacheMisses)
	}
	cold := second.Classes[ColdSweep]
	if cold.Ops > 0 && cold.Cached != cold.Ops {
		t.Errorf("same-seed rerun: %d of %d cold ops cached", cold.Cached, cold.Ops)
	}

	// A different seed is cold again: its cold sweeps must miss.
	optsCold := opts
	optsCold.Seed = 43
	third, err := Run(ctx, optsCold)
	if err != nil {
		t.Fatal(err)
	}
	if third.Server.CacheMisses == 0 {
		t.Error("new-seed fleet caused no cache misses")
	}
}
