package dynaco

import (
	"testing"

	"repro/internal/app"
	"repro/internal/sim"
)

// fakeHandler records actions and completes them after fixed delays.
type fakeHandler struct {
	engine       *sim.Engine
	acquireDelay float64
	actions      []Action
	heldOverride func(n int) int // optional: deliver fewer than asked
}

func (h *fakeHandler) Acquire(n int, fw *Framework) {
	h.actions = append(h.actions, Action{OpAcquire, n})
	held := n
	if h.heldOverride != nil {
		held = h.heldOverride(n)
	}
	h.engine.After(h.acquireDelay, func() { fw.AcquireDone(held) })
}

func (h *fakeHandler) Recruit(n int, fw *Framework) {
	h.actions = append(h.actions, Action{OpRecruit, n})
	h.engine.After(1, fw.StepDone)
}

func (h *fakeHandler) Release(n int, fw *Framework) {
	h.actions = append(h.actions, Action{OpRelease, n})
	h.engine.After(2, fw.StepDone)
}

// fakeFrontend reports a fixed size and records results.
type fakeFrontend struct {
	size    int
	results []Result
}

func (f *fakeFrontend) Size() int               { return f.size }
func (f *fakeFrontend) AdaptationDone(r Result) { f.results = append(f.results, r) }

type fixedStrategy struct{ grow, shrink int }

func (s fixedStrategy) DecideGrow(current, offer int) int     { return min(s.grow, offer) }
func (s fixedStrategy) DecideShrink(current, request int) int { return min(s.shrink, request) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func setup(strategy Strategy) (*sim.Engine, *fakeHandler, *Framework, *fakeFrontend) {
	e := sim.New()
	h := &fakeHandler{engine: e, acquireDelay: 5}
	fr := &fakeFrontend{size: 4}
	f := New(e, strategy, h, fr)
	return e, h, f, fr
}

func TestGrowRunsAcquireThenRecruit(t *testing.T) {
	e, h, f, fr := setup(fixedStrategy{grow: 8, shrink: 8})
	f.Notify(Event{Kind: GrowRequest, Amount: 3})
	e.Run()
	if len(h.actions) != 2 || h.actions[0].Op != OpAcquire || h.actions[1].Op != OpRecruit {
		t.Fatalf("actions = %v", h.actions)
	}
	if h.actions[0].N != 3 || h.actions[1].N != 3 {
		t.Fatalf("action sizes = %v", h.actions)
	}
	if len(fr.results) != 1 || fr.results[0].Accepted != 3 {
		t.Fatalf("results = %v", fr.results)
	}
	if f.Adaptations() != 1 {
		t.Fatalf("adaptations = %d", f.Adaptations())
	}
}

func TestShrinkRunsRelease(t *testing.T) {
	e, h, _, _ := setup(fixedStrategy{grow: 8, shrink: 8})
	fr := &fakeFrontend{size: 10}
	fw := New(e, fixedStrategy{shrink: 8}, h, fr)
	fw.Notify(Event{Kind: ShrinkRequest, Amount: 4})
	e.Run()
	if len(h.actions) != 1 || h.actions[0].Op != OpRelease || h.actions[0].N != 4 {
		t.Fatalf("actions = %v", h.actions)
	}
	if len(fr.results) != 1 || fr.results[0].Accepted != 4 {
		t.Fatalf("results = %v", fr.results)
	}
}

func TestDeclinedEventReportsZero(t *testing.T) {
	e, h, f, fr := setup(fixedStrategy{grow: 0, shrink: 0})
	f.Notify(Event{Kind: GrowRequest, Amount: 5})
	e.Run()
	if len(h.actions) != 0 {
		t.Fatalf("declined grow ran actions: %v", h.actions)
	}
	if len(fr.results) != 1 || fr.results[0].Accepted != 0 {
		t.Fatalf("results = %v", fr.results)
	}
}

func TestAdaptationsSerialize(t *testing.T) {
	e, h, f, fr := setup(fixedStrategy{grow: 8, shrink: 8})
	f.Notify(Event{Kind: GrowRequest, Amount: 2})
	f.Notify(Event{Kind: GrowRequest, Amount: 1})
	if !f.Busy() {
		t.Fatal("framework should be busy")
	}
	if f.PendingEvents() != 1 {
		t.Fatalf("pending = %d", f.PendingEvents())
	}
	e.Run()
	// Both processed, in order, never interleaved: acquire,recruit,acquire,recruit.
	wantOps := []Op{OpAcquire, OpRecruit, OpAcquire, OpRecruit}
	if len(h.actions) != 4 {
		t.Fatalf("actions = %v", h.actions)
	}
	for i, a := range h.actions {
		if a.Op != wantOps[i] {
			t.Fatalf("actions = %v", h.actions)
		}
	}
	if len(fr.results) != 2 {
		t.Fatalf("results = %v", fr.results)
	}
	if f.Busy() || f.PendingEvents() != 0 {
		t.Fatal("framework should be idle at the end")
	}
}

func TestPartialAcquisitionShrinksPlan(t *testing.T) {
	e, h, _, _ := setup(fixedStrategy{})
	h.heldOverride = func(n int) int { return 1 } // environment yields just 1
	fr := &fakeFrontend{size: 2}
	fw := New(e, fixedStrategy{grow: 8}, h, fr)
	fw.Notify(Event{Kind: GrowRequest, Amount: 4})
	e.Run()
	if len(h.actions) != 2 || h.actions[1].Op != OpRecruit || h.actions[1].N != 1 {
		t.Fatalf("actions = %v", h.actions)
	}
	if len(fr.results) != 1 || fr.results[0].Accepted != 1 {
		t.Fatalf("results = %v", fr.results)
	}
}

func TestZeroAcquisitionAbortsPlan(t *testing.T) {
	e, h, _, _ := setup(fixedStrategy{})
	h.heldOverride = func(n int) int { return 0 }
	fr := &fakeFrontend{size: 2}
	fw := New(e, fixedStrategy{grow: 8}, h, fr)
	fw.Notify(Event{Kind: GrowRequest, Amount: 4})
	e.Run()
	if len(h.actions) != 1 {
		t.Fatalf("actions = %v (recruit should not run)", h.actions)
	}
	if len(fr.results) != 1 || fr.results[0].Accepted != 0 {
		t.Fatalf("results = %v", fr.results)
	}
	if fw.Busy() {
		t.Fatal("framework stuck busy")
	}
}

func TestProfileStrategyAdaptsFT(t *testing.T) {
	s := ProfileStrategy{Acceptor: app.FTProfile()}
	if got := s.DecideGrow(2, 5); got != 2 {
		t.Fatalf("DecideGrow = %d, want 2 (power-of-two rule)", got)
	}
	if got := s.DecideShrink(16, 3); got != 8 {
		t.Fatalf("DecideShrink = %d, want 8", got)
	}
}

func TestNilComponentPanics(t *testing.T) {
	e := sim.New()
	defer func() {
		if recover() == nil {
			t.Error("nil component did not panic")
		}
	}()
	New(e, nil, nil, nil)
}

func TestStringers(t *testing.T) {
	if GrowRequest.String() != "grow" || ShrinkRequest.String() != "shrink" || EventKind(9).String() == "" {
		t.Fatal("EventKind strings")
	}
	if OpAcquire.String() != "acquire" || OpRecruit.String() != "recruit" || OpRelease.String() != "release" || Op(9).String() == "" {
		t.Fatal("Op strings")
	}
}
