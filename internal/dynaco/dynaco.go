// Package dynaco reproduces the DYNACO framework for dynamic adaptability
// ([2], §IV-B): a control loop of four components — observe, decide, plan,
// execute — specialised per application. In this reproduction DYNACO runs
// inside the Malleable Runner on a per-application basis (§V-A): the
// runner's frontend is reflected as a *monitor* that turns the scheduler's
// grow/shrink messages into events; the *decide* component applies the
// application's strategy (e.g. FT's power-of-two rule); the *plan* component
// expands the decision into an action list; and the *execute* component —
// AFPAC for SPMD applications [26] — schedules the actions consistently with
// the running application, one adaptation at a time.
package dynaco

import (
	"fmt"

	"repro/internal/sim"
)

// EventKind classifies monitor events.
type EventKind int

const (
	// GrowRequest is a scheduler offer of additional processors (§II-C).
	GrowRequest EventKind = iota
	// ShrinkRequest is a (mandatory) scheduler reclaim of processors.
	ShrinkRequest
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case GrowRequest:
		return "grow"
	case ShrinkRequest:
		return "shrink"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one monitored environment change delivered to the framework.
type Event struct {
	Kind   EventKind
	Amount int // processors offered (grow) or requested back (shrink)
}

// Strategy is the application-specific decision procedure that developers
// provide when specialising DYNACO (§IV-B). Given the current size it
// answers how many of the offered/requested processors the application
// adopts.
type Strategy interface {
	// DecideGrow returns how many of the offered processors to accept.
	DecideGrow(current, offer int) int
	// DecideShrink returns how many processors to release for a request.
	DecideShrink(current, request int) int
}

// Op is one kind of adaptation action.
type Op int

const (
	// OpAcquire submits requests for new processors (GRAM stubs) and waits
	// until all of them are held.
	OpAcquire Op = iota
	// OpRecruit turns held stubs into application processes (fast, §V-A).
	OpRecruit
	// OpRelease waits for a safe point and hands processors back.
	OpRelease
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpAcquire:
		return "acquire"
	case OpRecruit:
		return "recruit"
	case OpRelease:
		return "release"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Action is one step of an adaptation plan.
type Action struct {
	Op Op
	N  int
}

// maxPlanActions bounds the in-place action buffer of the framework: the
// longest plan the plan component produces is a grow (acquire, recruit);
// a shrink is a single release.
const maxPlanActions = 2

// Handler executes individual actions on behalf of the framework. The
// Malleable Runner implements it against GRAM and the application process;
// tests implement it directly. Each method resumes the framework exactly
// once when the action completes — Acquire through fw.AcquireDone with how
// many processors were actually obtained (the environment may deliver
// fewer than asked), Recruit and Release through fw.StepDone. The framework
// passes itself instead of per-action callbacks so the §V-C hot path
// allocates no bound-method closures.
type Handler interface {
	Acquire(n int, fw *Framework)
	Recruit(n int, fw *Framework)
	Release(n int, fw *Framework)
}

// Frontend is the runner-side monitor the framework reports into: Size
// returns the application's current processor count, and AdaptationDone
// receives an acknowledgment for every processed event. It is an interface
// rather than a pair of funcs so that one frontend object serves every
// adaptation without per-framework closure allocations.
type Frontend interface {
	Size() int
	AdaptationDone(Result)
}

// Result reports a completed adaptation back to the monitor's frontend.
type Result struct {
	Event    Event
	Accepted int // processors actually adopted/released (0 = declined)
}

// Framework is one per-application DYNACO instance. Adaptations are
// serialised: while one executes, further events queue — the AFPAC
// consistency guarantee that an SPMD application adapts at one safe point at
// a time.
type Framework struct {
	engine   *sim.Engine
	strategy Strategy
	handler  Handler
	front    Frontend

	busy bool
	// pending is a head-indexed FIFO of queued events (re-slicing from the
	// front would force an append reallocation per Notify under churn);
	// pendingBuf is its inline backing for the common shallow queues.
	pending     []Event
	pendingHead int
	pendingBuf  [4]Event

	// Current adaptation, executed as a small state machine: the action
	// list lives in a fixed buffer and the handler resumes the plan by
	// calling AcquireDone/StepDone on the framework itself — the §V-C hot
	// path allocates neither plans nor per-action closures.
	curEv       Event
	curActions  [maxPlanActions]Action
	curLen      int
	curIdx      int
	curAccepted int

	adaptations uint64
}

// New assembles a framework over the given frontend (which reports the
// application's current processor count and receives adaptation results).
func New(engine *sim.Engine, strategy Strategy, handler Handler, front Frontend) *Framework {
	f := &Framework{}
	f.Init(engine, strategy, handler, front)
	return f
}

// Init initialises a zero Framework in place — the allocation-free form of
// New for owners that embed the framework by value.
func (f *Framework) Init(engine *sim.Engine, strategy Strategy, handler Handler, front Frontend) {
	if strategy == nil || handler == nil || front == nil {
		panic("dynaco: nil component")
	}
	f.engine = engine
	f.strategy = strategy
	f.handler = handler
	f.front = front
	f.pending = f.pendingBuf[:0]
}

// Adaptations returns how many adaptations have completed (grow or shrink,
// including declined ones).
func (f *Framework) Adaptations() uint64 { return f.adaptations }

// Busy reports whether an adaptation is currently executing.
func (f *Framework) Busy() bool { return f.busy }

// PendingEvents returns the number of queued, unprocessed events.
func (f *Framework) PendingEvents() int { return len(f.pending) - f.pendingHead }

// Notify is the observe component's entry point: the monitor delivers an
// event, and the control loop runs decide → plan → execute.
func (f *Framework) Notify(ev Event) {
	f.pending = append(f.pending, ev)
	f.drain()
}

func (f *Framework) drain() {
	if f.busy || f.pendingHead == len(f.pending) {
		return
	}
	ev := f.pending[f.pendingHead]
	f.pendingHead++
	if f.pendingHead == len(f.pending) {
		f.pending = f.pending[:0]
		f.pendingHead = 0
	}
	f.process(ev)
}

func (f *Framework) process(ev Event) {
	current := f.front.Size()
	var accepted int
	switch ev.Kind {
	case GrowRequest:
		accepted = f.strategy.DecideGrow(current, ev.Amount)
	case ShrinkRequest:
		accepted = f.strategy.DecideShrink(current, ev.Amount)
	default:
		panic(fmt.Sprintf("dynaco: unknown event kind %v", ev.Kind))
	}
	if accepted <= 0 {
		f.finish(ev, 0)
		return
	}
	f.curEv = ev
	f.curIdx = 0
	f.curAccepted = accepted
	if ev.Kind == GrowRequest {
		f.curActions[0] = Action{OpAcquire, accepted}
		f.curActions[1] = Action{OpRecruit, accepted}
		f.curLen = 2
	} else {
		f.curActions[0] = Action{OpRelease, accepted}
		f.curLen = 1
	}
	f.busy = true
	f.step()
}

// step runs the current action; each action's completion re-enters through
// AcquireDone/StepDone, so one adaptation executes as a closure-free state
// machine.
func (f *Framework) step() {
	if f.curIdx >= f.curLen {
		f.busy = false
		f.finish(f.curEv, f.curAccepted)
		f.drain()
		return
	}
	act := f.curActions[f.curIdx]
	switch act.Op {
	case OpAcquire:
		f.handler.Acquire(act.N, f)
	case OpRecruit:
		f.handler.Recruit(act.N, f)
	case OpRelease:
		f.handler.Release(act.N, f)
	default:
		panic(fmt.Sprintf("dynaco: unknown op %v", act.Op))
	}
}

// AcquireDone resumes the plan after the handler completed an acquisition,
// adapting the remainder to what the environment actually delivered.
func (f *Framework) AcquireDone(held int) {
	if held < f.curActions[f.curIdx].N {
		f.curAccepted = held
		if held == 0 {
			f.busy = false
			f.finish(f.curEv, 0)
			f.drain()
			return
		}
		f.curActions[f.curIdx+1].N = held
	}
	f.curIdx++
	f.step()
}

// StepDone resumes the plan after the handler completed a recruit or
// release.
func (f *Framework) StepDone() {
	f.curIdx++
	f.step()
}

func (f *Framework) finish(ev Event, accepted int) {
	f.adaptations++
	f.front.AdaptationDone(Result{Event: ev, Accepted: accepted})
}

// PreDecided is the strategy for frontends that already ran the decide step
// during the scheduler protocol exchange (the runner answers the scheduler's
// grow/shrink message with the accepted amount, then hands the pre-decided
// event to the framework for planning and execution).
type PreDecided struct{}

// DecideGrow implements Strategy by accepting the full (pre-decided) offer.
func (PreDecided) DecideGrow(current, offer int) int { return offer }

// DecideShrink implements Strategy by releasing the full (pre-decided)
// request.
func (PreDecided) DecideShrink(current, request int) int { return request }

// ProfileStrategy adapts any object exposing the AcceptGrow/AcceptShrink
// protocol (such as *app.Profile) into a Strategy.
type ProfileStrategy struct {
	Acceptor interface {
		AcceptGrow(current, offer int) int
		AcceptShrink(current, request int) int
	}
}

// DecideGrow implements Strategy.
func (s ProfileStrategy) DecideGrow(current, offer int) int {
	return s.Acceptor.AcceptGrow(current, offer)
}

// DecideShrink implements Strategy.
func (s ProfileStrategy) DecideShrink(current, request int) int {
	return s.Acceptor.AcceptShrink(current, request)
}
