package store

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func journalPath(s *Store) string { return filepath.Join(s.Dir(), "journal.ndjson") }

func TestJournalAppendReplay(t *testing.T) {
	s := mkStore(t, Options{Fsync: true})
	j := s.Journal()
	spec := json.RawMessage(`{"workload":{"preset":"Wm"},"runs":2}`)
	recs := []Record{
		{Op: OpSubmitted, ID: "exp-1", Hash: hashN(1), Name: "a", Spec: spec, TimeUnixNano: 10},
		{Op: OpStarted, ID: "exp-1", Hash: hashN(1), TimeUnixNano: 11},
		{Op: OpCompleted, ID: "exp-1", Hash: hashN(1), TimeUnixNano: 12},
		{Op: OpFailed, ID: "exp-2", Hash: hashN(2), Error: "boom", TimeUnixNano: 13},
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if j.Records() != len(recs) {
		t.Fatalf("Records = %d, want %d", j.Records(), len(recs))
	}
	got, err := j.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i, r := range got {
		if r.Schema != SchemaVersion {
			t.Fatalf("record %d schema = %d", i, r.Schema)
		}
		if r.Op != recs[i].Op || r.ID != recs[i].ID || r.Hash != recs[i].Hash || r.Error != recs[i].Error {
			t.Fatalf("record %d = %+v, want %+v", i, r, recs[i])
		}
	}
	if string(got[0].Spec) != string(spec) {
		t.Fatalf("spec round trip = %s", got[0].Spec)
	}
}

// TestJournalTruncatedTailRepaired simulates a crash mid-append: the
// file ends in a partial line. Open truncates it to the last complete
// record and appends continue cleanly after it.
func TestJournalTruncatedTailRepaired(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Journal().Append(Record{Op: OpSubmitted, ID: "exp-1", Hash: hashN(1)}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// The crash: half of the next record made it to disk.
	f, err := os.OpenFile(filepath.Join(dir, "journal.ndjson"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"schema":1,"op":"submi`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var logged bytes.Buffer
	log, err := obs.NewLogger(&logged, obs.LogText, slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{Log: log})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	j := s2.Journal()
	if j.Records() != 1 {
		t.Fatalf("Records after repair = %d, want 1", j.Records())
	}
	if !strings.Contains(logged.String(), "incomplete tail") {
		t.Fatalf("tail repair not logged: %v", logged.String())
	}
	// The file is valid NDJSON again: a fresh append lands on its own
	// line, not fused onto the truncated garbage.
	if err := j.Append(Record{Op: OpStarted, ID: "exp-1", Hash: hashN(1)}); err != nil {
		t.Fatal(err)
	}
	got, err := j.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Op != OpSubmitted || got[1].Op != OpStarted {
		t.Fatalf("replay after repair = %+v", got)
	}
}

// TestJournalCorruptAndForeignLinesSkipped: a scribbled middle line and
// a future-schema record are skipped and counted, the rest replays.
func TestJournalCorruptAndForeignLinesSkipped(t *testing.T) {
	dir := t.TempDir()
	lines := []string{
		`{"schema":1,"op":"submitted","id":"exp-1","hash":"` + hashN(1) + `","t":1}`,
		`XXXX garbage XXXX`,
		`{"schema":99,"op":"submitted","id":"exp-9","hash":"` + hashN(9) + `","t":2}`,
		``,
		`{"schema":1,"op":"completed","id":"exp-1","hash":"` + hashN(1) + `","t":3}`,
	}
	if err := os.WriteFile(filepath.Join(dir, "journal.ndjson"), []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got, err := s.Journal().Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Op != OpSubmitted || got[1].Op != OpCompleted {
		t.Fatalf("replay = %+v, want the 2 schema-1 records", got)
	}
	if st := s.Stats(); st.Skipped != 2 {
		t.Fatalf("skipped = %d, want 2 (garbage + future schema)", st.Skipped)
	}
}

func TestJournalCompact(t *testing.T) {
	s := mkStore(t, Options{})
	j := s.Journal()
	for i := 0; i < 10; i++ {
		if err := j.Append(Record{Op: OpSubmitted, ID: "exp-1", Hash: hashN(1)}); err != nil {
			t.Fatal(err)
		}
	}
	keep := []Record{{Op: OpSubmitted, ID: "exp-2", Hash: hashN(2), Spec: json.RawMessage(`{}`)}}
	if err := j.Compact(keep); err != nil {
		t.Fatal(err)
	}
	if j.Records() != 1 {
		t.Fatalf("Records after compact = %d, want 1", j.Records())
	}
	// Appends continue onto the compacted file.
	if err := j.Append(Record{Op: OpStarted, ID: "exp-2", Hash: hashN(2)}); err != nil {
		t.Fatal(err)
	}
	got, err := j.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != "exp-2" || got[1].Op != OpStarted {
		t.Fatalf("replay after compact = %+v", got)
	}
	// No temp debris next to the journal.
	des, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if strings.HasPrefix(de.Name(), ".journal-") {
			t.Fatalf("compact left temp file %s", de.Name())
		}
	}
}

func TestJournalAppendAfterClose(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.Journal().Append(Record{Op: OpSubmitted}); err == nil {
		t.Fatal("append on closed journal succeeded")
	}
}
