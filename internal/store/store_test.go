package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func mkStore(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// hashN returns a syntactically valid fingerprint (64 hex chars).
func hashN(i int) string { return fmt.Sprintf("%064x", i) }

func putN(t *testing.T, s *Store, i int) string {
	t.Helper()
	h := hashN(i)
	err := s.Put(Entry{
		Hash:    h,
		ID:      fmt.Sprintf("exp-%d", i),
		Name:    fmt.Sprintf("run-%d", i),
		Summary: json.RawMessage(fmt.Sprintf(`{"jobs":%d}`, i)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mkStore(t, Options{Fsync: true}) // exercise the fsync path too
	h := putN(t, s, 7)
	e := s.Get(h)
	if e == nil {
		t.Fatal("Get after Put = nil")
	}
	if e.Hash != h || e.ID != "exp-7" || e.Name != "run-7" || string(e.Summary) != `{"jobs":7}` {
		t.Fatalf("entry = %+v", e)
	}
	if e.Schema != SchemaVersion || e.SavedUnixNano == 0 {
		t.Fatalf("envelope not stamped: %+v", e)
	}
	if st := s.Stats(); st.Entries != 1 || st.Bytes <= 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGetMiss(t *testing.T) {
	s := mkStore(t, Options{})
	if e := s.Get(hashN(1)); e != nil {
		t.Fatalf("Get on empty store = %+v", e)
	}
	// Invalid hashes (wrong length, non-hex, path-shaped) are misses, and
	// Put refuses them outright.
	for _, h := range []string{"", "abc", "../../etc/passwd", hashN(1)[:63] + "Z"} {
		if e := s.Get(h); e != nil {
			t.Fatalf("Get(%q) = %+v", h, e)
		}
		if err := s.Put(Entry{Hash: h}); err == nil {
			t.Fatalf("Put(%q) accepted an invalid hash", h)
		}
	}
}

func TestPutOverwriteKeepsAccounting(t *testing.T) {
	s := mkStore(t, Options{})
	h := putN(t, s, 1)
	if err := s.Put(Entry{Hash: h, ID: "exp-9", Summary: json.RawMessage(`{"jobs":100000}`)}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Entries != 1 {
		t.Fatalf("entries after overwrite = %d, want 1", st.Entries)
	}
	if e := s.Get(h); e == nil || e.ID != "exp-9" {
		t.Fatalf("overwrite not visible: %+v", e)
	}
	// Accounting matches the bytes actually on disk.
	info, err := os.Stat(s.entryPath(h))
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Bytes != info.Size() {
		t.Fatalf("bytes = %d, on disk %d", st.Bytes, info.Size())
	}
}

// TestIncompatibleEntriesSkippedNotFatal pins the schema-header
// contract: a corrupt file, a future schema version, and a body whose
// hash disagrees with its filename all read as misses, never errors.
func TestIncompatibleEntriesSkippedNotFatal(t *testing.T) {
	s := mkStore(t, Options{})
	good := putN(t, s, 1)

	write := func(hash, body string) {
		t.Helper()
		if err := os.WriteFile(s.entryPath(hash), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(hashN(2), `{"schema":99,"hash":"`+hashN(2)+`","summary":{"jobs":1}}`)
	write(hashN(3), `not json at all`)
	write(hashN(4), `{"schema":1,"hash":"`+hashN(5)+`","summary":{"jobs":1}}`)
	write(hashN(6), `{"schema":1,"hash":"`+hashN(6)+`"}`) // no summary

	for _, h := range []string{hashN(2), hashN(3), hashN(4), hashN(6)} {
		if e := s.Get(h); e != nil {
			t.Fatalf("Get(%s) = %+v, want skipped", h[:8], e)
		}
	}
	entries, err := s.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Hash != good {
		t.Fatalf("Entries = %d, want only the good one", len(entries))
	}
	if st := s.Stats(); st.Skipped < 4 {
		t.Fatalf("skipped = %d, want >= 4", st.Skipped)
	}
}

func TestEntriesOldestFirst(t *testing.T) {
	s := mkStore(t, Options{})
	for i := 1; i <= 3; i++ {
		putN(t, s, i)
	}
	// Make mtimes unambiguous: entry 3 oldest, entry 1 newest.
	now := time.Now()
	for i, age := range map[int]time.Duration{3: 3 * time.Hour, 2: 2 * time.Hour, 1: time.Hour} {
		if err := os.Chtimes(s.entryPath(hashN(i)), now, now.Add(-age)); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := s.Entries()
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, e := range entries {
		got = append(got, e.ID)
	}
	if fmt.Sprint(got) != "[exp-3 exp-2 exp-1]" {
		t.Fatalf("order = %v", got)
	}
}

// TestNewestBounded: Newest reads only the most recent n entries and
// reports how many older ones it left on disk.
func TestNewestBounded(t *testing.T) {
	s := mkStore(t, Options{})
	now := time.Now()
	for i := 1; i <= 3; i++ { // entry 1 oldest ... entry 3 newest
		putN(t, s, i)
		if err := os.Chtimes(s.entryPath(hashN(i)), now, now.Add(-time.Duration(4-i)*time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	got, left, err := s.Newest(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || left != 1 || got[0].ID != "exp-2" || got[1].ID != "exp-3" {
		ids := make([]string, 0, len(got))
		for _, e := range got {
			ids = append(ids, e.ID)
		}
		t.Fatalf("Newest(2) = %v (left %d), want [exp-2 exp-3] left 1", ids, left)
	}
	if got, left, err := s.Newest(10); err != nil || len(got) != 3 || left != 0 {
		t.Fatalf("Newest(10) = %d entries, left %d, err %v", len(got), left, err)
	}
}

func TestGCMaxAge(t *testing.T) {
	s := mkStore(t, Options{})
	for i := 1; i <= 3; i++ {
		putN(t, s, i)
	}
	now := time.Now()
	for _, i := range []int{1, 2} {
		if err := os.Chtimes(s.entryPath(hashN(i)), now, now.Add(-2*time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.GC(0, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed != 2 || res.Entries != 1 {
		t.Fatalf("GC = %+v, want 2 removed / 1 left", res)
	}
	if s.Get(hashN(1)) != nil || s.Get(hashN(2)) != nil {
		t.Fatal("expired entries still readable")
	}
	if s.Get(hashN(3)) == nil {
		t.Fatal("fresh entry removed")
	}
	if st := s.Stats(); st.GCRemoved != 2 || st.Entries != 1 {
		t.Fatalf("stats after GC = %+v", st)
	}
}

func TestGCMaxBytesEvictsOldestFirst(t *testing.T) {
	s := mkStore(t, Options{})
	for i := 1; i <= 4; i++ {
		putN(t, s, i)
	}
	now := time.Now()
	for i := 1; i <= 4; i++ { // entry 1 oldest ... entry 4 newest
		if err := os.Chtimes(s.entryPath(hashN(i)), now, now.Add(-time.Duration(5-i)*time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	// Budget for roughly two entries.
	info, err := os.Stat(s.entryPath(hashN(4)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.GC(2*info.Size()+1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed != 2 {
		t.Fatalf("GC removed %d, want 2 (result %+v)", res.Removed, res)
	}
	if s.Get(hashN(1)) != nil || s.Get(hashN(2)) != nil {
		t.Fatal("oldest entries survived the size bound")
	}
	if s.Get(hashN(3)) == nil || s.Get(hashN(4)) == nil {
		t.Fatal("newest entries evicted")
	}
	if res.Bytes > 2*info.Size()+1 {
		t.Fatalf("bytes after GC = %d, over budget", res.Bytes)
	}
}

func TestGCZeroBoundsIsNoop(t *testing.T) {
	s := mkStore(t, Options{})
	putN(t, s, 1)
	res, err := s.GC(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Removed != 0 || res.Entries != 1 {
		t.Fatalf("unbounded GC = %+v", res)
	}
}

// TestConcurrentReadWhileGC hammers Get from several goroutines while
// GC sweeps everything away: a racing read must degrade to a miss or a
// fully valid entry, never a torn read or a panic (-race covers the
// accounting).
func TestConcurrentReadWhileGC(t *testing.T) {
	s := mkStore(t, Options{})
	const n = 64
	for i := 0; i < n; i++ {
		putN(t, s, i)
	}
	now := time.Now()
	for i := 0; i < n; i++ {
		if err := os.Chtimes(s.entryPath(hashN(i)), now, now.Add(-time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i = (i + 1) % n {
				select {
				case <-stop:
					return
				default:
				}
				if e := s.Get(hashN(i)); e != nil && string(e.Summary) != fmt.Sprintf(`{"jobs":%d}`, i) {
					panic(fmt.Sprintf("torn read for %s: %s", hashN(i)[:8], e.Summary))
				}
			}
		}()
	}
	if _, err := s.GC(0, time.Minute); err != nil {
		close(stop)
		wg.Wait()
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if st := s.Stats(); st.Entries != 0 || st.GCRemoved != n {
		t.Fatalf("stats after full GC = %+v", st)
	}
	for i := 0; i < n; i++ {
		if s.Get(hashN(i)) != nil {
			t.Fatalf("entry %d survived full GC", i)
		}
	}
}

// TestForeignFilesInvisible: only fingerprint-named files are store
// entries; anything else in the results directory is not counted,
// served, or garbage-collected (it is not ours to delete).
func TestForeignFilesInvisible(t *testing.T) {
	s := mkStore(t, Options{})
	putN(t, s, 1)
	foreign := filepath.Join(s.Dir(), "results", "notes.json")
	if err := os.WriteFile(foreign, []byte(`{"schema":1,"hash":"ab"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d, want foreign file uncounted", st.Entries)
	}
	entries, err := s.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Hash != hashN(1) {
		t.Fatalf("Entries = %+v", entries)
	}
	if _, err := s.GC(1, time.Nanosecond); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Fatal("GC deleted a file it does not own")
	}
}

// TestOpenSweepsTempDebris: temp files orphaned by a crash between
// CreateTemp and Rename are removed on the next Open, so they cannot
// leak disk outside the GC bounds.
func TestOpenSweepsTempDebris(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	putN(t, s, 1)
	s.Close()
	debris := []string{
		filepath.Join(dir, "results", ".tmp-12345"),
		filepath.Join(dir, ".journal-67890"),
	}
	for _, p := range debris {
		if err := os.WriteFile(p, []byte("half a write"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, p := range debris {
		if _, err := os.Stat(p); err == nil {
			t.Fatalf("debris %s survived Open", p)
		}
	}
	if s2.Get(hashN(1)) == nil {
		t.Fatal("real entry swept")
	}
}

// TestReopenRecountsAccounting pins that Open's scan restores the
// entry/byte accounting a previous process accumulated.
func TestReopenRecountsAccounting(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	putN(t, s, 1)
	putN(t, s, 2)
	want := s.Stats()
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := s2.Stats()
	if got.Entries != want.Entries || got.Bytes != want.Bytes {
		t.Fatalf("reopened stats = %+v, want %+v", got, want)
	}
}

// TestPutLeavesNoTempDebris pins the atomic-write protocol: after a
// successful Put only the final entry file exists.
func TestPutLeavesNoTempDebris(t *testing.T) {
	s := mkStore(t, Options{})
	putN(t, s, 1)
	des, err := os.ReadDir(filepath.Join(s.Dir(), "results"))
	if err != nil {
		t.Fatal(err)
	}
	if len(des) != 1 || des[0].Name() != hashN(1)+resultExt {
		names := make([]string, 0, len(des))
		for _, de := range des {
			names = append(names, de.Name())
		}
		t.Fatalf("results dir = %v", names)
	}
}
