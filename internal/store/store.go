// Package store is koalad's durable state: a content-addressed on-disk
// result store plus an append-only run journal, which together let the
// daemon survive restarts without losing completed sweeps or in-flight
// submissions.
//
// The result store holds one file per completed experiment, keyed by
// the config's canonical fingerprint (experiment.Fingerprint) — the
// same key as the in-memory result cache, so a disk entry IS the
// result and an identical re-submission after a restart never
// re-simulates. Writes are atomic (temp file + rename in the same
// directory, optional fsync), and every entry carries a schema version
// so an incompatible or corrupt file is skipped, never crashed on.
//
// The journal (journal.go) records run lifecycle transitions as NDJSON;
// replaying it at startup recovers runs that were in flight when the
// process died. Once a run's result is durably in the store its journal
// records are dead weight, which compaction truncates.
//
// Layout under the data directory:
//
//	results/<fingerprint>.json   one entry per completed experiment
//	journal.ndjson               append-only run journal
package store

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// SchemaVersion stamps every store entry and journal record. Bump it on
// any incompatible change to the entry or record shape: readers skip
// versions they do not understand, so old state degrades to a cache
// miss instead of a crash or a silently wrong result.
const SchemaVersion = 1

// resultExt is the store entry file suffix; anything else in the
// results directory (temp files mid-rename, stray editors) is ignored.
const resultExt = ".json"

// Options tune a store.
type Options struct {
	// Fsync forces entry files (and the directory on rename) and journal
	// appends to stable storage. Off, durability is bounded by the OS
	// page cache — state survives a process kill but not a power loss.
	Fsync bool
	// Log receives one structured record per skipped/repaired artifact
	// (optional; nil discards).
	Log *slog.Logger
	// Metrics, when non-nil, registers the store's latency histograms
	// (entry read/write, GC pause) on the shared registry.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Log == nil {
		o.Log = obs.NopLogger()
	}
	return o
}

// Entry is one stored result: the envelope around a completed
// experiment's summary JSON. The summary stays raw so the store does
// not depend on the experiment package's types — the server decodes it
// (strictly) and treats a failure as a miss.
type Entry struct {
	Schema int    `json:"schema"`
	Hash   string `json:"hash"`
	ID     string `json:"id"`
	Name   string `json:"name,omitempty"`
	// SavedUnixNano is the write time; GC's age bound reads the file
	// mtime, this field is informational.
	SavedUnixNano int64           `json:"saved_unix_nano"`
	Summary       json.RawMessage `json:"summary"`
}

// Store is the on-disk result store plus its journal.
type Store struct {
	dir     string
	results string
	opts    Options
	journal *Journal

	// Latency histograms, nil without Options.Metrics.
	readHist  *obs.Histogram
	writeHist *obs.Histogram
	gcHist    *obs.Histogram

	mu        sync.Mutex // guards writes, GC and the size accounting
	entries   int
	bytes     int64
	skipped   int64 // corrupt or incompatible entries seen (gauge-ish counter)
	gcEntries int64
	gcBytes   int64
}

// Open creates (if needed) and opens the store rooted at dir. The
// journal's incomplete tail, if the last process died mid-append, is
// repaired (truncated to the last complete line) so new appends stay
// well-formed.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	results := filepath.Join(dir, "results")
	if err := os.MkdirAll(results, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", results, err)
	}
	j, err := openJournal(filepath.Join(dir, "journal.ndjson"), opts)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, results: results, opts: opts, journal: j}
	if m := opts.Metrics; m != nil {
		b := obs.DefaultLatencyBuckets()
		s.readHist = m.Histogram("koalad_store_read_seconds", "Store entry read+decode latency.", b)
		s.writeHist = m.Histogram("koalad_store_write_seconds", "Store entry marshal+write+rename latency.", b)
		s.gcHist = m.Histogram("koalad_store_gc_pause_seconds", "Store GC sweep duration (the store lock is held throughout).", b)
	}
	// A crash between CreateTemp and Rename (Put or Compact) orphans a
	// temp file invisible to GC and the size accounting; sweep the
	// debris of previous lives before counting. The directory is owned
	// by one daemon at a time, so nothing live matches these prefixes.
	sweepTemp(results, ".tmp-")
	sweepTemp(dir, ".journal-")
	// Size accounting starts from a scan; Put and GC keep it current.
	infos, err := s.scan()
	if err != nil {
		j.Close()
		return nil, err
	}
	for _, fi := range infos {
		s.entries++
		s.bytes += fi.size
	}
	return s, nil
}

// sweepTemp removes leftover temp files (best-effort).
func sweepTemp(dir, prefix string) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, de := range des {
		if !de.IsDir() && strings.HasPrefix(de.Name(), prefix) {
			_ = os.Remove(filepath.Join(dir, de.Name()))
		}
	}
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Journal returns the store's run journal.
func (s *Store) Journal() *Journal { return s.journal }

// Close releases the journal's file handle. Entry reads and writes are
// per-call and need no teardown.
func (s *Store) Close() error { return s.journal.Close() }

func (s *Store) entryPath(hash string) string {
	return filepath.Join(s.results, hash+resultExt)
}

// validHash keeps fingerprints (and therefore file names) to the hex
// form experiment.Fingerprint emits — nothing path-traversal-shaped
// gets near a filename.
func validHash(hash string) bool {
	if len(hash) != 64 {
		return false
	}
	for i := 0; i < len(hash); i++ {
		c := hash[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Put durably stores an entry under its hash: marshal to a temp file in
// the results directory, optionally fsync, rename over the final name.
// A crash at any point leaves either the old entry or the new one,
// never a torn file.
func (s *Store) Put(e Entry) error {
	if !validHash(e.Hash) {
		return fmt.Errorf("store: invalid hash %q", e.Hash)
	}
	if s.writeHist != nil {
		start := time.Now()
		defer func() { s.writeHist.Observe(time.Since(start).Seconds()) }()
	}
	e.Schema = SchemaVersion
	if e.SavedUnixNano == 0 {
		e.SavedUnixNano = time.Now().UnixNano()
	}
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("store: marshaling entry %s: %w", e.Hash, err)
	}
	b = append(b, '\n')

	s.mu.Lock()
	defer s.mu.Unlock()
	path := s.entryPath(e.Hash)
	var oldSize int64
	existed := false
	if info, err := os.Stat(path); err == nil {
		oldSize, existed = info.Size(), true
	}
	tmp, err := os.CreateTemp(s.results, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: temp file: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return fmt.Errorf("store: writing %s: %w", e.Hash, err)
	}
	if s.opts.Fsync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return fmt.Errorf("store: fsync %s: %w", e.Hash, err)
		}
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: closing temp for %s: %w", e.Hash, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: publishing %s: %w", e.Hash, err)
	}
	if s.opts.Fsync {
		syncDir(s.results)
	}
	if existed {
		s.bytes += int64(len(b)) - oldSize
	} else {
		s.entries++
		s.bytes += int64(len(b))
	}
	return nil
}

// syncDir fsyncs a directory so a rename is durable; best-effort (some
// filesystems refuse directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

// Get returns the entry stored under hash, or nil when there is none —
// including when the file exists but is corrupt or carries an unknown
// schema version (skipped and counted, never an error: on-disk state
// must not be able to take the daemon down).
func (s *Store) Get(hash string) *Entry {
	if !validHash(hash) {
		return nil
	}
	if s.readHist != nil {
		start := time.Now()
		defer func() { s.readHist.Observe(time.Since(start).Seconds()) }()
	}
	b, err := os.ReadFile(s.entryPath(hash))
	if err != nil {
		return nil // miss (or racing GC removal — same thing)
	}
	return s.decodeEntry(hash, b)
}

func (s *Store) decodeEntry(hash string, b []byte) *Entry {
	var e Entry
	if err := json.Unmarshal(b, &e); err != nil {
		s.skip("skipping corrupt entry", "hash", hash, "err", err)
		return nil
	}
	if e.Schema != SchemaVersion {
		s.skip("skipping entry with unknown schema", "hash", hash, "schema", e.Schema, "want", SchemaVersion)
		return nil
	}
	if e.Hash != hash {
		s.skip("skipping entry whose body claims another hash", "hash", hash, "claimed", e.Hash)
		return nil
	}
	if len(e.Summary) == 0 {
		s.skip("skipping entry with empty summary", "hash", hash)
		return nil
	}
	return &e
}

func (s *Store) skip(msg string, attrs ...any) {
	s.mu.Lock()
	s.skipped++
	s.mu.Unlock()
	s.opts.Log.Warn("store: "+msg, attrs...)
}

// Entries scans every stored result, skipping unreadable, corrupt and
// incompatible files. Order is by file mtime, oldest first (the order
// GC would evict in), with the hash as tie-break for determinism.
func (s *Store) Entries() ([]*Entry, error) {
	infos, err := s.scan()
	if err != nil {
		return nil, err
	}
	return s.readEntries(infos), nil
}

// Newest reads only the n most recently written results (oldest first
// among them) plus how many older entries were left unread — what a
// recovery bounded by a retention limit wants, without O(store size)
// reads and decodes.
func (s *Store) Newest(n int) ([]*Entry, int, error) {
	infos, err := s.scan()
	if err != nil {
		return nil, 0, err
	}
	left := 0
	if skip := len(infos) - n; n >= 0 && skip > 0 {
		infos = infos[skip:]
		left = skip
	}
	return s.readEntries(infos), left, nil
}

func (s *Store) readEntries(infos []fileInfo) []*Entry {
	out := make([]*Entry, 0, len(infos))
	for _, fi := range infos {
		b, err := os.ReadFile(filepath.Join(s.results, fi.name))
		if err != nil {
			continue // raced a concurrent GC
		}
		if e := s.decodeEntry(strings.TrimSuffix(fi.name, resultExt), b); e != nil {
			out = append(out, e)
		}
	}
	return out
}

type fileInfo struct {
	name  string
	size  int64
	mtime time.Time
}

func (s *Store) scan() ([]fileInfo, error) {
	des, err := os.ReadDir(s.results)
	if err != nil {
		return nil, fmt.Errorf("store: scanning %s: %w", s.results, err)
	}
	infos := make([]fileInfo, 0, len(des))
	for _, de := range des {
		// Only files named by a valid fingerprint are store entries;
		// anything else (a stray editor file, a hand-dropped artifact) is
		// not ours to count, serve or GC.
		if de.IsDir() || !strings.HasSuffix(de.Name(), resultExt) ||
			!validHash(strings.TrimSuffix(de.Name(), resultExt)) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		infos = append(infos, fileInfo{name: de.Name(), size: info.Size(), mtime: info.ModTime()})
	}
	sort.Slice(infos, func(i, j int) bool {
		if !infos[i].mtime.Equal(infos[j].mtime) {
			return infos[i].mtime.Before(infos[j].mtime)
		}
		return infos[i].name < infos[j].name
	})
	return infos, nil
}

// GCResult reports one garbage-collection sweep.
type GCResult struct {
	Removed      int   // entries deleted this sweep
	RemovedBytes int64 // bytes reclaimed this sweep
	Entries      int   // entries remaining
	Bytes        int64 // bytes remaining
}

// GC bounds the store by age and size: entries older than maxAge are
// removed, then the oldest entries go until the total is under
// maxBytes. Zero disables the respective bound. Removal is safe
// against concurrent readers — a Get racing a removal degrades to a
// miss (the config re-simulates on its next POST).
func (s *Store) GC(maxBytes int64, maxAge time.Duration) (GCResult, error) {
	if s.gcHist != nil {
		start := time.Now()
		defer func() { s.gcHist.Observe(time.Since(start).Seconds()) }()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	infos, err := s.scan()
	if err != nil {
		return GCResult{}, err
	}
	var total int64
	for _, fi := range infos {
		total += fi.size
	}
	now := time.Now()
	var res GCResult
	remove := func(fi fileInfo) bool {
		if err := os.Remove(filepath.Join(s.results, fi.name)); err != nil {
			return false
		}
		res.Removed++
		res.RemovedBytes += fi.size
		total -= fi.size
		return true
	}
	live := make([]fileInfo, 0, len(infos))
	for _, fi := range infos { // oldest first, so the size pass evicts oldest
		expired := maxAge > 0 && now.Sub(fi.mtime) > maxAge
		if expired && remove(fi) {
			continue
		}
		live = append(live, fi)
	}
	if maxBytes > 0 {
		kept := live[:0]
		for i, fi := range live {
			if total <= maxBytes {
				kept = append(kept, live[i:]...)
				break
			}
			if !remove(fi) {
				kept = append(kept, fi)
			}
		}
		live = kept
	}
	s.entries, s.bytes = len(live), 0
	for _, fi := range live {
		s.bytes += fi.size
	}
	s.gcEntries += int64(res.Removed)
	s.gcBytes += res.RemovedBytes
	res.Entries, res.Bytes = s.entries, s.bytes
	return res, nil
}

// Stats is a point-in-time view of the store for /metrics.
type Stats struct {
	Entries   int
	Bytes     int64
	Skipped   int64 // corrupt/incompatible artifacts skipped since Open
	GCRemoved int64 // entries removed by GC since Open
	GCBytes   int64 // bytes reclaimed by GC since Open
}

// Stats returns the current counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Entries:   s.entries,
		Bytes:     s.bytes,
		Skipped:   s.skipped + s.journal.skippedLines(),
		GCRemoved: s.gcEntries,
		GCBytes:   s.gcBytes,
	}
}
