package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Op is a run lifecycle transition recorded in the journal.
type Op string

const (
	// OpSubmitted: a run was admitted; the record carries the original
	// ConfigSpec JSON so recovery can re-create and re-enqueue it.
	OpSubmitted Op = "submitted"
	// OpStarted: the run took a concurrency slot and began simulating.
	OpStarted Op = "started"
	// OpCompleted: the run's summary is durably in the result store
	// (appended strictly after the store write, so a crash between the
	// two leaves the run in-flight and recovery re-runs it).
	OpCompleted Op = "completed"
	// OpFailed: the run errored or was aborted.
	OpFailed Op = "failed"
)

// Record is one journal line.
type Record struct {
	Schema int    `json:"schema"`
	Op     Op     `json:"op"`
	ID     string `json:"id"`
	Hash   string `json:"hash"`
	Name   string `json:"name,omitempty"`
	// Spec is the submitted ConfigSpec JSON (OpSubmitted only).
	Spec json.RawMessage `json:"spec,omitempty"`
	// Error is the failure message (OpFailed only).
	Error        string `json:"error,omitempty"`
	TimeUnixNano int64  `json:"t"`
}

// Journal is the append-only NDJSON run log. Appends are serialized;
// replay and compaction share the same lock, so a compact rewrite
// never interleaves with an append.
type Journal struct {
	path    string
	opts    Options
	mu      sync.Mutex
	f       *os.File
	lines   int   // complete records currently in the file
	skipped int64 // undecodable lines tolerated during replay
}

// openJournal opens (creating if absent) the journal at path. If the
// previous process died mid-append the file ends in a partial line;
// that tail is truncated away so the journal stays valid NDJSON and
// new appends do not fuse onto garbage. The records it held were never
// durable, which is exactly the contract of an append-only log.
func openJournal(path string, opts Options) (*Journal, error) {
	j := &Journal{path: path, opts: opts}
	b, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		// fresh journal
	case err != nil:
		return nil, fmt.Errorf("store: reading journal: %w", err)
	case len(b) > 0 && b[len(b)-1] != '\n':
		cut := bytes.LastIndexByte(b, '\n') + 1
		if err := os.Truncate(path, int64(cut)); err != nil {
			return nil, fmt.Errorf("store: repairing journal tail: %w", err)
		}
		opts.Log.Warn("store: journal had an incomplete tail, truncated", "bytes", len(b)-cut)
		b = b[:cut]
	}
	j.lines = bytes.Count(b, []byte{'\n'})
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening journal: %w", err)
	}
	j.f = f
	return j, nil
}

// Close releases the journal's file handle.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// Append writes one record. The write is a single buffered line ending
// in '\n'; with Fsync it is forced to stable storage before returning.
func (j *Journal) Append(rec Record) error {
	rec.Schema = SchemaVersion
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: marshaling journal record: %w", err)
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("store: journal is closed")
	}
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("store: appending journal record: %w", err)
	}
	if j.opts.Fsync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("store: fsync journal: %w", err)
		}
	}
	j.lines++
	return nil
}

// Records returns the number of complete records currently in the
// journal file (replayable lines, including ones an eventual replay
// would skip as undecodable).
func (j *Journal) Records() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lines
}

func (j *Journal) skippedLines() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.skipped
}

// Replay reads every decodable record in append order. Undecodable
// lines and records with an unknown schema version are skipped and
// counted, never fatal: a journal written by a newer or corrupted
// koalad must not prevent this one from starting. A trailing partial
// line (crash mid-append after this journal was opened is impossible,
// but another writer's could exist) is ignored the same way.
func (j *Journal) Replay() ([]Record, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	b, err := os.ReadFile(j.path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: replaying journal: %w", err)
	}
	var out []Record
	for len(b) > 0 {
		nl := bytes.IndexByte(b, '\n')
		if nl < 0 {
			j.skipped++
			j.opts.Log.Warn("store: journal replay skipping partial tail", "bytes", len(b))
			break
		}
		line := b[:nl]
		b = b[nl+1:]
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			j.skipped++
			j.opts.Log.Warn("store: journal replay skipping undecodable line", "err", err)
			continue
		}
		if rec.Schema != SchemaVersion {
			j.skipped++
			j.opts.Log.Warn("store: journal replay skipping record with unknown schema", "schema", rec.Schema, "want", SchemaVersion)
			continue
		}
		out = append(out, rec)
	}
	return out, nil
}

// Compact atomically rewrites the journal to exactly keep (typically
// the submitted records of still-in-flight runs): temp file + rename,
// then the append handle is reopened on the new file. Records of runs
// whose results are durably in the store carry no recovery value —
// this is how the journal is truncated instead of growing forever.
func (j *Journal) Compact(keep []Record) error {
	var buf bytes.Buffer
	for _, rec := range keep {
		rec.Schema = SchemaVersion
		b, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("store: marshaling compacted record: %w", err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("store: journal is closed")
	}
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, ".journal-*")
	if err != nil {
		return fmt.Errorf("store: journal compact temp: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return fmt.Errorf("store: writing compacted journal: %w", err)
	}
	if j.opts.Fsync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return fmt.Errorf("store: fsync compacted journal: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: closing compacted journal: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return fmt.Errorf("store: publishing compacted journal: %w", err)
	}
	if j.opts.Fsync {
		syncDir(dir)
	}
	old := j.f
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// The rename landed but we lost the append handle; keep the old
		// one pointing at the unlinked file rather than wedging appends
		// entirely — the next process replays the compacted file.
		return fmt.Errorf("store: reopening compacted journal: %w", err)
	}
	old.Close()
	j.f = f
	j.lines = len(keep)
	return nil
}
