package runner

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/gram"
	"repro/internal/sim"
)

// RigidRunner runs a rigid (or moldable, once its size is fixed) job: one
// GRAM job of the full size, executed at a constant processor count. It
// corresponds to KOALA's ordinary runners (PRunner/CRunner in Fig. 1), which
// need no malleability machinery.
type RigidRunner struct {
	engine  *sim.Engine
	svc     *gram.Service
	profile *app.Profile
	size    int
	cb      Callbacks

	job  *gram.Job
	exec *app.Execution

	started  bool
	running  bool
	finished bool
}

// NewRigidRunner builds a runner executing profile at exactly size
// processors. Moldable profiles may pick any size in their range; rigid
// profiles must use their fixed size.
func NewRigidRunner(engine *sim.Engine, svc *gram.Service, profile *app.Profile, size int, cb Callbacks) (*RigidRunner, error) {
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	if profile.Class == app.Malleable {
		return nil, fmt.Errorf("runner: RigidRunner cannot run malleable profile %s", profile.Name)
	}
	if size < profile.Min || size > profile.Max {
		return nil, fmt.Errorf("runner: size %d outside [%d,%d] for %s", size, profile.Min, profile.Max, profile.Name)
	}
	return &RigidRunner{engine: engine, svc: svc, profile: profile, size: size, cb: cb}, nil
}

// Site returns the execution site name.
func (r *RigidRunner) Site() string { return r.svc.SiteName() }

// Nodes implements Runner.
func (r *RigidRunner) Nodes() int {
	if r.job != nil && r.job.State() == gram.Active {
		return r.size
	}
	return 0
}

// Running implements Runner.
func (r *RigidRunner) Running() bool { return r.running }

// Finished implements Runner.
func (r *RigidRunner) Finished() bool { return r.finished }

// Execution exposes the application execution (nil before start).
func (r *RigidRunner) Execution() *app.Execution { return r.exec }

// Start implements Runner.
func (r *RigidRunner) Start() error {
	if r.started {
		return fmt.Errorf("runner: rigid %s started twice", r.profile.Name)
	}
	r.started = true
	j, err := r.svc.Submit(r.size, func(*gram.Job) {
		r.running = true
		// Rigid execution needs a profile whose [Min,Max] admits r.size;
		// pin it so the executor accepts the constant size.
		exec := app.NewExecution(r.engine, &app.Profile{
			Name:  r.profile.Name,
			Class: r.profile.Class,
			Model: r.profile.Model,
			Min:   r.size,
			Max:   r.size,
		}, r.size, r.onAppFinished)
		r.exec = exec
		r.cb.notifyStarted()
	})
	if err != nil {
		return err
	}
	r.job = j
	return nil
}

func (r *RigidRunner) onAppFinished() {
	r.running = false
	r.finished = true
	r.svc.Release(r.job)
	r.cb.notifyFinished()
}
