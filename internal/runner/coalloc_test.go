package runner

import (
	"math"
	"testing"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/gram"
	"repro/internal/lrm"
	"repro/internal/sim"
)

func coHarness(nodesPerSite ...int) (*sim.Engine, []*cluster.Cluster, []*gram.Service) {
	e := sim.New()
	var clusters []*cluster.Cluster
	var svcs []*gram.Service
	for i, n := range nodesPerSite {
		c := cluster.New(string(rune('A'+i)), n)
		clusters = append(clusters, c)
		svcs = append(svcs, gram.New(e, lrm.New(e, c), gram.Config{SubmitLatency: 2, ReleaseLatency: 0.5}))
	}
	return e, clusters, svcs
}

func TestCoRunnerSpansComponents(t *testing.T) {
	e, clusters, svcs := coHarness(16, 16)
	prof := app.RigidProfile("co", app.GadgetModel(), 16)
	var startAt, finishAt float64
	r, err := NewCoRunner(e, prof, []CoComponent{
		{Svc: svcs[0], Size: 8},
		{Svc: svcs[1], Size: 8},
	}, Callbacks{
		OnStarted:  func() { startAt = e.Now() },
		OnFinished: func() { finishAt = e.Now() },
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalSize() != 16 {
		t.Fatalf("total = %d", r.TotalSize())
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	e.RunUntil(10)
	if !r.Running() || r.Nodes() != 16 {
		t.Fatalf("running=%v nodes=%d", r.Running(), r.Nodes())
	}
	if clusters[0].Used() != 8 || clusters[1].Used() != 8 {
		t.Fatal("components not spread over both clusters")
	}
	e.Run()
	// Execution runs at the *total* size: T(16)=280 for GADGET.
	if startAt != 2 || math.Abs(finishAt-(2+280)) > 1e-6 {
		t.Fatalf("start=%g finish=%g", startAt, finishAt)
	}
	if clusters[0].Used() != 0 || clusters[1].Used() != 0 {
		t.Fatal("nodes not released")
	}
	if !r.Finished() {
		t.Fatal("not finished")
	}
}

func TestCoRunnerWaitsForAllComponents(t *testing.T) {
	// The second site's component queues behind a blocker: execution must
	// not begin until every component is active.
	e, clusters, svcs := coHarness(16, 8)
	blocker, _ := svcs[1].Submit(8, nil)
	e.RunUntil(5)
	prof := app.RigidProfile("co", app.FTModel(), 12)
	started := false
	r, _ := NewCoRunner(e, prof, []CoComponent{
		{Svc: svcs[0], Size: 4},
		{Svc: svcs[1], Size: 8},
	}, Callbacks{OnStarted: func() { started = true }})
	r.Start()
	e.RunUntil(50)
	if started {
		t.Fatal("execution began before all components were active")
	}
	svcs[1].Release(blocker)
	e.RunUntil(100)
	if !started {
		t.Fatal("execution did not begin after the blocker left")
	}
	_ = clusters
}

func TestCoRunnerValidation(t *testing.T) {
	e, _, svcs := coHarness(8)
	if _, err := NewCoRunner(e, app.GadgetProfile(), []CoComponent{{Svc: svcs[0], Size: 2}}, Callbacks{}); err == nil {
		t.Fatal("malleable profile should be rejected")
	}
	prof := app.RigidProfile("r", app.FTModel(), 4)
	if _, err := NewCoRunner(e, prof, nil, Callbacks{}); err == nil {
		t.Fatal("empty components should be rejected")
	}
	if _, err := NewCoRunner(e, prof, []CoComponent{{Svc: nil, Size: 2}}, Callbacks{}); err == nil {
		t.Fatal("nil service should be rejected")
	}
	if _, err := NewCoRunner(e, prof, []CoComponent{{Svc: svcs[0], Size: 0}}, Callbacks{}); err == nil {
		t.Fatal("zero size should be rejected")
	}
	r, _ := NewCoRunner(e, prof, []CoComponent{{Svc: svcs[0], Size: 4}}, Callbacks{})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err == nil {
		t.Fatal("double start should fail")
	}
}
