package runner

import (
	"math"
	"testing"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/gram"
	"repro/internal/lrm"
	"repro/internal/sim"
)

type harness struct {
	engine *sim.Engine
	clus   *cluster.Cluster
	svc    *gram.Service
}

func newHarness(nodes int) *harness {
	e := sim.New()
	c := cluster.New("site", nodes)
	return &harness{engine: e, clus: c, svc: gram.New(e, lrm.New(e, c), gram.Config{SubmitLatency: 5, ReleaseLatency: 0.5})}
}

func zeroCosts() MRunnerConfig {
	return MRunnerConfig{Costs: app.ReconfigCosts{}, AcquireTimeout: 0}
}

func TestMRunnerLifecycle(t *testing.T) {
	h := newHarness(48)
	started, finished := false, false
	var startAt, finishAt float64
	r, err := NewMRunner(h.engine, h.svc, app.GadgetProfile(), 2, zeroCosts(), Callbacks{
		OnStarted:  func() { started = true; startAt = h.engine.Now() },
		OnFinished: func() { finished = true; finishAt = h.engine.Now() },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	h.engine.Run()
	if !started || !finished {
		t.Fatalf("started=%v finished=%v", started, finished)
	}
	// Submission latency 5, then T(2)=600.
	if startAt != 5 || math.Abs(finishAt-605) > 1e-6 {
		t.Fatalf("startAt=%g finishAt=%g", startAt, finishAt)
	}
	// Nodes drain after GRAM release latency.
	if h.clus.Used() != 0 {
		t.Fatalf("used=%d at the end", h.clus.Used())
	}
	if !r.Finished() || r.Running() || r.Nodes() != 0 {
		t.Fatalf("final state: finished=%v running=%v nodes=%d", r.Finished(), r.Running(), r.Nodes())
	}
}

func TestMRunnerGrow(t *testing.T) {
	h := newHarness(48)
	var acks []int
	var finishAt float64
	r, _ := NewMRunner(h.engine, h.svc, app.GadgetProfile(), 2, zeroCosts(), Callbacks{
		OnGrowAck:  func(n int) { acks = append(acks, n) },
		OnFinished: func() { finishAt = h.engine.Now() },
	})
	r.Start()
	// At t=305 (300 s of execution → half done) offer 44 more processors.
	h.engine.At(305, func() { r.RequestGrow(44) })
	h.engine.Run()
	if len(acks) != 1 || acks[0] != 44 {
		t.Fatalf("acks = %v", acks)
	}
	// Stub submission takes 5 s (overlapped), so the rate switches at 310:
	// progress 305/600 at old rate... execution started at t=5, so by t=310
	// progress is 305/600. Remaining 295/600 at T(46)=240 → 118 s → 428.
	want := 310 + (1-305.0/600)*240
	if math.Abs(finishAt-want) > 1e-6 {
		t.Fatalf("finishAt = %g, want %g", finishAt, want)
	}
	g, s := r.Stats()
	if g != 1 || s != 0 {
		t.Fatalf("stats = %d/%d", g, s)
	}
}

func TestMRunnerGrowRespectsFTPow2(t *testing.T) {
	h := newHarness(48)
	var acks []int
	r, _ := NewMRunner(h.engine, h.svc, app.FTProfile(), 2, zeroCosts(), Callbacks{
		OnGrowAck: func(n int) { acks = append(acks, n) },
	})
	r.Start()
	h.engine.At(20, func() { r.RequestGrow(5) }) // 2+5=7 → FT accepts 2 (→4)
	h.engine.Run()
	if len(acks) != 1 || acks[0] != 2 {
		t.Fatalf("acks = %v", acks)
	}
}

func TestMRunnerShrink(t *testing.T) {
	h := newHarness(48)
	var acks []int
	var finishAt float64
	r, _ := NewMRunner(h.engine, h.svc, app.GadgetProfile(), 46, zeroCosts(), Callbacks{
		OnShrinkAck: func(n int) { acks = append(acks, n) },
		OnFinished:  func() { finishAt = h.engine.Now() },
	})
	r.Start()
	// Execution starts at t=5 with T(46)=240. At t=125 progress is 0.5.
	h.engine.At(125, func() { r.RequestShrink(44) })
	h.engine.Run()
	if len(acks) != 1 || acks[0] != 44 {
		t.Fatalf("acks = %v", acks)
	}
	// Remaining half at T(2)=600 → 300 s → finish at 425.
	if math.Abs(finishAt-425) > 1e-6 {
		t.Fatalf("finishAt = %g, want 425", finishAt)
	}
	// The released nodes return to the pool (after GRAM release latency).
	h2 := h.clus.Used()
	if h2 != 0 {
		t.Fatalf("used = %d at end", h2)
	}
}

func TestMRunnerShrinkFreesNodesDuringRun(t *testing.T) {
	h := newHarness(48)
	r, _ := NewMRunner(h.engine, h.svc, app.GadgetProfile(), 46, zeroCosts(), Callbacks{})
	r.Start()
	h.engine.At(100, func() { r.RequestShrink(20) })
	h.engine.RunUntil(110)
	if used := h.clus.Used(); used != 26 {
		t.Fatalf("used = %d mid-run, want 26", used)
	}
	if r.Nodes() != 26 {
		t.Fatalf("runner holds %d stubs, want 26", r.Nodes())
	}
}

func TestMRunnerGrowShrinkSequence(t *testing.T) {
	h := newHarness(48)
	r, _ := NewMRunner(h.engine, h.svc, app.GadgetProfile(), 2, zeroCosts(), Callbacks{})
	r.Start()
	h.engine.At(50, func() { r.RequestGrow(10) })
	h.engine.At(100, func() { r.RequestShrink(5) })
	h.engine.RunUntil(150)
	if r.Execution().Procs() != 7 {
		t.Fatalf("procs = %d, want 7", r.Execution().Procs())
	}
	g, s := r.Stats()
	if g != 1 || s != 1 {
		t.Fatalf("stats = %d/%d", g, s)
	}
}

func TestMRunnerReconfigCostsDelayCompletion(t *testing.T) {
	costsCfg := MRunnerConfig{Costs: app.ReconfigCosts{RecruitPause: 10}, AcquireTimeout: 0}
	base := func(cfg MRunnerConfig) float64 {
		h := newHarness(48)
		var finishAt float64
		r, _ := NewMRunner(h.engine, h.svc, app.GadgetProfile(), 2, cfg, Callbacks{
			OnFinished: func() { finishAt = h.engine.Now() },
		})
		r.Start()
		h.engine.At(50, func() { r.RequestGrow(44) })
		h.engine.Run()
		return finishAt
	}
	free := base(zeroCosts())
	costly := base(costsCfg)
	if costly <= free {
		t.Fatalf("recruit pause did not delay completion: %g vs %g", costly, free)
	}
	if math.Abs((costly-free)-10) > 1e-6 {
		t.Fatalf("delay = %g, want 10", costly-free)
	}
}

func TestMRunnerGrowAfterFinishAcksZero(t *testing.T) {
	h := newHarness(48)
	var acks []int
	r, _ := NewMRunner(h.engine, h.svc, app.GadgetProfile(), 46, zeroCosts(), Callbacks{
		OnGrowAck: func(n int) { acks = append(acks, n) },
	})
	r.Start()
	h.engine.At(1000, func() { r.RequestGrow(10) }) // long finished
	h.engine.Run()
	if len(acks) != 1 || acks[0] != 0 {
		t.Fatalf("acks = %v", acks)
	}
}

func TestMRunnerValidation(t *testing.T) {
	h := newHarness(8)
	if _, err := NewMRunner(h.engine, h.svc, app.RigidProfile("r", app.FTModel(), 2), 2, zeroCosts(), Callbacks{}); err == nil {
		t.Fatal("rigid profile should be rejected")
	}
	if _, err := NewMRunner(h.engine, h.svc, app.GadgetProfile(), 1, zeroCosts(), Callbacks{}); err == nil {
		t.Fatal("size below min should be rejected")
	}
	r, _ := NewMRunner(h.engine, h.svc, app.GadgetProfile(), 2, zeroCosts(), Callbacks{})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err == nil {
		t.Fatal("double start should fail")
	}
}

func TestMRunnerAcquireTimeoutAbandonsPendingStubs(t *testing.T) {
	// Cluster of 4: the app starts at 2; a grow of 2 more can only get 2…
	// but background seizes them first so stubs stay pending. With a
	// timeout the grow completes with 0 held and the pending stubs are
	// abandoned (voluntary shrink).
	h := newHarness(4)
	var acks, voluntary []int
	cfg := MRunnerConfig{Costs: app.ReconfigCosts{}, AcquireTimeout: 30}
	r, _ := NewMRunner(h.engine, h.svc, app.GadgetProfile(), 2, cfg, Callbacks{
		OnGrowAck:         func(n int) { acks = append(acks, n) },
		OnVoluntaryShrink: func(n int) { voluntary = append(voluntary, n) },
	})
	r.Start()
	h.engine.At(10, func() { h.clus.SeizeBackground(2) })
	h.engine.At(20, func() { r.RequestGrow(2) })
	h.engine.RunUntil(120)
	if len(acks) != 1 || acks[0] != 0 {
		t.Fatalf("acks = %v, want [0]", acks)
	}
	if len(voluntary) != 1 || voluntary[0] != 2 {
		t.Fatalf("voluntary = %v, want [2]", voluntary)
	}
	if r.Execution().Procs() != 2 {
		t.Fatalf("procs = %d, want 2", r.Execution().Procs())
	}
}

func TestRigidRunnerLifecycle(t *testing.T) {
	h := newHarness(8)
	var startAt, finishAt float64
	prof := app.RigidProfile("FT-rigid", app.FTModel(), 2)
	r, err := NewRigidRunner(h.engine, h.svc, prof, 2, Callbacks{
		OnStarted:  func() { startAt = h.engine.Now() },
		OnFinished: func() { finishAt = h.engine.Now() },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	h.engine.Run()
	if startAt != 5 {
		t.Fatalf("startAt = %g", startAt)
	}
	if math.Abs(finishAt-125) > 1e-6 { // 5 + T(2)=120
		t.Fatalf("finishAt = %g, want 125", finishAt)
	}
	if h.clus.Used() != 0 || !r.Finished() {
		t.Fatalf("used=%d finished=%v", h.clus.Used(), r.Finished())
	}
}

func TestRigidRunnerValidation(t *testing.T) {
	h := newHarness(8)
	if _, err := NewRigidRunner(h.engine, h.svc, app.GadgetProfile(), 4, Callbacks{}); err == nil {
		t.Fatal("malleable profile should be rejected")
	}
	prof := app.MoldableProfile("m", app.FTModel(), 2, 8)
	if _, err := NewRigidRunner(h.engine, h.svc, prof, 16, Callbacks{}); err == nil {
		t.Fatal("size beyond max should be rejected")
	}
	r, _ := NewRigidRunner(h.engine, h.svc, prof, 4, Callbacks{})
	if r.Nodes() != 0 {
		t.Fatal("nodes before start should be 0")
	}
	r.Start()
	if err := r.Start(); err == nil {
		t.Fatal("double start should fail")
	}
	h.engine.RunUntil(10)
	if r.Nodes() != 4 || !r.Running() {
		t.Fatalf("nodes=%d running=%v", r.Nodes(), r.Running())
	}
}

func TestDefaultMRunnerConfig(t *testing.T) {
	cfg := DefaultMRunnerConfig()
	if cfg.AcquireTimeout <= 0 || cfg.Costs.RecruitPause <= 0 {
		t.Fatalf("defaults not positive: %+v", cfg)
	}
}
