package runner

// This file implements the "initiative of change" extension sketched in
// §II-C and §VIII of the paper: besides the scheduler, the *application*
// may initiate grow requests (useful for irregular parallelism patterns),
// and the scheduler may issue *voluntary* shrink requests that the
// application is free to decline (§II-D). The paper lists both as future
// work; they are implemented here behind the same MRunner protocol.

// AppGrowHandler receives application-initiated grow requests. The
// malleability manager implements it: given the requesting runner's job and
// the amount, it returns how many processors the scheduler is willing to
// hand over (0 declines the request). Application-initiated grows are
// always voluntary for the scheduler (§VIII: how much effort the scheduler
// spends accommodating them is a policy choice).
type AppGrowHandler interface {
	AppGrowRequest(site string, amount int) int
}

// SetAppGrowHandler installs the scheduler-side handler for
// application-initiated grow requests.
func (r *MRunner) SetAppGrowHandler(h AppGrowHandler) { r.appGrow = h }

// AppRequestGrow is called from the application side (the DYNACO decide
// component reacting to the computation needing more processors, §II-C).
// It returns how many processors the application actually obtained: the
// scheduler may grant less than asked, and the application's own
// constraints apply on top.
func (r *MRunner) AppRequestGrow(amount int) int {
	if !r.running || r.finished || amount <= 0 || r.appGrow == nil {
		return 0
	}
	granted := r.appGrow.AppGrowRequest(r.Site(), amount)
	if granted <= 0 {
		return 0
	}
	if granted > amount {
		granted = amount
	}
	return r.RequestGrow(granted)
}

// VoluntaryShrinkPolicy decides, on the application's behalf, how many of
// the requested processors to give back when the scheduler asks *politely*
// (a voluntary change, §II-D). progress is the completed fraction in [0,1].
// The default declines once the application is past halfway — late in the
// run the remaining work no longer amortises the reconfiguration cost.
type VoluntaryShrinkPolicy func(progress float64, current, request int) int

// DefaultVoluntaryShrinkPolicy accepts voluntary shrinks during the first
// half of the execution and declines afterwards.
func DefaultVoluntaryShrinkPolicy(progress float64, current, request int) int {
	if progress >= 0.5 {
		return 0
	}
	return request
}

// RequestVoluntaryShrink delivers a voluntary shrink request: the
// application may satisfy it partially or not at all ("it is merely a
// guideline", §II-D). It returns the number of processors the application
// agreed to release; the release itself proceeds like a mandatory shrink.
func (r *MRunner) RequestVoluntaryShrink(request int) int {
	if !r.running || r.finished || request <= 0 || r.exec == nil {
		return 0
	}
	policy := r.cfg.VoluntaryShrink
	if policy == nil {
		policy = DefaultVoluntaryShrinkPolicy
	}
	willing := policy(r.exec.Progress(), r.planned, request)
	if willing <= 0 {
		return 0
	}
	if willing > request {
		willing = request
	}
	return r.RequestShrink(willing)
}
