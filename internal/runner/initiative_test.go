package runner

import (
	"testing"

	"repro/internal/app"
)

// grantAll is an AppGrowHandler granting up to a fixed budget.
type grantAll struct{ budget int }

func (g *grantAll) AppGrowRequest(site string, amount int) int {
	grant := amount
	if grant > g.budget {
		grant = g.budget
	}
	g.budget -= grant
	return grant
}

func TestAppRequestGrowObtainsProcessors(t *testing.T) {
	h := newHarness(48)
	r, _ := NewMRunner(h.engine, h.svc, app.GadgetProfile(), 2, zeroCosts(), Callbacks{})
	r.SetAppGrowHandler(&grantAll{budget: 100})
	r.Start()
	h.engine.RunUntil(20)
	got := r.AppRequestGrow(10)
	if got != 10 {
		t.Fatalf("obtained %d, want 10", got)
	}
	h.engine.RunUntil(100)
	if r.Execution().Procs() != 12 {
		t.Fatalf("procs = %d, want 12", r.Execution().Procs())
	}
}

func TestAppRequestGrowSchedulerMayGrantLess(t *testing.T) {
	h := newHarness(48)
	r, _ := NewMRunner(h.engine, h.svc, app.GadgetProfile(), 2, zeroCosts(), Callbacks{})
	r.SetAppGrowHandler(&grantAll{budget: 3})
	r.Start()
	h.engine.RunUntil(20)
	if got := r.AppRequestGrow(10); got != 3 {
		t.Fatalf("obtained %d, want 3 (scheduler budget)", got)
	}
	if got := r.AppRequestGrow(10); got != 0 {
		t.Fatalf("obtained %d, want 0 (budget exhausted)", got)
	}
}

func TestAppRequestGrowAppliesAppConstraints(t *testing.T) {
	// FT asks for 5 while at 2; scheduler grants 5, but the power-of-two
	// rule means the application adopts only 2 (2→4).
	h := newHarness(48)
	r, _ := NewMRunner(h.engine, h.svc, app.FTProfile(), 2, zeroCosts(), Callbacks{})
	r.SetAppGrowHandler(&grantAll{budget: 100})
	r.Start()
	h.engine.RunUntil(20)
	if got := r.AppRequestGrow(5); got != 2 {
		t.Fatalf("adopted %d, want 2", got)
	}
}

func TestAppRequestGrowWithoutHandlerDeclines(t *testing.T) {
	h := newHarness(48)
	r, _ := NewMRunner(h.engine, h.svc, app.GadgetProfile(), 2, zeroCosts(), Callbacks{})
	r.Start()
	h.engine.RunUntil(20)
	if got := r.AppRequestGrow(5); got != 0 {
		t.Fatalf("obtained %d without a handler", got)
	}
	if got := r.AppRequestGrow(0); got != 0 {
		t.Fatal("zero request should decline")
	}
}

func TestVoluntaryShrinkAcceptedEarly(t *testing.T) {
	h := newHarness(48)
	r, _ := NewMRunner(h.engine, h.svc, app.GadgetProfile(), 46, zeroCosts(), Callbacks{})
	r.Start()
	h.engine.RunUntil(30) // progress ≈ 25/240 ≈ 10% — early
	if got := r.RequestVoluntaryShrink(10); got != 10 {
		t.Fatalf("released %d, want 10 (early in the run)", got)
	}
	h.engine.RunUntil(60)
	if r.Execution().Procs() != 36 {
		t.Fatalf("procs = %d, want 36", r.Execution().Procs())
	}
}

func TestVoluntaryShrinkDeclinedLate(t *testing.T) {
	h := newHarness(48)
	r, _ := NewMRunner(h.engine, h.svc, app.GadgetProfile(), 46, zeroCosts(), Callbacks{})
	r.Start()
	h.engine.RunUntil(200) // progress ≈ 195/240 ≈ 80% — late
	if got := r.RequestVoluntaryShrink(10); got != 0 {
		t.Fatalf("released %d, want 0 (late in the run)", got)
	}
	if r.Execution().Procs() != 46 {
		t.Fatalf("procs = %d, want 46", r.Execution().Procs())
	}
}

func TestVoluntaryShrinkCustomPolicy(t *testing.T) {
	h := newHarness(48)
	cfg := zeroCosts()
	// A miserly application: gives back at most 1 processor, ever.
	cfg.VoluntaryShrink = func(progress float64, current, request int) int { return 1 }
	r, _ := NewMRunner(h.engine, h.svc, app.GadgetProfile(), 46, cfg, Callbacks{})
	r.Start()
	h.engine.RunUntil(30)
	if got := r.RequestVoluntaryShrink(10); got != 1 {
		t.Fatalf("released %d, want 1", got)
	}
}

func TestDefaultVoluntaryShrinkPolicy(t *testing.T) {
	if got := DefaultVoluntaryShrinkPolicy(0.2, 10, 4); got != 4 {
		t.Fatalf("early: %d", got)
	}
	if got := DefaultVoluntaryShrinkPolicy(0.7, 10, 4); got != 0 {
		t.Fatalf("late: %d", got)
	}
}
