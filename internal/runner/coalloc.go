package runner

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/gram"
	"repro/internal/sim"
)

// CoComponent is one piece of a co-allocated job: a processor count at a
// specific site's GRAM service.
type CoComponent struct {
	Svc  *gram.Service
	Size int
}

// CoRunner runs a co-allocated rigid job: one GRAM job per component, and a
// single application execution spanning them all once every component is
// active (KOALA's processor co-allocation, §IV-A). Inter-cluster
// communication overhead is not modeled separately; it is assumed to be
// folded into the application's runtime model, which is acceptable because
// the paper's malleability experiments do not use co-allocation (§V-C).
type CoRunner struct {
	engine  *sim.Engine
	profile *app.Profile
	comps   []CoComponent
	cb      Callbacks

	jobs []*gram.Job
	exec *app.Execution

	started  bool
	running  bool
	finished bool
}

// NewCoRunner builds a co-allocating runner. The application executes at the
// sum of the component sizes.
func NewCoRunner(engine *sim.Engine, profile *app.Profile, comps []CoComponent, cb Callbacks) (*CoRunner, error) {
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	if profile.Class == app.Malleable {
		return nil, fmt.Errorf("runner: malleable jobs cannot be co-allocated (§V-C)")
	}
	if len(comps) == 0 {
		return nil, fmt.Errorf("runner: co-allocation needs at least one component")
	}
	for i, c := range comps {
		if c.Size <= 0 || c.Svc == nil {
			return nil, fmt.Errorf("runner: invalid co-allocation component %d", i)
		}
	}
	return &CoRunner{engine: engine, profile: profile, comps: comps, cb: cb}, nil
}

// TotalSize returns the summed component sizes.
func (r *CoRunner) TotalSize() int {
	total := 0
	for _, c := range r.comps {
		total += c.Size
	}
	return total
}

// Nodes implements Runner.
func (r *CoRunner) Nodes() int {
	total := 0
	for _, j := range r.jobs {
		if j.State() == gram.Active {
			total += j.Nodes
		}
	}
	return total
}

// Running implements Runner.
func (r *CoRunner) Running() bool { return r.running }

// Finished implements Runner.
func (r *CoRunner) Finished() bool { return r.finished }

// Execution exposes the spanning execution (nil before start).
func (r *CoRunner) Execution() *app.Execution { return r.exec }

// Start implements Runner.
func (r *CoRunner) Start() error {
	if r.started {
		return fmt.Errorf("runner: co-allocated %s started twice", r.profile.Name)
	}
	r.started = true
	remaining := len(r.comps)
	for _, c := range r.comps {
		j, err := c.Svc.Submit(c.Size, func(*gram.Job) {
			remaining--
			if remaining == 0 {
				r.beginExecution()
			}
		})
		if err != nil {
			return err
		}
		r.jobs = append(r.jobs, j)
	}
	return nil
}

func (r *CoRunner) beginExecution() {
	r.running = true
	size := r.TotalSize()
	r.exec = app.NewExecution(r.engine, &app.Profile{
		Name:  r.profile.Name,
		Class: r.profile.Class,
		Model: r.profile.Model,
		Min:   size,
		Max:   size,
	}, size, r.onAppFinished)
	r.cb.notifyStarted()
}

func (r *CoRunner) onAppFinished() {
	r.running = false
	r.finished = true
	for _, j := range r.jobs {
		if j.State() != gram.Released {
			// Each component releases through its own site's GRAM.
			for _, c := range r.comps {
				if err := c.Svc.Release(j); err == nil {
					break
				}
			}
		}
	}
	r.cb.notifyFinished()
}
