// Package runner reproduces KOALA's runners framework (§IV-A) and the
// Malleable Runner of §V-A. Runners are the auxiliary tools that interface
// applications of different types to the centralised scheduler: they submit
// the actual GRAM jobs, monitor progress, and — for the MRunner — carry a
// complete per-application DYNACO instance that translates the scheduler's
// grow and shrink messages into GRAM submissions and releases.
package runner

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/dynaco"
	"repro/internal/gram"
	"repro/internal/sim"
)

// Lifecycle receives start/finish notifications as an interface — the
// closure-free form of Callbacks.OnStarted/OnFinished. The scheduler's
// *Job implements it, so claiming a placement allocates no per-job
// callback closures.
type Lifecycle interface {
	JobStarted()
	JobFinished()
}

// Callbacks connect a runner to the scheduler frontend. All callbacks are
// optional.
type Callbacks struct {
	// Lifecycle, when non-nil, receives the started/finished notifications
	// (in addition to OnStarted/OnFinished when those are also set).
	Lifecycle Lifecycle
	// OnStarted fires when the application begins executing.
	OnStarted func()
	// OnFinished fires when the application completed and all of its
	// resources have been handed back to GRAM.
	OnFinished func()
	// OnGrowAck acknowledges a RequestGrow with the number of processors
	// actually adopted (0 = declined). It fires once the new processors are
	// recruited into the application.
	OnGrowAck func(accepted int)
	// OnShrinkAck acknowledges a RequestShrink with the number of
	// processors the application released. It fires once the release is
	// under way at GRAM (the nodes come back after the GRAM release
	// latency).
	OnShrinkAck func(released int)
	// OnVoluntaryShrink notifies the scheduler that the application
	// voluntarily gave back processors beyond what was requested (§V-A),
	// e.g. stubs abandoned after an acquisition timeout.
	OnVoluntaryShrink func(released int)
}

// notifyStarted fires the started notifications (func first, then the
// interface form).
func (cb *Callbacks) notifyStarted() {
	if cb.OnStarted != nil {
		cb.OnStarted()
	}
	if cb.Lifecycle != nil {
		cb.Lifecycle.JobStarted()
	}
}

// notifyFinished fires the finished notifications.
func (cb *Callbacks) notifyFinished() {
	if cb.OnFinished != nil {
		cb.OnFinished()
	}
	if cb.Lifecycle != nil {
		cb.Lifecycle.JobFinished()
	}
}

// Runner is the common behaviour of all runner kinds.
type Runner interface {
	// Start begins resource acquisition and, once ready, execution.
	Start() error
	// Nodes returns the number of processors currently held on behalf of
	// the application (stubs included).
	Nodes() int
	// Running reports whether the application is currently executing.
	Running() bool
	// Finished reports whether the application has completed.
	Finished() bool
}

// MRunnerConfig carries the MRunner's tunables.
type MRunnerConfig struct {
	// Costs are the application-side reconfiguration costs.
	Costs app.ReconfigCosts
	// AcquireTimeout bounds how long a grow waits for stubs to become
	// active before proceeding with what is held (pending stubs are
	// voluntarily abandoned). Zero disables the timeout.
	AcquireTimeout float64
	// VoluntaryShrink decides how the application answers voluntary shrink
	// requests (§II-D); nil uses DefaultVoluntaryShrinkPolicy.
	VoluntaryShrink VoluntaryShrinkPolicy
}

// DefaultMRunnerConfig returns sensible defaults. The acquisition timeout is
// generous because acquiring many processors through GRAM's gatekeeper is
// slow by design (one size-1 job per processor, §V-A).
func DefaultMRunnerConfig() MRunnerConfig {
	return MRunnerConfig{Costs: app.DefaultReconfigCosts(), AcquireTimeout: 300}
}

// MRunner is the Malleable Runner: it manages a malleable application as a
// collection of GRAM jobs of size 1 (§V-A). Growth submits new size-1 stub
// jobs, overlapping with execution; once all stubs are held they are
// recruited into application processes. Shrinking first reclaims processors
// from the application (safe point), then releases the corresponding GRAM
// jobs.
type MRunner struct {
	engine  *sim.Engine
	svc     *gram.Service
	profile *app.Profile
	cfg     MRunnerConfig
	cb      Callbacks

	initial int
	stubs   []*gram.Job
	exec    *app.Execution
	// fw points at fwVal: the per-job DYNACO instance is embedded by value
	// so claiming a malleable job heap-allocates one object fewer.
	fw    *dynaco.Framework
	fwVal dynaco.Framework

	// planned is the processor count after all queued adaptations complete;
	// the decide step of the protocol (§V-C: "get accepted number of
	// processors from Job") is evaluated against it so that back-to-back
	// offers within one management round compose correctly.
	planned int

	started  bool
	running  bool
	finished bool

	// One in-flight release staged by mrunnerHandler.Release while its
	// safe-point delay elapses (DYNACO serializes adaptation actions, so
	// one slot is enough).
	relN int

	// acq is the single reusable acquisition slot: DYNACO executes one
	// adaptation at a time and no grow can start before the initial batch
	// completes, so at most one acquisition is ever in flight — growing
	// allocates no per-acquisition state.
	acq acquisition

	appGrow AppGrowHandler

	growMsgs   uint64
	shrinkMsgs uint64
}

// NewMRunner builds an MRunner for one malleable application instance to be
// executed at the given site, starting at initial processors.
func NewMRunner(engine *sim.Engine, svc *gram.Service, profile *app.Profile, initial int, cfg MRunnerConfig, cb Callbacks) (*MRunner, error) {
	if err := profile.Validate(); err != nil {
		return nil, err
	}
	if profile.Class != app.Malleable {
		return nil, fmt.Errorf("runner: MRunner requires a malleable profile, got %v", profile.Class)
	}
	if initial < profile.Min || initial > profile.Max {
		return nil, fmt.Errorf("runner: initial size %d outside [%d,%d]", initial, profile.Min, profile.Max)
	}
	r := &MRunner{
		engine:  engine,
		svc:     svc,
		profile: profile,
		cfg:     cfg,
		cb:      cb,
		initial: initial,
		planned: initial,
	}
	r.acq.r = r
	// The complete DYNACO instance embedded in the MRunner (§V-A). The
	// decide step runs synchronously in RequestGrow/RequestShrink (it is
	// the protocol reply to the scheduler), so the framework executes
	// pre-decided events. The handler doubles as the framework's frontend
	// (Size/AdaptationDone), so assembling the instance allocates no
	// closures.
	r.fw = &r.fwVal
	r.fw.Init(engine, dynaco.PreDecided{}, (*mrunnerHandler)(r), (*mrunnerHandler)(r))
	return r, nil
}

// Site returns the execution site name.
func (r *MRunner) Site() string { return r.svc.SiteName() }

// Profile returns the application profile.
func (r *MRunner) Profile() *app.Profile { return r.profile }

// Nodes implements Runner.
func (r *MRunner) Nodes() int { return len(r.stubs) }

// Running implements Runner.
func (r *MRunner) Running() bool { return r.running }

// Finished implements Runner.
func (r *MRunner) Finished() bool { return r.finished }

// Execution exposes the application execution (nil before start).
func (r *MRunner) Execution() *app.Execution { return r.exec }

// Stats returns the number of grow and shrink messages received.
func (r *MRunner) Stats() (growMsgs, shrinkMsgs uint64) { return r.growMsgs, r.shrinkMsgs }

// Start implements Runner: it submits the initial collection of size-1 GRAM
// stub jobs; execution begins when all are active. The batch runs through
// the shared acquisition slot (without a timeout: the initial submission
// claims processors the scheduler already granted).
func (r *MRunner) Start() error {
	if r.started {
		return fmt.Errorf("runner: %s started twice", r.profile.Name)
	}
	r.started = true
	// Sized for the profile's maximum so that grow recruitment appends
	// never reallocate.
	cap := r.profile.Max
	if cap < r.initial {
		cap = r.initial
	}
	// One backing array serves both stub lists: held stubs in the front
	// half, the in-flight batch in the back half.
	buf := make([]*gram.Job, 2*cap)
	r.stubs = buf[:0:cap]
	r.acq.newStubs = buf[cap:cap]
	if err := r.acquire(r.initial, nil, true, 0); err != nil {
		return fmt.Errorf("runner: initial submission failed: %w", err)
	}
	return nil
}

func (r *MRunner) beginExecution() {
	r.running = true
	r.exec = app.NewExecution(r.engine, r.profile, r.initial, r.onAppFinished)
	r.cb.notifyStarted()
}

func (r *MRunner) onAppFinished() {
	r.running = false
	r.finished = true
	for _, s := range r.stubs {
		if s.State() != gram.Released {
			r.svc.Release(s)
		}
	}
	r.stubs = nil
	r.cb.notifyFinished()
}

// PlannedProcs returns the processor count the application will have once
// all in-flight adaptations complete.
func (r *MRunner) PlannedProcs() int { return r.planned }

// RequestGrow delivers a scheduler grow offer to the application. The
// returned value is the application's immediate protocol reply — how many of
// the offered processors it accepts (the DYNACO decide step, e.g. FT's
// power-of-two rule). The adaptation itself (stub submission, recruitment)
// proceeds asynchronously; Callbacks.OnGrowAck fires on completion.
func (r *MRunner) RequestGrow(offer int) int {
	if !r.running || r.finished {
		if r.cb.OnGrowAck != nil {
			r.cb.OnGrowAck(0)
		}
		return 0
	}
	r.growMsgs++
	accepted := r.profile.AcceptGrow(r.planned, offer)
	if accepted <= 0 {
		if r.cb.OnGrowAck != nil {
			r.cb.OnGrowAck(0)
		}
		return 0
	}
	r.planned += accepted
	r.fw.Notify(dynaco.Event{Kind: dynaco.GrowRequest, Amount: accepted})
	return accepted
}

// RequestShrink delivers a mandatory shrink request. The returned value is
// the number of processors the application agrees to release (possibly more
// than requested when a structural constraint forces a bigger step, §VI-A).
// Callbacks.OnShrinkAck fires once the release is under way.
func (r *MRunner) RequestShrink(request int) int {
	if !r.running || r.finished {
		if r.cb.OnShrinkAck != nil {
			r.cb.OnShrinkAck(0)
		}
		return 0
	}
	r.shrinkMsgs++
	released := r.profile.AcceptShrink(r.planned, request)
	if released <= 0 {
		if r.cb.OnShrinkAck != nil {
			r.cb.OnShrinkAck(0)
		}
		return 0
	}
	r.planned -= released
	r.fw.Notify(dynaco.Event{Kind: dynaco.ShrinkRequest, Amount: released})
	return released
}

// mrunnerHandler implements dynaco.Handler and dynaco.Frontend on the
// MRunner. It is a separate named type so these methods do not pollute
// MRunner's public API.
type mrunnerHandler MRunner

// Size implements dynaco.Frontend.
func (h *mrunnerHandler) Size() int {
	r := (*MRunner)(h)
	if r.exec == nil {
		return r.initial
	}
	return r.exec.Procs()
}

// AdaptationDone implements dynaco.Frontend.
func (h *mrunnerHandler) AdaptationDone(res dynaco.Result) {
	r := (*MRunner)(h)
	switch res.Event.Kind {
	case dynaco.GrowRequest:
		// The environment may have delivered fewer processors than the
		// application accepted (acquisition timeout): reconcile the plan.
		if res.Accepted < res.Event.Amount {
			r.planned -= res.Event.Amount - res.Accepted
		}
		if r.cb.OnGrowAck != nil {
			r.cb.OnGrowAck(res.Accepted)
		}
	case dynaco.ShrinkRequest:
		if r.cb.OnShrinkAck != nil {
			r.cb.OnShrinkAck(res.Accepted)
		}
	}
}

// acquisition tracks one in-flight stub batch: how many are already
// active, and the timeout that abandons the rest. It is the MRunner's
// single reusable slot (at most one batch is ever in flight: DYNACO
// serializes adaptations, and no grow arrives before the initial batch
// completes), so acquiring allocates neither per-grow state nor per-stub
// closures — it implements gram.Activator directly.
type acquisition struct {
	r        *MRunner
	n        int
	held     int
	finished bool
	// initial marks Start's batch: its completion begins execution
	// instead of resuming the DYNACO plan.
	initial  bool
	newStubs []*gram.Job
	timeout  *sim.Event
	fw       *dynaco.Framework
}

// acquire submits n size-1 stubs through the reusable acquisition slot.
// For grow batches (initial false) the plan resumes via fw once all stubs
// are active or the timeout expires; Start's initial batch (initial true,
// no timeout) begins execution instead.
func (r *MRunner) acquire(n int, fw *dynaco.Framework, initial bool, timeout float64) error {
	a := &r.acq
	a.n, a.held, a.finished, a.initial, a.fw = n, 0, false, initial, fw
	a.newStubs = a.newStubs[:0]
	a.timeout = nil
	if timeout > 0 {
		a.timeout = r.engine.AfterOp(timeout, a, 0)
	}
	for i := 0; i < n; i++ {
		j, err := r.svc.SubmitTo(1, a)
		if err != nil {
			if initial {
				return err
			}
			// Site refuses (should not happen for size-1 jobs): account the
			// stub as never held.
			a.n--
			if a.held == a.n && a.n > 0 {
				a.complete()
			}
			continue
		}
		a.newStubs = append(a.newStubs, j)
	}
	if a.n == 0 {
		a.complete()
	}
	return nil
}

// OnEvent implements sim.Handler: the acquisition timeout expired — abandon
// the stubs still in flight (a voluntary shrink from the scheduler's point
// of view) and proceed with what is held.
func (a *acquisition) OnEvent(int) {
	a.timeout = nil
	if a.finished {
		return
	}
	r := a.r
	abandoned := 0
	for _, s := range a.newStubs {
		if s.State() != gram.Active && s.State() != gram.Released {
			r.svc.Release(s)
			abandoned++
		}
	}
	if abandoned > 0 && r.cb.OnVoluntaryShrink != nil {
		r.cb.OnVoluntaryShrink(abandoned)
	}
	a.complete()
}

func (a *acquisition) complete() {
	if a.finished {
		return
	}
	a.finished = true
	if a.timeout != nil {
		a.timeout.Cancel()
		a.timeout = nil
	}
	if a.initial {
		a.r.beginExecution()
		return
	}
	a.fw.AcquireDone(a.held)
}

// JobActive implements gram.Activator: one stub of the batch holds its
// node.
func (a *acquisition) JobActive(j *gram.Job) {
	r := a.r
	if a.finished || r.finished {
		// Too late — the acquisition timed out, or the application itself
		// already finished: give the node straight back.
		r.svc.Release(j)
		if r.cb.OnVoluntaryShrink != nil {
			r.cb.OnVoluntaryShrink(1)
		}
		return
	}
	r.stubs = append(r.stubs, j)
	a.held++
	if a.held == a.n {
		a.complete()
	}
}

// Acquire implements dynaco.Handler: submit n size-1 stubs and resume the
// plan once all are active (or the acquisition timeout expires, in which
// case pending stubs are abandoned).
func (h *mrunnerHandler) Acquire(n int, fw *dynaco.Framework) {
	r := (*MRunner)(h)
	r.acquire(n, fw, false, r.cfg.AcquireTimeout)
}

// Event op codes for the mrunnerHandler's sim.Handler implementation.
const (
	opSafePoint = iota
	opRecruitDone
)

// Recruit implements dynaco.Handler: turn held stubs into application
// processes — a short suspension while processes are spawned and data is
// redistributed, then the application computes at its new size.
func (h *mrunnerHandler) Recruit(n int, fw *dynaco.Framework) {
	r := (*MRunner)(h)
	if !r.running || r.exec == nil || r.exec.Done() {
		fw.StepDone()
		return
	}
	target := r.exec.Procs() + n
	if target > r.profile.Max {
		target = r.profile.Max
	}
	r.exec.PauseFor(r.cfg.Costs.RecruitPause)
	r.exec.SetProcs(target)
	r.engine.AfterOp(r.cfg.Costs.RecruitPause, h, opRecruitDone)
}

// Release implements dynaco.Handler: wait for the application to reach a
// safe point, remove the processes, pause briefly for data redistribution,
// and release the corresponding GRAM jobs.
//
// The safe-point wait is scheduled as a handler op on the MRunner rather
// than a closure; DYNACO executes one adaptation action at a time
// (Framework.Busy), so a single pending-release slot suffices.
func (h *mrunnerHandler) Release(n int, fw *dynaco.Framework) {
	r := (*MRunner)(h)
	if !r.running || r.exec == nil || r.exec.Done() {
		fw.StepDone()
		return
	}
	r.relN = n
	r.engine.AfterOp(r.cfg.Costs.SafePointDelay, h, opSafePoint)
}

// OnEvent implements sim.Handler for the recruit and safe-point delays.
func (h *mrunnerHandler) OnEvent(op int) {
	r := (*MRunner)(h)
	if op == opRecruitDone {
		r.fw.StepDone()
		return
	}
	// Safe point reached: complete the release staged by Release.
	n := r.relN
	r.relN = 0
	if !r.running || r.exec == nil || r.exec.Done() {
		r.fw.StepDone()
		return
	}
	target := r.exec.Procs() - n
	if target < r.profile.Min {
		target = r.profile.Min
	}
	release := r.exec.Procs() - target
	r.exec.SetProcs(target)
	r.exec.PauseFor(r.cfg.Costs.RedistributePause)
	for i := 0; i < release && len(r.stubs) > 0; i++ {
		last := r.stubs[len(r.stubs)-1]
		r.stubs = r.stubs[:len(r.stubs)-1]
		r.svc.Release(last)
	}
	r.fw.StepDone()
}
