// Package buildinfo derives a human-readable version string for the
// repro binaries from the build metadata the Go toolchain embeds
// (runtime/debug.ReadBuildInfo). All four commands expose it behind a
// -version flag, koalad additionally logs it at startup and reports it
// in the /healthz payload, so that a deployed daemon can always be
// matched back to a commit.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Version returns the best version identifier available: the module
// version when built from a tagged module, otherwise the embedded VCS
// revision (shortened, with a "-dirty" suffix for modified trees), and
// "devel" when no metadata is embedded at all (e.g. go test binaries).
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	var revision string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			revision = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if revision == "" {
		return "devel"
	}
	if len(revision) > 12 {
		revision = revision[:12]
	}
	if dirty {
		revision += "-dirty"
	}
	return revision
}

// String renders the one-line banner printed by -version: the command
// name, the version and the toolchain that built it.
func String(command string) string {
	return fmt.Sprintf("%s %s (%s %s/%s)", command, Version(), runtime.Version(), runtime.GOOS, runtime.GOARCH)
}
