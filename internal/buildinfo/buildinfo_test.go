package buildinfo

import (
	"strings"
	"testing"
)

func TestVersionNonEmpty(t *testing.T) {
	if Version() == "" {
		t.Fatal("Version() returned an empty string")
	}
}

func TestStringMentionsCommandAndVersion(t *testing.T) {
	s := String("koalad")
	if !strings.HasPrefix(s, "koalad ") {
		t.Fatalf("String() = %q, want the command name first", s)
	}
	if !strings.Contains(s, Version()) {
		t.Fatalf("String() = %q does not contain Version() = %q", s, Version())
	}
}
