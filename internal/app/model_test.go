package app

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTableModelInterpolation(t *testing.T) {
	m := NewTableModel("x", []TablePoint{{2, 100}, {4, 60}, {8, 40}})
	cases := []struct {
		p    int
		want float64
	}{
		{1, 100}, // clamp below
		{2, 100},
		{3, 80}, // midpoint
		{4, 60},
		{6, 50},
		{8, 40},
		{16, 40}, // clamp above
	}
	for _, c := range cases {
		if got := m.Time(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Time(%d) = %g, want %g", c.p, got, c.want)
		}
	}
	if m.Name() != "x" {
		t.Fatalf("Name = %q", m.Name())
	}
}

func TestTableModelValidation(t *testing.T) {
	panics := []func(){
		func() { NewTableModel("e", nil) },
		func() { NewTableModel("d", []TablePoint{{2, 10}, {2, 20}}) },
		func() { NewTableModel("z", []TablePoint{{0, 10}}) },
		func() { NewTableModel("n", []TablePoint{{2, -1}}) },
		func() { NewTableModel("ok", []TablePoint{{2, 10}}).Time(0) },
	}
	for i, fn := range panics {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestTableModelUnsortedInput(t *testing.T) {
	m := NewTableModel("u", []TablePoint{{8, 40}, {2, 100}, {4, 60}})
	if got := m.Time(3); math.Abs(got-80) > 1e-9 {
		t.Fatalf("Time(3) = %g, want 80", got)
	}
}

func TestAmdahlModel(t *testing.T) {
	m := AmdahlModel{T1: 100, SerialFrac: 0.1}
	if got := m.Time(1); got != 100 {
		t.Fatalf("Time(1) = %g", got)
	}
	// f + (1-f)/p = 0.1 + 0.9/10 = 0.19
	if got := m.Time(10); math.Abs(got-19) > 1e-9 {
		t.Fatalf("Time(10) = %g, want 19", got)
	}
	if m.Name() == "" {
		t.Fatal("Name empty")
	}
}

func TestCommOverheadModelHasOptimum(t *testing.T) {
	m := CommOverheadModel{W: 1000, C: 20, B: 5}
	best := BestProcs(m, 256)
	if best <= 1 || best >= 256 {
		t.Fatalf("optimum %d should be interior", best)
	}
	// The curve must rise past the optimum.
	if m.Time(256) <= m.Time(best) {
		t.Fatal("no degradation beyond optimum")
	}
	if m.Name() == "" {
		t.Fatal("Name empty")
	}
}

// Fig. 6 anchors: FT ≈ 2 min at 2 procs, best ≈ 1 min; GADGET ≈ 10 min at 2
// procs, best ≈ 4 min.
func TestFig6Anchors(t *testing.T) {
	ft := FTModel()
	if got := ft.Time(2); got != 120 {
		t.Fatalf("FT T(2) = %g, want 120", got)
	}
	if best := BestProcs(ft, 32); ft.Time(best) != 60 {
		t.Fatalf("FT best = %g at %d, want 60", ft.Time(best), best)
	}
	g := GadgetModel()
	if got := g.Time(2); got != 600 {
		t.Fatalf("GADGET T(2) = %g, want 600", got)
	}
	if best := BestProcs(g, 46); g.Time(best) != 240 {
		t.Fatalf("GADGET best = %g at %d, want 240", g.Time(best), best)
	}
}

// §VI-C: the chosen maximum sizes are deliberately greater than the sizes
// with minimum execution time.
func TestMaxSizesExceedBestSizes(t *testing.T) {
	ft := FTProfile()
	if best := BestProcs(ft.Model, ft.Max); best > ft.Max {
		t.Fatalf("FT best %d beyond max %d", best, ft.Max)
	}
	if ft.Model.Time(ft.Max) <= ft.Model.Time(16) {
		t.Fatal("FT should degrade slightly beyond 16")
	}
}

// Property: table interpolation stays within the convex hull of neighbours.
func TestPropertyTableModelBounded(t *testing.T) {
	m := NewTableModel("b", []TablePoint{{1, 200}, {4, 100}, {16, 50}, {64, 80}})
	f := func(pRaw uint8) bool {
		p := int(pRaw)%80 + 1
		v := m.Time(p)
		return v >= 50 && v <= 200
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBestProcsOnMonotoneCurve(t *testing.T) {
	m := AmdahlModel{T1: 100, SerialFrac: 0}
	if best := BestProcs(m, 32); best != 32 {
		t.Fatalf("best = %d, want 32 for perfectly scalable app", best)
	}
}
