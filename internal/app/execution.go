package app

import (
	"fmt"

	"repro/internal/sim"
)

// ReconfigCosts model the runtime cost of malleability operations measured
// in [2]: growing pauses the application briefly while new processes are
// recruited and data is redistributed; shrinking waits for the SPMD code to
// reach an AFPAC safe point before processors can be handed back. GRAM
// interaction latencies are *not* included here — they overlap with
// execution (§V-A) and are modeled by the gram package.
type ReconfigCosts struct {
	// RecruitPause suspends execution when newly held processors are turned
	// into application processes (grow).
	RecruitPause float64
	// SafePointDelay is the mean delay until the application reaches a safe
	// point at which it can release processors (shrink).
	SafePointDelay float64
	// RedistributePause suspends execution after a shrink while data is
	// redistributed over the remaining processes.
	RedistributePause float64
}

// DefaultReconfigCosts reflect the two applications of §VI-A: recruiting and
// redistributing pause the application for a couple of seconds, and reaching
// an AFPAC safe point (between SPMD iterations) takes a few seconds.
func DefaultReconfigCosts() ReconfigCosts {
	return ReconfigCosts{RecruitPause: 2, SafePointDelay: 5, RedistributePause: 2}
}

// Execution integrates the progress of one running application over its
// allocation history. Progress is a fraction in [0,1]; at a constant p the
// fraction grows at rate 1/T(p), so a constant-size run finishes after
// exactly T(p) seconds. Reconfiguration pauses contribute zero progress.
type Execution struct {
	engine  *sim.Engine
	profile *Profile

	procs      int
	progress   float64
	lastUpdate float64
	paused     int // nesting depth of pauses
	finishEv   *sim.Event
	done       bool
	onFinish   func()

	startTime float64
	// allocation history for metrics: (time, procs) steps. The inline
	// buffers cover rigid jobs and lightly-adapted malleable ones without
	// heap growth.
	histTimes    []float64
	histProcs    []int
	histTimesBuf [8]float64
	histProcsBuf [8]int
}

// NewExecution starts an application of the given profile at procs
// processors. onFinish fires exactly when accumulated progress reaches 1.
func NewExecution(engine *sim.Engine, profile *Profile, procs int, onFinish func()) *Execution {
	if err := profile.Validate(); err != nil {
		panic(err)
	}
	if procs < profile.Min || procs > profile.Max {
		panic(fmt.Sprintf("app: %s started with %d procs outside [%d,%d]",
			profile.Name, procs, profile.Min, profile.Max))
	}
	x := &Execution{
		engine:    engine,
		profile:   profile,
		procs:     procs,
		onFinish:  onFinish,
		startTime: engine.Now(),
	}
	x.lastUpdate = engine.Now()
	x.histTimes = x.histTimesBuf[:0]
	x.histProcs = x.histProcsBuf[:0]
	x.record(procs)
	x.reschedule()
	return x
}

// Event op codes for the Execution's sim.Handler implementation: the
// finish and auto-resume events fire on the execution itself, so the
// frequent reschedule path allocates no bound-method closures.
const (
	opFinish = iota
	opResume
)

// OnEvent implements sim.Handler.
func (x *Execution) OnEvent(op int) {
	switch op {
	case opFinish:
		x.finish()
	case opResume:
		x.Resume()
	}
}

// Profile returns the application profile.
func (x *Execution) Profile() *Profile { return x.profile }

// Procs returns the current effective processor count.
func (x *Execution) Procs() int { return x.procs }

// Done reports whether the application has finished.
func (x *Execution) Done() bool { return x.done }

// StartTime returns the virtual time at which execution began.
func (x *Execution) StartTime() float64 { return x.startTime }

// Progress returns the completed fraction in [0,1] as of the current
// virtual time.
func (x *Execution) Progress() float64 {
	x.integrate()
	return x.progress
}

// History returns the allocation step history as parallel slices of times
// and processor counts (a 0 count marks pauses). The slices must not be
// modified.
func (x *Execution) History() ([]float64, []int) { return x.histTimes, x.histProcs }

func (x *Execution) record(p int) {
	now := x.engine.Now()
	if n := len(x.histTimes); n > 0 && x.histTimes[n-1] == now {
		x.histProcs[n-1] = p
		return
	}
	x.histTimes = append(x.histTimes, now)
	x.histProcs = append(x.histProcs, p)
}

// rate returns the current progress rate (fractions per second).
func (x *Execution) rate() float64 {
	if x.paused > 0 {
		return 0
	}
	return 1 / x.profile.Model.Time(x.procs)
}

// integrate accrues progress since the last update.
func (x *Execution) integrate() {
	if x.done {
		return
	}
	now := x.engine.Now()
	x.progress += (now - x.lastUpdate) * x.rate()
	if x.progress > 1 {
		x.progress = 1
	}
	x.lastUpdate = now
}

// reschedule recomputes the finish event from the current progress and rate.
func (x *Execution) reschedule() {
	if x.done {
		return
	}
	if x.finishEv != nil {
		x.finishEv.Cancel()
		x.finishEv = nil
	}
	r := x.rate()
	if r <= 0 {
		return // paused: finish is rescheduled on resume
	}
	remaining := (1 - x.progress) / r
	x.finishEv = x.engine.AfterOp(remaining, x, opFinish)
}

func (x *Execution) finish() {
	// The handle refers to the event firing right now; drop it so no later
	// path can cancel a recycled event.
	x.finishEv = nil
	x.integrate()
	// Guard against float drift: the event fires exactly at the computed
	// completion instant, so progress must be 1 within epsilon.
	if x.progress < 1-1e-9 {
		panic(fmt.Sprintf("app: %s finish event fired at progress %g", x.profile.Name, x.progress))
	}
	x.progress = 1
	x.done = true
	x.record(0)
	if x.onFinish != nil {
		x.onFinish()
	}
}

// SetProcs changes the effective processor count, integrating progress made
// at the old size. It is the rate-switch point: the MRunner calls it only
// after new processors are actually recruited (grow) or right when
// processors are handed back (shrink).
func (x *Execution) SetProcs(p int) {
	if x.done {
		panic(fmt.Sprintf("app: SetProcs on finished %s", x.profile.Name))
	}
	if p < x.profile.Min || p > x.profile.Max {
		panic(fmt.Sprintf("app: %s resized to %d outside [%d,%d]",
			x.profile.Name, p, x.profile.Min, x.profile.Max))
	}
	x.integrate()
	x.procs = p
	x.record(p)
	x.reschedule()
}

// Pause suspends progress (nested calls require matching Resumes).
func (x *Execution) Pause() {
	if x.done {
		return
	}
	x.integrate()
	x.paused++
	if x.paused == 1 {
		x.record(0)
	}
	x.reschedule()
}

// Resume restarts progress after a Pause.
func (x *Execution) Resume() {
	if x.done {
		return
	}
	if x.paused == 0 {
		panic(fmt.Sprintf("app: Resume without Pause on %s", x.profile.Name))
	}
	x.integrate()
	x.paused--
	if x.paused == 0 {
		x.record(x.procs)
	}
	x.reschedule()
}

// PauseFor suspends progress for d seconds, then resumes automatically —
// the shape of the recruit and redistribute pauses.
func (x *Execution) PauseFor(d float64) {
	if d <= 0 || x.done {
		return
	}
	x.Pause()
	x.engine.AfterOp(d, x, opResume)
}

// Abort cancels the execution without firing onFinish (used when a job is
// killed). Progress stops accruing.
func (x *Execution) Abort() {
	if x.done {
		return
	}
	x.integrate()
	x.done = true
	x.record(0)
	if x.finishEv != nil {
		x.finishEv.Cancel()
		x.finishEv = nil
	}
}
