// Package app models the parallel applications of the paper's evaluation:
// the NAS Parallel Benchmark FT kernel and the GADGET-2 n-body simulator,
// both made malleable with DYNACO (§VI-A), plus rigid and moldable job
// classes from the Feitelson–Rudolph classification (§II-A).
//
// The central object is the RuntimeModel: the execution time T(p) of the
// whole application on p processors, digitised from the paper's Fig. 6. The
// malleable executor integrates 1/T(p) over the allocation history, so a job
// that runs at varying sizes finishes exactly when its accumulated progress
// reaches 1.
package app

import (
	"fmt"
	"math"
	"sort"
)

// RuntimeModel yields the wall-clock execution time of a complete run at a
// constant processor count.
type RuntimeModel interface {
	// Time returns T(p) in seconds for p ≥ 1 processors.
	Time(p int) float64
	// Name identifies the model in reports.
	Name() string
}

// TablePoint is one digitised (processors, seconds) sample of a measured
// scaling curve.
type TablePoint struct {
	Procs int
	Time  float64
}

// TableModel interpolates a measured execution-time curve linearly between
// sample points and clamps outside the sampled range. This is how the
// paper's own Fig. 6 curves enter the simulation.
type TableModel struct {
	name   string
	points []TablePoint
}

// NewTableModel builds a model from at least one sample point. Points are
// sorted by processor count; duplicate processor counts panic.
func NewTableModel(name string, points []TablePoint) *TableModel {
	if len(points) == 0 {
		panic("app: table model needs at least one point")
	}
	ps := append([]TablePoint(nil), points...)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Procs < ps[j].Procs })
	for i := 1; i < len(ps); i++ {
		if ps[i].Procs == ps[i-1].Procs {
			panic(fmt.Sprintf("app: duplicate table point at p=%d", ps[i].Procs))
		}
	}
	for _, p := range ps {
		if p.Procs < 1 || p.Time <= 0 {
			panic(fmt.Sprintf("app: invalid table point %+v", p))
		}
	}
	return &TableModel{name: name, points: ps}
}

// Name implements RuntimeModel.
func (m *TableModel) Name() string { return m.name }

// Time implements RuntimeModel by piecewise-linear interpolation.
func (m *TableModel) Time(p int) float64 {
	if p < 1 {
		panic(fmt.Sprintf("app: Time(%d) with p < 1", p))
	}
	pts := m.points
	if p <= pts[0].Procs {
		return pts[0].Time
	}
	if p >= pts[len(pts)-1].Procs {
		return pts[len(pts)-1].Time
	}
	i := sort.Search(len(pts), func(i int) bool { return pts[i].Procs >= p })
	lo, hi := pts[i-1], pts[i]
	frac := float64(p-lo.Procs) / float64(hi.Procs-lo.Procs)
	return lo.Time + frac*(hi.Time-lo.Time)
}

// AmdahlModel is the classic T(p) = T1·(f + (1-f)/p) law with serial
// fraction f. Used by ablation benches and property tests as a smooth,
// monotone reference curve.
type AmdahlModel struct {
	T1         float64 // single-processor time
	SerialFrac float64 // f in [0,1]
}

// Name implements RuntimeModel.
func (m AmdahlModel) Name() string { return fmt.Sprintf("amdahl(f=%.2f)", m.SerialFrac) }

// Time implements RuntimeModel.
func (m AmdahlModel) Time(p int) float64 {
	if p < 1 {
		panic(fmt.Sprintf("app: Time(%d) with p < 1", p))
	}
	return m.T1 * (m.SerialFrac + (1-m.SerialFrac)/float64(p))
}

// CommOverheadModel is T(p) = W/p + C·log2(p) + B: perfect work splitting
// plus a logarithmic communication term. It has a true optimum processor
// count, matching applications whose maximum useful size is below the
// paper's chosen maximum job sizes (§VI-C discussion).
type CommOverheadModel struct {
	W float64 // total sequential work (seconds at p=1, minus overheads)
	C float64 // per-doubling communication cost
	B float64 // fixed startup cost
}

// Name implements RuntimeModel.
func (m CommOverheadModel) Name() string { return "comm-overhead" }

// Time implements RuntimeModel.
func (m CommOverheadModel) Time(p int) float64 {
	if p < 1 {
		panic(fmt.Sprintf("app: Time(%d) with p < 1", p))
	}
	return m.W/float64(p) + m.C*math.Log2(float64(p)) + m.B
}

// BestProcs returns the processor count in [1, maxP] minimising m.Time —
// the "size that gives the best execution time" of §VI-C.
func BestProcs(m RuntimeModel, maxP int) int {
	best, bestT := 1, m.Time(1)
	for p := 2; p <= maxP; p++ {
		if t := m.Time(p); t < bestT {
			best, bestT = p, t
		}
	}
	return best
}

// FTModel returns the NPB FT scaling curve digitised from Fig. 6: about two
// minutes on 2 processors, best about one minute, slightly degrading beyond
// the optimum. FT only runs on powers of two; intermediate values are
// irrelevant in practice but interpolate smoothly.
func FTModel() *TableModel {
	return NewTableModel("NPB-FT", []TablePoint{
		{1, 220}, {2, 120}, {4, 85}, {8, 68}, {16, 60}, {32, 62}, {64, 70},
	})
}

// GadgetModel returns the GADGET-2 scaling curve digitised from Fig. 6:
// about ten minutes on 2 processors, best about four minutes near the upper
// end of its size range.
func GadgetModel() *TableModel {
	return NewTableModel("GADGET-2", []TablePoint{
		{1, 1100}, {2, 600}, {4, 430}, {8, 330}, {16, 280},
		{24, 260}, {32, 248}, {40, 243}, {46, 240},
	})
}
