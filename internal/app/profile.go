package app

import "fmt"

// Class is the Feitelson–Rudolph parallel-job class of §II-A.
type Class int

const (
	// Rigid jobs require a fixed processor count for their whole life.
	Rigid Class = iota
	// Moldable jobs pick their processor count at start time only.
	Moldable
	// Malleable jobs can grow and shrink while running.
	Malleable
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Rigid:
		return "rigid"
	case Moldable:
		return "moldable"
	case Malleable:
		return "malleable"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Profile describes an application type: its scaling behaviour, its size
// envelope, and — crucially for the scheduler protocol of §V-C — how it
// responds to grow and shrink offers. The scheduler deliberately knows
// nothing about per-application constraints (such as FT's power-of-two
// rule); it offers an amount and the application answers with what it
// accepts, voluntarily releasing the rest.
type Profile struct {
	Name  string
	Class Class
	Model RuntimeModel
	// Min is the smallest processor count the application can run on; it
	// can never shrink below Min.
	Min int
	// Max is the largest useful processor count; allocating more would
	// waste processors.
	Max int
	// acceptGrow and acceptShrink hold the application-side constraint
	// logic; nil means "accept anything within [Min,Max]".
	acceptGrow   func(current, offer int) int
	acceptShrink func(current, request int) int
}

// Validate checks internal consistency.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("app: profile without name")
	}
	if p.Model == nil {
		return fmt.Errorf("app: profile %s without runtime model", p.Name)
	}
	if p.Min < 1 || p.Max < p.Min {
		return fmt.Errorf("app: profile %s has bad size range [%d,%d]", p.Name, p.Min, p.Max)
	}
	return nil
}

// AcceptGrow answers a grow offer: given the current size and an offer of
// additional processors, it returns how many of them the application
// accepts (0 ≤ accepted ≤ offer). Per §V-C the job itself enforces its
// maximum and any structural constraint.
func (p *Profile) AcceptGrow(current, offer int) int {
	if offer <= 0 || current >= p.Max {
		return 0
	}
	if current+offer > p.Max {
		offer = p.Max - current
	}
	if p.acceptGrow != nil {
		a := p.acceptGrow(current, offer)
		if a < 0 {
			return 0
		}
		if a > offer {
			return offer
		}
		return a
	}
	return offer
}

// AcceptShrink answers a mandatory shrink request: given the current size
// and a requested number of processors to give back, it returns how many the
// application will actually release (possibly more than requested when a
// structural constraint forces a bigger step, possibly fewer when Min is in
// the way).
func (p *Profile) AcceptShrink(current, request int) int {
	if request <= 0 || current <= p.Min {
		return 0
	}
	if current-request < p.Min {
		request = current - p.Min
	}
	if p.acceptShrink != nil {
		a := p.acceptShrink(current, request)
		if a < 0 {
			return 0
		}
		if a > current-p.Min {
			return current - p.Min
		}
		return a
	}
	return request
}

// largestPow2LE returns the largest power of two ≤ n (n ≥ 1).
func largestPow2LE(n int) int {
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

// FTProfile returns the malleable NPB FT application: sizes are powers of
// two in [2, 32]. On a grow offer it accepts only up to the largest power of
// two not exceeding current+offer, voluntarily releasing the remainder
// (§VI-A); on a shrink request it steps down to the largest power of two
// that satisfies the request.
func FTProfile() *Profile {
	return &Profile{
		Name:  "FT",
		Class: Malleable,
		Model: FTModel(),
		Min:   2,
		Max:   32,
		acceptGrow: func(current, offer int) int {
			target := largestPow2LE(current + offer)
			if target <= current {
				return 0
			}
			return target - current
		},
		acceptShrink: func(current, request int) int {
			target := largestPow2LE(current - request)
			if target < 2 {
				target = 2
			}
			if target >= current {
				return 0
			}
			return current - target
		},
	}
}

// GadgetProfile returns the malleable GADGET-2 application: any size in
// [2, 46] thanks to its internal load-balancing mechanism (§VI-A).
func GadgetProfile() *Profile {
	return &Profile{
		Name:  "GADGET2",
		Class: Malleable,
		Model: GadgetModel(),
		Min:   2,
		Max:   46,
	}
}

// RigidProfile returns a rigid variant of model running at exactly size
// processors, as used for the 50% rigid jobs of workload Wmr (§VI-C).
func RigidProfile(name string, model RuntimeModel, size int) *Profile {
	return &Profile{Name: name, Class: Rigid, Model: model, Min: size, Max: size}
}

// MoldableProfile returns a moldable variant: the scheduler may pick any
// start size in [min,max] but the size is then frozen.
func MoldableProfile(name string, model RuntimeModel, min, max int) *Profile {
	return &Profile{Name: name, Class: Moldable, Model: model, Min: min, Max: max}
}
