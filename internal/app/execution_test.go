package app

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func constProfile(name string, t2 float64, min, max int) *Profile {
	return &Profile{
		Name:  name,
		Class: Malleable,
		Model: NewTableModel(name+"-m", []TablePoint{{1, t2 * 2}, {2, t2}, {max, t2 * 2 / float64(max)}}),
		Min:   min,
		Max:   max,
	}
}

func TestConstantSizeRunFinishesAtModelTime(t *testing.T) {
	e := sim.New()
	g := GadgetProfile()
	var finishedAt float64 = -1
	NewExecution(e, g, 2, func() { finishedAt = e.Now() })
	e.Run()
	if math.Abs(finishedAt-600) > 1e-6 {
		t.Fatalf("finished at %g, want 600", finishedAt)
	}
}

func TestGrowSpeedsUpCompletion(t *testing.T) {
	e := sim.New()
	g := GadgetProfile()
	var finishedAt float64 = -1
	x := NewExecution(e, g, 2, func() { finishedAt = e.Now() })
	// At t=300 half the work is done; grow to 46 procs.
	e.At(300, func() { x.SetProcs(46) })
	e.Run()
	// Remaining half at T(46)=240 takes 120 s → finish at 420.
	if math.Abs(finishedAt-420) > 1e-6 {
		t.Fatalf("finished at %g, want 420", finishedAt)
	}
}

func TestShrinkSlowsDownCompletion(t *testing.T) {
	e := sim.New()
	g := GadgetProfile()
	var finishedAt float64 = -1
	x := NewExecution(e, g, 46, func() { finishedAt = e.Now() })
	e.At(120, func() { x.SetProcs(2) }) // half done at 120
	e.Run()
	if math.Abs(finishedAt-(120+300)) > 1e-6 {
		t.Fatalf("finished at %g, want 420", finishedAt)
	}
}

func TestProgressReporting(t *testing.T) {
	e := sim.New()
	g := GadgetProfile()
	x := NewExecution(e, g, 2, nil)
	e.At(150, func() {
		if p := x.Progress(); math.Abs(p-0.25) > 1e-9 {
			t.Errorf("Progress at 150 = %g, want 0.25", p)
		}
	})
	e.Run()
	if !x.Done() || x.Progress() != 1 {
		t.Fatalf("done=%v progress=%g", x.Done(), x.Progress())
	}
}

func TestPauseStopsProgress(t *testing.T) {
	e := sim.New()
	p := constProfile("p", 100, 1, 8)
	var finishedAt float64 = -1
	x := NewExecution(e, p, 2, func() { finishedAt = e.Now() })
	e.At(10, func() { x.Pause() })
	e.At(40, func() { x.Resume() })
	e.Run()
	if math.Abs(finishedAt-130) > 1e-6 {
		t.Fatalf("finished at %g, want 130 (100 + 30 pause)", finishedAt)
	}
}

func TestPauseForAutoResumes(t *testing.T) {
	e := sim.New()
	p := constProfile("p", 100, 1, 8)
	var finishedAt float64 = -1
	x := NewExecution(e, p, 2, func() { finishedAt = e.Now() })
	e.At(50, func() { x.PauseFor(25) })
	e.Run()
	if math.Abs(finishedAt-125) > 1e-6 {
		t.Fatalf("finished at %g, want 125", finishedAt)
	}
}

func TestNestedPause(t *testing.T) {
	e := sim.New()
	p := constProfile("p", 100, 1, 8)
	var finishedAt float64 = -1
	x := NewExecution(e, p, 2, func() { finishedAt = e.Now() })
	e.At(10, func() { x.Pause() })
	e.At(20, func() { x.Pause() })
	e.At(30, func() { x.Resume() }) // still paused
	e.At(50, func() { x.Resume() }) // now resumes
	e.Run()
	if math.Abs(finishedAt-140) > 1e-6 {
		t.Fatalf("finished at %g, want 140", finishedAt)
	}
}

func TestResumeWithoutPausePanics(t *testing.T) {
	e := sim.New()
	x := NewExecution(e, GadgetProfile(), 2, nil)
	defer func() {
		if recover() == nil {
			t.Error("Resume without Pause did not panic")
		}
	}()
	x.Resume()
}

func TestAbortStopsWithoutFinish(t *testing.T) {
	e := sim.New()
	finished := false
	x := NewExecution(e, GadgetProfile(), 2, func() { finished = true })
	e.At(100, func() { x.Abort() })
	e.Run()
	if finished {
		t.Fatal("onFinish fired after Abort")
	}
	if !x.Done() {
		t.Fatal("aborted execution should be done")
	}
}

func TestSetProcsOutOfRangePanics(t *testing.T) {
	e := sim.New()
	x := NewExecution(e, FTProfile(), 2, nil)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range SetProcs did not panic")
		}
	}()
	x.SetProcs(64)
}

func TestStartOutOfRangePanics(t *testing.T) {
	e := sim.New()
	defer func() {
		if recover() == nil {
			t.Error("out-of-range start did not panic")
		}
	}()
	NewExecution(e, FTProfile(), 1, nil)
}

func TestHistoryRecordsSteps(t *testing.T) {
	e := sim.New()
	g := GadgetProfile()
	x := NewExecution(e, g, 2, nil)
	e.At(100, func() { x.SetProcs(10) })
	e.Run()
	times, procs := x.History()
	if len(times) != 3 { // start, resize, finish(0)
		t.Fatalf("history has %d entries: %v %v", len(times), times, procs)
	}
	if procs[0] != 2 || procs[1] != 10 || procs[2] != 0 {
		t.Fatalf("history procs = %v", procs)
	}
	if times[1] != 100 {
		t.Fatalf("history times = %v", times)
	}
}

func TestDefaultReconfigCostsPositive(t *testing.T) {
	c := DefaultReconfigCosts()
	if c.RecruitPause <= 0 || c.SafePointDelay <= 0 || c.RedistributePause <= 0 {
		t.Fatalf("non-positive defaults: %+v", c)
	}
}

// Property (work conservation): for any sequence of resize instants, the
// total integrated work Σ rate(p_i)·Δt_i equals 1 at the finish instant.
func TestPropertyWorkConservation(t *testing.T) {
	g := GadgetProfile()
	f := func(resizes []uint8) bool {
		e := sim.New()
		var finishedAt float64 = -1
		x := NewExecution(e, g, 2, func() { finishedAt = e.Now() })
		tm := 0.0
		for _, r := range resizes {
			tm += float64(r%50) + 1
			at := tm
			p := 2 + int(r)%(g.Max-1)
			e.At(at, func() {
				if !x.Done() {
					x.SetProcs(p)
				}
			})
		}
		e.Run()
		if finishedAt < 0 {
			return false
		}
		// Re-integrate the recorded history independently.
		times, procs := x.History()
		work := 0.0
		for i := 0; i+1 < len(times); i++ {
			if procs[i] > 0 {
				work += (times[i+1] - times[i]) / g.Model.Time(procs[i])
			}
		}
		return math.Abs(work-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
