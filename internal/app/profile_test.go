package app

import (
	"testing"
	"testing/quick"
)

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{Rigid: "rigid", Moldable: "moldable", Malleable: "malleable", Class(9): "class(9)"} {
		if c.String() != want {
			t.Errorf("Class(%d) = %q", int(c), c.String())
		}
	}
}

func TestProfileValidate(t *testing.T) {
	ok := FTProfile()
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Profile{
		{Name: "", Model: FTModel(), Min: 1, Max: 2},
		{Name: "x", Model: nil, Min: 1, Max: 2},
		{Name: "x", Model: FTModel(), Min: 0, Max: 2},
		{Name: "x", Model: FTModel(), Min: 4, Max: 2},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("bad profile %d validated", i)
		}
	}
}

func TestLargestPow2LE(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 2, 4: 4, 5: 4, 7: 4, 8: 8, 31: 16, 32: 32, 100: 64}
	for n, want := range cases {
		if got := largestPow2LE(n); got != want {
			t.Errorf("largestPow2LE(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestFTAcceptGrow(t *testing.T) {
	ft := FTProfile()
	cases := []struct{ current, offer, want int }{
		{2, 1, 0},    // 2+1=3 → pow2 is 2 → no growth
		{2, 2, 2},    // 2+2=4 → grow to 4
		{2, 5, 2},    // 2+5=7 → pow2 is 4 → accept 2
		{4, 12, 12},  // 4+12=16 → accept all
		{8, 100, 24}, // capped at max 32
		{32, 4, 0},   // already at max
		{16, 0, 0},   // nothing offered
	}
	for _, c := range cases {
		if got := ft.AcceptGrow(c.current, c.offer); got != c.want {
			t.Errorf("FT AcceptGrow(%d,%d) = %d, want %d", c.current, c.offer, got, c.want)
		}
	}
}

func TestFTAcceptShrink(t *testing.T) {
	ft := FTProfile()
	cases := []struct{ current, request, want int }{
		{16, 1, 8},  // must step to pow2: 16→8 releases 8
		{16, 8, 8},  // exactly one step
		{16, 9, 12}, // 16-9=7 → pow2 4 → release 12
		{4, 1, 2},   // 4→2
		{2, 5, 0},   // at min already
		{8, 0, 0},
		{32, 30, 30}, // 32-30=2 → min, release 30
	}
	for _, c := range cases {
		if got := ft.AcceptShrink(c.current, c.request); got != c.want {
			t.Errorf("FT AcceptShrink(%d,%d) = %d, want %d", c.current, c.request, got, c.want)
		}
	}
}

func TestGadgetAcceptAnything(t *testing.T) {
	g := GadgetProfile()
	if got := g.AcceptGrow(2, 7); got != 7 {
		t.Fatalf("AcceptGrow = %d, want 7", got)
	}
	if got := g.AcceptGrow(40, 100); got != 6 {
		t.Fatalf("AcceptGrow capped = %d, want 6", got)
	}
	if got := g.AcceptShrink(10, 3); got != 3 {
		t.Fatalf("AcceptShrink = %d, want 3", got)
	}
	if got := g.AcceptShrink(4, 100); got != 2 {
		t.Fatalf("AcceptShrink to min = %d, want 2", got)
	}
}

func TestRigidAndMoldableProfiles(t *testing.T) {
	r := RigidProfile("r", FTModel(), 2)
	if r.Class != Rigid || r.Min != 2 || r.Max != 2 {
		t.Fatalf("rigid profile: %+v", r)
	}
	if got := r.AcceptGrow(2, 5); got != 0 {
		t.Fatal("rigid job should never grow")
	}
	if got := r.AcceptShrink(2, 1); got != 0 {
		t.Fatal("rigid job should never shrink")
	}
	m := MoldableProfile("m", GadgetModel(), 2, 16)
	if m.Class != Moldable || m.Min != 2 || m.Max != 16 {
		t.Fatalf("moldable profile: %+v", m)
	}
}

// Property: FT's size after any grow/shrink sequence stays a power of two
// within [2,32].
func TestPropertyFTSizeAlwaysPow2(t *testing.T) {
	ft := FTProfile()
	isPow2 := func(n int) bool { return n >= 1 && n&(n-1) == 0 }
	type op struct {
		Grow bool
		N    uint8
	}
	f := func(ops []op) bool {
		size := 2
		for _, o := range ops {
			amount := int(o.N%40) + 1
			if o.Grow {
				size += ft.AcceptGrow(size, amount)
			} else {
				size -= ft.AcceptShrink(size, amount)
			}
			if !isPow2(size) || size < 2 || size > 32 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: AcceptGrow never exceeds the offer and never pushes past Max;
// AcceptShrink never drops below Min.
func TestPropertyAcceptBounds(t *testing.T) {
	profiles := []*Profile{FTProfile(), GadgetProfile()}
	f := func(curRaw, amtRaw uint8, grow bool, which bool) bool {
		p := profiles[0]
		if which {
			p = profiles[1]
		}
		current := p.Min + int(curRaw)%(p.Max-p.Min+1)
		amount := int(amtRaw % 64)
		if grow {
			a := p.AcceptGrow(current, amount)
			return a >= 0 && a <= amount && current+a <= p.Max
		}
		a := p.AcceptShrink(current, amount)
		return a >= 0 && current-a >= p.Min
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
