package backend

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"
)

// ring is the health-gated worker set: the full worker list in stable
// configuration order, plus a liveness bit per worker maintained by
// /healthz probes. Shard assignment always hashes over the full list —
// a worker's shard ownership never moves just because it flapped — but
// routing consults the health bits: an unhealthy or draining worker is
// skipped in favor of the next healthy one on the ring, and re-admitted
// the moment a probe sees it answer "ok" again.
//
// A worker that answers /healthz with anything but HTTP 200 and
// "status":"ok" is out: that includes "draining" (a worker in
// Server.Shutdown answers 503/"draining", so coordinators stop routing
// to it before its listener closes) and plain unreachability.
type ring struct {
	workers []string
	client  *http.Client
	log     *slog.Logger

	mu      sync.Mutex
	healthy map[string]bool

	// onTransition, when non-nil, observes health flips (metrics hook).
	onTransition func(worker string, healthy bool)

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// newRing starts with every worker healthy: routing must work before
// the first probe completes, and an optimistic start costs at most one
// failed dispatch (which the breaker and reroute paths absorb).
func newRing(workers []string, client *http.Client, log *slog.Logger) *ring {
	g := &ring{
		workers: workers,
		client:  client,
		log:     log,
		healthy: make(map[string]bool, len(workers)),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for _, w := range workers {
		g.healthy[w] = true
	}
	return g
}

// candidates returns the workers to try for a fingerprint, in order:
// the shard owner first (hashed over the FULL list, so ownership is
// stable across health flaps), then the rest of the ring in
// wrap-around order — filtered down to currently healthy workers.
// An empty slice means every worker is gated out and the caller goes
// straight to its fallback.
func (g *ring) candidates(hash string) []string {
	n := len(g.workers)
	owner := shardIndex(hash, n)
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		w := g.workers[(owner+i)%n]
		if g.healthy[w] {
			out = append(out, w)
		}
	}
	return out
}

// healthyCount reports how many workers are currently admitted.
func (g *ring) healthyCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, ok := range g.healthy {
		if ok {
			n++
		}
	}
	return n
}

// healthyWorkers snapshots the admitted workers in ring order.
func (g *ring) healthyWorkers() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(g.workers))
	for _, w := range g.workers {
		if g.healthy[w] {
			out = append(out, w)
		}
	}
	return out
}

// setHealthy flips one worker's bit, reporting transitions.
func (g *ring) setHealthy(worker string, ok bool) {
	g.mu.Lock()
	was := g.healthy[worker]
	g.healthy[worker] = ok
	g.mu.Unlock()
	if was == ok {
		return
	}
	if g.onTransition != nil {
		g.onTransition(worker, ok)
	}
	if ok {
		g.log.Info("backend: worker re-admitted to ring", "worker", worker)
	} else {
		g.log.Warn("backend: worker dropped from ring", "worker", worker)
	}
}

// healthzStatus is the part of a worker's /healthz body the ring reads.
type healthzStatus struct {
	Status string `json:"status"`
}

// probe asks one worker's /healthz whether it can take work.
func (g *ring) probe(ctx context.Context, worker string) bool {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, worker+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return false
	}
	var hz healthzStatus
	if err := json.Unmarshal(body, &hz); err != nil {
		return false
	}
	return hz.Status == "ok"
}

// checkAll runs one probe pass over every worker.
func (g *ring) checkAll(ctx context.Context) {
	for _, w := range g.workers {
		g.setHealthy(w, g.probe(ctx, w))
	}
}

// start launches the background poll loop (no-op for interval <= 0).
func (g *ring) start(interval time.Duration) {
	if interval <= 0 {
		close(g.done)
		return
	}
	go func() {
		defer close(g.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				g.checkAll(context.Background())
			case <-g.stop:
				return
			}
		}
	}()
}

// shutdown stops the poll loop and waits for it to exit.
func (g *ring) shutdown() {
	g.stopOnce.Do(func() { close(g.stop) })
	<-g.done
}
