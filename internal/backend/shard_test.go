package backend

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/experiment"
)

// TestShardIndexStable pins the shard function's contract: pure in the
// fingerprint, always in range, and not constant over distinct hashes
// (so multiple workers actually share a sweep).
func TestShardIndexStable(t *testing.T) {
	hashes := []string{
		"0000000000000000000000000000000000000000000000000000000000000000",
		"9f86d081884c7d659a2feaa0c55ad015a3bf4f1b2b0b822cd15d6c15b0f00a08",
		"2c26b46b68ffc68ff99b453c1d30413413422d706483bfa0f98a5e886266e7ae",
		"fcde2b2edba56bf408601fb721fe9b5c338d10ee429ea04fae5511b68fbf8fb9",
	}
	seen := map[int]bool{}
	for _, h := range hashes {
		for _, n := range []int{1, 2, 3, 7} {
			i := shardIndex(h, n)
			if i < 0 || i >= n {
				t.Fatalf("shardIndex(%s, %d) = %d out of range", h[:8], n, i)
			}
			if j := shardIndex(h, n); j != i {
				t.Fatalf("shardIndex not deterministic: %d then %d", i, j)
			}
		}
		seen[shardIndex(h, 4)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("4 distinct hashes over 4 workers all landed on the same shard: %v", seen)
	}
}

// TestShardAssignmentOfCISmokeConfigs pins the exact shard each config
// of the koalad-multinode-smoke and koalad-chaos-smoke CI jobs lands on
// with two workers: the jobs assert per-worker dispatch counters from
// these assignments, so a change to the shard function or the
// fingerprint must fail here, in `go test`, not as an obscure CI
// counter mismatch.
func TestShardAssignmentOfCISmokeConfigs(t *testing.T) {
	smoke := func(seed int) string {
		return fmt.Sprintf(`{"workload":{"name":"smoke","jobs":6,"inter_arrival":30,"malleable_fraction":1,"initial_size":2,"rigid_size":2},"grid":{"clusters":[{"name":"A","nodes":48},{"name":"B","nodes":32}]},"no_background":true,"runs":2,"seed":%d}`, seed)
	}
	// seed -> worker index in the jobs' two-worker topology (seeds 10
	// and 16 are the dead-worker shards: they must map to the worker
	// the jobs kill, so the coordinator has to reroute them).
	want := map[int]int{7: 1, 8: 0, 10: 1, 16: 1}
	for seed, shard := range want {
		spec, err := experiment.DecodeConfigSpec(strings.NewReader(smoke(seed)))
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := spec.Config()
		if err != nil {
			t.Fatal(err)
		}
		hash, err := experiment.Fingerprint(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := shardIndex(hash, 2); got != shard {
			t.Errorf("CI smoke config seed %d shards to worker %d, the CI job assumes %d — update .github/workflows/ci.yml",
				seed, got, shard)
		}
	}
}
