package backend_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/cluster"
	"repro/internal/experiment"
	"repro/internal/server"
	"repro/internal/workload"
)

// testLogger routes a backend's structured log lines into the test log.
func testLogger(t *testing.T) *slog.Logger {
	return slog.New(slog.NewTextHandler(testWriter{t}, nil))
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

// testConfig is a seconds-fast point: 4 jobs, 2 replications, a
// two-cluster grid, no background load.
func testConfig(seed uint64) experiment.Config {
	return experiment.Config{
		Workload: workload.Spec{
			Name: "bk", Jobs: 4, InterArrival: 30,
			MalleableFraction: 1, InitialSize: 2, RigidSize: 2, Seed: seed,
		},
		Grid: func() *cluster.Multicluster {
			return cluster.NewMulticluster(cluster.New("A", 48), cluster.New("B", 32))
		},
		NoBackground: true,
		Runs:         2,
		Seed:         seed,
		Parallelism:  1,
	}
}

// encode is the byte-level equivalence probe: two results are "the
// same" exactly when their canonical summary encodings match.
func encode(t *testing.T, res *experiment.StreamResult) []byte {
	t.Helper()
	b, err := experiment.EncodeSummary(res.Summary())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// newWorker starts a koalad core as an HTTP worker.
func newWorker(t *testing.T) (*server.Server, *httptest.Server) {
	t.Helper()
	s := server.New(server.Options{Role: "worker"})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

// workerRuns asks a worker how many runs it holds, via its public list
// endpoint.
func workerRuns(t *testing.T, ts *httptest.Server) int {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Experiments []json.RawMessage `json:"experiments"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	return len(list.Experiments)
}

// TestLocalMatchesRunStream pins the refactor's no-op guarantee: the
// Local backend is the same engine RunStream drives.
func TestLocalMatchesRunStream(t *testing.T) {
	cfg := testConfig(7)
	direct, err := experiment.RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	viaBackend, err := backend.Local{}.RunPoint(context.Background(), cfg, experiment.StreamHooks{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, direct), encode(t, viaBackend)) {
		t.Fatal("backend.Local result diverges from experiment.RunStream")
	}
	if h := (backend.Local{}).Health(context.Background()); !h.Healthy || h.Workers != 1 {
		t.Fatalf("local health = %+v", h)
	}
}

// TestRemoteSingleWorkerByteIdentical is the cross-backend equivalence
// core: a point executed on a remote worker daemon produces the exact
// summary bytes the in-process pool does, and streams per-replication
// progress through the same hooks.
func TestRemoteSingleWorkerByteIdentical(t *testing.T) {
	_, ts := newWorker(t)
	rb, err := backend.NewRemote(backend.RemoteOptions{Workers: []string{ts.URL}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(7)
	local, err := experiment.RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var done atomic.Int64
	remote, err := rb.RunPoint(context.Background(), cfg, experiment.StreamHooks{
		OnDone: func(experiment.Replication) { done.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, local), encode(t, remote)) {
		t.Fatalf("remote summary diverges from local:\nlocal:  %s\nremote: %s",
			encode(t, local), encode(t, remote))
	}
	if done.Load() != int64(cfg.Runs) {
		t.Fatalf("OnDone fired %d times, want %d", done.Load(), cfg.Runs)
	}
	if st := rb.Stats(); st.Dispatched != 1 || st.RemoteDone != 1 || st.Failovers != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// The remote result exposes the same accessors the local one does.
	if remote.Jobs() != local.Jobs() || remote.MeanExecution() != local.MeanExecution() ||
		remote.MeanResponse() != local.MeanResponse() || remote.Malleable() != local.Malleable() {
		t.Fatal("remote result accessors diverge from local")
	}
	if h := rb.Health(context.Background()); !h.Healthy || h.Workers != 1 {
		t.Fatalf("remote health = %+v", h)
	}
}

// TestRemoteDedupesByFingerprint pins the store/cache dedupe: the same
// point dispatched twice simulates once — the worker answers the
// second request from its content-addressed state.
func TestRemoteDedupesByFingerprint(t *testing.T) {
	_, ts := newWorker(t)
	rb, err := backend.NewRemote(backend.RemoteOptions{Workers: []string{ts.URL}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(3)
	first, err := rb.RunPoint(context.Background(), cfg, experiment.StreamHooks{})
	if err != nil {
		t.Fatal(err)
	}
	if n := workerRuns(t, ts); n != 1 {
		t.Fatalf("worker runs after first dispatch = %d, want 1", n)
	}
	second, err := rb.RunPoint(context.Background(), cfg, experiment.StreamHooks{})
	if err != nil {
		t.Fatal(err)
	}
	if n := workerRuns(t, ts); n != 1 {
		t.Fatalf("worker re-simulated a deduped point: %d runs", n)
	}
	if !bytes.Equal(encode(t, first), encode(t, second)) {
		t.Fatal("deduped answer diverges from the simulated one")
	}
}

// TestRemoteFailoverUnreachableWorker: a worker that cannot even be
// reached at submit time fails the point over to the local backend,
// byte-identically.
func TestRemoteFailoverUnreachableWorker(t *testing.T) {
	rb, err := backend.NewRemote(backend.RemoteOptions{
		// A closed port: connection refused at submit.
		Workers: []string{"http://127.0.0.1:1"},
		Log:     testLogger(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(11)
	local, err := experiment.RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rb.RunPoint(context.Background(), cfg, experiment.StreamHooks{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, local), encode(t, res)) {
		t.Fatal("failover result diverges from local")
	}
	if st := rb.Stats(); st.Failovers != 1 || st.RemoteDone != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if h := rb.Health(context.Background()); h.Healthy || h.Workers != 0 {
		t.Fatalf("health of unreachable worker = %+v", h)
	}
}

// TestRemoteFailoverMidStreamDeath: a worker that dies after streaming
// part of the run falls back to local execution and still produces the
// byte-identical summary. Retries are disabled to pin the bare
// failover path (the retry/reroute ladder has its own tests in
// faultinjection_test.go); replications the dead worker already
// reported fire their hooks again — documented, and harmless to the
// result.
func TestRemoteFailoverMidStreamDeath(t *testing.T) {
	dying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, `{"type":"accepted","id":"exp-1"}`)
		fmt.Fprintln(w, `{"type":"replication","rep":0,"seed":11,"jobs":4}`)
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler) // sever the connection mid-stream
	}))
	defer dying.Close()

	rb, err := backend.NewRemote(backend.RemoteOptions{
		Workers: []string{dying.URL},
		Log:     testLogger(t),
		Retry:   backend.RetryPolicy{MaxRetries: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(11)
	local, err := experiment.RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var done atomic.Int64
	res, err := rb.RunPoint(context.Background(), cfg, experiment.StreamHooks{
		OnDone: func(experiment.Replication) { done.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, local), encode(t, res)) {
		t.Fatal("mid-stream failover result diverges from local")
	}
	if st := rb.Stats(); st.Failovers != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// One replication streamed before the death + the full local rerun.
	if done.Load() != int64(cfg.Runs)+1 {
		t.Fatalf("OnDone fired %d times, want %d", done.Load(), cfg.Runs+1)
	}
}

// TestRemoteReadsOversizedSummaryLines: the terminal summary event
// embeds every replication, so a many-replication point produces an
// NDJSON line of several MB. The reader must deliver it whole — a
// fixed line cap would discard a fully simulated result and re-run
// the point locally.
func TestRemoteReadsOversizedSummaryLines(t *testing.T) {
	cfg := testConfig(7)
	local, err := experiment.RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum := local.Summary()
	// Inflate the replication list far beyond the old 1 MiB scanner
	// cap (~2k reps ≈ 0.3 MB each... pad with copies of rep 0).
	pad := sum.Replications[0]
	for len(sum.Replications) < 40000 {
		sum.Replications = append(sum.Replications, pad)
	}
	sumJSON, err := experiment.EncodeSummary(sum)
	if err != nil {
		t.Fatal(err)
	}
	if len(sumJSON) < 4<<20 {
		t.Fatalf("test summary too small to prove the point: %d bytes", len(sumJSON))
	}
	fat := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, `{"type":"accepted","id":"exp-1"}`)
		fmt.Fprintf(w, `{"type":"summary","id":"exp-1","summary":%s}`+"\n", sumJSON)
	}))
	defer fat.Close()

	rb, err := backend.NewRemote(backend.RemoteOptions{Workers: []string{fat.URL}, Log: testLogger(t)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rb.RunPoint(context.Background(), cfg, experiment.StreamHooks{})
	if err != nil {
		t.Fatal(err)
	}
	if st := rb.Stats(); st.Failovers != 0 || st.RemoteDone != 1 {
		t.Fatalf("oversized summary caused a failover: %+v", st)
	}
	if len(res.Replications) != 40000 {
		t.Fatalf("replications = %d, want the inflated 40000", len(res.Replications))
	}
	got, err := experiment.EncodeSummary(res.Summary())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, sumJSON) {
		t.Fatal("oversized summary did not round-trip byte-identically")
	}
}

// TestRemoteSweepWithFailoverRace is the race-enabled dispatcher test:
// a sweep of points dispatched concurrently through one Remote whose
// worker set mixes a live daemon and a dead address. Every point —
// whether it executed on the worker or failed over — must match the
// all-local sweep byte for byte, in order.
func TestRemoteSweepWithFailoverRace(t *testing.T) {
	_, live := newWorker(t)
	rb, err := backend.NewRemote(backend.RemoteOptions{
		Workers: []string{live.URL, "http://127.0.0.1:1"},
		Log:     testLogger(t),
	})
	if err != nil {
		t.Fatal(err)
	}

	combos := []experiment.Combo{
		{Policy: "FPSMA", Label: "FPSMA/bk", Workload: func(seed uint64) workload.Spec { return testConfig(seed).Workload }},
		{Policy: "EGS", Label: "EGS/bk", Workload: func(seed uint64) workload.Spec { return testConfig(seed).Workload }},
	}
	base := testConfig(5)

	serial, err := experiment.RunSetStream(context.Background(), "PRA", combos, base)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := experiment.RunSetStreamVia(context.Background(), rb, "PRA", combos, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(sharded) != len(serial) {
		t.Fatalf("results = %d, want %d", len(sharded), len(serial))
	}
	for i := range serial {
		if !bytes.Equal(encode(t, serial[i]), encode(t, sharded[i])) {
			t.Fatalf("combo %d diverges across backends", i)
		}
	}
	st := rb.Stats()
	if st.Dispatched != int64(len(combos)) || st.RemoteDone+st.Failovers != st.Dispatched {
		t.Fatalf("stats = %+v", st)
	}
}

// TestNewRemoteValidation pins fail-fast URL validation: malformed
// worker lists die at construction, not at first dispatch.
func TestNewRemoteValidation(t *testing.T) {
	for _, bad := range [][]string{
		nil,
		{""},
		{"   "},
		{"127.0.0.1:8081"},           // no scheme
		{"ftp://host:1"},             // wrong scheme
		{"http://"},                  // no host
		{"http://host:1/api"},        // path
		{"http://host:1?x=1"},        // query
		{"http://user:pw@host:1"},    // userinfo
		{"http://good:1", "::bad::"}, // one bad entry poisons the list
	} {
		if _, err := backend.NewRemote(backend.RemoteOptions{Workers: bad}); err == nil {
			t.Errorf("NewRemote(%q) accepted a malformed worker list", bad)
		}
	}
	rb, err := backend.NewRemote(backend.RemoteOptions{Workers: []string{" http://a:1 ", "https://b", "http://c:9/"}})
	if err != nil {
		t.Fatalf("NewRemote rejected valid workers: %v", err)
	}
	want := []string{"http://a:1", "https://b", "http://c:9"}
	got := rb.Workers()
	if len(got) != len(want) {
		t.Fatalf("workers = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("workers = %v, want %v", got, want)
		}
	}
}
