package backend

import (
	"context"

	"repro/internal/experiment"
)

// Local executes points in this process on the bounded replication
// pool (experiment's in-process PointRunner; cfg.Parallelism sizes the
// pool per point). It is the default backend of every driver, and the
// failover target of Remote. The zero value is ready to use.
type Local struct{}

// Name implements Backend.
func (Local) Name() string { return "local" }

// RunPoint implements Backend on the in-process pool.
func (Local) RunPoint(ctx context.Context, cfg experiment.Config, hooks experiment.StreamHooks) (*experiment.StreamResult, error) {
	return experiment.RunStreamContext(ctx, cfg, hooks)
}

// Health implements Backend: the process that asks is the process that
// runs, so Local is always healthy.
func (Local) Health(context.Context) Health {
	return Health{Healthy: true, Detail: "in-process", Workers: 1}
}
