package backend

// In-package unit tests for the resilience primitives: the retry
// policy's deterministic backoff, the error taxonomy, and the circuit
// breaker's state machine (driven by a fake clock). The end-to-end
// fault-schedule equivalence tests live in faultinjection_test.go.

import (
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
	"testing"
	"time"
)

// TestRetryDelayDeterministic pins the reproducible-retry-schedule
// contract: Delay is a pure function of (policy, fingerprint, attempt),
// so re-running a sweep under the same fault schedule replays the
// exact same backoff timeline.
func TestRetryDelayDeterministic(t *testing.T) {
	p := RetryPolicy{}.withDefaults()
	q := RetryPolicy{}.withDefaults() // a fresh value, no shared state
	hash := "9f86d081884c7d659a2feaa0c55ad015a3bf4f1b2b0b822cd15d6c15b0f00a08"
	for attempt := 0; attempt < 8; attempt++ {
		a, b := p.Delay(hash, attempt), q.Delay(hash, attempt)
		if a != b {
			t.Fatalf("attempt %d: delay not deterministic: %s vs %s", attempt, a, b)
		}
	}
	// Different fingerprints decorrelate: at least one attempt's delay
	// must differ, or the "jitter" is a constant.
	other := "2c26b46b68ffc68ff99b453c1d30413413422d706483bfa0f98a5e886266e7ae"
	same := true
	for attempt := 0; attempt < 8; attempt++ {
		if p.Delay(hash, attempt) != p.Delay(other, attempt) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two distinct fingerprints produced identical retry schedules — jitter is not keyed on the hash")
	}
}

// TestRetryDelayBounds: exponential growth from BaseDelay, capped at
// MaxDelay, jitter within [0.5, 1.0) of the uncapped step.
func TestRetryDelayBounds(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, MaxRetries: 10}.withDefaults()
	hash := "fcde2b2edba56bf408601fb721fe9b5c338d10ee429ea04fae5511b68fbf8fb9"
	for attempt := 0; attempt < 12; attempt++ {
		step := p.BaseDelay << attempt
		if step > p.MaxDelay || step <= 0 {
			step = p.MaxDelay
		}
		d := p.Delay(hash, attempt)
		if d < step/2 || d > step {
			t.Fatalf("attempt %d: delay %s outside [%s, %s]", attempt, d, step/2, step)
		}
	}
}

// TestRetryableErrorTaxonomy pins the classification the issue calls
// for: connect refused/reset, 429, 5xx and torn streams retry;
// rejected configs, schema mismatches and failed runs do not.
func TestRetryableErrorTaxonomy(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"connect refused", &net.OpError{Op: "dial", Err: syscall.ECONNREFUSED}, true},
		{"connection reset", &net.OpError{Op: "read", Err: syscall.ECONNRESET}, true},
		{"unexpected EOF mid-stream", &tornStreamError{reason: "stream died mid-read", err: io.ErrUnexpectedEOF}, true},
		{"partial JSON line", &tornStreamError{reason: "partial or garbled event line"}, true},
		{"missing terminal summary", &tornStreamError{reason: "stream ended without a summary"}, true},
		{"progress stall", &tornStreamError{reason: "no event for 30s"}, true},
		{"HTTP 429", &workerHTTPError{code: 429}, true},
		{"HTTP 503", &workerHTTPError{code: 503}, true},
		{"HTTP 500", &workerHTTPError{code: 500}, true},
		{"HTTP 400", &workerHTTPError{code: 400}, false},
		{"HTTP 404", &workerHTTPError{code: 404}, false},
		{"worker run failed", &terminalError{errors.New("worker run failed: boom")}, false},
		{"schema mismatch", &terminalError{errors.New("summary: unknown version")}, false},
		{"unknown error defaults retryable", errors.New("gremlins"), true},
	}
	for _, tc := range cases {
		if got := retryableError(tc.err); got != tc.want {
			t.Errorf("%s: retryable = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// fakeClock drives a breaker without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// TestBreakerStateMachine walks the closed -> open -> half-open ->
// closed cycle, including the failed-probe re-open.
func TestBreakerStateMachine(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	var transitions []string
	b := newBreaker(3, 5*time.Second)
	b.now = clk.now
	b.onTransition = func(from, to breakerState) {
		transitions = append(transitions, fmt.Sprintf("%s->%s", from, to))
	}

	// Two failures: still closed (threshold is 3).
	b.Failure()
	b.Failure()
	if st := b.State(); st != breakerClosed {
		t.Fatalf("state after 2 failures = %s, want closed", st)
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused a dispatch")
	}
	// A success clears the consecutive count.
	b.Success()
	b.Failure()
	b.Failure()
	if st := b.State(); st != breakerClosed {
		t.Fatalf("success did not reset the failure count")
	}
	// The third consecutive failure opens it.
	b.Failure()
	if st := b.State(); st != breakerOpen {
		t.Fatalf("state after threshold = %s, want open", st)
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a dispatch inside the cooldown")
	}
	// Cooldown elapses: exactly one probe gets through (half-open).
	clk.advance(6 * time.Second)
	if !b.Allow() {
		t.Fatal("open breaker refused the post-cooldown probe")
	}
	if st := b.State(); st != breakerHalfOpen {
		t.Fatalf("state after probe admission = %s, want half-open", st)
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second dispatch while the probe is in flight")
	}
	// The probe fails: back to open for another cooldown.
	b.Failure()
	if st := b.State(); st != breakerOpen {
		t.Fatalf("state after failed probe = %s, want open", st)
	}
	if b.Allow() {
		t.Fatal("re-opened breaker allowed a dispatch")
	}
	// Next cooldown, successful probe: closed again.
	clk.advance(6 * time.Second)
	if !b.Allow() {
		t.Fatal("second probe refused")
	}
	b.Success()
	if st := b.State(); st != breakerClosed {
		t.Fatalf("state after successful probe = %s, want closed", st)
	}

	want := []string{
		"closed->open", "open->half-open", "half-open->open",
		"open->half-open", "half-open->closed",
	}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
}

// TestBreakerDisabled: threshold <= 0 never opens and always allows —
// the -breaker-threshold -1 escape hatch.
func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(0, time.Second)
	for i := 0; i < 10; i++ {
		b.Failure()
	}
	if !b.Allow() || b.State() != breakerClosed {
		t.Fatal("disabled breaker tripped")
	}
	var nilB *breaker
	if !nilB.Allow() || nilB.State() != breakerClosed {
		t.Fatal("nil breaker tripped")
	}
	nilB.Success()
	nilB.Failure()
}
