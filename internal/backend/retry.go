package backend

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"time"
)

// RetryPolicy shapes the per-worker retry loop: capped exponential
// backoff with deterministic jitter. The jitter is seeded by the run's
// content fingerprint, not a PRNG — re-running the same sweep under the
// same fault schedule reproduces the exact retry timeline, which keeps
// chaos failures debuggable and retry-order effects out of the
// byte-identical-summaries contract.
type RetryPolicy struct {
	// MaxRetries is how many times a retryable failure is retried on
	// the same worker before the dispatcher moves on (reroute, then
	// local failover). 0 means the default (2); negative disables
	// retries entirely.
	MaxRetries int
	// BaseDelay is the first backoff step (default 50ms). Attempt n
	// waits BaseDelay<<n, capped at MaxDelay, scaled by the
	// deterministic jitter.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 2s).
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxRetries == 0 {
		p.MaxRetries = 2
	}
	if p.MaxRetries < 0 {
		p.MaxRetries = 0
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// Delay returns the backoff before retry `attempt` (0-based) of the
// run identified by fingerprint hash. Pure function: exponential in the
// attempt, capped, with a jitter factor in [0.5, 1.0) derived from
// FNV-1a over (hash, attempt) — deterministic per run, decorrelated
// across runs so a sweep's retries against one struggling worker do
// not synchronize into bursts.
func (p RetryPolicy) Delay(hash string, attempt int) time.Duration {
	d := p.BaseDelay
	for i := 0; i < attempt && d < p.MaxDelay; i++ {
		d <<= 1
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(hash))
	_, _ = h.Write([]byte{byte(attempt), byte(attempt >> 8)})
	frac := 0.5 + 0.5*float64(h.Sum64()%4096)/4096
	return time.Duration(float64(d) * frac)
}

// sleep waits out the backoff, or returns early with the context's
// error if the point is canceled mid-wait.
func (p RetryPolicy) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// The dispatch error taxonomy. Retryable errors are transient transport
// or availability trouble — the same worker may well answer the next
// attempt. Terminal errors would fail identically on every attempt
// (a rejected config, an incompatible summary schema, a run the worker
// executed and reported as failed), so retrying them only burns budget;
// the dispatcher goes straight to reroute/failover instead.
//
//   - transport errors (dial refused/reset, torn connection, stall):
//     retryable
//   - HTTP 429 and 5xx from the worker: retryable
//   - other HTTP statuses (4xx): terminal
//   - torn NDJSON (partial line, stream died mid-read, missing terminal
//     summary, reset mid-summary): retryable — the worker may have
//     crashed mid-run and recovered
//   - a worker "error" event or summary schema mismatch: terminal

// workerHTTPError is a non-200 answer from the worker's execute
// endpoint.
type workerHTTPError struct {
	code int
	msg  string
}

func (e *workerHTTPError) Error() string {
	return fmt.Sprintf("worker returned %d: %s", e.code, e.msg)
}

// tornStreamError is an NDJSON event stream that ended wrong: a read
// error mid-stream, a partial (unparseable) line, a clean EOF before
// the terminal summary, or a progress stall.
type tornStreamError struct {
	reason string
	err    error // underlying transport error, may be nil
}

func (e *tornStreamError) Error() string {
	if e.err != nil {
		return fmt.Sprintf("torn worker stream (%s): %v", e.reason, e.err)
	}
	return fmt.Sprintf("torn worker stream (%s)", e.reason)
}

func (e *tornStreamError) Unwrap() error { return e.err }

// terminalError marks an error the retry loop must not retry (it still
// falls through to reroute/local failover like any worker failure).
type terminalError struct{ err error }

func (e *terminalError) Error() string { return e.err.Error() }
func (e *terminalError) Unwrap() error { return e.err }

// retryableError classifies a runOn failure. Unknown error shapes
// default to retryable: the cost of a wasted retry is milliseconds, the
// cost of misclassifying a transient fault as terminal is losing the
// worker's store locality for the point.
func retryableError(err error) bool {
	var term *terminalError
	if errors.As(err, &term) {
		return false
	}
	var he *workerHTTPError
	if errors.As(err, &he) {
		return he.code == 429 || he.code >= 500
	}
	return true
}
