// Package backend is the execution substrate behind the experiment
// drivers and koalad: a Backend turns one experiment point (a config's
// full set of seeded replications) into its streaming result. The
// drivers in internal/experiment (RunStream*, RunSetStream*) and the
// koalad dispatcher are policy — what to run, in what order, what to
// do with the result; a Backend is mechanism — where the simulations
// actually execute.
//
// Two backends ship:
//
//   - Local runs points in this process on the bounded replication
//     pool (the PR-1 parallel sweep engine).
//   - Remote shards points across worker koalad daemons by the
//     config's content fingerprint, streams their NDJSON progress
//     back, and fails over to a fallback backend (normally Local)
//     when a worker is unreachable or dies mid-stream.
//
// Determinism is the package contract: the simulation is fully
// determined by the config, so every backend must produce a result
// whose Summary() encoding is byte-identical to Local's for the same
// config — regardless of shard assignment, failover, or whether a
// worker answered from its content-addressed store instead of
// simulating. The batch drivers (experiment.Run/RunSet) stay local
// only: they retain per-job records, which deliberately never cross
// the wire.
package backend

import (
	"context"

	"repro/internal/experiment"
)

// Health is a backend's capability/liveness report.
type Health struct {
	// Healthy reports whether the backend can currently accept points.
	Healthy bool
	// Detail is a human-readable capability line ("in-process", worker
	// reachability, ...).
	Detail string
	// Workers is the number of execution sites behind the backend: 1
	// for Local, the reachable worker count for Remote.
	Workers int
}

// Backend executes experiment points. Implementations must be safe for
// concurrent RunPoint calls.
type Backend interface {
	// Name identifies the backend in logs, metrics and /healthz.
	Name() string
	// RunPoint executes one point and returns its result. Hooks fire
	// per replication (possibly from multiple goroutines) exactly as
	// with experiment.RunStreamContext; on failover a replication may
	// be reported more than once, but the returned result is always
	// the complete, deterministic point.
	RunPoint(ctx context.Context, cfg experiment.Config, hooks experiment.StreamHooks) (*experiment.StreamResult, error)
	// Health reports whether the backend can take work right now.
	Health(ctx context.Context) Health
}
