package backend

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/experiment"
	"repro/internal/obs"
)

// ExecutePath is the internal worker endpoint Remote dispatches to: a
// koalad POSTs a ConfigSpec there and streams the run's NDJSON events
// back in the response body (see internal/server's handleExecute).
const ExecutePath = "/v1/runs/execute"

// RemoteOptions configure a Remote backend.
type RemoteOptions struct {
	// Workers are the worker daemons' base URLs (http://host:port).
	// Required, and validated by NewRemote — a malformed URL fails at
	// construction, not at first dispatch.
	Workers []string
	// Client issues the dispatch requests (default: a client with no
	// overall timeout — runs are long; cancellation comes from ctx).
	Client *http.Client
	// Fallback executes points whose worker failed (default Local{}).
	Fallback Backend
	// Log receives one structured record per dispatch failure/failover
	// (optional; nil discards).
	Log *slog.Logger
	// Metrics, when non-nil, registers the per-worker dispatch RTT
	// histogram on the shared registry.
	Metrics *obs.Registry
}

// Remote shards experiment points across worker koalad daemons by the
// config's canonical fingerprint: the same point always lands on the
// same worker, so a worker's content-addressed store accumulates
// exactly the shard it owns and answers re-submissions without
// simulating. A failed or unreachable worker fails the point over to
// the fallback backend; the result is byte-identical either way, so
// failover costs time, never correctness.
type Remote struct {
	workers  []string
	client   *http.Client
	fallback Backend
	log      *slog.Logger
	rtt      *obs.HistogramVec // dispatch round-trip per worker, nil without Metrics

	dispatched atomic.Int64 // points sent to a worker
	remoteDone atomic.Int64 // points completed by a worker
	failovers  atomic.Int64 // points re-run on the fallback
}

// NewRemote validates the worker URLs and assembles the backend.
func NewRemote(opts RemoteOptions) (*Remote, error) {
	if len(opts.Workers) == 0 {
		return nil, fmt.Errorf("backend: remote needs at least one worker URL")
	}
	workers := make([]string, 0, len(opts.Workers))
	for _, raw := range opts.Workers {
		w := strings.TrimSpace(raw)
		if w == "" {
			return nil, fmt.Errorf("backend: empty worker URL")
		}
		u, err := url.Parse(w)
		if err != nil {
			return nil, fmt.Errorf("backend: worker URL %q: %v", w, err)
		}
		if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" || u.User != nil ||
			u.RawQuery != "" || u.Fragment != "" || (u.Path != "" && u.Path != "/") {
			return nil, fmt.Errorf("backend: worker URL %q: need http(s)://host[:port] with no path or query", w)
		}
		workers = append(workers, u.Scheme+"://"+u.Host)
	}
	r := &Remote{
		workers:  workers,
		client:   opts.Client,
		fallback: opts.Fallback,
		log:      opts.Log,
	}
	if r.client == nil {
		r.client = &http.Client{}
	}
	if r.fallback == nil {
		r.fallback = Local{}
	}
	if r.log == nil {
		r.log = obs.NopLogger()
	}
	if opts.Metrics != nil {
		v := opts.Metrics.HistogramVec("koalad_dispatch_rtt_seconds",
			"Dispatch round-trip per worker: POST to terminal event (failures included).",
			"worker", obs.DefaultLatencyBuckets())
		r.rtt = &v
	}
	return r, nil
}

// Name implements Backend.
func (r *Remote) Name() string { return "remote" }

// Workers returns the validated worker base URLs.
func (r *Remote) Workers() []string { return append([]string(nil), r.workers...) }

// shardIndex maps a fingerprint onto a worker. FNV-1a over the hex
// hash: stable across processes and restarts, so every coordinator
// agrees where a config lives.
func shardIndex(hash string, n int) int {
	h := fnv.New64a()
	_, _ = io.WriteString(h, hash)
	return int(h.Sum64() % uint64(n))
}

// RunPoint implements Backend: fingerprint, shard, dispatch, and on
// any worker failure — unreachable at submit, non-200, or mid-stream
// death — fall back to the local backend. Hooks already fired for
// replications the worker streamed before dying fire again during the
// fallback run; the returned result is the complete point either way.
func (r *Remote) RunPoint(ctx context.Context, cfg experiment.Config, hooks experiment.StreamHooks) (*experiment.StreamResult, error) {
	hash, err := experiment.Fingerprint(cfg)
	if err != nil {
		return nil, err
	}
	worker := r.workers[shardIndex(hash, len(r.workers))]
	r.dispatched.Add(1)
	res, err := r.runOn(ctx, worker, cfg, hooks)
	if err == nil {
		r.remoteDone.Add(1)
		return res, nil
	}
	if ctx.Err() != nil {
		// The point was canceled, not the worker broken; surface it.
		return nil, err
	}
	r.failovers.Add(1)
	r.log.Warn("backend: worker failed; failing over",
		"worker", worker, "config", cfg.Name, "hash", shortHash(hash),
		"err", err, "fallback", r.fallback.Name())
	return r.fallback.RunPoint(ctx, cfg, hooks)
}

func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}

// wireEvent is the union of the worker's NDJSON event shapes; unknown
// event types and extra fields are skipped, so workers may grow their
// event vocabulary without breaking older coordinators.
type wireEvent struct {
	Type    string          `json:"type"`
	Error   string          `json:"error"`
	Summary json.RawMessage `json:"summary"`
	Spans   []obs.Span      `json:"spans"`
	experiment.Replication
}

// runOn executes one point on a worker: POST the resolved ConfigSpec,
// replay the run's NDJSON events into hooks, and rebuild the result
// from the terminal summary. Any transport or protocol trouble returns
// an error — the caller owns failover.
func (r *Remote) runOn(ctx context.Context, worker string, cfg experiment.Config, hooks experiment.StreamHooks) (*experiment.StreamResult, error) {
	spec, err := experiment.SpecFromConfig(cfg)
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, worker+ExecutePath, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	// Propagate the dispatch span identity so the worker's spans parent
	// under this coordinator's trace (no-op without a span context).
	if sc, ok := obs.SpanContextFrom(ctx); ok {
		sc.InjectHTTP(req)
	}
	if r.rtt != nil {
		start := time.Now()
		defer func() { r.rtt.With(worker).Observe(time.Since(start).Seconds()) }()
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return nil, fmt.Errorf("worker returned %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}

	// Read lines with a plain buffered reader, not a Scanner: the
	// terminal summary event embeds every replication, so a large point
	// (thousands of runs) produces a line far beyond any fixed Scanner
	// cap — and truncating it would throw away a fully simulated result
	// and re-run the whole point locally.
	br := bufio.NewReaderSize(resp.Body, 64<<10)
	for {
		line, err := br.ReadBytes('\n')
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("worker stream died: %w", err)
		}
		atEOF := err == io.EOF
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			if atEOF {
				break
			}
			continue
		}
		var ev wireEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("bad event line from worker: %w", err)
		}
		switch ev.Type {
		case "replication":
			// The worker reports completions only; synthesize the start
			// so OnStart/OnDone gauges stay paired.
			if hooks.OnStart != nil {
				hooks.OnStart(ev.Rep, ev.Seed)
			}
			if hooks.OnDone != nil {
				hooks.OnDone(ev.Replication)
			}
		case "trace":
			// The worker's execution spans, streamed just before the
			// terminal event; deliver them to the coordinator's trace.
			if sink := obs.SpanSinkFrom(ctx); sink != nil && len(ev.Spans) > 0 {
				sink(ev.Spans)
			}
		case "summary":
			// Strict summary decode: a worker speaking an incompatible
			// schema is a failover, not a silent half-result.
			sum, err := experiment.DecodeSummary(ev.Summary)
			if err != nil {
				return nil, err
			}
			return experiment.StreamResultFromSummary(cfg, sum), nil
		case "error":
			return nil, fmt.Errorf("worker run failed: %s", ev.Error)
		}
		if atEOF {
			break
		}
	}
	return nil, fmt.Errorf("worker stream ended without a summary")
}

// Health implements Backend: probe every worker's /healthz and report
// how many answered.
func (r *Remote) Health(ctx context.Context) Health {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	up := 0
	var detail []string
	for _, w := range r.workers {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, w+"/healthz", nil)
		if err != nil {
			detail = append(detail, w+": "+err.Error())
			continue
		}
		resp, err := r.client.Do(req)
		if err != nil {
			detail = append(detail, w+": unreachable")
			continue
		}
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			up++
		} else {
			detail = append(detail, fmt.Sprintf("%s: status %d", w, resp.StatusCode))
		}
	}
	h := Health{Healthy: up > 0, Workers: up}
	if len(detail) == 0 {
		h.Detail = fmt.Sprintf("%d/%d workers up", up, len(r.workers))
	} else {
		h.Detail = fmt.Sprintf("%d/%d workers up (%s)", up, len(r.workers), strings.Join(detail, "; "))
	}
	return h
}

// RemoteStats are the dispatch counters koalad exposes on /metrics.
type RemoteStats struct {
	Workers    int   // configured workers
	Dispatched int64 // points sent to a worker
	RemoteDone int64 // points completed by a worker
	Failovers  int64 // points re-run on the fallback backend
}

// Stats snapshots the dispatch counters.
func (r *Remote) Stats() RemoteStats {
	return RemoteStats{
		Workers:    len(r.workers),
		Dispatched: r.dispatched.Load(),
		RemoteDone: r.remoteDone.Load(),
		Failovers:  r.failovers.Load(),
	}
}
