package backend

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/experiment"
	"repro/internal/obs"
)

// ExecutePath is the internal worker endpoint Remote dispatches to: a
// koalad POSTs a ConfigSpec there and streams the run's NDJSON events
// back in the response body (see internal/server's handleExecute).
const ExecutePath = "/v1/runs/execute"

// RemoteOptions configure a Remote backend.
type RemoteOptions struct {
	// Workers are the worker daemons' base URLs (http://host:port).
	// Required, and validated by NewRemote — a malformed URL fails at
	// construction, not at first dispatch.
	Workers []string
	// Client issues the dispatch requests. Nil builds a client with
	// dial, TLS-handshake and response-header timeouts (see
	// DialTimeout / ResponseHeaderTimeout) but no overall deadline —
	// runs are long; per-request liveness comes from the progress-idle
	// watchdog and cancellation from ctx.
	Client *http.Client
	// Fallback executes points whose every worker candidate failed
	// (default Local{}).
	Fallback Backend
	// Log receives one structured record per retry, reroute, breaker
	// transition, ring flip and failover (optional; nil discards).
	Log *slog.Logger
	// Metrics, when non-nil, registers the resilience metric families
	// (dispatch RTT, retries, breaker state, ring membership) on the
	// shared registry.
	Metrics *obs.Registry
	// Retry shapes the per-worker retry loop (zero value = defaults:
	// 2 retries, 50ms base, 2s cap; MaxRetries < 0 disables).
	Retry RetryPolicy
	// BreakerThreshold is how many consecutive failures open a
	// worker's circuit breaker (0 = default 3; negative disables the
	// breakers).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker refuses dispatches
	// before letting one probe through (default 5s).
	BreakerCooldown time.Duration
	// HealthInterval is the ring's /healthz poll period. 0 disables
	// background polling (the ring still gates on breaker state and
	// can be refreshed explicitly via RefreshHealth).
	HealthInterval time.Duration
	// DialTimeout bounds connection establishment of the default
	// client (default 5s). Ignored when Client is set.
	DialTimeout time.Duration
	// ResponseHeaderTimeout bounds the wait for a worker's response
	// headers on the default client (default 30s) — a worker that
	// accepts the connection and then hangs before answering is
	// detected here. Ignored when Client is set.
	ResponseHeaderTimeout time.Duration
	// IdleEventTimeout is the progress-idle watchdog on follow
	// streams: if no NDJSON event arrives for this long the dispatch
	// is aborted and classified retryable. Reset on every event, so
	// long healthy runs that keep reporting replications are
	// unaffected; a stalled worker is detected within one period.
	// 0 = default 2m; negative disables.
	IdleEventTimeout time.Duration
}

// Remote shards experiment points across worker koalad daemons by the
// config's canonical fingerprint: the same point always lands on the
// same worker, so a worker's content-addressed store accumulates
// exactly the shard it owns and answers re-submissions without
// simulating.
//
// Failure handling is layered (see docs/resilience.md):
//
//  1. Retryable failures (connect refused/reset, 429/5xx, torn or
//     stalled NDJSON) retry on the owning worker with capped
//     exponential backoff and fingerprint-seeded deterministic jitter.
//  2. A worker whose consecutive failures cross the breaker threshold
//     is circuit-broken: dispatches skip it without spending retry
//     budget until a cooldown probe succeeds.
//  3. A point whose owner is broken, gated out by the health ring
//     (unreachable or draining), or still failing after retries,
//     reroutes to the next healthy worker on the ring.
//  4. Only when every worker candidate is exhausted does the point
//     fail over to the fallback backend (normally Local).
//
// The result is byte-identical on every path — retries, reroutes and
// failover cost time, never correctness.
type Remote struct {
	workers  []string
	client   *http.Client
	fallback Backend
	log      *slog.Logger
	retry    RetryPolicy
	idle     time.Duration
	breakers map[string]*breaker
	ring     *ring

	rtt        *obs.HistogramVec // dispatch round-trip per worker, nil without Metrics
	retriesVec obs.CounterVec    // per-worker retry counter, valid iff hasMetrics
	hasMetrics bool

	dispatched   atomic.Int64 // points entering RunPoint
	remoteDone   atomic.Int64 // points completed by a worker
	failovers    atomic.Int64 // points re-run on the fallback
	retries      atomic.Int64 // same-worker retry attempts
	reroutes     atomic.Int64 // attempts moved to a non-owner worker
	breakerOpens atomic.Int64 // closed/half-open -> open transitions
}

// NewRemote validates the worker URLs and assembles the backend. Call
// Close when done if HealthInterval is set (it stops the poll loop).
func NewRemote(opts RemoteOptions) (*Remote, error) {
	if len(opts.Workers) == 0 {
		return nil, fmt.Errorf("backend: remote needs at least one worker URL")
	}
	workers := make([]string, 0, len(opts.Workers))
	for _, raw := range opts.Workers {
		w := strings.TrimSpace(raw)
		if w == "" {
			return nil, fmt.Errorf("backend: empty worker URL")
		}
		u, err := url.Parse(w)
		if err != nil {
			return nil, fmt.Errorf("backend: worker URL %q: %v", w, err)
		}
		if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" || u.User != nil ||
			u.RawQuery != "" || u.Fragment != "" || (u.Path != "" && u.Path != "/") {
			return nil, fmt.Errorf("backend: worker URL %q: need http(s)://host[:port] with no path or query", w)
		}
		workers = append(workers, u.Scheme+"://"+u.Host)
	}
	r := &Remote{
		workers:  workers,
		client:   opts.Client,
		fallback: opts.Fallback,
		log:      opts.Log,
		retry:    opts.Retry.withDefaults(),
		idle:     opts.IdleEventTimeout,
	}
	if r.client == nil {
		dial := opts.DialTimeout
		if dial <= 0 {
			dial = 5 * time.Second
		}
		header := opts.ResponseHeaderTimeout
		if header <= 0 {
			header = 30 * time.Second
		}
		// No overall client timeout — runs are long — but every phase
		// that can hang silently gets its own bound: dial, TLS
		// handshake, response headers. Stream liveness after the
		// headers is the idle watchdog's job.
		r.client = &http.Client{Transport: &http.Transport{
			Proxy:                 http.ProxyFromEnvironment,
			DialContext:           (&net.Dialer{Timeout: dial, KeepAlive: 30 * time.Second}).DialContext,
			TLSHandshakeTimeout:   dial,
			ResponseHeaderTimeout: header,
			MaxIdleConnsPerHost:   4,
			IdleConnTimeout:       90 * time.Second,
		}}
	}
	if r.idle == 0 {
		r.idle = 2 * time.Minute
	}
	if r.fallback == nil {
		r.fallback = Local{}
	}
	if r.log == nil {
		r.log = obs.NopLogger()
	}

	threshold := opts.BreakerThreshold
	if threshold == 0 {
		threshold = 3
	}
	if threshold < 0 {
		threshold = 0 // disables (breaker.Allow always true)
	}
	cooldown := opts.BreakerCooldown
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}

	var breakerStates obs.GaugeVec
	var breakerOpens, ringFlips obs.CounterVec
	if opts.Metrics != nil {
		r.hasMetrics = true
		v := opts.Metrics.HistogramVec("koalad_dispatch_rtt_seconds",
			"Dispatch round-trip per worker: POST to terminal event (failures included).",
			"worker", obs.DefaultLatencyBuckets())
		r.rtt = &v
		r.retriesVec = opts.Metrics.CounterVec("koalad_worker_retries_total",
			"Same-worker dispatch retries after a retryable failure.", "worker")
		breakerOpens = opts.Metrics.CounterVec("koalad_breaker_opens_total",
			"Circuit-breaker open transitions per worker.", "worker")
		breakerStates = opts.Metrics.GaugeVec("koalad_breaker_state",
			"Circuit-breaker state per worker (0 closed, 1 open, 2 half-open).", "worker")
		ringFlips = opts.Metrics.CounterVec("koalad_ring_transitions_total",
			"Health-ring admissions and ejections per worker.", "worker")
		opts.Metrics.GaugeFunc("koalad_ring_healthy_workers",
			"Workers currently admitted by the health-gated ring.",
			func() float64 { return float64(r.ring.healthyCount()) })
	}

	r.breakers = make(map[string]*breaker, len(workers))
	for _, w := range workers {
		w := w
		b := newBreaker(threshold, cooldown)
		b.onTransition = func(from, to breakerState) {
			if to == breakerOpen {
				r.breakerOpens.Add(1)
				if r.hasMetrics {
					breakerOpens.With(w).Inc()
				}
				r.log.Warn("backend: circuit breaker opened", "worker", w)
			} else {
				r.log.Info("backend: circuit breaker "+to.String(), "worker", w)
			}
			if r.hasMetrics {
				breakerStates.With(w).Set(int64(to))
			}
		}
		r.breakers[w] = b
	}

	r.ring = newRing(workers, r.client, r.log)
	if r.hasMetrics {
		r.ring.onTransition = func(worker string, healthy bool) {
			ringFlips.With(worker).Inc()
		}
	}
	r.ring.start(opts.HealthInterval)
	return r, nil
}

// Close stops the ring's background health polling (safe to call even
// when polling was never started, and more than once).
func (r *Remote) Close() { r.ring.shutdown() }

// RefreshHealth runs one synchronous /healthz probe pass over every
// worker, updating ring membership — the explicit alternative to
// background polling (tests, or a caller that wants probe-on-demand).
func (r *Remote) RefreshHealth(ctx context.Context) { r.ring.checkAll(ctx) }

// HealthyWorkers snapshots the workers currently admitted by the ring,
// in configuration order.
func (r *Remote) HealthyWorkers() []string { return r.ring.healthyWorkers() }

// Name implements Backend.
func (r *Remote) Name() string { return "remote" }

// Workers returns the validated worker base URLs.
func (r *Remote) Workers() []string { return append([]string(nil), r.workers...) }

// ShardIndex maps a fingerprint onto a worker index in [0, n). FNV-1a
// over the hex hash: stable across processes and restarts, so every
// coordinator agrees where a config lives. Exported so tests and
// tooling can predict shard ownership from a fingerprint.
func ShardIndex(hash string, n int) int {
	h := fnv.New64a()
	_, _ = io.WriteString(h, hash)
	return int(h.Sum64() % uint64(n))
}

func shardIndex(hash string, n int) int { return ShardIndex(hash, n) }

// RunPoint implements Backend: fingerprint, shard, dispatch with
// retries, reroute across the healthy ring, and — only when every
// worker candidate is exhausted — fall back to the local backend.
// Hooks already fired for replications a worker streamed before dying
// fire again on the retrying attempt; the returned result is the
// complete point either way.
func (r *Remote) RunPoint(ctx context.Context, cfg experiment.Config, hooks experiment.StreamHooks) (*experiment.StreamResult, error) {
	hash, err := experiment.Fingerprint(cfg)
	if err != nil {
		return nil, err
	}
	r.dispatched.Add(1)
	var lastErr error
	for i, worker := range r.ring.candidates(hash) {
		br := r.breakers[worker]
		if !br.Allow() {
			r.log.Info("backend: skipping circuit-broken worker",
				"worker", worker, "config", cfg.Name, "hash", shortHash(hash))
			continue
		}
		if i > 0 {
			r.reroutes.Add(1)
			r.log.Warn("backend: rerouting point off its owner shard",
				"worker", worker, "config", cfg.Name, "hash", shortHash(hash), "prev_err", lastErr)
		}
		res, err := r.tryWorker(ctx, worker, hash, cfg, hooks)
		if err == nil {
			r.remoteDone.Add(1)
			return res, nil
		}
		if ctx.Err() != nil {
			// The point was canceled, not the worker broken; surface it.
			return nil, err
		}
		lastErr = err
	}
	r.failovers.Add(1)
	r.log.Warn("backend: all worker candidates exhausted; failing over",
		"config", cfg.Name, "hash", shortHash(hash),
		"err", lastErr, "fallback", r.fallback.Name())
	return r.fallback.RunPoint(ctx, cfg, hooks)
}

// tryWorker runs the per-worker retry loop: attempt, classify, back
// off, re-attempt — bounded by the retry budget, cut short by a
// terminal error or by the worker's breaker opening under it (a dead
// worker must not eat the budget reroutes could use).
func (r *Remote) tryWorker(ctx context.Context, worker, hash string, cfg experiment.Config, hooks experiment.StreamHooks) (*experiment.StreamResult, error) {
	br := r.breakers[worker]
	for attempt := 0; ; attempt++ {
		res, err := r.runOn(ctx, worker, cfg, hooks)
		if err == nil {
			br.Success()
			return res, nil
		}
		br.Failure()
		if ctx.Err() != nil || !retryableError(err) || attempt >= r.retry.MaxRetries {
			return nil, err
		}
		if br.State() == breakerOpen {
			r.log.Warn("backend: abandoning retries, breaker opened",
				"worker", worker, "config", cfg.Name, "attempt", attempt+1, "err", err)
			return nil, err
		}
		delay := r.retry.Delay(hash, attempt)
		r.retries.Add(1)
		if r.hasMetrics {
			r.retriesVec.With(worker).Inc()
		}
		r.log.Info("backend: retrying worker dispatch",
			"worker", worker, "config", cfg.Name, "hash", shortHash(hash),
			"attempt", attempt+1, "backoff", delay, "err", err)
		if err := r.retry.sleep(ctx, delay); err != nil {
			return nil, err
		}
	}
}

func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}

// wireEvent is the union of the worker's NDJSON event shapes; unknown
// event types and extra fields are skipped, so workers may grow their
// event vocabulary without breaking older coordinators.
type wireEvent struct {
	Type    string          `json:"type"`
	Error   string          `json:"error"`
	Summary json.RawMessage `json:"summary"`
	Spans   []obs.Span      `json:"spans"`
	experiment.Replication
}

// runOn executes one point on a worker: POST the resolved ConfigSpec,
// replay the run's NDJSON events into hooks, and rebuild the result
// from the terminal summary. Any transport or protocol trouble returns
// a classified error — the caller owns retry/reroute/failover. A
// progress-idle watchdog (reset on every event line) aborts a stream
// that stops making progress without dying.
func (r *Remote) runOn(ctx context.Context, worker string, cfg experiment.Config, hooks experiment.StreamHooks) (*experiment.StreamResult, error) {
	spec, err := experiment.SpecFromConfig(cfg)
	if err != nil {
		return nil, &terminalError{err}
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, &terminalError{err}
	}

	reqCtx := ctx
	var stalled atomic.Bool
	var watchdog *time.Timer
	if r.idle > 0 {
		var cancel context.CancelFunc
		reqCtx, cancel = context.WithCancel(ctx)
		defer cancel()
		watchdog = time.AfterFunc(r.idle, func() {
			stalled.Store(true)
			cancel()
		})
		defer watchdog.Stop()
	}
	// classify wraps a transport/stream error, tagging a watchdog abort
	// as a stall (retryable) rather than a caller cancellation.
	classify := func(reason string, err error) error {
		if stalled.Load() && ctx.Err() == nil {
			return &tornStreamError{reason: fmt.Sprintf("no event for %s", r.idle), err: err}
		}
		return &tornStreamError{reason: reason, err: err}
	}

	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, worker+ExecutePath, bytes.NewReader(body))
	if err != nil {
		return nil, &terminalError{err}
	}
	req.Header.Set("Content-Type", "application/json")
	// Propagate the dispatch span identity so the worker's spans parent
	// under this coordinator's trace (no-op without a span context).
	if sc, ok := obs.SpanContextFrom(ctx); ok {
		sc.InjectHTTP(req)
	}
	if r.rtt != nil {
		start := time.Now()
		defer func() { r.rtt.With(worker).Observe(time.Since(start).Seconds()) }()
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, classify("submit failed", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return nil, &workerHTTPError{code: resp.StatusCode, msg: strings.TrimSpace(string(msg))}
	}

	// Read lines with a plain buffered reader, not a Scanner: the
	// terminal summary event embeds every replication, so a large point
	// (thousands of runs) produces a line far beyond any fixed Scanner
	// cap — and truncating it would throw away a fully simulated result
	// and re-run the whole point locally.
	br := bufio.NewReaderSize(resp.Body, 64<<10)
	for {
		line, err := br.ReadBytes('\n')
		if err != nil && err != io.EOF {
			return nil, classify("stream died mid-read", err)
		}
		atEOF := err == io.EOF
		if watchdog != nil {
			watchdog.Reset(r.idle)
		}
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			if atEOF {
				break
			}
			continue
		}
		var ev wireEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			// A partial final line from a torn connection, not a schema
			// mismatch: retryable.
			return nil, classify("partial or garbled event line", err)
		}
		switch ev.Type {
		case "replication":
			// The worker reports completions only; synthesize the start
			// so OnStart/OnDone gauges stay paired.
			if hooks.OnStart != nil {
				hooks.OnStart(ev.Rep, ev.Seed)
			}
			if hooks.OnDone != nil {
				hooks.OnDone(ev.Replication)
			}
		case "trace":
			// The worker's execution spans, streamed just before the
			// terminal event; deliver them to the coordinator's trace.
			if sink := obs.SpanSinkFrom(ctx); sink != nil && len(ev.Spans) > 0 {
				sink(ev.Spans)
			}
		case "summary":
			// Strict summary decode: a worker speaking an incompatible
			// schema is terminal — every retry would fail identically.
			sum, err := experiment.DecodeSummary(ev.Summary)
			if err != nil {
				return nil, &terminalError{err}
			}
			return experiment.StreamResultFromSummary(cfg, sum), nil
		case "error":
			// The run itself failed on the worker; the simulation is
			// deterministic, so a retry fails the same way.
			return nil, &terminalError{fmt.Errorf("worker run failed: %s", ev.Error)}
		}
		if atEOF {
			break
		}
	}
	return nil, classify("stream ended without a summary", nil)
}

// Health implements Backend: probe every worker's /healthz and report
// how many answered.
func (r *Remote) Health(ctx context.Context) Health {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	up := 0
	var detail []string
	for _, w := range r.workers {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, w+"/healthz", nil)
		if err != nil {
			detail = append(detail, w+": "+err.Error())
			continue
		}
		resp, err := r.client.Do(req)
		if err != nil {
			detail = append(detail, w+": unreachable")
			continue
		}
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			up++
		} else {
			detail = append(detail, fmt.Sprintf("%s: status %d", w, resp.StatusCode))
		}
	}
	h := Health{Healthy: up > 0, Workers: up}
	if len(detail) == 0 {
		h.Detail = fmt.Sprintf("%d/%d workers up", up, len(r.workers))
	} else {
		h.Detail = fmt.Sprintf("%d/%d workers up (%s)", up, len(r.workers), strings.Join(detail, "; "))
	}
	return h
}

// RemoteStats are the dispatch counters koalad exposes on /metrics.
type RemoteStats struct {
	Workers        int   // configured workers
	HealthyWorkers int   // workers currently admitted by the ring
	Dispatched     int64 // points entering RunPoint
	RemoteDone     int64 // points completed by a worker
	Failovers      int64 // points re-run on the fallback backend
	Retries        int64 // same-worker retry attempts
	Reroutes       int64 // attempts moved off the owner shard
	BreakerOpens   int64 // circuit-breaker open transitions
}

// Stats snapshots the dispatch counters.
func (r *Remote) Stats() RemoteStats {
	return RemoteStats{
		Workers:        len(r.workers),
		HealthyWorkers: r.ring.healthyCount(),
		Dispatched:     r.dispatched.Load(),
		RemoteDone:     r.remoteDone.Load(),
		Failovers:      r.failovers.Load(),
		Retries:        r.retries.Load(),
		Reroutes:       r.reroutes.Load(),
		BreakerOpens:   r.breakerOpens.Load(),
	}
}
