package backend

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit breaker machine.
type breakerState int32

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-worker circuit breaker: `threshold` consecutive
// failures open it, an open breaker refuses dispatches (so a dead
// worker stops eating retry budget and points reroute immediately),
// and after `cooldown` exactly one probe dispatch is let through
// (half-open) — success closes the breaker, failure re-opens it for
// another cooldown. The zero threshold disables the breaker entirely
// (Allow always true).
type breaker struct {
	mu        sync.Mutex
	state     breakerState
	failures  int // consecutive, in closed state
	threshold int
	cooldown  time.Duration
	openedAt  time.Time
	now       func() time.Time // injectable for tests

	// onTransition, when non-nil, observes every state change (metrics
	// hook). Called with the breaker's lock held — keep it cheap.
	onTransition func(from, to breakerState)
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

func (b *breaker) transition(to breakerState) {
	if b.state == to {
		return
	}
	from := b.state
	b.state = to
	if b.onTransition != nil {
		b.onTransition(from, to)
	}
}

// Allow reports whether a dispatch may proceed. In the open state it
// flips to half-open once the cooldown has elapsed and admits exactly
// one caller as the probe; everyone else is refused until the probe
// reports back.
func (b *breaker) Allow() bool {
	if b == nil || b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.transition(breakerHalfOpen)
		return true // this caller is the probe
	default: // half-open: a probe is already in flight
		return false
	}
}

// Success reports a completed dispatch: closes a half-open breaker,
// clears the consecutive-failure count.
func (b *breaker) Success() {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.transition(breakerClosed)
}

// Failure reports a failed dispatch: counts toward the threshold in
// closed state, re-opens from half-open (the probe failed).
func (b *breaker) Failure() {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.openedAt = b.now()
			b.transition(breakerOpen)
		}
	case breakerHalfOpen:
		b.openedAt = b.now()
		b.transition(breakerOpen)
	default: // already open (a straggler in-flight dispatch failing late)
		b.openedAt = b.now()
	}
}

// State snapshots the current state.
func (b *breaker) State() breakerState {
	if b == nil || b.threshold <= 0 {
		return breakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
