package backend_test

// End-to-end fault-schedule equivalence tests: the resilience layer's
// contract is that every sweep summary stays byte-identical to the
// clean local run under ANY scripted fault schedule — faults cost
// retries, reroutes or a local failover, never correctness. The
// schedules here are driven through internal/faults' in-process
// RoundTripper (and handcrafted torn-NDJSON workers), so every error
// shape the classifier handles is manufactured deterministically.

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/experiment"
	"repro/internal/faults"
	"repro/internal/workload"
)

// seedForShard finds a test-config seed whose fingerprint shards to
// `owner` with n workers — so a test can aim points at a specific
// (faulty) worker deterministically.
func seedForShard(t *testing.T, n, owner int) uint64 {
	t.Helper()
	for seed := uint64(1); seed < 500; seed++ {
		hash, err := experiment.Fingerprint(testConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		if backend.ShardIndex(hash, n) == owner {
			return seed
		}
	}
	t.Fatal("no seed under 500 shards to the wanted owner")
	return 0
}

// executeOnly matches only worker dispatches, so health probes sharing
// the faulted client never consume schedule steps.
func executeOnly(r *http.Request) bool { return strings.HasSuffix(r.URL.Path, backend.ExecutePath) }

// faultedRemote builds a Remote whose dispatches run through a
// scripted fault schedule against the given workers.
func faultedRemote(t *testing.T, sched *faults.Schedule, opts backend.RemoteOptions) *backend.Remote {
	t.Helper()
	opts.Client = &http.Client{Transport: &faults.RoundTripper{Schedule: sched, Match: executeOnly}}
	if opts.Log == nil {
		opts.Log = testLogger(t)
	}
	rb, err := backend.NewRemote(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rb.Close)
	return rb
}

// TestRemoteRetriesThroughFaultSchedule: a point whose first two
// dispatch attempts die (mid-stream reset, then a 503 burst of one)
// completes on the third attempt against the same worker —
// byte-identical, no failover, the retry counters telling the story.
func TestRemoteRetriesThroughFaultSchedule(t *testing.T) {
	_, ts := newWorker(t)
	sched := faults.NewSchedule(
		faults.Fault{Kind: faults.Reset, After: 200},
		faults.Fault{Kind: faults.Status, Code: 503},
	)
	rb := faultedRemote(t, sched, backend.RemoteOptions{
		Workers: []string{ts.URL},
		Retry:   backend.RetryPolicy{MaxRetries: 2, BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond},
	})

	cfg := testConfig(7)
	local, err := experiment.RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rb.RunPoint(context.Background(), cfg, experiment.StreamHooks{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, local), encode(t, res)) {
		t.Fatal("summary after scripted reset+503 diverges from clean local run")
	}
	st := rb.Stats()
	if st.Retries != 2 || st.RemoteDone != 1 || st.Failovers != 0 || st.Reroutes != 0 {
		t.Fatalf("stats = %+v, want 2 retries, 1 remote done, 0 failovers", st)
	}
	if sched.Remaining() != 0 {
		t.Fatalf("schedule steps left unfired: %d", sched.Remaining())
	}
}

// TestRemoteDropThenRecover: connection refused at submit (the drop
// fault) is retryable; the point lands on the same worker next attempt.
func TestRemoteDropThenRecover(t *testing.T) {
	_, ts := newWorker(t)
	sched := faults.NewSchedule(faults.Fault{Kind: faults.Drop})
	rb := faultedRemote(t, sched, backend.RemoteOptions{
		Workers: []string{ts.URL},
		Retry:   backend.RetryPolicy{MaxRetries: 1, BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond},
	})
	cfg := testConfig(3)
	local, err := experiment.RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rb.RunPoint(context.Background(), cfg, experiment.StreamHooks{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, local), encode(t, res)) {
		t.Fatal("summary after scripted drop diverges from clean local run")
	}
	if st := rb.Stats(); st.Retries != 1 || st.RemoteDone != 1 || st.Failovers != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// tornWorker builds a fake worker whose NDJSON response is torn in a
// scripted way; hits counts dispatch attempts.
func tornWorker(t *testing.T, hits *atomic.Int64, write func(w http.ResponseWriter)) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasSuffix(r.URL.Path, backend.ExecutePath) {
			http.NotFound(w, r)
			return
		}
		hits.Add(1)
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		write(w)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestTornNDJSONRetryableEquivalence is the satellite-task matrix:
// every way a worker stream can tear — a partial JSON line, a clean
// EOF with no terminal summary, a reset mid-summary — must classify as
// retryable (the stats show the retry happened) and end byte-identical
// to the clean local run via local failover.
func TestTornNDJSONRetryableEquivalence(t *testing.T) {
	cfg := testConfig(11)
	local, err := experiment.RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := experiment.EncodeSummary(local.Summary())
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name  string
		write func(w http.ResponseWriter)
	}{
		{"partial JSON line", func(w http.ResponseWriter) {
			fmt.Fprintln(w, `{"type":"accepted","id":"exp-1"}`)
			fmt.Fprint(w, `{"type":"replication","rep":0,"se`) // torn mid-line, clean close
		}},
		{"missing terminal summary", func(w http.ResponseWriter) {
			fmt.Fprintln(w, `{"type":"accepted","id":"exp-1"}`)
			fmt.Fprintln(w, `{"type":"replication","rep":0,"seed":11,"jobs":4}`)
			fmt.Fprintln(w, `{"type":"replication","rep":1,"seed":12,"jobs":4}`)
			// ...and the stream just ends: the worker died between its
			// last replication and the summary.
		}},
		{"reset mid-summary", func(w http.ResponseWriter) {
			fmt.Fprintln(w, `{"type":"accepted","id":"exp-1"}`)
			fmt.Fprintf(w, `{"type":"summary","id":"exp-1","summary":%s`, sum[:len(sum)/2])
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			panic(http.ErrAbortHandler) // sever the connection mid-summary
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var hits atomic.Int64
			ts := tornWorker(t, &hits, tc.write)
			rb, err := backend.NewRemote(backend.RemoteOptions{
				Workers: []string{ts.URL},
				Log:     testLogger(t),
				Retry:   backend.RetryPolicy{MaxRetries: 1, BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer rb.Close()
			res, err := rb.RunPoint(context.Background(), cfg, experiment.StreamHooks{})
			if err != nil {
				t.Fatalf("torn stream (%s) surfaced instead of failing over: %v", tc.name, err)
			}
			if !bytes.Equal(encode(t, local), encode(t, res)) {
				t.Fatalf("summary after torn stream (%s) diverges from clean local run", tc.name)
			}
			st := rb.Stats()
			// The tear was classified retryable (it was retried on the
			// worker — 2 hits), then the point failed over locally.
			if hits.Load() != 2 {
				t.Fatalf("worker attempts = %d, want 2 (initial + retry)", hits.Load())
			}
			if st.Retries != 1 || st.Failovers != 1 || st.RemoteDone != 0 {
				t.Fatalf("stats = %+v, want 1 retry then 1 failover", st)
			}
		})
	}
}

// TestTornNDJSONReroutesBeforeLocal: with a healthy second worker on
// the ring, a torn stream reroutes there instead of burning a local
// re-simulation — and the coordinator still gets the exact bytes.
func TestTornNDJSONReroutesBeforeLocal(t *testing.T) {
	var hits atomic.Int64
	torn := tornWorker(t, &hits, func(w http.ResponseWriter) {
		fmt.Fprintln(w, `{"type":"accepted","id":"exp-1"}`)
		fmt.Fprint(w, `{"type":"rep`) // always torn
	})
	_, live := newWorker(t)

	// Order workers so the torn one owns the point's shard.
	seed := seedForShard(t, 2, 0)
	workers := []string{torn.URL, live.URL}
	rb, err := backend.NewRemote(backend.RemoteOptions{
		Workers: workers,
		Log:     testLogger(t),
		Retry:   backend.RetryPolicy{MaxRetries: 1, BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()

	cfg := testConfig(seed)
	local, err := experiment.RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rb.RunPoint(context.Background(), cfg, experiment.StreamHooks{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, local), encode(t, res)) {
		t.Fatal("rerouted summary diverges from clean local run")
	}
	st := rb.Stats()
	if st.RemoteDone != 1 || st.Failovers != 0 || st.Reroutes != 1 {
		t.Fatalf("stats = %+v, want reroute to the healthy worker, no local failover", st)
	}
	if hits.Load() != 2 {
		t.Fatalf("torn worker attempts = %d, want 2 (initial + retry) before reroute", hits.Load())
	}
}

// TestBreakerSkipsBrokenWorker: after the breaker opens on a broken
// worker, later points that shard to it skip straight to the next
// healthy worker — the dead worker stops seeing dispatches (and stops
// eating retry budget) until its cooldown probe.
func TestBreakerSkipsBrokenWorker(t *testing.T) {
	var hits atomic.Int64
	broken := tornWorker(t, &hits, func(w http.ResponseWriter) {
		panic(http.ErrAbortHandler)
	})
	_, live := newWorker(t)

	seed := seedForShard(t, 2, 0)
	rb, err := backend.NewRemote(backend.RemoteOptions{
		Workers:          []string{broken.URL, live.URL},
		Log:              testLogger(t),
		Retry:            backend.RetryPolicy{MaxRetries: -1},
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour, // no probe within this test
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()

	// First point: attempt on the broken owner, breaker opens, reroute.
	cfg := testConfig(seed)
	local, err := experiment.RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rb.RunPoint(context.Background(), cfg, experiment.StreamHooks{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, local), encode(t, res)) {
		t.Fatal("first point diverges from clean local run")
	}
	if hits.Load() != 1 {
		t.Fatalf("broken worker attempts after first point = %d, want 1", hits.Load())
	}

	// Second point to the same shard: the open breaker short-circuits —
	// the broken worker is never contacted again.
	var seed2 uint64
	for s := seed + 1; ; s++ {
		hash, err := experiment.Fingerprint(testConfig(s))
		if err != nil {
			t.Fatal(err)
		}
		if backend.ShardIndex(hash, 2) == 0 {
			seed2 = s
			break
		}
	}
	cfg2 := testConfig(seed2)
	local2, err := experiment.RunStream(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := rb.RunPoint(context.Background(), cfg2, experiment.StreamHooks{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, local2), encode(t, res2)) {
		t.Fatal("second point diverges from clean local run")
	}
	if hits.Load() != 1 {
		t.Fatalf("circuit-broken worker was contacted again: %d attempts", hits.Load())
	}
	st := rb.Stats()
	if st.BreakerOpens != 1 || st.RemoteDone != 2 || st.Failovers != 0 || st.Reroutes != 2 {
		t.Fatalf("stats = %+v, want 1 breaker open, 2 remote done via reroute", st)
	}
}

// TestRingDropsDrainingWorker: a worker in Server.Shutdown answers
// /healthz with 503/"draining"; one health refresh later the ring has
// ejected it and points it owned route to the remaining worker without
// a single bounced dispatch.
func TestRingDropsDrainingWorker(t *testing.T) {
	draining, drainingTS := newWorker(t)
	_, liveTS := newWorker(t)

	seed := seedForShard(t, 2, 0)
	rb, err := backend.NewRemote(backend.RemoteOptions{
		Workers: []string{drainingTS.URL, liveTS.URL},
		Log:     testLogger(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()

	// Drain the shard owner, then refresh ring health.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := draining.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	rb.RefreshHealth(context.Background())
	healthy := rb.HealthyWorkers()
	if len(healthy) != 1 || healthy[0] != liveTS.URL {
		t.Fatalf("healthy workers after drain = %v, want just the live one", healthy)
	}

	cfg := testConfig(seed)
	local, err := experiment.RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rb.RunPoint(context.Background(), cfg, experiment.StreamHooks{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, local), encode(t, res)) {
		t.Fatal("summary routed around the draining worker diverges from clean local run")
	}
	st := rb.Stats()
	// The draining worker was gated out of the candidate ring before
	// dispatch: no retries were burned discovering it, no bounced
	// attempt to count as a reroute — the point's first (and only)
	// dispatch went to the live worker.
	if st.RemoteDone != 1 || st.Retries != 0 || st.Failovers != 0 || st.Reroutes != 0 {
		t.Fatalf("stats = %+v, want a clean first-try dispatch to the live worker", st)
	}
	if n := workerRuns(t, liveTS); n != 1 {
		t.Fatalf("live worker runs = %d, want 1", n)
	}
}

// TestRingReadmitsRecoveredWorker: ring membership is a round trip —
// a worker that stops answering "ok" is ejected, and re-admitted the
// probe after it recovers.
func TestRingReadmitsRecoveredWorker(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	flappy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if healthy.Load() {
			fmt.Fprintln(w, `{"status":"ok"}`)
			return
		}
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
	}))
	defer flappy.Close()
	_, liveTS := newWorker(t)

	rb, err := backend.NewRemote(backend.RemoteOptions{
		Workers: []string{flappy.URL, liveTS.URL},
		Log:     testLogger(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()

	rb.RefreshHealth(context.Background())
	if got := rb.HealthyWorkers(); len(got) != 2 {
		t.Fatalf("healthy workers while ok = %v, want both", got)
	}
	healthy.Store(false)
	rb.RefreshHealth(context.Background())
	if got := rb.HealthyWorkers(); len(got) != 1 || got[0] != liveTS.URL {
		t.Fatalf("healthy workers while draining = %v, want just the live one", got)
	}
	healthy.Store(true)
	rb.RefreshHealth(context.Background())
	if got := rb.HealthyWorkers(); len(got) != 2 {
		t.Fatalf("healthy workers after recovery = %v, want both re-admitted", got)
	}
}

// TestIdleWatchdogDetectsStalledWorker: a worker that accepts the
// dispatch, streams one event and then hangs (no death, no progress)
// is cut by the progress-idle watchdog and the point completes
// elsewhere — byte-identical, bounded by the idle timeout rather than
// forever.
func TestIdleWatchdogDetectsStalledWorker(t *testing.T) {
	stalled := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, `{"type":"accepted","id":"exp-1"}`)
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		<-r.Context().Done() // hang until the coordinator gives up
	}))
	defer stalled.Close()

	rb, err := backend.NewRemote(backend.RemoteOptions{
		Workers:          []string{stalled.URL},
		Log:              testLogger(t),
		Retry:            backend.RetryPolicy{MaxRetries: -1},
		IdleEventTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()

	cfg := testConfig(11)
	local, err := experiment.RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := rb.RunPoint(context.Background(), cfg, experiment.StreamHooks{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, local), encode(t, res)) {
		t.Fatal("summary after stalled worker diverges from clean local run")
	}
	if st := rb.Stats(); st.Failovers != 1 {
		t.Fatalf("stats = %+v, want 1 failover", st)
	}
	// The stall was detected by the watchdog, not a multi-minute
	// transport deadline (generous bound: CI machines are slow).
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("stalled worker took %s to detect", elapsed)
	}
}

// TestSweepFaultScheduleEquivalence is the umbrella: a whole sweep
// dispatched through a mixed fault schedule — drop, reset, 5xx burst,
// truncation — matches the clean serial sweep byte for byte, point by
// point, and every dispatched point is accounted for as remote-done or
// failed-over.
func TestSweepFaultScheduleEquivalence(t *testing.T) {
	_, ts := newWorker(t)
	sched := faults.NewSchedule(
		faults.Fault{Kind: faults.Drop},
		faults.Fault{Kind: faults.Reset, After: 300},
		faults.Fault{Kind: faults.Status, Code: 503},
		faults.Fault{Kind: faults.Status, Code: 503},
		faults.Fault{Kind: faults.Truncate, After: 150},
	)
	rb := faultedRemote(t, sched, backend.RemoteOptions{
		Workers: []string{ts.URL},
		Retry:   backend.RetryPolicy{MaxRetries: 2, BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond},
	})

	combos := []experiment.Combo{
		{Policy: "FPSMA", Label: "FPSMA/bk", Workload: func(seed uint64) workload.Spec { return testConfig(seed).Workload }},
		{Policy: "EGS", Label: "EGS/bk", Workload: func(seed uint64) workload.Spec { return testConfig(seed).Workload }},
		{Policy: "EQUI", Label: "EQUI/bk", Workload: func(seed uint64) workload.Spec { return testConfig(seed).Workload }},
	}
	base := testConfig(5)

	serial, err := experiment.RunSetStream(context.Background(), "PRA", combos, base)
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := experiment.RunSetStreamVia(context.Background(), rb, "PRA", combos, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(faulted) != len(serial) {
		t.Fatalf("results = %d, want %d", len(faulted), len(serial))
	}
	for i := range serial {
		if !bytes.Equal(encode(t, serial[i]), encode(t, faulted[i])) {
			t.Fatalf("combo %d diverges from the clean serial sweep under the fault schedule", i)
		}
	}
	st := rb.Stats()
	if st.Dispatched != int64(len(combos)) || st.RemoteDone+st.Failovers != st.Dispatched {
		t.Fatalf("stats don't conserve points: %+v", st)
	}
	if st.Retries == 0 {
		t.Fatal("the fault schedule fired but no retry was recorded")
	}
}
