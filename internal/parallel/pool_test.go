package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachVisitsEveryIndexInOrderSlots(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		out := make([]int, 50)
		err := ForEach(context.Background(), len(out), workers, func(_ context.Context, i int) error {
			out[i] = i + 1
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i+1 {
				t.Fatalf("workers=%d: slot %d = %d", workers, i, v)
			}
		}
	}
}

func TestForEachZeroTasks(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, func(context.Context, int) error {
		t.Fatal("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachReturnsLowestFailingIndex(t *testing.T) {
	boom := func(i int) error { return fmt.Errorf("task %d failed", i) }
	// Serial: fails at the first bad index, later tasks never run.
	ran := 0
	err := ForEach(context.Background(), 10, 1, func(_ context.Context, i int) error {
		ran++
		if i >= 3 {
			return boom(i)
		}
		return nil
	})
	if err == nil || err.Error() != "task 3 failed" {
		t.Fatalf("serial err = %v", err)
	}
	if ran != 4 {
		t.Fatalf("serial ran %d tasks, want 4", ran)
	}
	// Parallel: a barrier holds every task in flight until all four have
	// started, so all of them run, indices 1-3 all fail, and the lowest
	// failing index's error must win.
	var entered sync.WaitGroup
	entered.Add(4)
	err = ForEach(context.Background(), 4, 4, func(_ context.Context, i int) error {
		entered.Done()
		entered.Wait()
		if i >= 1 {
			return boom(i)
		}
		return nil
	})
	if err == nil || err.Error() != "task 1 failed" {
		t.Fatalf("parallel err = %v", err)
	}
}

func TestForEachCancelsPoolOnFirstError(t *testing.T) {
	const n = 1000
	var started atomic.Int64
	boom := errors.New("boom")
	err := ForEach(context.Background(), n, 4, func(ctx context.Context, i int) error {
		started.Add(1)
		if i == 0 {
			return boom
		}
		// Block until the failure cancels the pool, so no worker can churn
		// through the remaining indices before the cancellation lands.
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(5 * time.Second):
			return fmt.Errorf("task %d never saw cancellation", i)
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The error cancels dispatch: only the tasks already picked up by the 4
	// workers (plus at most one extra per worker racing the cancel) start.
	if got := started.Load(); got > 16 {
		t.Fatalf("%d of %d tasks started after first error", got, n)
	}
}

func TestForEachHonorsParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := ForEach(ctx, 8, 1, func(context.Context, int) error {
		calls++
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Fatalf("ran %d tasks under a canceled context", calls)
	}
}

// TestForEachSharedBoundsAcrossPools is the limiter's contract: two
// pools drawing from one budget never exceed it combined, and every
// index of both pools still runs into its own slot.
func TestForEachSharedBoundsAcrossPools(t *testing.T) {
	lim := NewLimiter(2)
	var inFlight, peak atomic.Int64
	body := func(out []int) func(context.Context, int) error {
		return func(_ context.Context, i int) error {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inFlight.Add(-1)
			out[i] = i + 1
			return nil
		}
	}
	a := make([]int, 20)
	b := make([]int, 20)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); errs[0] = ForEachShared(context.Background(), len(a), lim, body(a)) }()
	go func() { defer wg.Done(); errs[1] = ForEachShared(context.Background(), len(b), lim, body(b)) }()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("pool %d: %v", i, err)
		}
	}
	if p := peak.Load(); p > 2 {
		t.Fatalf("peak concurrency %d exceeded the shared budget 2", p)
	}
	for i := range a {
		if a[i] != i+1 || b[i] != i+1 {
			t.Fatalf("slot %d = %d/%d", i, a[i], b[i])
		}
	}
}

// TestForEachSharedPropagatesErrors mirrors the ForEach semantics: the
// first error cancels dispatch and wins even when later-queued tasks
// are still blocked acquiring a slot, and a pre-canceled parent runs
// nothing.
func TestForEachSharedPropagatesErrors(t *testing.T) {
	lim := NewLimiter(1)
	boom := errors.New("boom")
	ran := 0
	err := ForEachShared(context.Background(), 10, lim, func(_ context.Context, i int) error {
		ran++
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ran > 3 {
		t.Fatalf("ran %d tasks after the failure", ran)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err = ForEachShared(ctx, 4, lim, func(context.Context, int) error {
		calls++
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Fatalf("ran %d tasks under a canceled context", calls)
	}
}
