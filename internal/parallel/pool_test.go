package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachVisitsEveryIndexInOrderSlots(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		out := make([]int, 50)
		err := ForEach(context.Background(), len(out), workers, func(_ context.Context, i int) error {
			out[i] = i + 1
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i+1 {
				t.Fatalf("workers=%d: slot %d = %d", workers, i, v)
			}
		}
	}
}

func TestForEachZeroTasks(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, func(context.Context, int) error {
		t.Fatal("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachReturnsLowestFailingIndex(t *testing.T) {
	boom := func(i int) error { return fmt.Errorf("task %d failed", i) }
	// Serial: fails at the first bad index, later tasks never run.
	ran := 0
	err := ForEach(context.Background(), 10, 1, func(_ context.Context, i int) error {
		ran++
		if i >= 3 {
			return boom(i)
		}
		return nil
	})
	if err == nil || err.Error() != "task 3 failed" {
		t.Fatalf("serial err = %v", err)
	}
	if ran != 4 {
		t.Fatalf("serial ran %d tasks, want 4", ran)
	}
	// Parallel: a barrier holds every task in flight until all four have
	// started, so all of them run, indices 1-3 all fail, and the lowest
	// failing index's error must win.
	var entered sync.WaitGroup
	entered.Add(4)
	err = ForEach(context.Background(), 4, 4, func(_ context.Context, i int) error {
		entered.Done()
		entered.Wait()
		if i >= 1 {
			return boom(i)
		}
		return nil
	})
	if err == nil || err.Error() != "task 1 failed" {
		t.Fatalf("parallel err = %v", err)
	}
}

func TestForEachCancelsPoolOnFirstError(t *testing.T) {
	const n = 1000
	var started atomic.Int64
	boom := errors.New("boom")
	err := ForEach(context.Background(), n, 4, func(ctx context.Context, i int) error {
		started.Add(1)
		if i == 0 {
			return boom
		}
		// Block until the failure cancels the pool, so no worker can churn
		// through the remaining indices before the cancellation lands.
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(5 * time.Second):
			return fmt.Errorf("task %d never saw cancellation", i)
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The error cancels dispatch: only the tasks already picked up by the 4
	// workers (plus at most one extra per worker racing the cancel) start.
	if got := started.Load(); got > 16 {
		t.Fatalf("%d of %d tasks started after first error", got, n)
	}
}

func TestForEachHonorsParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := ForEach(ctx, 8, 1, func(context.Context, int) error {
		calls++
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Fatalf("ran %d tasks under a canceled context", calls)
	}
}
