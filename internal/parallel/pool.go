// Package parallel provides a small bounded worker pool for the
// embarrassingly parallel fan-outs in the experiment layer: independent
// seeded replications and independent sweep points. Each task owns an
// order-preserving output slot chosen by its index, so the pooled output of
// a parallel sweep is byte-identical to the serial order regardless of the
// order in which workers finish.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the worker count used when a caller passes a
// non-positive parallelism: one worker per usable CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// ForEach runs fn(ctx, i) for every i in [0, n) on a bounded pool of
// workers goroutines (workers <= 0 means DefaultWorkers, workers == 1 runs
// serially on the calling goroutine). fn must write its result into a slot
// owned by index i (e.g. out[i] = ...); fn calls for distinct indices may
// run concurrently, so they must not share mutable state.
//
// The first error cancels the shared context and stops the pool from
// dispatching further indices; calls already in flight run to completion.
// ForEach returns the error of the lowest failing index among those that
// ran. If no task failed, it returns nil when all n completed, and the
// parent context's error when a parent cancellation cut the pool short.
func ForEach(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, n)
	var next, done atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				if err := fn(ctx, i); err != nil {
					errs[i] = err
					cancel()
				} else {
					done.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if int(done.Load()) == n {
		// Every task completed: like the serial path, a parent cancellation
		// that raced the finish does not discard the finished work.
		return nil
	}
	return parent.Err()
}

// Limiter is a shared concurrency budget: a counting semaphore that
// several ForEachShared pools draw task slots from, so one global bound
// covers a whole sweep no matter how its points are grouped into pools.
// The zero value is invalid; use NewLimiter.
type Limiter chan struct{}

// NewLimiter returns a budget of n concurrent tasks (n <= 0 means
// DefaultWorkers).
func NewLimiter(n int) Limiter {
	if n <= 0 {
		n = DefaultWorkers()
	}
	return make(Limiter, n)
}

// ForEachShared is ForEach with the worker bound replaced by lim: fn
// runs only while holding one of lim's slots, so concurrent
// ForEachShared calls over the same limiter never execute more than
// cap(lim) tasks at once between them. Error and cancellation semantics
// match ForEach: the first failing task cancels the pool and its error
// (lowest index) is returned; a parent cancellation that cut the pool
// short returns the parent's error.
func ForEachShared(ctx context.Context, n int, lim Limiter, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers := cap(lim)
	if workers > n {
		workers = n
	}

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, n)
	var next, done atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				// Tasks not yet holding a slot stop silently on
				// cancellation; whoever canceled owns the error.
				select {
				case lim <- struct{}{}:
				case <-ctx.Done():
					return
				}
				err := fn(ctx, i)
				<-lim
				if err != nil {
					errs[i] = err
					cancel()
				} else {
					done.Add(1)
				}
			}
		}()
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if int(done.Load()) == n {
		return nil
	}
	return parent.Err()
}
