package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The trace format is a small SWF-inspired text format: comment lines start
// with ';' (like SWF headers), data lines carry
//
//	<id> <submit-seconds> <app> <class> <size>
//
// with app ∈ {FT, GADGET2} and class ∈ {malleable, rigid}. It exists so
// generated workloads can be saved, diffed and replayed by cmd/workloadgen.

// WriteTrace serialises w to the trace format.
func WriteTrace(w io.Writer, wl *Workload) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "; workload: %s\n", wl.Name)
	fmt.Fprintf(bw, "; jobs: %d\n", len(wl.Items))
	fmt.Fprintf(bw, "; fields: id submit app class size\n")
	for _, it := range wl.Items {
		class := "rigid"
		if it.Malleable {
			class = "malleable"
		}
		fmt.Fprintf(bw, "%s %.3f %s %s %d\n", it.ID, it.SubmitAt, it.App, class, it.Size)
	}
	return bw.Flush()
}

// ReadTrace parses a trace back into a workload. The name is taken from the
// "; workload:" header when present.
func ReadTrace(r io.Reader) (*Workload, error) {
	sc := bufio.NewScanner(r)
	wl := &Workload{Name: "trace"}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			if rest, ok := strings.CutPrefix(line, "; workload:"); ok {
				wl.Name = strings.TrimSpace(rest)
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 5 {
			return nil, fmt.Errorf("workload: trace line %d has %d fields, want 5", lineNo, len(fields))
		}
		submit, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: trace line %d submit: %w", lineNo, err)
		}
		var kind AppKind
		switch fields[2] {
		case "FT":
			kind = FT
		case "GADGET2":
			kind = Gadget
		default:
			return nil, fmt.Errorf("workload: trace line %d unknown app %q", lineNo, fields[2])
		}
		var malleable bool
		switch fields[3] {
		case "malleable":
			malleable = true
		case "rigid":
			malleable = false
		default:
			return nil, fmt.Errorf("workload: trace line %d unknown class %q", lineNo, fields[3])
		}
		size, err := strconv.Atoi(fields[4])
		if err != nil || size <= 0 {
			return nil, fmt.Errorf("workload: trace line %d bad size %q", lineNo, fields[4])
		}
		wl.Items = append(wl.Items, Item{
			ID: fields[0], SubmitAt: submit, App: kind, Malleable: malleable, Size: size,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for i := 1; i < len(wl.Items); i++ {
		if wl.Items[i].SubmitAt < wl.Items[i-1].SubmitAt {
			return nil, fmt.Errorf("workload: trace submissions out of order at %q", wl.Items[i].ID)
		}
	}
	return wl, nil
}
