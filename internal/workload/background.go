package workload

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// BackgroundSpec parameterises the local-user background load of §V-B:
// users who bypass KOALA and seize nodes directly at their cluster's local
// resource manager. KOALA only discovers these through KIS polling.
type BackgroundSpec struct {
	// MeanInterArrival is the mean time between local sessions per cluster.
	MeanInterArrival float64
	// MeanDuration is the mean session length.
	MeanDuration float64
	// MaxNodes bounds the nodes one session grabs (uniform in [1,MaxNodes]).
	MaxNodes int
	// Seed drives the generator.
	Seed uint64
}

// Validate checks the parameters.
func (s *BackgroundSpec) Validate() error {
	if s.MeanInterArrival <= 0 || s.MeanDuration <= 0 || s.MaxNodes <= 0 {
		return fmt.Errorf("workload: background spec must be positive: %+v", s)
	}
	return nil
}

// BackgroundLoad drives local-user sessions on every cluster of the grid.
type BackgroundLoad struct {
	engine *sim.Engine
	rng    *sim.RNG
	spec   BackgroundSpec

	sessions uint64
	denied   uint64
	stopped  bool
}

// bgSite drives the sessions of one cluster. The arrival closure is built
// once and every session-end event fires on the bgSite itself (the op code
// carries the node count), so steady-state background load allocates
// nothing per session.
type bgSite struct {
	b      *BackgroundLoad
	c      *cluster.Cluster
	rng    *sim.RNG
	arrive func()
}

// OnEvent implements sim.Handler: a session of op nodes ended — give the
// nodes back. The cluster accounting guarantees this cannot release more
// than is held.
func (s *bgSite) OnEvent(op int) {
	s.c.ReleaseBackground(op)
}

// StartBackground begins generating background sessions on all clusters.
func StartBackground(engine *sim.Engine, grid *cluster.Multicluster, spec BackgroundSpec) (*BackgroundLoad, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	b := &BackgroundLoad{engine: engine, rng: sim.NewRNG(spec.Seed), spec: spec}
	for _, c := range grid.Clusters() {
		s := &bgSite{b: b, c: c, rng: b.rng.Split()}
		s.arrive = func() {
			if b.stopped {
				return
			}
			b.runSession(s)
			s.scheduleNext()
		}
		s.scheduleNext()
	}
	return b, nil
}

// Stop ends session generation (running sessions still terminate normally).
func (b *BackgroundLoad) Stop() { b.stopped = true }

// Sessions returns how many sessions started.
func (b *BackgroundLoad) Sessions() uint64 { return b.sessions }

// Denied returns how many sessions found no free nodes and gave up.
func (b *BackgroundLoad) Denied() uint64 { return b.denied }

func (s *bgSite) scheduleNext() {
	delay := s.rng.ExpFloat64() * s.b.spec.MeanInterArrival
	s.b.engine.After(delay, s.arrive)
}

func (b *BackgroundLoad) runSession(s *bgSite) {
	c, rng := s.c, s.rng
	want := 1 + rng.Intn(b.spec.MaxNodes)
	if want > c.Idle() {
		want = c.Idle()
	}
	if want <= 0 {
		b.denied++
		return
	}
	if err := c.SeizeBackground(want); err != nil {
		b.denied++
		return
	}
	b.sessions++
	duration := rng.ExpFloat64() * b.spec.MeanDuration
	b.engine.AfterOp(duration, s, want)
}
