package workload

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/sim"
)

// BackgroundSpec parameterises the local-user background load of §V-B:
// users who bypass KOALA and seize nodes directly at their cluster's local
// resource manager. KOALA only discovers these through KIS polling.
type BackgroundSpec struct {
	// MeanInterArrival is the mean time between local sessions per cluster.
	MeanInterArrival float64
	// MeanDuration is the mean session length.
	MeanDuration float64
	// MaxNodes bounds the nodes one session grabs (uniform in [1,MaxNodes]).
	MaxNodes int
	// Seed drives the generator.
	Seed uint64
}

// Validate checks the parameters.
func (s *BackgroundSpec) Validate() error {
	if s.MeanInterArrival <= 0 || s.MeanDuration <= 0 || s.MaxNodes <= 0 {
		return fmt.Errorf("workload: background spec must be positive: %+v", s)
	}
	return nil
}

// BackgroundLoad drives local-user sessions on every cluster of the grid.
type BackgroundLoad struct {
	engine *sim.Engine
	rng    *sim.RNG
	spec   BackgroundSpec

	sessions uint64
	denied   uint64
	stopped  bool
}

// StartBackground begins generating background sessions on all clusters.
func StartBackground(engine *sim.Engine, grid *cluster.Multicluster, spec BackgroundSpec) (*BackgroundLoad, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	b := &BackgroundLoad{engine: engine, rng: sim.NewRNG(spec.Seed), spec: spec}
	for _, c := range grid.Clusters() {
		b.scheduleNext(c, b.rng.Split())
	}
	return b, nil
}

// Stop ends session generation (running sessions still terminate normally).
func (b *BackgroundLoad) Stop() { b.stopped = true }

// Sessions returns how many sessions started.
func (b *BackgroundLoad) Sessions() uint64 { return b.sessions }

// Denied returns how many sessions found no free nodes and gave up.
func (b *BackgroundLoad) Denied() uint64 { return b.denied }

func (b *BackgroundLoad) scheduleNext(c *cluster.Cluster, rng *sim.RNG) {
	delay := rng.ExpFloat64() * b.spec.MeanInterArrival
	b.engine.After(delay, func() {
		if b.stopped {
			return
		}
		b.runSession(c, rng)
		b.scheduleNext(c, rng)
	})
}

func (b *BackgroundLoad) runSession(c *cluster.Cluster, rng *sim.RNG) {
	want := 1 + rng.Intn(b.spec.MaxNodes)
	if want > c.Idle() {
		want = c.Idle()
	}
	if want <= 0 {
		b.denied++
		return
	}
	if err := c.SeizeBackground(want); err != nil {
		b.denied++
		return
	}
	b.sessions++
	duration := rng.ExpFloat64() * b.spec.MeanDuration
	n := want
	b.engine.After(duration, func() {
		// Give the nodes back; the cluster accounting guarantees this
		// cannot release more than is held.
		c.ReleaseBackground(n)
	})
}
