package workload

import (
	"fmt"

	"repro/internal/app"
)

// PreparedSpec is the immutable, share-once half of workload generation:
// everything about a Spec that does not depend on the seed — validation,
// the rendered job ID strings, and the resolved application profiles.
// One PreparedSpec serves every replication of a sweep point; Generate
// only draws the per-seed random choices, so batched replications skip
// the fmt.Sprintf per job and the profile cache lookups per submission.
//
// A PreparedSpec is read-only after PrepareSpec returns and safe for
// concurrent use by parallel replication workers.
type PreparedSpec struct {
	spec Spec
	ids  []string

	// Profiles are immutable and shared process-wide, so resolving them
	// once here hands every generated item its profile without the
	// per-call cache lookup in Item.JobSpec.
	rigidFT     *app.Profile
	rigidGadget *app.Profile
}

// PrepareSpec validates spec and precomputes its seed-independent parts.
// The spec's Seed field is ignored; pass the seed to Generate.
func PrepareSpec(spec Spec) (*PreparedSpec, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	p := &PreparedSpec{
		spec:        spec,
		ids:         make([]string, spec.Jobs),
		rigidFT:     rigidProfile(FT, spec.RigidSize),
		rigidGadget: rigidProfile(Gadget, spec.RigidSize),
	}
	for i := range p.ids {
		p.ids[i] = fmt.Sprintf("%s-%03d", spec.Name, i)
	}
	return p, nil
}

// Spec returns the validated spec (Seed as passed to PrepareSpec).
func (p *PreparedSpec) Spec() Spec { return p.spec }

// Generate produces the workload for the given seed — byte-identical to
// Generate(spec with that Seed) — reusing the prepared ID strings and
// profile pointers. The returned Workload is freshly allocated and owned
// by the caller; only the immutable parts are shared.
func (p *PreparedSpec) Generate(seed uint64) *Workload {
	spec := p.spec
	spec.Seed = seed
	w := generate(spec, p)
	return w
}
