package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/koala"
	"repro/internal/sim"
)

func TestGenerateWm(t *testing.T) {
	w, err := Generate(Wm(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Items) != 300 {
		t.Fatalf("jobs = %d", len(w.Items))
	}
	if w.CountMalleable() != 300 {
		t.Fatalf("malleable = %d, want all", w.CountMalleable())
	}
	for i, it := range w.Items {
		if it.SubmitAt != float64(i)*120 {
			t.Fatalf("item %d at %g, want %g", i, it.SubmitAt, float64(i)*120)
		}
		if it.Size != 2 {
			t.Fatalf("item %d size %d", i, it.Size)
		}
	}
	if w.Duration() != 299*120 {
		t.Fatalf("duration = %g", w.Duration())
	}
}

func TestGenerateWmrMixesClasses(t *testing.T) {
	w, _ := Generate(Wmr(7))
	m := w.CountMalleable()
	if m < 100 || m > 200 {
		t.Fatalf("malleable = %d of 300, want ≈150", m)
	}
}

func TestGenerateMixesApps(t *testing.T) {
	w, _ := Generate(Wm(3))
	ft := 0
	for _, it := range w.Items {
		if it.App == FT {
			ft++
		}
	}
	if ft < 100 || ft > 200 {
		t.Fatalf("FT jobs = %d of 300, want ≈150", ft)
	}
}

func TestPrimeWorkloadsUse30s(t *testing.T) {
	for _, spec := range []Spec{WmPrime(1), WmrPrime(1)} {
		if spec.InterArrival != 30 {
			t.Fatalf("%s inter-arrival = %g", spec.Name, spec.InterArrival)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(Wmr(42))
	b, _ := Generate(Wmr(42))
	for i := range a.Items {
		if !a.Items[i].Equal(b.Items[i]) {
			t.Fatalf("item %d differs across same-seed generations", i)
		}
	}
	c, _ := Generate(Wmr(43))
	same := true
	for i := range a.Items {
		if !a.Items[i].Equal(c.Items[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestPoissonArrivals(t *testing.T) {
	spec := Wm(5)
	spec.PoissonArrivals = true
	w, _ := Generate(spec)
	// Mean inter-arrival should be ≈120.
	mean := w.Duration() / float64(len(w.Items)-1)
	if math.Abs(mean-120) > 25 {
		t.Fatalf("poisson mean inter-arrival = %g", mean)
	}
	// Spacings must vary.
	d0 := w.Items[1].SubmitAt - w.Items[0].SubmitAt
	d1 := w.Items[2].SubmitAt - w.Items[1].SubmitAt
	if d0 == d1 {
		t.Fatal("poisson spacings identical")
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{Name: "x", Jobs: 0, InterArrival: 1, MalleableFraction: 1, InitialSize: 2, RigidSize: 2},
		{Name: "x", Jobs: 1, InterArrival: 0, MalleableFraction: 1, InitialSize: 2, RigidSize: 2},
		{Name: "x", Jobs: 1, InterArrival: 1, MalleableFraction: 2, InitialSize: 2, RigidSize: 2},
		{Name: "x", Jobs: 1, InterArrival: 1, MalleableFraction: 1, InitialSize: 0, RigidSize: 2},
	}
	for i, s := range bad {
		if _, err := Generate(s); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestSpecByName(t *testing.T) {
	for name, want := range map[string]string{"Wm": "Wm", "Wmr": "Wmr", "W'm": "W'm", "W'mr": "W'mr"} {
		s, err := SpecByName(name, 1)
		if err != nil || s.Name != want {
			t.Errorf("SpecByName(%q) = %+v, %v", name, s, err)
		}
	}
	if _, err := SpecByName("zzz", 1); err == nil {
		t.Fatal("unknown name should fail")
	}
}

func TestItemJobSpec(t *testing.T) {
	cases := []struct {
		item      Item
		malleable bool
	}{
		{Item{ID: "a", App: FT, Malleable: true, Size: 2}, true},
		{Item{ID: "b", App: Gadget, Malleable: true, Size: 2}, true},
		{Item{ID: "c", App: FT, Malleable: false, Size: 2}, false},
		{Item{ID: "d", App: Gadget, Malleable: false, Size: 2}, false},
	}
	for _, c := range cases {
		spec := c.item.JobSpec()
		if err := spec.Validate(); err != nil {
			t.Errorf("item %s spec invalid: %v", c.item.ID, err)
		}
		if spec.Malleable() != c.malleable {
			t.Errorf("item %s malleable = %v", c.item.ID, spec.Malleable())
		}
	}
}

func TestSubmitReplaysAtRightTimes(t *testing.T) {
	e := sim.New()
	w, _ := Generate(Spec{Name: "t", Jobs: 5, InterArrival: 10, MalleableFraction: 1, InitialSize: 2, RigidSize: 2, Seed: 1})
	var times []float64
	sub := Submit(e, w, func(koala.JobSpec) error {
		times = append(times, e.Now())
		return nil
	})
	e.Run()
	if sub.Submitted() != 5 || len(sub.Errs()) != 0 {
		t.Fatalf("submitted=%d errs=%v", sub.Submitted(), sub.Errs())
	}
	for i, tm := range times {
		if tm != float64(i*10) {
			t.Fatalf("times = %v", times)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	w, _ := Generate(Wmr(11))
	var buf bytes.Buffer
	if err := WriteTrace(&buf, w); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "Wmr" || len(got.Items) != len(w.Items) {
		t.Fatalf("round trip: name=%q items=%d", got.Name, len(got.Items))
	}
	for i := range w.Items {
		if !got.Items[i].Equal(w.Items[i]) {
			t.Fatalf("item %d: %+v != %+v", i, got.Items[i], w.Items[i])
		}
	}
}

func TestReadTraceErrors(t *testing.T) {
	bad := []string{
		"a 0 FT malleable",                        // too few fields
		"a x FT malleable 2",                      // bad submit
		"a 0 WAT malleable 2",                     // bad app
		"a 0 FT sideways 2",                       // bad class
		"a 0 FT malleable zero",                   // bad size
		"a 10 FT malleable 2\nb 5 FT malleable 2", // out of order
	}
	for i, s := range bad {
		if _, err := ReadTrace(strings.NewReader(s)); err == nil {
			t.Errorf("bad trace %d accepted", i)
		}
	}
}

// Property: generated submissions are sorted and sizes stay positive.
func TestPropertyGenerateWellFormed(t *testing.T) {
	f := func(seed uint64, jobsRaw, fracRaw uint8) bool {
		spec := Spec{
			Name:              "p",
			Jobs:              int(jobsRaw%100) + 1,
			InterArrival:      30,
			MalleableFraction: float64(fracRaw) / 255,
			InitialSize:       2,
			RigidSize:         2,
			Seed:              seed,
		}
		w, err := Generate(spec)
		if err != nil {
			return false
		}
		for i, it := range w.Items {
			if it.Size <= 0 {
				return false
			}
			if i > 0 && it.SubmitAt < w.Items[i-1].SubmitAt {
				return false
			}
		}
		return len(w.Items) == spec.Jobs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBackgroundLoadSeizesAndReleases(t *testing.T) {
	e := sim.New()
	grid := cluster.NewMulticluster(cluster.New("A", 32), cluster.New("B", 32))
	bg, err := StartBackground(e, grid, BackgroundSpec{MeanInterArrival: 50, MeanDuration: 100, MaxNodes: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	e.RunUntil(2000)
	if bg.Sessions() == 0 {
		t.Fatal("no background sessions started")
	}
	bg.Stop()
	e.RunUntil(1e6) // all sessions end
	if grid.TotalBackground() != 0 {
		t.Fatalf("background nodes leaked: %d", grid.TotalBackground())
	}
}

func TestBackgroundSpecValidation(t *testing.T) {
	e := sim.New()
	grid := cluster.NewMulticluster(cluster.New("A", 4))
	if _, err := StartBackground(e, grid, BackgroundSpec{}); err == nil {
		t.Fatal("zero spec should fail")
	}
}

func TestAppKindString(t *testing.T) {
	if FT.String() != "FT" || Gadget.String() != "GADGET2" || AppKind(9).String() == "" {
		t.Fatal("AppKind strings")
	}
}
