// Package workload generates the workloads of the paper's evaluation
// (§VI-C): 300 jobs drawn uniformly from the two applications (FT and
// GADGET-2), submitted from a single client site with fixed inter-arrival
// times — 120 s for the PRA experiments (Wm, Wmr) and 30 s for the PWA
// experiments (W'm, W'mr). Wm/W'm are all-malleable; Wmr/W'mr mix 50%
// malleable and 50% rigid jobs of size 2.
//
// It also provides a background-load generator modelling local users who
// bypass KOALA (§V-B), and an SWF-like trace format so workloads can be
// saved, inspected and replayed.
package workload

import (
	"fmt"
	"sync"

	"repro/internal/app"
	"repro/internal/koala"
	"repro/internal/sim"
)

// AppKind selects one of the two applications of §VI-A.
type AppKind int

const (
	// FT is the NAS Parallel Benchmark FT kernel.
	FT AppKind = iota
	// Gadget is the GADGET-2 n-body simulator.
	Gadget
)

// String implements fmt.Stringer.
func (k AppKind) String() string {
	switch k {
	case FT:
		return "FT"
	case Gadget:
		return "GADGET2"
	default:
		return fmt.Sprintf("app(%d)", int(k))
	}
}

// Item is one job of a workload: what to submit and when.
type Item struct {
	ID        string
	SubmitAt  float64
	App       AppKind
	Malleable bool
	Size      int // initial size (malleable) or fixed size (rigid)

	// profile, when non-nil, is the pre-resolved application profile
	// (set by PreparedSpec.Generate); JobSpec then skips the cache
	// lookup. Profiles are canonical shared instances, so a prepared
	// item's JobSpec is identical to an unprepared one's.
	profile *app.Profile
	// comps, when non-nil, is the item's ready single-component slice,
	// diced out of the workload's arena by generate; JobSpec then
	// allocates nothing. The scheduler treats submitted components as
	// read-only, so sharing the arena backing is safe.
	comps []koala.ComponentSpec
}

// Profiles are immutable after construction, so every item of every run can
// share one instance per (application, class, size) instead of building a
// fresh profile — and its runtime model tables — per submission. The rigid
// cache is keyed by size and mutex-guarded because parallel sweep workers
// submit concurrently.
var (
	ftMalleable     = app.FTProfile()
	gadgetMalleable = app.GadgetProfile()

	rigidMu    sync.Mutex
	rigidCache = map[rigidKey]*app.Profile{}
)

type rigidKey struct {
	app  AppKind
	size int
}

func rigidProfile(kind AppKind, size int) *app.Profile {
	rigidMu.Lock()
	defer rigidMu.Unlock()
	key := rigidKey{kind, size}
	if p, ok := rigidCache[key]; ok {
		return p
	}
	var p *app.Profile
	if kind == FT {
		p = app.RigidProfile("FT-rigid", app.FTModel(), size)
	} else {
		p = app.RigidProfile("GADGET2-rigid", app.GadgetModel(), size)
	}
	rigidCache[key] = p
	return p
}

// Equal reports whether two items describe the same submission (the
// arena-backed comps window is derived state and excluded).
func (it Item) Equal(o Item) bool {
	return it.ID == o.ID && it.SubmitAt == o.SubmitAt && it.App == o.App &&
		it.Malleable == o.Malleable && it.Size == o.Size && it.profile == o.profile
}

// Spec builds Item.Spec's job description for submission to KOALA.
func (it Item) JobSpec() koala.JobSpec {
	if it.comps != nil {
		return koala.JobSpec{ID: it.ID, Components: it.comps}
	}
	profile := it.profile
	if profile == nil {
		switch {
		case it.Malleable && it.App == FT:
			profile = ftMalleable
		case it.Malleable && it.App == Gadget:
			profile = gadgetMalleable
		default:
			profile = rigidProfile(it.App, it.Size)
		}
	}
	return koala.JobSpec{
		ID:         it.ID,
		Components: []koala.ComponentSpec{{Profile: profile, Size: it.Size}},
	}
}

// Workload is an ordered list of submissions.
type Workload struct {
	Name  string
	Items []Item
}

// Duration returns the submission span (time of the last submission).
func (w *Workload) Duration() float64 {
	if len(w.Items) == 0 {
		return 0
	}
	return w.Items[len(w.Items)-1].SubmitAt
}

// CountMalleable returns how many items are malleable.
func (w *Workload) CountMalleable() int {
	n := 0
	for _, it := range w.Items {
		if it.Malleable {
			n++
		}
	}
	return n
}

// Spec parameterises workload generation.
type Spec struct {
	Name string
	// Jobs is the number of submissions (the paper uses 300).
	Jobs int
	// InterArrival is the fixed time between submissions in seconds
	// (120 for Wm/Wmr, 30 for W'm/W'mr).
	InterArrival float64
	// PoissonArrivals replaces the fixed spacing with exponential
	// inter-arrival times of the same mean (an extension for sensitivity
	// studies; the paper uses fixed spacing).
	PoissonArrivals bool
	// MalleableFraction is the probability that a job is malleable
	// (1.0 for Wm/W'm, 0.5 for Wmr/W'mr).
	MalleableFraction float64
	// InitialSize is the malleable jobs' initial size (2 in the paper).
	InitialSize int
	// RigidSize is the rigid jobs' fixed size (2 in the paper).
	RigidSize int
	// Seed drives all random choices.
	Seed uint64
}

// Validate checks the generation parameters.
func (s *Spec) Validate() error {
	if s.Jobs <= 0 {
		return fmt.Errorf("workload: %q needs a positive job count", s.Name)
	}
	if s.InterArrival <= 0 {
		return fmt.Errorf("workload: %q needs a positive inter-arrival time", s.Name)
	}
	if s.MalleableFraction < 0 || s.MalleableFraction > 1 {
		return fmt.Errorf("workload: %q malleable fraction %g outside [0,1]", s.Name, s.MalleableFraction)
	}
	if s.InitialSize <= 0 || s.RigidSize <= 0 {
		return fmt.Errorf("workload: %q sizes must be positive", s.Name)
	}
	return nil
}

// Generate produces the workload for the spec, deterministically for a given
// seed.
func Generate(spec Spec) (*Workload, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return generate(spec, nil), nil
}

// generate is the seeded generator core shared by Generate and
// PreparedSpec.Generate. When prep is non-nil, the rendered ID strings
// and resolved profiles are taken from it instead of being rebuilt; the
// random draws are identical either way, so both paths produce the same
// workload for the same spec and seed.
func generate(spec Spec, prep *PreparedSpec) *Workload {
	rng := sim.NewRNG(spec.Seed)
	w := &Workload{Name: spec.Name, Items: make([]Item, 0, spec.Jobs)}
	// One flat component arena for the whole workload (prepared path):
	// each item's JobSpec slice is a ready 1-element window into it.
	var arena []koala.ComponentSpec
	if prep != nil {
		arena = make([]koala.ComponentSpec, spec.Jobs)
	}
	t := 0.0
	for i := 0; i < spec.Jobs; i++ {
		kind := FT
		if rng.Bool(0.5) {
			kind = Gadget
		}
		malleable := rng.Bool(spec.MalleableFraction)
		size := spec.InitialSize
		if !malleable {
			size = spec.RigidSize
		}
		it := Item{
			SubmitAt:  t,
			App:       kind,
			Malleable: malleable,
			Size:      size,
		}
		if prep != nil {
			it.ID = prep.ids[i]
			switch {
			case malleable && kind == FT:
				it.profile = ftMalleable
			case malleable && kind == Gadget:
				it.profile = gadgetMalleable
			case kind == FT:
				it.profile = prep.rigidFT
			default:
				it.profile = prep.rigidGadget
			}
			arena[i] = koala.ComponentSpec{Profile: it.profile, Size: it.Size}
			it.comps = arena[i : i+1 : i+1]
		} else {
			it.ID = fmt.Sprintf("%s-%03d", spec.Name, i)
		}
		w.Items = append(w.Items, it)
		if spec.PoissonArrivals {
			t += rng.ExpFloat64() * spec.InterArrival
		} else {
			t += spec.InterArrival
		}
	}
	return w
}

// Wm returns the all-malleable PRA workload of §VI-C (300 jobs, 120 s
// inter-arrival, initial size 2).
func Wm(seed uint64) Spec {
	return Spec{Name: "Wm", Jobs: 300, InterArrival: 120, MalleableFraction: 1, InitialSize: 2, RigidSize: 2, Seed: seed}
}

// Wmr returns the 50% malleable / 50% rigid PRA workload of §VI-C.
func Wmr(seed uint64) Spec {
	s := Wm(seed)
	s.Name = "Wmr"
	s.MalleableFraction = 0.5
	return s
}

// WmPrime returns W'm: Wm with the inter-arrival time reduced to 30 s to
// increase system load for the PWA experiments.
func WmPrime(seed uint64) Spec {
	s := Wm(seed)
	s.Name = "W'm"
	s.InterArrival = 30
	return s
}

// WmrPrime returns W'mr: Wmr with 30 s inter-arrival.
func WmrPrime(seed uint64) Spec {
	s := Wmr(seed)
	s.Name = "W'mr"
	s.InterArrival = 30
	return s
}

// SpecByName resolves the four paper workload names.
func SpecByName(name string, seed uint64) (Spec, error) {
	switch name {
	case "Wm", "wm":
		return Wm(seed), nil
	case "Wmr", "wmr":
		return Wmr(seed), nil
	case "W'm", "wm'", "wmprime", "Wm'":
		return WmPrime(seed), nil
	case "W'mr", "wmr'", "wmrprime", "Wmr'":
		return WmrPrime(seed), nil
	default:
		return Spec{}, fmt.Errorf("workload: unknown workload %q", name)
	}
}

// Submitter replays a workload into a scheduler at the items' submit
// times. It is a sim.Handler: one Submitter serves every submission
// event with the item index as the op code, so replaying a 300-job
// workload schedules zero per-item closures.
type Submitter struct {
	engine    *sim.Engine
	w         *Workload
	submit    func(koala.JobSpec) error
	submitted int
	errs      []error
}

// Submit schedules every item of w for submission through submit. The
// returned Submitter reports progress and collected errors.
func Submit(engine *sim.Engine, w *Workload, submit func(koala.JobSpec) error) *Submitter {
	s := &Submitter{engine: engine, w: w, submit: submit}
	for i, it := range w.Items {
		engine.AtOp(it.SubmitAt, s, i)
	}
	return s
}

// OnEvent implements sim.Handler: submit item op.
func (s *Submitter) OnEvent(op int) {
	it := s.w.Items[op]
	if err := s.submit(it.JobSpec()); err != nil {
		s.errs = append(s.errs, fmt.Errorf("submit %s: %w", it.ID, err))
		return
	}
	s.submitted++
}

// Submitted returns how many items were accepted so far.
func (s *Submitter) Submitted() int { return s.submitted }

// Errs returns submission errors collected so far.
func (s *Submitter) Errs() []error { return s.errs }
