package obs

import (
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Trace/span ID propagation headers: a coordinator dispatching a run to
// a worker koalad stamps these on POST /v1/runs/execute so the worker's
// spans parent correctly under the coordinator's dispatch span.
const (
	TraceIDHeader  = "X-Koalad-Trace-Id"
	ParentIDHeader = "X-Koalad-Span-Id"
)

// NewID returns a fresh 8-byte hex span/trace ID.
func NewID() string {
	var b [8]byte
	// crypto/rand never fails on the supported platforms; if it somehow
	// does, the zero ID is still a usable (if colliding) identifier.
	_, _ = rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// Span is one timed operation within a trace. Start/End are wall-clock
// times: traces are per-process observability and are deliberately
// excluded from determinism comparisons.
type Span struct {
	ID     string            `json:"id"`
	Parent string            `json:"parent,omitempty"`
	Name   string            `json:"name"`
	Start  time.Time         `json:"start"`
	End    time.Time         `json:"end,omitzero"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// DurationSeconds returns the span's length, or 0 while it is open.
func (s Span) DurationSeconds() float64 {
	if s.End.IsZero() {
		return 0
	}
	return s.End.Sub(s.Start).Seconds()
}

// Trace is one run's span collection. All methods are safe for
// concurrent use; spans are identified by ID, not by pointer, so spans
// imported from another process (a worker's trace event) coexist with
// locally recorded ones.
type Trace struct {
	ID string

	mu    sync.Mutex
	spans []Span
	open  map[string]int // span ID -> index of a not-yet-ended span
}

// NewTrace starts a trace. An empty id draws a fresh one.
func NewTrace(id string) *Trace {
	if id == "" {
		id = NewID()
	}
	return &Trace{ID: id, open: make(map[string]int)}
}

// StartSpan opens a span under the given parent span ID ("" for a
// root) and returns its ID.
func (t *Trace) StartSpan(parent, name string, attrs map[string]string) string {
	id := NewID()
	t.mu.Lock()
	t.open[id] = len(t.spans)
	t.spans = append(t.spans, Span{ID: id, Parent: parent, Name: name, Start: time.Now(), Attrs: attrs})
	t.mu.Unlock()
	return id
}

// EndSpan closes the span. Ending an unknown or already-ended span is a
// no-op, so lifecycle paths with several exits can all call it.
func (t *Trace) EndSpan(id string) {
	t.mu.Lock()
	if i, ok := t.open[id]; ok {
		t.spans[i].End = time.Now()
		delete(t.open, id)
	}
	t.mu.Unlock()
}

// SetAttr annotates an open or closed span.
func (t *Trace) SetAttr(id, key, value string) {
	t.mu.Lock()
	for i := range t.spans {
		if t.spans[i].ID == id {
			if t.spans[i].Attrs == nil {
				t.spans[i].Attrs = make(map[string]string)
			}
			t.spans[i].Attrs[key] = value
			break
		}
	}
	t.mu.Unlock()
}

// Point records an instantaneous (zero-length, already-ended) span.
func (t *Trace) Point(parent, name string, attrs map[string]string) {
	now := time.Now()
	t.mu.Lock()
	t.spans = append(t.spans, Span{ID: NewID(), Parent: parent, Name: name, Start: now, End: now, Attrs: attrs})
	t.mu.Unlock()
}

// Import merges spans recorded elsewhere (a worker's trace event) into
// this trace. Attr maps are copied so the caller may reuse its slice.
func (t *Trace) Import(spans []Span) {
	t.mu.Lock()
	for _, s := range spans {
		if s.Attrs != nil {
			attrs := make(map[string]string, len(s.Attrs))
			for k, v := range s.Attrs { //koalalint:ordered copied into a map; order-insensitive
				attrs[k] = v
			}
			s.Attrs = attrs
		}
		t.spans = append(t.spans, s)
	}
	t.mu.Unlock()
}

// TraceJSON is the wire form of a trace: GET /v1/experiments/{id}/trace
// and koalasim -trace both emit it.
type TraceJSON struct {
	TraceID string `json:"trace_id"`
	Spans   []Span `json:"spans"`
}

// Snapshot deep-copies the trace, spans ordered by start time (ties by
// span ID) so the output is stable for a finished run.
func (t *Trace) Snapshot() TraceJSON {
	t.mu.Lock()
	spans := make([]Span, len(t.spans))
	copy(spans, t.spans)
	t.mu.Unlock()
	sort.SliceStable(spans, func(i, j int) bool {
		if !spans[i].Start.Equal(spans[j].Start) {
			return spans[i].Start.Before(spans[j].Start)
		}
		return spans[i].ID < spans[j].ID
	})
	return TraceJSON{TraceID: t.ID, Spans: spans}
}

// SpanContext is the propagated identity of a remote parent span.
type SpanContext struct {
	TraceID string
	SpanID  string
}

// InjectHTTP stamps the span context onto an outgoing request.
func (sc SpanContext) InjectHTTP(req *http.Request) {
	if sc.TraceID == "" {
		return
	}
	req.Header.Set(TraceIDHeader, sc.TraceID)
	req.Header.Set(ParentIDHeader, sc.SpanID)
}

// ExtractHTTP reads a propagated span context from an incoming request.
func ExtractHTTP(r *http.Request) (SpanContext, bool) {
	id := r.Header.Get(TraceIDHeader)
	if id == "" {
		return SpanContext{}, false
	}
	return SpanContext{TraceID: id, SpanID: r.Header.Get(ParentIDHeader)}, true
}
