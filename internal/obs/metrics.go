package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// This file is the metric side of the plane: a small registry of
// counters, gauges and fixed-bucket histograms rendered in Prometheus
// text exposition format (version 0.0.4), with one optional label
// dimension for the vector forms. No client library: the daemon's
// dependency budget is the standard library, and the handful of metric
// shapes koalad needs fit in a few hundred lines.

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0; counters never go down).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable int64 metric.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed cumulative-on-render buckets
// plus the exact sum and count. Observe is lock-free: one atomic add on
// the bucket, count, and the float-bits CAS on the sum.
type Histogram struct {
	bounds  []float64 // upper bounds, ascending; +Inf is implicit
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// ExpBuckets returns n exponentially growing upper bounds starting at
// start (start, start*factor, ...). It panics on a non-positive start,
// a factor <= 1 or n < 1 — bucket layouts are compile-time decisions.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: invalid exponential buckets (start=%g factor=%g n=%d)", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefaultLatencyBuckets span 100µs to ~27min exponentially — wide
// enough for queue waits and multi-minute simulations alike.
func DefaultLatencyBuckets() []float64 { return ExpBuckets(100e-6, 4, 12) }

const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// family is one exposition family: a name, HELP/TYPE, and its children
// (one for plain metrics, one per label value for vectors).
type family struct {
	name, help, typ string
	label           string // vector label name, "" for plain metrics

	mu       sync.Mutex
	order    []string // label values in first-seen order (sorted at render)
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	sample   func() float64 // gauge func, mutually exclusive with gauges
	bounds   []float64
}

// Registry holds metric families and renders them in registration
// order. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// lookup returns the family, creating it on first registration. A
// re-registration with a different type or label panics: metric
// identity bugs must fail loudly at startup, not render junk.
func (r *Registry) lookup(name, help, typ, label string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ || f.label != label {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s/%q (was %s/%q)", name, typ, label, f.typ, f.label))
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ, label: label,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// Counter registers (or fetches) a plain counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, typeCounter, "").child("").(*Counter)
}

// Gauge registers (or fetches) a plain gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, typeGauge, "").child("").(*Gauge)
}

// GaugeFunc registers a gauge sampled at render time.
func (r *Registry) GaugeFunc(name, help string, sample func() float64) {
	f := r.lookup(name, help, typeGauge, "")
	f.mu.Lock()
	f.sample = sample
	f.mu.Unlock()
}

// Histogram registers (or fetches) a plain histogram with the given
// upper bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.lookup(name, help, typeHistogram, "")
	f.mu.Lock()
	f.bounds = bounds
	f.mu.Unlock()
	return f.child("").(*Histogram)
}

// CounterVec is a counter family keyed by one label.
type CounterVec struct{ f *family }

// With returns the child counter for the label value.
func (v CounterVec) With(value string) *Counter { return v.f.child(value).(*Counter) }

// CounterVec registers a one-label counter family.
func (r *Registry) CounterVec(name, help, label string) CounterVec {
	return CounterVec{r.lookup(name, help, typeCounter, label)}
}

// GaugeVec is a gauge family keyed by one label (for example the
// per-worker circuit-breaker state).
type GaugeVec struct{ f *family }

// With returns the child gauge for the label value.
func (v GaugeVec) With(value string) *Gauge { return v.f.child(value).(*Gauge) }

// GaugeVec registers a one-label gauge family.
func (r *Registry) GaugeVec(name, help, label string) GaugeVec {
	return GaugeVec{r.lookup(name, help, typeGauge, label)}
}

// HistogramVec is a histogram family keyed by one label (for example
// the dispatch RTT histogram labeled by worker URL).
type HistogramVec struct{ f *family }

// With returns the child histogram for the label value.
func (v HistogramVec) With(value string) *Histogram { return v.f.child(value).(*Histogram) }

// HistogramVec registers a one-label histogram family.
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) HistogramVec {
	f := r.lookup(name, help, typeHistogram, label)
	f.mu.Lock()
	f.bounds = bounds
	f.mu.Unlock()
	return HistogramVec{f}
}

// child returns the metric for one label value, creating it on first use.
func (f *family) child(value string) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch f.typ {
	case typeCounter:
		if c, ok := f.counters[value]; ok {
			return c
		}
		c := &Counter{}
		f.counters[value] = c
		f.order = append(f.order, value)
		return c
	case typeGauge:
		if g, ok := f.gauges[value]; ok {
			return g
		}
		g := &Gauge{}
		f.gauges[value] = g
		f.order = append(f.order, value)
		return g
	case typeHistogram:
		if h, ok := f.hists[value]; ok {
			return h
		}
		h := newHistogram(f.bounds)
		f.hists[value] = h
		f.order = append(f.order, value)
		return h
	}
	panic("obs: unknown metric type " + f.typ)
}

// Render writes every family in Prometheus text exposition format:
// one # HELP and # TYPE line per family, children sorted by label value
// so scrapes are stable.
func (r *Registry) Render(w io.Writer) {
	r.mu.Lock()
	families := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range families {
		f.write(w)
	}
}

// series renders "name{label="value"}" (or just name without a label).
func (f *family) series(value string, extra string) string {
	var labels string
	switch {
	case f.label != "" && extra != "":
		labels = fmt.Sprintf(`{%s=%q,%s}`, f.label, value, extra)
	case f.label != "":
		labels = fmt.Sprintf(`{%s=%q}`, f.label, value)
	case extra != "":
		labels = "{" + extra + "}"
	}
	return f.name + labels
}

func (f *family) write(w io.Writer) {
	f.mu.Lock()
	values := append([]string(nil), f.order...)
	sample := f.sample
	f.mu.Unlock()
	sort.Strings(values)

	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
	if sample != nil {
		fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(sample()))
		return
	}
	for _, v := range values {
		switch f.typ {
		case typeCounter:
			f.mu.Lock()
			c := f.counters[v]
			f.mu.Unlock()
			fmt.Fprintf(w, "%s %d\n", f.series(v, ""), c.Value())
		case typeGauge:
			f.mu.Lock()
			g := f.gauges[v]
			f.mu.Unlock()
			fmt.Fprintf(w, "%s %d\n", f.series(v, ""), g.Value())
		case typeHistogram:
			f.mu.Lock()
			h := f.hists[v]
			f.mu.Unlock()
			cum := int64(0)
			for i, bound := range h.bounds {
				cum += h.buckets[i].Load()
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, bucketLabels(f.label, v, formatFloat(bound)), cum)
			}
			// The +Inf bucket equals _count by construction.
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, bucketLabels(f.label, v, "+Inf"), h.Count())
			fmt.Fprintf(w, "%s_sum%s %s\n", f.name, plainLabels(f.label, v), formatFloat(h.Sum()))
			fmt.Fprintf(w, "%s_count%s %d\n", f.name, plainLabels(f.label, v), h.Count())
		}
	}
}

func bucketLabels(label, value, le string) string {
	if label == "" {
		return fmt.Sprintf(`{le=%q}`, le)
	}
	return fmt.Sprintf(`{%s=%q,le=%q}`, label, value, le)
}

func plainLabels(label, value string) string {
	if label == "" {
		return ""
	}
	return fmt.Sprintf(`{%s=%q}`, label, value)
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trip representation, no exponent for typical magnitudes.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
