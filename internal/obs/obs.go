// Package obs is the cluster's observability plane: run lifecycle
// traces, latency histograms with Prometheus text exposition, slog
// construction helpers and a passive simulation-statistics collector —
// all on the standard library only.
//
// The package sits deliberately outside the deterministic simulation
// core (see docs/determinism.md): traces, histograms and loggers read
// the wall clock, which the simulation packages must never do. The one
// component that crosses the boundary, SimStats, therefore follows the
// opposite rule — it records only simulated time and event counts, and
// its hook methods are forbidden (by the koalalint obshook analyzer)
// from reading the wall clock or allocating, so the sim kernel can call
// them on its hot path without perturbing results or the allocs/op
// budget.
package obs
