package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestTraceSpanLifecycle(t *testing.T) {
	tr := NewTrace("")
	if tr.ID == "" {
		t.Fatal("NewTrace did not assign an ID")
	}
	root := tr.StartSpan("", "run", map[string]string{"run": "exp-1"})
	child := tr.StartSpan(root, "queue", nil)
	tr.EndSpan(child)
	tr.EndSpan(child) // double-end is a no-op
	tr.EndSpan(root)
	tr.Point(root, "retire", nil)

	snap := tr.Snapshot()
	if snap.TraceID != tr.ID {
		t.Fatalf("snapshot trace ID = %q, want %q", snap.TraceID, tr.ID)
	}
	if len(snap.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(snap.Spans))
	}
	byName := map[string]Span{}
	for _, s := range snap.Spans {
		byName[s.Name] = s
	}
	if byName["run"].Parent != "" {
		t.Errorf("root span has parent %q", byName["run"].Parent)
	}
	if byName["queue"].Parent != byName["run"].ID {
		t.Errorf("queue parent = %q, want root %q", byName["queue"].Parent, byName["run"].ID)
	}
	for _, name := range []string{"run", "queue", "retire"} {
		if byName[name].End.IsZero() {
			t.Errorf("span %s still open in snapshot", name)
		}
	}
	if byName["run"].Attrs["run"] != "exp-1" {
		t.Errorf("root attrs = %v", byName["run"].Attrs)
	}
}

func TestTraceImportAndJSONRoundTrip(t *testing.T) {
	worker := NewTrace("abc123")
	ws := worker.StartSpan("parent-span", "worker.run", map[string]string{"worker": "w1"})
	worker.EndSpan(ws)
	wire, err := json.Marshal(worker.Snapshot().Spans)
	if err != nil {
		t.Fatal(err)
	}

	var spans []Span
	if err := json.Unmarshal(wire, &spans); err != nil {
		t.Fatal(err)
	}
	co := NewTrace("abc123")
	co.Import(spans)
	snap := co.Snapshot()
	if len(snap.Spans) != 1 || snap.Spans[0].Parent != "parent-span" || snap.Spans[0].Attrs["worker"] != "w1" {
		t.Fatalf("imported spans = %+v", snap.Spans)
	}
}

func TestSpanContextHTTPPropagation(t *testing.T) {
	req := httptest.NewRequest(http.MethodPost, "/v1/runs/execute", nil)
	if _, ok := ExtractHTTP(req); ok {
		t.Fatal("extracted a span context from a bare request")
	}
	sc := SpanContext{TraceID: "t1", SpanID: "s1"}
	sc.InjectHTTP(req)
	got, ok := ExtractHTTP(req)
	if !ok || got != sc {
		t.Fatalf("ExtractHTTP = %+v, %v; want %+v", got, ok, sc)
	}
}

func TestSetAttr(t *testing.T) {
	tr := NewTrace("")
	id := tr.StartSpan("", "dispatch", nil)
	tr.SetAttr(id, "backend", "remote")
	tr.EndSpan(id)
	if got := tr.Snapshot().Spans[0].Attrs["backend"]; got != "remote" {
		t.Fatalf("attr backend = %q", got)
	}
}
