package obs

import "context"

type spanCtxKey struct{}
type spanSinkKey struct{}

// ContextWithSpanContext attaches the parent-span identity a backend
// should propagate to remote executions.
func ContextWithSpanContext(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanContextFrom reads the propagated span identity, if any.
func SpanContextFrom(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc, ok && sc.TraceID != ""
}

// SpanSink receives spans recorded away from the trace that owns them —
// a coordinator installs one so backend.Remote can deliver the spans a
// worker streamed back alongside its result.
type SpanSink func(spans []Span)

// ContextWithSpanSink attaches a span sink.
func ContextWithSpanSink(ctx context.Context, sink SpanSink) context.Context {
	return context.WithValue(ctx, spanSinkKey{}, sink)
}

// SpanSinkFrom reads the span sink, or nil.
func SpanSinkFrom(ctx context.Context) SpanSink {
	sink, _ := ctx.Value(spanSinkKey{}).(SpanSink)
	return sink
}
