package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Log formats accepted by NewLogger (the koalad -log-format values).
const (
	LogText = "text"
	LogJSON = "json"
)

// ParseLevel maps a -log-level flag value onto a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// NewLogger builds the process logger: text or JSON lines at the given
// level. Every daemon and CLI builds its logger here so the attribute
// vocabulary (run, hash, worker, trace fields) renders uniformly.
func NewLogger(w io.Writer, format string, level slog.Level) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch format {
	case LogText, "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case LogJSON:
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
}

// NopLogger returns a logger that discards everything — the default for
// embedded servers (tests) that did not ask for output.
func NopLogger() *slog.Logger { return slog.New(slog.DiscardHandler) }
