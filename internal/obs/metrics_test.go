package obs

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.1+0.5+5+50; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	// Per-bucket (non-cumulative) counts: 0.05 and 0.1 land in le=0.1
	// (bounds are inclusive), 0.5 in le=1, 5 in le=10, 50 overflows.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.buckets[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 10, 3)
	want := []float64{1, 10, 100}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
	for _, bad := range []func(){
		func() { ExpBuckets(0, 2, 3) },
		func() { ExpBuckets(1, 1, 3) },
		func() { ExpBuckets(1, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid bucket layout did not panic")
				}
			}()
			bad()
		}()
	}
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("koalad_test_total", "A counter.")
	c.Add(3)
	g := r.Gauge("koalad_test_depth", "A gauge.")
	g.Set(7)
	r.GaugeFunc("koalad_test_sampled", "A sampled gauge.", func() float64 { return 1.5 })
	h := r.Histogram("koalad_test_seconds", "A histogram.", []float64{0.5, 2})
	h.Observe(0.25)
	h.Observe(1)
	h.Observe(9)
	v := r.HistogramVec("koalad_test_rtt_seconds", "A labeled histogram.", "worker", []float64{1})
	v.With("http://b:1").Observe(0.5)
	v.With("http://a:1").Observe(3)

	var sb strings.Builder
	r.Render(&sb)
	out := sb.String()

	for _, want := range []string{
		"# HELP koalad_test_total A counter.\n# TYPE koalad_test_total counter\nkoalad_test_total 3\n",
		"koalad_test_depth 7\n",
		"koalad_test_sampled 1.5\n",
		`koalad_test_seconds_bucket{le="0.5"} 1`,
		`koalad_test_seconds_bucket{le="2"} 2`,
		`koalad_test_seconds_bucket{le="+Inf"} 3`,
		"koalad_test_seconds_sum 10.25\n",
		"koalad_test_seconds_count 3\n",
		`koalad_test_rtt_seconds_bucket{worker="http://a:1",le="1"} 0`,
		`koalad_test_rtt_seconds_bucket{worker="http://a:1",le="+Inf"} 1`,
		`koalad_test_rtt_seconds_sum{worker="http://a:1"} 3`,
		`koalad_test_rtt_seconds_bucket{worker="http://b:1",le="1"} 1`,
		`koalad_test_rtt_seconds_count{worker="http://b:1"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
	// Label values render sorted: worker a before worker b.
	if strings.Index(out, `worker="http://a:1"`) > strings.Index(out, `worker="http://b:1"`) {
		t.Error("vector children not sorted by label value")
	}
}

func TestRegistryReRegistration(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("koalad_x_total", "X.")
	c2 := r.Counter("koalad_x_total", "X.")
	if c1 != c2 {
		t.Fatal("re-registering the same counter returned a different instance")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting re-registration did not panic")
		}
	}()
	r.Gauge("koalad_x_total", "X as a gauge.")
}
