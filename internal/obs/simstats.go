package obs

import (
	"math"
	"sync/atomic"
)

// SimStats is the passive simulation-side collector: the sim engine
// flushes its kernel counters into it when a run loop returns, and the
// malleability manager feeds it per decision, all through nil-checked
// hooks, so a run can report kernel pressure (events
// scheduled/fired/canceled, peak pending) and per-policy adaptation
// activity (grow/shrink decisions) without touching the simulation's
// outcome.
//
// The contract, enforced by the koalalint obshook analyzer and the
// AllocsPerRun regression tests:
//
//   - Hook methods record only simulated time — never the wall clock.
//   - Hook methods never allocate.
//   - A nil *SimStats disables collection entirely; every feeding call
//     site is nil-guarded.
//
// All counters are atomics, so one collector may be shared by the
// concurrent replications of a run; the aggregate is exact even though
// the per-replication interleaving is not reproducible (sums of
// per-engine deltas are order-insensitive; peak and horizon fold in as
// maxima).
type SimStats struct {
	scheduled atomic.Int64
	fired     atomic.Int64
	canceled  atomic.Int64
	peak      atomic.Int64 // highest queue length of any single engine

	grows   atomic.Int64
	shrinks atomic.Int64

	horizon atomic.Uint64 // float64 bits: furthest virtual time reached
}

// NewSimStats returns an empty collector.
func NewSimStats() *SimStats { return &SimStats{} }

// EngineTotals implements sim.Stats: it folds one engine run stretch
// into the collector. scheduled/fired/canceled are that engine's deltas
// since its previous flush; pendingPeak and now are absolutes kept as
// maxima across flushes and engines.
func (s *SimStats) EngineTotals(scheduled, fired, canceled uint64, pendingPeak int, now float64) {
	s.scheduled.Add(int64(scheduled))
	s.fired.Add(int64(fired))
	s.canceled.Add(int64(canceled))
	p := int64(pendingPeak)
	for {
		peak := s.peak.Load()
		if p <= peak || s.peak.CompareAndSwap(peak, p) {
			break
		}
	}
	bits := math.Float64bits(now)
	for {
		old := s.horizon.Load()
		if now <= math.Float64frombits(old) || s.horizon.CompareAndSwap(old, bits) {
			break
		}
	}
}

// GrowDecisions records n grow messages decided at simulated time now.
func (s *SimStats) GrowDecisions(now float64, n int) {
	s.grows.Add(int64(n))
}

// ShrinkDecisions records n shrink messages decided at simulated time now.
func (s *SimStats) ShrinkDecisions(now float64, n int) {
	s.shrinks.Add(int64(n))
}

// SimStatsSnapshot is a point-in-time copy of the counters.
type SimStatsSnapshot struct {
	EventsScheduled int64   `json:"events_scheduled"`
	EventsFired     int64   `json:"events_fired"`
	EventsCanceled  int64   `json:"events_canceled"`
	PendingPeak     int64   `json:"pending_peak"` // highest queue length of any single engine
	GrowDecisions   int64   `json:"grow_decisions"`
	ShrinkDecisions int64   `json:"shrink_decisions"`
	SimHorizon      float64 `json:"sim_horizon"` // furthest virtual time reached (sim seconds)
}

// Snapshot copies the counters.
func (s *SimStats) Snapshot() SimStatsSnapshot {
	return SimStatsSnapshot{
		EventsScheduled: s.scheduled.Load(),
		EventsFired:     s.fired.Load(),
		EventsCanceled:  s.canceled.Load(),
		PendingPeak:     s.peak.Load(),
		GrowDecisions:   s.grows.Load(),
		ShrinkDecisions: s.shrinks.Load(),
		SimHorizon:      math.Float64frombits(s.horizon.Load()),
	}
}
