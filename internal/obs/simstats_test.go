package obs

import (
	"sync"
	"testing"
)

func TestSimStatsCounters(t *testing.T) {
	s := NewSimStats()
	// Two flushes from one engine: counts accumulate, peak and horizon
	// fold in as maxima.
	s.EngineTotals(2, 1, 0, 2, 3)
	s.EngineTotals(1, 0, 1, 3, 5)
	s.GrowDecisions(2, 4)
	s.ShrinkDecisions(3, 1)

	snap := s.Snapshot()
	if snap.EventsScheduled != 3 || snap.EventsFired != 1 || snap.EventsCanceled != 1 {
		t.Fatalf("counts = %+v", snap)
	}
	if snap.PendingPeak != 3 {
		t.Errorf("peak = %d, want 3", snap.PendingPeak)
	}
	if snap.SimHorizon != 5 {
		t.Errorf("horizon = %g, want 5", snap.SimHorizon)
	}
	if snap.GrowDecisions != 4 || snap.ShrinkDecisions != 1 {
		t.Errorf("decisions = %+v", snap)
	}
	// A flush from a quieter engine must not regress the maxima.
	s.EngineTotals(0, 0, 0, 1, 2)
	snap = s.Snapshot()
	if snap.PendingPeak != 3 || snap.SimHorizon != 5 {
		t.Errorf("maxima regressed: peak=%d horizon=%g", snap.PendingPeak, snap.SimHorizon)
	}
}

// The collector is shared by the concurrent replications of a run; the
// totals must be exact under concurrency (the race detector covers the
// safety half).
func TestSimStatsConcurrent(t *testing.T) {
	s := NewSimStats()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.EngineTotals(1, 1, 0, g+1, float64(i))
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.EventsScheduled != 8000 || snap.EventsFired != 8000 {
		t.Fatalf("scheduled/fired = %d/%d, want 8000/8000", snap.EventsScheduled, snap.EventsFired)
	}
	if snap.PendingPeak != 8 {
		t.Fatalf("peak = %d, want the max across engines, 8", snap.PendingPeak)
	}
	if snap.SimHorizon != 999 {
		t.Fatalf("horizon = %g, want 999", snap.SimHorizon)
	}
}

// Hook methods must not allocate (pinned again from the engine side in
// internal/sim's TestStatsKeepsHotPathAllocationFree).
func TestSimStatsHooksDoNotAllocate(t *testing.T) {
	s := NewSimStats()
	allocs := testing.AllocsPerRun(100, func() {
		s.EngineTotals(2, 1, 1, 4, 7)
		s.GrowDecisions(1, 2)
		s.ShrinkDecisions(1, 2)
	})
	if allocs != 0 {
		t.Fatalf("hooks allocated %.1f times per run, want 0", allocs)
	}
}
