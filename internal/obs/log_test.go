package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug,
		"info":  slog.LevelInfo,
		"":      slog.LevelInfo,
		"WARN":  slog.LevelWarn,
		"error": slog.LevelError,
	}
	for in, want := range cases { //koalalint:ordered each case asserted independently
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}

func TestNewLoggerJSON(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, LogJSON, slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	log.Debug("hidden")
	log.Info("run accepted", "run", "exp-1", "hash", "abcdef", "trace", "t1")
	line := strings.TrimSpace(buf.String())
	if strings.Count(line, "\n") != 0 {
		t.Fatalf("want exactly one line, got %q", line)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v (%q)", err, line)
	}
	if rec["msg"] != "run accepted" || rec["run"] != "exp-1" || rec["trace"] != "t1" {
		t.Fatalf("record = %v", rec)
	}
}

func TestNewLoggerText(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, LogText, slog.LevelWarn)
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hidden")
	log.Warn("queue full", "depth", 8)
	out := buf.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, "queue full") || !strings.Contains(out, "depth=8") {
		t.Fatalf("text output = %q", out)
	}
}

func TestNewLoggerBadFormat(t *testing.T) {
	if _, err := NewLogger(&bytes.Buffer{}, "xml", slog.LevelInfo); err == nil {
		t.Fatal("NewLogger accepted format xml")
	}
}
