// Package core implements the paper's primary contribution (§V): the
// malleability manager added to the KOALA scheduler, the two malleability
// management policies — FPSMA (Favour Previously Started Malleable
// Applications) and EGS (Equi-Grow & Shrink) — and the two job-management
// approaches — PRA (Precedence to Running Applications) and PWA (Precedence
// to Waiting Applications). It also provides the Equipartition and Folding
// policies discussed in §III as baselines for ablation.
//
// Policies are applied per cluster (§V-C: malleable applications run in a
// single cluster, no co-allocation), over the running malleable jobs of that
// cluster sorted by start time.
package core

import "repro/internal/koala"

// Policy distributes a grow or shrink amount over the running malleable jobs
// of one cluster (§V-C). Both methods receive the jobs sorted by increasing
// start time (the scheduler's canonical order) and return how many
// processors were accepted/released in total. Implementations send the
// actual protocol messages via Job.RequestGrow/RequestShrink.
type Policy interface {
	Name() string
	Grow(jobs []*koala.Job, growValue int) int
	Shrink(jobs []*koala.Job, shrinkValue int) int
}

// FPSMA favours previously started malleable applications: growing starts
// from the earliest-started job, shrinking from the latest-started job
// (Fig. 4 of the paper).
type FPSMA struct{}

// Name implements Policy.
func (FPSMA) Name() string { return "FPSMA" }

// Grow implements the FPSMA_GROW procedure: walk jobs in increasing start
// order, offer the whole remaining amount, subtract what each accepts, stop
// at zero.
func (FPSMA) Grow(jobs []*koala.Job, growValue int) int {
	total := 0
	for _, j := range jobs {
		if growValue <= 0 {
			break
		}
		accepted := j.RequestGrow(growValue)
		growValue -= accepted
		total += accepted
	}
	return total
}

// Shrink implements the FPSMA_SHRINK procedure: walk jobs in decreasing
// start order, request the whole remaining amount, subtract what each
// releases, stop at zero.
func (FPSMA) Shrink(jobs []*koala.Job, shrinkValue int) int {
	total := 0
	for i := len(jobs) - 1; i >= 0 && shrinkValue > 0; i-- {
		released := jobs[i].RequestShrink(shrinkValue)
		shrinkValue -= released
		total += released
	}
	return total
}

// EGS (Equi-Grow & Shrink) balances the *available* processors over all
// running malleable jobs (Fig. 5): everyone gets growValue/n, with the
// remainder handed as a +1 bonus to the least recently started jobs when
// growing, and taken as a +1 malus from the most recently started jobs when
// shrinking. Unlike classic equipartition it never mixes grow and shrink
// messages in a single round.
//
// Note: the paper's Fig. 5 pseudo-code assigns the shrink malus with
// "1 if i ≥ growRemainder" over the descending list, which would give the
// malus to n−remainder jobs; we implement the stated intent ("reclaimed
// from the most recently started jobs as a malus", §V-C.2).
type EGS struct{}

// Name implements Policy.
func (EGS) Name() string { return "EGS" }

// Grow implements the EQUI_GROW procedure.
func (EGS) Grow(jobs []*koala.Job, growValue int) int {
	if len(jobs) == 0 || growValue <= 0 {
		return 0
	}
	share := growValue / len(jobs)
	remainder := growValue % len(jobs)
	total := 0
	for i, j := range jobs { // increasing start time
		offer := share
		if i < remainder {
			offer++ // bonus to the least recently started jobs
		}
		if offer == 0 {
			continue
		}
		total += j.RequestGrow(offer)
	}
	return total
}

// Shrink implements the EQUI_SHRINK procedure.
func (EGS) Shrink(jobs []*koala.Job, shrinkValue int) int {
	if len(jobs) == 0 || shrinkValue <= 0 {
		return 0
	}
	share := shrinkValue / len(jobs)
	remainder := shrinkValue % len(jobs)
	total := 0
	for i := range jobs {
		// Walk in decreasing start time; the malus lands on the most
		// recently started jobs (the first of this walk).
		j := jobs[len(jobs)-1-i]
		request := share
		if i < remainder {
			request++
		}
		if request == 0 {
			continue
		}
		total += j.RequestShrink(request)
	}
	return total
}

// Equipartition is the classic baseline of AMPI/McCann–Zahorjan discussed in
// §III: it aims to give every malleable job the same share of the *whole*
// processor pool of the cluster, so one round may both shrink jobs above the
// fair share and grow jobs below it.
type Equipartition struct{}

// Name implements Policy.
func (Equipartition) Name() string { return "EQUI" }

// Grow rebalances towards the fair share: target = (held + available)/n.
func (Equipartition) Grow(jobs []*koala.Job, growValue int) int {
	if len(jobs) == 0 || growValue <= 0 {
		return 0
	}
	pool := growValue
	for _, j := range jobs {
		pool += j.PlannedProcs()
	}
	target := pool / len(jobs)
	total := 0
	freed := 0
	// Shrink the jobs above the fair share first (may mix messages).
	for i := len(jobs) - 1; i >= 0; i-- {
		if over := jobs[i].PlannedProcs() - target; over > 0 {
			freed += jobs[i].RequestShrink(over)
		}
	}
	budget := growValue + freed
	for _, j := range jobs {
		if budget <= 0 {
			break
		}
		if under := target - j.PlannedProcs(); under > 0 {
			offer := under
			if offer > budget {
				offer = budget
			}
			accepted := j.RequestGrow(offer)
			budget -= accepted
			total += accepted
		}
	}
	return total
}

// Shrink reclaims equally, like EGS.
func (Equipartition) Shrink(jobs []*koala.Job, shrinkValue int) int {
	return EGS{}.Shrink(jobs, shrinkValue)
}

// Folding is the doubling/halving baseline of Utrera et al. and
// McCann–Zahorjan discussed in §III: growing doubles the earliest-started
// jobs that fit in the budget; shrinking halves the latest-started jobs.
type Folding struct{}

// Name implements Policy.
func (Folding) Name() string { return "FOLD" }

// Grow doubles jobs (earliest first) while the budget allows.
func (Folding) Grow(jobs []*koala.Job, growValue int) int {
	total := 0
	for _, j := range jobs {
		cur := j.PlannedProcs()
		if cur <= 0 || cur > growValue {
			continue
		}
		accepted := j.RequestGrow(cur) // offer exactly +current = doubling
		growValue -= accepted
		total += accepted
		if growValue <= 0 {
			break
		}
	}
	return total
}

// Shrink halves jobs (latest first) until the request is met.
func (Folding) Shrink(jobs []*koala.Job, shrinkValue int) int {
	total := 0
	for i := len(jobs) - 1; i >= 0 && shrinkValue > 0; i-- {
		half := jobs[i].PlannedProcs() / 2
		if half <= 0 {
			continue
		}
		released := jobs[i].RequestShrink(half)
		shrinkValue -= released
		total += released
	}
	return total
}

// PolicyByName returns the policy registered under name.
func PolicyByName(name string) (Policy, bool) {
	switch name {
	case "FPSMA", "fpsma":
		return FPSMA{}, true
	case "EGS", "egs":
		return EGS{}, true
	case "EQUI", "equi", "equipartition":
		return Equipartition{}, true
	case "FOLD", "fold", "folding":
		return Folding{}, true
	default:
		return nil, false
	}
}
