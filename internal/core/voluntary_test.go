package core

import (
	"testing"

	"repro/internal/app"
	"repro/internal/koala"
)

func TestAppGrowRequestGrantedFromHeadroom(t *testing.T) {
	sys := managedSystem(48, ManagerConfig{Policy: FPSMA{}, Approach: PRA{}})
	j, _ := sys.SubmitMalleable("g", app.GadgetProfile(), 2)
	sys.Engine.RunUntil(3) // before the first poll grows it
	got := j.AppRequestGrow(10)
	if got != 10 {
		t.Fatalf("application obtained %d, want 10", got)
	}
	sys.Engine.RunUntil(60)
	if j.CurrentProcs() < 12 {
		t.Fatalf("procs = %d after app-initiated grow", j.CurrentProcs())
	}
	if sys.Manager.AppGrowRequests() != 1 {
		t.Fatalf("app grow requests = %d", sys.Manager.AppGrowRequests())
	}
	sys.Scheduler.Stop()
}

func TestAppGrowRequestRespectsReserve(t *testing.T) {
	sys := managedSystem(16, ManagerConfig{Policy: FPSMA{}, Approach: PRA{}, GrowthReserve: 10})
	j, _ := sys.SubmitMalleable("g", app.GadgetProfile(), 2)
	sys.Engine.RunUntil(3)
	// 16 nodes − 2 held − 10 reserve = 4 headroom.
	if got := j.AppRequestGrow(10); got != 4 {
		t.Fatalf("application obtained %d, want 4", got)
	}
	sys.Scheduler.Stop()
}

func TestAppGrowRequestUnknownSite(t *testing.T) {
	sys := managedSystem(16, ManagerConfig{Policy: FPSMA{}, Approach: PRA{}})
	if got := sys.Manager.AppGrowRequest("nowhere", 4); got != 0 {
		t.Fatalf("granted %d for unknown site", got)
	}
	if got := sys.Manager.AppGrowRequest("A", 0); got != 0 {
		t.Fatal("zero request should be declined")
	}
	sys.Scheduler.Stop()
}

func TestPWAVoluntaryPrefersPoliteShrinks(t *testing.T) {
	sys := managedSystem(48, ManagerConfig{Policy: FPSMA{}, Approach: PWAVoluntary{}})
	long, _ := sys.SubmitMalleable("long", app.GadgetProfile(), 2)
	sys.Engine.RunUntil(30) // grows to 46; progress still < 50%
	if long.PlannedProcs() != 46 {
		t.Fatalf("long planned = %d", long.PlannedProcs())
	}
	sys.SubmitRigid("filler", app.GadgetModel(), 2)
	sys.Engine.RunUntil(40)
	waiting, _ := sys.SubmitMalleable("waiting", app.GadgetProfile(), 2)
	sys.Engine.RunUntil(160)
	if waiting.State() != koala.Running {
		t.Fatalf("waiting state = %v", waiting.State())
	}
	// The long job agreed voluntarily (early in its run): shrink messages
	// were recorded and the long job shrank.
	if sys.Manager.ShrinkOps().Total() == 0 {
		t.Fatal("no shrink messages recorded")
	}
	if long.PlannedProcs() >= 46 {
		t.Fatalf("long planned = %d, should have shrunk", long.PlannedProcs())
	}
	sys.Scheduler.Stop()
}

func TestPWAVoluntaryFallsBackToMandatory(t *testing.T) {
	// The running job is past 50% progress, so it declines the polite
	// request; the manager must reclaim mandatorily.
	sys := managedSystem(48, ManagerConfig{Policy: FPSMA{}, Approach: PWAVoluntary{}})
	long, _ := sys.SubmitMalleable("long", app.GadgetProfile(), 2)
	sys.Engine.RunUntil(30)
	sys.SubmitRigid("filler", app.GadgetModel(), 2)
	// Wait until the long job is past half of T(46)=240 s.
	sys.Engine.RunUntil(200)
	waiting, _ := sys.SubmitMalleable("waiting", app.GadgetProfile(), 2)
	sys.Engine.RunUntil(400)
	if waiting.State() != koala.Running && waiting.State() != koala.Finished {
		t.Fatalf("waiting state = %v (mandatory fallback should place it)", waiting.State())
	}
	_ = long
	sys.Scheduler.Stop()
}

func TestPWAVoluntaryRegistered(t *testing.T) {
	a, ok := ApproachByName("PWAV")
	if !ok || a.Name() != "PWAV" {
		t.Fatalf("PWAV not registered: %v %v", a, ok)
	}
}
