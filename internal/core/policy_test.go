package core

import (
	"testing"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/gram"
	"repro/internal/koala"
	"repro/internal/runner"
)

// fixture builds a one-cluster system without a manager, submits n malleable
// GADGET jobs at staggered times, and runs until they all execute.
func fixture(t *testing.T, nodes, n int) (*System, []*koala.Job) {
	t.Helper()
	sys := NewSystem(SystemConfig{
		Grid: cluster.NewMulticluster(cluster.New("A", nodes)),
		Gram: gram.Config{SubmitLatency: 1, ReleaseLatency: 0.5},
		Scheduler: koala.Config{
			Policy:        koala.WorstFit{},
			PollInterval:  1e9, // effectively disable polling: tests drive manually
			MRunnerConfig: runner.MRunnerConfig{Costs: app.ReconfigCosts{}},
		},
		DisableManager: true,
	})
	var jobs []*koala.Job
	for i := 0; i < n; i++ {
		at := float64(i * 10) // staggered start times
		id := string(rune('a' + i))
		sys.Engine.At(at, func() {
			j, err := sys.SubmitMalleable(id, app.GadgetProfile(), 2)
			if err != nil {
				t.Error(err)
			}
			jobs = append(jobs, j)
		})
	}
	sys.Engine.RunUntil(float64(n*10) + 5)
	for _, j := range jobs {
		if j.State() != koala.Running {
			t.Fatalf("fixture job %s not running: %v", j.Spec.ID, j.State())
		}
	}
	return sys, jobs
}

func planned(jobs []*koala.Job) []int {
	out := make([]int, len(jobs))
	for i, j := range jobs {
		out[i] = j.PlannedProcs()
	}
	return out
}

func TestFPSMAGrowFavoursEarliestStarted(t *testing.T) {
	_, jobs := fixture(t, 200, 3)
	accepted := FPSMA{}.Grow(jobs, 50)
	if accepted != 50 {
		t.Fatalf("accepted = %d, want 50", accepted)
	}
	got := planned(jobs)
	// Earliest job grows to max (46, +44), second takes the rest (+6).
	want := []int{46, 8, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("planned = %v, want %v", got, want)
		}
	}
}

func TestFPSMAGrowStopsAtZero(t *testing.T) {
	_, jobs := fixture(t, 200, 3)
	accepted := FPSMA{}.Grow(jobs, 10)
	if accepted != 10 {
		t.Fatalf("accepted = %d", accepted)
	}
	got := planned(jobs)
	want := []int{12, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("planned = %v, want %v", got, want)
		}
	}
}

func TestFPSMAShrinkFavoursLatestStarted(t *testing.T) {
	sys, jobs := fixture(t, 200, 3)
	FPSMA{}.Grow(jobs, 30) // jobs now 32, 2, 2... wait: 30 → first takes 30 (→32)
	sys.Engine.RunUntil(sys.Engine.Now() + 20)
	// planned: [32, 2, 2]; grow the others for shrink material.
	jobs[1].RequestGrow(10)
	jobs[2].RequestGrow(10)
	sys.Engine.RunUntil(sys.Engine.Now() + 20)
	// planned: [32, 12, 12]
	released := FPSMA{}.Shrink(jobs, 15)
	if released != 15 {
		t.Fatalf("released = %d, want 15", released)
	}
	got := planned(jobs)
	// Latest-started (index 2) gives up 10 (to min 2), then index 1 gives 5.
	want := []int{32, 7, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("planned = %v, want %v", got, want)
		}
	}
}

func TestEGSGrowDistributesEqually(t *testing.T) {
	_, jobs := fixture(t, 200, 3)
	accepted := EGS{}.Grow(jobs, 30)
	if accepted != 30 {
		t.Fatalf("accepted = %d", accepted)
	}
	got := planned(jobs)
	want := []int{12, 12, 12}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("planned = %v, want %v", got, want)
		}
	}
}

func TestEGSGrowBonusToLeastRecentlyStarted(t *testing.T) {
	_, jobs := fixture(t, 200, 3)
	EGS{}.Grow(jobs, 11) // share 3, remainder 2 → bonuses to jobs[0], jobs[1]
	got := planned(jobs)
	want := []int{6, 6, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("planned = %v, want %v", got, want)
		}
	}
}

func TestEGSShrinkMalusToMostRecentlyStarted(t *testing.T) {
	sys, jobs := fixture(t, 200, 3)
	EGS{}.Grow(jobs, 30) // all at 12
	sys.Engine.RunUntil(sys.Engine.Now() + 20)
	released := EGS{}.Shrink(jobs, 11) // share 3, remainder 2 → malus on jobs[2], jobs[1]
	if released != 11 {
		t.Fatalf("released = %d", released)
	}
	got := planned(jobs)
	want := []int{9, 8, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("planned = %v, want %v", got, want)
		}
	}
}

func TestEGSEmptyAndZero(t *testing.T) {
	if (EGS{}).Grow(nil, 10) != 0 || (EGS{}).Shrink(nil, 10) != 0 {
		t.Fatal("empty job list should accept nothing")
	}
	_, jobs := fixture(t, 200, 2)
	if (EGS{}).Grow(jobs, 0) != 0 || (EGS{}).Shrink(jobs, 0) != 0 {
		t.Fatal("zero amount should be a no-op")
	}
}

func TestEGSRespectsFTPowerOfTwo(t *testing.T) {
	sys := NewSystem(SystemConfig{
		Grid:           cluster.NewMulticluster(cluster.New("A", 100)),
		Gram:           gram.Config{SubmitLatency: 1, ReleaseLatency: 0.5},
		Scheduler:      koala.Config{Policy: koala.WorstFit{}, PollInterval: 1e9, MRunnerConfig: runner.MRunnerConfig{Costs: app.ReconfigCosts{}}},
		DisableManager: true,
	})
	j1, _ := sys.SubmitMalleable("ft1", app.FTProfile(), 2)
	j2, _ := sys.SubmitMalleable("ft2", app.FTProfile(), 2)
	sys.Engine.RunUntil(5)
	jobs := []*koala.Job{j1, j2}
	accepted := EGS{}.Grow(jobs, 11) // offers 6 and 5 → FT accepts 6 (→8) and 2 (→4)
	if accepted != 6+2 {
		t.Fatalf("accepted = %d, want 8", accepted)
	}
	got := planned(jobs)
	if got[0] != 8 || got[1] != 4 {
		t.Fatalf("planned = %v", got)
	}
}

func TestEquipartitionRebalances(t *testing.T) {
	sys, jobs := fixture(t, 200, 3)
	FPSMA{}.Grow(jobs, 28) // [30, 2, 2]
	sys.Engine.RunUntil(sys.Engine.Now() + 20)
	Equipartition{}.Grow(jobs, 2) // pool = 30+2+2+2 = 36 → target 12
	sys.Engine.RunUntil(sys.Engine.Now() + 20)
	got := planned(jobs)
	for i, p := range got {
		if p < 10 || p > 14 {
			t.Fatalf("equipartition planned[%d] = %d (want ≈12): %v", i, p, got)
		}
	}
}

func TestFoldingDoublesAndHalves(t *testing.T) {
	sys, jobs := fixture(t, 200, 2)
	accepted := Folding{}.Grow(jobs, 6) // doubles job0 (2→4), then job1 (2→4)
	if accepted != 4 {
		t.Fatalf("accepted = %d, want 4", accepted)
	}
	got := planned(jobs)
	if got[0] != 4 || got[1] != 4 {
		t.Fatalf("planned = %v", got)
	}
	sys.Engine.RunUntil(sys.Engine.Now() + 20)
	released := Folding{}.Shrink(jobs, 2)
	if released != 2 {
		t.Fatalf("released = %d", released)
	}
	got = planned(jobs)
	if got[1] != 2 || got[0] != 4 {
		t.Fatalf("planned after shrink = %v (halve latest first)", got)
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"FPSMA", "EGS", "EQUI", "FOLD", "fpsma", "egs", "equi", "fold"} {
		if p, ok := PolicyByName(name); !ok || p == nil {
			t.Errorf("PolicyByName(%q) failed", name)
		}
	}
	if _, ok := PolicyByName("nope"); ok {
		t.Fatal("unknown policy should fail")
	}
	if (FPSMA{}).Name() != "FPSMA" || (EGS{}).Name() != "EGS" || (Equipartition{}).Name() != "EQUI" || (Folding{}).Name() != "FOLD" {
		t.Fatal("policy names")
	}
}
