package core

import "repro/internal/koala"

// This file implements the §VIII extensions on the manager side:
// application-initiated grow requests and an incentive-style PWA variant
// that asks for voluntary shrinks before falling back to mandatory ones.

// AppGrowRequest implements runner.AppGrowHandler: an application asks for
// more processors (§II-C, initiative of change). The manager grants at most
// the site's current growth headroom — accommodating application-initiated
// grows never preempts other jobs (they are voluntary for the scheduler,
// §VIII).
func (m *Manager) AppGrowRequest(site string, amount int) int {
	if amount <= 0 {
		return 0
	}
	var target *koala.Site
	for _, s := range m.sched.Sites() {
		if s.Name() == site {
			target = s
			break
		}
	}
	if target == nil {
		return 0
	}
	avail := m.availableForGrowth(m.sched.KIS().Refresh(), target)
	if avail <= 0 {
		return 0
	}
	grant := amount
	if grant > avail {
		grant = avail
	}
	m.appGrowMsgs++
	// Keep the edge trigger consistent: the grant consumes headroom.
	m.prevAvail[site] = avail - grant
	return grant
}

// AppGrowRequests returns how many application-initiated grow requests the
// manager granted (fully or partially).
func (m *Manager) AppGrowRequests() uint64 { return m.appGrowMsgs }

// voluntaryShrinkSite asks the site's malleable jobs *politely* for need
// processors, latest-started first (the FPSMA shrink order), and returns
// how many they agreed to release. Jobs decline freely (§II-D).
func (m *Manager) voluntaryShrinkSite(site *koala.Site, need int) int {
	jobs := m.sched.RunningMalleableJobs(site.Name())
	total := 0
	for i := len(jobs) - 1; i >= 0 && need > 0; i-- {
		mr := jobs[i].MRunner()
		if mr == nil {
			continue
		}
		released := mr.RequestVoluntaryShrink(need)
		need -= released
		total += released
	}
	if total > 0 {
		m.shrinkMsgs.Inc(m.engine.Now(), len(jobs))
	}
	return total
}

// PWAVoluntary is the incentive-aware variant of PWA suggested by §VIII
// ("we plan to study how to affect malleability management policies in
// order to incite applications to react to volunteer shrinks"): when the
// queue head cannot be placed, the manager first *asks* running jobs to
// shrink; only the shortfall that remains after the voluntary round is
// reclaimed mandatorily.
type PWAVoluntary struct{}

// Name implements Approach.
func (PWAVoluntary) Name() string { return "PWAV" }

// OnPoll implements Approach (same schedule as PWA).
func (PWAVoluntary) OnPoll(m *Manager, snap koala.Snapshot) {
	PWA{}.OnPoll(m, snap)
}

// OnProcessorsAvailable implements Approach (same as PWA).
func (PWAVoluntary) OnProcessorsAvailable(m *Manager) {
	PWA{}.OnProcessorsAvailable(m)
}

// OnPlacementBlocked implements Approach: voluntary first, mandatory for
// the remainder.
func (PWAVoluntary) OnPlacementBlocked(m *Manager, j *koala.Job) bool {
	need := j.Spec.TotalSize()
	snap := m.sched.KIS().Last()
	var best *koala.Site
	bestShort := 0
	for _, site := range m.sched.Sites() {
		idle := snap.Idle(site.Name()) - m.sched.PendingClaims(site.Name()) - m.inflightGrowth(site.Name())
		short := need - idle
		if short <= 0 {
			return false
		}
		if m.shrinkable(site) >= short {
			if best == nil || short < bestShort {
				best = site
				bestShort = short
			}
		}
	}
	if best == nil {
		m.growAll(snap)
		return false
	}
	released := m.voluntaryShrinkSite(best, bestShort)
	if released < bestShort {
		m.shrinkSite(best, bestShort-released)
	}
	return true
}
