package core

import "repro/internal/koala"

// This file implements the §VIII extensions on the manager side:
// application-initiated grow requests and an incentive-style PWA variant
// that asks for voluntary shrinks before falling back to mandatory ones.

// AppGrowRequest implements runner.AppGrowHandler: an application asks for
// more processors (§II-C, initiative of change). The manager grants at most
// the site's current growth headroom — accommodating application-initiated
// grows never preempts other jobs (they are voluntary for the scheduler,
// §VIII).
func (m *Manager) AppGrowRequest(site string, amount int) int {
	if amount <= 0 {
		return 0
	}
	i, ok := m.sched.SiteIndex(site)
	if !ok {
		return 0
	}
	avail := m.availableForGrowth(m.sched.KIS().Refresh(), i)
	if avail <= 0 {
		return 0
	}
	grant := amount
	if grant > avail {
		grant = avail
	}
	m.appGrowMsgs++
	// Keep the edge trigger consistent: the grant consumes headroom.
	m.prevAvail[i] = avail - grant
	m.prevSeen[i] = true
	return grant
}

// AppGrowRequests returns how many application-initiated grow requests the
// manager granted (fully or partially).
func (m *Manager) AppGrowRequests() uint64 { return m.appGrowMsgs }

// voluntaryShrinkSiteAt asks the malleable jobs of site i *politely* for
// need processors, latest-started first (the FPSMA shrink order), and
// returns how many they agreed to release. Jobs decline freely (§II-D).
func (m *Manager) voluntaryShrinkSiteAt(i, need int) int {
	jobs := m.sched.RunningMalleableJobsAt(i)
	total := 0
	for i := len(jobs) - 1; i >= 0 && need > 0; i-- {
		mr := jobs[i].MRunner()
		if mr == nil {
			continue
		}
		released := mr.RequestVoluntaryShrink(need)
		need -= released
		total += released
	}
	if total > 0 {
		m.shrinkMsgs.Inc(m.engine.Now(), len(jobs))
	}
	return total
}

// PWAVoluntary is the incentive-aware variant of PWA suggested by §VIII
// ("we plan to study how to affect malleability management policies in
// order to incite applications to react to volunteer shrinks"): when the
// queue head cannot be placed, the manager first *asks* running jobs to
// shrink; only the shortfall that remains after the voluntary round is
// reclaimed mandatorily.
type PWAVoluntary struct{}

// Name implements Approach.
func (PWAVoluntary) Name() string { return "PWAV" }

// OnPoll implements Approach (same schedule as PWA).
func (PWAVoluntary) OnPoll(m *Manager, snap koala.Snapshot) {
	PWA{}.OnPoll(m, snap)
}

// OnProcessorsAvailable implements Approach (same as PWA).
func (PWAVoluntary) OnProcessorsAvailable(m *Manager) {
	PWA{}.OnProcessorsAvailable(m)
}

// OnPlacementBlocked implements Approach: voluntary first, mandatory for
// the remainder.
func (PWAVoluntary) OnPlacementBlocked(m *Manager, j *koala.Job) bool {
	need := j.Spec.TotalSize()
	snap := m.sched.KIS().Last()
	best := -1
	bestShort := 0
	for i := range m.sched.Sites() {
		idle := snap.IdleAt(i) - m.sched.PendingClaimsAt(i) - m.inflightGrowthAt(i)
		short := need - idle
		if short <= 0 {
			return false
		}
		if m.shrinkableAt(i) >= short {
			if best < 0 || short < bestShort {
				best = i
				bestShort = short
			}
		}
	}
	if best < 0 {
		m.growAll(snap)
		return false
	}
	released := m.voluntaryShrinkSiteAt(best, bestShort)
	if released < bestShort {
		m.shrinkSiteAt(best, bestShort-released)
	}
	return true
}
