package core

import (
	"fmt"

	"repro/internal/koala"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
)

// ManagerConfig tunes the malleability manager.
type ManagerConfig struct {
	// Policy distributes grow/shrink amounts over jobs (FPSMA or EGS).
	Policy Policy
	// Approach decides when management rounds run (PRA or PWA).
	Approach Approach
	// GrowthReserve keeps this many processors per cluster off-limits to
	// growth, "in order to leave always a minimal number of available
	// processors to local users" (§V-B). Initial placement is not affected.
	GrowthReserve int
	// Stats, when non-nil, passively collects the manager's grow/shrink
	// decisions (labeled by the run's policy at the consumer). It never
	// influences decisions and records only simulated time.
	Stats *obs.SimStats
}

// DefaultManagerConfig is FPSMA under PRA with no reserve.
func DefaultManagerConfig() ManagerConfig {
	return ManagerConfig{Policy: FPSMA{}, Approach: PRA{}, GrowthReserve: 0}
}

// Manager is the malleability manager added to KOALA's scheduler (§V-A): it
// is responsible for triggering changes of the resource allocations of
// malleable jobs. It implements koala.Hooks and is driven by the scheduler's
// periodic KIS polling (so background load is accounted for dynamically) and
// by availability/blocked events.
type Manager struct {
	engine *sim.Engine
	sched  *koala.Scheduler
	cfg    ManagerConfig

	growMsgs      *stats.Counter // grow messages over time (Fig. 7f)
	shrinkMsgs    *stats.Counter // shrink messages over time (Fig. 8f)
	declined      uint64
	blockedEvents uint64
	appGrowMsgs   uint64

	// prevAvail remembers the last observed growth headroom per site (by
	// dense site index), with prevSeen marking sites observed at least
	// once. Growth rounds run when processors *become available* (§V-B) —
	// an edge trigger, not a level trigger — so a site whose availability
	// is unchanged since the previous poll is left alone.
	prevAvail []int
	prevSeen  []bool
}

// NewManager attaches a malleability manager to the scheduler.
func NewManager(engine *sim.Engine, sched *koala.Scheduler, cfg ManagerConfig) *Manager {
	if cfg.Policy == nil {
		cfg.Policy = FPSMA{}
	}
	if cfg.Approach == nil {
		cfg.Approach = PRA{}
	}
	if cfg.GrowthReserve < 0 {
		panic(fmt.Sprintf("core: negative growth reserve %d", cfg.GrowthReserve))
	}
	m := &Manager{
		engine:     engine,
		sched:      sched,
		cfg:        cfg,
		growMsgs:   stats.NewCounter(),
		shrinkMsgs: stats.NewCounter(),
		prevAvail:  make([]int, len(sched.Sites())),
		prevSeen:   make([]bool, len(sched.Sites())),
	}
	sched.SetHooks(m)
	return m
}

// Policy returns the configured malleability management policy.
func (m *Manager) Policy() Policy { return m.cfg.Policy }

// Approach returns the configured job management approach.
func (m *Manager) Approach() Approach { return m.cfg.Approach }

// GrowOps returns the cumulative count of grow operations (Fig. 7f).
func (m *Manager) GrowOps() *stats.Counter { return m.growMsgs }

// ShrinkOps returns the cumulative count of shrink operations.
func (m *Manager) ShrinkOps() *stats.Counter { return m.shrinkMsgs }

// Declined returns the number of management rounds that produced no change.
func (m *Manager) Declined() uint64 { return m.declined }

// Poll implements koala.Hooks: one management round per scheduler poll.
func (m *Manager) Poll(snap koala.Snapshot) {
	m.cfg.Approach.OnPoll(m, snap)
}

// ProcessorsAvailable implements koala.Hooks.
func (m *Manager) ProcessorsAvailable() {
	m.cfg.Approach.OnProcessorsAvailable(m)
}

// PlacementBlocked implements koala.Hooks.
func (m *Manager) PlacementBlocked(j *koala.Job) bool {
	m.blockedEvents++
	return m.cfg.Approach.OnPlacementBlocked(m, j)
}

// BlockedEvents returns how many head-of-queue placement failures were
// reported to the manager.
func (m *Manager) BlockedEvents() uint64 { return m.blockedEvents }

// Reserved implements koala.Hooks: processors granted to growing jobs whose
// stub submissions are still in flight. The scheduler subtracts them from
// every placement view.
func (m *Manager) Reserved(siteIndex int) int { return m.inflightGrowthAt(siteIndex) }

// inflightGrowthAt sums planned-but-not-yet-held processors over the
// running malleable jobs of the site with dense index i.
func (m *Manager) inflightGrowthAt(i int) int {
	total := 0
	for _, j := range m.sched.RunningMalleableJobsAt(i) {
		if d := j.PlannedProcs() - j.HeldProcs(); d > 0 {
			total += d
		}
	}
	return total
}

// availableForGrowth computes how many processors of site i the manager may
// hand to malleable jobs right now: the snapshot's idle count minus claims
// still in flight, minus growth already granted but not yet held, minus the
// local-user reserve.
func (m *Manager) availableForGrowth(snap koala.Snapshot, i int) int {
	return snap.IdleAt(i) - m.sched.PendingClaimsAt(i) -
		m.inflightGrowthAt(i) - m.cfg.GrowthReserve
}

// totalMsgs sums the grow and shrink messages received so far by the
// malleable runners of the given jobs.
func totalMsgs(jobs []*koala.Job) (grow, shrink uint64) {
	for _, j := range jobs {
		if mr := j.MRunner(); mr != nil {
			g, s := mr.Stats()
			grow += g
			shrink += s
		}
	}
	return grow, shrink
}

// growSiteAt runs one grow round on the site with dense index i, with the
// given number of available processors as the grow value, counting the grow
// messages the policy sent (the paper's Fig. 7f metric). Jobs at their
// maximum still receive offers, as in the Fig. 4/5 pseudo-code — they
// simply decline.
func (m *Manager) growSiteAt(i, avail int) int {
	jobs := m.sched.RunningMalleableJobsAt(i)
	if len(jobs) == 0 || avail <= 0 {
		return 0
	}
	before, _ := totalMsgs(jobs)
	accepted := m.cfg.Policy.Grow(jobs, avail)
	after, _ := totalMsgs(jobs)
	if sent := int(after - before); sent > 0 {
		m.growMsgs.Inc(m.engine.Now(), sent)
		if m.cfg.Stats != nil {
			m.cfg.Stats.GrowDecisions(m.engine.Now(), sent)
		}
	}
	if accepted == 0 {
		m.declined++
	}
	return accepted
}

// growAll runs grow rounds on the sites whose availability has increased
// since the last observation. The grow value of a round is the number of
// processors that *became* available since then (clamped to the current
// headroom): growth is driven by availability events — a job finishing, a
// local user leaving — exactly as §V-B describes, rather than by repeatedly
// re-offering idle capacity that the policies already declined.
func (m *Manager) growAll(snap koala.Snapshot) int {
	total := 0
	for i := range m.sched.Sites() {
		avail := m.availableForGrowth(snap, i)
		grow := avail
		if m.prevSeen[i] {
			base := m.prevAvail[i]
			if base < 0 {
				base = 0
			}
			grow = avail - base
		}
		m.prevSeen[i] = true
		if grow > 0 && avail > 0 {
			if grow > avail {
				grow = avail
			}
			total += m.growSiteAt(i, grow)
			// Remember the post-round headroom (accepted growth is now in
			// flight and discounted by availableForGrowth).
			m.prevAvail[i] = m.availableForGrowth(snap, i)
			continue
		}
		m.prevAvail[i] = avail
	}
	return total
}

// shrinkSiteAt requests need processors back from the malleable jobs of the
// site with dense index i, counting the shrink messages the policy sent.
func (m *Manager) shrinkSiteAt(i, need int) int {
	jobs := m.sched.RunningMalleableJobsAt(i)
	if len(jobs) == 0 || need <= 0 {
		return 0
	}
	_, before := totalMsgs(jobs)
	released := m.cfg.Policy.Shrink(jobs, need)
	_, after := totalMsgs(jobs)
	if sent := int(after - before); sent > 0 {
		m.shrinkMsgs.Inc(m.engine.Now(), sent)
		if m.cfg.Stats != nil {
			m.cfg.Stats.ShrinkDecisions(m.engine.Now(), sent)
		}
	}
	if released == 0 {
		m.declined++
	}
	return released
}

// shrinkableAt returns how many processors the malleable jobs of site i
// could still give back (planned minus minimum, summed).
func (m *Manager) shrinkableAt(i int) int {
	total := 0
	for _, j := range m.sched.RunningMalleableJobsAt(i) {
		if slack := j.PlannedProcs() - j.MinProcs(); slack > 0 {
			total += slack
		}
	}
	return total
}
