package core

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/gram"
	"repro/internal/koala"
	"repro/internal/sim"
)

// SystemConfig assembles a complete simulated multicluster with KOALA and
// the malleability manager. Zero values fall back to the paper's setup:
// the DAS-3 testbed, default GRAM latencies, Worst-Fit placement, FPSMA
// under PRA.
type SystemConfig struct {
	Grid      *cluster.Multicluster
	Gram      gram.Config
	Scheduler koala.Config
	Manager   ManagerConfig
	// DisableManager runs plain KOALA without malleability support.
	DisableManager bool
}

// System is the facade tying the whole reproduction together; examples and
// the experiment harness build everything through it.
type System struct {
	Engine    *sim.Engine
	Grid      *cluster.Multicluster
	Sites     []*koala.Site
	Scheduler *koala.Scheduler
	Manager   *Manager // nil when DisableManager
}

// NewSystem builds a system from the config.
func NewSystem(cfg SystemConfig) *System {
	if cfg.Grid == nil {
		cfg.Grid = cluster.DAS3()
	}
	if cfg.Gram == (gram.Config{}) {
		cfg.Gram = gram.DefaultConfig()
	}
	if cfg.Scheduler.Policy == nil {
		cfg.Scheduler = koala.DefaultConfig()
	}
	engine := sim.New()
	sites := koala.BuildSites(engine, cfg.Grid, cfg.Gram)
	sched := koala.NewScheduler(engine, sites, cfg.Scheduler)
	sys := &System{Engine: engine, Grid: cfg.Grid, Sites: sites, Scheduler: sched}
	if !cfg.DisableManager {
		if cfg.Manager.Policy == nil && cfg.Manager.Approach == nil && cfg.Manager.GrowthReserve == 0 {
			st := cfg.Manager.Stats
			cfg.Manager = DefaultManagerConfig()
			cfg.Manager.Stats = st
		}
		sys.Manager = NewManager(engine, sched, cfg.Manager)
	}
	return sys
}

// SubmitMalleable submits a single-component malleable job starting at
// initial processors.
func (s *System) SubmitMalleable(id string, profile *app.Profile, initial int) (*koala.Job, error) {
	return s.Scheduler.Submit(koala.JobSpec{
		ID:         id,
		Components: []koala.ComponentSpec{{Profile: profile, Size: initial}},
	})
}

// SubmitRigid submits a rigid job of the given size running the model.
func (s *System) SubmitRigid(id string, model app.RuntimeModel, size int) (*koala.Job, error) {
	return s.Scheduler.Submit(koala.JobSpec{
		ID:         id,
		Components: []koala.ComponentSpec{{Profile: app.RigidProfile(id+"-prof", model, size), Size: size}},
	})
}

// Run drives the simulation until the horizon (seconds of virtual time).
func (s *System) Run(horizon float64) { s.Engine.RunUntil(horizon) }

// RunUntilDone drives the simulation until every submitted job reached a
// terminal state, checking at the given period; it gives up at horizon and
// returns an error listing the stuck jobs.
func (s *System) RunUntilDone(horizon float64) error {
	for s.Engine.Now() < horizon {
		s.Engine.RunUntil(s.Engine.Now() + 60)
		if s.allDone() {
			s.Scheduler.Stop()
			return nil
		}
	}
	stuck := 0
	for _, j := range s.Scheduler.Jobs() {
		if st := j.State(); st != koala.Finished && st != koala.Rejected {
			stuck++
		}
	}
	return fmt.Errorf("core: %d jobs not terminal at horizon %g", stuck, horizon)
}

func (s *System) allDone() bool {
	for _, j := range s.Scheduler.Jobs() {
		if st := j.State(); st != koala.Finished && st != koala.Rejected {
			return false
		}
	}
	return len(s.Scheduler.Jobs()) > 0
}
