package core

import "repro/internal/koala"

// Approach is a job-management approach (§V-B): it decides *when* the
// malleability management policies run, and whether running or waiting
// applications take precedence.
type Approach interface {
	Name() string
	// OnPoll runs the periodic management round against a fresh snapshot.
	OnPoll(m *Manager, snap koala.Snapshot)
	// OnProcessorsAvailable reacts to processors returning (job finished).
	OnProcessorsAvailable(m *Manager)
	// OnPlacementBlocked reacts to the queue head being unplaceable; it
	// returns true when room is being made for the job (scanning stops).
	OnPlacementBlocked(m *Manager, j *koala.Job) bool
}

// PRA gives Precedence to Running Applications (§V-B): whenever processors
// become available, running malleable jobs are grown first; waiting jobs are
// only placed with whatever is left once no running malleable job can grow
// further. Jobs are never shrunk.
type PRA struct{}

// Name implements Approach.
func (PRA) Name() string { return "PRA" }

// OnPoll implements Approach: grow running jobs, then let the queue have the
// remainder.
func (PRA) OnPoll(m *Manager, snap koala.Snapshot) {
	m.growAll(snap)
	m.sched.ScanQueue()
}

// OnProcessorsAvailable implements Approach: identical to a poll round with
// a fresh snapshot — first the running applications, then the queue.
func (PRA) OnProcessorsAvailable(m *Manager) {
	m.growAll(m.sched.KIS().Refresh())
	m.sched.ScanQueue()
}

// OnPlacementBlocked implements Approach: PRA never shrinks for waiting
// jobs; they wait for processors to free up naturally.
func (PRA) OnPlacementBlocked(*Manager, *koala.Job) bool { return false }

// PWA gives Precedence to Waiting Applications (§V-B): when the next queued
// job cannot be placed, running malleable jobs are mandatorily shrunk to
// make room for it. Only when even shrinking to minimum sizes cannot free
// enough processors are the running jobs considered for growing.
type PWA struct{}

// Name implements Approach.
func (PWA) Name() string { return "PWA" }

// OnPoll implements Approach: the queue gets precedence; growth happens only
// when no job is waiting.
func (PWA) OnPoll(m *Manager, snap koala.Snapshot) {
	m.sched.ScanQueue()
	if m.sched.QueueLength() == 0 {
		m.growAll(m.sched.KIS().Refresh())
	}
}

// OnProcessorsAvailable implements Approach: "whenever processors become
// available, the placement queue is scanned in order to find a job to be
// placed".
func (PWA) OnProcessorsAvailable(m *Manager) {
	m.sched.ScanQueue()
	if m.sched.QueueLength() == 0 {
		m.growAll(m.sched.KIS().Refresh())
	}
}

// OnPlacementBlocked implements Approach: mandatory shrinks on the cluster
// that can (eventually) host the blocked job. If no cluster can host it even
// with every running malleable job at its minimum, the running jobs are
// grown instead (§V-B) and scanning continues.
func (PWA) OnPlacementBlocked(m *Manager, j *koala.Job) bool {
	need := j.Spec.TotalSize()
	snap := m.sched.KIS().Last()
	// Choose the cluster where the fewest shrunk processors make the job
	// fit: maximise idle+shrinkable headroom, then minimise shrink amount.
	best := -1
	bestShort := 0
	for i := range m.sched.Sites() {
		idle := snap.IdleAt(i) - m.sched.PendingClaimsAt(i) - m.inflightGrowthAt(i)
		short := need - idle
		if short <= 0 {
			// It already fits; the placement failure was transient (e.g.
			// in-flight growth) — no shrinking needed.
			return false
		}
		if m.shrinkableAt(i) >= short {
			if best < 0 || short < bestShort {
				best = i
				bestShort = short
			}
		}
	}
	if best < 0 {
		// Even shrinking everything to minimum sizes cannot host the job:
		// grow the running applications instead.
		m.growAll(snap)
		return false
	}
	m.shrinkSiteAt(best, bestShort)
	return true
}

// Manual is a degenerate approach for studies of application-initiated
// malleability (§II-C): the manager never grows or shrinks jobs on its own —
// it only serves the placement queue and answers AppGrowRequest calls.
type Manual struct{}

// Name implements Approach.
func (Manual) Name() string { return "MANUAL" }

// OnPoll implements Approach.
func (Manual) OnPoll(m *Manager, _ koala.Snapshot) { m.sched.ScanQueue() }

// OnProcessorsAvailable implements Approach.
func (Manual) OnProcessorsAvailable(m *Manager) { m.sched.ScanQueue() }

// OnPlacementBlocked implements Approach.
func (Manual) OnPlacementBlocked(*Manager, *koala.Job) bool { return false }

// ApproachByName returns the approach registered under name.
func ApproachByName(name string) (Approach, bool) {
	switch name {
	case "PRA", "pra":
		return PRA{}, true
	case "PWA", "pwa":
		return PWA{}, true
	case "PWAV", "pwav":
		return PWAVoluntary{}, true
	case "MANUAL", "manual":
		return Manual{}, true
	default:
		return nil, false
	}
}
