package core

import (
	"testing"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/gram"
	"repro/internal/koala"
	"repro/internal/runner"
)

func managedSystem(nodes int, mgr ManagerConfig) *System {
	return NewSystem(SystemConfig{
		Grid: cluster.NewMulticluster(cluster.New("A", nodes)),
		Gram: gram.Config{SubmitLatency: 1, ReleaseLatency: 0.5},
		Scheduler: koala.Config{
			Policy:        koala.WorstFit{},
			PollInterval:  5,
			MRunnerConfig: runner.MRunnerConfig{Costs: app.ReconfigCosts{}, AcquireTimeout: 60},
		},
		Manager: mgr,
	})
}

func TestPRAGrowsRunningJobOnPoll(t *testing.T) {
	sys := managedSystem(64, ManagerConfig{Policy: FPSMA{}, Approach: PRA{}})
	j, err := sys.SubmitMalleable("g", app.GadgetProfile(), 2)
	if err != nil {
		t.Fatal(err)
	}
	sys.Engine.RunUntil(30)
	if j.PlannedProcs() != 46 {
		t.Fatalf("planned = %d, want 46 (grown to max)", j.PlannedProcs())
	}
	if sys.Manager.GrowOps().Total() == 0 {
		t.Fatal("no grow operations recorded")
	}
	sys.Scheduler.Stop()
}

func TestPRANeverShrinks(t *testing.T) {
	sys := managedSystem(8, ManagerConfig{Policy: FPSMA{}, Approach: PRA{}})
	long, _ := sys.SubmitMalleable("long", app.GadgetProfile(), 2)
	sys.Engine.RunUntil(30) // long grows to 8 (cluster size)
	if long.PlannedProcs() != 8 {
		t.Fatalf("planned = %d, want 8", long.PlannedProcs())
	}
	// A waiting job cannot trigger shrinks under PRA.
	blocked, _ := sys.SubmitMalleable("blocked", app.GadgetProfile(), 2)
	sys.Engine.RunUntil(120)
	if blocked.State() != koala.Waiting {
		t.Fatalf("blocked state = %v (PRA must not shrink for it)", blocked.State())
	}
	if sys.Manager.ShrinkOps().Total() != 0 {
		t.Fatal("PRA recorded shrink operations")
	}
	sys.Scheduler.Stop()
}

func TestPRAPlacesWaitingJobsWithLeftovers(t *testing.T) {
	// Jobs at their max leave room: waiting jobs then get placed.
	sys := managedSystem(64, ManagerConfig{Policy: FPSMA{}, Approach: PRA{}})
	a, _ := sys.SubmitMalleable("a", app.GadgetProfile(), 2) // max 46
	sys.Engine.RunUntil(30)
	b, _ := sys.SubmitMalleable("b", app.GadgetProfile(), 2)
	sys.Engine.RunUntil(60)
	if a.PlannedProcs() != 46 {
		t.Fatalf("a planned = %d", a.PlannedProcs())
	}
	if b.State() != koala.Running {
		t.Fatalf("b state = %v (leftover processors should place it)", b.State())
	}
	sys.Scheduler.Stop()
}

func TestPWAShrinksForWaitingJob(t *testing.T) {
	sys := managedSystem(48, ManagerConfig{Policy: FPSMA{}, Approach: PWA{}})
	long, _ := sys.SubmitMalleable("long", app.GadgetProfile(), 2)
	sys.Engine.RunUntil(30) // long grows to 46 under PWA (queue empty)
	if long.PlannedProcs() != 46 {
		t.Fatalf("long planned = %d, want 46", long.PlannedProcs())
	}
	// New job arrives; cluster has 2 idle; needs 2 → fits. Fill the idle
	// first with a rigid job so the queue actually blocks.
	sys.SubmitRigid("filler", app.GadgetModel(), 2)
	sys.Engine.RunUntil(40)
	waiting, _ := sys.SubmitMalleable("waiting", app.GadgetProfile(), 2)
	sys.Engine.RunUntil(120)
	if waiting.State() != koala.Running {
		t.Fatalf("waiting state = %v (PWA should shrink to place it)", waiting.State())
	}
	if sys.Manager.ShrinkOps().Total() == 0 {
		t.Fatal("no shrink operations recorded")
	}
	if long.PlannedProcs() >= 46 {
		t.Fatalf("long planned = %d, should have shrunk", long.PlannedProcs())
	}
	sys.Scheduler.Stop()
}

func TestPWAGrowsWhenShrinkImpossible(t *testing.T) {
	// Big rigid job that cannot fit even with all malleables at minimum:
	// PWA must grow the running jobs instead.
	sys := managedSystem(16, ManagerConfig{Policy: FPSMA{}, Approach: PWA{}})
	m, _ := sys.SubmitMalleable("m", app.GadgetProfile(), 2)
	sys.Engine.RunUntil(10)
	big, _ := sys.SubmitRigid("big", app.GadgetModel(), 16) // needs whole cluster
	sys.Engine.RunUntil(60)
	if big.State() != koala.Waiting {
		t.Fatalf("big state = %v", big.State())
	}
	if m.PlannedProcs() <= 2 {
		t.Fatalf("m planned = %d; PWA should grow it when shrinking cannot help", m.PlannedProcs())
	}
	sys.Scheduler.Stop()
}

func TestGrowthReserveKeepsNodesForLocalUsers(t *testing.T) {
	sys := managedSystem(48, ManagerConfig{Policy: FPSMA{}, Approach: PRA{}, GrowthReserve: 10})
	j, _ := sys.SubmitMalleable("g", app.GadgetProfile(), 2)
	sys.Engine.RunUntil(60)
	// 48 nodes, reserve 10 → at most 38 for the job.
	if j.PlannedProcs() > 38 {
		t.Fatalf("planned = %d exceeds reserve-constrained 38", j.PlannedProcs())
	}
	if j.PlannedProcs() != 38 {
		t.Fatalf("planned = %d, want exactly 38", j.PlannedProcs())
	}
	sys.Scheduler.Stop()
}

func TestManagerSeesBackgroundLoadViaPolling(t *testing.T) {
	sys := managedSystem(48, ManagerConfig{Policy: FPSMA{}, Approach: PRA{}})
	clus := sys.Grid.Get("A")
	// Local users grab 30 nodes before the job arrives.
	clus.SeizeBackground(30)
	j, _ := sys.SubmitMalleable("g", app.GadgetProfile(), 2)
	sys.Engine.RunUntil(30)
	if j.PlannedProcs() != 18 {
		t.Fatalf("planned = %d, want 18 (48-30)", j.PlannedProcs())
	}
	// Local users leave; the next polls hand the nodes to the job.
	clus.ReleaseBackground(30)
	sys.Engine.RunUntil(60)
	if j.PlannedProcs() != 46 {
		t.Fatalf("planned = %d, want 46 after background release", j.PlannedProcs())
	}
	sys.Scheduler.Stop()
}

func TestManagerDoesNotOvercommitDuringAcquisition(t *testing.T) {
	// Two polls in quick succession must not hand out the same idle
	// processors twice while the first grant's stubs are still in flight.
	sys := managedSystem(48, ManagerConfig{Policy: FPSMA{}, Approach: PRA{}})
	j, _ := sys.SubmitMalleable("g", app.GadgetProfile(), 2)
	sys.Engine.RunUntil(300)
	if j.PlannedProcs() != 46 {
		t.Fatalf("planned = %d", j.PlannedProcs())
	}
	// Planned never exceeded max and cluster never over-allocated:
	if used := sys.Grid.Get("A").Used(); used > 48 || used < 0 {
		t.Fatalf("used = %d", used)
	}
	sys.Scheduler.Stop()
}

func TestApproachByNameAndDefaults(t *testing.T) {
	for _, name := range []string{"PRA", "PWA", "PWAV", "MANUAL", "pra", "pwa", "pwav", "manual"} {
		if a, ok := ApproachByName(name); !ok || a == nil {
			t.Errorf("ApproachByName(%q) failed", name)
		}
	}
	if _, ok := ApproachByName("x"); ok {
		t.Fatal("unknown approach should fail")
	}
	if (PRA{}).Name() != "PRA" || (PWA{}).Name() != "PWA" {
		t.Fatal("approach names")
	}
	cfg := DefaultManagerConfig()
	if cfg.Policy == nil || cfg.Approach == nil {
		t.Fatal("defaults incomplete")
	}
}

func TestNegativeReservePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative reserve did not panic")
		}
	}()
	managedSystem(8, ManagerConfig{Policy: FPSMA{}, Approach: PRA{}, GrowthReserve: -1})
}

func TestSystemRunUntilDone(t *testing.T) {
	sys := managedSystem(48, ManagerConfig{Policy: EGS{}, Approach: PRA{}})
	sys.SubmitMalleable("a", app.FTProfile(), 2)
	sys.SubmitMalleable("b", app.FTProfile(), 2)
	if err := sys.RunUntilDone(10000); err != nil {
		t.Fatal(err)
	}
	for _, j := range sys.Scheduler.Jobs() {
		if j.State() != koala.Finished {
			t.Fatalf("job %s state %v", j.Spec.ID, j.State())
		}
	}
}

func TestSystemDefaultsToDAS3(t *testing.T) {
	sys := NewSystem(SystemConfig{})
	if sys.Grid.TotalNodes() != 272 {
		t.Fatalf("default grid = %d nodes, want DAS-3's 272", sys.Grid.TotalNodes())
	}
	if sys.Manager == nil {
		t.Fatal("manager should be installed by default")
	}
	if len(sys.Sites) != 5 {
		t.Fatalf("sites = %d", len(sys.Sites))
	}
	sys.Scheduler.Stop()
}
