package core

import (
	"testing"

	"repro/internal/app"
	"repro/internal/koala"
)

func TestManualApproachNeverGrowsSpontaneously(t *testing.T) {
	sys := managedSystem(48, ManagerConfig{Policy: FPSMA{}, Approach: Manual{}})
	j, _ := sys.SubmitMalleable("g", app.GadgetProfile(), 2)
	sys.Engine.RunUntil(120)
	if j.PlannedProcs() != 2 {
		t.Fatalf("planned = %d, want 2 (manual approach must not grow)", j.PlannedProcs())
	}
	// Application-initiated growth still works.
	if got := j.AppRequestGrow(6); got != 6 {
		t.Fatalf("app grow obtained %d", got)
	}
	sys.Engine.RunUntil(200)
	if j.CurrentProcs() != 8 {
		t.Fatalf("procs = %d", j.CurrentProcs())
	}
	sys.Scheduler.Stop()
}

func TestManualApproachStillServesQueue(t *testing.T) {
	sys := managedSystem(4, ManagerConfig{Policy: FPSMA{}, Approach: Manual{}})
	a, _ := sys.SubmitRigid("a", app.FTModel(), 4)
	b, _ := sys.SubmitRigid("b", app.FTModel(), 4)
	sys.Engine.RunUntil(60)
	if a.State() != koala.Running || b.State() != koala.Waiting {
		t.Fatalf("a=%v b=%v", a.State(), b.State())
	}
	sys.Engine.RunUntil(400)
	if b.State() != koala.Running && b.State() != koala.Finished {
		t.Fatalf("b = %v; the queue must still be served", b.State())
	}
	sys.Scheduler.Stop()
}
