package core

import (
	"testing"
	"testing/quick"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/gram"
	"repro/internal/koala"
	"repro/internal/runner"
	"repro/internal/workload"
)

// TestPropertySystemInvariants drives the full stack with random workloads,
// random policies/approaches and random background churn, and checks global
// invariants at every sampled instant:
//
//  1. cluster accounting never goes negative or over capacity;
//  2. a running malleable job's planned size stays within [Min, Max];
//  3. held processors never exceed cluster capacity;
//  4. every job reaches a terminal state by the horizon;
//  5. the manager's reservations are non-negative.
func TestPropertySystemInvariants(t *testing.T) {
	policies := []Policy{FPSMA{}, EGS{}, Equipartition{}, Folding{}}
	approaches := []Approach{PRA{}, PWA{}, PWAVoluntary{}}

	run := func(seed uint64, polIdx, aprIdx, jobsRaw, interRaw, bgRaw uint8) bool {
		pol := policies[int(polIdx)%len(policies)]
		apr := approaches[int(aprIdx)%len(approaches)]
		nJobs := int(jobsRaw%30) + 5
		inter := float64(interRaw%60) + 10

		grid := cluster.NewMulticluster(
			cluster.New("A", 48), cluster.New("B", 24), cluster.New("C", 16),
		)
		sys := NewSystem(SystemConfig{
			Grid: grid,
			Gram: gram.Config{SubmitLatency: 3, ReleaseLatency: 0.5, SubmitConcurrency: 2},
			Scheduler: koala.Config{
				Policy:        koala.WorstFit{},
				PollInterval:  7,
				MRunnerConfig: runner.MRunnerConfig{Costs: app.DefaultReconfigCosts(), AcquireTimeout: 120},
			},
			Manager: ManagerConfig{Policy: pol, Approach: apr, GrowthReserve: int(bgRaw % 4)},
		})

		wl, err := workload.Generate(workload.Spec{
			Name: "fuzz", Jobs: nJobs, InterArrival: inter,
			MalleableFraction: 0.7, InitialSize: 2, RigidSize: 2, Seed: seed,
		})
		if err != nil {
			return false
		}
		workload.Submit(sys.Engine, wl, func(js koala.JobSpec) error {
			_, err := sys.Scheduler.Submit(js)
			return err
		})
		if bgRaw%2 == 0 {
			bg, err := workload.StartBackground(sys.Engine, grid, workload.BackgroundSpec{
				MeanInterArrival: 120, MeanDuration: 240, MaxNodes: 12, Seed: seed + 7,
			})
			if err != nil {
				return false
			}
			sys.Engine.At(wl.Duration()+1000, bg.Stop)
		}

		horizon := wl.Duration() + 30000
		ok := true
		check := func() {
			for _, c := range grid.Clusters() {
				if c.Used() < 0 || c.Background() < 0 || c.Idle() < 0 ||
					c.Used()+c.Background() > c.Nodes() {
					ok = false
				}
			}
			for i, site := range sys.Sites {
				if sys.Manager.Reserved(i) < 0 {
					ok = false
				}
				for _, j := range sys.Scheduler.RunningMalleableJobs(site.Name()) {
					if j.PlannedProcs() < j.MinProcs() || j.PlannedProcs() > j.MaxProcs() {
						ok = false
					}
				}
			}
		}
		for sys.Engine.Now() < horizon && ok {
			sys.Engine.RunUntil(sys.Engine.Now() + 50)
			check()
			if sys.allDone() {
				break
			}
		}
		if !ok {
			return false
		}
		for _, j := range sys.Scheduler.Jobs() {
			if st := j.State(); st != koala.Finished && st != koala.Rejected {
				t.Logf("seed=%d pol=%s apr=%s: job %s stuck in %v", seed, pol.Name(), apr.Name(), j.Spec.ID, st)
				return false
			}
		}
		sys.Scheduler.Stop()
		return true
	}
	if err := quick.Check(run, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
