package sim

import "math"

// RNG is a small, fast, deterministic random number generator based on
// SplitMix64. Every experiment owns its RNG seeded explicitly, so runs are
// exactly reproducible across machines — a requirement for the regression
// tests that pin figure shapes.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Distinct seeds give
// independent-looking streams; seed 0 is valid.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0,1).
func (r *RNG) Float64() float64 {
	// 53 high-quality bits, the standard conversion.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	// Lemire-style bounded generation with rejection to avoid modulo bias.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// ExpFloat64 returns an exponentially distributed value with mean 1, via
// inverse-transform sampling (sufficient quality for workload inter-arrival
// times and fully deterministic).
func (r *RNG) ExpFloat64() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Split returns a new RNG whose stream is independent of the receiver's
// future output. It consumes one value from the receiver.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64() ^ 0xd1b54a32d192ed03) }

// Perm returns a random permutation of [0,n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
