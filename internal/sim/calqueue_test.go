package sim

import (
	"math"
	"testing"
)

// refQueue is the reference model the calendar queue is tested against: a
// flat slice popped by linear minimum scan over the same (time, seq) total
// order. Too slow to ship, trivially correct.
type refQueue struct {
	events []*Event
}

func (r *refQueue) push(ev *Event) { r.events = append(r.events, ev) }

func (r *refQueue) popMin() *Event {
	mi := 0
	for i, ev := range r.events {
		if eventBefore(ev, r.events[mi]) {
			mi = i
		}
		_ = ev
	}
	ev := r.events[mi]
	r.events = append(r.events[:mi], r.events[mi+1:]...)
	return ev
}

func (r *refQueue) remove(ev *Event) {
	for i, e := range r.events {
		if e == ev {
			r.events = append(r.events[:i], r.events[i+1:]...)
			return
		}
	}
	panic("refQueue: remove of unqueued event")
}

func (r *refQueue) len() int { return len(r.events) }

// pattern generates the time of the next insert for one of the insert
// regimes the queue is tuned for.
type pattern func(rng *RNG, now float64) float64

var patterns = map[string]pattern{
	// Mostly-monotonic: the common simulation regime, inserts land within
	// a short horizon of the clock.
	"monotonic": func(rng *RNG, now float64) float64 {
		return now + rng.Float64()*10
	},
	// Bimodal: dense near-now traffic plus a sparse far tail (the
	// pre-scheduled workload submissions), exercising the overflow rung.
	"bimodal": func(rng *RNG, now float64) float64 {
		if rng.Bool(0.2) {
			return now + 1e4 + rng.Float64()*1e5
		}
		return now + rng.Float64()*10
	},
	// Far-future-heavy: most events beyond the year, so year advances and
	// migrations dominate.
	"farfuture": func(rng *RNG, now float64) float64 {
		return now + 100 + rng.Float64()*1e6
	},
	// Ties: coarse quantization forces many exact time collisions, so the
	// FIFO (time, seq) tie-break carries the order.
	"ties": func(rng *RNG, now float64) float64 {
		return now + float64(int(rng.Float64()*8))
	},
}

// runEquivalence drives the calendar queue and the reference model through
// an identical randomized schedule/cancel/pop sequence and asserts the pop
// streams are the same events in the same order. debugCheck validates
// every queue invariant on every operation for the duration.
func runEquivalence(t *testing.T, seed uint64, next pattern, cancelP float64) {
	t.Helper()
	debugCheck = true
	defer func() { debugCheck = false }()

	var q calQueue
	var ref refQueue
	rng := NewRNG(seed)
	var live []*Event // events queued in both structures
	now := 0.0
	seq := uint64(0)

	step := func() {
		switch {
		case ref.len() > 0 && rng.Bool(cancelP):
			// Cancel a random live event from both queues.
			i := int(rng.Float64() * float64(len(live)))
			if i == len(live) {
				i--
			}
			ev := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			q.remove(ev)
			ref.remove(ev)
		case ref.len() > 0 && rng.Bool(0.45):
			got, want := q.popMin(), ref.popMin()
			if got != want {
				t.Fatalf("pop mismatch: got (t=%g seq=%d), want (t=%g seq=%d)",
					got.time, got.seq, want.time, want.seq)
			}
			if got.time < now {
				t.Fatalf("pop went backwards: %g after %g", got.time, now)
			}
			now = got.time
			for i, ev := range live {
				if ev == got {
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
					break
				}
			}
		default:
			ev := &Event{time: next(rng, now), seq: seq}
			seq++
			q.push(ev)
			ref.push(ev)
			live = append(live, ev)
		}
		if q.pending() != ref.len() {
			t.Fatalf("pending = %d, reference = %d", q.pending(), ref.len())
		}
	}

	for i := 0; i < 4000; i++ {
		step()
	}
	// Drain: every remaining pop must match too.
	for ref.len() > 0 {
		got, want := q.popMin(), ref.popMin()
		if got != want {
			t.Fatalf("drain mismatch: got (t=%g seq=%d), want (t=%g seq=%d)",
				got.time, got.seq, want.time, want.seq)
		}
	}
	if q.pending() != 0 {
		t.Fatalf("drained queue pending = %d", q.pending())
	}
}

func TestCalQueueMatchesReferenceHeap(t *testing.T) {
	for name, next := range patterns {
		next := next
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 5; seed++ {
				runEquivalence(t, seed, next, 0.1)
			}
		})
	}
}

func TestCalQueueCancelHeavy(t *testing.T) {
	for name, next := range patterns {
		next := next
		t.Run(name, func(t *testing.T) {
			runEquivalence(t, 7, next, 0.4)
		})
	}
}

// TestCalQueuePendingExactAfterCancels pins that remove keeps pending
// exact in both the in-year buckets and the overflow rung.
func TestCalQueuePendingExactAfterCancels(t *testing.T) {
	debugCheck = true
	defer func() { debugCheck = false }()
	var q calQueue
	var evs []*Event
	for i := 0; i < 100; i++ {
		// Half in the first year, half far future (the rung).
		tm := float64(i)
		if i%2 == 1 {
			tm = 1e6 + float64(i)
		}
		ev := &Event{time: tm, seq: uint64(i)}
		q.push(ev)
		evs = append(evs, ev)
	}
	if q.pending() != 100 {
		t.Fatalf("pending = %d, want 100", q.pending())
	}
	for i, ev := range evs {
		q.remove(ev)
		if q.pending() != 100-i-1 {
			t.Fatalf("pending = %d after %d removes", q.pending(), i+1)
		}
	}
}

// TestCalQueueGrowPreservesOrder forces bucket-array doubling mid-year and
// checks the pop order is still globally sorted.
func TestCalQueueGrowPreservesOrder(t *testing.T) {
	debugCheck = true
	defer func() { debugCheck = false }()
	var q calQueue
	rng := NewRNG(3)
	n := 6 * minBuckets // over the 2×buckets growth threshold, twice
	for i := 0; i < n; i++ {
		q.push(&Event{time: rng.Float64() * float64(minBuckets), seq: uint64(i)})
	}
	if len(q.buckets) <= minBuckets {
		t.Fatalf("bucket array did not grow: %d", len(q.buckets))
	}
	var last *Event
	for q.pending() > 0 {
		ev := q.popMin()
		if last != nil && !eventBefore(last, ev) {
			t.Fatalf("pop order broken: (t=%g seq=%d) after (t=%g seq=%d)",
				ev.time, ev.seq, last.time, last.seq)
		}
		last = ev
	}
}

// TestCalQueueYearAdvanceAfterCancel is the regression for the year's last
// event being canceled rather than popped: the next head() must re-anchor
// on the rung without tripping over the stale current bucket.
func TestCalQueueYearAdvanceAfterCancel(t *testing.T) {
	debugCheck = true
	defer func() { debugCheck = false }()
	var q calQueue
	near := &Event{time: 1, seq: 0}
	far := &Event{time: 1e9, seq: 1}
	q.push(near)
	q.push(far)
	q.remove(near)
	if got := q.popMin(); got != far {
		t.Fatalf("popped (t=%g seq=%d), want the far event", got.time, got.seq)
	}
	if q.pending() != 0 {
		t.Fatalf("pending = %d", q.pending())
	}
}

// TestCalQueueInfiniteTime covers the infinite-anchor path of advanceYear
// (the engine parks horizon sentinels at +Inf).
func TestCalQueueInfiniteTime(t *testing.T) {
	debugCheck = true
	defer func() { debugCheck = false }()
	var q calQueue
	inf := &Event{time: math.Inf(1), seq: 0}
	later := &Event{time: math.Inf(1), seq: 1}
	q.push(inf)
	q.push(later)
	if got := q.popMin(); got != inf {
		t.Fatalf("expected the lower-seq infinite event first")
	}
	if got := q.popMin(); got != later {
		t.Fatalf("expected the second infinite event")
	}
}
