package sim

import "testing"

// benchQueue measures steady-state push/pop (and optionally cancel+
// reschedule) throughput of the calendar queue at a resident population of
// 1024 events, for one insert pattern. Everything is preallocated: a
// non-zero allocs/op here is a hot-path regression.
func benchQueue(b *testing.B, next pattern, cancelHeavy bool) {
	var q calQueue
	events := make([]Event, 1024)
	rng := NewRNG(1)
	now := 0.0
	for i := range events {
		ev := &events[i]
		ev.time = next(rng, now)
		ev.seq = uint64(i)
		q.push(ev)
	}
	seq := uint64(len(events))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cancelHeavy && i%2 == 1 {
			// Cancel a pseudo-random live event and reschedule it — the
			// eager-cancel path under churn.
			ev := &events[int(rng.Float64()*float64(len(events)))]
			if ev.bucket != bucketNone {
				q.remove(ev)
				ev.time = next(rng, now)
				ev.seq = seq
				seq++
				q.push(ev)
				continue
			}
		}
		ev := q.popMin()
		now = ev.time
		ev.time = next(rng, now)
		ev.seq = seq
		seq++
		q.push(ev)
	}
}

// BenchmarkEventQueue covers the insert regimes the queue is tuned for;
// the entries are gated by tools/benchjson -compare in CI.
func BenchmarkEventQueue(b *testing.B) {
	b.Run("monotonic", func(b *testing.B) { benchQueue(b, patterns["monotonic"], false) })
	b.Run("bimodal", func(b *testing.B) { benchQueue(b, patterns["bimodal"], false) })
	b.Run("farfuture", func(b *testing.B) { benchQueue(b, patterns["farfuture"], false) })
	b.Run("cancelheavy", func(b *testing.B) { benchQueue(b, patterns["bimodal"], true) })
}
