// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is the substrate on which the whole multicluster reproduction
// runs: clusters, local resource managers, the GRAM service, applications and
// the KOALA scheduler all advance by scheduling events on a shared Engine.
//
// Determinism is guaranteed by (a) a binary-heap event queue ordered by
// (time, insertion sequence) so simultaneous events fire in scheduling order,
// and (b) the SplitMix64-based RNG in rng.go, seeded explicitly by every
// experiment.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a scheduled callback. It is returned by the scheduling methods so
// that callers may cancel it before it fires.
type Event struct {
	time     float64
	seq      uint64
	index    int // heap index, -1 when not queued
	fn       func()
	canceled bool
}

// Time returns the virtual time at which the event fires.
func (e *Event) Time() float64 { return e.time }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (e *Event) Cancel() { e.canceled = true }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulation engine. The zero
// value is ready to use and starts at virtual time 0.
//
// Engine is not safe for concurrent use; the simulated world is entirely
// sequential, which is what makes runs reproducible.
type Engine struct {
	now     float64
	seq     uint64
	queue   eventHeap
	stopped bool
	fired   uint64
}

// New returns an Engine starting at virtual time 0.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Fired returns the number of events executed so far (useful in tests and
// benchmarks as a proxy for simulation work).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events currently queued (including canceled
// events that have not yet been discarded).
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality, which is always a bug in the
// calling model.
func (e *Engine) At(t float64, fn func()) *Event {
	if math.IsNaN(t) {
		panic("sim: scheduling event at NaN time")
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event in the past: t=%g now=%g", t, e.now))
	}
	ev := &Event{time: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run delay seconds from now. Negative delays panic.
func (e *Engine) After(delay float64, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %g", delay))
	}
	return e.At(e.now+delay, fn)
}

// Immediately schedules fn at the current time, after all events already
// scheduled for this instant.
func (e *Engine) Immediately(fn func()) *Event { return e.At(e.now, fn) }

// Stop halts Run/RunUntil after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// step fires the earliest pending event. It reports false when the queue is
// empty.
func (e *Engine) step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		if ev.time < e.now {
			panic("sim: event heap returned an event from the past")
		}
		e.now = ev.time
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called. It returns
// the final virtual time.
func (e *Engine) Run() float64 {
	e.stopped = false
	for !e.stopped && e.step() {
	}
	return e.now
}

// RunUntil executes events with time ≤ horizon, then advances the clock to
// horizon (if the simulation has not already passed it) and returns. Events
// scheduled beyond horizon remain queued.
func (e *Engine) RunUntil(horizon float64) float64 {
	e.stopped = false
	for !e.stopped {
		// Peek: drop canceled heads so the horizon check sees a live event.
		for len(e.queue) > 0 && e.queue[0].canceled {
			heap.Pop(&e.queue)
		}
		if len(e.queue) == 0 || e.queue[0].time > horizon {
			break
		}
		e.step()
	}
	if e.now < horizon {
		e.now = horizon
	}
	return e.now
}
