// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is the substrate on which the whole multicluster reproduction
// runs: clusters, local resource managers, the GRAM service, applications and
// the KOALA scheduler all advance by scheduling events on a shared Engine.
//
// Determinism is guaranteed by (a) an event queue popped in strict
// (time, insertion sequence) order so simultaneous events fire in scheduling
// order, and (b) the SplitMix64-based RNG in rng.go, seeded explicitly by
// every experiment. The queue is a calendar queue with an unsorted overflow
// rung (calqueue.go): amortized O(1) insert and pop for the mostly-monotonic
// event streams the simulator produces, with a pop order byte-identical to a
// (time, seq) min-heap's.
//
// The kernel's hot path is allocation-free: fired and canceled Event structs
// are recycled through a free list backed by an arena owned by the Engine,
// and the Handler-based scheduling methods (AtOp, AfterOp, ImmediatelyOp)
// let steady-state callers avoid per-event closures entirely.
package sim

import (
	"fmt"
	"math"
)

// Handler is a pre-bound event target: scheduling one with AtOp/AfterOp
// fires h.OnEvent(op) without allocating a per-event closure. The op code
// lets a single object distinguish the different events it schedules.
type Handler interface {
	OnEvent(op int)
}

// Stats is the engine's passive observability sink (obs.SimStats
// implements it). The engine accounts kernel activity in plain integer
// counters — the event hot path carries no observability branches or
// calls at all — and folds the totals into the sink once per
// Run/RunUntil return, nil-guarded, on the cold path. Implementations
// must not allocate, must not read the wall clock, and must never
// influence the simulation — the arguments carry only simulated time
// and counts. The koalalint obshook analyzer enforces the call-site
// guard and the implementation constraints.
type Stats interface {
	// EngineTotals folds one Run/RunUntil stretch into the collector.
	// scheduled, fired and canceled are deltas since this engine's
	// previous flush; pendingPeak (this engine's high-water queue
	// length) and now (its virtual clock) are absolutes a collector
	// should fold in as maxima.
	EngineTotals(scheduled, fired, canceled uint64, pendingPeak int, now float64)
}

// Event is a scheduled callback. It is returned by the scheduling methods so
// that callers may cancel it before it fires.
//
// Handles are valid only until the event fires or is canceled: the Engine
// recycles the struct for later events, so a retained stale handle may refer
// to an unrelated live event. Clear stored handles when they fire.
type Event struct {
	engine *Engine
	time   float64
	seq    uint64
	// bucket/pos locate the event inside the calendar queue for eager
	// cancellation: the bucket index (or bucketOverflow for the far-future
	// rung), and the position within that bucket's sorted slice. bucket is
	// bucketNone while the event is not queued.
	bucket   int32
	pos      int32
	fn       func()
	h        Handler
	op       int
	canceled bool
}

// Time returns the virtual time at which the event fires.
func (e *Event) Time() float64 { return e.time }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Cancel prevents the event from firing and removes it from the queue
// immediately (so Pending stays exact). Canceling an already-fired or
// already-canceled event is a no-op.
func (e *Event) Cancel() {
	if e.canceled {
		return
	}
	e.canceled = true
	if e.bucket != bucketNone {
		eng := e.engine
		eng.q.remove(e)
		eng.recycle(e)
		eng.canceled++
	}
}

// arenaChunk is how many Events one arena block holds; the free list grows
// by this much whenever it runs dry.
const arenaChunk = 256

// Engine is a single-threaded discrete-event simulation engine. The zero
// value is ready to use and starts at virtual time 0.
//
// Engine is not safe for concurrent use; the simulated world is entirely
// sequential, which is what makes runs reproducible.
type Engine struct {
	now     float64
	seq     uint64
	q       calQueue
	stopped bool
	fired   uint64

	// Kernel accounting for the stats sink: plain counters kept
	// unconditionally (integer arithmetic, no branches on e.stats), so
	// observability costs the event hot path nothing. canceled counts
	// Cancel calls that removed a queued event; pendingPeak is the
	// high-water queue length. flushedSched/Fired/Canceled mark what the
	// sink has already been told, so repeated flushes report deltas.
	canceled                                  uint64
	pendingPeak                               int
	flushedSched, flushedFired, flushedCancel uint64

	// free holds fired/canceled events available for reuse; arena is the
	// current allocation block the free list refills from.
	free  []*Event
	arena []Event

	// stats, when non-nil, receives the kernel counters when
	// Run/RunUntil return. It is pure observability: it must never
	// change the simulation (see the Stats contract).
	stats Stats
}

// SetStats installs the observability hook. Callers must pass a
// non-nil implementation (pass nothing to leave collection off): a nil
// concrete pointer boxed in the interface would defeat the engine's
// nil guard and panic on the first flush.
func (e *Engine) SetStats(st Stats) {
	if st == nil {
		panic("sim: SetStats with nil Stats; leave the hook unset instead")
	}
	e.stats = st
}

// New returns an Engine starting at virtual time 0.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Fired returns the number of events executed so far (useful in tests and
// benchmarks as a proxy for simulation work).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events currently queued. Canceled events are
// removed from the queue eagerly, so the count is exact.
func (e *Engine) Pending() int { return e.q.pending() }

// alloc hands out an Event from the free list, refilling from the arena
// when it runs dry.
//
//koalalint:hotpath
func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	if len(e.arena) == 0 {
		//koalalint:alloc arena refill: one chunk allocation amortized over arenaChunk events
		e.arena = make([]Event, arenaChunk)
	}
	ev := &e.arena[0]
	e.arena = e.arena[1:]
	ev.engine = e
	return ev
}

// recycle returns a fired or canceled event to the free list, dropping its
// callback so the closure can be collected.
//
//koalalint:hotpath
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	ev.h = nil
	//koalalint:alloc amortized: the free list retains its capacity across events
	e.free = append(e.free, ev)
}

// schedule queues a recycled-or-fresh event at absolute time t.
//
//koalalint:hotpath
func (e *Engine) schedule(t float64) *Event {
	if math.IsNaN(t) {
		panic("sim: scheduling event at NaN time")
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event in the past: t=%g now=%g", t, e.now))
	}
	ev := e.alloc()
	ev.time = t
	ev.seq = e.seq
	ev.canceled = false
	e.seq++
	e.q.push(ev)
	if n := e.q.pending(); n > e.pendingPeak {
		e.pendingPeak = n
	}
	return ev
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality, which is always a bug in the
// calling model.
func (e *Engine) At(t float64, fn func()) *Event {
	ev := e.schedule(t)
	ev.fn = fn
	return ev
}

// After schedules fn to run delay seconds from now. Negative delays panic.
func (e *Engine) After(delay float64, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %g", delay))
	}
	return e.At(e.now+delay, fn)
}

// Immediately schedules fn at the current time, after all events already
// scheduled for this instant.
func (e *Engine) Immediately(fn func()) *Event { return e.At(e.now, fn) }

// AtOp schedules h.OnEvent(op) at absolute virtual time t without
// allocating a closure.
func (e *Engine) AtOp(t float64, h Handler, op int) *Event {
	if h == nil {
		panic("sim: AtOp with nil handler")
	}
	ev := e.schedule(t)
	ev.h = h
	ev.op = op
	return ev
}

// AfterOp schedules h.OnEvent(op) delay seconds from now without allocating
// a closure. Negative delays panic.
func (e *Engine) AfterOp(delay float64, h Handler, op int) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %g", delay))
	}
	return e.AtOp(e.now+delay, h, op)
}

// ImmediatelyOp schedules h.OnEvent(op) at the current time, after all
// events already scheduled for this instant.
func (e *Engine) ImmediatelyOp(h Handler, op int) *Event { return e.AtOp(e.now, h, op) }

// Stop halts Run/RunUntil after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }

// step fires the earliest pending event. It reports false when the queue is
// empty.
//
//koalalint:hotpath
func (e *Engine) step() bool {
	for e.q.pending() > 0 {
		ev := e.q.popMin()
		if ev.canceled {
			// Cancel removes events eagerly; this is defensive only.
			e.recycle(ev)
			continue
		}
		if ev.time < e.now {
			panic("sim: event queue returned an event from the past")
		}
		e.now = ev.time
		e.fired++
		if ev.h != nil {
			ev.h.OnEvent(ev.op)
		} else {
			ev.fn()
		}
		// Recycle only after the callback returns so a handle canceled
		// mid-fire never aliases a live event.
		e.recycle(ev)
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called. It returns
// the final virtual time.
//
//koalalint:hotpath
func (e *Engine) Run() float64 {
	e.stopped = false
	for !e.stopped && e.step() {
	}
	e.flushStats()
	return e.now
}

// flushStats folds the kernel counters into the stats sink: deltas for
// the event counts, absolutes for the peak and the clock. Called when
// Run/RunUntil return — never per event — so observability costs the
// hot path nothing even when a collector is attached.
func (e *Engine) flushStats() {
	if e.stats != nil {
		e.stats.EngineTotals(e.seq-e.flushedSched, e.fired-e.flushedFired,
			e.canceled-e.flushedCancel, e.pendingPeak, e.now)
		e.flushedSched, e.flushedFired, e.flushedCancel = e.seq, e.fired, e.canceled
	}
}

// RunUntil executes events with time ≤ horizon, then advances the clock to
// horizon (if the simulation has not already passed it) and returns. Events
// scheduled beyond horizon remain queued.
//
//koalalint:hotpath
func (e *Engine) RunUntil(horizon float64) float64 {
	e.stopped = false
	for !e.stopped {
		head := e.q.head()
		if head == nil || head.time > horizon {
			break
		}
		e.step()
	}
	if e.now < horizon {
		e.now = horizon
	}
	e.flushStats()
	return e.now
}
