package sim

import "fmt"

var debugCheck = false

// check is an inlinable guard so the disabled checker costs the hot
// path a single predictable branch.
//
//koalalint:hotpath
func (q *calQueue) check(op string) {
	if debugCheck {
		q.checkSlow(op)
	}
}

// checkSlow validates every queue invariant: no nil slots or stale
// back-references in live regions, sorted buckets, the in-year /
// overflow year partition, and the exact inYear count. The
// calqueue property tests flip debugCheck on so every operation of a
// randomized run is validated.
func (q *calQueue) checkSlow(op string) {
	n := 0
	for b, s := range q.buckets {
		lo := 0
		if b == q.cur {
			lo = q.cursor
		}
		if b < q.cur && len(s) != 0 {
			panic(fmt.Sprintf("calqueue %s: passed bucket %d (cur=%d) non-empty len=%d", op, b, q.cur, len(s)))
		}
		for i := lo; i < len(s); i++ {
			if s[i] == nil {
				panic(fmt.Sprintf("calqueue %s: nil at bucket %d pos %d (cur=%d cursor=%d len=%d)", op, b, i, q.cur, q.cursor, len(s)))
			}
			if s[i].bucket != int32(b) || s[i].pos != int32(i) {
				panic(fmt.Sprintf("calqueue %s: bad backref bucket %d pos %d: ev.bucket=%d ev.pos=%d", op, b, i, s[i].bucket, s[i].pos))
			}
			if i > lo && !eventBefore(s[i-1], s[i]) {
				panic(fmt.Sprintf("calqueue %s: unsorted bucket %d at %d", op, b, i))
			}
			if s[i].time >= q.yearEnd {
				panic(fmt.Sprintf("calqueue %s: in-year event t=%g >= yearEnd=%g bucket %d", op, s[i].time, q.yearEnd, b))
			}
			n++
		}
	}
	if n != q.inYear {
		panic(fmt.Sprintf("calqueue %s: inYear=%d counted=%d", op, q.inYear, n))
	}
	for i, ev := range q.overflow {
		if ev == nil {
			panic(fmt.Sprintf("calqueue %s: nil overflow at %d", op, i))
		}
		if ev.bucket != bucketOverflow || ev.pos != int32(i) {
			panic(fmt.Sprintf("calqueue %s: bad overflow backref at %d: bucket=%d pos=%d", op, i, ev.bucket, ev.pos))
		}
		if ev.time < q.yearEnd {
			panic(fmt.Sprintf("calqueue %s: overflow event t=%g < yearEnd=%g", op, ev.time, q.yearEnd))
		}
	}
}
