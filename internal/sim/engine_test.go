package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := New()
	if e.Now() != 0 {
		t.Fatalf("Now() = %g, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New()
	var order []float64
	for _, tm := range []float64{5, 1, 3, 2, 4} {
		tm := tm
		e.At(tm, func() { order = append(order, tm) })
	}
	e.Run()
	if !sort.Float64sAreSorted(order) {
		t.Fatalf("events fired out of order: %v", order)
	}
	if len(order) != 5 {
		t.Fatalf("fired %d events, want 5", len(order))
	}
	if e.Now() != 5 {
		t.Fatalf("final time %g, want 5", e.Now())
	}
}

func TestSimultaneousEventsFireInScheduleOrder(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(7, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events reordered: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := New()
	var at float64 = -1
	e.At(10, func() {
		e.After(5, func() { at = e.Now() })
	})
	e.Run()
	if at != 15 {
		t.Fatalf("After fired at %g, want 15", at)
	}
}

func TestImmediatelyRunsAtCurrentTimeAfterPending(t *testing.T) {
	e := New()
	var order []string
	e.At(3, func() {
		e.Immediately(func() { order = append(order, "imm") })
	})
	e.At(3, func() { order = append(order, "second-at-3") })
	e.Run()
	want := []string{"second-at-3", "imm"}
	if len(order) != 2 || order[0] != want[0] || order[1] != want[1] {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	e := New()
	fired := false
	ev := e.At(1, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
}

func TestCancelIsIdempotent(t *testing.T) {
	e := New()
	ev := e.At(1, func() {})
	ev.Cancel()
	ev.Cancel()
	e.Run()
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestNaNTimePanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("NaN time did not panic")
		}
	}()
	e.At(math.NaN(), func() {})
}

func TestStopHaltsRun(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(float64(i), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("fired %d events after Stop, want 3", count)
	}
	// Run can be resumed.
	e.Run()
	if count != 10 {
		t.Fatalf("fired %d events total, want 10", count)
	}
}

func TestRunUntilRespectsHorizon(t *testing.T) {
	e := New()
	var fired []float64
	for _, tm := range []float64{1, 2, 3, 4, 5} {
		tm := tm
		e.At(tm, func() { fired = append(fired, tm) })
	}
	e.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3: %v", len(fired), fired)
	}
	if e.Now() != 3 {
		t.Fatalf("Now() = %g, want 3", e.Now())
	}
	e.RunUntil(10)
	if len(fired) != 5 {
		t.Fatalf("fired %d events, want 5", len(fired))
	}
	if e.Now() != 10 {
		t.Fatalf("Now() = %g, want 10 (clock advances to horizon)", e.Now())
	}
}

func TestRunUntilWithOnlyCanceledEvents(t *testing.T) {
	e := New()
	ev := e.At(2, func() {})
	ev.Cancel()
	e.RunUntil(5)
	if e.Now() != 5 {
		t.Fatalf("Now() = %g, want 5", e.Now())
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := New()
	depth := 0
	var schedule func()
	schedule = func() {
		depth++
		if depth < 100 {
			e.After(1, schedule)
		}
	}
	e.After(1, schedule)
	e.Run()
	if depth != 100 {
		t.Fatalf("chained depth = %d, want 100", depth)
	}
	if e.Now() != 100 {
		t.Fatalf("Now() = %g, want 100", e.Now())
	}
}

func TestFiredCounter(t *testing.T) {
	e := New()
	for i := 0; i < 7; i++ {
		e.At(float64(i), func() {})
	}
	e.Run()
	if e.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7", e.Fired())
	}
}

// Property: for any set of event times, the firing order is a non-decreasing
// sequence and every non-canceled event fires exactly once.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		e := New()
		var fired []float64
		for _, r := range raw {
			tm := float64(r)
			e.At(tm, func() { fired = append(fired, tm) })
		}
		e.Run()
		if len(fired) != len(raw) {
			return false
		}
		return sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTickerFiresPeriodically(t *testing.T) {
	e := New()
	var times []float64
	tk := NewTicker(e, 10, func() { times = append(times, e.Now()) })
	e.At(35, func() { tk.Stop() })
	e.Run()
	want := []float64{10, 20, 30}
	if len(times) != len(want) {
		t.Fatalf("ticker fired at %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("ticker fired at %v, want %v", times, want)
		}
	}
	if !tk.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	e := New()
	count := 0
	var tk *Ticker
	tk = NewTicker(e, 1, func() {
		count++
		if count == 5 {
			tk.Stop()
		}
	})
	e.RunUntil(100)
	if count != 5 {
		t.Fatalf("ticker fired %d times, want 5", count)
	}
}

func TestTickerZeroPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero period did not panic")
		}
	}()
	NewTicker(New(), 0, func() {})
}
