package sim

import "testing"

// nop is package-level so scheduling it never allocates a closure.
var nop = func() {}

func TestPendingExcludesCanceled(t *testing.T) {
	e := New()
	a := e.At(1, nop)
	e.At(2, nop)
	e.At(3, nop)
	if e.Pending() != 3 {
		t.Fatalf("Pending() = %d, want 3", e.Pending())
	}
	a.Cancel()
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d after cancel, want 2 (canceled events must not be counted)", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after Run, want 0", e.Pending())
	}
	if e.Fired() != 2 {
		t.Fatalf("Fired() = %d, want 2", e.Fired())
	}
}

func TestCancelMidHeapKeepsOrder(t *testing.T) {
	e := New()
	var order []float64
	evs := make([]*Event, 0, 10)
	for _, tm := range []float64{5, 1, 9, 3, 7, 2, 8, 4, 6, 10} {
		tm := tm
		evs = append(evs, e.At(tm, func() { order = append(order, tm) }))
	}
	evs[0].Cancel() // t=5, interior heap node
	evs[2].Cancel() // t=9
	e.Run()
	want := []float64{1, 2, 3, 4, 6, 7, 8, 10}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
}

type opRecorder struct {
	ops []int
}

func (r *opRecorder) OnEvent(op int) { r.ops = append(r.ops, op) }

func TestHandlerEventsInterleaveWithClosures(t *testing.T) {
	e := New()
	rec := &opRecorder{}
	var order []string
	e.AtOp(1, rec, 7)
	e.At(2, func() { order = append(order, "fn") })
	e.AfterOp(3, rec, 8)
	e.At(3, func() { e.ImmediatelyOp(rec, 9) })
	e.Run()
	if len(rec.ops) != 3 || rec.ops[0] != 7 || rec.ops[1] != 8 || rec.ops[2] != 9 {
		t.Fatalf("handler ops = %v, want [7 8 9]", rec.ops)
	}
	if len(order) != 1 {
		t.Fatalf("closure events fired %d times, want 1", len(order))
	}
}

func TestAtOpNilHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AtOp with nil handler did not panic")
		}
	}()
	New().AtOp(1, nil, 0)
}

// TestScheduleFireIsAllocationFree pins the free-list behaviour: once the
// pool is warm, a schedule+fire cycle performs zero heap allocations.
func TestScheduleFireIsAllocationFree(t *testing.T) {
	e := New()
	rec := &opRecorder{}
	// Warm the pool and the heap's backing array.
	for i := 0; i < 2*arenaChunk; i++ {
		e.At(e.Now(), nop)
	}
	e.Run()
	rec.ops = rec.ops[:0]
	allocs := testing.AllocsPerRun(100, func() {
		e.At(e.Now()+1, nop)
		e.AtOp(e.Now()+1, rec, 1)
		e.Run()
	})
	if allocs > 0 {
		t.Fatalf("schedule+fire allocates %.1f objects per cycle, want 0", allocs)
	}
}

// TestCancelIsAllocationFree pins that eager removal recycles in place.
func TestCancelIsAllocationFree(t *testing.T) {
	e := New()
	for i := 0; i < arenaChunk; i++ {
		e.At(e.Now(), nop)
	}
	e.Run()
	allocs := testing.AllocsPerRun(100, func() {
		ev := e.At(e.Now()+1, nop)
		ev.Cancel()
	})
	if allocs > 0 {
		t.Fatalf("schedule+cancel allocates %.1f objects per cycle, want 0", allocs)
	}
}

// BenchmarkEngine measures raw schedule+fire throughput of the kernel, the
// unit of work every simulated component pays per event.
func BenchmarkEngine(b *testing.B) {
	e := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.At(e.Now()+1, nop)
		e.At(e.Now()+2, nop)
		e.At(e.Now()+0.5, nop)
		e.Run()
	}
}

// BenchmarkEngineHandler is BenchmarkEngine over the closure-free AtOp path.
func BenchmarkEngineHandler(b *testing.B) {
	e := New()
	rec := &opRecorder{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.ops = rec.ops[:0]
		e.AtOp(e.Now()+1, rec, 0)
		e.AtOp(e.Now()+2, rec, 1)
		e.AtOp(e.Now()+0.5, rec, 2)
		e.Run()
	}
}

// BenchmarkEngineChurn stresses a deep heap with interleaved cancels, the
// shape of the polling loop under load.
func BenchmarkEngineChurn(b *testing.B) {
	e := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var evs [64]*Event
		for j := range evs {
			evs[j] = e.At(e.Now()+float64(j%13)+1, nop)
		}
		for j := 0; j < len(evs); j += 2 {
			evs[j].Cancel()
		}
		e.Run()
	}
}
