package sim

import "testing"

func TestTickerStopBeforeFirstFire(t *testing.T) {
	e := New()
	fired := 0
	tk := NewTicker(e, 10, func() { fired++ })
	tk.Stop()
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after Stop before first fire, want 0", e.Pending())
	}
	e.RunUntil(100)
	if fired != 0 {
		t.Fatalf("stopped ticker fired %d times", fired)
	}
	if !tk.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
}

// TestTickerStopInsideCallbackLeavesOtherEventsAlone guards the event-pool
// hazard: the event that just fired the tick is recycled, so a Stop from
// inside the callback must not cancel whatever event reused that struct.
func TestTickerStopInsideCallbackLeavesOtherEventsAlone(t *testing.T) {
	e := New()
	otherFired := false
	var tk *Ticker
	tk = NewTicker(e, 1, func() {
		e.After(0.5, func() { otherFired = true })
		tk.Stop()
	})
	e.RunUntil(10)
	if !otherFired {
		t.Fatal("event scheduled before Stop-in-callback never fired (stale ticker handle canceled it)")
	}
}

// TestTickerStopTwiceAfterReuse guards the same hazard for repeated Stops:
// once stopped, a second Stop must not touch the (recycled, reused) event.
func TestTickerStopTwiceAfterReuse(t *testing.T) {
	e := New()
	tk := NewTicker(e, 1, func() {})
	tk.Stop()
	fired := false
	e.After(1, func() { fired = true }) // reuses the canceled tick event
	tk.Stop()
	e.RunUntil(5)
	if !fired {
		t.Fatal("second Stop canceled an unrelated reused event")
	}
}

// TestTickerSteadyStateIsAllocationFree pins the reused reschedule closure:
// a warm ticker costs zero allocations per fire.
func TestTickerSteadyStateIsAllocationFree(t *testing.T) {
	e := New()
	NewTicker(e, 1, func() {})
	e.RunUntil(float64(arenaChunk)) // warm pool and heap
	allocs := testing.AllocsPerRun(100, func() {
		e.RunUntil(e.Now() + 10)
	})
	if allocs > 0 {
		t.Fatalf("warm ticker allocates %.2f objects per 10 fires, want 0", allocs)
	}
}
