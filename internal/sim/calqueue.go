package sim

import "math"

// The event queue is a calendar queue with an unsorted overflow rung,
// tuned for the mostly-monotonic event streams this simulator produces
// (most inserts land within seconds of the clock, a long sparse tail —
// the pre-scheduled workload submissions — stretches hours ahead).
//
// The current "year" [yearStart, yearEnd) is split into len(buckets)
// equal-width buckets; each bucket holds its events sorted by the total
// order (time, seq), so draining the buckets in index order pops the
// global minimum. Events at or beyond yearEnd live in the overflow
// rung, which is deliberately unsorted: far-future pushes are O(1)
// appends and far-future cancels are O(1) swap-deletes, instead of the
// O(n) shifting a sorted rung pays on the bimodal time distributions
// the simulator produces. When the in-year buckets run dry, one linear
// scan of the rung finds the minimum, the year re-anchors there, and
// the events that now fall inside it migrate into the buckets (O(1)
// swap-fill per migrated event). Both structures retain their backing
// arrays, so the steady state allocates nothing.
//
// Ordering is a total order (seq is unique and ties on time break FIFO
// by scheduling sequence). Every in-year event is earlier than
// yearEnd, every rung event is at or beyond it, and the rung is only
// consulted when the year is empty — so the pop sequence, and with it
// every simulation result, is byte-identical to a (time, seq)
// min-heap's regardless of bucket layout, rung order, width retuning
// or resizes. The equivalence property tests in calqueue_test.go pin
// exactly that against a reference heap.
//
// Width self-tunes to the event flow: each year switch re-derives the
// bucket width from the pop rate the previous year observed (amortised
// O(1) per event), so the dense near-now traffic spreads across
// buckets at the target occupancy while the sparse far tail waits in
// the rung. Insert and pop are amortised O(1): an insert is a
// tail-biased sorted placement into one small bucket (or a rung
// append), a pop advances a cursor.
const (
	bucketNone     int32 = -1 // not queued
	bucketOverflow int32 = -2 // in the overflow rung

	// minBuckets is the initial and minimum bucket count; maxBuckets
	// caps the doubling so a pathological population cannot ask for
	// unbounded bucket arrays.
	minBuckets = 64
	maxBuckets = 1 << 16

	// occupancy is the targeted events-per-bucket of the width tuner:
	// wide enough that empty-bucket skips stay rare, narrow enough that
	// in-bucket sorted inserts stay short.
	occupancy = 2.0

	// retuneMinPops is the minimum number of pops a year must have seen
	// before its observed event rate is trusted to retune the width.
	retuneMinPops = 32

	// seedCap is the initial capacity every bucket is born with, diced
	// out of one flat allocation: at the target occupancy a bucket
	// rarely outgrows it, so the first visit to a bucket does not
	// allocate and the steady state stays allocation-free. A bucket
	// that does outgrow it reallocates once and keeps the larger
	// backing from then on.
	seedCap = 4
)

// calQueue is the engine's event queue. The zero value is an empty
// queue; the bucket array is materialised on first use.
type calQueue struct {
	yearStart float64
	yearEnd   float64
	width     float64
	invWidth  float64

	// all is the full grown bucket storage; buckets is the active
	// prefix (the current year). Shrinking is a re-slice, growing
	// extends all — either way bucket backing arrays are retained.
	all     [][]*Event
	buckets [][]*Event

	// cur is the bucket being drained; buckets before it are empty.
	// cursor is the consumed prefix of buckets[cur] (popped slots are
	// nilled and reclaimed when the bucket drains or compacts).
	cur    int
	cursor int
	inYear int

	// overflow is the unsorted far-future rung; an event's pos is its
	// index so cancel can swap-delete in O(1).
	overflow []*Event

	// pops counts events popped since the last year switch; lastPop is
	// the time of the most recent pop. Together they estimate the mean
	// event spacing the width tuner targets.
	pops    int
	lastPop float64
}

// eventBefore is the queue's total order: time, FIFO tie-break on
// scheduling sequence.
func eventBefore(a, b *Event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// pending returns the number of live queued events.
func (q *calQueue) pending() int { return q.inYear + len(q.overflow) }

// bucketOf maps a time to its bucket index, clamped to the active
// range. Clamping keeps the cross-bucket ordering invariant: an event
// before the year anchors at the front of bucket 0, and float rounding
// at the top edge stays inside the last bucket.
//
//koalalint:hotpath
func (q *calQueue) bucketOf(t float64) int {
	d := (t - q.yearStart) * q.invWidth
	if !(d > 0) { // also catches NaN products of infinite anchors
		return 0
	}
	b := int(d)
	if b >= len(q.buckets) {
		b = len(q.buckets) - 1
	}
	return b
}

// push inserts ev (time and seq already set) into the queue.
//
//koalalint:hotpath
func (q *calQueue) push(ev *Event) {
	if q.buckets == nil {
		q.init()
	}
	if ev.time >= q.yearEnd {
		// Far future: O(1) append to the unsorted rung.
		ev.bucket, ev.pos = bucketOverflow, int32(len(q.overflow))
		//koalalint:alloc amortized: the overflow rung retains its capacity across events
		q.overflow = append(q.overflow, ev)
		q.check("pushOverflow")
		return
	}
	b := q.bucketOf(ev.time)
	if b < q.cur {
		// The event lands in a bucket the scan already passed — possible
		// when the clock (or a horizon) sits behind the queue head. Passed
		// buckets are empty, so re-open it as the current bucket; the old
		// current bucket keeps its sorted remainder after compaction.
		q.compactCur()
		q.cur, q.cursor = b, 0
	}
	q.bucketInsert(b, ev)
	q.inYear++
	if q.inYear > 2*len(q.buckets) && len(q.buckets) < maxBuckets {
		q.grow()
	}
	q.check("push")
}

// init materialises the bucket array on first use (the Engine zero
// value is ready to use, so this cannot live in a constructor).
func (q *calQueue) init() {
	q.all = make([][]*Event, minBuckets)
	seedBuckets(q.all)
	q.buckets = q.all
	q.width = 1
	q.invWidth = 1
	q.yearStart = 0
	q.yearEnd = float64(minBuckets)
}

// seedBuckets dices one flat allocation into empty seedCap-capacity
// slices for every bucket slot, so first touches do not allocate.
func seedBuckets(bs [][]*Event) {
	flat := make([]*Event, len(bs)*seedCap)
	for i := range bs {
		bs[i] = flat[i*seedCap : i*seedCap : (i+1)*seedCap]
	}
}

// bucketInsert places ev at its sorted position in bucket b. The scan
// starts at the tail: event streams are mostly monotonic, so the common
// case is zero or one comparison and no shifting.
//
//koalalint:hotpath
func (q *calQueue) bucketInsert(b int, ev *Event) {
	s := q.buckets[b]
	lo := 0
	if b == q.cur {
		lo = q.cursor
	}
	i := len(s)
	for i > lo && eventBefore(ev, s[i-1]) {
		i--
	}
	//koalalint:alloc amortized: bucket slices retain their capacity across events
	s = append(s, nil)
	for j := len(s) - 1; j > i; j-- {
		s[j] = s[j-1]
		s[j].pos = int32(j)
	}
	s[i] = ev
	ev.bucket, ev.pos = int32(b), int32(i)
	q.buckets[b] = s
}

// compactCur moves the unconsumed remainder of the current bucket to
// its front so the bucket is a plain sorted bucket again.
//
//koalalint:hotpath
func (q *calQueue) compactCur() {
	if q.cursor == 0 {
		return
	}
	s := q.buckets[q.cur]
	n := copy(s, s[q.cursor:])
	for i := 0; i < n; i++ {
		s[i].pos = int32(i)
	}
	for i := n; i < len(s); i++ {
		s[i] = nil
	}
	q.buckets[q.cur] = s[:n]
	q.cursor = 0
}

// head returns the earliest queued event without consuming it, or nil
// when the queue is empty. It advances the bucket scan (and the year)
// as a side effect, which is idempotent and preserves all invariants.
//
//koalalint:hotpath
func (q *calQueue) head() *Event {
	for {
		if q.inYear > 0 {
			s := q.buckets[q.cur]
			if q.cursor < len(s) {
				return s[q.cursor]
			}
			if len(s) > 0 {
				// Fully consumed: reclaim the slice for reuse.
				q.buckets[q.cur] = s[:0]
			}
			q.cursor = 0
			q.cur++
			continue
		}
		if len(q.overflow) == 0 {
			return nil
		}
		q.advanceYear()
	}
}

// popMin removes and returns the earliest event. The caller guarantees
// the queue is non-empty.
//
//koalalint:hotpath
func (q *calQueue) popMin() *Event {
	ev := q.head()
	s := q.buckets[q.cur]
	s[q.cursor] = nil
	q.cursor++
	if q.cursor == len(s) {
		q.buckets[q.cur] = s[:0]
		q.cursor = 0
	}
	q.inYear--
	ev.bucket = bucketNone
	q.pops++
	q.lastPop = ev.time
	q.check("popMin")
	return ev
}

// remove deletes a queued event in place (eager cancel): an O(1)
// swap-delete from the unsorted rung, or a shift-delete preserving the
// sorted order of its bucket.
//
//koalalint:hotpath
func (q *calQueue) remove(ev *Event) {
	p := int(ev.pos)
	if ev.bucket == bucketOverflow {
		s := q.overflow
		last := len(s) - 1
		if p != last {
			s[p] = s[last]
			s[p].pos = int32(p)
		}
		s[last] = nil
		q.overflow = s[:last]
	} else {
		b := int(ev.bucket)
		s := q.buckets[b]
		for i := p; i < len(s)-1; i++ {
			s[i] = s[i+1]
			s[i].pos = int32(i)
		}
		s[len(s)-1] = nil
		q.buckets[b] = s[:len(s)-1]
		q.inYear--
	}
	ev.bucket = bucketNone
	q.check("remove")
}

// grow doubles the bucket count, extending the year in place: no
// in-year event moves, and the rung events that now fall inside the
// longer year migrate into the new buckets (keeping the invariant that
// every rung event is at or beyond yearEnd).
func (q *calQueue) grow() {
	n := 2 * len(q.buckets)
	if n > len(q.all) {
		//koalalint:alloc amortized: bucket storage doubles, carried across years
		grown := make([][]*Event, n)
		copy(grown, q.all)
		seedBuckets(grown[len(q.all):])
		q.all = grown
	}
	q.buckets = q.all[:n]
	q.yearEnd = q.yearStart + float64(n)*q.width
	q.migrate()
}

// migrate moves every rung event that falls inside the current year
// into its bucket, swap-filling the rung so each migrated event costs
// O(1). The rung is unsorted, so bucketInsert places each event at its
// sorted in-bucket position.
func (q *calQueue) migrate() {
	s := q.overflow
	for i := 0; i < len(s); {
		ev := s[i]
		if ev.time >= q.yearEnd {
			i++
			continue
		}
		q.bucketInsert(q.bucketOf(ev.time), ev)
		q.inYear++
		last := len(s) - 1
		if i != last {
			s[i] = s[last]
			s[i].pos = int32(i)
		}
		s[last] = nil
		s = s[:last]
	}
	q.overflow = s
}

// advanceYear re-anchors the (empty) year at the rung minimum, retunes
// the width to the event rate the previous year observed, and migrates
// the rung events that fall inside the new year. If the minimum sits at
// an infinite time the migration test (time < yearEnd) can never admit
// it against an infinite yearEnd, so the minimum event is force-moved
// into bucket 0 — ordering holds because everything else is no earlier.
func (q *calQueue) advanceYear() {
	// The current bucket can be left holding only its consumed-nil
	// prefix when the year's last event is canceled rather than popped
	// (remove truncates but only popMin reclaims). Reclaim it before
	// the cursor resets so the new year starts from clean buckets.
	if q.cur < len(q.buckets) {
		if s := q.buckets[q.cur]; len(s) > 0 {
			q.buckets[q.cur] = s[:0]
		}
	}
	min := q.overflow[0]
	for _, ev := range q.overflow[1:] {
		if eventBefore(ev, min) {
			min = ev
		}
	}
	q.retune()
	q.yearStart = min.time
	q.yearEnd = min.time + float64(len(q.buckets))*q.width
	q.cur, q.cursor = 0, 0
	q.pops = 0
	if math.IsInf(min.time, 1) {
		q.remove(min)
		q.bucketInsert(0, min)
		q.inYear++
		return
	}
	q.migrate()
	q.check("advanceYear")
}

// retune re-derives the bucket width from the event rate the previous
// year observed: width = occupancy × mean pop spacing, so the incoming
// dense flow spreads across buckets at the target occupancy. The
// sparse far tail never skews the estimate — it waits in the rung and
// only enters a year whose width the near-now traffic chose. Only
// called between years, when the buckets are empty, so the change
// moves no event.
func (q *calQueue) retune() {
	if q.pops < retuneMinPops || !(q.lastPop > q.yearStart) {
		return
	}
	w := occupancy * (q.lastPop - q.yearStart) / float64(q.pops)
	if w < 1e-9 {
		w = 1e-9
	}
	if w > 1e12 {
		w = 1e12
	}
	q.width = w
	q.invWidth = 1 / w
}
