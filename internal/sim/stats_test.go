package sim

import (
	"testing"

	"repro/internal/obs"
)

// countingStats is a minimal Stats implementation for flush-accounting.
type countingStats struct {
	scheduled, fired, canceled uint64
	peak                       int
	now                        float64
	flushes                    int
}

func (c *countingStats) EngineTotals(scheduled, fired, canceled uint64, pendingPeak int, now float64) {
	c.scheduled += scheduled
	c.fired += fired
	c.canceled += canceled
	if pendingPeak > c.peak {
		c.peak = pendingPeak
	}
	c.now = now
	c.flushes++
}

func TestStatsFlushObservesLifecycle(t *testing.T) {
	e := New()
	st := &countingStats{}
	e.SetStats(st)
	e.At(5, nop)
	ev := e.At(7, nop)
	ev.Cancel()
	e.Run()
	if st.scheduled != 2 || st.fired != 1 || st.canceled != 1 {
		t.Fatalf("scheduled=%d fired=%d canceled=%d, want 2/1/1",
			st.scheduled, st.fired, st.canceled)
	}
	if st.peak != 2 {
		t.Fatalf("peak = %d, want 2", st.peak)
	}
	if st.now != 5 {
		t.Fatalf("now = %g, want 5", st.now)
	}
}

// TestStatsFlushReportsDeltas pins that repeated Run/RunUntil calls do
// not double-count: each flush carries only the events since the last.
func TestStatsFlushReportsDeltas(t *testing.T) {
	e := New()
	st := &countingStats{}
	e.SetStats(st)
	e.At(1, nop)
	e.At(10, nop)
	e.RunUntil(5)
	if st.flushes != 1 || st.scheduled != 2 || st.fired != 1 {
		t.Fatalf("after first stretch: flushes=%d scheduled=%d fired=%d, want 1/2/1",
			st.flushes, st.scheduled, st.fired)
	}
	e.Run()
	if st.flushes != 2 || st.scheduled != 2 || st.fired != 2 {
		t.Fatalf("after second stretch: flushes=%d scheduled=%d fired=%d, want 2/2/2",
			st.flushes, st.scheduled, st.fired)
	}
}

func TestSetStatsNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetStats(nil) did not panic")
		}
	}()
	New().SetStats(nil)
}

// TestStatsKeepsHotPathAllocationFree pins that installing the real
// obs.SimStats collector does not reintroduce allocations on the
// schedule/fire/cancel hot path or in the flush.
func TestStatsKeepsHotPathAllocationFree(t *testing.T) {
	e := New()
	e.SetStats(obs.NewSimStats())
	for i := 0; i < 2*arenaChunk; i++ {
		e.At(e.Now(), nop)
	}
	e.Run()
	allocs := testing.AllocsPerRun(100, func() {
		e.At(e.Now()+1, nop)
		ev := e.At(e.Now()+2, nop)
		ev.Cancel()
		e.Run()
	})
	if allocs > 0 {
		t.Fatalf("schedule+fire+cancel+flush with stats allocates %.1f objects per cycle, want 0", allocs)
	}
}

// TestStatsDoNotChangeResults drives the same event program with and
// without the collector and requires identical fire ordering: the
// collector is pure observation.
func TestStatsDoNotChangeResults(t *testing.T) {
	run := func(withStats bool) []int {
		e := New()
		if withStats {
			e.SetStats(obs.NewSimStats())
		}
		var order []int
		for i := 0; i < 50; i++ {
			i := i
			e.At(float64((i*7)%13), func() { order = append(order, i) })
		}
		e.Run()
		return order
	}
	plain, hooked := run(false), run(true)
	if len(plain) != len(hooked) {
		t.Fatalf("fired %d events with stats, %d without", len(hooked), len(plain))
	}
	for i := range plain {
		if plain[i] != hooked[i] {
			t.Fatalf("fire order diverges at %d: %d vs %d", i, plain[i], hooked[i])
		}
	}
}
