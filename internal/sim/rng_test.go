package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at step %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds in 100 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %g, want ≈0.5", mean)
	}
}

func TestIntnRangeAndCoverage(t *testing.T) {
	r := NewRNG(13)
	seen := make([]int, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v]++
	}
	for v, c := range seen {
		if c == 0 {
			t.Fatalf("value %d never drawn in 10000 tries", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	r := NewRNG(1)
	for _, n := range []int{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			r.Intn(n)
		}()
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(17)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64() = %g negative", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("ExpFloat64 mean = %g, want ≈1", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(19)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %g", frac)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(23)
	child := r.Split()
	// Parent and child should not produce identical next values repeatedly.
	same := 0
	for i := 0; i < 64; i++ {
		if r.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("parent/child streams collided %d times", same)
	}
}

// Property: Perm always returns a permutation of [0,n).
func TestPropertyPermIsPermutation(t *testing.T) {
	r := NewRNG(29)
	f := func(nRaw uint8) bool {
		n := int(nRaw % 64)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
