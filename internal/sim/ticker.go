package sim

// Ticker invokes a callback at a fixed virtual-time period until stopped.
// It models the periodic polling loops of the paper (the KOALA scheduler
// polling the information service, §V-B) without each component having to
// reimplement reschedule-on-fire logic.
//
// A running ticker costs no allocations: the reschedule closure is built
// once and the Events it schedules come from the Engine's pool.
type Ticker struct {
	engine  *Engine
	period  float64
	fn      func()
	tick    func()
	next    *Event
	stopped bool
}

// NewTicker starts a ticker firing fn every period seconds, with the first
// fire one period from now. period must be positive.
func NewTicker(e *Engine, period float64, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.tick = func() {
		// The handle now refers to the event being fired; drop it before
		// running the callback so a Stop from inside fn cannot cancel a
		// recycled (and by then unrelated) event.
		t.next = nil
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.next = t.engine.After(t.period, t.tick)
		}
	}
	t.next = t.engine.After(t.period, t.tick)
	return t
}

// Stop halts the ticker; the pending fire is canceled. Stop is idempotent
// and safe to call from inside the ticker's own callback.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	if t.next != nil {
		t.next.Cancel()
		t.next = nil
	}
}

// Stopped reports whether Stop has been called.
func (t *Ticker) Stopped() bool { return t.stopped }
