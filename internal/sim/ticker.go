package sim

// Ticker invokes a callback at a fixed virtual-time period until stopped.
// It models the periodic polling loops of the paper (the KOALA scheduler
// polling the information service, §V-B) without each component having to
// reimplement reschedule-on-fire logic.
type Ticker struct {
	engine  *Engine
	period  float64
	fn      func()
	next    *Event
	stopped bool
}

// NewTicker starts a ticker firing fn every period seconds, with the first
// fire one period from now. period must be positive.
func NewTicker(e *Engine, period float64, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	t.next = t.engine.After(t.period, func() {
		if t.stopped {
			return
		}
		t.fn()
		if !t.stopped {
			t.schedule()
		}
	})
}

// Stop halts the ticker; the pending fire is canceled.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.next != nil {
		t.next.Cancel()
	}
}

// Stopped reports whether Stop has been called.
func (t *Ticker) Stopped() bool { return t.stopped }
