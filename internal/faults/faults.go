// Package faults is the repo's fault-injection harness: a scripted
// schedule of transport faults applied to HTTP round trips (in-process,
// for Go tests) or raw TCP connections (the proxy, for CI chaos
// smokes). The point is falsifiability — the backend's resilience claim
// is "every sweep summary stays byte-identical to the clean local run
// under any fault schedule", and this package is what manufactures the
// "any fault schedule" part deterministically.
//
// A Schedule is an ordered script: step i applies to the i-th request
// (or connection); once the script is exhausted every later request
// passes through untouched. There is no randomness anywhere — the same
// schedule against the same traffic produces the same faults, so a
// failing chaos run reproduces.
//
// The fault vocabulary, shared by the RoundTripper and the Proxy:
//
//	ok           pass the request through untouched
//	drop         refuse it (connection refused / immediate close)
//	delay=DUR    pass through after sleeping DUR
//	reset@N      forward, then reset the connection after N response bytes
//	truncate@N   forward, then end the response cleanly after N bytes
//	            (a torn NDJSON stream: partial line, missing summary)
//	CODE         answer CODE (5xx) without contacting the target
//
// Steps may carry a repeat count: "503*3" is a three-request 5xx burst.
package faults

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Kind enumerates the fault vocabulary.
type Kind string

const (
	// Pass lets the request through untouched.
	Pass Kind = "ok"
	// Drop refuses the request: the RoundTripper synthesizes a
	// connection-refused error, the proxy closes the accepted
	// connection without contacting the target.
	Drop Kind = "drop"
	// Delay passes the request through after sleeping Fault.Delay.
	Delay Kind = "delay"
	// Reset forwards the request, then severs the response with a
	// connection reset after Fault.After bytes of body.
	Reset Kind = "reset"
	// Truncate forwards the request, then ends the response body
	// cleanly (EOF, no error) after Fault.After bytes — the torn-NDJSON
	// case: a partial JSON line or a stream that never reaches its
	// terminal summary.
	Truncate Kind = "truncate"
	// Status answers Fault.Code (a 5xx) without contacting the target.
	Status Kind = "status"
)

// Fault is one scripted step.
type Fault struct {
	Kind  Kind
	After int           // response bytes before Reset/Truncate fire
	Delay time.Duration // sleep for Delay faults
	Code  int           // HTTP status for Status faults
}

func (f Fault) String() string {
	switch f.Kind {
	case Delay:
		return fmt.Sprintf("delay=%s", f.Delay)
	case Reset:
		return fmt.Sprintf("reset@%d", f.After)
	case Truncate:
		return fmt.Sprintf("truncate@%d", f.After)
	case Status:
		return strconv.Itoa(f.Code)
	default:
		return string(f.Kind)
	}
}

// Schedule hands out scripted faults in order, one per request. It is
// safe for concurrent use; a nil *Schedule always passes through.
type Schedule struct {
	mu     sync.Mutex
	faults []Fault
	next   int
	served int
}

// NewSchedule builds a schedule from explicit steps.
func NewSchedule(faults ...Fault) *Schedule {
	return &Schedule{faults: faults}
}

// ParseSchedule parses the comma-separated script grammar documented on
// the package ("ok,reset@2048,503*2,delay=250ms"). An empty string is a
// valid all-pass schedule.
func ParseSchedule(s string) (*Schedule, error) {
	sched := &Schedule{}
	s = strings.TrimSpace(s)
	if s == "" {
		return sched, nil
	}
	for _, raw := range strings.Split(s, ",") {
		step := strings.TrimSpace(raw)
		if step == "" {
			return nil, fmt.Errorf("faults: empty step in schedule %q", s)
		}
		count := 1
		if i := strings.LastIndex(step, "*"); i >= 0 {
			n, err := strconv.Atoi(step[i+1:])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("faults: bad repeat count in step %q", step)
			}
			count = n
			step = step[:i]
		}
		f, err := parseStep(step)
		if err != nil {
			return nil, err
		}
		for i := 0; i < count; i++ {
			sched.faults = append(sched.faults, f)
		}
	}
	return sched, nil
}

func parseStep(step string) (Fault, error) {
	switch {
	case step == string(Pass):
		return Fault{Kind: Pass}, nil
	case step == string(Drop):
		return Fault{Kind: Drop}, nil
	case strings.HasPrefix(step, "delay="):
		d, err := time.ParseDuration(step[len("delay="):])
		if err != nil || d < 0 {
			return Fault{}, fmt.Errorf("faults: bad delay in step %q", step)
		}
		return Fault{Kind: Delay, Delay: d}, nil
	case strings.HasPrefix(step, "reset@"):
		n, err := strconv.Atoi(step[len("reset@"):])
		if err != nil || n < 0 {
			return Fault{}, fmt.Errorf("faults: bad byte offset in step %q", step)
		}
		return Fault{Kind: Reset, After: n}, nil
	case strings.HasPrefix(step, "truncate@"):
		n, err := strconv.Atoi(step[len("truncate@"):])
		if err != nil || n < 0 {
			return Fault{}, fmt.Errorf("faults: bad byte offset in step %q", step)
		}
		return Fault{Kind: Truncate, After: n}, nil
	default:
		code, err := strconv.Atoi(step)
		if err != nil || code < 500 || code > 599 {
			return Fault{}, fmt.Errorf("faults: unknown step %q (want ok, drop, delay=DUR, reset@N, truncate@N or a 5xx code)", step)
		}
		return Fault{Kind: Status, Code: code}, nil
	}
}

// Next returns the fault for the next request. Past the end of the
// script (or on a nil schedule) it returns a Pass fault forever.
func (s *Schedule) Next() Fault {
	if s == nil {
		return Fault{Kind: Pass}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.served++
	if s.next >= len(s.faults) {
		return Fault{Kind: Pass}
	}
	f := s.faults[s.next]
	s.next++
	return f
}

// Served reports how many requests have consumed a step (including
// pass-throughs past the script's end).
func (s *Schedule) Served() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

// Remaining reports how many scripted steps have not fired yet — a test
// that meant to exercise every fault can assert it reaches zero.
func (s *Schedule) Remaining() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.faults) - s.next
}
