package faults_test

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/faults"
)

// TestParseSchedule pins the script grammar, repeat counts included.
func TestParseSchedule(t *testing.T) {
	s, err := faults.ParseSchedule("ok,drop*2,delay=250ms,reset@2048,truncate@512,503*2")
	if err != nil {
		t.Fatal(err)
	}
	want := []faults.Fault{
		{Kind: faults.Pass},
		{Kind: faults.Drop}, {Kind: faults.Drop},
		{Kind: faults.Delay, Delay: 250 * time.Millisecond},
		{Kind: faults.Reset, After: 2048},
		{Kind: faults.Truncate, After: 512},
		{Kind: faults.Status, Code: 503}, {Kind: faults.Status, Code: 503},
	}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("step %d = %+v, want %+v", i, got, w)
		}
	}
	// Exhausted schedules pass everything through.
	if got := s.Next(); got.Kind != faults.Pass {
		t.Fatalf("post-script step = %+v, want pass", got)
	}
	if s.Remaining() != 0 {
		t.Fatalf("remaining = %d, want 0", s.Remaining())
	}

	for _, bad := range []string{
		"nope", "reset@", "reset@-1", "truncate@x", "delay=", "delay=-1s",
		"404", "ok,", "503*0", "503*x",
	} {
		if _, err := faults.ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) accepted a malformed schedule", bad)
		}
	}
	// Empty scripts and nil schedules are all-pass.
	empty, err := faults.ParseSchedule("")
	if err != nil {
		t.Fatal(err)
	}
	if got := empty.Next(); got.Kind != faults.Pass {
		t.Fatalf("empty schedule step = %+v", got)
	}
	var nilSched *faults.Schedule
	if got := nilSched.Next(); got.Kind != faults.Pass {
		t.Fatalf("nil schedule step = %+v", got)
	}
}

// TestRoundTripperFaults drives every fault kind through a real server
// and asserts the client-visible error shape matches what a genuinely
// flaky peer produces.
func TestRoundTripperFaults(t *testing.T) {
	payload := strings.Repeat("x", 1024)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, payload)
	}))
	defer ts.Close()

	sched := faults.NewSchedule(
		faults.Fault{Kind: faults.Drop},
		faults.Fault{Kind: faults.Status, Code: 503},
		faults.Fault{Kind: faults.Reset, After: 100},
		faults.Fault{Kind: faults.Truncate, After: 100},
		faults.Fault{Kind: faults.Pass},
	)
	client := &http.Client{Transport: &faults.RoundTripper{Schedule: sched}}

	// Drop: connection refused at dial.
	_, err := client.Get(ts.URL)
	if err == nil || !errors.Is(err, syscall.ECONNREFUSED) {
		t.Fatalf("drop fault error = %v, want ECONNREFUSED", err)
	}

	// 5xx: a parseable response, no transport error.
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("status fault code = %d, want 503", resp.StatusCode)
	}

	// Reset: body read dies with ECONNRESET after the budget.
	resp, err = client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("reset fault read error = %v, want ECONNRESET", err)
	}
	if len(body) != 100 {
		t.Fatalf("reset fault delivered %d bytes, want 100", len(body))
	}

	// Truncate: clean EOF after the budget — no error at all.
	resp, err = client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("truncate fault read error = %v, want clean EOF", err)
	}
	if len(body) != 100 {
		t.Fatalf("truncate fault delivered %d bytes, want 100", len(body))
	}

	// Pass: the full payload.
	resp, err = client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != payload {
		t.Fatalf("pass-through delivered %d bytes, want %d", len(body), len(payload))
	}
}

// TestRoundTripperMatch: non-matching requests bypass the schedule
// entirely — probes sharing the client must not eat dispatch faults.
func TestRoundTripperMatch(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	defer ts.Close()
	sched := faults.NewSchedule(faults.Fault{Kind: faults.Drop})
	client := &http.Client{Transport: &faults.RoundTripper{
		Schedule: sched,
		Match:    func(r *http.Request) bool { return r.URL.Path == "/faulted" },
	}}
	resp, err := client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("non-matching request faulted: %v", err)
	}
	resp.Body.Close()
	if sched.Served() != 0 {
		t.Fatalf("non-matching request consumed a schedule step")
	}
	if _, err := client.Get(ts.URL + "/faulted"); err == nil {
		t.Fatal("matching request dodged the scripted drop")
	}
}

// TestProxyFaults runs the TCP proxy in front of a real HTTP server:
// drop, 5xx, truncate and pass behave per-connection as scripted.
func TestProxyFaults(t *testing.T) {
	payload := strings.Repeat("y", 2048)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, payload)
	}))
	defer ts.Close()
	target := strings.TrimPrefix(ts.URL, "http://")

	sched, err := faults.ParseSchedule("drop,503,truncate@64,ok")
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := faults.NewProxy("127.0.0.1:0", target, sched)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// One connection per request: keep-alive would reuse the faulted
	// connection and desync the per-connection script.
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	base := "http://" + proxy.Addr()

	if _, err := client.Get(base); err == nil {
		t.Fatal("dropped connection produced a response")
	}

	resp, err := client.Get(base)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("proxy 5xx fault code = %d, want 503", resp.StatusCode)
	}

	// Truncated connection: the response dies mid-body (the proxy cut
	// it before the server finished writing).
	resp, err = client.Get(base)
	if err == nil {
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil && len(body) == len(payload) {
			t.Fatal("truncated connection delivered the full payload")
		}
	}

	resp, err = client.Get(base)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || string(body) != payload {
		t.Fatalf("pass-through connection failed: err=%v bytes=%d", err, len(body))
	}
	if proxy.Accepted() < 4 {
		t.Fatalf("accepted = %d, want >= 4", proxy.Accepted())
	}
}

// TestProxyReset pins the RST path at the raw TCP level: a reset@N
// connection delivers N bytes then a read error (not a clean EOF).
func TestProxyReset(t *testing.T) {
	// A raw TCP server that waits for one request byte (so the client's
	// dial settles before any fault can fire), writes 1 KiB, then holds
	// the connection open — the only way the client's read ends is the
	// proxy's cut.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	hold := make(chan struct{})
	defer close(hold)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				one := make([]byte, 1)
				if _, err := io.ReadFull(c, one); err != nil {
					return
				}
				c.Write(make([]byte, 1024))
				<-hold
			}(conn)
		}
	}()

	sched := faults.NewSchedule(faults.Fault{Kind: faults.Reset, After: 256})
	proxy, err := faults.NewProxy("127.0.0.1:0", ln.Addr().String(), sched)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	conn, err := net.Dial("tcp", proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{'!'}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	got, err := io.ReadAll(conn)
	if err == nil && len(got) > 256 {
		t.Fatalf("reset connection delivered %d bytes cleanly, want cut at 256", len(got))
	}
	if len(got) > 256 {
		t.Fatalf("reset connection delivered %d bytes, want <= 256", len(got))
	}
}
