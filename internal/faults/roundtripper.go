package faults

import (
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// RoundTripper injects scripted faults into HTTP round trips without a
// network in the way: wrap a real transport with it and hand the client
// to the code under test. Faults fire exactly as a flaky worker would
// produce them — connection refused at dial, a 5xx before the handler,
// a reset or clean truncation partway through the response body — so
// the caller's error-classification and retry paths see the same error
// shapes they meet in production.
type RoundTripper struct {
	// Inner performs non-faulted (and post-delay) round trips
	// (default http.DefaultTransport).
	Inner http.RoundTripper
	// Schedule scripts the faults, one step per matched request. Nil
	// passes everything through.
	Schedule *Schedule
	// Match restricts fault injection to matching requests (nil =
	// every request). Non-matching requests pass straight to Inner
	// without consuming a schedule step — so health probes sharing the
	// client do not eat the script meant for dispatches.
	Match func(*http.Request) bool
}

// errConnRefused mirrors a dial against a closed port.
var errConnRefused = &net.OpError{Op: "dial", Net: "tcp", Err: syscall.ECONNREFUSED}

// errConnReset mirrors a peer resetting an established connection.
var errConnReset = &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}

// RoundTrip implements http.RoundTripper.
func (rt *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	inner := rt.Inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	if rt.Match != nil && !rt.Match(req) {
		return inner.RoundTrip(req)
	}
	f := rt.Schedule.Next()
	switch f.Kind {
	case Drop:
		// The request never leaves the process: drain and close the
		// body as a real transport would, then refuse.
		if req.Body != nil {
			_, _ = io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		return nil, errConnRefused
	case Delay:
		select {
		case <-time.After(f.Delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return inner.RoundTrip(req)
	case Status:
		if req.Body != nil {
			_, _ = io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		return &http.Response{
			Status:     strconv.Itoa(f.Code) + " " + http.StatusText(f.Code),
			StatusCode: f.Code,
			Proto:      req.Proto, ProtoMajor: req.ProtoMajor, ProtoMinor: req.ProtoMinor,
			Header:  http.Header{"Content-Type": []string{"text/plain"}},
			Body:    io.NopCloser(strings.NewReader("injected fault: " + http.StatusText(f.Code))),
			Request: req,
		}, nil
	case Reset, Truncate:
		resp, err := inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &cutBody{inner: resp.Body, remaining: f.After, reset: f.Kind == Reset}
		return resp, nil
	default: // Pass
		return inner.RoundTrip(req)
	}
}

// cutBody delivers at most `remaining` bytes of the wrapped body, then
// either resets (a read error indistinguishable from a peer RST) or
// truncates (clean EOF mid-stream).
type cutBody struct {
	inner     io.ReadCloser
	remaining int
	reset     bool
}

func (b *cutBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		if b.reset {
			return 0, errConnReset
		}
		return 0, io.EOF
	}
	if len(p) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.inner.Read(p)
	b.remaining -= n
	if err != nil {
		return n, err
	}
	if b.remaining <= 0 && b.reset {
		return n, errConnReset
	}
	return n, nil
}

func (b *cutBody) Close() error { return b.inner.Close() }
