package faults

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy is a scripted-fault TCP proxy: it accepts connections, applies
// one schedule step per connection, and otherwise pipes bytes to the
// target untouched. It is the out-of-process face of the harness — the
// chaos CI smoke puts one in front of each worker koalad so a
// coordinator built with zero test hooks still meets drops, resets,
// delays and 5xx bursts on real sockets.
//
// Fault semantics at the connection level:
//
//	ok           pipe both directions until either side closes
//	drop         close the accepted connection without dialing the target
//	delay=DUR    sleep DUR before dialing the target, then pipe
//	reset@N      pipe, then hard-reset the client (RST, via SO_LINGER 0)
//	             after N target->client bytes
//	truncate@N   pipe, then close the client cleanly after N
//	             target->client bytes
//	CODE         write a raw HTTP CODE response and close, without
//	             dialing the target (valid for HTTP traffic only)
type Proxy struct {
	target   string
	schedule *Schedule

	ln       net.Listener
	wg       sync.WaitGroup
	closed   atomic.Bool
	accepted atomic.Int64
}

// NewProxy starts a proxy on listenAddr ("127.0.0.1:0" for an ephemeral
// port) forwarding to target ("host:port"). Close releases it.
func NewProxy(listenAddr, target string, schedule *Schedule) (*Proxy, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("faults: proxy listen %s: %w", listenAddr, err)
	}
	p := &Proxy{target: target, schedule: schedule, ln: ln}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Accepted reports how many connections the proxy has accepted.
func (p *Proxy) Accepted() int64 { return p.accepted.Load() }

// Close stops accepting and waits for in-flight connections to finish
// piping (they end when either endpoint closes).
func (p *Proxy) Close() error {
	p.closed.Store(true)
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.accepted.Add(1)
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.serve(conn)
		}()
	}
}

func (p *Proxy) serve(client net.Conn) {
	defer client.Close()
	f := p.schedule.Next()
	switch f.Kind {
	case Drop:
		return
	case Status:
		// A raw, well-formed HTTP response so an http.Client parses a
		// real 5xx instead of a protocol error.
		fmt.Fprintf(client, "HTTP/1.1 %d %s\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
			f.Code, http.StatusText(f.Code))
		return
	case Delay:
		time.Sleep(f.Delay)
	}

	upstream, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		return // target down: the client sees its connection close
	}
	defer upstream.Close()

	done := make(chan struct{}, 2)
	// client -> target: always unrestricted (requests are small; the
	// interesting faults are on the response path).
	go func() {
		_, _ = io.Copy(upstream, client)
		if tc, ok := upstream.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	// target -> client, budgeted when the fault cuts the stream.
	go func() {
		switch f.Kind {
		case Reset:
			_, _ = io.CopyN(client, upstream, int64(f.After))
			if tc, ok := client.(*net.TCPConn); ok {
				_ = tc.SetLinger(0) // close sends RST, not FIN
			}
			client.Close()
		case Truncate:
			_, _ = io.CopyN(client, upstream, int64(f.After))
			client.Close()
		default:
			_, _ = io.Copy(client, upstream)
			if tc, ok := client.(*net.TCPConn); ok {
				_ = tc.CloseWrite()
			}
		}
		done <- struct{}{}
	}()
	<-done
	<-done
}
