package metrics

import (
	"bytes"
	"encoding/csv"
	"math"
	"strconv"
	"testing"

	"repro/internal/stats"
)

func sampleRecords() []JobRecord {
	var recs []JobRecord
	for i := 0; i < 40; i++ {
		recs = append(recs, JobRecord{
			ID:            "j" + strconv.Itoa(i),
			App:           "FT",
			Malleable:     i%2 == 0,
			ExecutionTime: 100 + float64(i)*7,
			ResponseTime:  150 + float64(i)*9,
			WaitTime:      float64(i) * 2,
			AvgProcs:      2 + float64(i%5),
			MaxProcs:      2 + i%7,
		})
	}
	return recs
}

func TestAggregateMatchesBatchSelectors(t *testing.T) {
	recs := sampleRecords()
	a := NewAggregate()
	a.ObserveAll(recs)

	if a.Jobs != len(recs) {
		t.Fatalf("Jobs = %d, want %d", a.Jobs, len(recs))
	}
	mall := OnlyMalleable(recs)
	if a.Malleable != len(mall) {
		t.Fatalf("Malleable = %d, want %d", a.Malleable, len(mall))
	}
	// A serial feed is bit-identical to the batch mean over the same
	// order (stats.Online accumulates the sum the same way).
	if got, want := a.MeanExecution(), stats.Mean(ExecTimesOf(recs)); got != want {
		t.Errorf("MeanExecution = %v, want %v", got, want)
	}
	if got, want := a.MeanResponse(), stats.Mean(ResponseTimesOf(recs)); got != want {
		t.Errorf("MeanResponse = %v, want %v", got, want)
	}
	if got, want := a.AvgProcs.Online.Mean(), stats.Mean(AvgProcsOf(mall)); got != want {
		t.Errorf("AvgProcs mean = %v, want %v", got, want)
	}
	if got, want := a.MaxProcs.Online.Max(), stats.Max(MaxProcsOf(mall)); got != want {
		t.Errorf("MaxProcs max = %v, want %v", got, want)
	}
}

func TestAggregateMergeMatchesSerial(t *testing.T) {
	recs := sampleRecords()
	serial := NewAggregate()
	serial.ObserveAll(recs)

	a, b := NewAggregate(), NewAggregate()
	a.ObserveAll(recs[:15])
	b.ObserveAll(recs[15:])
	a.Merge(b)

	if a.Jobs != serial.Jobs || a.Malleable != serial.Malleable {
		t.Fatalf("merged counts %d/%d, serial %d/%d", a.Jobs, a.Malleable, serial.Jobs, serial.Malleable)
	}
	if a.Exec.Online.Sum() != serial.Exec.Online.Sum() {
		t.Errorf("merged exec sum %v, serial %v", a.Exec.Online.Sum(), serial.Exec.Online.Sum())
	}
	if math.Abs(a.Response.Online.Variance()-serial.Response.Online.Variance()) > 1e-9 {
		t.Errorf("merged response variance %v, serial %v", a.Response.Online.Variance(), serial.Response.Online.Variance())
	}
	if a.Exec.Sketch.Quantile(0.5) != serial.Exec.Sketch.Quantile(0.5) {
		t.Errorf("merged exec median %v, serial %v", a.Exec.Sketch.Quantile(0.5), serial.Exec.Sketch.Quantile(0.5))
	}
	// Merging a nil aggregate is a no-op.
	jobs := a.Jobs
	a.Merge(nil)
	if a.Jobs != jobs {
		t.Error("Merge(nil) changed the aggregate")
	}
}

// TestWriteCSVRoundTrip parses WriteCSV's output back and asserts that
// every row aligns with its header column and that floats use the
// fixed three-decimal format.
func TestWriteCSVRoundTrip(t *testing.T) {
	recs := []JobRecord{
		{
			ID: "wm-000", App: "FT", Malleable: true, Site: "VU",
			SubmitTime: 0, StartTime: 12.5, EndTime: 112.625,
			ExecutionTime: 100.125, ResponseTime: 112.625, WaitTime: 12.5,
			AvgProcs: 3.14159, MaxProcs: 8, InitProcs: 2,
		},
		{
			ID: "wm-001", App: "GADGET2", Malleable: false, Site: "Delft",
			SubmitTime: 120, StartTime: 130, EndTime: 730,
			ExecutionTime: 600, ResponseTime: 610, WaitTime: 10,
			AvgProcs: 2, MaxProcs: 2, InitProcs: 2,
		},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("output does not parse as CSV: %v", err)
	}
	if len(rows) != 1+len(recs) {
		t.Fatalf("rows = %d, want header + %d records", len(rows), len(recs))
	}
	header := rows[0]
	for i, row := range rows[1:] {
		if len(row) != len(header) {
			t.Fatalf("record %d has %d fields, header has %d", i, len(row), len(header))
		}
	}
	col := func(name string) int {
		for i, h := range header {
			if h == name {
				return i
			}
		}
		t.Fatalf("missing column %q in header %v", name, header)
		return -1
	}
	// Spot-check column alignment against the source records.
	if got := rows[1][col("id")]; got != "wm-000" {
		t.Errorf("id = %q", got)
	}
	if got := rows[1][col("malleable")]; got != "true" {
		t.Errorf("malleable = %q", got)
	}
	if got := rows[2][col("site")]; got != "Delft" {
		t.Errorf("site = %q", got)
	}
	// Floats are formatted with exactly three decimals; ints are bare.
	if got := rows[1][col("avg_procs")]; got != "3.142" {
		t.Errorf("avg_procs = %q, want %q", got, "3.142")
	}
	if got := rows[1][col("exec")]; got != "100.125" {
		t.Errorf("exec = %q, want %q", got, "100.125")
	}
	if got := rows[2][col("max_procs")]; got != "2" {
		t.Errorf("max_procs = %q, want %q", got, "2")
	}
	// Parsed numeric fields round-trip to the source values within the
	// three-decimal precision.
	resp, err := strconv.ParseFloat(rows[2][col("response")], 64)
	if err != nil {
		t.Fatalf("response does not parse: %v", err)
	}
	if math.Abs(resp-recs[1].ResponseTime) > 0.0005 {
		t.Errorf("response round-trip = %v, want %v", resp, recs[1].ResponseTime)
	}
}

// TestWriteCSVZeroRecords asserts the header is still written for an
// empty record set.
func TestWriteCSVZeroRecords(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want just the header", len(rows))
	}
	if rows[0][0] != "id" || len(rows[0]) != 13 {
		t.Fatalf("header = %v", rows[0])
	}
}
