// Package metrics collects everything the paper's figures report: per-job
// records (average/maximum processor counts over the execution, execution
// and response times — Figs. 7a–d and 8a–d), the platform utilisation over
// time (Figs. 7e, 8e), and exports to CSV.
package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/cluster"
	"repro/internal/koala"
	"repro/internal/sim"
	"repro/internal/stats"
)

// JobRecord captures one finished job's metrics.
type JobRecord struct {
	ID        string
	App       string
	Malleable bool
	Site      string

	SubmitTime float64
	StartTime  float64
	EndTime    float64

	// ExecutionTime is EndTime − StartTime (Figs. 7c, 8c).
	ExecutionTime float64
	// ResponseTime is EndTime − SubmitTime (Figs. 7d, 8d).
	ResponseTime float64
	// WaitTime is StartTime − SubmitTime.
	WaitTime float64

	// AvgProcs is the processor count averaged over the execution time
	// (Figs. 7a, 8a).
	AvgProcs float64
	// MaxProcs is the maximum processor count reached (Figs. 7b, 8b).
	MaxProcs int
	// InitProcs is the initial processor count.
	InitProcs int
}

// Collector hooks a scheduler and a grid and accumulates metrics as the
// simulation runs.
type Collector struct {
	engine *sim.Engine
	grid   *cluster.Multicluster

	records  []JobRecord
	rejected []string

	utilization *stats.TimeSeries
	sampler     *sim.Ticker
}

// NewCollector attaches a collector to the scheduler's lifecycle callbacks
// and samples grid utilisation every samplePeriod seconds.
func NewCollector(engine *sim.Engine, sched *koala.Scheduler, grid *cluster.Multicluster, samplePeriod float64) *Collector {
	c := &Collector{
		engine:      engine,
		grid:        grid,
		utilization: stats.NewTimeSeries(),
	}
	if samplePeriod <= 0 {
		samplePeriod = 10
	}
	c.utilization.Add(engine.Now(), float64(grid.TotalUsed()))
	c.sampler = sim.NewTicker(engine, samplePeriod, func() {
		c.utilization.Add(engine.Now(), float64(grid.TotalUsed()))
	})
	prevFinished := sched.OnJobFinished
	sched.OnJobFinished = func(j *koala.Job) {
		c.observe(j)
		if prevFinished != nil {
			prevFinished(j)
		}
	}
	prevRejected := sched.OnJobRejected
	sched.OnJobRejected = func(j *koala.Job) {
		c.rejected = append(c.rejected, j.Spec.ID)
		if prevRejected != nil {
			prevRejected(j)
		}
	}
	return c
}

// Stop halts utilisation sampling (end of experiment).
func (c *Collector) Stop() { c.sampler.Stop() }

// Reserve sizes the collector's buffers for an expected number of finished
// jobs and utilisation samples, so steady-state collection appends without
// regrowing.
func (c *Collector) Reserve(jobs, samples int) {
	if jobs > cap(c.records) {
		recs := make([]JobRecord, len(c.records), jobs)
		copy(recs, c.records)
		c.records = recs
	}
	c.utilization.Reserve(samples)
}

// observe turns a finished job into a record.
func (c *Collector) observe(j *koala.Job) {
	rec := JobRecord{
		ID:            j.Spec.ID,
		App:           j.Spec.Components[0].Profile.Name,
		Malleable:     j.Malleable(),
		SubmitTime:    j.SubmitTime(),
		StartTime:     j.StartTime(),
		EndTime:       j.EndTime(),
		ExecutionTime: j.EndTime() - j.StartTime(),
		ResponseTime:  j.EndTime() - j.SubmitTime(),
		WaitTime:      j.StartTime() - j.SubmitTime(),
		InitProcs:     j.Spec.Components[0].Size,
	}
	if s := j.Site(); s != nil {
		rec.Site = s.Name()
	}
	rec.AvgProcs, rec.MaxProcs = procStats(j)
	c.records = append(c.records, rec)
}

// procStats integrates the allocation history of the job's execution.
func procStats(j *koala.Job) (avg float64, maxP int) {
	var times []float64
	var procs []int
	switch {
	case j.MRunner() != nil && j.MRunner().Execution() != nil:
		times, procs = j.MRunner().Execution().History()
	case j.CoRunner() != nil && j.CoRunner().Execution() != nil:
		times, procs = j.CoRunner().Execution().History()
	case len(j.RigidRunners()) > 0 && j.RigidRunners()[0].Execution() != nil:
		times, procs = j.RigidRunners()[0].Execution().History()
	default:
		return 0, 0
	}
	if len(times) == 0 {
		return 0, 0
	}
	// Pauses are recorded as 0-processor steps but the processors stay
	// held, so for size statistics carry the previous positive value
	// through pauses (the final 0 marks the finish).
	weighted := 0.0
	span := 0.0
	lastPositive := 0
	for i := 0; i < len(times); i++ {
		p := procs[i]
		if p > 0 {
			lastPositive = p
			if p > maxP {
				maxP = p
			}
		}
		if i+1 < len(times) {
			dt := times[i+1] - times[i]
			use := p
			if use == 0 {
				use = lastPositive
			}
			weighted += float64(use) * dt
			span += dt
		}
	}
	if span <= 0 {
		return float64(maxP), maxP
	}
	return weighted / span, maxP
}

// Records returns all finished-job records.
func (c *Collector) Records() []JobRecord { return c.records }

// Rejected returns the IDs of rejected jobs.
func (c *Collector) Rejected() []string { return c.rejected }

// Utilization returns the sampled total-used-processors series.
func (c *Collector) Utilization() *stats.TimeSeries { return c.utilization }

// Field selectors for building CDFs out of records.

// AvgProcsOf extracts AvgProcs from records.
func AvgProcsOf(recs []JobRecord) []float64 {
	out := make([]float64, len(recs))
	for i, r := range recs {
		out[i] = r.AvgProcs
	}
	return out
}

// MaxProcsOf extracts MaxProcs from records.
func MaxProcsOf(recs []JobRecord) []float64 {
	out := make([]float64, len(recs))
	for i, r := range recs {
		out[i] = float64(r.MaxProcs)
	}
	return out
}

// ExecTimesOf extracts ExecutionTime from records.
func ExecTimesOf(recs []JobRecord) []float64 {
	out := make([]float64, len(recs))
	for i, r := range recs {
		out[i] = r.ExecutionTime
	}
	return out
}

// ResponseTimesOf extracts ResponseTime from records.
func ResponseTimesOf(recs []JobRecord) []float64 {
	out := make([]float64, len(recs))
	for i, r := range recs {
		out[i] = r.ResponseTime
	}
	return out
}

// OnlyMalleable filters records to malleable jobs.
func OnlyMalleable(recs []JobRecord) []JobRecord {
	var out []JobRecord
	for _, r := range recs {
		if r.Malleable {
			out = append(out, r)
		}
	}
	return out
}

// OnlyApp filters records to the named application.
func OnlyApp(recs []JobRecord, name string) []JobRecord {
	var out []JobRecord
	for _, r := range recs {
		if r.App == name {
			out = append(out, r)
		}
	}
	return out
}

// WriteCSV exports records as CSV.
func WriteCSV(w io.Writer, recs []JobRecord) error {
	cw := csv.NewWriter(w)
	header := []string{"id", "app", "malleable", "site", "submit", "start", "end", "exec", "response", "wait", "avg_procs", "max_procs", "init_procs"}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
	for _, r := range recs {
		row := []string{
			r.ID, r.App, fmt.Sprintf("%v", r.Malleable), r.Site,
			f(r.SubmitTime), f(r.StartTime), f(r.EndTime),
			f(r.ExecutionTime), f(r.ResponseTime), f(r.WaitTime),
			f(r.AvgProcs), strconv.Itoa(r.MaxProcs), strconv.Itoa(r.InitProcs),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
