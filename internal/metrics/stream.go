package metrics

import (
	"repro/internal/stats"
)

// Aggregate is the streaming counterpart of a pooled []JobRecord: it
// folds finished-job records into constant-memory accumulators (exact
// moments plus quantile sketches, see stats.Stream) so the koalad
// server and the -stream CLI mode can summarize arbitrarily large
// sweeps without retaining per-job records. Aggregates from independent
// replications Merge deterministically when merged in a fixed order.
type Aggregate struct {
	// Jobs counts every observed record; Malleable the malleable subset.
	Jobs      int
	Malleable int

	// Exec, Response and Wait summarize all jobs (the populations of
	// Figs. 7c/d and 8c/d).
	Exec     *stats.Stream
	Response *stats.Stream
	Wait     *stats.Stream

	// AvgProcs and MaxProcs summarize malleable jobs only (the
	// populations of Figs. 7a/b and 8a/b).
	AvgProcs *stats.Stream
	MaxProcs *stats.Stream
}

// NewAggregate returns an empty aggregate.
func NewAggregate() *Aggregate {
	return &Aggregate{
		Exec:     stats.NewStream(),
		Response: stats.NewStream(),
		Wait:     stats.NewStream(),
		AvgProcs: stats.NewStream(),
		MaxProcs: stats.NewStream(),
	}
}

// Observe folds one record into the aggregate.
func (a *Aggregate) Observe(r JobRecord) {
	a.Jobs++
	a.Exec.Add(r.ExecutionTime)
	a.Response.Add(r.ResponseTime)
	a.Wait.Add(r.WaitTime)
	if r.Malleable {
		a.Malleable++
		a.AvgProcs.Add(r.AvgProcs)
		a.MaxProcs.Add(float64(r.MaxProcs))
	}
}

// ObserveAll folds a record slice in order.
func (a *Aggregate) ObserveAll(recs []JobRecord) {
	for _, r := range recs {
		a.Observe(r)
	}
}

// Merge folds another aggregate into a. Merging replication aggregates
// in replication order yields deterministic results.
func (a *Aggregate) Merge(b *Aggregate) {
	if b == nil {
		return
	}
	a.Jobs += b.Jobs
	a.Malleable += b.Malleable
	a.Exec.Merge(b.Exec)
	a.Response.Merge(b.Response)
	a.Wait.Merge(b.Wait)
	a.AvgProcs.Merge(b.AvgProcs)
	a.MaxProcs.Merge(b.MaxProcs)
}

// MeanExecution returns the mean execution time over observed jobs.
func (a *Aggregate) MeanExecution() float64 { return a.Exec.Online.Mean() }

// MeanResponse returns the mean response time over observed jobs.
func (a *Aggregate) MeanResponse() float64 { return a.Response.Online.Mean() }
