package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gram"
	"repro/internal/koala"
	"repro/internal/runner"
)

func system(nodes int) (*core.System, *Collector) {
	sys := core.NewSystem(core.SystemConfig{
		Grid: cluster.NewMulticluster(cluster.New("A", nodes)),
		Gram: gram.Config{SubmitLatency: 1, ReleaseLatency: 0.5},
		Scheduler: koala.Config{
			Policy:        koala.WorstFit{},
			PollInterval:  5,
			MRunnerConfig: runner.MRunnerConfig{Costs: app.ReconfigCosts{}},
		},
		DisableManager: true,
	})
	col := NewCollector(sys.Engine, sys.Scheduler, sys.Grid, 5)
	return sys, col
}

func TestCollectorRecordsRigidJob(t *testing.T) {
	sys, col := system(16)
	sys.SubmitRigid("r", app.FTModel(), 2)
	sys.Engine.RunUntil(500)
	recs := col.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	r := recs[0]
	if r.ID != "r" || r.Malleable || r.Site != "A" {
		t.Fatalf("record = %+v", r)
	}
	if math.Abs(r.ExecutionTime-120) > 1e-6 {
		t.Fatalf("exec = %g, want 120", r.ExecutionTime)
	}
	if math.Abs(r.ResponseTime-121) > 1e-6 { // + 1 s GRAM submit
		t.Fatalf("response = %g", r.ResponseTime)
	}
	if r.AvgProcs != 2 || r.MaxProcs != 2 || r.InitProcs != 2 {
		t.Fatalf("procs: %+v", r)
	}
	sys.Scheduler.Stop()
	col.Stop()
}

func TestCollectorTracksMalleableSizes(t *testing.T) {
	sys, col := system(64)
	j, _ := sys.SubmitMalleable("m", app.GadgetProfile(), 2)
	// Grow at half time: avg should land strictly between 2 and 46.
	sys.Engine.At(301, func() { j.RequestGrow(44) })
	sys.Engine.RunUntil(2000)
	recs := col.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	r := recs[0]
	if r.MaxProcs != 46 {
		t.Fatalf("max = %d, want 46", r.MaxProcs)
	}
	if r.AvgProcs <= 2 || r.AvgProcs >= 46 {
		t.Fatalf("avg = %g, want in (2,46)", r.AvgProcs)
	}
	if !r.Malleable || r.App != "GADGET2" {
		t.Fatalf("record = %+v", r)
	}
	sys.Scheduler.Stop()
	col.Stop()
}

func TestUtilizationSeries(t *testing.T) {
	sys, col := system(16)
	sys.SubmitRigid("r", app.GadgetModel(), 8)
	sys.Engine.RunUntil(700)
	u := col.Utilization()
	if u.MaxValue() != 8 {
		t.Fatalf("peak utilisation = %g, want 8", u.MaxValue())
	}
	if u.At(300) != 8 {
		t.Fatalf("mid-run utilisation = %g", u.At(300))
	}
	if u.At(699) != 0 {
		t.Fatalf("post-run utilisation = %g", u.At(699))
	}
	sys.Scheduler.Stop()
	col.Stop()
}

func TestRejectedJobsTracked(t *testing.T) {
	sys := core.NewSystem(core.SystemConfig{
		Grid: cluster.NewMulticluster(cluster.New("A", 4)),
		Gram: gram.Config{SubmitLatency: 1, ReleaseLatency: 0.5},
		Scheduler: koala.Config{
			Policy:            koala.WorstFit{},
			PollInterval:      5,
			MaxPlacementTries: 2,
			MRunnerConfig:     runner.MRunnerConfig{Costs: app.ReconfigCosts{}},
		},
		DisableManager: true,
	})
	col := NewCollector(sys.Engine, sys.Scheduler, sys.Grid, 5)
	sys.SubmitMalleable("long", app.GadgetProfile(), 2)
	sys.SubmitRigid("doomed", app.FTModel(), 4)
	sys.Engine.RunUntil(100)
	if len(col.Rejected()) != 1 || col.Rejected()[0] != "doomed" {
		t.Fatalf("rejected = %v", col.Rejected())
	}
	sys.Scheduler.Stop()
	col.Stop()
}

func TestFieldSelectorsAndFilters(t *testing.T) {
	recs := []JobRecord{
		{ID: "a", App: "FT", Malleable: true, AvgProcs: 4, MaxProcs: 8, ExecutionTime: 100, ResponseTime: 150},
		{ID: "b", App: "GADGET2", Malleable: false, AvgProcs: 2, MaxProcs: 2, ExecutionTime: 600, ResponseTime: 700},
	}
	if got := AvgProcsOf(recs); got[0] != 4 || got[1] != 2 {
		t.Fatalf("AvgProcsOf = %v", got)
	}
	if got := MaxProcsOf(recs); got[0] != 8 {
		t.Fatalf("MaxProcsOf = %v", got)
	}
	if got := ExecTimesOf(recs); got[1] != 600 {
		t.Fatalf("ExecTimesOf = %v", got)
	}
	if got := ResponseTimesOf(recs); got[1] != 700 {
		t.Fatalf("ResponseTimesOf = %v", got)
	}
	if got := OnlyMalleable(recs); len(got) != 1 || got[0].ID != "a" {
		t.Fatalf("OnlyMalleable = %v", got)
	}
	if got := OnlyApp(recs, "GADGET2"); len(got) != 1 || got[0].ID != "b" {
		t.Fatalf("OnlyApp = %v", got)
	}
}

func TestWriteCSV(t *testing.T) {
	recs := []JobRecord{{ID: "a", App: "FT", Site: "A", AvgProcs: 2.5, MaxProcs: 4}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "id,app,malleable") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "2.500") || !strings.Contains(lines[1], ",4,") {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestAvgProcsIntegratesPauses(t *testing.T) {
	// A malleable job with reconfiguration pauses: processors stay held
	// during a pause, so AvgProcs must not dip towards zero.
	sys := core.NewSystem(core.SystemConfig{
		Grid: cluster.NewMulticluster(cluster.New("A", 64)),
		Gram: gram.Config{SubmitLatency: 1, ReleaseLatency: 0.5},
		Scheduler: koala.Config{
			Policy:        koala.WorstFit{},
			PollInterval:  5,
			MRunnerConfig: runner.MRunnerConfig{Costs: app.DefaultReconfigCosts()},
		},
		DisableManager: true,
	})
	col := NewCollector(sys.Engine, sys.Scheduler, sys.Grid, 5)
	j, _ := sys.SubmitMalleable("m", app.GadgetProfile(), 2)
	sys.Engine.At(10, func() { j.RequestGrow(44) })
	sys.Engine.RunUntil(2000)
	recs := col.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].AvgProcs < 40 {
		t.Fatalf("avg = %g, want ≈46 (grown almost immediately)", recs[0].AvgProcs)
	}
	sys.Scheduler.Stop()
	col.Stop()
}
