package koala

import (
	"math"
	"testing"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/gram"
	"repro/internal/runner"
	"repro/internal/sim"
)

func newSched(t testing.TB, cfg Config, nodes ...int) (*sim.Engine, []*Site, *Scheduler) {
	t.Helper()
	e := sim.New()
	clusters := make([]*cluster.Cluster, len(nodes))
	for i, n := range nodes {
		clusters[i] = cluster.New(string(rune('A'+i)), n)
	}
	sites := BuildSites(e, cluster.NewMulticluster(clusters...), gram.Config{SubmitLatency: 5, ReleaseLatency: 0.5})
	return e, sites, NewScheduler(e, sites, cfg)
}

func fastCfg() Config {
	return Config{
		Policy:        WorstFit{},
		PollInterval:  5,
		MRunnerConfig: runner.MRunnerConfig{Costs: app.ReconfigCosts{}, AcquireTimeout: 0},
	}
}

func TestSubmitAndRunRigidJob(t *testing.T) {
	e, _, s := newSched(t, fastCfg(), 16)
	var started, finished *Job
	s.OnJobStarted = func(j *Job) { started = j }
	s.OnJobFinished = func(j *Job) { finished = j }
	j, err := s.Submit(rigidSpec("r1", 2))
	if err != nil {
		t.Fatal(err)
	}
	e.RunUntil(200)
	if started != j || finished != j {
		t.Fatal("lifecycle callbacks missing")
	}
	if j.State() != Finished {
		t.Fatalf("state = %v", j.State())
	}
	if j.StartTime() != 5 {
		t.Fatalf("start = %g", j.StartTime())
	}
	if math.Abs(j.EndTime()-125) > 1e-6 { // 5 + FT T(2)=120
		t.Fatalf("end = %g", j.EndTime())
	}
	if j.Site() == nil || j.Site().Name() != "A" {
		t.Fatal("site not recorded")
	}
	s.Stop()
}

func TestSubmitMalleableJobUsesMRunner(t *testing.T) {
	e, _, s := newSched(t, fastCfg(), 48)
	j, err := s.Submit(malleableSpec("m1", app.GadgetProfile(), 2))
	if err != nil {
		t.Fatal(err)
	}
	e.RunUntil(100)
	if j.MRunner() == nil || j.State() != Running {
		t.Fatalf("mrunner=%v state=%v", j.MRunner(), j.State())
	}
	if j.CurrentProcs() != 2 {
		t.Fatalf("procs = %d", j.CurrentProcs())
	}
	if got := j.RequestGrow(10); got != 10 {
		t.Fatalf("grow accepted %d", got)
	}
	e.RunUntil(200)
	if j.CurrentProcs() != 12 {
		t.Fatalf("procs = %d after grow", j.CurrentProcs())
	}
	s.Stop()
}

func TestQueueingWhenFull(t *testing.T) {
	e, _, s := newSched(t, fastCfg(), 4)
	a, _ := s.Submit(rigidSpec("a", 4))
	b, _ := s.Submit(rigidSpec("b", 4))
	e.RunUntil(50)
	if a.State() != Running || b.State() != Waiting {
		t.Fatalf("a=%v b=%v", a.State(), b.State())
	}
	if s.QueueLength() != 1 {
		t.Fatalf("queue = %d", s.QueueLength())
	}
	// a finishes at 125; the poll tick then places b.
	e.RunUntil(300)
	if b.State() != Running && b.State() != Finished {
		t.Fatalf("b = %v after a finished", b.State())
	}
	s.Stop()
}

func TestPlacementTriesThresholdRejects(t *testing.T) {
	cfg := fastCfg()
	cfg.MaxPlacementTries = 3
	e, _, s := newSched(t, cfg, 4)
	var rejected *Job
	s.OnJobRejected = func(j *Job) { rejected = j }
	// Occupy the cluster with a long job, then submit an unplaceable one.
	s.Submit(malleableSpec("long", app.GadgetProfile(), 2))
	big, _ := s.Submit(rigidSpec("big", 4))
	e.RunUntil(100) // poll ticks at 5s intervals accumulate tries
	if big.State() != Rejected {
		t.Fatalf("state = %v, tries = %d", big.State(), big.Tries())
	}
	if rejected != big {
		t.Fatal("rejection callback missing")
	}
	if big.Tries() != 4 { // threshold 3 exceeded on the 4th try
		t.Fatalf("tries = %d", big.Tries())
	}
	s.Stop()
}

func TestJobSpecValidation(t *testing.T) {
	_, _, s := newSched(t, fastCfg(), 8)
	bad := []JobSpec{
		{ID: "none"},
		{ID: "badsize", Components: []ComponentSpec{{Profile: app.FTProfile(), Size: 1}}},
		{ID: "nilprof", Components: []ComponentSpec{{Profile: nil, Size: 2}}},
		{ID: "co-malleable", Components: []ComponentSpec{
			{Profile: app.FTProfile(), Size: 2},
			{Profile: app.FTProfile(), Size: 2},
		}},
	}
	for _, spec := range bad {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("spec %q should be rejected", spec.ID)
		}
	}
}

func TestCoAllocatedJobSpansClusters(t *testing.T) {
	e, sites, s := newSched(t, fastCfg(), 8, 8)
	spec := JobSpec{ID: "co", Components: []ComponentSpec{
		{Profile: app.RigidProfile("co-ft", app.FTModel(), 8), Size: 8},
		{Profile: app.RigidProfile("co-ft", app.FTModel(), 8), Size: 8},
	}}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	e.RunUntil(20)
	if j.State() != Running || j.CoRunner() == nil {
		t.Fatalf("state=%v", j.State())
	}
	if j.CurrentProcs() != 16 {
		t.Fatalf("procs = %d", j.CurrentProcs())
	}
	if sites[0].Cluster().Used() != 8 || sites[1].Cluster().Used() != 8 {
		t.Fatal("both clusters should hold a component")
	}
	e.RunUntil(200)
	if j.State() != Finished {
		t.Fatalf("state = %v", j.State())
	}
	if sites[0].Cluster().Used() != 0 || sites[1].Cluster().Used() != 0 {
		t.Fatal("nodes not released")
	}
	s.Stop()
}

func TestRunningMalleableJobsSortedByStart(t *testing.T) {
	e, _, s := newSched(t, fastCfg(), 48)
	var jobs []*Job
	for i := 0; i < 3; i++ {
		id := string(rune('a' + i))
		at := float64(i * 50)
		e.At(at, func() {
			j, err := s.Submit(malleableSpec(id, app.GadgetProfile(), 2))
			if err != nil {
				t.Error(err)
			}
			jobs = append(jobs, j)
		})
	}
	e.RunUntil(200)
	got := s.RunningMalleableJobs("A")
	if len(got) != 3 {
		t.Fatalf("running = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].StartTime() < got[i-1].StartTime() {
			t.Fatal("not sorted by start time")
		}
	}
	// Rigid jobs and other sites excluded.
	if len(s.RunningMalleableJobs("Z")) != 0 {
		t.Fatal("unknown site should have no jobs")
	}
	s.Stop()
}

// TestRunningIndexTieBreaksBySubmissionOrder pins the incremental index to
// the order the former full stable sort produced: increasing start time,
// ties in submission order — even when same-instant jobs start out of
// submission order.
func TestRunningIndexTieBreaksBySubmissionOrder(t *testing.T) {
	_, _, s := newSched(t, fastCfg(), 48)
	mk := func(seq int, start float64) *Job {
		return &Job{Spec: malleableSpec("j", app.GadgetProfile(), 2), state: Running, seq: seq, startTime: start}
	}
	early := mk(2, 5)
	second := mk(1, 10) // same instant as first, submitted later
	first := mk(0, 10)
	s.insertRunning(0, early)
	s.insertRunning(0, second)
	s.insertRunning(0, first)
	got := s.RunningMalleableJobsAt(0)
	if len(got) != 3 || got[0] != early || got[1] != first || got[2] != second {
		t.Fatalf("index order = %v, want [early first second]", got)
	}
	s.removeRunning(0, first)
	got = s.RunningMalleableJobsAt(0)
	if len(got) != 2 || got[0] != early || got[1] != second {
		t.Fatalf("after removal: %v", got)
	}
	s.Stop()
}

func TestMoldableSizing(t *testing.T) {
	cfg := fastCfg()
	cfg.MoldableSizing = func(min, max, idle int) int { return max }
	e, _, s := newSched(t, cfg, 64)
	spec := JobSpec{ID: "mold", Components: []ComponentSpec{{
		Profile: app.MoldableProfile("m", app.GadgetModel(), 2, 16), Size: 2,
	}}}
	j, _ := s.Submit(spec)
	e.RunUntil(50)
	if j.CurrentProcs() != 16 {
		t.Fatalf("moldable started at %d, want 16", j.CurrentProcs())
	}
	s.Stop()
}

func TestHooksReceivePollAndAvailability(t *testing.T) {
	e, _, s := newSched(t, fastCfg(), 8)
	h := &recordingHooks{}
	s.SetHooks(h)
	s.Submit(rigidSpec("r", 2))
	e.RunUntil(200)
	if h.polls == 0 {
		t.Fatal("Poll never fired")
	}
	if h.avail != 1 {
		t.Fatalf("ProcessorsAvailable fired %d times, want 1", h.avail)
	}
	s.Stop()
}

type recordingHooks struct {
	polls, avail, blocked int
	blockReturn           bool
}

func (h *recordingHooks) Poll(Snapshot)              { h.polls++ }
func (h *recordingHooks) ProcessorsAvailable()       { h.avail++ }
func (h *recordingHooks) PlacementBlocked(*Job) bool { h.blocked++; return h.blockReturn }
func (h *recordingHooks) Reserved(int) int           { return 0 }

func TestPlacementBlockedHookStopsScan(t *testing.T) {
	e, _, s := newSched(t, fastCfg(), 4)
	h := &recordingHooks{blockReturn: true}
	s.SetHooks(h)
	s.Submit(malleableSpec("long", app.GadgetProfile(), 2)) // occupies 2
	s.Submit(rigidSpec("blocked", 4))                       // cannot fit → queue
	s.Submit(rigidSpec("fits", 2))                          // would fit, but scan must stop
	e.RunUntil(6)
	s.ScanQueue()
	if h.blocked == 0 {
		t.Fatal("PlacementBlocked never fired")
	}
	// Queue order preserved: the small job behind the blocked head did not
	// jump ahead.
	for _, j := range s.QueuedJobs() {
		if j.Spec.ID == "fits" && j.State() != Waiting {
			t.Fatal("job behind blocked head was placed")
		}
	}
	s.Stop()
}

func TestJobStateString(t *testing.T) {
	for st, want := range map[JobState]string{Waiting: "waiting", Placing: "placing", Running: "running", Finished: "finished", Rejected: "rejected", JobState(9): "state(9)"} {
		if st.String() != want {
			t.Errorf("JobState(%d) = %q", int(st), st.String())
		}
	}
}

func TestMinMaxProcs(t *testing.T) {
	spec := malleableSpec("m", app.FTProfile(), 2)
	j := &Job{Spec: spec}
	if j.MinProcs() != 2 || j.MaxProcs() != 32 {
		t.Fatalf("min=%d max=%d", j.MinProcs(), j.MaxProcs())
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Policy == nil || cfg.PollInterval <= 0 {
		t.Fatalf("bad defaults: %+v", cfg)
	}
}

func TestAutoJobID(t *testing.T) {
	e, _, s := newSched(t, fastCfg(), 8)
	a, _ := s.Submit(rigidSpec("", 2))
	b, _ := s.Submit(rigidSpec("", 2))
	if a.Spec.ID == "" || a.Spec.ID == b.Spec.ID {
		t.Fatalf("IDs: %q %q", a.Spec.ID, b.Spec.ID)
	}
	e.RunUntil(1)
	s.Stop()
}
