package koala

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/runner"
	"repro/internal/sim"
)

// Hooks is how the malleability manager (package core, §V) plugs into the
// scheduler. A nil hook set gives plain KOALA behaviour: the queue is
// scanned whenever processors become available.
type Hooks interface {
	// Poll fires on every scheduler polling tick with a fresh KIS snapshot;
	// this is where the PRA/PWA approaches run their management round.
	Poll(snap Snapshot)
	// ProcessorsAvailable fires when a job finishes and its processors
	// return. With PRA, running malleable jobs get precedence over the
	// queue; the hook is responsible for eventually calling ScanQueue.
	ProcessorsAvailable()
	// PlacementBlocked fires when the queue head cannot be placed. With
	// PWA it shrinks running malleable jobs to make room; it returns true
	// when room is being made (so the scheduler stops scanning this round).
	PlacementBlocked(j *Job) bool
	// Reserved reports processors of the site with the given dense index
	// (the scheduler's Sites() order) that the malleability manager has
	// granted to growing jobs but that are not yet held (stub submissions
	// in flight). The processor claimer subtracts them from every placement
	// view so that newly arriving jobs cannot double-book processors
	// already promised to running applications.
	Reserved(siteIndex int) int
}

// Config holds the scheduler's tunables.
type Config struct {
	// Policy is the placement policy; all paper experiments use Worst-Fit.
	Policy PlacementPolicy
	// MaxPlacementTries rejects a job after this many failed placement
	// attempts (§IV-A). Zero means unlimited.
	MaxPlacementTries int
	// PollInterval is the period at which the scheduler polls the KIS and
	// triggers job management (§V-B).
	PollInterval float64
	// MRunnerConfig configures the malleable runners the scheduler spawns.
	MRunnerConfig runner.MRunnerConfig
	// MoldableSizing picks the start size for moldable components given
	// the profile bounds and the idle processors of the chosen site; nil
	// uses the requested size.
	MoldableSizing func(min, max, idle int) int
	// Index, when non-nil, is a shared immutable site index table built
	// once per sweep point (PrepareIndex) and reused read-only by every
	// replication's KIS, instead of each KIS rebuilding the name↔index
	// map from scratch. It must match the sites handed to NewScheduler;
	// a mismatch falls back to a freshly built index.
	Index *SharedIndex
}

// DefaultConfig mirrors the experimental setup: Worst-Fit placement and a
// short polling period so background load is discovered promptly.
func DefaultConfig() Config {
	return Config{
		Policy:            WorstFit{},
		MaxPlacementTries: 0,
		PollInterval:      15,
		MRunnerConfig:     runner.DefaultMRunnerConfig(),
	}
}

// Scheduler is the centralised KOALA scheduler: the co-allocator (CO) that
// decides placements, and the processor claimer (PC) that turns placements
// into GRAM submissions through the runners (§IV-A).
type Scheduler struct {
	engine *sim.Engine
	sites  []*Site
	kis    *KIS
	cfg    Config

	queue []*Job
	jobs  []*Job

	// siteOf maps a site back to its dense index (the position in sites),
	// which keys every per-site slice below.
	siteOf map[*Site]int

	// pending counts processors (by site index) claimed for placed jobs
	// whose GRAM submissions are still in flight. The processor claimer
	// subtracts them from every placement view so the submission latency
	// cannot cause double-booking (§IV-A's claiming policy, adapted to
	// immediate claiming).
	pending []int

	// running holds, per site index, the running malleable jobs sorted by
	// (start time, submission order) — the order both malleability policies
	// consume (§V-C). It is maintained incrementally on job start/finish so
	// RunningMalleableJobs is O(jobs-on-site) instead of rescanning every
	// job ever submitted.
	running [][]*Job

	// viewBuf is the reusable scratch backing of placementView's adjusted
	// snapshot; it is valid only for the duration of one placement attempt.
	viewBuf []ProcessorInfo

	// claimsPool recycles per-job claim vectors: claims live only from
	// Placing to Running, so a small free list serves the whole run.
	claimsPool [][]int

	// jobArena batch-allocates Job structs (handles stay valid for the
	// scheduler's lifetime; see gram.Service.arena for the pattern).
	jobArena []Job

	hooks  Hooks
	ticker *sim.Ticker

	// OnJobStarted/OnJobFinished/OnJobRejected feed the metrics layer.
	OnJobStarted  func(*Job)
	OnJobFinished func(*Job)
	OnJobRejected func(*Job)

	scanning bool
}

// NewScheduler assembles a scheduler over the given sites.
func NewScheduler(engine *sim.Engine, sites []*Site, cfg Config) *Scheduler {
	if cfg.Policy == nil {
		cfg.Policy = WorstFit{}
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 5
	}
	s := &Scheduler{
		engine:  engine,
		sites:   sites,
		kis:     newKIS(engine, sites, cfg.Index),
		cfg:     cfg,
		siteOf:  make(map[*Site]int, len(sites)),
		pending: make([]int, len(sites)),
		running: make([][]*Job, len(sites)),
		viewBuf: make([]ProcessorInfo, len(sites)),
	}
	for i, site := range sites {
		s.siteOf[site] = i
	}
	s.ticker = sim.NewTicker(engine, cfg.PollInterval, s.pollTick)
	return s
}

// SiteIndex returns the dense index of the named site in Sites() order.
func (s *Scheduler) SiteIndex(name string) (int, bool) {
	i, ok := s.kis.idx.byName[name]
	return i, ok
}

// KIS returns the scheduler's information service.
func (s *Scheduler) KIS() *KIS { return s.kis }

// Sites returns the execution sites.
func (s *Scheduler) Sites() []*Site { return s.sites }

// Config returns the scheduler configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// SetHooks installs the malleability manager's hooks.
func (s *Scheduler) SetHooks(h Hooks) { s.hooks = h }

// Stop halts the polling ticker (end of experiment).
func (s *Scheduler) Stop() { s.ticker.Stop() }

// Jobs returns every job ever submitted, in submission order.
func (s *Scheduler) Jobs() []*Job { return s.jobs }

// QueueLength returns the number of jobs waiting for placement.
func (s *Scheduler) QueueLength() int { return len(s.queue) }

// QueuedJobs returns the placement queue, head first. The slice must not be
// modified.
func (s *Scheduler) QueuedJobs() []*Job { return s.queue }

// RunningMalleableJobs returns the malleable jobs currently running on the
// named site, sorted by increasing start time with ties in submission order
// (the order both malleability policies consume, §V-C). The returned slice
// is the scheduler's live index: callers must not modify it, and it is
// valid only until the next job start or finish.
func (s *Scheduler) RunningMalleableJobs(site string) []*Job {
	i, ok := s.kis.idx.byName[site]
	if !ok {
		return nil
	}
	return s.running[i]
}

// RunningMalleableJobsAt is RunningMalleableJobs by dense site index.
func (s *Scheduler) RunningMalleableJobsAt(i int) []*Job { return s.running[i] }

// insertRunning adds a just-started malleable job to its site's index,
// keeping the (start time, submission order) sort. Start times are assigned
// from the monotone simulation clock, so the job belongs at the tail except
// for same-instant ties, where submission order decides (the order the
// previous full stable sort produced).
func (s *Scheduler) insertRunning(i int, j *Job) {
	lst := append(s.running[i], j)
	k := len(lst) - 1
	for k > 0 && (lst[k-1].startTime > j.startTime ||
		(lst[k-1].startTime == j.startTime && lst[k-1].seq > j.seq)) {
		lst[k] = lst[k-1]
		k--
	}
	lst[k] = j
	s.running[i] = lst
}

// removeRunning drops a finished malleable job from its site's index.
func (s *Scheduler) removeRunning(i int, j *Job) {
	lst := s.running[i]
	for k, q := range lst {
		if q == j {
			copy(lst[k:], lst[k+1:])
			lst[len(lst)-1] = nil
			s.running[i] = lst[:len(lst)-1]
			return
		}
	}
}

// pollTick is the periodic heartbeat: refresh the KIS (discovering
// background load) and hand control to the malleability manager; without a
// manager, just rescan the queue.
func (s *Scheduler) pollTick() {
	snap := s.kis.Refresh()
	if s.hooks != nil {
		s.hooks.Poll(snap)
		return
	}
	s.ScanQueue()
}

// Submit enters a job into the system and immediately tries to place it.
func (s *Scheduler) Submit(spec JobSpec) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.ID == "" {
		spec.ID = fmt.Sprintf("job-%d", len(s.jobs))
	}
	if len(s.jobArena) == 0 {
		s.jobArena = make([]Job, 64)
	}
	j := &s.jobArena[0]
	s.jobArena = s.jobArena[1:]
	j.Spec, j.state, j.submitTime, j.seq, j.sched = spec, Waiting, s.engine.Now(), len(s.jobs), s
	s.jobs = append(s.jobs, j)
	if !s.tryPlace(j) {
		s.queue = append(s.queue, j)
		if s.rejectIfOverThreshold(j) {
			return j, nil
		}
	}
	return j, nil
}

// rejectIfOverThreshold applies the placement-try threshold of §IV-A; it
// reports whether the job was rejected (and removed from the queue).
func (s *Scheduler) rejectIfOverThreshold(j *Job) bool {
	if s.cfg.MaxPlacementTries <= 0 || j.tries <= s.cfg.MaxPlacementTries {
		return false
	}
	s.removeFromQueue(j)
	j.state = Rejected
	if s.OnJobRejected != nil {
		s.OnJobRejected(j)
	}
	return true
}

func (s *Scheduler) removeFromQueue(j *Job) {
	for i, q := range s.queue {
		if q == j {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return
		}
	}
}

// ScanQueue walks the placement queue head to tail, placing every job that
// fits (§IV-A). When a job cannot be placed and the malleability hooks
// report that room is being made for it (PWA mandatory shrinks), scanning
// stops to preserve the queue order.
func (s *Scheduler) ScanQueue() {
	if s.scanning {
		return
	}
	s.scanning = true
	defer func() { s.scanning = false }()
	i := 0
	for i < len(s.queue) {
		j := s.queue[i]
		if s.tryPlace(j) {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			continue
		}
		if s.rejectIfOverThreshold(j) {
			continue
		}
		if s.hooks != nil && s.hooks.PlacementBlocked(j) {
			return
		}
		i++
	}
}

// PendingClaims returns the processors claimed on the named site for jobs
// whose GRAM submissions are still in flight.
func (s *Scheduler) PendingClaims(site string) int {
	i, ok := s.kis.idx.byName[site]
	if !ok {
		return 0
	}
	return s.pending[i]
}

// PendingClaimsAt is PendingClaims by dense site index.
func (s *Scheduler) PendingClaimsAt(i int) int { return s.pending[i] }

// placementView returns a fresh snapshot with in-flight claims and the
// malleability manager's in-flight growth reservations subtracted. The
// returned snapshot is backed by a reusable scratch buffer: it is valid
// only for the placement attempt it was built for.
func (s *Scheduler) placementView() Snapshot {
	snap := s.kis.Refresh()
	for i := range s.sites {
		info := snap.At(i)
		info.Idle -= s.pending[i]
		if s.hooks != nil {
			info.Idle -= s.hooks.Reserved(i)
		}
		if info.Idle < 0 {
			info.Idle = 0
		}
		s.viewBuf[i] = info
	}
	return Snapshot{Time: snap.Time, procs: s.viewBuf, idx: s.kis.idx}
}

// tryPlace runs the placement policy against a claims-adjusted snapshot
// and, on success, claims the processors by starting the job's runners. It
// counts one placement try either way.
func (s *Scheduler) tryPlace(j *Job) bool {
	if j.state != Waiting {
		return false
	}
	j.tries++
	placements, ok := s.cfg.Policy.Place(&j.Spec, s.placementView(), s.kis, s.sites)
	if !ok {
		return false
	}
	s.claim(j, placements)
	return true
}

// getClaims hands out a zeroed per-site claim vector from the pool.
func (s *Scheduler) getClaims() []int {
	if n := len(s.claimsPool); n > 0 {
		c := s.claimsPool[n-1]
		s.claimsPool = s.claimsPool[:n-1]
		for i := range c {
			c[i] = 0
		}
		return c
	}
	return make([]int, len(s.sites))
}

func (s *Scheduler) putClaims(c []int) {
	s.claimsPool = append(s.claimsPool, c)
}

// claim is the processor claimer (PC): it turns placements into runners.
// Local resource managers on DAS-3 do not support reservations, so claiming
// is immediate GRAM submission; the postponed-claiming policy of [20], [21]
// degenerates to claiming at placement time in this model.
func (s *Scheduler) claim(j *Job, placements []ComponentPlacement) {
	j.state = Placing
	j.placeTime = s.engine.Now()
	j.claims = s.getClaims()
	j.sites = j.sitesBuf[:0]
	for _, p := range placements {
		j.sites = append(j.sites, p.Site)
		si := s.siteOf[p.Site]
		j.claims[si] += p.Size
		s.pending[si] += p.Size
	}
	cb := runner.Callbacks{Lifecycle: j}
	if j.Malleable() {
		comp := j.Spec.Components[0]
		mr, err := runner.NewMRunner(s.engine, placements[0].Site.Gram(), comp.Profile, placements[0].Size, s.cfg.MRunnerConfig, cb)
		if err != nil {
			panic(fmt.Sprintf("koala: claim failed for %s: %v", j.Spec.ID, err))
		}
		j.mrunner = mr
		// Route application-initiated grow requests (§II-C) to the
		// malleability manager when it supports them.
		if h, ok := s.hooks.(runner.AppGrowHandler); ok {
			mr.SetAppGrowHandler(h)
		}
		if err := mr.Start(); err != nil {
			panic(fmt.Sprintf("koala: start failed for %s: %v", j.Spec.ID, err))
		}
		return
	}
	if len(placements) == 1 {
		comp := j.Spec.Components[placements[0].Component]
		size := placements[0].Size
		if comp.Profile.Class == app.Moldable && s.cfg.MoldableSizing != nil {
			si := s.siteOf[placements[0].Site]
			idle := s.kis.Last().IdleAt(si)
			size = clamp(s.cfg.MoldableSizing(comp.Profile.Min, comp.Profile.Max, idle+size), comp.Profile.Min, comp.Profile.Max)
			// Moldable sizing may differ from the placed size: keep the
			// claim accounting in sync.
			j.claims[si] += size - placements[0].Size
			s.pending[si] += size - placements[0].Size
		}
		rr, err := runner.NewRigidRunner(s.engine, placements[0].Site.Gram(), comp.Profile, size, cb)
		if err != nil {
			panic(fmt.Sprintf("koala: claim failed for %s: %v", j.Spec.ID, err))
		}
		j.rigidRunners = []*runner.RigidRunner{rr}
		if err := rr.Start(); err != nil {
			panic(fmt.Sprintf("koala: start failed for %s: %v", j.Spec.ID, err))
		}
		return
	}
	// Multi-component (co-allocated) job: one spanning runner.
	profile := j.Spec.Components[placements[0].Component].Profile
	comps := make([]runner.CoComponent, 0, len(placements))
	for _, p := range placements {
		comps = append(comps, runner.CoComponent{Svc: p.Site.Gram(), Size: p.Size})
	}
	cr, err := runner.NewCoRunner(s.engine, profile, comps, cb)
	if err != nil {
		panic(fmt.Sprintf("koala: claim failed for %s: %v", j.Spec.ID, err))
	}
	j.coRunner = cr
	if err := cr.Start(); err != nil {
		panic(fmt.Sprintf("koala: start failed for %s: %v", j.Spec.ID, err))
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func (s *Scheduler) jobStarted(j *Job) {
	j.state = Running
	j.startTime = s.engine.Now()
	// The job's processors are now held at the clusters; drop the claims.
	for si, n := range j.claims {
		if n != 0 {
			s.pending[si] -= n
		}
	}
	s.putClaims(j.claims)
	j.claims = nil
	if j.Malleable() {
		if site := j.Site(); site != nil {
			s.insertRunning(s.siteOf[site], j)
		}
	}
	if s.OnJobStarted != nil {
		s.OnJobStarted(j)
	}
}

func (s *Scheduler) jobFinished(j *Job) {
	j.state = Finished
	j.endTime = s.engine.Now()
	if j.Malleable() {
		if site := j.Site(); site != nil {
			s.removeRunning(s.siteOf[site], j)
		}
	}
	if s.OnJobFinished != nil {
		s.OnJobFinished(j)
	}
	// Processors just came back: give the malleability manager precedence,
	// or rescan the queue directly in plain-KOALA mode. Deferred through
	// the engine so the GRAM releases settle first; the scheduler is its
	// own pre-bound handler so the per-job-finish event allocates nothing.
	s.engine.ImmediatelyOp(s, opProcessorsReturned)
}

// opProcessorsReturned is the Scheduler's only handler op: a finished
// job's processors settled back at GRAM.
const opProcessorsReturned = 0

// OnEvent implements sim.Handler for the deferred processors-returned
// notification scheduled by jobFinished.
func (s *Scheduler) OnEvent(int) {
	if s.hooks != nil {
		s.hooks.ProcessorsAvailable()
	} else {
		s.ScanQueue()
	}
}
