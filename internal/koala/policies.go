package koala

import (
	"fmt"
	"sort"
)

// ComponentPlacement is one placement decision: component index, target
// site, and the processor count to start with there. Policies that split
// jobs (FCM) may return more placements than the spec has components, with
// Component set to the index of the spec component each chunk derives from.
type ComponentPlacement struct {
	Component int
	Site      *Site
	Size      int
}

// PlacementPolicy decides where job components run (§IV-A). Place returns
// the placements and true on success, or nil and false when the job cannot
// be placed under the current snapshot. snap must be indexed in sites
// order (position i describes sites[i]), which is how the scheduler and
// KIS always build snapshots. Policies must not mutate or retain the
// snapshot (it may be backed by reusable scratch) and must account for
// their own placements when placing multiple components (a component
// consumes idle processors for subsequent ones).
type PlacementPolicy interface {
	Name() string
	Place(spec *JobSpec, snap Snapshot, kis *KIS, sites []*Site) ([]ComponentPlacement, bool)
}

// siteView tracks remaining idle processors during a multi-component
// placement.
type siteView struct {
	site *Site
	idle int
	used bool // this job already placed a component here (CM)
}

func newViews(snap Snapshot, sites []*Site) []siteView {
	views := make([]siteView, len(sites))
	for i, s := range sites {
		views[i] = siteView{site: s, idle: snap.IdleAt(i)}
	}
	return views
}

// WorstFit places each component in the cluster with the largest number of
// idle processors (§IV-A). Its automatic load-balancing behaviour is the
// policy used in all of the paper's experiments.
type WorstFit struct{}

// Name implements PlacementPolicy.
func (WorstFit) Name() string { return "WF" }

// Place implements PlacementPolicy.
func (WorstFit) Place(spec *JobSpec, snap Snapshot, _ *KIS, sites []*Site) ([]ComponentPlacement, bool) {
	if len(spec.Components) == 1 {
		// Single-component fast path (every job of the paper's malleable
		// workloads): no mutable views needed, scan the snapshot directly.
		size := spec.Components[0].Size
		best := -1
		bestIdle := 0
		for i := range sites {
			if idle := snap.IdleAt(i); idle >= size && (best < 0 || idle > bestIdle) {
				best = i
				bestIdle = idle
			}
		}
		if best < 0 {
			return nil, false
		}
		return []ComponentPlacement{{Component: 0, Site: sites[best], Size: size}}, true
	}
	views := newViews(snap, sites)
	placements := make([]ComponentPlacement, 0, len(spec.Components))
	for ci, comp := range spec.Components {
		// Pick the view with the most idle processors; ties break on site
		// declaration order for determinism.
		var best *siteView
		for i := range views {
			v := &views[i]
			if v.idle >= comp.Size && (best == nil || v.idle > best.idle) {
				best = v
			}
		}
		if best == nil {
			return nil, false
		}
		best.idle -= comp.Size
		placements = append(placements, ComponentPlacement{Component: ci, Site: best.site, Size: comp.Size})
	}
	return placements, true
}

// CloseToFiles favours sites that already hold the component's input files,
// then sites for which transferring those files takes the least time (§IV-A,
// [20]). Among equally good candidates it prefers the most idle site.
type CloseToFiles struct{}

// Name implements PlacementPolicy.
func (CloseToFiles) Name() string { return "CF" }

// transferTime estimates how long moving the missing input files to site v
// would take.
func transferTime(comp ComponentSpec, v *siteView) float64 {
	var bytes float64
	for _, f := range comp.InputFiles {
		if !v.site.HasFile(f.Name) {
			bytes += f.Bytes
		}
	}
	return bytes / v.site.TransferRate()
}

// Place implements PlacementPolicy.
func (CloseToFiles) Place(spec *JobSpec, snap Snapshot, _ *KIS, sites []*Site) ([]ComponentPlacement, bool) {
	views := newViews(snap, sites)
	placements := make([]ComponentPlacement, 0, len(spec.Components))
	for ci, comp := range spec.Components {
		candidates := make([]*siteView, 0, len(views))
		for i := range views {
			if views[i].idle >= comp.Size {
				candidates = append(candidates, &views[i])
			}
		}
		if len(candidates) == 0 {
			return nil, false
		}
		comp := comp
		sort.SliceStable(candidates, func(a, b int) bool {
			ta, tb := transferTime(comp, candidates[a]), transferTime(comp, candidates[b])
			if ta != tb {
				return ta < tb
			}
			return candidates[a].idle > candidates[b].idle
		})
		best := candidates[0]
		best.idle -= comp.Size
		placements = append(placements, ComponentPlacement{Component: ci, Site: best.site, Size: comp.Size})
	}
	return placements, true
}

// ClusterMinimization packs components into as few clusters as possible to
// reduce inter-cluster messages ([23]). Components are placed largest first;
// each goes to an already-used cluster when it fits (the fullest such
// cluster), otherwise to the cluster whose idle count is smallest but
// sufficient (best fit, to keep the cluster count low for the remainder).
type ClusterMinimization struct{}

// Name implements PlacementPolicy.
func (ClusterMinimization) Name() string { return "CM" }

// Place implements PlacementPolicy.
func (ClusterMinimization) Place(spec *JobSpec, snap Snapshot, _ *KIS, sites []*Site) ([]ComponentPlacement, bool) {
	views := newViews(snap, sites)

	order := make([]int, len(spec.Components))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return spec.Components[order[a]].Size > spec.Components[order[b]].Size
	})

	placements := make([]ComponentPlacement, len(spec.Components))
	for _, ci := range order {
		comp := spec.Components[ci]
		var best *siteView
		// Prefer clusters already used by this job.
		for i := range views {
			v := &views[i]
			if v.used && v.idle >= comp.Size && (best == nil || v.idle < best.idle) {
				best = v
			}
		}
		if best == nil {
			for i := range views {
				v := &views[i]
				if v.idle >= comp.Size && (best == nil || v.idle < best.idle) {
					best = v
				}
			}
		}
		if best == nil {
			return nil, false
		}
		best.idle -= comp.Size
		best.used = true
		placements[ci] = ComponentPlacement{Component: ci, Site: best.site, Size: comp.Size}
	}
	return placements, true
}

// FlexibleClusterMinimization is CM's flexible variant ([23]): it ignores
// the submitted component split and re-splits the job's total processor
// request over the clusters with the most idle processors, reducing queue
// time at the price of more components. Only jobs whose profiles tolerate
// arbitrary component sizes (Min 1) may be split; others fall back to CM.
type FlexibleClusterMinimization struct{}

// Name implements PlacementPolicy.
func (FlexibleClusterMinimization) Name() string { return "FCM" }

// Place implements PlacementPolicy.
func (FlexibleClusterMinimization) Place(spec *JobSpec, snap Snapshot, kis *KIS, sites []*Site) ([]ComponentPlacement, bool) {
	splittable := len(spec.Components) == 1 && spec.Components[0].Profile.Min <= 1 && !spec.Malleable()
	if !splittable {
		return ClusterMinimization{}.Place(spec, snap, kis, sites)
	}
	total := spec.Components[0].Size
	views := newViews(snap, sites)
	sort.SliceStable(views, func(a, b int) bool { return views[a].idle > views[b].idle })
	var placements []ComponentPlacement
	remaining := total
	for _, v := range views {
		if remaining == 0 {
			break
		}
		if v.idle <= 0 {
			continue
		}
		chunk := v.idle
		if chunk > remaining {
			chunk = remaining
		}
		placements = append(placements, ComponentPlacement{Component: 0, Site: v.site, Size: chunk})
		remaining -= chunk
	}
	if remaining > 0 {
		return nil, false
	}
	return placements, true
}

// PolicyByName returns the placement policy with the given name.
func PolicyByName(name string) (PlacementPolicy, error) {
	switch name {
	case "WF", "wf":
		return WorstFit{}, nil
	case "CF", "cf":
		return CloseToFiles{}, nil
	case "CM", "cm":
		return ClusterMinimization{}, nil
	case "FCM", "fcm":
		return FlexibleClusterMinimization{}, nil
	default:
		return nil, fmt.Errorf("koala: unknown placement policy %q", name)
	}
}
