package koala

import (
	"testing"

	"repro/internal/app"
	"repro/internal/cluster"
	"repro/internal/gram"
	"repro/internal/sim"
)

// testbed builds three small sites with the given node counts.
func testbed(t testing.TB, nodes ...int) (*sim.Engine, []*Site, *KIS) {
	t.Helper()
	e := sim.New()
	clusters := make([]*cluster.Cluster, len(nodes))
	for i, n := range nodes {
		clusters[i] = cluster.New(string(rune('A'+i)), n)
	}
	mc := cluster.NewMulticluster(clusters...)
	sites := BuildSites(e, mc, gram.DefaultConfig())
	return e, sites, NewKIS(e, sites)
}

func rigidSpec(id string, size int) JobSpec {
	return JobSpec{ID: id, Components: []ComponentSpec{{
		Profile: app.RigidProfile("r", app.FTModel(), size), Size: size,
	}}}
}

func malleableSpec(id string, prof *app.Profile, size int) JobSpec {
	return JobSpec{ID: id, Components: []ComponentSpec{{Profile: prof, Size: size}}}
}

func TestWorstFitPicksLargestIdle(t *testing.T) {
	_, sites, kis := testbed(t, 10, 30, 20)
	spec := rigidSpec("j", 5)
	pl, ok := WorstFit{}.Place(&spec, kis.Refresh(), kis, sites)
	if !ok || len(pl) != 1 {
		t.Fatalf("placement failed: %v %v", pl, ok)
	}
	if pl[0].Site.Name() != "B" {
		t.Fatalf("WF chose %s, want B", pl[0].Site.Name())
	}
}

func TestWorstFitAccountsForEarlierComponents(t *testing.T) {
	_, sites, kis := testbed(t, 10, 12, 11)
	spec := JobSpec{ID: "co", Components: []ComponentSpec{
		{Profile: app.RigidProfile("r", app.FTModel(), 8), Size: 8},
		{Profile: app.RigidProfile("r", app.FTModel(), 8), Size: 8},
		{Profile: app.RigidProfile("r", app.FTModel(), 8), Size: 8},
	}}
	pl, ok := WorstFit{}.Place(&spec, kis.Refresh(), kis, sites)
	if !ok {
		t.Fatal("placement failed")
	}
	// B(12) → first, then C(11), then A(10): three distinct clusters.
	names := map[string]bool{}
	for _, p := range pl {
		names[p.Site.Name()] = true
	}
	if len(names) != 3 {
		t.Fatalf("WF placements = %v", pl)
	}
}

func TestWorstFitFailsWhenNothingFits(t *testing.T) {
	_, sites, kis := testbed(t, 4, 4)
	spec := rigidSpec("big", 8)
	if _, ok := (WorstFit{}).Place(&spec, kis.Refresh(), kis, sites); ok {
		t.Fatal("oversized placement should fail")
	}
}

func TestCloseToFilesPrefersReplicaSite(t *testing.T) {
	_, sites, kis := testbed(t, 30, 30, 30)
	sites[2].AddFile("input.dat")
	spec := JobSpec{ID: "cf", Components: []ComponentSpec{{
		Profile:    app.RigidProfile("r", app.FTModel(), 4),
		Size:       4,
		InputFiles: []File{{Name: "input.dat", Bytes: 10e9}},
	}}}
	pl, ok := CloseToFiles{}.Place(&spec, kis.Refresh(), kis, sites)
	if !ok || pl[0].Site.Name() != "C" {
		t.Fatalf("CF chose %v, want C", pl)
	}
}

func TestCloseToFilesPrefersFasterTransferAmongMisses(t *testing.T) {
	_, sites, kis := testbed(t, 30, 30, 30)
	sites[0].SetTransferRate(10e6)
	sites[1].SetTransferRate(1000e6) // fastest inbound link
	sites[2].SetTransferRate(100e6)
	spec := JobSpec{ID: "cf", Components: []ComponentSpec{{
		Profile:    app.RigidProfile("r", app.FTModel(), 4),
		Size:       4,
		InputFiles: []File{{Name: "data", Bytes: 1e9}},
	}}}
	pl, ok := CloseToFiles{}.Place(&spec, kis.Refresh(), kis, sites)
	if !ok || pl[0].Site.Name() != "B" {
		t.Fatalf("CF chose %v, want B", pl)
	}
}

func TestCloseToFilesWithoutFilesFallsBackToIdle(t *testing.T) {
	_, sites, kis := testbed(t, 10, 30, 20)
	spec := rigidSpec("nf", 5)
	pl, ok := CloseToFiles{}.Place(&spec, kis.Refresh(), kis, sites)
	if !ok || pl[0].Site.Name() != "B" {
		t.Fatalf("CF chose %v, want B (most idle)", pl)
	}
}

func TestClusterMinimizationPacksOneCluster(t *testing.T) {
	_, sites, kis := testbed(t, 40, 20, 30)
	spec := JobSpec{ID: "cm", Components: []ComponentSpec{
		{Profile: app.RigidProfile("r", app.FTModel(), 10), Size: 10},
		{Profile: app.RigidProfile("r", app.FTModel(), 8), Size: 8},
	}}
	pl, ok := ClusterMinimization{}.Place(&spec, kis.Refresh(), kis, sites)
	if !ok {
		t.Fatal("placement failed")
	}
	if pl[0].Site != pl[1].Site {
		t.Fatalf("CM split across clusters: %v", pl)
	}
	// Best fit: the smallest cluster that fits 18 total is B(20).
	if pl[0].Site.Name() != "B" {
		t.Fatalf("CM chose %s, want B", pl[0].Site.Name())
	}
}

func TestClusterMinimizationSpillsWhenNeeded(t *testing.T) {
	_, sites, kis := testbed(t, 12, 10, 8)
	spec := JobSpec{ID: "cm2", Components: []ComponentSpec{
		{Profile: app.RigidProfile("r", app.FTModel(), 10), Size: 10},
		{Profile: app.RigidProfile("r", app.FTModel(), 9), Size: 9},
	}}
	pl, ok := ClusterMinimization{}.Place(&spec, kis.Refresh(), kis, sites)
	if !ok {
		t.Fatal("placement failed")
	}
	if pl[0].Site == pl[1].Site {
		t.Fatal("components cannot share a cluster here")
	}
}

func TestFCMSplitsAcrossIdleClusters(t *testing.T) {
	_, sites, kis := testbed(t, 10, 6, 4)
	spec := JobSpec{ID: "fcm", Components: []ComponentSpec{{
		Profile: app.MoldableProfile("m", app.FTModel(), 1, 64), Size: 18,
	}}}
	pl, ok := FlexibleClusterMinimization{}.Place(&spec, kis.Refresh(), kis, sites)
	if !ok {
		t.Fatal("placement failed")
	}
	total := 0
	for _, p := range pl {
		total += p.Size
	}
	if total != 18 {
		t.Fatalf("FCM chunks sum to %d, want 18", total)
	}
	if len(pl) != 3 {
		t.Fatalf("FCM used %d clusters, want 3 (10+6+2)", len(pl))
	}
	if pl[0].Size != 10 || pl[1].Size != 6 || pl[2].Size != 2 {
		t.Fatalf("FCM chunks = %v", pl)
	}
}

func TestFCMFallsBackToCMForUnsplittable(t *testing.T) {
	_, sites, kis := testbed(t, 40, 20, 30)
	spec := rigidSpec("r", 10) // profile Min > 1 → unsplittable
	pl, ok := FlexibleClusterMinimization{}.Place(&spec, kis.Refresh(), kis, sites)
	if !ok || len(pl) != 1 {
		t.Fatalf("fallback failed: %v", pl)
	}
}

func TestFCMFailsWhenTotalUnavailable(t *testing.T) {
	_, sites, kis := testbed(t, 4, 4)
	spec := JobSpec{ID: "fcm", Components: []ComponentSpec{{
		Profile: app.MoldableProfile("m", app.FTModel(), 1, 64), Size: 18,
	}}}
	if _, ok := (FlexibleClusterMinimization{}).Place(&spec, kis.Refresh(), kis, sites); ok {
		t.Fatal("FCM should fail when total idle is insufficient")
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"WF", "CF", "CM", "FCM", "wf", "cf", "cm", "fcm"} {
		p, err := PolicyByName(name)
		if err != nil || p == nil {
			t.Errorf("PolicyByName(%q) failed: %v", name, err)
		}
	}
	if _, err := PolicyByName("nope"); err == nil {
		t.Fatal("unknown policy should fail")
	}
	if (WorstFit{}).Name() != "WF" || (CloseToFiles{}).Name() != "CF" ||
		(ClusterMinimization{}).Name() != "CM" || (FlexibleClusterMinimization{}).Name() != "FCM" {
		t.Fatal("policy names wrong")
	}
}

func TestKISSnapshotSeesBackgroundOnlyOnRefresh(t *testing.T) {
	_, sites, kis := testbed(t, 20, 20)
	snap := kis.Refresh()
	if snap.Idle("A") != 20 || snap.TotalIdle() != 40 {
		t.Fatalf("fresh snapshot: %+v", snap)
	}
	sites[0].Cluster().SeizeBackground(8)
	if kis.Last().Idle("A") != 20 {
		t.Fatal("stale snapshot should not see background load")
	}
	if kis.Refresh().Idle("A") != 12 {
		t.Fatal("refresh should discover background load")
	}
	if kis.Refreshes() < 3 {
		t.Fatalf("refreshes = %d", kis.Refreshes())
	}
}

func TestKISReplicaSites(t *testing.T) {
	_, sites, kis := testbed(t, 10, 10, 10)
	sites[0].AddFile("a")
	sites[0].AddFile("b")
	sites[1].AddFile("a")
	got := kis.ReplicaSites([]string{"a", "b"})
	if len(got) != 1 || got[0] != "A" {
		t.Fatalf("ReplicaSites = %v", got)
	}
	if all := kis.ReplicaSites(nil); len(all) != 3 {
		t.Fatalf("no-file query should return all sites: %v", all)
	}
}

func TestKISNetworkInfo(t *testing.T) {
	_, _, kis := testbed(t, 10)
	kis.SetNetworkInfo("A", "B", NetworkInfo{LatencyMS: 2, BandwidthMBps: 1000})
	if got := kis.Network("A", "B"); got.LatencyMS != 2 {
		t.Fatalf("Network = %+v", got)
	}
	if got := kis.Network("B", "A"); got.LatencyMS != 0 {
		t.Fatal("unknown pair should be zero")
	}
}
