package koala

import (
	"fmt"

	"repro/internal/app"
	"repro/internal/runner"
)

// File names an input file and its size, for the Close-to-Files policy.
type File struct {
	Name  string
	Bytes float64
}

// ComponentSpec describes one job component (§IV-A): the program to run,
// the number of processors it needs, and its input files. Jobs with several
// components are co-allocated across clusters.
type ComponentSpec struct {
	Profile *app.Profile
	// Size is the requested processor count: the fixed size for rigid
	// components, the initial size for malleable ones.
	Size       int
	InputFiles []File
}

// JobSpec is a complete job submission.
type JobSpec struct {
	ID         string
	Components []ComponentSpec
}

// Validate checks the spec for structural problems.
func (s *JobSpec) Validate() error {
	if len(s.Components) == 0 {
		return fmt.Errorf("koala: job %q has no components", s.ID)
	}
	malleable := false
	for i, c := range s.Components {
		if c.Profile == nil {
			return fmt.Errorf("koala: job %q component %d has no profile", s.ID, i)
		}
		if err := c.Profile.Validate(); err != nil {
			return fmt.Errorf("koala: job %q component %d: %w", s.ID, i, err)
		}
		if c.Size < c.Profile.Min || c.Size > c.Profile.Max {
			return fmt.Errorf("koala: job %q component %d size %d outside [%d,%d]",
				s.ID, i, c.Size, c.Profile.Min, c.Profile.Max)
		}
		if c.Profile.Class == app.Malleable {
			malleable = true
		}
	}
	if malleable && len(s.Components) > 1 {
		// §V-C: every malleable application executes in a single cluster;
		// malleability of co-allocated applications is future work.
		return fmt.Errorf("koala: job %q is malleable with %d components; malleable jobs are single-component", s.ID, len(s.Components))
	}
	return nil
}

// TotalSize returns the sum of the component sizes.
func (s *JobSpec) TotalSize() int {
	total := 0
	for _, c := range s.Components {
		total += c.Size
	}
	return total
}

// Malleable reports whether the job's (single) component is malleable.
func (s *JobSpec) Malleable() bool {
	return len(s.Components) == 1 && s.Components[0].Profile.Class == app.Malleable
}

// JobState is the lifecycle of a KOALA job.
type JobState int

const (
	// Waiting means the job sits in the placement queue.
	Waiting JobState = iota
	// Placing means components were placed and resources are being claimed.
	Placing
	// Running means the application(s) execute.
	Running
	// Finished means all components completed.
	Finished
	// Rejected means the placement-try threshold was exceeded (§IV-A).
	Rejected
)

// String implements fmt.Stringer.
func (s JobState) String() string {
	switch s {
	case Waiting:
		return "waiting"
	case Placing:
		return "placing"
	case Running:
		return "running"
	case Finished:
		return "finished"
	case Rejected:
		return "rejected"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Job is one submitted job tracked by the scheduler.
type Job struct {
	Spec JobSpec

	state JobState
	tries int
	// seq is the submission sequence number (position in Scheduler.Jobs());
	// it breaks start-time ties in the running-malleable-job order.
	seq int
	// sched owns the job; runner lifecycle notifications route back
	// through it (see JobStarted/JobFinished).
	sched *Scheduler

	submitTime float64
	placeTime  float64
	startTime  float64
	endTime    float64

	// mrunner is set for malleable jobs once placed.
	mrunner *runner.MRunner
	// rigidRunners are set for single-component rigid/moldable jobs.
	rigidRunners []*runner.RigidRunner
	// coRunner is set for multi-component (co-allocated) jobs.
	coRunner *runner.CoRunner
	// sites records where each placed component landed; sitesBuf is its
	// inline backing for the common one- and two-component cases.
	sites    []*Site
	sitesBuf [2]*Site
	// claims records the processors claimed per site (by the scheduler's
	// dense site index) while GRAM submissions are in flight; returned to
	// the scheduler's claims pool when the job starts.
	claims []int

	componentsRunning  int
	componentsFinished int
}

// JobStarted implements runner.Lifecycle: every runner of the job reports
// into the owning scheduler without a per-job closure pair.
func (j *Job) JobStarted() { j.sched.jobStarted(j) }

// JobFinished implements runner.Lifecycle.
func (j *Job) JobFinished() { j.sched.jobFinished(j) }

// State returns the job lifecycle state.
func (j *Job) State() JobState { return j.state }

// Tries returns the number of placement attempts so far.
func (j *Job) Tries() int { return j.tries }

// SubmitTime returns when the job entered the system.
func (j *Job) SubmitTime() float64 { return j.submitTime }

// PlaceTime returns when placement succeeded (undefined before Placing).
func (j *Job) PlaceTime() float64 { return j.placeTime }

// StartTime returns when execution began (undefined before Running).
func (j *Job) StartTime() float64 { return j.startTime }

// EndTime returns when the job finished (undefined before Finished).
func (j *Job) EndTime() float64 { return j.endTime }

// Sites returns the execution sites of the placed components.
func (j *Job) Sites() []*Site { return j.sites }

// Site returns the single execution site of a single-component job, or nil.
func (j *Job) Site() *Site {
	if len(j.sites) != 1 {
		return nil
	}
	return j.sites[0]
}

// Malleable reports whether this is a malleable job.
func (j *Job) Malleable() bool { return j.Spec.Malleable() }

// MRunner exposes the malleable runner (nil for rigid jobs or before
// placement).
func (j *Job) MRunner() *runner.MRunner { return j.mrunner }

// RigidRunners exposes the rigid runners (empty for malleable jobs).
func (j *Job) RigidRunners() []*runner.RigidRunner { return j.rigidRunners }

// CoRunner exposes the co-allocating runner (nil unless multi-component).
func (j *Job) CoRunner() *runner.CoRunner { return j.coRunner }

// CurrentProcs returns the processors currently used by the job's
// application(s).
func (j *Job) CurrentProcs() int {
	if j.mrunner != nil {
		if x := j.mrunner.Execution(); x != nil && !x.Done() {
			return x.Procs()
		}
		return 0
	}
	if j.coRunner != nil {
		if j.coRunner.Running() {
			return j.coRunner.TotalSize()
		}
		return 0
	}
	total := 0
	for _, r := range j.rigidRunners {
		if r.Running() {
			total += r.Execution().Procs()
		}
	}
	return total
}

// HeldProcs returns the processors currently held at the clusters on behalf
// of the job, including stubs that are not yet recruited into the
// application.
func (j *Job) HeldProcs() int {
	if j.mrunner != nil {
		return j.mrunner.Nodes()
	}
	if j.coRunner != nil {
		return j.coRunner.Nodes()
	}
	total := 0
	for _, r := range j.rigidRunners {
		total += r.Nodes()
	}
	return total
}

// PlannedProcs returns the processor count after in-flight adaptations.
func (j *Job) PlannedProcs() int {
	if j.mrunner != nil {
		return j.mrunner.PlannedProcs()
	}
	return j.CurrentProcs()
}

// RequestGrow offers additional processors to a running malleable job and
// returns the accepted amount (§V-C protocol).
func (j *Job) RequestGrow(offer int) int {
	if j.mrunner == nil || j.state != Running {
		return 0
	}
	return j.mrunner.RequestGrow(offer)
}

// RequestShrink asks a running malleable job to give processors back and
// returns the amount it will release.
func (j *Job) RequestShrink(request int) int {
	if j.mrunner == nil || j.state != Running {
		return 0
	}
	return j.mrunner.RequestShrink(request)
}

// RequestVoluntaryShrink asks a running malleable job politely to give
// processors back; the application may decline (§II-D). It returns the
// amount it will release.
func (j *Job) RequestVoluntaryShrink(request int) int {
	if j.mrunner == nil || j.state != Running {
		return 0
	}
	return j.mrunner.RequestVoluntaryShrink(request)
}

// AppRequestGrow lets the job's application itself ask the scheduler for
// more processors (§II-C). It returns the processors obtained.
func (j *Job) AppRequestGrow(amount int) int {
	if j.mrunner == nil || j.state != Running {
		return 0
	}
	return j.mrunner.AppRequestGrow(amount)
}

// MinProcs returns the job's minimum processor requirement.
func (j *Job) MinProcs() int {
	total := 0
	for _, c := range j.Spec.Components {
		total += c.Profile.Min
	}
	return total
}

// MaxProcs returns the job's maximum useful processor count.
func (j *Job) MaxProcs() int {
	total := 0
	for _, c := range j.Spec.Components {
		total += c.Profile.Max
	}
	return total
}
