package koala

import "testing"

// TestRefreshDoesNotAliasPreviousSnapshot pins the double-buffer contract:
// the snapshot returned by one Refresh keeps its values when the *next*
// Refresh reuses pooled storage.
func TestRefreshDoesNotAliasPreviousSnapshot(t *testing.T) {
	_, sites, kis := testbed(t, 20, 30)
	snap1 := kis.Refresh()
	if snap1.Idle("A") != 20 || snap1.Idle("B") != 30 {
		t.Fatalf("snap1 = %+v", snap1)
	}
	sites[0].Cluster().SeizeBackground(8)
	snap2 := kis.Refresh()
	if snap2.Idle("A") != 12 {
		t.Fatalf("snap2.Idle(A) = %d, want 12", snap2.Idle("A"))
	}
	// snap1 must be untouched by snap2's buffer reuse.
	if snap1.Idle("A") != 20 || snap1.TotalIdle() != 50 {
		t.Fatalf("previous snapshot mutated by Refresh: %+v", snap1)
	}
}

func TestRefreshIsAllocationFree(t *testing.T) {
	_, _, kis := testbed(t, 20, 30, 40)
	allocs := testing.AllocsPerRun(100, func() {
		kis.Refresh()
	})
	if allocs > 0 {
		t.Fatalf("Refresh allocates %.1f objects, want 0", allocs)
	}
}

func TestSnapshotIndexAccessors(t *testing.T) {
	snap := NewSnapshot(7, []string{"X", "Y"}, []ProcessorInfo{{Total: 8, Idle: 3}, {Total: 4, Idle: 4}})
	if snap.Len() != 2 || snap.Time != 7 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.SiteName(0) != "X" || snap.IdleAt(1) != 4 || snap.At(0).Total != 8 {
		t.Fatal("index accessors wrong")
	}
	if snap.Idle("Y") != 4 || snap.Idle("nope") != 0 {
		t.Fatal("name accessors wrong")
	}
	if snap.TotalIdle() != 7 {
		t.Fatalf("TotalIdle = %d", snap.TotalIdle())
	}
	if (Snapshot{}).Idle("X") != 0 {
		t.Fatal("zero snapshot should report 0 idle")
	}
}

func TestNewSnapshotMismatchedLengthsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched names/infos did not panic")
		}
	}()
	NewSnapshot(0, []string{"A"}, nil)
}

// TestPlacementViewIsAllocationFree pins that a placement attempt's
// adjusted view reuses the scheduler's scratch buffer.
func TestPlacementViewIsAllocationFree(t *testing.T) {
	_, _, s := newSched(t, fastCfg(), 16, 16)
	allocs := testing.AllocsPerRun(100, func() {
		s.placementView()
	})
	if allocs > 0 {
		t.Fatalf("placementView allocates %.1f objects, want 0", allocs)
	}
}

// BenchmarkSnapshotRefresh measures the KIS polling cost over the DAS-3
// scale (five sites), the per-tick unit of work of the §V-B loop.
func BenchmarkSnapshotRefresh(b *testing.B) {
	_, _, kis := testbed(b, 85, 32, 41, 68, 46)
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		snap := kis.Refresh()
		total += snap.TotalIdle()
	}
	_ = total
}

// BenchmarkPlacementView measures the claims-adjusted snapshot built for
// every placement attempt.
func BenchmarkPlacementView(b *testing.B) {
	_, _, s := newSched(b, fastCfg(), 85, 32, 41, 68, 46)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.placementView()
	}
}
