package koala

import "repro/internal/sim"

// ProcessorInfo is what the processor information provider (PIP) reports for
// one cluster: totals and idle counts as observed at the monitoring
// infrastructure. Background load from users who bypass KOALA is visible
// only through the Idle figure (§V-B).
type ProcessorInfo struct {
	Total int
	Idle  int
}

// NetworkInfo is what the network information provider (NIP) reports for a
// pair of sites.
type NetworkInfo struct {
	LatencyMS     float64
	BandwidthMBps float64
}

// siteIndex is the fixed name↔dense-index mapping of a grid's sites. Sites
// never change after construction, so one index is shared by every snapshot
// and by the scheduler's per-site bookkeeping slices.
type siteIndex struct {
	names  []string
	byName map[string]int
}

func newSiteIndex(names []string) *siteIndex {
	idx := &siteIndex{names: names, byName: make(map[string]int, len(names))}
	for i, n := range names {
		idx.byName[n] = i
	}
	return idx
}

// Snapshot is one consistent view of the grid as assembled by the KOALA
// information service. Scheduling and malleability decisions are made
// against snapshots, never against live cluster state — this is what makes
// the scheduler resilient to (and aware of) background load only at polling
// granularity.
//
// A snapshot is backed by a slice indexed by the grid's stable site index
// (position i is the i-th site handed to NewKIS). Snapshots returned by
// KIS.Refresh reuse buffers: a snapshot stays valid until the next-but-one
// Refresh, which covers every consumer in the polling loop (all consume the
// snapshot within the event that obtained it).
type Snapshot struct {
	Time float64

	procs []ProcessorInfo
	idx   *siteIndex
}

// NewSnapshot builds a standalone snapshot over parallel name/info slices
// (position i of infos describes names[i]). It is intended for tests and
// tools; the scheduler's snapshots come from KIS.Refresh.
func NewSnapshot(time float64, names []string, infos []ProcessorInfo) Snapshot {
	if len(names) != len(infos) {
		panic("koala: NewSnapshot with mismatched names/infos")
	}
	return Snapshot{Time: time, procs: infos, idx: newSiteIndex(names)}
}

// Len returns the number of sites in the snapshot.
func (s Snapshot) Len() int { return len(s.procs) }

// At returns the processor info of the site with dense index i.
func (s Snapshot) At(i int) ProcessorInfo { return s.procs[i] }

// IdleAt returns the idle processor count of the site with dense index i.
func (s Snapshot) IdleAt(i int) int { return s.procs[i].Idle }

// SiteName returns the name of the site with dense index i.
func (s Snapshot) SiteName(i int) string { return s.idx.names[i] }

// Info returns the processor info of the named cluster (zero if unknown).
func (s Snapshot) Info(site string) ProcessorInfo {
	if s.idx == nil {
		return ProcessorInfo{}
	}
	i, ok := s.idx.byName[site]
	if !ok {
		return ProcessorInfo{}
	}
	return s.procs[i]
}

// Idle returns the idle processor count of the named cluster (0 if unknown).
func (s Snapshot) Idle(site string) int { return s.Info(site).Idle }

// TotalIdle sums idle processors over all clusters.
func (s Snapshot) TotalIdle() int {
	total := 0
	for _, p := range s.procs {
		total += p.Idle
	}
	return total
}

// KIS is the KOALA information service (§IV-A): it aggregates a processor
// information provider, a network information provider and a replica
// location service, and serves snapshots to the scheduler.
type KIS struct {
	engine *sim.Engine
	sites  []*Site
	idx    *siteIndex

	latency map[[2]string]NetworkInfo

	refreshes uint64
	// bufs double-buffer the snapshot storage: Refresh writes into the
	// buffer the *previous* snapshot does not use, so the hot path never
	// allocates and the most recent Last() snapshot is never overwritten
	// by the next Refresh (only by the one after it).
	bufs [2][]ProcessorInfo
	cur  int
	last Snapshot
}

// SharedIndex is an immutable site index table prepared once per sweep
// point and shared read-only by the KIS of every replication (the grids
// themselves are rebuilt per replication — only the name↔index mapping,
// which depends solely on the grid topology, is shared). Build one with
// PrepareIndex and pass it through Config.Index.
type SharedIndex struct {
	idx *siteIndex
}

// PrepareIndex builds a shared site index for grids whose sites carry the
// given names, in order. The names are copied; the result is safe for
// concurrent use.
func PrepareIndex(names []string) *SharedIndex {
	return &SharedIndex{idx: newSiteIndex(append([]string(nil), names...))}
}

// matches reports whether the shared index describes exactly these sites.
func (si *SharedIndex) matches(sites []*Site) bool {
	if si == nil || len(si.idx.names) != len(sites) {
		return false
	}
	for i, s := range sites {
		if si.idx.names[i] != s.Name() {
			return false
		}
	}
	return true
}

// NewKIS builds the information service over the given sites. The order of
// sites defines the grid's stable site index.
func NewKIS(engine *sim.Engine, sites []*Site) *KIS {
	return newKIS(engine, sites, nil)
}

// newKIS builds the information service, reusing the shared site index
// when one is provided and matches the sites (otherwise a fresh index is
// built, so a stale or mismatched table can never corrupt lookups).
func newKIS(engine *sim.Engine, sites []*Site, shared *SharedIndex) *KIS {
	var idx *siteIndex
	if shared.matches(sites) {
		idx = shared.idx
	} else {
		names := make([]string, len(sites))
		for i, s := range sites {
			names[i] = s.Name()
		}
		idx = newSiteIndex(names)
	}
	k := &KIS{engine: engine, sites: sites, idx: idx, latency: make(map[[2]string]NetworkInfo)}
	k.bufs[0] = make([]ProcessorInfo, len(sites))
	k.bufs[1] = make([]ProcessorInfo, len(sites))
	k.Refresh()
	return k
}

// SetNetworkInfo records NIP data for the (from, to) site pair.
func (k *KIS) SetNetworkInfo(from, to string, info NetworkInfo) {
	k.latency[[2]string{from, to}] = info
}

// Network returns NIP data for the (from, to) site pair; the zero value
// means "unknown".
func (k *KIS) Network(from, to string) NetworkInfo {
	return k.latency[[2]string{from, to}]
}

// Refresh polls the providers and captures a new snapshot, returning it.
// The scheduler calls this on its polling tick (§V-B), which is how changes
// in background load become visible. The returned snapshot reuses pooled
// storage and stays valid until the next-but-one Refresh.
func (k *KIS) Refresh() Snapshot {
	k.cur ^= 1
	buf := k.bufs[k.cur]
	for i, s := range k.sites {
		buf[i] = ProcessorInfo{Total: s.Cluster().Nodes(), Idle: s.Cluster().Idle()}
	}
	k.refreshes++
	k.last = Snapshot{Time: k.engine.Now(), procs: buf, idx: k.idx}
	return k.last
}

// Last returns the most recent snapshot without refreshing.
func (k *KIS) Last() Snapshot { return k.last }

// Refreshes returns how many snapshots have been captured.
func (k *KIS) Refreshes() uint64 { return k.refreshes }

// ReplicaSites implements the replica location service: it returns the
// names of the sites holding all of the given files. With no files required
// it returns every site.
func (k *KIS) ReplicaSites(files []string) []string {
	var out []string
	for _, s := range k.sites {
		all := true
		for _, f := range files {
			if !s.HasFile(f) {
				all = false
				break
			}
		}
		if all {
			out = append(out, s.Name())
		}
	}
	return out
}
