package koala

import "repro/internal/sim"

// ProcessorInfo is what the processor information provider (PIP) reports for
// one cluster: totals and idle counts as observed at the monitoring
// infrastructure. Background load from users who bypass KOALA is visible
// only through the Idle figure (§V-B).
type ProcessorInfo struct {
	Total int
	Idle  int
}

// NetworkInfo is what the network information provider (NIP) reports for a
// pair of sites.
type NetworkInfo struct {
	LatencyMS     float64
	BandwidthMBps float64
}

// Snapshot is one consistent view of the grid as assembled by the KOALA
// information service. Scheduling and malleability decisions are made
// against snapshots, never against live cluster state — this is what makes
// the scheduler resilient to (and aware of) background load only at polling
// granularity.
type Snapshot struct {
	Time       float64
	Processors map[string]ProcessorInfo
}

// Idle returns the idle processor count of the named cluster (0 if unknown).
func (s Snapshot) Idle(site string) int { return s.Processors[site].Idle }

// TotalIdle sums idle processors over all clusters.
func (s Snapshot) TotalIdle() int {
	total := 0
	for _, p := range s.Processors {
		total += p.Idle
	}
	return total
}

// KIS is the KOALA information service (§IV-A): it aggregates a processor
// information provider, a network information provider and a replica
// location service, and serves snapshots to the scheduler.
type KIS struct {
	engine *sim.Engine
	sites  []*Site

	latency map[[2]string]NetworkInfo

	refreshes uint64
	last      Snapshot
}

// NewKIS builds the information service over the given sites.
func NewKIS(engine *sim.Engine, sites []*Site) *KIS {
	k := &KIS{engine: engine, sites: sites, latency: make(map[[2]string]NetworkInfo)}
	k.Refresh()
	return k
}

// SetNetworkInfo records NIP data for the (from, to) site pair.
func (k *KIS) SetNetworkInfo(from, to string, info NetworkInfo) {
	k.latency[[2]string{from, to}] = info
}

// Network returns NIP data for the (from, to) site pair; the zero value
// means "unknown".
func (k *KIS) Network(from, to string) NetworkInfo {
	return k.latency[[2]string{from, to}]
}

// Refresh polls the providers and captures a new snapshot, returning it.
// The scheduler calls this on its polling tick (§V-B), which is how changes
// in background load become visible.
func (k *KIS) Refresh() Snapshot {
	procs := make(map[string]ProcessorInfo, len(k.sites))
	for _, s := range k.sites {
		procs[s.Name()] = ProcessorInfo{Total: s.Cluster().Nodes(), Idle: s.Cluster().Idle()}
	}
	k.refreshes++
	k.last = Snapshot{Time: k.engine.Now(), Processors: procs}
	return k.last
}

// Last returns the most recent snapshot without refreshing.
func (k *KIS) Last() Snapshot { return k.last }

// Refreshes returns how many snapshots have been captured.
func (k *KIS) Refreshes() uint64 { return k.refreshes }

// ReplicaSites implements the replica location service: it returns the
// names of the sites holding all of the given files. With no files required
// it returns every site.
func (k *KIS) ReplicaSites(files []string) []string {
	var out []string
	for _, s := range k.sites {
		all := true
		for _, f := range files {
			if !s.HasFile(f) {
				all = false
				break
			}
		}
		if all {
			out = append(out, s.Name())
		}
	}
	return out
}
