// Package koala reproduces the KOALA co-allocating multicluster scheduler of
// §IV-A: execution sites backed by local resource managers and GRAM, the
// KOALA information service (KIS) with its processor, network and replica
// providers, the placement queue with its retry threshold, and the four
// placement policies (Worst-Fit, Close-to-Files, Cluster Minimization and
// Flexible Cluster Minimization).
//
// Malleability support (§V) lives in package core, which plugs into the
// scheduler through the Hooks interface.
package koala

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/gram"
	"repro/internal/lrm"
	"repro/internal/sim"
)

// Site is one execution site of the grid: a cluster together with its local
// resource manager and GRAM endpoint, plus the data that the Close-to-Files
// policy consults (which input files are replicated here and how fast
// transfers to this site are).
type Site struct {
	clus *cluster.Cluster
	mgr  *lrm.Manager
	svc  *gram.Service

	files        map[string]bool
	transferRate float64 // bytes/second towards this site, for CF estimates
}

// NewSite assembles a site from its parts.
func NewSite(clus *cluster.Cluster, mgr *lrm.Manager, svc *gram.Service) *Site {
	return &Site{clus: clus, mgr: mgr, svc: svc, files: make(map[string]bool), transferRate: 100e6}
}

// BuildSites creates one site per cluster of the multicluster, each with its
// own LRM and GRAM service.
func BuildSites(engine *sim.Engine, mc *cluster.Multicluster, gramCfg gram.Config) []*Site {
	sites := make([]*Site, 0, len(mc.Clusters()))
	for _, c := range mc.Clusters() {
		mgr := lrm.New(engine, c)
		sites = append(sites, NewSite(c, mgr, gram.New(engine, mgr, gramCfg)))
	}
	return sites
}

// Name returns the site (cluster) name.
func (s *Site) Name() string { return s.clus.Name() }

// Cluster returns the underlying cluster.
func (s *Site) Cluster() *cluster.Cluster { return s.clus }

// LRM returns the site's local resource manager.
func (s *Site) LRM() *lrm.Manager { return s.mgr }

// Gram returns the site's GRAM service.
func (s *Site) Gram() *gram.Service { return s.svc }

// AddFile registers an input-file replica at this site (feeds the RLS).
func (s *Site) AddFile(name string) { s.files[name] = true }

// HasFile reports whether the named file is replicated at this site.
func (s *Site) HasFile(name string) bool { return s.files[name] }

// SetTransferRate sets the estimated inbound transfer rate (bytes/second).
func (s *Site) SetTransferRate(rate float64) {
	if rate <= 0 {
		panic(fmt.Sprintf("koala: non-positive transfer rate for %s", s.Name()))
	}
	s.transferRate = rate
}

// TransferRate returns the estimated inbound transfer rate.
func (s *Site) TransferRate() float64 { return s.transferRate }
