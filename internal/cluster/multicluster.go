package cluster

import (
	"fmt"
	"strings"
)

// Multicluster is an ordered collection of clusters — the grid on which
// KOALA schedules. Order matters for deterministic tie-breaking in
// placement policies.
type Multicluster struct {
	clusters []*Cluster
	byName   map[string]*Cluster
}

// NewMulticluster assembles a grid from the given clusters. Duplicate names
// panic: policies address clusters by name.
func NewMulticluster(clusters ...*Cluster) *Multicluster {
	m := &Multicluster{byName: make(map[string]*Cluster, len(clusters))}
	for _, c := range clusters {
		if _, dup := m.byName[c.Name()]; dup {
			panic(fmt.Sprintf("cluster: duplicate cluster name %q", c.Name()))
		}
		m.clusters = append(m.clusters, c)
		m.byName[c.Name()] = c
	}
	return m
}

// Clusters returns the clusters in declaration order. The returned slice
// must not be modified.
func (m *Multicluster) Clusters() []*Cluster { return m.clusters }

// Get returns the cluster with the given name, or nil.
func (m *Multicluster) Get(name string) *Cluster { return m.byName[name] }

// TotalNodes returns the node count across all clusters.
func (m *Multicluster) TotalNodes() int {
	total := 0
	for _, c := range m.clusters {
		total += c.Nodes()
	}
	return total
}

// TotalUsed returns the grid-allocated node count across all clusters.
func (m *Multicluster) TotalUsed() int {
	total := 0
	for _, c := range m.clusters {
		total += c.Used()
	}
	return total
}

// TotalBackground returns the background-held node count across clusters.
func (m *Multicluster) TotalBackground() int {
	total := 0
	for _, c := range m.clusters {
		total += c.Background()
	}
	return total
}

// TotalIdle returns the idle node count across all clusters.
func (m *Multicluster) TotalIdle() int {
	total := 0
	for _, c := range m.clusters {
		total += c.Idle()
	}
	return total
}

// String renders a one-line status, cluster by cluster.
func (m *Multicluster) String() string {
	var b strings.Builder
	for i, c := range m.clusters {
		if i > 0 {
			b.WriteString(" | ")
		}
		fmt.Fprintf(&b, "%s %d/%d", c.Name(), c.Used()+c.Background(), c.Nodes())
	}
	return b.String()
}

// DAS3 returns the five-cluster Distributed ASCI Supercomputer 3 testbed of
// Table I (272 nodes total).
func DAS3() *Multicluster {
	return NewMulticluster(
		NewWithInfo("VU", "Vrije University", "Myri-10G & 1/10 GbE", 85),
		NewWithInfo("UvA", "U. of Amsterdam", "Myri-10G & 1/10 GbE", 41),
		NewWithInfo("Delft", "Delft University", "1/10 GbE", 68),
		NewWithInfo("MMN", "MultimediaN", "Myri-10G & 1/10 GbE", 46),
		NewWithInfo("Leiden", "Leiden University", "Myri-10G & 1/10 GbE", 32),
	)
}

// TableI renders Table I of the paper from the multicluster description.
func (m *Multicluster) TableI() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %6s   %s\n", "Cluster Location", "Nodes", "Interconnect")
	for _, c := range m.clusters {
		loc := c.Location()
		if loc == "" {
			loc = c.Name()
		}
		fmt.Fprintf(&b, "%-22s %6d   %s\n", loc, c.Nodes(), c.Interconnect())
	}
	fmt.Fprintf(&b, "%-22s %6d\n", "Total", m.TotalNodes())
	return b.String()
}
