// Package cluster models the multicluster hardware substrate of the paper:
// a set of clusters, each with a fixed number of compute nodes allocated in
// space-shared, exclusive fashion at node granularity (the DAS-3 SGE
// configuration of §VI-B). It also models "background load": nodes seized by
// local users who bypass the multicluster scheduler entirely (§V-B), which
// KOALA can discover only by polling its information service.
package cluster

import (
	"errors"
	"fmt"
)

// ErrInsufficientNodes is returned when an allocation or grow request asks
// for more nodes than are currently idle.
var ErrInsufficientNodes = errors.New("cluster: insufficient idle nodes")

// Cluster is one site of the multicluster: a named pool of identical nodes.
type Cluster struct {
	name         string
	location     string
	interconnect string
	nodes        int

	used       int // nodes held by Allocations (grid jobs)
	background int // nodes seized directly by local users

	// arena batch-allocates Allocation handles (the malleable runners
	// churn through one per size-1 GRAM stub); handles are never reused,
	// batching only cuts the per-allocation count.
	arena []Allocation
}

// New creates a cluster with the given name and node count.
func New(name string, nodes int) *Cluster {
	if nodes <= 0 {
		panic(fmt.Sprintf("cluster: %q must have positive node count", name))
	}
	return &Cluster{name: name, nodes: nodes}
}

// NewWithInfo creates a cluster carrying the descriptive fields of Table I.
func NewWithInfo(name, location, interconnect string, nodes int) *Cluster {
	c := New(name, nodes)
	c.location = location
	c.interconnect = interconnect
	return c
}

// Name returns the cluster's identifier.
func (c *Cluster) Name() string { return c.name }

// Location returns the descriptive location (Table I), possibly empty.
func (c *Cluster) Location() string { return c.location }

// Interconnect returns the interconnect description (Table I), possibly empty.
func (c *Cluster) Interconnect() string { return c.interconnect }

// Nodes returns the total node count.
func (c *Cluster) Nodes() int { return c.nodes }

// Used returns the number of nodes held by grid allocations.
func (c *Cluster) Used() int { return c.used }

// Background returns the number of nodes seized by bypassing local users.
func (c *Cluster) Background() int { return c.background }

// Idle returns the number of nodes free for new allocations.
func (c *Cluster) Idle() int { return c.nodes - c.used - c.background }

// checkInvariant panics if accounting went negative or over capacity; this
// is the safety net behind every mutation.
func (c *Cluster) checkInvariant() {
	if c.used < 0 || c.background < 0 || c.used+c.background > c.nodes {
		panic(fmt.Sprintf("cluster %s: invariant violated used=%d background=%d nodes=%d",
			c.name, c.used, c.background, c.nodes))
	}
}

// Allocate reserves n idle nodes and returns a handle that can later grow,
// shrink, and release them. n must be positive.
func (c *Cluster) Allocate(n int) (*Allocation, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster %s: allocation size %d must be positive", c.name, n)
	}
	if n > c.Idle() {
		return nil, fmt.Errorf("%w: want %d, idle %d on %s", ErrInsufficientNodes, n, c.Idle(), c.name)
	}
	c.used += n
	c.checkInvariant()
	if len(c.arena) == 0 {
		c.arena = make([]Allocation, 64)
	}
	a := &c.arena[0]
	c.arena = c.arena[1:]
	a.cluster = c
	a.nodes = n
	return a, nil
}

// SeizeBackground marks n idle nodes as taken by local users who bypass the
// grid scheduler.
func (c *Cluster) SeizeBackground(n int) error {
	if n <= 0 {
		return fmt.Errorf("cluster %s: background seizure %d must be positive", c.name, n)
	}
	if n > c.Idle() {
		return fmt.Errorf("%w: background wants %d, idle %d on %s", ErrInsufficientNodes, n, c.Idle(), c.name)
	}
	c.background += n
	c.checkInvariant()
	return nil
}

// ReleaseBackground returns n background-held nodes to the idle pool.
func (c *Cluster) ReleaseBackground(n int) error {
	if n <= 0 || n > c.background {
		return fmt.Errorf("cluster %s: cannot release %d background nodes (held %d)", c.name, n, c.background)
	}
	c.background -= n
	c.checkInvariant()
	return nil
}

// Allocation is a space-shared, node-granular reservation on one cluster.
type Allocation struct {
	cluster  *Cluster
	nodes    int
	released bool
}

// Cluster returns the owning cluster.
func (a *Allocation) Cluster() *Cluster { return a.cluster }

// Nodes returns the current size of the allocation (0 after release).
func (a *Allocation) Nodes() int {
	if a.released {
		return 0
	}
	return a.nodes
}

// Released reports whether the allocation has been released.
func (a *Allocation) Released() bool { return a.released }

// Grow adds n nodes to the allocation, taking them from the idle pool.
func (a *Allocation) Grow(n int) error {
	if a.released {
		return fmt.Errorf("cluster %s: grow on released allocation", a.cluster.name)
	}
	if n <= 0 {
		return fmt.Errorf("cluster %s: grow by %d must be positive", a.cluster.name, n)
	}
	if n > a.cluster.Idle() {
		return fmt.Errorf("%w: grow wants %d, idle %d on %s", ErrInsufficientNodes, n, a.cluster.Idle(), a.cluster.name)
	}
	a.cluster.used += n
	a.nodes += n
	a.cluster.checkInvariant()
	return nil
}

// Shrink returns n nodes of the allocation to the idle pool. The allocation
// must keep at least one node; use Release to drop it entirely.
func (a *Allocation) Shrink(n int) error {
	if a.released {
		return fmt.Errorf("cluster %s: shrink on released allocation", a.cluster.name)
	}
	if n <= 0 || n >= a.nodes {
		return fmt.Errorf("cluster %s: shrink by %d invalid for allocation of %d", a.cluster.name, n, a.nodes)
	}
	a.cluster.used -= n
	a.nodes -= n
	a.cluster.checkInvariant()
	return nil
}

// Release returns all nodes to the idle pool. Releasing twice is an error.
func (a *Allocation) Release() error {
	if a.released {
		return fmt.Errorf("cluster %s: double release", a.cluster.name)
	}
	a.cluster.used -= a.nodes
	a.released = true
	a.nodes = 0
	a.cluster.checkInvariant()
	return nil
}
