package cluster

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestNewClusterBasics(t *testing.T) {
	c := New("delft", 68)
	if c.Name() != "delft" || c.Nodes() != 68 || c.Idle() != 68 || c.Used() != 0 {
		t.Fatalf("bad fresh cluster: %+v", c)
	}
}

func TestNewClusterPanicsOnZeroNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-node cluster did not panic")
		}
	}()
	New("x", 0)
}

func TestAllocateAndRelease(t *testing.T) {
	c := New("c", 10)
	a, err := c.Allocate(4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Idle() != 6 || c.Used() != 4 || a.Nodes() != 4 {
		t.Fatalf("after alloc: idle=%d used=%d a=%d", c.Idle(), c.Used(), a.Nodes())
	}
	if err := a.Release(); err != nil {
		t.Fatal(err)
	}
	if c.Idle() != 10 || a.Nodes() != 0 || !a.Released() {
		t.Fatalf("after release: idle=%d a=%d", c.Idle(), a.Nodes())
	}
	if err := a.Release(); err == nil {
		t.Fatal("double release should fail")
	}
}

func TestAllocateErrors(t *testing.T) {
	c := New("c", 4)
	if _, err := c.Allocate(0); err == nil {
		t.Fatal("zero allocation should fail")
	}
	if _, err := c.Allocate(-1); err == nil {
		t.Fatal("negative allocation should fail")
	}
	if _, err := c.Allocate(5); !errors.Is(err, ErrInsufficientNodes) {
		t.Fatalf("oversized allocation: err = %v", err)
	}
}

func TestGrowShrink(t *testing.T) {
	c := New("c", 10)
	a, _ := c.Allocate(3)
	if err := a.Grow(4); err != nil {
		t.Fatal(err)
	}
	if a.Nodes() != 7 || c.Idle() != 3 {
		t.Fatalf("after grow: a=%d idle=%d", a.Nodes(), c.Idle())
	}
	if err := a.Grow(4); !errors.Is(err, ErrInsufficientNodes) {
		t.Fatalf("overgrow: err = %v", err)
	}
	if err := a.Shrink(5); err != nil {
		t.Fatal(err)
	}
	if a.Nodes() != 2 || c.Idle() != 8 {
		t.Fatalf("after shrink: a=%d idle=%d", a.Nodes(), c.Idle())
	}
	// Shrinking to zero or below must fail; Release is the way out.
	if err := a.Shrink(2); err == nil {
		t.Fatal("shrink to zero should fail")
	}
	if err := a.Shrink(0); err == nil {
		t.Fatal("shrink by zero should fail")
	}
}

func TestOperationsOnReleasedAllocation(t *testing.T) {
	c := New("c", 10)
	a, _ := c.Allocate(2)
	a.Release()
	if err := a.Grow(1); err == nil {
		t.Fatal("grow on released should fail")
	}
	if err := a.Shrink(1); err == nil {
		t.Fatal("shrink on released should fail")
	}
}

func TestBackgroundLoad(t *testing.T) {
	c := New("c", 10)
	if err := c.SeizeBackground(6); err != nil {
		t.Fatal(err)
	}
	if c.Idle() != 4 || c.Background() != 6 {
		t.Fatalf("after seize: idle=%d bg=%d", c.Idle(), c.Background())
	}
	if _, err := c.Allocate(5); !errors.Is(err, ErrInsufficientNodes) {
		t.Fatal("allocation should see background-held nodes as busy")
	}
	if err := c.SeizeBackground(5); !errors.Is(err, ErrInsufficientNodes) {
		t.Fatal("over-seize should fail")
	}
	if err := c.ReleaseBackground(2); err != nil {
		t.Fatal(err)
	}
	if c.Idle() != 6 {
		t.Fatalf("idle = %d after background release", c.Idle())
	}
	if err := c.ReleaseBackground(10); err == nil {
		t.Fatal("over-release should fail")
	}
	if err := c.SeizeBackground(0); err == nil {
		t.Fatal("zero seize should fail")
	}
}

// Property: any sequence of allocate/grow/shrink/release/background ops keeps
// used+background+idle == nodes and all terms non-negative.
func TestPropertyAccountingInvariant(t *testing.T) {
	type op struct {
		Kind byte
		N    uint8
	}
	f := func(ops []op) bool {
		c := New("p", 64)
		var allocs []*Allocation
		for _, o := range ops {
			n := int(o.N%16) + 1
			switch o.Kind % 5 {
			case 0:
				if a, err := c.Allocate(n); err == nil {
					allocs = append(allocs, a)
				}
			case 1:
				if len(allocs) > 0 {
					allocs[len(allocs)-1].Grow(n)
				}
			case 2:
				if len(allocs) > 0 {
					allocs[len(allocs)-1].Shrink(n)
				}
			case 3:
				if len(allocs) > 0 {
					a := allocs[len(allocs)-1]
					allocs = allocs[:len(allocs)-1]
					if !a.Released() {
						a.Release()
					}
				}
			case 4:
				if o.N%2 == 0 {
					c.SeizeBackground(n)
				} else {
					c.ReleaseBackground(n)
				}
			}
			sum := 0
			for _, a := range allocs {
				sum += a.Nodes()
			}
			if sum != c.Used() {
				return false
			}
			if c.Used()+c.Background()+c.Idle() != c.Nodes() {
				return false
			}
			if c.Used() < 0 || c.Background() < 0 || c.Idle() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMulticlusterTotals(t *testing.T) {
	m := NewMulticluster(New("a", 10), New("b", 20))
	if m.TotalNodes() != 30 || m.TotalIdle() != 30 {
		t.Fatalf("totals wrong: %d/%d", m.TotalNodes(), m.TotalIdle())
	}
	a, _ := m.Get("a").Allocate(4)
	m.Get("b").SeizeBackground(5)
	if m.TotalUsed() != 4 || m.TotalBackground() != 5 || m.TotalIdle() != 21 {
		t.Fatalf("totals: used=%d bg=%d idle=%d", m.TotalUsed(), m.TotalBackground(), m.TotalIdle())
	}
	a.Release()
	if m.Get("missing") != nil {
		t.Fatal("Get of missing cluster should be nil")
	}
	if m.String() == "" {
		t.Fatal("String should render")
	}
}

func TestMulticlusterDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate name did not panic")
		}
	}()
	NewMulticluster(New("x", 1), New("x", 2))
}

func TestDAS3MatchesTableI(t *testing.T) {
	m := DAS3()
	want := map[string]int{"VU": 85, "UvA": 41, "Delft": 68, "MMN": 46, "Leiden": 32}
	if len(m.Clusters()) != 5 {
		t.Fatalf("DAS3 has %d clusters, want 5", len(m.Clusters()))
	}
	for name, nodes := range want {
		c := m.Get(name)
		if c == nil {
			t.Fatalf("missing cluster %s", name)
		}
		if c.Nodes() != nodes {
			t.Errorf("%s has %d nodes, want %d", name, c.Nodes(), nodes)
		}
	}
	if m.TotalNodes() != 272 {
		t.Fatalf("DAS3 total = %d, want 272", m.TotalNodes())
	}
	tbl := m.TableI()
	if tbl == "" {
		t.Fatal("TableI should render")
	}
}

func TestClusterInfoFields(t *testing.T) {
	c := NewWithInfo("Delft", "Delft University", "1/10 GbE", 68)
	if c.Location() != "Delft University" || c.Interconnect() != "1/10 GbE" {
		t.Fatalf("info fields lost: %q %q", c.Location(), c.Interconnect())
	}
}
