package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiment"
)

// tinyConfig is a seconds-fast experiment: 4 jobs, 2 replications, a
// two-cluster grid, no background load.
const tinyConfig = `{
	"workload": {"name":"tiny","jobs":4,"inter_arrival":30,"malleable_fraction":1,"initial_size":2,"rigid_size":2},
	"grid": {"clusters":[{"name":"A","nodes":48},{"name":"B","nodes":32}]},
	"no_background": true,
	"runs": 2,
	"seed": 1
}`

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

func postConfig(t *testing.T, ts *httptest.Server, body string) (submitResponse, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/experiments", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr submitResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
	}
	return sr, resp.StatusCode
}

// readEvents consumes the NDJSON stream until the terminal event and
// returns every event as a generic map.
func readEvents(t *testing.T, ts *httptest.Server, id string) []map[string]any {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/experiments/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content-type = %q", ct)
	}
	var events []map[string]any
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

// TestEndToEndSubmitStreamAndCacheHit is the tentpole's acceptance
// test: POST → NDJSON event stream → final summary; identical re-POST
// is a cache hit answered without re-simulation; the streamed summary
// matches the batch engine for the same config and seed.
func TestEndToEndSubmitStreamAndCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Options{})

	sr, code := postConfig(t, ts, tinyConfig)
	if code != http.StatusAccepted {
		t.Fatalf("POST status = %d, want 202", code)
	}
	if sr.Cached || sr.ID == "" || len(sr.Hash) != 64 {
		t.Fatalf("first POST response = %+v", sr)
	}

	// The event stream replays from the start and follows to the
	// terminal summary event.
	events := readEvents(t, ts, sr.ID)
	if len(events) < 4 {
		t.Fatalf("events = %d, want accepted + 2 replications + summary", len(events))
	}
	if events[0]["type"] != "accepted" {
		t.Fatalf("first event = %v", events[0])
	}
	reps, traces := 0, 0
	for _, ev := range events[1 : len(events)-1] {
		switch ev["type"] {
		case "replication":
			reps++
		case "trace":
			traces++
		default:
			t.Fatalf("mid-stream event = %v", ev)
		}
	}
	if reps != 2 {
		t.Fatalf("replication events = %d, want 2", reps)
	}
	if traces != 1 {
		t.Fatalf("trace events = %d, want 1 before the terminal summary", traces)
	}
	last := events[len(events)-1]
	if last["type"] != "summary" {
		t.Fatalf("terminal event = %v", last)
	}

	// GET returns the stored summary, which matches the batch engine.
	var got getResponse
	resp, err := http.Get(ts.URL + "/v1/experiments/" + sr.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.Status != StatusDone || got.Summary == nil {
		t.Fatalf("GET after summary: %+v", got)
	}

	spec, err := experiment.DecodeConfigSpec(strings.NewReader(tinyConfig))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	batch, err := experiment.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Summary.Jobs != len(batch.Pooled) {
		t.Errorf("server jobs = %d, batch %d", got.Summary.Jobs, len(batch.Pooled))
	}
	if got.Summary.MeanUtilization != batch.MeanUtilization() {
		t.Errorf("server mean util = %v, batch %v", got.Summary.MeanUtilization, batch.MeanUtilization())
	}
	if d := got.Summary.Exec.Mean - batch.MeanExecution(); d > 1e-9 || d < -1e-9 {
		t.Errorf("server mean exec = %v, batch %v", got.Summary.Exec.Mean, batch.MeanExecution())
	}

	// Identical re-submission: cache hit, same run, no new simulation.
	runsBefore := s.registry.Len()
	missesBefore := s.cache.Misses()
	repsBefore := s.repsDone.Load()
	sr2, code2 := postConfig(t, ts, tinyConfig)
	if code2 != http.StatusOK {
		t.Fatalf("re-POST status = %d, want 200", code2)
	}
	if !sr2.Cached || sr2.ID != sr.ID || sr2.Hash != sr.Hash {
		t.Fatalf("re-POST response = %+v, want cached same run", sr2)
	}
	if s.registry.Len() != runsBefore || s.cache.Misses() != missesBefore {
		t.Error("cache hit created a new run")
	}
	if s.repsDone.Load() != repsBefore {
		t.Error("cache hit re-simulated replications")
	}
	if s.cache.Hits() != 1 {
		t.Errorf("cache hits = %d, want 1", s.cache.Hits())
	}

	// A semantically different config is a miss.
	other := strings.Replace(tinyConfig, `"seed": 1`, `"seed": 2`, 1)
	sr3, _ := postConfig(t, ts, other)
	if sr3.Cached || sr3.ID == sr.ID {
		t.Fatalf("different seed should not hit the cache: %+v", sr3)
	}
}

// TestConcurrentEventSubscribers streams the same run from several
// connections at once — a regression for the NDJSON writer mutating
// the stored events' shared backing arrays (caught by -race).
func TestConcurrentEventSubscribers(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	release := make(chan struct{})
	s.blockRuns = release

	sr, code := postConfig(t, ts, tinyConfig)
	if code != http.StatusAccepted {
		t.Fatalf("POST status = %d", code)
	}
	waitStatus(t, s, sr.ID, StatusRunning)

	// Raw line reader: t.Fatal is not legal off the test goroutine.
	subscribe := func() ([]string, error) {
		resp, err := http.Get(ts.URL + "/v1/experiments/" + sr.ID + "/events")
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		var lines []string
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			lines = append(lines, sc.Text())
		}
		return lines, sc.Err()
	}
	var wg sync.WaitGroup
	results := make([][]string, 4)
	errs := make([]error, 4)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = subscribe()
		}(i)
	}
	close(release)
	wg.Wait()
	for i, lines := range results {
		if errs[i] != nil {
			t.Fatalf("subscriber %d: %v", i, errs[i])
		}
		if len(lines) != len(results[0]) {
			t.Fatalf("subscriber %d saw %d events, subscriber 0 saw %d", i, len(lines), len(results[0]))
		}
		var last map[string]any
		if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
			t.Fatalf("subscriber %d bad terminal line: %v", i, err)
		}
		if last["type"] != "summary" {
			t.Fatalf("subscriber %d terminal event = %v", i, last)
		}
	}
}

// TestFollowersReceiveIdenticalBytes pins the encode-once contract of the
// event log: every event is marshalled and newline-framed exactly once, at
// append time, and each follower's stream is a single Write per event of
// those stored bytes. N concurrent followers racing a live run must
// therefore receive byte-identical NDJSON bodies — any per-follower
// re-encoding or re-framing (or a writer mutating a shared backing array,
// which -race would catch) breaks this.
func TestFollowersReceiveIdenticalBytes(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	release := make(chan struct{})
	s.blockRuns = release

	sr, code := postConfig(t, ts, tinyConfig)
	if code != http.StatusAccepted {
		t.Fatalf("POST status = %d", code)
	}
	waitStatus(t, s, sr.ID, StatusRunning)

	const followers = 8
	var wg sync.WaitGroup
	bodies := make([][]byte, followers)
	errs := make([]error, followers)
	for i := range bodies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/experiments/" + sr.ID + "/events")
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			bodies[i], errs[i] = io.ReadAll(resp.Body)
		}(i)
	}
	close(release)
	wg.Wait()

	for i := range bodies {
		if errs[i] != nil {
			t.Fatalf("follower %d: %v", i, errs[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("follower %d received different bytes than follower 0:\n%q\nvs\n%q",
				i, bodies[i], bodies[0])
		}
	}
	body := bodies[0]
	if len(body) == 0 || body[len(body)-1] != '\n' {
		t.Fatalf("stream is not newline-terminated: %q", body)
	}
	// Every line must be a standalone JSON document — exactly the bytes a
	// single json.Marshal produced, with no stray framing.
	for _, line := range bytes.Split(bytes.TrimSuffix(body, []byte{'\n'}), []byte{'\n'}) {
		var ev map[string]any
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, body := range []string{
		``,
		`not json`,
		`{"workload":{"preset":"NOPE"}}`,
		`{"workload":{"preset":"Wm"},"polcy":"EGS"}`,
		`{"workload":{"preset":"Wm"},"policy":"NOPE"}`,
	} {
		if _, code := postConfig(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("POST %q status = %d, want 400", body, code)
		}
	}
}

func TestUnknownRun(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, path := range []string{"/v1/experiments/nope", "/v1/experiments/nope/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		// 404s carry a JSON error object, never an empty body.
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("GET %s content-type = %q, want application/json", path, ct)
		}
		var body struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Errorf("GET %s body not JSON: %v", path, err)
		} else if body.Error == "" {
			t.Errorf("GET %s error body empty", path)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestGetDetailTimingsAndSource pins the detail endpoint's
// observability block: provenance plus lifecycle timings for runs
// simulated in this process.
func TestGetDetailTimingsAndSource(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	sr, _ := postConfig(t, ts, tinyConfig)
	readEvents(t, ts, sr.ID)

	var got getResponse
	if err := json.Unmarshal(mustGet(t, ts, "/v1/experiments/"+sr.ID), &got); err != nil {
		t.Fatal(err)
	}
	if got.Status != StatusDone || got.Source != SourceLive {
		t.Fatalf("detail = status %s source %s, want done/live", got.Status, got.Source)
	}
	tm := got.Timings
	if tm == nil || tm.SubmittedAt.IsZero() || tm.StartedAt == nil || tm.FinishedAt == nil {
		t.Fatalf("timings = %+v, want submitted/started/finished", tm)
	}
	if tm.StartedAt.Before(tm.SubmittedAt) || tm.FinishedAt.Before(*tm.StartedAt) {
		t.Fatalf("timings out of order: %+v", tm)
	}
	if tm.RunSeconds <= 0 {
		t.Fatalf("run_seconds = %v, want > 0", tm.RunSeconds)
	}
}

func TestCoalescedSubmission(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	release := make(chan struct{})
	s.blockRuns = release // pin the first run in Running

	sr1, code1 := postConfig(t, ts, tinyConfig)
	if code1 != http.StatusAccepted {
		t.Fatalf("POST status = %d", code1)
	}
	waitStatus(t, s, sr1.ID, StatusRunning)
	sr2, code2 := postConfig(t, ts, tinyConfig)
	if code2 != http.StatusAccepted {
		t.Fatalf("second POST status = %d", code2)
	}
	if sr2.ID != sr1.ID || !sr2.Coalesced || sr2.Cached {
		t.Fatalf("identical in-flight POST = %+v, want coalesced onto %s", sr2, sr1.ID)
	}
	if s.registry.Len() != 1 {
		t.Fatalf("runs = %d, want 1", s.registry.Len())
	}
	if s.cache.Coalesced() != 1 {
		t.Fatalf("coalesced counter = %d, want 1", s.cache.Coalesced())
	}
	close(release)
	events := readEvents(t, ts, sr1.ID)
	if events[len(events)-1]["type"] != "summary" {
		t.Fatal("run did not finish after release")
	}
}

// TestListExperiments pins GET /v1/experiments: every resident run in
// sequence order with id, fingerprint, status and source — the only
// way to find a result again without having kept its ID.
func TestListExperiments(t *testing.T) {
	s, ts := newTestServer(t, Options{})

	// Empty daemon: an empty list, not a 404 or null.
	var list listResponse
	if err := json.Unmarshal(mustGet(t, ts, "/v1/experiments"), &list); err != nil {
		t.Fatal(err)
	}
	if list.Experiments == nil || len(list.Experiments) != 0 {
		t.Fatalf("empty list = %+v", list.Experiments)
	}

	release := make(chan struct{})
	s.blockRuns = release // pin the second run in Running for a mixed-status list
	sr1, _ := postConfig(t, ts, tinyConfig)
	waitStatus(t, s, sr1.ID, StatusRunning)
	sr2, _ := postConfig(t, ts, strings.Replace(tinyConfig, `"seed": 1`, `"seed": 2`, 1))

	if err := json.Unmarshal(mustGet(t, ts, "/v1/experiments"), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Experiments) != 2 {
		t.Fatalf("list = %d entries, want 2", len(list.Experiments))
	}
	for i, want := range []submitResponse{sr1, sr2} {
		got := list.Experiments[i]
		if got.ID != want.ID || got.Hash != want.Hash || got.Source != SourceLive {
			t.Fatalf("list[%d] = %+v, want run %s", i, got, want.ID)
		}
		if got.URL != "/v1/experiments/"+want.ID || got.EventsURL != got.URL+"/events" {
			t.Fatalf("list[%d] urls = %+v", i, got)
		}
	}
	if st := list.Experiments[0].Status; st != StatusRunning && st != StatusQueued {
		t.Fatalf("list[0].Status = %s", st)
	}
	close(release)
	readEvents(t, ts, sr1.ID)
	readEvents(t, ts, sr2.ID)

	if err := json.Unmarshal(mustGet(t, ts, "/v1/experiments"), &list); err != nil {
		t.Fatal(err)
	}
	for i, item := range list.Experiments {
		if item.Status != StatusDone {
			t.Fatalf("list[%d] after completion = %+v", i, item)
		}
	}
}

func mustGet(t *testing.T, ts *httptest.Server, path string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", path, resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// waitStatus polls until the run reaches the wanted state (transitions
// happen in the execute goroutine just after POST returns).
func waitStatus(t *testing.T, s *Server, id string, want Status) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.registry.Get(id).Status() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("run %s never reached %s", id, want)
}

func TestAdmissionBound(t *testing.T) {
	s, ts := newTestServer(t, Options{MaxConcurrent: 1, QueueDepth: 1, Parallelism: 1})
	release := make(chan struct{})
	s.blockRuns = release

	mk := func(seed int) string {
		return strings.Replace(tinyConfig, `"seed": 1`, fmt.Sprintf(`"seed": %d`, seed), 1)
	}
	// Seed 1 takes the only slot (pinned Running); seed 2 waits in the
	// queue; seed 3 must bounce with 429.
	sr1, code := postConfig(t, ts, mk(1))
	if code != http.StatusAccepted {
		t.Fatalf("POST 1 status = %d", code)
	}
	waitStatus(t, s, sr1.ID, StatusRunning)
	sr2, code := postConfig(t, ts, mk(2))
	if code != http.StatusAccepted {
		t.Fatalf("POST 2 status = %d", code)
	}
	if _, code := postConfig(t, ts, mk(3)); code != http.StatusTooManyRequests {
		t.Fatalf("queue-full POST status = %d, want 429", code)
	}
	// An identical re-submission is coalesced, not rejected, even with
	// the queue full — the cache answers it without admission.
	srDup, code := postConfig(t, ts, mk(1))
	if code != http.StatusAccepted || srDup.ID != sr1.ID || !srDup.Coalesced {
		t.Fatalf("identical POST while full = %+v (%d)", srDup, code)
	}
	close(release)
	readEvents(t, ts, sr1.ID)
	readEvents(t, ts, sr2.ID)
}

func TestGracefulShutdownDrains(t *testing.T) {
	s := New(Options{Parallelism: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sr, code := postConfig(t, ts, tinyConfig)
	if code != http.StatusAccepted {
		t.Fatalf("POST status = %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The in-flight run drained to completion.
	run := s.registry.Get(sr.ID)
	if st := run.Status(); st != StatusDone {
		t.Fatalf("run status after drain = %s, want done", st)
	}
	// New submissions are refused while draining/closed.
	if _, code := postConfig(t, ts, tinyConfig); code != http.StatusServiceUnavailable {
		t.Fatalf("POST after shutdown = %d, want 503", code)
	}
	// Health reports draining — with a 503, so coordinator health
	// rings and load balancers stop routing to this worker instead of
	// discovering the drain one bounced dispatch at a time.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz status code while draining = %d, want 503", resp.StatusCode)
	}
	if hz.Status != "draining" {
		t.Fatalf("healthz status = %q, want draining", hz.Status)
	}
}

func TestPprofEndpointsGatedByOption(t *testing.T) {
	_, ts := newTestServer(t, Options{EnablePprof: true})
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index = %d, want 200", resp.StatusCode)
	}
	_, off := newTestServer(t, Options{})
	resp, err = http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without EnablePprof = %d, want 404", resp.StatusCode)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s, ts := newTestServer(t, Options{Version: "test-1.2.3"})
	sr, _ := postConfig(t, ts, tinyConfig)
	readEvents(t, ts, sr.ID)
	postConfig(t, ts, tinyConfig) // cache hit

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz.Status != "ok" || hz.Version != "test-1.2.3" || hz.Runs != 1 || hz.CacheSize != 1 {
		t.Fatalf("healthz = %+v", hz)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	text := buf.String()
	for _, want := range []string{
		"koalad_queue_depth 0",
		"koalad_active_runs 0",
		"koalad_active_simulations 0",
		"koalad_replications_total 2",
		"koalad_cache_hits_total 1",
		"koalad_cache_misses_total 1",
		"koalad_cache_hit_rate 0.5",
		"koalad_cache_size 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
	if s.cache.HitRate() != 0.5 {
		t.Errorf("HitRate = %v, want 0.5", s.cache.HitRate())
	}
}

// TestRetentionBound pins that a long-lived server forgets the oldest
// terminal runs beyond MaxRetained: registry and cache stay bounded.
func TestRetentionBound(t *testing.T) {
	s, ts := newTestServer(t, Options{MaxRetained: 1})
	mk := func(seed int) string {
		return strings.Replace(tinyConfig, `"seed": 1`, fmt.Sprintf(`"seed": %d`, seed), 1)
	}
	sr1, _ := postConfig(t, ts, mk(1))
	readEvents(t, ts, sr1.ID)
	sr2, _ := postConfig(t, ts, mk(2))
	readEvents(t, ts, sr2.ID)

	// Retirement happens in the execute goroutine right after the
	// terminal event; give it a moment.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && s.registry.Get(sr1.ID) != nil {
		time.Sleep(time.Millisecond)
	}
	if s.registry.Get(sr1.ID) != nil {
		t.Fatal("oldest run not evicted beyond the retention bound")
	}
	if s.registry.Get(sr2.ID) == nil {
		t.Fatal("newest run evicted")
	}
	if s.cache.Len() != 1 {
		t.Fatalf("cache size = %d, want 1", s.cache.Len())
	}
	// The evicted run's endpoints now 404; its config re-simulates on a
	// fresh POST (a miss, not a hit).
	resp, err := http.Get(ts.URL + "/v1/experiments/" + sr1.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET evicted run = %d, want 404", resp.StatusCode)
	}
	missesBefore := s.cache.Misses()
	sr3, code := postConfig(t, ts, mk(1))
	if code != http.StatusAccepted || sr3.Cached || sr3.ID == sr1.ID {
		t.Fatalf("re-POST of evicted config = %+v (%d)", sr3, code)
	}
	if s.cache.Misses() != missesBefore+1 {
		t.Fatal("re-POST of evicted config was not a miss")
	}
	readEvents(t, ts, sr3.ID)
}

// TestFailedRunLeavesCache pins retry semantics: a failed run is
// evicted, so the same config can be resubmitted.
func TestFailedRunLeavesCache(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	// Valid at decode time, fails at run time: a grid too small for the
	// workload's initial size triggers submission errors.
	bad := `{
		"workload": {"name":"toobig","jobs":2,"inter_arrival":30,"malleable_fraction":1,"initial_size":64,"rigid_size":2},
		"grid": {"clusters":[{"name":"A","nodes":4}]},
		"no_background": true,
		"runs": 1
	}`
	sr, code := postConfig(t, ts, bad)
	if code != http.StatusAccepted {
		t.Fatalf("POST status = %d", code)
	}
	events := readEvents(t, ts, sr.ID)
	last := events[len(events)-1]
	if last["type"] != "error" {
		t.Fatalf("terminal event = %v, want error", last)
	}
	if run := s.registry.Get(sr.ID); run.Status() != StatusFailed {
		t.Fatal("run not marked failed")
	}
	if s.cache.Len() != 0 {
		t.Fatal("failed run stayed in the cache")
	}
	// Re-POST starts a fresh run rather than hitting the failed one.
	sr2, code2 := postConfig(t, ts, bad)
	if code2 != http.StatusAccepted || sr2.ID == sr.ID || sr2.Cached {
		t.Fatalf("re-POST after failure = %+v (%d)", sr2, code2)
	}
	readEvents(t, ts, sr2.ID)
}
