package server

import (
	"sync"
	"sync/atomic"
)

// Cache is koalad's content-addressed result index: runs keyed by the
// canonical fingerprint of their config (experiment.Fingerprint). The
// simulation is deterministic in the fingerprinted fields, so a hash
// hit IS the result — re-submitting an identical config never
// re-simulates. In-flight runs are stored too, which coalesces
// concurrent identical submissions onto one execution.
type Cache struct {
	mu     sync.Mutex
	byHash map[string]*Run

	hits      atomic.Int64 // POSTs answered by a completed run
	coalesced atomic.Int64 // POSTs attached to an in-flight run
	misses    atomic.Int64 // POSTs that started a new run
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{byHash: make(map[string]*Run)}
}

// Lookup returns the run owning hash, or nil. It does not touch the
// hit/miss counters — the server classifies the outcome (hit, coalesce
// or miss) once it knows the run's status.
func (c *Cache) Lookup(hash string) *Run {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.byHash[hash]
}

// Store indexes a run under its hash.
func (c *Cache) Store(run *Run) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.byHash[run.Hash] = run
}

// Evict removes hash if it still maps to run (failed runs leave the
// cache so a re-submission can retry).
func (c *Cache) Evict(run *Run) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.byHash[run.Hash] == run {
		delete(c.byHash, run.Hash)
	}
}

// Len returns the number of indexed runs.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byHash)
}

// Hits, Coalesced and Misses expose the counters.
func (c *Cache) Hits() int64      { return c.hits.Load() }
func (c *Cache) Coalesced() int64 { return c.coalesced.Load() }
func (c *Cache) Misses() int64    { return c.misses.Load() }

// HitRate returns hits/(hits+misses), or 0 before any classified POST.
func (c *Cache) HitRate() float64 {
	h, m := float64(c.hits.Load()), float64(c.misses.Load())
	if h+m == 0 {
		return 0
	}
	return h / (h + m)
}

func (c *Cache) countHit()      { c.hits.Add(1) }
func (c *Cache) countCoalesce() { c.coalesced.Add(1) }
func (c *Cache) countMiss()     { c.misses.Add(1) }
