package server

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"repro/internal/experiment"
)

// TestRunManyFollowersCoalescedWakeup pins the lazy-broadcast contract
// of Run.append/Run.next under contention: many concurrent followers
// replay-then-follow one run while an appender races them, and every
// follower must observe the complete event log, in order, ending at
// the terminal event — no lost wakeups, no duplicated or reordered
// events, no follower wedged on a channel the appender forgot to
// close. Run under -race this also pins the locking itself.
func TestRunManyFollowersCoalescedWakeup(t *testing.T) {
	const (
		followers = 64
		appends   = 200
	)
	run := newRun("exp-1", "hash", experiment.Config{Name: "wakeup"}, SourceLive)

	type payload struct {
		Type string `json:"type"`
		Seq  int    `json:"seq"`
	}

	var wg sync.WaitGroup
	logs := make([][]int, followers)
	for f := 0; f < followers; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			i := 0
			for {
				evs, terminal, changed := run.next(i)
				for _, raw := range evs {
					var p payload
					if err := json.Unmarshal(raw, &p); err != nil {
						t.Errorf("follower %d: event %d: %v", f, i, err)
						return
					}
					logs[f] = append(logs[f], p.Seq)
					i++
				}
				if terminal {
					return
				}
				if len(evs) > 0 {
					continue
				}
				<-changed
			}
		}(f)
	}

	for seq := 0; seq < appends; seq++ {
		terminal := Status("")
		if seq == appends-1 {
			terminal = StatusDone
		}
		run.append(payload{Type: "tick", Seq: seq}, terminal)
	}
	wg.Wait()

	for f, log := range logs {
		if len(log) != appends {
			t.Fatalf("follower %d saw %d of %d events", f, len(log), appends)
		}
		for i, seq := range log {
			if seq != i {
				t.Fatalf("follower %d: event %d has seq %d (reordered or skipped)", f, i, seq)
			}
		}
	}
}

// TestRunNextBlocksOnlyWhenIdle pins the other half of the contract:
// next hands out a wakeup channel only when the subscriber has nothing
// to consume, and appends on a run nobody follows never allocate one.
func TestRunNextBlocksOnlyWhenIdle(t *testing.T) {
	run := newRun("exp-1", "hash", experiment.Config{}, SourceLive)

	// Nothing appended: a subscriber at the head must get a channel.
	evs, terminal, changed := run.next(0)
	if len(evs) != 0 || terminal || changed == nil {
		t.Fatalf("next(0) on empty run = %d events, terminal=%v, changed=%v", len(evs), terminal, changed == nil)
	}

	run.append(map[string]string{"type": "tick"}, "")
	select {
	case <-changed:
	default:
		t.Fatal("append did not close the subscriber's wakeup channel")
	}

	// With events pending, next must return them and no channel: the
	// subscriber's job is to drain, not to wait.
	evs, terminal, changed = run.next(0)
	if len(evs) != 1 || terminal || changed != nil {
		t.Fatalf("next(0) with 1 pending = %d events, terminal=%v, changed nil=%v", len(evs), terminal, changed == nil)
	}

	// Appends with no blocked subscriber keep the channel nil (no churn).
	run.mu.Lock()
	if run.changed != nil {
		run.mu.Unlock()
		t.Fatal("append allocated a wakeup channel with no waiter")
	}
	run.mu.Unlock()

	// Terminal state: events + terminal, never a channel.
	run.append(map[string]string{"type": "summary"}, StatusDone)
	evs, terminal, changed = run.next(1)
	if len(evs) != 1 || !terminal || changed != nil {
		t.Fatalf("next at terminal = %d events, terminal=%v, changed nil=%v", len(evs), terminal, changed == nil)
	}
	// Fully drained and terminal.
	evs, terminal, changed = run.next(2)
	if len(evs) != 0 || !terminal || changed != nil {
		t.Fatalf("next past terminal = %d events, terminal=%v, changed nil=%v", len(evs), terminal, changed == nil)
	}
}

// TestRegistryConcurrentReadersAndWriters exercises the RWMutex'd
// registry under -race: resolves and lists racing creates and removes.
func TestRegistryConcurrentReadersAndWriters(t *testing.T) {
	g := NewRegistry()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				g.Get(fmt.Sprintf("exp-%d", i%64+1))
				g.Len()
				if i%16 == 0 {
					g.All()
				}
			}
		}()
	}
	for i := 0; i < 64; i++ {
		run := g.Create("h", experiment.Config{}, nil)
		if i%2 == 0 {
			g.Remove(run.ID)
		}
	}
	close(stop)
	wg.Wait()
	if got := g.Len(); got != 32 {
		t.Fatalf("registry holds %d runs, want 32", got)
	}
}
