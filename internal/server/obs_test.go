package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// promSample is one parsed exposition sample line.
type promSample struct {
	name   string
	labels string // raw {...} content, "" for none
	value  float64
}

// promFamily is one parsed metric family: HELP + TYPE + its samples.
type promFamily struct {
	help    string
	typ     string
	samples []promSample
}

// parseProm is a strict Prometheus text-format (0.0.4) parser: every
// sample must belong to a family already declared with # HELP and
// # TYPE, comments must be well-formed, and values must parse. It
// returns families keyed by name. This is the round-trip check on the
// /metrics handler — a malformed line a real scraper would reject
// fails the test here.
func parseProm(t *testing.T, text string) map[string]*promFamily {
	t.Helper()
	fams := make(map[string]*promFamily)
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, ok := strings.Cut(rest, " ")
			if !ok || name == "" || help == "" {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			if fams[name] != nil {
				t.Fatalf("line %d: duplicate HELP for %s", ln+1, name)
			}
			fams[name] = &promFamily{help: help}
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || (typ != "counter" && typ != "gauge" && typ != "histogram") {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			f := fams[name]
			if f == nil {
				t.Fatalf("line %d: TYPE for %s before its HELP", ln+1, name)
			}
			f.typ = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment %q", ln+1, line)
		}

		metric, valueStr, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("line %d: malformed sample %q", ln+1, line)
		}
		name, labels := metric, ""
		if i := strings.IndexByte(metric, '{'); i >= 0 {
			if !strings.HasSuffix(metric, "}") {
				t.Fatalf("line %d: unterminated labels in %q", ln+1, metric)
			}
			name, labels = metric[:i], metric[i+1:len(metric)-1]
		}
		var value float64
		if valueStr == "+Inf" {
			// only histogram buckets carry +Inf, and only in le=
			t.Fatalf("line %d: +Inf sample value in %q", ln+1, line)
		}
		value, err := strconv.ParseFloat(valueStr, 64)
		if err != nil {
			t.Fatalf("line %d: unparseable value in %q: %v", ln+1, line, err)
		}
		// Resolve the owning family: exact name, or the base name for
		// histogram series (_bucket/_sum/_count).
		owner := fams[name]
		if owner == nil {
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if base, ok := strings.CutSuffix(name, suffix); ok && fams[base] != nil && fams[base].typ == "histogram" {
					owner = fams[base]
					break
				}
			}
		}
		if owner == nil {
			t.Fatalf("line %d: sample %s has no preceding HELP/TYPE", ln+1, name)
		}
		if owner.typ == "" {
			t.Fatalf("line %d: sample %s has HELP but no TYPE", ln+1, name)
		}
		owner.samples = append(owner.samples, promSample{name: name, labels: labels, value: value})
	}
	return fams
}

// checkHistogram validates one histogram family's invariants per label
// set: cumulative non-decreasing buckets, an le="+Inf" bucket equal to
// _count, and a _sum/_count pair.
func checkHistogram(t *testing.T, name string, f *promFamily) {
	t.Helper()
	type series struct {
		buckets []promSample
		sum     *promSample
		count   *promSample
	}
	// Key bucket series by their labels minus le.
	stripLe := func(labels string) string {
		var kept []string
		for _, part := range strings.Split(labels, ",") {
			if part != "" && !strings.HasPrefix(part, "le=") {
				kept = append(kept, part)
			}
		}
		sort.Strings(kept)
		return strings.Join(kept, ",")
	}
	bySeries := make(map[string]*series)
	get := func(k string) *series {
		if bySeries[k] == nil {
			bySeries[k] = &series{}
		}
		return bySeries[k]
	}
	for i, s := range f.samples {
		k := stripLe(s.labels)
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			get(k).buckets = append(get(k).buckets, f.samples[i])
		case strings.HasSuffix(s.name, "_sum"):
			get(k).sum = &f.samples[i]
		case strings.HasSuffix(s.name, "_count"):
			get(k).count = &f.samples[i]
		default:
			t.Fatalf("%s: stray histogram sample %s", name, s.name)
		}
	}
	for k, s := range bySeries {
		if len(s.buckets) == 0 || s.sum == nil || s.count == nil {
			t.Fatalf("%s{%s}: incomplete histogram (buckets=%d sum=%v count=%v)",
				name, k, len(s.buckets), s.sum != nil, s.count != nil)
		}
		prev := -1.0
		sawInf := false
		for _, b := range s.buckets {
			if b.value < prev {
				t.Fatalf("%s{%s}: buckets not cumulative (%g after %g)", name, k, b.value, prev)
			}
			prev = b.value
			if strings.Contains(b.labels, `le="+Inf"`) {
				sawInf = true
				if b.value != s.count.value {
					t.Fatalf("%s{%s}: +Inf bucket %g != count %g", name, k, b.value, s.count.value)
				}
			}
		}
		if !sawInf {
			t.Fatalf("%s{%s}: no le=\"+Inf\" bucket", name, k)
		}
	}
}

// TestMetricsExpositionRoundTrip scrapes the live /metrics handler
// after a run and parses every line with a strict text-format parser:
// each sample must trace back to a HELP/TYPE pair, and each histogram
// family must be internally consistent. This is the guard that keeps
// the hand-rolled exposition and the registry renderer scrapeable by
// real Prometheus.
func TestMetricsExpositionRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	sr, _ := postConfig(t, ts, tinyConfig)
	readEvents(t, ts, sr.ID)

	text := string(mustGet(t, ts, "/metrics"))
	fams := parseProm(t, text)

	for _, want := range []struct{ name, typ string }{
		{"koalad_goroutines", "gauge"},
		{"koalad_registry_runs", "gauge"},
		{"koalad_queue_depth", "gauge"},
		{"koalad_replications_total", "counter"},
		{"koalad_cache_hit_rate", "gauge"},
		{"koalad_queue_wait_seconds", "histogram"},
		{"koalad_run_duration_seconds", "histogram"},
		{"koalad_follower_write_stall_seconds", "histogram"},
		{"koalad_event_followers", "gauge"},
		{"koalad_follower_disconnects_total", "counter"},
	} {
		f := fams[want.name]
		if f == nil {
			t.Fatalf("family %s missing from /metrics:\n%s", want.name, text)
		}
		if f.typ != want.typ {
			t.Fatalf("family %s type = %s, want %s", want.name, f.typ, want.typ)
		}
		if len(f.samples) == 0 {
			t.Fatalf("family %s has no samples", want.name)
		}
	}
	for name, f := range fams {
		if f.typ == "histogram" {
			checkHistogram(t, name, f)
		}
	}
	// The process gauges must carry live values: a running server has
	// goroutines, and exactly the one completed run is registered.
	if v := fams["koalad_goroutines"].samples[0].value; v < 1 {
		t.Errorf("koalad_goroutines = %g, want >= 1", v)
	}
	if v := fams["koalad_registry_runs"].samples[0].value; v != 1 {
		t.Errorf("koalad_registry_runs = %g, want 1", v)
	}
	// The completed run must have landed one observation in the queue
	// and duration histograms.
	for _, name := range []string{"koalad_queue_wait_seconds", "koalad_run_duration_seconds"} {
		count := 0.0
		for _, s := range fams[name].samples {
			if s.name == name+"_count" {
				count = s.value
			}
		}
		if count != 1 {
			t.Errorf("%s_count = %g, want 1", name, count)
		}
	}
}

// TestHealthzShape is the JSON-shape regression: the exact key set of
// /healthz is part of the operational API — dashboards and the CI
// multinode smoke select on these fields, so adding is fine, renaming
// or dropping is a break this test catches.
func TestHealthzShape(t *testing.T) {
	_, ts := newTestServer(t, Options{Version: "v-test", Role: "coordinator"})
	var body map[string]any
	if err := json.Unmarshal(mustGet(t, ts, "/healthz"), &body); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"status", "version", "role", "backend", "uptime_seconds",
		"active_runs", "queued_runs", "in_flight_replications",
		"followers", "runs", "cache_size",
	}
	got := make([]string, 0, len(body))
	for k := range body {
		got = append(got, k)
	}
	sort.Strings(got)
	sorted := append([]string(nil), want...)
	sort.Strings(sorted)
	if strings.Join(got, ",") != strings.Join(sorted, ",") {
		t.Fatalf("healthz keys = %v, want %v", got, sorted)
	}
	if body["status"] != "ok" || body["version"] != "v-test" || body["backend"] != "local" {
		t.Fatalf("healthz values = %v", body)
	}
	if _, ok := body["uptime_seconds"].(float64); !ok {
		t.Fatalf("uptime_seconds is %T, want number", body["uptime_seconds"])
	}
}

// TestFollowerDisconnectAccounting pins the stream accounting: a
// follower that leaves before the run's terminal event decrements the
// attached-followers gauge and increments the disconnect counter.
func TestFollowerDisconnectAccounting(t *testing.T) {
	release := make(chan struct{})
	s, ts := newTestServer(t, Options{})
	s.blockRuns = release // pin the run in Running so the follower must wait

	sr, code := postConfig(t, ts, tinyConfig)
	if code != http.StatusAccepted {
		t.Fatalf("POST status = %d", code)
	}

	// Attach a follower, read the first event, then hang up mid-stream.
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/experiments/"+sr.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := io.ReadFull(resp.Body, buf); err != nil {
		t.Fatal(err) // the accepted event is already in the log
	}
	waitFor(t, "follower attached", func() bool { return s.followers.Value() == 1 })
	cancel()
	resp.Body.Close()

	waitFor(t, "follower accounted", func() bool {
		return s.followers.Value() == 0 && s.followerDisconnects.Value() == 1
	})

	// Release the run and drain cleanly; a clean follower then reads to
	// the terminal event without touching the disconnect counter. The
	// closed channel is left in place — clearing blockRuns here would
	// race the execute goroutine's read, and receives from a closed
	// channel fall through anyway.
	close(release)
	readEvents(t, ts, sr.ID)
	if n := s.followerDisconnects.Value(); n != 1 {
		t.Fatalf("disconnects after clean read = %d, want 1", n)
	}
	if s.followers.Value() != 0 {
		t.Fatalf("followers gauge = %d after streams closed", s.followers.Value())
	}
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestTraceEndpoint pins the single-node trace: every lifecycle phase
// appears, correctly parented — replications under dispatch, dispatch
// and queue under the root run span.
func TestTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	sr, _ := postConfig(t, ts, tinyConfig)
	readEvents(t, ts, sr.ID)

	var trace obs.TraceJSON
	if err := json.Unmarshal(mustGet(t, ts, "/v1/experiments/"+sr.ID+"/trace"), &trace); err != nil {
		t.Fatal(err)
	}
	if trace.TraceID == "" {
		t.Fatal("trace has no ID")
	}
	byName := make(map[string][]obs.Span)
	for _, sp := range trace.Spans {
		byName[sp.Name] = append(byName[sp.Name], sp)
	}
	for _, name := range []string{"run", "admit", "queue", "dispatch", "replication", "stream-follower"} {
		if len(byName[name]) == 0 {
			t.Fatalf("trace missing %q span: %+v", name, trace.Spans)
		}
	}
	root := byName["run"][0]
	if root.Parent != "" {
		t.Fatalf("run span has parent %q, want root", root.Parent)
	}
	if root.End.IsZero() {
		t.Fatal("run span never ended")
	}
	dispatch := byName["dispatch"][0]
	if dispatch.Parent != root.ID {
		t.Fatalf("dispatch parent = %q, want run span %q", dispatch.Parent, root.ID)
	}
	if len(byName["replication"]) != 2 {
		t.Fatalf("replication spans = %d, want 2", len(byName["replication"]))
	}
	for _, rep := range byName["replication"] {
		if rep.Parent != dispatch.ID {
			t.Fatalf("replication parent = %q, want dispatch %q", rep.Parent, dispatch.ID)
		}
		if rep.End.Before(rep.Start) {
			t.Fatalf("replication span ends before it starts: %+v", rep)
		}
	}

	// Unknown IDs are a 404 like the other run endpoints.
	resp, err := http.Get(ts.URL + "/v1/experiments/nope/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace of unknown run = %d, want 404", resp.StatusCode)
	}
}
