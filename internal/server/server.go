// Package server implements koalad, the long-running experiment
// service: clients POST an experiment.Config in its JSON form to
// /v1/experiments, the server validates and admits it onto a bounded
// run pool, streams per-replication progress as NDJSON from
// /v1/experiments/{id}/events, and indexes every completed summary in
// a content-addressed cache keyed by the config's canonical
// fingerprint — an identical re-submission is answered from the cache
// without re-simulating. Execution uses the streaming aggregation path
// (experiment.RunStream), so the daemon's memory per run is bounded by
// the aggregate sketches, not the job count.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backend"
	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/store"
)

// Options tune the daemon.
type Options struct {
	// Parallelism is the per-run simulation parallelism handed to
	// experiment configs that do not set their own (0 = one worker per
	// CPU, the pool default).
	Parallelism int
	// MaxConcurrent bounds how many runs execute at once (default 2).
	MaxConcurrent int
	// QueueDepth bounds how many admitted runs may wait for a slot;
	// beyond it POST returns 429 (default 8).
	QueueDepth int
	// MaxRetained bounds how many terminal runs (and their cached
	// summaries and event logs) stay resident; beyond it the oldest are
	// forgotten, so a long-lived daemon's memory does not grow with its
	// submission history (default 256).
	MaxRetained int
	// Version is reported in /healthz and the startup banner.
	Version string
	// EnablePprof mounts net/http/pprof under /debug/pprof/ on the
	// daemon's mux.
	EnablePprof bool
	// Store, when non-nil, makes the daemon durable: completed summaries
	// are written through to the on-disk result store, run transitions
	// are journaled, and Recover() replays both at startup. Nil keeps
	// the original fully in-memory behavior.
	Store *store.Store
	// JournalCompactEvery triggers a journal compaction (rewriting it to
	// just the in-flight runs' records) once the journal holds at least
	// this many records (default 256).
	JournalCompactEvery int
	// Backend executes admitted runs: nil means in-process
	// (backend.Local); a backend.Remote turns this daemon into a
	// coordinator that shards runs across worker daemons. Runs
	// admitted through the worker execute endpoint always run
	// in-process regardless.
	Backend backend.Backend
	// Role labels the daemon's place in a multi-node topology
	// ("coordinator", "worker"); reported on /healthz.
	Role string
	// Log receives one structured record per lifecycle transition
	// (optional; nil discards).
	Log *slog.Logger
	// Metrics is the registry the daemon's histograms and gauges land
	// on; share one instance with the store and backend so /metrics
	// scrapes the whole process. Nil creates a private registry.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 8
	}
	if o.MaxRetained <= 0 {
		o.MaxRetained = 256
	}
	if o.JournalCompactEvery <= 0 {
		o.JournalCompactEvery = 256
	}
	if o.Log == nil {
		o.Log = obs.NopLogger()
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
	}
	return o
}

// Server is the koalad core, embeddable in tests via Handler().
type Server struct {
	opts     Options
	log      *slog.Logger
	metrics  *obs.Registry
	registry *Registry
	cache    *Cache
	store    *store.Store // nil = in-memory only

	// Latency histograms (Prometheus exposition via /metrics).
	queueWait     *obs.Histogram // admission -> concurrency slot
	runDuration   *obs.Histogram // slot -> terminal event
	followerStall *obs.Histogram // single event write on a follower stream

	followers           *obs.Gauge   // NDJSON streams currently attached
	followerDisconnects *obs.Counter // followers that left before the terminal event

	// backend executes admitted runs; local is the in-process backend
	// that worker-endpoint runs (and Remote failovers) use.
	backend backend.Backend
	local   backend.Backend

	sem    chan struct{} // run slots
	queued atomic.Int64  // admitted, waiting for a slot

	workerExecutes atomic.Int64 // runs admitted via the execute endpoint
	workerDeduped  atomic.Int64 // execute requests answered without simulating

	activeRuns atomic.Int64
	activeSims atomic.Int64 // replications currently simulating
	repsDone   atomic.Int64
	runsDone   atomic.Int64
	runsFailed atomic.Int64

	storeHits     atomic.Int64 // POSTs answered by a disk-restored result
	storeMisses   atomic.Int64 // POSTs that missed memory and disk and simulated
	storeRestored atomic.Int64 // results re-indexed from the store
	storeReplayed atomic.Int64 // in-flight runs re-enqueued by recovery
	compactions   atomic.Int64 // journal compactions performed

	retireMu sync.Mutex // guards retired
	retired  []string   // terminal run IDs, oldest first

	admitMu sync.Mutex // serializes cache lookup+store on POST
	wg      sync.WaitGroup
	ctx     context.Context
	cancel  context.CancelFunc
	closed  atomic.Bool
	started time.Time

	// blockRuns, when non-nil, stalls every run after it turns Running
	// until the channel closes. Tests use it to pin in-flight states
	// (coalescing, queue admission) that are otherwise too fast to race.
	blockRuns chan struct{}
}

// New assembles a server.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:     opts,
		log:      opts.Log,
		metrics:  opts.Metrics,
		registry: NewRegistry(),
		cache:    NewCache(),
		store:    opts.Store,
		local:    backend.Local{},
		sem:      make(chan struct{}, opts.MaxConcurrent),
		ctx:      ctx,
		cancel:   cancel,
		started:  time.Now(),
	}
	s.backend = opts.Backend
	if s.backend == nil {
		s.backend = s.local
	}
	s.queueWait = s.metrics.Histogram("koalad_queue_wait_seconds",
		"Time from admission to taking a concurrency slot.", obs.DefaultLatencyBuckets())
	s.runDuration = s.metrics.Histogram("koalad_run_duration_seconds",
		"Time from taking a slot to the terminal event.", obs.DefaultLatencyBuckets())
	s.followerStall = s.metrics.Histogram("koalad_follower_write_stall_seconds",
		"Time writing one event to an NDJSON follower (slow consumers stall here).", obs.DefaultLatencyBuckets())
	s.followers = s.metrics.Gauge("koalad_event_followers",
		"NDJSON event streams currently attached.")
	s.followerDisconnects = s.metrics.Counter("koalad_follower_disconnects_total",
		"Followers that disconnected before the run's terminal event.")
	return s
}

// Cache exposes the result cache (tests and metrics).
func (s *Server) Cache() *Cache { return s.cache }

// Handler returns the daemon's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/experiments", s.handleSubmit)
	mux.HandleFunc("POST "+backend.ExecutePath, s.handleExecute)
	mux.HandleFunc("GET /v1/experiments", s.handleList)
	mux.HandleFunc("GET /v1/experiments/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/experiments/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/experiments/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.opts.EnablePprof {
		// The debug mux: net/http/pprof profiles of the live daemon
		// (goroutine, heap, CPU, trace), for diagnosing slow or stuck runs
		// without restarting it. No method restriction, matching stdlib
		// registration — `go tool pprof` POSTs to /debug/pprof/symbol.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Shutdown drains the daemon: new submissions are refused immediately,
// admitted runs (queued and running) are given until ctx expires to
// finish, then the shared run context is canceled to abort stragglers.
// It returns nil when everything drained, ctx.Err() otherwise.
func (s *Server) Shutdown(ctx context.Context) error {
	// Flip closed under the admission lock: once Shutdown proceeds to
	// wait, no POST can be past its authoritative closed check and about
	// to add a run.
	s.admitMu.Lock()
	s.closed.Store(true)
	s.admitMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancel()
		<-done
		return ctx.Err()
	}
}

// submitResponse is the POST body: where the run lives and whether the
// cache answered it.
type submitResponse struct {
	ID        string `json:"id"`
	Hash      string `json:"hash"`
	Status    Status `json:"status"`
	Cached    bool   `json:"cached"`
	Coalesced bool   `json:"coalesced,omitempty"`
	URL       string `json:"url"`
	EventsURL string `json:"events_url"`
}

func runURLs(id string) (string, string) {
	u := "/v1/experiments/" + id
	return u, u + "/events"
}

// Admission sentinels, mapped to HTTP statuses by the handlers.
var (
	errDraining  = errors.New("server is draining")
	errQueueFull = errors.New("run queue is full")
)

// decodeSubmission parses and validates a submitted ConfigSpec and
// resolves its fingerprint, writing the error response itself on
// failure (ok=false).
func (s *Server) decodeSubmission(w http.ResponseWriter, r *http.Request) (spec *experiment.ConfigSpec, cfg experiment.Config, hash string, ok bool) {
	spec, err := experiment.DecodeConfigSpec(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return nil, experiment.Config{}, "", false
	}
	cfg, err = spec.Config()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return nil, experiment.Config{}, "", false
	}
	if spec.Parallelism == 0 {
		cfg.Parallelism = s.opts.Parallelism
	}
	hash, err = experiment.Fingerprint(cfg)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return nil, experiment.Config{}, "", false
	}
	return spec, cfg, hash, true
}

// admit resolves (cfg, hash) to the run that serves it: an existing
// cached run (done, or in-flight to coalesce onto), a result adopted
// from the on-disk store, or — created=true — a freshly admitted run
// whose execution has been spawned. status is the run's state as
// classified under the admission lock (counters and the HTTP response
// must agree, even if the run finishes in between). localOnly pins a
// freshly admitted run to the in-process backend (the worker execute
// path must never re-forward). parent, when set, is the propagated
// span identity of the coordinator dispatch that submitted this run;
// a freshly admitted run then records its spans into the
// coordinator's trace (same trace ID, root parented under the
// dispatch span).
func (s *Server) admit(spec *experiment.ConfigSpec, cfg experiment.Config, hash string, localOnly bool, parent obs.SpanContext) (run *Run, status Status, created bool, err error) {
	// Fast path, no admission lock: a fingerprint already resident in
	// the cache — the overwhelmingly common case under read-heavy load —
	// is answered straight from the Lookup. admitMu exists to make
	// miss->create atomic (two identical submissions must not both
	// simulate); serving an already-cached run needs none of that, and
	// taking the lock here would serialize every cache-hit POST behind
	// whatever miss is currently journaling and spawning inside it.
	if existing := s.cache.Lookup(hash); existing != nil {
		run, status = s.serveCached(existing, hash)
		return run, status, false, nil
	}
	s.admitMu.Lock()
	// Double-check under the lock: an identical config may have been
	// admitted between the fast-path miss and here.
	if existing := s.cache.Lookup(hash); existing != nil {
		s.admitMu.Unlock()
		run, status = s.serveCached(existing, hash)
		return run, status, false, nil
	}
	// Memory missed; the on-disk store may still hold the result (a
	// retention-evicted run, or one never loaded at recovery). Adopting
	// it answers the POST without re-simulating. The file read happens
	// under admitMu — a deliberate tradeoff: misses are about to pay
	// seconds of simulation anyway, and probing outside the lock would
	// need a re-check against concurrently admitted identical configs.
	if s.store != nil {
		if run := s.adoptStored(hash); run != nil {
			s.admitMu.Unlock()
			s.cache.countHit()
			s.storeHits.Add(1)
			s.log.Info("koalad: store hit", "run", run.ID, "hash", shortHash(hash))
			return run, StatusDone, false, nil
		}
	}
	// Re-check closed under the lock: the handlers' early check is a
	// fast path, this one is authoritative against a concurrent
	// Shutdown (which flips the flag under the same lock before
	// draining).
	if s.closed.Load() {
		s.admitMu.Unlock()
		return nil, "", false, errDraining
	}
	if s.queued.Load() >= int64(s.opts.QueueDepth) {
		s.admitMu.Unlock()
		return nil, "", false, errQueueFull
	}
	// Only the admission path needs the wire-form spec (for the journal
	// and its compaction); hits and coalesces never marshal it.
	var specJSON json.RawMessage
	if s.store != nil {
		if specJSON, err = json.Marshal(spec); err != nil {
			s.admitMu.Unlock()
			return nil, "", false, err
		}
		s.storeMisses.Add(1)
	}
	s.cache.countMiss()
	run = s.registry.Create(hash, cfg, specJSON)
	run.localOnly = localOnly // before execution starts; only execute reads it
	run.beginTrace(parent)    // before the run is visible to any reader
	s.cache.Store(run)
	s.queued.Add(1)
	s.wg.Add(1) // inside the lock, so Shutdown's Wait covers this run
	s.admitMu.Unlock()

	// Journal the admission before acknowledging it: once the client
	// holds a run ID, a crash must recover the run.
	s.journalAppend(store.Record{Op: store.OpSubmitted, ID: run.ID, Hash: hash, Name: run.Name, Spec: run.specJSON})
	run.append(acceptedEvent{Type: "accepted", ID: run.ID, Name: run.Name, Hash: hash, Runs: cfg.Runs}, "")
	s.log.Info("koalad: run accepted",
		"run", run.ID, "name", run.Name, "runs", cfg.Runs, "hash", shortHash(hash), "trace", run.trace.ID)
	go s.execute(run)
	return run, run.Status(), true, nil
}

// serveCached accounts for a submission answered by an already-cached
// run: a hit when the run is terminal, a coalesce onto it in flight.
// The status is classified once so the counters and the HTTP response
// agree even if the run finishes in between.
func (s *Server) serveCached(existing *Run, hash string) (*Run, Status) {
	status := existing.Status()
	if status == StatusDone {
		s.cache.countHit()
		if existing.Source == SourceStore {
			s.storeHits.Add(1)
		}
		s.log.Info("koalad: cache hit", "run", existing.ID, "hash", shortHash(hash))
	} else {
		s.cache.countCoalesce()
		s.log.Info("koalad: coalesced identical submission", "run", existing.ID, "hash", shortHash(hash))
	}
	return existing, status
}

// writeAdmitError maps an admission failure onto its HTTP response.
func writeAdmitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errDraining):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, err.Error())
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	spec, cfg, hash, ok := s.decodeSubmission(w, r)
	if !ok {
		return
	}
	run, status, created, err := s.admit(spec, cfg, hash, false, obs.SpanContext{})
	if err != nil {
		writeAdmitError(w, err)
		return
	}
	url, events := runURLs(run.ID)
	resp := submitResponse{ID: run.ID, Hash: hash, Status: status, URL: url, EventsURL: events}
	switch {
	case created:
		writeJSON(w, http.StatusAccepted, resp)
	case status == StatusDone:
		resp.Cached = true
		writeJSON(w, http.StatusOK, resp)
	default:
		resp.Coalesced = true
		writeJSON(w, http.StatusAccepted, resp)
	}
}

// handleExecute is the internal worker endpoint behind backend.Remote:
// one POST both submits a config and follows it — the run's NDJSON
// event log streams back in the response, ending with the terminal
// summary (or error) event. A config whose result this daemon already
// holds — in memory or in its content-addressed store — answers
// without simulating: the dedupe that lets workers share work by
// fingerprint. Runs admitted here always execute on the in-process
// backend, so a mis-wired worker can never re-forward.
func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	spec, cfg, hash, ok := s.decodeSubmission(w, r)
	if !ok {
		return
	}
	// The coordinator's dispatch stamps its trace/span identity on the
	// request; executing under it parents this worker's spans into the
	// coordinator's trace.
	parent, _ := obs.ExtractHTTP(r)
	run, status, created, err := s.admit(spec, cfg, hash, true, parent)
	if err != nil {
		// 503/429 here bounce the shard back to the coordinator, which
		// fails it over to its own local backend.
		writeAdmitError(w, err)
		return
	}
	if !created && status != StatusDone && !run.localOnly {
		// The fingerprint is already in flight on this daemon's
		// *dispatch* backend — which may be the very dispatch that
		// issued this request (a coordinator whose -workers list routes
		// back to itself). Following that run here would deadlock: its
		// terminal event arrives only when this response produces one.
		// Bounce instead; the caller fails over to its local backend
		// and the result stays byte-identical.
		writeError(w, http.StatusServiceUnavailable, "config is in flight on this daemon's dispatch backend")
		return
	}
	s.workerExecutes.Add(1)
	if !created && status == StatusDone {
		s.workerDeduped.Add(1)
		s.log.Info("koalad: deduped execute request", "run", run.ID, "hash", shortHash(hash))
	}
	s.streamRun(w, r, run)
}

// retire records a terminal run and enforces the retention bound:
// beyond MaxRetained terminal runs, the oldest leave the registry and
// the cache (their configs re-simulate on a future POST).
func (s *Server) retire(run *Run) {
	s.retireMu.Lock()
	s.retired = append(s.retired, run.ID)
	var evict []string
	if n := len(s.retired) - s.opts.MaxRetained; n > 0 {
		evict = s.retired[:n]
		s.retired = append([]string(nil), s.retired[n:]...)
	}
	s.retireMu.Unlock()
	for _, id := range evict {
		if old := s.registry.Get(id); old != nil {
			s.cache.Evict(old)
			s.registry.Remove(id)
			s.log.Info("koalad: run evicted", "run", id, "retention", s.opts.MaxRetained)
		}
	}
}

// execute owns a run's lifecycle after admission: slot wait, streaming
// execution, terminal event, cache upkeep.
func (s *Server) execute(run *Run) {
	defer s.wg.Done()
	// Every path out of execute leaves the run terminal; account for it
	// in the retention bound exactly once.
	defer s.retire(run)
	defer func() {
		if p := recover(); p != nil {
			s.cache.Evict(run)
			s.runsFailed.Add(1)
			run.fail(fmt.Sprintf("run panicked: %v", p))
			run.endTrace()
			s.journalAppend(store.Record{Op: store.OpFailed, ID: run.ID, Hash: run.Hash, Error: fmt.Sprintf("run panicked: %v", p)})
			s.log.Error("koalad: run panicked", "run", run.ID, "panic", p, "stack", string(debug.Stack()))
		}
	}()

	select {
	case s.sem <- struct{}{}:
		s.queued.Add(-1)
	case <-s.ctx.Done():
		s.queued.Add(-1)
		s.cache.Evict(run)
		s.runsFailed.Add(1)
		run.fail("server shut down before the run started")
		run.endTrace()
		// Deliberately NOT journaled as failed: a run aborted by shutdown
		// is exactly what recovery should re-enqueue on the next start.
		return
	}
	defer func() { <-s.sem }()
	run.trace.EndSpan(run.queueSpan)
	s.queueWait.Observe(time.Since(run.submittedAt).Seconds())

	s.activeRuns.Add(1)
	defer s.activeRuns.Add(-1)
	run.setStatus(StatusRunning)
	runStart := time.Now()
	defer func() { s.runDuration.Observe(time.Since(runStart).Seconds()) }()
	s.journalAppend(store.Record{Op: store.OpStarted, ID: run.ID, Hash: run.Hash})
	if s.blockRuns != nil {
		<-s.blockRuns
	}

	// The dispatcher seam: queued runs flow to the configured backend
	// (in-process pool, or sharded out to worker daemons), except runs
	// admitted through the worker execute endpoint, which are pinned
	// local so workers never re-forward.
	b := s.backend
	if run.localOnly {
		b = s.local
	}
	// The dispatch span covers the backend execution; its identity rides
	// the context so a remote backend can stamp it on the execute request
	// (the worker's spans then parent under it), and the sink receives
	// the spans a worker streams back.
	dispatchSpan := run.trace.StartSpan(run.runSpan, "dispatch", map[string]string{"backend": b.Name()})
	ctx := obs.ContextWithSpanContext(s.ctx, obs.SpanContext{TraceID: run.trace.ID, SpanID: dispatchSpan})
	ctx = obs.ContextWithSpanSink(ctx, run.trace.Import)

	var started, finished atomic.Int64
	var repMu sync.Mutex
	repSpans := make(map[int]string) // replication index -> open span ID
	hooks := experiment.StreamHooks{
		OnStart: func(rep int, _ uint64) {
			started.Add(1)
			s.activeSims.Add(1)
			id := run.trace.StartSpan(dispatchSpan, "replication", map[string]string{"rep": strconv.Itoa(rep)})
			repMu.Lock()
			repSpans[rep] = id
			repMu.Unlock()
		},
		OnDone: func(rep experiment.Replication) {
			finished.Add(1)
			s.activeSims.Add(-1)
			s.repsDone.Add(1)
			repMu.Lock()
			id := repSpans[rep.Rep]
			delete(repSpans, rep.Rep)
			repMu.Unlock()
			run.trace.EndSpan(id)
			run.append(repEvent{Type: "replication", ID: run.ID, Replication: rep}, "")
		},
	}
	res, err := b.RunPoint(ctx, run.cfg, hooks)
	run.trace.EndSpan(dispatchSpan)
	// Replications aborted mid-flight never reach OnDone; return their
	// gauge contribution.
	s.activeSims.Add(finished.Load() - started.Load())
	if err != nil {
		s.cache.Evict(run)
		s.runsFailed.Add(1)
		run.fail(err.Error())
		run.endTrace()
		if s.ctx.Err() == nil {
			// A real failure is journaled terminal; a shutdown abort is
			// left in-flight so the next start re-runs it.
			s.journalAppend(store.Record{Op: store.OpFailed, ID: run.ID, Hash: run.Hash, Error: err.Error()})
		}
		s.log.Warn("koalad: run failed", "run", run.ID, "err", err)
		return
	}
	sum := res.Summary()
	s.runsDone.Add(1)
	// Close the trace and append it to the event log before the terminal
	// summary: a coordinator following this run over the execute endpoint
	// imports these spans into its own trace, and its stream reader stops
	// at the summary event. Public followers see the same trace event and
	// may ignore it. On a deduped re-execute the logged event replays
	// with the original run's spans — a documented artifact.
	run.endTrace()
	run.append(traceEvent{Type: "trace", ID: run.ID, Spans: run.trace.Snapshot().Spans}, "")
	// Terminal in memory first: when the OpCompleted append triggers a
	// journal compaction, the run must already read as done, or the
	// compaction would keep its submitted record and erase the
	// completed one (a crash would then needlessly re-run it).
	run.finish(sum)
	s.persistResult(run, sum)
	s.log.Info("koalad: run done",
		"run", run.ID, "jobs", res.Jobs(), "replications", len(res.Replications), "trace", run.trace.ID)
}

// listItem is one row of GET /v1/experiments: enough to find a run and
// tell whether its result was simulated here (live) or restored from
// the on-disk store (store).
type listItem struct {
	ID        string `json:"id"`
	Name      string `json:"name,omitempty"`
	Hash      string `json:"hash"`
	Status    Status `json:"status"`
	Source    string `json:"source"`
	URL       string `json:"url"`
	EventsURL string `json:"events_url"`
}

// listResponse is the GET /v1/experiments body.
type listResponse struct {
	Experiments []listItem `json:"experiments"`
}

// handleList enumerates every resident run in sequence order — until
// now results were only reachable by ID, so a client that lost its IDs
// had to replay its submissions.
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	runs := s.registry.All()
	items := make([]listItem, 0, len(runs))
	for _, run := range runs {
		url, events := runURLs(run.ID)
		items = append(items, listItem{
			ID: run.ID, Name: run.Name, Hash: run.Hash, Status: run.Status(),
			Source: run.Source, URL: url, EventsURL: events,
		})
	}
	writeJSON(w, http.StatusOK, listResponse{Experiments: items})
}

// getResponse is the GET /v1/experiments/{id} body: identity, state,
// provenance (live vs store-restored), lifecycle timings and — when
// done — the summary. The summary and hash are deterministic; source
// and timings are observability and are excluded from byte-level
// comparisons across restarts.
type getResponse struct {
	ID        string                    `json:"id"`
	Name      string                    `json:"name"`
	Hash      string                    `json:"hash"`
	Status    Status                    `json:"status"`
	Source    string                    `json:"source"`
	EventsURL string                    `json:"events_url"`
	Timings   *runTimings               `json:"timings,omitempty"`
	Error     string                    `json:"error,omitempty"`
	Summary   *experiment.StreamSummary `json:"summary,omitempty"`
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	run := s.registry.Get(r.PathValue("id"))
	if run == nil {
		writeError(w, http.StatusNotFound, "no such experiment")
		return
	}
	status, summary, errMsg := run.Snapshot()
	_, events := runURLs(run.ID)
	writeJSON(w, http.StatusOK, getResponse{
		ID: run.ID, Name: run.Name, Hash: run.Hash, Status: status, Source: run.Source,
		EventsURL: events, Timings: run.Timings(), Error: errMsg, Summary: summary,
	})
}

// handleEvents streams the run's event log as NDJSON: full replay for
// late subscribers, then follow until the terminal event.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	run := s.registry.Get(r.PathValue("id"))
	if run == nil {
		writeError(w, http.StatusNotFound, "no such experiment")
		return
	}
	s.streamRun(w, r, run)
}

// streamRun writes a run's event log as NDJSON — replay, then follow
// until the terminal event — shared by the public events endpoint and
// the worker execute endpoint. Followers are counted on a gauge while
// attached; one that leaves before the terminal event (client close,
// write error) increments the disconnect counter.
func (s *Server) streamRun(w http.ResponseWriter, r *http.Request, run *Run) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	s.followers.Add(1)
	defer s.followers.Add(-1)
	run.trace.Point(run.runSpan, "stream-follower", map[string]string{"remote": r.RemoteAddr})
	disconnected := func() {
		s.followerDisconnects.Inc()
		s.log.Info("koalad: follower disconnected before terminal event", "run", run.ID, "remote", r.RemoteAddr)
	}

	i := 0
	for {
		evs, terminal, changed := run.next(i)
		for _, ev := range evs {
			// Events are stored newline-terminated (see Run.append): one
			// encode at publication, one Write per follower — no per-
			// follower re-framing, no mutation of shared backing arrays.
			start := time.Now()
			if _, err := w.Write(ev); err != nil {
				disconnected()
				return
			}
			s.followerStall.Observe(time.Since(start).Seconds())
		}
		i += len(evs)
		if len(evs) > 0 && flusher != nil {
			flusher.Flush()
		}
		if terminal {
			return
		}
		if len(evs) > 0 {
			// More events may have landed while these were being written;
			// drain before blocking (next only hands out a wakeup channel
			// when there is truly nothing to do).
			continue
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			disconnected()
			return
		}
	}
}

// handleTrace serves the run's span collection: every lifecycle phase
// this daemon recorded plus any spans imported from workers. Traces are
// wall-clock observability — deliberately absent from the event log's
// deterministic surface.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	run := s.registry.Get(r.PathValue("id"))
	if run == nil {
		writeError(w, http.StatusNotFound, "no such experiment")
		return
	}
	writeJSON(w, http.StatusOK, run.trace.Snapshot())
}

// healthzResponse is the /healthz body.
type healthzResponse struct {
	Status        string  `json:"status"`
	Version       string  `json:"version"`
	Role          string  `json:"role,omitempty"`
	Backend       string  `json:"backend"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	ActiveRuns    int64   `json:"active_runs"`
	QueuedRuns    int64   `json:"queued_runs"`
	InFlightSims  int64   `json:"in_flight_replications"`
	Followers     int64   `json:"followers"`
	Runs          int     `json:"runs"`
	CacheSize     int     `json:"cache_size"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	// A draining daemon answers 503 + "draining": load balancers and
	// coordinator health rings (backend's health-gated worker ring)
	// treat anything but 200/"ok" as not-routable, so a worker in
	// Server.Shutdown stops receiving dispatches before its listener
	// closes instead of bouncing them one by one.
	status, code := "ok", http.StatusOK
	if s.closed.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, healthzResponse{
		Status:        status,
		Version:       s.opts.Version,
		Role:          s.opts.Role,
		Backend:       s.backend.Name(),
		UptimeSeconds: time.Since(s.started).Seconds(),
		ActiveRuns:    s.activeRuns.Load(),
		QueuedRuns:    s.queued.Load(),
		InFlightSims:  s.activeSims.Load(),
		Followers:     s.followers.Value(),
		Runs:          s.registry.Len(),
		CacheSize:     s.cache.Len(),
	})
}

// handleMetrics renders Prometheus text exposition (no client library
// needed for gauges and counters).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	type metric struct {
		name, help, typ string
		value           any
	}
	metrics := []metric{
		// Process-level gauges: what a fleet operator correlates client
		// latency against (see docs/load.md).
		{"koalad_goroutines", "Goroutines in the process (followers hold one each).", "gauge", runtime.NumGoroutine()},
		{"koalad_registry_runs", "Runs resident in the registry (live + retained terminal).", "gauge", s.registry.Len()},
		{"koalad_queue_depth", "Admitted runs waiting for a concurrency slot.", "gauge", s.queued.Load()},
		{"koalad_active_runs", "Runs currently executing.", "gauge", s.activeRuns.Load()},
		{"koalad_active_simulations", "Replications currently simulating.", "gauge", s.activeSims.Load()},
		{"koalad_run_slots", "Concurrent-run bound.", "gauge", s.opts.MaxConcurrent},
		{"koalad_sim_workers_default", "Per-run simulation parallelism handed to configs without their own.", "gauge", effectiveWorkers(s.opts.Parallelism)},
		{"koalad_replications_total", "Completed replications.", "counter", s.repsDone.Load()},
		{"koalad_runs_total", "Runs admitted for execution.", "counter", s.cache.Misses()},
		{"koalad_runs_done_total", "Runs completed successfully.", "counter", s.runsDone.Load()},
		{"koalad_runs_failed_total", "Runs failed or aborted.", "counter", s.runsFailed.Load()},
		{"koalad_cache_size", "Results indexed by config fingerprint.", "gauge", s.cache.Len()},
		{"koalad_cache_hits_total", "Submissions answered from the result cache.", "counter", s.cache.Hits()},
		{"koalad_cache_coalesced_total", "Submissions attached to an in-flight identical run.", "counter", s.cache.Coalesced()},
		{"koalad_cache_misses_total", "Submissions that started a new run.", "counter", s.cache.Misses()},
		{"koalad_cache_hit_rate", "hits / (hits + misses).", "gauge", s.cache.HitRate()},
		{"koalad_worker_executes_total", "Runs served over the internal worker execute endpoint.", "counter", s.workerExecutes.Load()},
		{"koalad_worker_dedup_total", "Execute requests answered from cache/store without simulating.", "counter", s.workerDeduped.Load()},
	}
	if rb, ok := s.backend.(*backend.Remote); ok {
		st := rb.Stats()
		metrics = append(metrics,
			metric{"koalad_dispatch_workers", "Worker daemons configured for dispatch.", "gauge", st.Workers},
			metric{"koalad_dispatch_remote_total", "Runs dispatched to a worker daemon.", "counter", st.Dispatched},
			metric{"koalad_dispatch_remote_done_total", "Runs completed by a worker daemon.", "counter", st.RemoteDone},
			metric{"koalad_dispatch_failover_total", "Runs failed over to the local backend.", "counter", st.Failovers},
			metric{"koalad_dispatch_retries_total", "Same-worker dispatch retries after a retryable failure.", "counter", st.Retries},
			metric{"koalad_dispatch_reroutes_total", "Dispatch attempts rerouted off the owner shard to another healthy worker.", "counter", st.Reroutes},
			metric{"koalad_dispatch_breaker_opens_total", "Per-worker circuit-breaker open transitions (sum over workers).", "counter", st.BreakerOpens},
		)
	}
	if s.store != nil {
		st := s.store.Stats()
		metrics = append(metrics,
			metric{"koalad_store_entries", "Results in the on-disk store.", "gauge", st.Entries},
			metric{"koalad_store_bytes", "Bytes of results in the on-disk store.", "gauge", st.Bytes},
			metric{"koalad_store_hits_total", "Submissions answered by a disk-restored result.", "counter", s.storeHits.Load()},
			metric{"koalad_store_misses_total", "Submissions that missed memory and disk and simulated.", "counter", s.storeMisses.Load()},
			metric{"koalad_store_restored_total", "Results re-indexed from the store (recovery + lazy adoption).", "counter", s.storeRestored.Load()},
			metric{"koalad_store_replayed_total", "In-flight runs re-enqueued by startup recovery.", "counter", s.storeReplayed.Load()},
			metric{"koalad_store_skipped_total", "Corrupt or incompatible on-disk artifacts skipped.", "counter", st.Skipped},
			metric{"koalad_store_gc_removed_total", "Store entries removed by GC.", "counter", st.GCRemoved},
			metric{"koalad_store_gc_bytes_total", "Bytes reclaimed by GC.", "counter", st.GCBytes},
			metric{"koalad_journal_records", "Records currently in the run journal.", "gauge", s.store.Journal().Records()},
			metric{"koalad_journal_compactions_total", "Journal compactions performed.", "counter", s.compactions.Load()},
		)
	}
	for _, m := range metrics {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", m.name, m.help, m.name, m.typ, m.name, m.value)
	}
	// Registry-backed families (latency histograms, follower gauge,
	// dispatch RTT, store latencies) render after the scalar metrics;
	// names never overlap the hand-rolled list above.
	s.metrics.Render(w)
}

func effectiveWorkers(parallelism int) int {
	if parallelism <= 0 {
		return parallel.DefaultWorkers()
	}
	return parallelism
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
