package server

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/store"
)

// This file is the durable half of the daemon: write-through of
// completed summaries to the result store, journaling of run lifecycle
// transitions, startup recovery (replay the journal, re-index stored
// results, re-enqueue runs that were in flight when the process died)
// and journal compaction. Everything here is a no-op when the server
// has no store — koalad without -data-dir behaves exactly as before.

// RecoveryStats reports what Recover rebuilt.
type RecoveryStats struct {
	// Restored results were re-indexed from the store into the
	// registry/cache (served on re-POST without re-simulation).
	Restored int
	// Reenqueued runs were in flight at the crash and are executing
	// again.
	Reenqueued int
	// Resolved runs looked in-flight in the journal but their result
	// was already durable in the store (the crash hit between the store
	// write and the journal's completed append) — recovered as done.
	Resolved int
	// Dropped journal runs could not be recovered (no spec recorded, or
	// the spec no longer validates).
	Dropped int
}

// shortHash abbreviates a fingerprint for log lines without assuming
// its length — journal records are external input and may carry
// anything.
func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}

func (r RecoveryStats) String() string {
	return fmt.Sprintf("%d results restored, %d runs re-enqueued, %d resolved from store, %d dropped",
		r.Restored, r.Reenqueued, r.Resolved, r.Dropped)
}

// Recover rebuilds the daemon's state from the data directory: every
// decodable store entry becomes a done run in the registry and cache,
// and every journaled run without a durable outcome is re-enqueued.
// Call it once, after New and before serving traffic.
func (s *Server) Recover() (RecoveryStats, error) {
	var rs RecoveryStats
	if s.store == nil {
		return rs, nil
	}
	// Only the newest MaxRetained results are worth materializing
	// (retire would immediately evict the rest); older results stay on
	// disk unread and are adopted lazily on POST, so startup does not
	// scale with the store's history.
	entries, left, err := s.store.Newest(s.opts.MaxRetained)
	if err != nil {
		return rs, err
	}
	if left > 0 {
		s.log.Info("koalad: recovery leaving older results on disk", "left", left, "retention", s.opts.MaxRetained)
	}
	for _, e := range entries {
		if run := s.adoptEntry(e); run != nil {
			rs.Restored++
		}
	}

	recs, err := s.store.Journal().Replay()
	if err != nil {
		return rs, err
	}
	// Fold the journal into the last known state per run ID, preserving
	// submission order for re-enqueueing.
	type jrun struct {
		submitted store.Record
		terminal  bool
	}
	byID := make(map[string]*jrun)
	var order []string
	for _, rec := range recs {
		switch rec.Op {
		case store.OpSubmitted:
			if byID[rec.ID] == nil {
				byID[rec.ID] = &jrun{submitted: rec}
				order = append(order, rec.ID)
			}
		case store.OpCompleted, store.OpFailed:
			if jr := byID[rec.ID]; jr != nil {
				jr.terminal = true
			}
			// A terminal record without a submitted one means compaction
			// raced that run's completion; there is nothing to recover.
		}
	}

	var keep []store.Record // the compacted journal: still-in-flight runs only
	var revived []*Run
	for _, id := range order {
		jr := byID[id]
		if jr.terminal {
			continue
		}
		rec := jr.submitted
		// The result may be durable even though the journal never saw the
		// completed append — the crash hit between the store write and
		// the journal write. The store entry wins; nothing to re-run.
		// Check the disk too, not just the cache: the entry may be older
		// than the retention bound and so not materialized above.
		if s.cache.Lookup(rec.Hash) != nil || s.store.Get(rec.Hash) != nil {
			rs.Resolved++
			continue
		}
		run, err := s.reenqueue(rec)
		if err != nil {
			s.log.Warn("koalad: recovery dropping run", "run", rec.ID, "hash", shortHash(rec.Hash), "err", err)
			rs.Dropped++
			continue
		}
		revived = append(revived, run)
		keep = append(keep, store.Record{
			Op: store.OpSubmitted, ID: run.ID, Hash: run.Hash, Name: run.Name,
			Spec: run.specJSON, TimeUnixNano: rec.TimeUnixNano,
		})
		s.storeReplayed.Add(1)
		rs.Reenqueued++
	}
	// Truncate the journal down to the surviving runs: everything else
	// is durably reflected in the store (or terminal) and carries no
	// recovery value. This must happen before the revived runs start —
	// a fast run's started/terminal appends would be erased by a
	// compaction built from the pre-spawn snapshot.
	if err := s.store.Journal().Compact(keep); err != nil {
		s.log.Warn("koalad: recovery journal compaction failed", "err", err)
	} else {
		s.compactions.Add(1)
	}
	for _, run := range revived {
		go s.execute(run)
	}
	return rs, nil
}

// reenqueue rebuilds an in-flight journaled run under its original ID
// so pre-crash clients can still poll it. The caller starts execution
// (after the journal is compacted).
func (s *Server) reenqueue(rec store.Record) (*Run, error) {
	if len(rec.Spec) == 0 {
		return nil, fmt.Errorf("no config spec journaled")
	}
	spec, err := experiment.DecodeConfigSpec(bytes.NewReader(rec.Spec))
	if err != nil {
		return nil, err
	}
	cfg, err := spec.Config()
	if err != nil {
		return nil, err
	}
	if spec.Parallelism == 0 {
		cfg.Parallelism = s.opts.Parallelism
	}
	s.admitMu.Lock()
	run := s.registry.Adopt(rec.ID, rec.Hash, cfg, rec.Spec, SourceLive)
	run.beginTrace(obs.SpanContext{})
	s.cache.Store(run)
	s.queued.Add(1)
	s.wg.Add(1)
	s.admitMu.Unlock()
	run.append(acceptedEvent{Type: "accepted", ID: run.ID, Name: run.Name, Hash: run.Hash, Runs: cfg.Runs}, "")
	s.log.Info("koalad: run re-enqueued after restart", "run", run.ID, "hash", shortHash(run.Hash))
	return run, nil
}

// adoptStored loads the result stored under hash into the registry and
// cache as a done run, or returns nil when the store has no usable
// entry. Called with admitMu held, like every registry/cache mutation
// on the submission path.
func (s *Server) adoptStored(hash string) *Run {
	e := s.store.Get(hash)
	if e == nil {
		return nil
	}
	return s.adoptEntry(e)
}

// adoptEntry materializes one store entry as a terminal run: registry,
// synthesized event log, cache, retention accounting. Returns nil (and
// logs) when the summary does not decode — an incompatible entry is a
// miss, never an error.
func (s *Server) adoptEntry(e *store.Entry) *Run {
	sum, err := experiment.DecodeSummary(e.Summary)
	if err != nil {
		s.log.Warn("koalad: ignoring undecodable store entry", "hash", shortHash(e.Hash), "err", err)
		return nil
	}
	run := s.registry.Adopt(e.ID, e.Hash, experiment.Config{Name: e.Name}, nil, SourceStore)
	run.restoreDone(sum)
	s.cache.Store(run)
	s.retire(run) // restored runs count against MaxRetained like any terminal run
	s.storeRestored.Add(1)
	return run
}

// persistResult writes a completed summary through to the store and
// journals the completion — in that order, so a crash between the two
// re-runs the experiment rather than losing its result. Persistence
// failures are logged, never fatal: the in-memory result still serves.
func (s *Server) persistResult(run *Run, sum experiment.StreamSummary) {
	if s.store == nil {
		return
	}
	b, err := experiment.EncodeSummary(sum)
	if err != nil {
		s.log.Warn("koalad: summary not encodable, result stays memory-only", "run", run.ID, "err", err)
		return
	}
	if err := s.store.Put(store.Entry{Hash: run.Hash, ID: run.ID, Name: run.Name, Summary: b}); err != nil {
		s.log.Warn("koalad: result not persisted", "run", run.ID, "err", err)
		return
	}
	s.journalAppend(store.Record{Op: store.OpCompleted, ID: run.ID, Hash: run.Hash})
}

// journalAppend stamps and appends a record; journal trouble is logged
// and absorbed (durability degrades, the daemon keeps serving). Every
// terminal append is a compaction opportunity — completed AND failed,
// so a daemon whose runs keep failing still bounds its journal.
func (s *Server) journalAppend(rec store.Record) {
	if s.store == nil {
		return
	}
	rec.TimeUnixNano = time.Now().UnixNano()
	if err := s.store.Journal().Append(rec); err != nil {
		s.log.Warn("koalad: journal append failed", "err", err)
	}
	if rec.Op == store.OpCompleted || rec.Op == store.OpFailed {
		s.maybeCompactJournal()
	}
}

// maybeCompactJournal truncates the journal once it has accumulated
// JournalCompactEvery records: only in-flight runs' submitted records
// survive — completed and failed runs are durably reflected in the
// store (or deliberately forgotten) and replay to nothing. The
// registry snapshot and the rewrite happen under admitMu so no
// admission can journal a submitted record between the two and have
// compaction erase it (admissions append only after releasing
// admitMu, so their records land after the rewrite).
func (s *Server) maybeCompactJournal() {
	j := s.store.Journal()
	if j.Records() < s.opts.JournalCompactEvery {
		return
	}
	s.admitMu.Lock()
	defer s.admitMu.Unlock()
	if j.Records() < s.opts.JournalCompactEvery { // racing compactions
		return
	}
	if s.closed.Load() {
		// Draining: shutdown-aborted runs are StatusFailed in memory but
		// deliberately unjournaled so the next start re-enqueues them; a
		// compaction now would drop their submitted records and lose
		// them. The next life compacts instead.
		return
	}
	var keep []store.Record
	now := time.Now().UnixNano()
	for _, run := range s.registry.All() {
		if st := run.Status(); st != StatusQueued && st != StatusRunning {
			continue
		}
		if len(run.specJSON) == 0 {
			continue
		}
		keep = append(keep, store.Record{
			Op: store.OpSubmitted, ID: run.ID, Hash: run.Hash, Name: run.Name,
			Spec: run.specJSON, TimeUnixNano: now,
		})
	}
	if err := j.Compact(keep); err != nil {
		s.log.Warn("koalad: journal compaction failed", "err", err)
		return
	}
	s.compactions.Add(1)
	s.log.Info("koalad: journal compacted", "in_flight", len(keep))
}
