package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/experiment"
	"repro/internal/store"
)

// newStoreServer assembles a durable server over dir: open the store,
// recover, serve. Callers stop it with closeStoreServer (not t.Cleanup)
// so tests can restart "the daemon" on the same directory mid-test.
func newStoreServer(t *testing.T, dir string, opts Options) (*Server, *httptest.Server, *store.Store) {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts.Store = st
	s := New(opts)
	if _, err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	return s, ts, st
}

func closeStoreServer(t *testing.T, s *Server, ts *httptest.Server, st *store.Store) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// tinyHashAndSpec resolves tinyConfig exactly like handleSubmit does:
// its canonical fingerprint and its journaled wire form.
func tinyHashAndSpec(t *testing.T) (string, json.RawMessage) {
	t.Helper()
	spec, err := experiment.DecodeConfigSpec(strings.NewReader(tinyConfig))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := spec.Config()
	if err != nil {
		t.Fatal(err)
	}
	hash, err := experiment.Fingerprint(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	return hash, b
}

// TestRestartDurability is the tentpole's acceptance test: submit →
// complete → restart the server on the same data dir → the identical
// re-POST is answered from the store byte-identically, with zero
// re-simulation.
func TestRestartDurability(t *testing.T) {
	dir := t.TempDir()
	s1, ts1, st1 := newStoreServer(t, dir, Options{})

	sr, code := postConfig(t, ts1, tinyConfig)
	if code != http.StatusAccepted {
		t.Fatalf("POST status = %d", code)
	}
	readEvents(t, ts1, sr.ID)
	before := mustGet(t, ts1, "/v1/experiments/"+sr.ID)
	if s1.storeMisses.Load() != 1 {
		t.Fatalf("store misses = %d, want 1", s1.storeMisses.Load())
	}
	closeStoreServer(t, s1, ts1, st1)

	// "Restart": a fresh server over the same directory.
	s2, ts2, st2 := newStoreServer(t, dir, Options{})
	defer closeStoreServer(t, s2, ts2, st2)
	if got := s2.storeRestored.Load(); got != 1 {
		t.Fatalf("restored = %d, want 1", got)
	}

	sr2, code2 := postConfig(t, ts2, tinyConfig)
	if code2 != http.StatusOK {
		t.Fatalf("re-POST after restart = %d, want 200", code2)
	}
	if !sr2.Cached || sr2.ID != sr.ID || sr2.Hash != sr.Hash {
		t.Fatalf("re-POST after restart = %+v, want cached %s", sr2, sr.ID)
	}
	if s2.repsDone.Load() != 0 {
		t.Fatal("re-POST after restart re-simulated replications")
	}
	// The result round-trips the disk byte-identically. Compare the
	// deterministic fields — the GET body also carries provenance
	// (source flips live → store) and lifecycle timings (deliberately
	// not durable), which legitimately differ across a restart.
	after := mustGet(t, ts2, "/v1/experiments/"+sr.ID)
	type getWire struct {
		ID      string          `json:"id"`
		Hash    string          `json:"hash"`
		Status  Status          `json:"status"`
		Source  string          `json:"source"`
		Summary json.RawMessage `json:"summary"`
	}
	var bw, aw getWire
	if err := json.Unmarshal(before, &bw); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(after, &aw); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bw.Summary, aw.Summary) {
		t.Fatalf("summary changed across restart:\nbefore: %s\nafter:  %s", bw.Summary, aw.Summary)
	}
	if aw.ID != bw.ID || aw.Hash != bw.Hash || aw.Status != StatusDone {
		t.Fatalf("restored run identity = %+v, want %+v", aw, bw)
	}
	if bw.Source != SourceLive || aw.Source != SourceStore {
		t.Fatalf("source before/after = %q/%q, want live/store", bw.Source, aw.Source)
	}
	// The restored run replays a coherent event log.
	events := readEvents(t, ts2, sr.ID)
	if len(events) != 2 || events[0]["type"] != "accepted" || events[1]["type"] != "summary" {
		t.Fatalf("restored event log = %+v", events)
	}
	// The list endpoint attributes it to the store.
	var list listResponse
	if err := json.Unmarshal(mustGet(t, ts2, "/v1/experiments"), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Experiments) != 1 || list.Experiments[0].Source != SourceStore ||
		list.Experiments[0].Status != StatusDone || list.Experiments[0].ID != sr.ID {
		t.Fatalf("list after restart = %+v", list.Experiments)
	}
	// And /metrics exposes the durability counters.
	text := string(mustGet(t, ts2, "/metrics"))
	for _, want := range []string{
		"koalad_store_entries 1",
		"koalad_store_hits_total 1",
		"koalad_store_misses_total 0",
		"koalad_store_restored_total 1",
		"koalad_store_replayed_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestRecoveryReenqueuesInFlight simulates the crash window between the
// journal's started append and the store write: the journal holds
// submitted+started with no terminal record and the store has no
// entry. Recovery must re-create the run under its original ID and
// execute it to completion.
func TestRecoveryReenqueuesInFlight(t *testing.T) {
	dir := t.TempDir()
	hash, spec := tinyHashAndSpec(t)
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	j := st.Journal()
	if err := j.Append(store.Record{Op: store.OpSubmitted, ID: "exp-1", Hash: hash, Spec: spec}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(store.Record{Op: store.OpStarted, ID: "exp-1", Hash: hash}); err != nil {
		t.Fatal(err)
	}
	st.Close() // the crash

	s, ts, st2 := newStoreServer(t, dir, Options{})
	defer closeStoreServer(t, s, ts, st2)
	if got := s.storeReplayed.Load(); got != 1 {
		t.Fatalf("replayed = %d, want 1", got)
	}
	run := s.registry.Get("exp-1")
	if run == nil || run.Source != SourceLive {
		t.Fatalf("re-enqueued run = %+v", run)
	}
	events := readEvents(t, ts, "exp-1")
	if events[len(events)-1]["type"] != "summary" {
		t.Fatalf("re-enqueued run terminal event = %v", events[len(events)-1])
	}
	if s.repsDone.Load() == 0 {
		t.Fatal("re-enqueued run did not actually simulate")
	}
	// Its completion was written through: the store now holds the
	// result, and a fresh POST of the identical config is a cache hit.
	if st2.Get(hash) == nil {
		t.Fatal("re-enqueued run's result not persisted")
	}
	sr, code := postConfig(t, ts, tinyConfig)
	if code != http.StatusOK || !sr.Cached || sr.ID != "exp-1" {
		t.Fatalf("POST after replay = %+v (%d)", sr, code)
	}
	// Recovery compacted the journal down to the one in-flight run
	// before its execution appended started+completed.
	recs, err := st2.Journal().Replay()
	if err != nil {
		t.Fatal(err)
	}
	var ops []string
	for _, r := range recs {
		ops = append(ops, string(r.Op))
	}
	if strings.Join(ops, ",") != "submitted,started,completed" {
		t.Fatalf("journal after replayed run = %v", ops)
	}
}

// TestRecoveryResolvesStoredButUnjournaledRun simulates the other
// crash window — between the store write and the journal's completed
// append. The journal says in-flight, the store has the result; the
// store must win and nothing re-runs.
func TestRecoveryResolvesStoredButUnjournaledRun(t *testing.T) {
	dir := t.TempDir()

	// A first life produces a durable result...
	s1, ts1, st1 := newStoreServer(t, dir, Options{})
	sr, _ := postConfig(t, ts1, tinyConfig)
	readEvents(t, ts1, sr.ID)
	closeStoreServer(t, s1, ts1, st1)

	// ...then the crash: re-open the journal and make the run look
	// in-flight again (as if the completed append never hit the disk).
	hash, spec := tinyHashAndSpec(t)
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Journal().Compact(nil); err != nil {
		t.Fatal(err)
	}
	j := st.Journal()
	if err := j.Append(store.Record{Op: store.OpSubmitted, ID: sr.ID, Hash: hash, Spec: spec}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(store.Record{Op: store.OpStarted, ID: sr.ID, Hash: hash}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	s2, ts2, st2 := newStoreServer(t, dir, Options{})
	defer closeStoreServer(t, s2, ts2, st2)
	if s2.storeRestored.Load() != 1 || s2.storeReplayed.Load() != 0 {
		t.Fatalf("restored/replayed = %d/%d, want 1/0",
			s2.storeRestored.Load(), s2.storeReplayed.Load())
	}
	if s2.repsDone.Load() != 0 {
		t.Fatal("stored run re-simulated")
	}
	sr2, code := postConfig(t, ts2, tinyConfig)
	if code != http.StatusOK || !sr2.Cached {
		t.Fatalf("POST after resolve = %+v (%d)", sr2, code)
	}
}

// TestRecoverySkipsFailedRuns: a journaled terminal failure is not
// re-enqueued (failures are retried by clients, not by restarts).
func TestRecoverySkipsFailedRuns(t *testing.T) {
	dir := t.TempDir()
	hash, spec := tinyHashAndSpec(t)
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	j := st.Journal()
	for _, rec := range []store.Record{
		{Op: store.OpSubmitted, ID: "exp-1", Hash: hash, Spec: spec},
		{Op: store.OpStarted, ID: "exp-1", Hash: hash},
		{Op: store.OpFailed, ID: "exp-1", Hash: hash, Error: "boom"},
	} {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	s, ts, st2 := newStoreServer(t, dir, Options{})
	defer closeStoreServer(t, s, ts, st2)
	if s.storeReplayed.Load() != 0 || s.registry.Len() != 0 {
		t.Fatalf("failed run resurrected: replayed=%d runs=%d", s.storeReplayed.Load(), s.registry.Len())
	}
}

// TestRecoveryDropsUnrecoverableRun: an in-flight journal run whose
// submitted record lacks a spec (compaction raced its admission, or a
// foreign writer) is dropped with a count, not fatal.
func TestRecoveryDropsUnrecoverableRun(t *testing.T) {
	dir := t.TempDir()
	hash, _ := tinyHashAndSpec(t)
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Journal().Append(store.Record{Op: store.OpSubmitted, ID: "exp-1", Hash: hash}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{Store: st2})
	rs, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Dropped != 1 || rs.Reenqueued != 0 {
		t.Fatalf("recovery stats = %+v", rs)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = s.Shutdown(ctx)
	st2.Close()
}

// TestRecoveryRespectsRetentionBound: a store larger than MaxRetained
// only materializes its newest entries at startup — the older ones
// stay on disk (still adoptable on POST) instead of being restored and
// immediately evicted.
func TestRecoveryRespectsRetentionBound(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := experiment.EncodeSummary(experiment.StreamSummary{Name: "x", Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	for i := 1; i <= 3; i++ { // exp-1 oldest ... exp-3 newest
		h := fmt.Sprintf("%064x", i)
		if err := st.Put(store.Entry{Hash: h, ID: fmt.Sprintf("exp-%d", i), Summary: sum}); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(filepath.Join(dir, "results", h+".json"), now, now.Add(-time.Duration(4-i)*time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{MaxRetained: 1, Store: st2})
	rs, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Restored != 1 {
		t.Fatalf("restored = %d, want only the newest", rs.Restored)
	}
	if s.registry.Get("exp-3") == nil || s.registry.Get("exp-1") != nil || s.registry.Len() != 1 {
		t.Fatalf("registry after bounded recovery has %d runs", s.registry.Len())
	}
	// The unrestored entries are still on disk for lazy adoption.
	if st2.Get(fmt.Sprintf("%064x", 1)) == nil {
		t.Fatal("older entry removed from disk by recovery")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = s.Shutdown(ctx)
	st2.Close()
}

// TestStoreFallbackAfterRetentionEviction: a result evicted from memory
// by the retention bound is still on disk, so its re-POST is a store
// hit, not a re-simulation.
func TestStoreFallbackAfterRetentionEviction(t *testing.T) {
	dir := t.TempDir()
	s, ts, st := newStoreServer(t, dir, Options{MaxRetained: 1})
	defer closeStoreServer(t, s, ts, st)

	mk := func(seed int) string {
		return strings.Replace(tinyConfig, `"seed": 1`, `"seed": `+string(rune('0'+seed)), 1)
	}
	sr1, _ := postConfig(t, ts, mk(1))
	readEvents(t, ts, sr1.ID)
	sr2, _ := postConfig(t, ts, mk(2))
	readEvents(t, ts, sr2.ID)

	// Wait for the retention bound to evict run 1 from memory.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && s.registry.Get(sr1.ID) != nil {
		time.Sleep(time.Millisecond)
	}
	if s.registry.Get(sr1.ID) != nil {
		t.Fatal("run 1 not evicted")
	}
	repsBefore := s.repsDone.Load()
	sr3, code := postConfig(t, ts, mk(1))
	if code != http.StatusOK || !sr3.Cached {
		t.Fatalf("re-POST of evicted config = %+v (%d), want store hit", sr3, code)
	}
	if sr3.Hash != sr1.Hash {
		t.Fatalf("hash changed: %s vs %s", sr3.Hash, sr1.Hash)
	}
	if s.repsDone.Load() != repsBefore {
		t.Fatal("store hit re-simulated")
	}
	if s.storeHits.Load() != 1 {
		t.Fatalf("store hits = %d, want 1", s.storeHits.Load())
	}
	if run := s.registry.Get(sr3.ID); run == nil || run.Source != SourceStore {
		t.Fatalf("adopted run = %+v", run)
	}
}

// TestJournalCompactionBounded: a low compaction threshold keeps the
// journal from growing with submission history.
func TestJournalCompactionBounded(t *testing.T) {
	dir := t.TempDir()
	s, ts, st := newStoreServer(t, dir, Options{JournalCompactEvery: 4})
	defer closeStoreServer(t, s, ts, st)

	for seed := 1; seed <= 3; seed++ {
		body := strings.Replace(tinyConfig, `"seed": 1`, `"seed": `+string(rune('0'+seed)), 1)
		sr, code := postConfig(t, ts, body)
		if code != http.StatusAccepted {
			t.Fatalf("POST seed %d = %d", seed, code)
		}
		readEvents(t, ts, sr.ID)
	}
	if s.compactions.Load() == 0 {
		t.Fatal("journal never compacted")
	}
	// 3 completed runs ~ 9 records without compaction; the bound holds
	// it near the threshold.
	if got := st.Journal().Records(); got > 6 {
		t.Fatalf("journal records = %d, want compacted (<= 6)", got)
	}
}

// TestJournalCompactionOnFailures: failed runs also trigger compaction
// — a daemon whose workload keeps failing must not grow its journal
// forever just because nothing ever completes.
func TestJournalCompactionOnFailures(t *testing.T) {
	dir := t.TempDir()
	s, ts, st := newStoreServer(t, dir, Options{JournalCompactEvery: 4})
	defer closeStoreServer(t, s, ts, st)

	// Decodes fine, fails at run time (grid too small for the initial
	// size); each attempt is a fresh run since failures leave the cache.
	bad := `{
		"workload": {"name":"toobig","jobs":2,"inter_arrival":30,"malleable_fraction":1,"initial_size":64,"rigid_size":2},
		"grid": {"clusters":[{"name":"A","nodes":4}]},
		"no_background": true,
		"runs": 1
	}`
	for i := 0; i < 3; i++ {
		sr, code := postConfig(t, ts, bad)
		if code != http.StatusAccepted {
			t.Fatalf("POST %d = %d", i, code)
		}
		readEvents(t, ts, sr.ID)
	}
	if s.runsFailed.Load() != 3 {
		t.Fatalf("failed runs = %d, want 3", s.runsFailed.Load())
	}
	if s.compactions.Load() == 0 {
		t.Fatal("journal never compacted under an all-failure workload")
	}
	if got := st.Journal().Records(); got > 6 {
		t.Fatalf("journal records = %d, want compacted (<= 6)", got)
	}
}
