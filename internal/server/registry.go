package server

import (
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/experiment"
)

// Status is a run's lifecycle state.
type Status string

const (
	// StatusQueued: admitted, waiting for a concurrency slot.
	StatusQueued Status = "queued"
	// StatusRunning: replications executing on the pool.
	StatusRunning Status = "running"
	// StatusDone: finished; Summary is set and the run is cacheable.
	StatusDone Status = "done"
	// StatusFailed: errored or aborted; Error is set.
	StatusFailed Status = "failed"
)

// Run is one submitted experiment: its config, its lifecycle state and
// an append-only event log that NDJSON subscribers replay and follow.
type Run struct {
	ID   string
	Hash string
	Name string

	cfg experiment.Config

	mu      sync.Mutex
	status  Status
	events  []json.RawMessage
	changed chan struct{} // closed and replaced on every append
	summary *experiment.StreamSummary
	errMsg  string
}

func newRun(id, hash string, cfg experiment.Config) *Run {
	return &Run{
		ID:      id,
		Hash:    hash,
		Name:    cfg.Name,
		cfg:     cfg,
		status:  StatusQueued,
		changed: make(chan struct{}),
	}
}

// append marshals an event onto the log and wakes subscribers. The
// optional terminal status is applied under the same lock, so a
// subscriber can never observe a terminal status with the final event
// still missing.
func (r *Run) append(v any, terminal Status) {
	b, err := json.Marshal(v)
	if err != nil {
		// Events are built from plain structs; a marshal failure is a
		// programming error, but a broken event beats a wedged stream.
		b = []byte(fmt.Sprintf(`{"type":"error","error":%q}`, err.Error()))
		terminal = StatusFailed
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, b)
	if terminal != "" {
		r.status = terminal
	}
	close(r.changed)
	r.changed = make(chan struct{})
}

// setStatus transitions a non-terminal state (queued → running).
func (r *Run) setStatus(s Status) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.status = s
}

// finish records the summary and appends the terminal summary event.
func (r *Run) finish(sum experiment.StreamSummary) {
	r.mu.Lock()
	r.summary = &sum
	r.mu.Unlock()
	r.append(summaryEvent{Type: "summary", ID: r.ID, Summary: sum}, StatusDone)
}

// fail records the error and appends the terminal error event.
func (r *Run) fail(msg string) {
	r.mu.Lock()
	r.errMsg = msg
	r.mu.Unlock()
	r.append(errorEvent{Type: "error", ID: r.ID, Error: msg}, StatusFailed)
}

// Status returns the current lifecycle state.
func (r *Run) Status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status
}

// Snapshot returns the state a GET reports: status, summary (when
// done) and error (when failed).
func (r *Run) Snapshot() (Status, *experiment.StreamSummary, string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status, r.summary, r.errMsg
}

// next returns the events from index i on, whether the run is in a
// terminal state, and a channel closed on the next append — everything
// an event subscriber needs for replay-then-follow.
func (r *Run) next(i int) (evs []json.RawMessage, terminal bool, changed <-chan struct{}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i < len(r.events) {
		evs = r.events[i:]
	}
	return evs, r.status == StatusDone || r.status == StatusFailed, r.changed
}

// Registry assigns run IDs and resolves them.
type Registry struct {
	mu   sync.Mutex
	runs map[string]*Run
	seq  int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{runs: make(map[string]*Run)}
}

// Create registers a new run for cfg under a fresh ID.
func (g *Registry) Create(hash string, cfg experiment.Config) *Run {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.seq++
	run := newRun(fmt.Sprintf("exp-%d", g.seq), hash, cfg)
	g.runs[run.ID] = run
	return run
}

// Get resolves a run ID, or nil.
func (g *Registry) Get(id string) *Run {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.runs[id]
}

// Remove forgets a run. Subscribers already holding the *Run keep a
// valid (terminal, immutable) event log; new lookups get 404.
func (g *Registry) Remove(id string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.runs, id)
}

// Len returns the number of registered runs.
func (g *Registry) Len() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.runs)
}

// Wire event shapes. Replication events embed the experiment's
// Replication so its fields flatten into the event object.

type acceptedEvent struct {
	Type string `json:"type"` // "accepted"
	ID   string `json:"id"`
	Name string `json:"name"`
	Hash string `json:"hash"`
	Runs int    `json:"runs"`
}

type repEvent struct {
	Type string `json:"type"` // "replication"
	ID   string `json:"id"`
	experiment.Replication
}

type summaryEvent struct {
	Type    string                   `json:"type"` // "summary"
	ID      string                   `json:"id"`
	Summary experiment.StreamSummary `json:"summary"`
}

type errorEvent struct {
	Type  string `json:"type"` // "error"
	ID    string `json:"id"`
	Error string `json:"error"`
}
