package server

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/experiment"
	"repro/internal/obs"
)

// Status is a run's lifecycle state.
type Status string

const (
	// StatusQueued: admitted, waiting for a concurrency slot.
	StatusQueued Status = "queued"
	// StatusRunning: replications executing on the pool.
	StatusRunning Status = "running"
	// StatusDone: finished; Summary is set and the run is cacheable.
	StatusDone Status = "done"
	// StatusFailed: errored or aborted; Error is set.
	StatusFailed Status = "failed"
)

// Where a run's result came from: simulated by this process, or
// restored from the on-disk result store across a restart.
const (
	SourceLive  = "live"
	SourceStore = "store"
)

// Run is one submitted experiment: its config, its lifecycle state and
// an append-only event log that NDJSON subscribers replay and follow.
type Run struct {
	ID   string
	Hash string
	Name string
	// Source is SourceLive for runs simulated (or simulating) in this
	// process and SourceStore for results restored from disk. Immutable
	// after creation.
	Source string

	cfg experiment.Config
	// specJSON is the submitted ConfigSpec in wire form, kept only when
	// a store is attached: journal compaction rewrites the submitted
	// records of in-flight runs from it.
	specJSON json.RawMessage
	// localOnly pins the run's execution to the in-process backend.
	// Set (before execution starts) on runs admitted through the
	// worker execute endpoint: a worker must never re-forward work to
	// other workers, or a mis-wired topology would bounce runs
	// around forever.
	localOnly bool

	mu     sync.Mutex
	status Status
	// events is the run's NDJSON log. Each entry is one complete,
	// newline-terminated line (framed once, at append time) and is
	// immutable after publication: followers write the stored bytes
	// straight to the wire.
	events []json.RawMessage
	// changed coalesces subscriber wakeups: nil while nobody waits
	// (appends then cost no channel churn at all — the common case,
	// since most events land before any follower attaches or after all
	// have drained), allocated by next() when a subscriber is about to
	// block, closed-and-nilled by the next append. All concurrent
	// waiters share one channel, so a burst of appends wakes each
	// follower once, not once per event.
	changed chan struct{}
	summary *experiment.StreamSummary
	errMsg  string

	// Lifecycle timestamps (wall clock, observability only — they are
	// deliberately absent from the event log and the durable store, so
	// results stay byte-identical across backends and restarts).
	submittedAt time.Time
	startedAt   time.Time
	finishedAt  time.Time

	// trace collects the run's lifecycle spans (observability only,
	// like the timestamps). Always non-nil; beginTrace opens the root
	// span on freshly admitted and re-enqueued runs, while restored
	// runs keep an empty trace (their spans died with the process that
	// simulated them). runSpan/queueSpan are set by beginTrace before
	// the run is visible and never change.
	trace     *obs.Trace
	runSpan   string
	queueSpan string
}

func newRun(id, hash string, cfg experiment.Config, source string) *Run {
	return &Run{
		ID:          id,
		Hash:        hash,
		Name:        cfg.Name,
		Source:      source,
		cfg:         cfg,
		status:      StatusQueued,
		submittedAt: time.Now(),
		trace:       obs.NewTrace(""),
	}
}

// beginTrace opens the run's lifecycle spans: the root "run" span, the
// instantaneous "admit" point, and the "queue" span that stays open
// until the run takes a concurrency slot. A non-empty parent is the
// propagated identity of a coordinator's dispatch span — the run then
// records into the coordinator's trace ID with its root parented under
// that dispatch, which is how a worker's spans nest correctly when the
// coordinator imports them.
func (r *Run) beginTrace(parent obs.SpanContext) {
	if parent.TraceID != "" {
		r.trace = obs.NewTrace(parent.TraceID)
	}
	r.runSpan = r.trace.StartSpan(parent.SpanID, "run",
		map[string]string{"id": r.ID, "name": r.Name, "hash": shortHash(r.Hash)})
	r.trace.Point(r.runSpan, "admit", nil)
	r.queueSpan = r.trace.StartSpan(r.runSpan, "queue", nil)
}

// endTrace closes whatever lifecycle spans are still open; every
// terminal path calls it (EndSpan on an already-ended span is a no-op).
func (r *Run) endTrace() {
	r.trace.EndSpan(r.queueSpan)
	r.trace.EndSpan(r.runSpan)
}

// append marshals an event onto the log and wakes subscribers. The
// optional terminal status is applied under the same lock, so a
// subscriber can never observe a terminal status with the final event
// still missing.
//
// Events are stored newline-terminated: each entry is a complete NDJSON
// line, encoded exactly once here, so every follower fans out the same
// bytes with a single Write and nobody ever appends to a shared backing
// array after publication.
func (r *Run) append(v any, terminal Status) {
	b, err := json.Marshal(v)
	if err != nil {
		// Events are built from plain structs; a marshal failure is a
		// programming error, but a broken event beats a wedged stream.
		b = []byte(fmt.Sprintf(`{"type":"error","error":%q}`, err.Error()))
		terminal = StatusFailed
	}
	b = append(b, '\n')
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, b)
	if terminal != "" {
		r.status = terminal
	}
	if r.changed != nil {
		close(r.changed)
		r.changed = nil
	}
}

// setStatus transitions a non-terminal state (queued → running).
func (r *Run) setStatus(s Status) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.status = s
	if s == StatusRunning && r.startedAt.IsZero() {
		r.startedAt = time.Now()
	}
}

// finish records the summary and appends the terminal summary event.
func (r *Run) finish(sum experiment.StreamSummary) {
	r.mu.Lock()
	r.summary = &sum
	r.finishedAt = time.Now()
	r.mu.Unlock()
	r.append(summaryEvent{Type: "summary", ID: r.ID, Summary: sum}, StatusDone)
}

// restoreDone rebuilds the terminal state of a run recovered from the
// result store: the summary plus a synthesized accepted + summary
// event log so /events replays exactly like a live run's.
func (r *Run) restoreDone(sum experiment.StreamSummary) {
	r.append(acceptedEvent{Type: "accepted", ID: r.ID, Name: r.Name, Hash: r.Hash, Runs: sum.Runs}, "")
	r.mu.Lock()
	r.summary = &sum
	r.mu.Unlock()
	r.append(summaryEvent{Type: "summary", ID: r.ID, Summary: sum}, StatusDone)
}

// fail records the error and appends the terminal error event.
func (r *Run) fail(msg string) {
	r.mu.Lock()
	r.errMsg = msg
	r.finishedAt = time.Now()
	r.mu.Unlock()
	r.append(errorEvent{Type: "error", ID: r.ID, Error: msg}, StatusFailed)
}

// runTimings is the GET /v1/experiments/{id} timing block: lifecycle
// timestamps plus the derived queue and run durations.
type runTimings struct {
	SubmittedAt   time.Time  `json:"submitted_at"`
	StartedAt     *time.Time `json:"started_at,omitempty"`
	FinishedAt    *time.Time `json:"finished_at,omitempty"`
	QueuedSeconds float64    `json:"queued_seconds,omitempty"`
	RunSeconds    float64    `json:"run_seconds,omitempty"`
}

// Timings reports the run's lifecycle timestamps, or nil for results
// restored from the on-disk store (their original timings died with
// the process that simulated them).
func (r *Run) Timings() *runTimings {
	if r.Source == SourceStore {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := &runTimings{SubmittedAt: r.submittedAt}
	if !r.startedAt.IsZero() {
		started := r.startedAt
		t.StartedAt = &started
		t.QueuedSeconds = started.Sub(r.submittedAt).Seconds()
	}
	if !r.finishedAt.IsZero() {
		finished := r.finishedAt
		t.FinishedAt = &finished
		if !r.startedAt.IsZero() {
			t.RunSeconds = finished.Sub(r.startedAt).Seconds()
		}
	}
	return t
}

// Status returns the current lifecycle state.
func (r *Run) Status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status
}

// Snapshot returns the state a GET reports: status, summary (when
// done) and error (when failed).
func (r *Run) Snapshot() (Status, *experiment.StreamSummary, string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.status, r.summary, r.errMsg
}

// next returns the events from index i on, whether the run is in a
// terminal state, and — only when the subscriber has nothing to do but
// block (no new events, not terminal) — a channel closed on the next
// append. When events or the terminal state are returned the channel
// is nil: the subscriber must consume and call next again rather than
// wait, which is what lets append skip channel churn entirely while
// followers are busy draining.
func (r *Run) next(i int) (evs []json.RawMessage, terminal bool, changed <-chan struct{}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i < len(r.events) {
		evs = r.events[i:]
	}
	terminal = r.status == StatusDone || r.status == StatusFailed
	if len(evs) == 0 && !terminal {
		if r.changed == nil {
			r.changed = make(chan struct{})
		}
		changed = r.changed
	}
	return evs, terminal, changed
}

// Registry assigns run IDs and resolves them. Reads (every event
// stream, status GET and metrics gauge resolves through here) take a
// shared lock so they never serialize behind each other — only
// create/adopt/remove write.
type Registry struct {
	mu   sync.RWMutex
	runs map[string]*Run
	seq  int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{runs: make(map[string]*Run)}
}

// Create registers a new run for cfg under a fresh ID. specJSON (the
// wire form of the submitted config, nil without a store) must be
// attached here, before the run becomes visible to concurrent readers.
func (g *Registry) Create(hash string, cfg experiment.Config, specJSON json.RawMessage) *Run {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.seq++
	run := newRun(fmt.Sprintf("exp-%d", g.seq), hash, cfg, SourceLive)
	run.specJSON = specJSON
	g.runs[run.ID] = run
	return run
}

// Adopt registers a run recovered from durable state under its original
// ID when that ID is still free (it is, across a normal restart), or a
// fresh one otherwise. The sequence counter advances past every adopted
// ID so post-recovery Creates never collide with pre-crash runs.
func (g *Registry) Adopt(id, hash string, cfg experiment.Config, specJSON json.RawMessage, source string) *Run {
	g.mu.Lock()
	defer g.mu.Unlock()
	if n, ok := parseRunSeq(id); ok && n > g.seq {
		g.seq = n
	}
	if id == "" || g.runs[id] != nil {
		g.seq++
		id = fmt.Sprintf("exp-%d", g.seq)
	}
	run := newRun(id, hash, cfg, source)
	run.specJSON = specJSON
	g.runs[id] = run
	return run
}

// parseRunSeq extracts N from an "exp-N" run ID.
func parseRunSeq(id string) (int, bool) {
	rest, found := strings.CutPrefix(id, "exp-")
	if !found || rest == "" {
		return 0, false
	}
	n := 0
	for i := 0; i < len(rest); i++ {
		if rest[i] < '0' || rest[i] > '9' {
			return 0, false
		}
		n = n*10 + int(rest[i]-'0')
	}
	return n, true
}

// All returns a snapshot of every registered run, ordered by run
// sequence (creation/adoption order across restarts).
func (g *Registry) All() []*Run {
	g.mu.RLock()
	runs := make([]*Run, 0, len(g.runs))
	for _, run := range g.runs {
		runs = append(runs, run)
	}
	g.mu.RUnlock()
	sort.Slice(runs, func(i, j int) bool {
		ni, iok := parseRunSeq(runs[i].ID)
		nj, jok := parseRunSeq(runs[j].ID)
		if iok && jok && ni != nj {
			return ni < nj
		}
		if iok != jok {
			return iok
		}
		return runs[i].ID < runs[j].ID
	})
	return runs
}

// Get resolves a run ID, or nil.
func (g *Registry) Get(id string) *Run {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.runs[id]
}

// Remove forgets a run. Subscribers already holding the *Run keep a
// valid (terminal, immutable) event log; new lookups get 404.
func (g *Registry) Remove(id string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.runs, id)
}

// Len returns the number of registered runs.
func (g *Registry) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.runs)
}

// Wire event shapes. Replication events embed the experiment's
// Replication so its fields flatten into the event object.

type acceptedEvent struct {
	Type string `json:"type"` // "accepted"
	ID   string `json:"id"`
	Name string `json:"name"`
	Hash string `json:"hash"`
	Runs int    `json:"runs"`
}

type repEvent struct {
	Type string `json:"type"` // "replication"
	ID   string `json:"id"`
	experiment.Replication
}

type summaryEvent struct {
	Type    string                   `json:"type"` // "summary"
	ID      string                   `json:"id"`
	Summary experiment.StreamSummary `json:"summary"`
}

type errorEvent struct {
	Type  string `json:"type"` // "error"
	ID    string `json:"id"`
	Error string `json:"error"`
}

// traceEvent carries a completed run's spans, appended just before the
// terminal summary. Over the worker execute endpoint this is how a
// worker's spans travel back to the coordinator's trace; public
// followers may skip it like any unknown event type.
type traceEvent struct {
	Type  string     `json:"type"` // "trace"
	ID    string     `json:"id"`
	Spans []obs.Span `json:"spans"`
}
