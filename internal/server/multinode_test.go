package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/backend"
	"repro/internal/obs"
)

// testLogger routes a backend's structured log lines into the test log.
func testLogger(t *testing.T) *slog.Logger {
	return slog.New(slog.NewTextHandler(testLogWriter{t}, nil))
}

type testLogWriter struct{ t *testing.T }

func (w testLogWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

// postExecute POSTs a config to the internal worker endpoint and
// consumes the NDJSON response to its end.
func postExecute(t *testing.T, ts *httptest.Server, body string) ([]map[string]any, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+backend.ExecutePath, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode
	}
	var events []map[string]any
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events, resp.StatusCode
}

// TestExecuteEndpoint pins the worker half of multi-node koalad: one
// POST submits and follows a run in a single NDJSON response, and an
// identical re-POST answers from the cache without re-simulating.
func TestExecuteEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Options{})

	events, code := postExecute(t, ts, tinyConfig)
	if code != http.StatusOK {
		t.Fatalf("execute status = %d, want 200", code)
	}
	if len(events) < 4 || events[0]["type"] != "accepted" || events[len(events)-1]["type"] != "summary" {
		t.Fatalf("execute events = %+v", events)
	}
	if s.workerExecutes.Load() != 1 || s.workerDeduped.Load() != 0 {
		t.Fatalf("worker counters = %d/%d, want 1/0", s.workerExecutes.Load(), s.workerDeduped.Load())
	}

	// Dedupe: the same fingerprint answers terminally, zero simulation.
	repsBefore := s.repsDone.Load()
	events2, code2 := postExecute(t, ts, tinyConfig)
	if code2 != http.StatusOK {
		t.Fatalf("re-execute status = %d", code2)
	}
	if events2[len(events2)-1]["type"] != "summary" {
		t.Fatalf("re-execute terminal event = %v", events2[len(events2)-1])
	}
	if s.repsDone.Load() != repsBefore {
		t.Fatal("deduped execute re-simulated replications")
	}
	if s.registry.Len() != 1 {
		t.Fatalf("registry = %d runs, want 1", s.registry.Len())
	}
	if s.workerDeduped.Load() != 1 {
		t.Fatalf("dedup counter = %d, want 1", s.workerDeduped.Load())
	}
	text := string(mustGet(t, ts, "/metrics"))
	for _, want := range []string{
		"koalad_worker_executes_total 2",
		"koalad_worker_dedup_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Bad specs are a 400, like the public submit endpoint.
	if _, code := postExecute(t, ts, `{"workload":{"preset":"NOPE"}}`); code != http.StatusBadRequest {
		t.Fatalf("bad execute spec status = %d, want 400", code)
	}
}

// TestDispatcherRoutesToWorker wires a coordinator daemon to a worker
// daemon over real HTTP and pins the whole multi-node path: the run is
// admitted by the coordinator, simulated by the worker, streamed back
// through the coordinator's event log, and its summary is byte-for-byte
// what a single-node daemon produces for the same config.
func TestDispatcherRoutesToWorker(t *testing.T) {
	worker, workerTS := newTestServer(t, Options{Role: "worker"})
	rb, err := backend.NewRemote(backend.RemoteOptions{Workers: []string{workerTS.URL}, Log: testLogger(t)})
	if err != nil {
		t.Fatal(err)
	}
	coord, coordTS := newTestServer(t, Options{Backend: rb, Role: "coordinator"})
	single, singleTS := newTestServer(t, Options{})

	sr, code := postConfig(t, coordTS, tinyConfig)
	if code != http.StatusAccepted {
		t.Fatalf("coordinator POST status = %d", code)
	}
	events := readEvents(t, coordTS, sr.ID)
	if events[len(events)-1]["type"] != "summary" {
		t.Fatalf("coordinator terminal event = %v", events[len(events)-1])
	}
	reps := 0
	for _, ev := range events {
		if ev["type"] == "replication" {
			reps++
		}
	}
	if reps != 2 {
		t.Fatalf("coordinator streamed %d replication events, want 2", reps)
	}
	// The worker simulated (its execute endpoint admitted the run);
	// the coordinator only relayed progress — its repsDone counts the
	// replication events streamed back, and the dispatch counters
	// prove where the work ran.
	if worker.repsDone.Load() != 2 || worker.workerExecutes.Load() != 1 {
		t.Fatalf("worker repsDone/executes = %d/%d, want 2/1",
			worker.repsDone.Load(), worker.workerExecutes.Load())
	}
	if coord.repsDone.Load() != 2 || coord.workerExecutes.Load() != 0 {
		t.Fatalf("coordinator repsDone/executes = %d/%d, want 2/0 (streamed, not simulated)",
			coord.repsDone.Load(), coord.workerExecutes.Load())
	}
	if st := rb.Stats(); st.Dispatched != 1 || st.RemoteDone != 1 || st.Failovers != 0 {
		t.Fatalf("dispatch stats = %+v", st)
	}

	// Byte-for-byte: the coordinator's summary equals the single-node
	// daemon's for the identical config.
	sr2, _ := postConfig(t, singleTS, tinyConfig)
	readEvents(t, singleTS, sr2.ID)
	_ = single
	type wire struct {
		Summary json.RawMessage `json:"summary"`
	}
	var cw, sw wire
	if err := json.Unmarshal(mustGet(t, coordTS, "/v1/experiments/"+sr.ID), &cw); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(mustGet(t, singleTS, "/v1/experiments/"+sr2.ID), &sw); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cw.Summary, sw.Summary) {
		t.Fatalf("dispatched summary diverges from single-node:\ncoord:  %s\nsingle: %s", cw.Summary, sw.Summary)
	}

	// Coordinator metrics expose the dispatch counters.
	text := string(mustGet(t, coordTS, "/metrics"))
	for _, want := range []string{
		"koalad_dispatch_workers 1",
		"koalad_dispatch_remote_total 1",
		"koalad_dispatch_remote_done_total 1",
		"koalad_dispatch_failover_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("coordinator metrics missing %q", want)
		}
	}
	// And /healthz reports role and backend.
	var hz healthzResponse
	if err := json.Unmarshal(mustGet(t, coordTS, "/healthz"), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Role != "coordinator" || hz.Backend != "remote" {
		t.Fatalf("coordinator healthz = %+v", hz)
	}
}

// TestDispatchTracePropagation pins the cross-node half of the
// observability plane: the coordinator's dispatch stamps its trace and
// span identity on the execute request, the worker records its own
// lifecycle into that trace ID, streams its spans back as a trace
// event, and the coordinator's /trace then shows the worker's run span
// parented under the coordinator's dispatch span.
func TestDispatchTracePropagation(t *testing.T) {
	_, workerTS := newTestServer(t, Options{Role: "worker"})
	rb, err := backend.NewRemote(backend.RemoteOptions{Workers: []string{workerTS.URL}, Log: testLogger(t)})
	if err != nil {
		t.Fatal(err)
	}
	_, coordTS := newTestServer(t, Options{Backend: rb, Role: "coordinator"})

	sr, code := postConfig(t, coordTS, tinyConfig)
	if code != http.StatusAccepted {
		t.Fatalf("POST status = %d", code)
	}
	readEvents(t, coordTS, sr.ID)

	var trace obs.TraceJSON
	if err := json.Unmarshal(mustGet(t, coordTS, "/v1/experiments/"+sr.ID+"/trace"), &trace); err != nil {
		t.Fatal(err)
	}
	var dispatch, coordRun, workerRun *obs.Span
	for i, sp := range trace.Spans {
		if sp.Name == "run" && sp.Parent == "" {
			coordRun = &trace.Spans[i]
		}
	}
	if coordRun == nil {
		t.Fatalf("coordinator trace has no root run span: %+v", trace.Spans)
	}
	// Both daemons record a dispatch span (the worker's is imported);
	// the coordinator's is the one under its root run span.
	for i, sp := range trace.Spans {
		if sp.Name == "dispatch" && sp.Parent == coordRun.ID {
			dispatch = &trace.Spans[i]
		}
	}
	if dispatch == nil {
		t.Fatalf("coordinator trace missing its dispatch span: %+v", trace.Spans)
	}
	for i, sp := range trace.Spans {
		if sp.Name == "run" && sp.Parent == dispatch.ID {
			workerRun = &trace.Spans[i]
		}
	}
	if workerRun == nil {
		t.Fatalf("no worker run span parented under dispatch %s: %+v", dispatch.ID, trace.Spans)
	}
	// The worker's replications rode back too, parented under its own
	// dispatch span, which sits under its run span.
	workerReps := 0
	byID := make(map[string]obs.Span, len(trace.Spans))
	for _, sp := range trace.Spans {
		byID[sp.ID] = sp
	}
	for _, sp := range trace.Spans {
		if sp.Name != "replication" {
			continue
		}
		if parent, ok := byID[sp.Parent]; ok && parent.Name == "dispatch" && parent.Parent == workerRun.ID {
			workerReps++
		}
	}
	if workerReps != 2 {
		t.Fatalf("worker replication spans under its dispatch = %d, want 2", workerReps)
	}
}

// TestDispatcherFailsOverToLocal: a coordinator whose only worker is
// unreachable still completes the run locally, byte-identical to a
// single-node daemon, and counts the failover.
func TestDispatcherFailsOverToLocal(t *testing.T) {
	rb, err := backend.NewRemote(backend.RemoteOptions{Workers: []string{"http://127.0.0.1:1"}, Log: testLogger(t)})
	if err != nil {
		t.Fatal(err)
	}
	coord, coordTS := newTestServer(t, Options{Backend: rb})
	_, singleTS := newTestServer(t, Options{})

	sr, code := postConfig(t, coordTS, tinyConfig)
	if code != http.StatusAccepted {
		t.Fatalf("POST status = %d", code)
	}
	events := readEvents(t, coordTS, sr.ID)
	if events[len(events)-1]["type"] != "summary" {
		t.Fatalf("terminal event = %v", events[len(events)-1])
	}
	if st := rb.Stats(); st.Failovers != 1 {
		t.Fatalf("dispatch stats = %+v", st)
	}
	if coord.repsDone.Load() != 2 {
		t.Fatalf("coordinator repsDone = %d, want 2 after failover", coord.repsDone.Load())
	}

	sr2, _ := postConfig(t, singleTS, tinyConfig)
	readEvents(t, singleTS, sr2.ID)
	type wire struct {
		Summary json.RawMessage `json:"summary"`
	}
	var cw, sw wire
	if err := json.Unmarshal(mustGet(t, coordTS, "/v1/experiments/"+sr.ID), &cw); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(mustGet(t, singleTS, "/v1/experiments/"+sr2.ID), &sw); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cw.Summary, sw.Summary) {
		t.Fatalf("failover summary diverges from single-node:\ncoord:  %s\nsingle: %s", cw.Summary, sw.Summary)
	}
}

// TestSelfDispatchFailsOverInsteadOfDeadlocking pins the nastiest
// mis-wiring: a coordinator whose -workers list routes back to itself.
// The self-addressed execute request must be bounced (503), not
// coalesced onto the very run whose dispatch issued it — coalescing
// would wait for a terminal event that only this response could
// produce. The run then completes via local failover, byte-identical.
func TestSelfDispatchFailsOverInsteadOfDeadlocking(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	rb, err := backend.NewRemote(backend.RemoteOptions{Workers: []string{ts.URL}, Log: testLogger(t)})
	if err != nil {
		t.Fatal(err)
	}
	s.backend = rb // the daemon dispatches to itself

	sr, code := postConfig(t, ts, tinyConfig)
	if code != http.StatusAccepted {
		t.Fatalf("POST status = %d", code)
	}
	events := readEvents(t, ts, sr.ID)
	if events[len(events)-1]["type"] != "summary" {
		t.Fatalf("terminal event = %v", events[len(events)-1])
	}
	if st := rb.Stats(); st.Failovers != 1 || st.RemoteDone != 0 {
		t.Fatalf("self-dispatch stats = %+v, want one failover", st)
	}
	if s.workerExecutes.Load() != 0 {
		t.Fatalf("self-dispatched execute was served (%d), want bounced", s.workerExecutes.Load())
	}
}

// TestExecuteNeverReforwards pins the loop guard: runs admitted via
// the execute endpoint run on the in-process backend even when the
// daemon is (mis)configured with a remote backend, so a cycle of
// coordinators cannot bounce a run around forever.
func TestExecuteNeverReforwards(t *testing.T) {
	rb, err := backend.NewRemote(backend.RemoteOptions{Workers: []string{"http://127.0.0.1:1"}, Log: testLogger(t)})
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Options{Backend: rb})
	events, code := postExecute(t, ts, tinyConfig)
	if code != http.StatusOK {
		t.Fatalf("execute status = %d", code)
	}
	if events[len(events)-1]["type"] != "summary" {
		t.Fatalf("terminal event = %v", events[len(events)-1])
	}
	if st := rb.Stats(); st.Dispatched != 0 {
		t.Fatalf("execute-admitted run was re-forwarded: %+v", st)
	}
	if s.repsDone.Load() != 2 {
		t.Fatalf("repsDone = %d, want 2 (simulated in-process)", s.repsDone.Load())
	}
}
