// Package experiment wires the full stack — workloads, KOALA, the
// malleability manager and the metrics collector — into repeatable
// experiments, one per table/figure of the paper's evaluation (§VI–VII).
// Each experiment point averages several independent seeded runs, as the
// paper does ("we have done 4 runs for each combination").
package experiment

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/gram"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Config describes one experiment point: a workload under a malleability
// policy and a job-management approach.
type Config struct {
	Name string
	// Workload is the workload spec; its Seed is overridden per run.
	Workload workload.Spec
	// Policy is FPSMA, EGS, EQUI or FOLD.
	Policy string
	// Approach is PRA or PWA.
	Approach string
	// Placement names the KOALA placement policy (default WF).
	Placement string
	// Runs is the number of independent runs to pool (default 4).
	Runs int
	// Parallelism bounds the number of concurrently executing simulations:
	// Run pools the independent seeded runs, and RunSet flattens all its
	// (combo, replication) pairs into one pool of this size. 0 means one
	// worker per CPU; 1 runs serially. Results are identical to serial
	// execution for any value: each run owns its seed and its engine, and
	// the pool writes into order-preserving slots.
	Parallelism int
	// Seed is the base seed; run i uses Seed+i.
	Seed uint64
	// PollInterval is the scheduler/manager polling period (default 5 s).
	PollInterval float64
	// SamplePeriod is the utilisation sampling period (default 10 s).
	SamplePeriod float64
	// GrowthReserve keeps processors per cluster for local users (§V-B).
	GrowthReserve int
	// Horizon bounds each run's virtual time (default: submission span
	// plus a generous drain window).
	Horizon float64
	// Grid overrides the testbed (default DAS-3); used by small tests.
	// The closure runs once per replication, possibly from concurrent
	// worker goroutines, so it must build a fresh Multicluster on every
	// call — returning a shared cached instance would race.
	Grid func() *cluster.Multicluster
	// GramOverride replaces the default GRAM latency model (ablations).
	GramOverride *gram.Config
	// Background adds bypassing local users (§V-B). When nil, the shared
	// DAS-3 conditions of DefaultBackground are used; set NoBackground for
	// a dedicated (idle) testbed.
	Background *workload.BackgroundSpec
	// NoBackground disables background load entirely.
	NoBackground bool
	// DisableMalleability runs plain KOALA (rigid baseline comparisons).
	DisableMalleability bool
	// SimStats, when non-nil, passively collects kernel and manager
	// statistics (events scheduled/fired/canceled, peak pending,
	// grow/shrink decisions) across the config's replications. It is
	// observability only: it never changes results and is excluded from
	// the fingerprint, so a config with and without it is the same
	// experiment. Local execution only — it does not cross the wire to
	// remote backends.
	SimStats *obs.SimStats
}

func (c Config) withDefaults() Config {
	if c.Policy == "" {
		c.Policy = "FPSMA"
	}
	if c.Approach == "" {
		c.Approach = "PRA"
	}
	if c.Placement == "" {
		c.Placement = "WF"
	}
	if c.Runs <= 0 {
		c.Runs = 4
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 15
	}
	if c.SamplePeriod <= 0 {
		c.SamplePeriod = 10
	}
	if c.Horizon <= 0 {
		span := float64(c.Workload.Jobs) * c.Workload.InterArrival
		c.Horizon = span + 40000
	}
	if c.Grid == nil {
		c.Grid = cluster.DAS3
	}
	if c.Name == "" {
		c.Name = fmt.Sprintf("%s/%s/%s", c.Approach, c.Policy, c.Workload.Name)
	}
	if c.Background == nil && !c.NoBackground {
		bg := DefaultBackground()
		c.Background = &bg
	}
	return c
}

// DefaultBackground models the concurrent DAS-3 users during the paper's
// PRA experiments, who bypass KOALA and whose activity KOALA discovers only
// by polling (§V-B, §VI-C): a moderate load that "does not disturb the
// measures" (§VI-C).
func DefaultBackground() workload.BackgroundSpec {
	return workload.BackgroundSpec{MeanInterArrival: 240, MeanDuration: 480, MaxNodes: 24}
}

// PWABackground models the busier shared-testbed conditions under which the
// PWA experiments operate: §VII-B requires the system load to be high
// enough that mandatory shrinks actually happen ("if the system load is
// low, no job is shrunk and PWA behaves like PRA"). The W' workloads halve
// the inter-arrival time *and* the paper's runs competed with heavy
// concurrent usage; this preset recreates that regime.
func PWABackground() workload.BackgroundSpec {
	return workload.BackgroundSpec{MeanInterArrival: 90, MeanDuration: 1200, MaxNodes: 48}
}

// RunResult is the outcome of a single seeded run.
type RunResult struct {
	Seed        uint64
	Records     []metrics.JobRecord
	Rejected    int
	Utilization *stats.TimeSeries
	GrowOps     *stats.TimeSeries
	ShrinkOps   *stats.TimeSeries
	Makespan    float64
	TotalOps    float64
}

// Result pools the runs of one experiment point.
type Result struct {
	Config Config
	Runs   []*RunResult
	// Pooled concatenates the per-run job records (the paper's CDFs are
	// computed over all jobs of all runs of a combination).
	Pooled []metrics.JobRecord
}

// RunOnce executes one seeded run. It is Prepare followed by a single
// Prepared.RunOnce — the batched path through Prepared is the same code,
// so both modes produce byte-identical results for the same config and
// seed.
func RunOnce(cfg Config, seed uint64) (*RunResult, error) {
	p, err := Prepare(cfg)
	if err != nil {
		return nil, err
	}
	return p.RunOnce(seed)
}

func lastEnd(recs []metrics.JobRecord) float64 {
	end := 0.0
	for _, r := range recs {
		if r.EndTime > end {
			end = r.EndTime
		}
	}
	return end
}

// Run executes cfg.Runs seeded runs and pools their records. The runs are
// independent (run i is seeded Seed+i and builds its own engine), so they
// execute on a bounded worker pool of cfg.Parallelism goroutines; the
// pooled records are in the same order as a serial loop.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cancellation: a canceled ctx (or the first failing
// run) stops the pool from dispatching further runs. The point's setup is
// prepared once (Prepare) and shared read-only by every replication.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	p, err := Prepare(cfg)
	if err != nil {
		return nil, err
	}
	cfg = p.Config()
	runs := make([]*RunResult, cfg.Runs)
	err = parallel.ForEach(ctx, cfg.Runs, cfg.Parallelism, func(_ context.Context, i int) error {
		r, err := p.RunOnce(cfg.Seed + uint64(i))
		if err != nil {
			return err
		}
		runs[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return newResult(cfg, runs), nil
}

// newResult assembles a Result from completed runs, concatenating their
// records into Pooled in run order (the paper's CDFs are computed over all
// jobs of all runs of a combination).
func newResult(cfg Config, runs []*RunResult) *Result {
	out := &Result{Config: cfg, Runs: runs}
	for _, r := range runs {
		out.Pooled = append(out.Pooled, r.Records...)
	}
	return out
}

// MalleableRecords returns the pooled records restricted to malleable jobs
// (the population whose sizes Figs. 7a/b and 8a/b report).
func (r *Result) MalleableRecords() []metrics.JobRecord {
	return metrics.OnlyMalleable(r.Pooled)
}

// MeanUtilization averages the time-averaged utilisation over the runs,
// evaluated over each run's active span.
func (r *Result) MeanUtilization() float64 {
	if len(r.Runs) == 0 {
		return 0
	}
	sum := 0.0
	for _, run := range r.Runs {
		if run.Makespan > 0 {
			sum += run.Utilization.MeanOver(0, run.Makespan)
		}
	}
	return sum / float64(len(r.Runs))
}

// MeanResponse returns the mean response time over pooled records.
func (r *Result) MeanResponse() float64 {
	return stats.Mean(metrics.ResponseTimesOf(r.Pooled))
}

// MeanExecution returns the mean execution time over pooled records.
func (r *Result) MeanExecution() float64 {
	return stats.Mean(metrics.ExecTimesOf(r.Pooled))
}

// TotalOps averages the number of malleability operations per run.
func (r *Result) TotalOps() float64 {
	if len(r.Runs) == 0 {
		return 0
	}
	sum := 0.0
	for _, run := range r.Runs {
		sum += run.TotalOps
	}
	return sum / float64(len(r.Runs))
}
