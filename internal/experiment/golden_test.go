package experiment

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/metrics"
	"repro/internal/workload"
)

// The golden file pins RunOnce byte-for-byte across refactors of the hot
// path (event pooling, slice-backed snapshots, incremental scheduler
// indexes): the simulation must produce *identical* records — float for
// float — to the pre-refactor engine for every malleability policy × both
// approaches, and for every placement policy. Regenerate only when a change
// is *meant* to alter results:
//
//	go test ./internal/experiment -run TestRunOnceMatchesGoldens -update-goldens
var updateGoldens = flag.Bool("update-goldens", false, "rewrite testdata/runonce_goldens.json from the current engine")

const goldenPath = "testdata/runonce_goldens.json"

// goldenRun is the determinism surface of one seeded run: every per-job
// record plus the scalar aggregates and a shape pin of the sampled series.
type goldenRun struct {
	Name     string              `json:"name"`
	Records  []metrics.JobRecord `json:"records"`
	Rejected int                 `json:"rejected"`
	Makespan float64             `json:"makespan"`
	TotalOps float64             `json:"total_ops"`
	UtilLen  int                 `json:"util_len"`
	UtilMean float64             `json:"util_mean"`
	GrowLen  int                 `json:"grow_len"`
}

// goldenCombos enumerates the pinned configurations: the four malleability
// policies × both job-management approaches on a shortened Wm, and the four
// placement policies on a shortened Wmr.
func goldenCombos() []Config {
	shorten := func(s workload.Spec) workload.Spec {
		s.Jobs = 60
		return s
	}
	var combos []Config
	for _, approach := range []string{"PRA", "PWA"} {
		for _, policy := range []string{"FPSMA", "EGS", "EQUI", "FOLD"} {
			combos = append(combos, Config{
				Name:     approach + "/" + policy,
				Workload: shorten(workload.Wm(1)),
				Policy:   policy,
				Approach: approach,
			})
		}
	}
	for _, placement := range []string{"WF", "CF", "CM", "FCM"} {
		combos = append(combos, Config{
			Name:      "placement/" + placement,
			Workload:  shorten(workload.Wmr(1)),
			Policy:    "FPSMA",
			Approach:  "PRA",
			Placement: placement,
		})
	}
	return combos
}

func goldenOf(t *testing.T, cfg Config) goldenRun {
	t.Helper()
	res, err := RunOnce(cfg, 42)
	if err != nil {
		t.Fatalf("%s: %v", cfg.Name, err)
	}
	g := goldenRun{
		Name:     cfg.Name,
		Records:  res.Records,
		Rejected: res.Rejected,
		Makespan: res.Makespan,
		TotalOps: res.TotalOps,
		UtilLen:  res.Utilization.Len(),
		GrowLen:  res.GrowOps.Len(),
	}
	if res.Makespan > 0 {
		g.UtilMean = res.Utilization.MeanOver(0, res.Makespan)
	}
	return g
}

func TestRunOnceMatchesGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("golden runs are full simulations")
	}
	combos := goldenCombos()
	got := make([]goldenRun, len(combos))
	for i, cfg := range combos {
		got[i] = goldenOf(t, cfg)
	}

	if *updateGoldens {
		data, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden runs to %s", len(got), goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read goldens (regenerate with -update-goldens): %v", err)
	}
	var want []goldenRun
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden file has %d runs, want %d (regenerate with -update-goldens)", len(want), len(got))
	}
	for i := range want {
		if got[i].Name != want[i].Name {
			t.Fatalf("combo %d is %q, golden is %q", i, got[i].Name, want[i].Name)
		}
		if len(got[i].Records) != len(want[i].Records) {
			t.Errorf("%s: %d records, golden has %d", got[i].Name, len(got[i].Records), len(want[i].Records))
			continue
		}
		for r := range want[i].Records {
			if !reflect.DeepEqual(got[i].Records[r], want[i].Records[r]) {
				t.Errorf("%s: record %d diverged:\n got %+v\nwant %+v", got[i].Name, r, got[i].Records[r], want[i].Records[r])
				break
			}
		}
		g, w := got[i], want[i]
		g.Records, w.Records = nil, nil
		if !reflect.DeepEqual(g, w) {
			t.Errorf("%s: aggregates diverged:\n got %+v\nwant %+v", got[i].Name, g, w)
		}
	}
}
