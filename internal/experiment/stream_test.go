package experiment

import (
	"context"
	"math"
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/stats"
)

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) / math.Max(scale, 1)
}

// TestRunStreamMatchesBatch is the determinism regression pinning the
// streaming aggregation path to the batch engine: same config and seed
// must yield the same metrics whether records are pooled or streamed.
func TestRunStreamMatchesBatch(t *testing.T) {
	cfg := Config{
		Workload: smallWorkload("small", 15, 60, 1)(1),
		Policy:   "FPSMA",
		Approach: "PRA",
		Grid:     smallGrid,
		Runs:     3,
		Seed:     5,
	}
	batch, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if stream.Jobs() != len(batch.Pooled) {
		t.Fatalf("stream jobs = %d, batch %d", stream.Jobs(), len(batch.Pooled))
	}
	if stream.Agg.Malleable != len(batch.MalleableRecords()) {
		t.Fatalf("stream malleable = %d, batch %d", stream.Agg.Malleable, len(batch.MalleableRecords()))
	}
	// Per-replication scalars follow the exact same float operations in
	// the same order, so they are bit-identical.
	if got, want := stream.MeanUtilization(), batch.MeanUtilization(); got != want {
		t.Errorf("MeanUtilization: stream %v, batch %v", got, want)
	}
	if got, want := stream.TotalOps(), batch.TotalOps(); got != want {
		t.Errorf("TotalOps: stream %v, batch %v", got, want)
	}
	// Pooled means differ only by summation associativity (per-rep
	// partial sums), i.e. a few ulps.
	if d := relDiff(stream.MeanExecution(), batch.MeanExecution()); d > 1e-12 {
		t.Errorf("MeanExecution: stream %v, batch %v (rel %g)", stream.MeanExecution(), batch.MeanExecution(), d)
	}
	if d := relDiff(stream.MeanResponse(), batch.MeanResponse()); d > 1e-12 {
		t.Errorf("MeanResponse: stream %v, batch %v (rel %g)", stream.MeanResponse(), batch.MeanResponse(), d)
	}
	// Sketch quantiles stay within the sketch's relative error of the
	// batch nearest-rank values.
	execs := metrics.ExecTimesOf(batch.Pooled)
	med := stream.Agg.Exec.Sketch.Quantile(0.5)
	if d := relDiff(med, stats.Percentile(execs, 50)); d > 3*stats.DefaultSketchAccuracy {
		t.Errorf("exec median: stream %v, batch %v (rel %g)", med, stats.Percentile(execs, 50), d)
	}

	// Per-replication summaries line up with the batch runs.
	if len(stream.Replications) != len(batch.Runs) {
		t.Fatalf("replications = %d, want %d", len(stream.Replications), len(batch.Runs))
	}
	for i, rep := range stream.Replications {
		run := batch.Runs[i]
		if rep.Seed != run.Seed || rep.Jobs != len(run.Records) || rep.Makespan != run.Makespan {
			t.Errorf("replication %d diverges: %+v vs seed=%d jobs=%d makespan=%v",
				i, rep, run.Seed, len(run.Records), run.Makespan)
		}
	}
}

// TestRunStreamDeterministicAcrossParallelism pins that the merged
// aggregate does not depend on completion order.
func TestRunStreamDeterministicAcrossParallelism(t *testing.T) {
	cfg := Config{
		Workload: smallWorkload("small", 10, 60, 1)(1),
		Grid:     smallGrid,
		Runs:     4,
		Seed:     2,
	}
	serial := cfg
	serial.Parallelism = 1
	wide := cfg
	wide.Parallelism = 4

	a, err := RunStream(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunStream(wide)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanExecution() != b.MeanExecution() || a.MeanResponse() != b.MeanResponse() {
		t.Errorf("means differ across parallelism: %v/%v vs %v/%v",
			a.MeanExecution(), a.MeanResponse(), b.MeanExecution(), b.MeanResponse())
	}
	if a.Agg.Exec.Sketch.Quantile(0.9) != b.Agg.Exec.Sketch.Quantile(0.9) {
		t.Error("sketch quantiles differ across parallelism")
	}
	if a.MeanUtilization() != b.MeanUtilization() {
		t.Error("utilisation differs across parallelism")
	}
}

// TestRunStreamCallback checks every replication is reported exactly
// once, and that concurrent invocation is the caller's to synchronize.
func TestRunStreamCallback(t *testing.T) {
	cfg := Config{
		Workload:    smallWorkload("small", 5, 60, 1)(1),
		Grid:        smallGrid,
		Runs:        3,
		Seed:        1,
		Parallelism: 3,
	}
	var mu sync.Mutex
	seen := make(map[int]int)
	res, err := RunStreamContext(context.Background(), cfg, StreamHooks{OnDone: func(rep Replication) {
		mu.Lock()
		defer mu.Unlock()
		seen[rep.Rep]++
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 3 {
		t.Fatalf("callback saw %d replications, want 3", len(seen))
	}
	for i, n := range seen {
		if n != 1 {
			t.Errorf("replication %d reported %d times", i, n)
		}
	}
	if res.Jobs() != 15 {
		t.Errorf("jobs = %d, want 15", res.Jobs())
	}
}

// TestRunStreamRetainsNoRecords pins the memory contract: the result
// holds aggregates and per-replication scalars only.
func TestRunStreamRetainsNoRecords(t *testing.T) {
	cfg := Config{
		Workload: smallWorkload("small", 8, 60, 1)(1),
		Grid:     smallGrid,
		Runs:     2,
		Seed:     1,
	}
	res, err := RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The compile-time shape already guarantees it (StreamResult has no
	// record field); assert the aggregate counted without storing.
	if res.Agg.Jobs != 16 || res.Agg.Exec.N() != 16 {
		t.Fatalf("aggregate miscounted: %d/%d", res.Agg.Jobs, res.Agg.Exec.N())
	}
	sum := res.Summary()
	if sum.Jobs != 16 || sum.Runs != 2 || len(sum.Replications) != 2 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.Exec.N != 16 || sum.Exec.Mean <= 0 || sum.Exec.Median <= 0 {
		t.Fatalf("exec summary = %+v", sum.Exec)
	}
}

func TestRunStreamPropagatesErrors(t *testing.T) {
	cfg := Config{
		Workload: smallWorkload("small", 2, 60, 1)(1),
		Grid:     smallGrid,
		Policy:   "NOPE",
		Runs:     2,
	}
	if _, err := RunStream(cfg); err == nil {
		t.Fatal("bad policy did not error")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	good := Config{Workload: smallWorkload("small", 2, 60, 1)(1), Grid: smallGrid, Runs: 2}
	if _, err := RunStreamContext(ctx, good, StreamHooks{}); err == nil {
		t.Fatal("canceled context did not error")
	}
}
