package experiment

import (
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/workload"
)

// TestRunOnceWithSimStats pins that attaching the passive collector (a)
// leaves the run's results byte-identical to an unobserved run and (b)
// actually populates the kernel and manager counters.
func TestRunOnceWithSimStats(t *testing.T) {
	spec := workload.Wm(1)
	spec.Jobs = 30
	base := Config{Name: "simstats", Workload: spec}

	plain, err := RunOnce(base, 1)
	if err != nil {
		t.Fatal(err)
	}

	cfg := base
	cfg.SimStats = obs.NewSimStats()
	observed, err := RunOnce(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(plain.Records, observed.Records) {
		t.Fatal("job records differ with SimStats attached; the collector must be pure observation")
	}
	if plain.Makespan != observed.Makespan || plain.TotalOps != observed.TotalOps {
		t.Fatalf("aggregates differ with SimStats attached: makespan %g vs %g, ops %g vs %g",
			plain.Makespan, observed.Makespan, plain.TotalOps, observed.TotalOps)
	}

	snap := cfg.SimStats.Snapshot()
	if snap.EventsScheduled == 0 || snap.EventsFired == 0 {
		t.Fatalf("collector saw no kernel events: %+v", snap)
	}
	if snap.EventsFired > snap.EventsScheduled {
		t.Fatalf("fired %d > scheduled %d", snap.EventsFired, snap.EventsScheduled)
	}
	if snap.PendingPeak <= 0 {
		t.Fatalf("pending peak = %d, want > 0", snap.PendingPeak)
	}
	if snap.SimHorizon <= 0 {
		t.Fatalf("sim horizon = %g, want > 0", snap.SimHorizon)
	}
	if observed.TotalOps > 0 && snap.GrowDecisions+snap.ShrinkDecisions == 0 {
		t.Fatalf("run performed %g malleability ops but collector saw none", observed.TotalOps)
	}
}

// TestSimStatsExcludedFromFingerprint pins that the collector is a runtime
// attachment, not part of the experiment's identity.
func TestSimStatsExcludedFromFingerprint(t *testing.T) {
	spec := workload.Wm(1)
	spec.Jobs = 30
	base := Config{Name: "simstats", Workload: spec}
	withStats := base
	withStats.SimStats = obs.NewSimStats()
	a, err := Fingerprint(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fingerprint(withStats)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("fingerprint changed when SimStats attached: %s vs %s", a, b)
	}
}
