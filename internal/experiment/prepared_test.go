package experiment

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/workload"
)

// TestPreparedBatchedMatchesSingleShot pins the batched-replication
// contract byte-for-byte: one Prepared shared across several seeds must
// produce exactly the results of a fresh single-shot RunOnce per seed,
// for every malleability policy × approach and every placement policy
// (the same matrix the golden file pins). Any seed-dependent state
// leaking into Prepared — a mutated workload spec, a reused collector,
// a shared RNG — shows up here as a byte diff.
func TestPreparedBatchedMatchesSingleShot(t *testing.T) {
	if testing.Short() {
		t.Skip("full replication matrix")
	}
	for _, cfg := range goldenCombos() {
		prep, err := Prepare(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		for _, seed := range []uint64{1, 42, 7} {
			batched, err := prep.RunOnce(seed)
			if err != nil {
				t.Fatalf("%s seed %d (batched): %v", cfg.Name, seed, err)
			}
			single, err := RunOnce(cfg, seed)
			if err != nil {
				t.Fatalf("%s seed %d (single): %v", cfg.Name, seed, err)
			}
			bb := marshalResult(t, batched)
			sb := marshalResult(t, single)
			if !bytes.Equal(bb, sb) {
				t.Errorf("%s seed %d: batched result diverged from single-shot:\nbatched: %s\nsingle:  %s",
					cfg.Name, seed, bb, sb)
			}
		}
	}
}

// marshalResult renders the determinism surface of a run (the same
// fields the golden file pins) to canonical JSON for byte comparison.
func marshalResult(t *testing.T, res *RunResult) []byte {
	t.Helper()
	g := goldenRun{
		Records:  res.Records,
		Rejected: res.Rejected,
		Makespan: res.Makespan,
		TotalOps: res.TotalOps,
		UtilLen:  res.Utilization.Len(),
		GrowLen:  res.GrowOps.Len(),
	}
	if res.Makespan > 0 {
		g.UtilMean = res.Utilization.MeanOver(0, res.Makespan)
	}
	b, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestPreparedReplicationsAllocateLess pins the point of batching: a
// replication through a shared Prepared must allocate strictly less
// than a single-shot RunOnce, because the per-point setup (spec
// validation, workload preparation with its rendered job IDs, the site
// index) is paid once instead of per seed. A regression here means
// setup work crept back into the per-seed path.
func TestPreparedReplicationsAllocateLess(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement runs full simulations")
	}
	cfg := Config{
		Name:     "alloc",
		Workload: func() workload.Spec { s := workload.Wm(1); s.Jobs = 30; return s }(),
		Policy:   "EGS",
		Approach: "PRA",
	}
	prep, err := Prepare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Warm both paths so lazy package state doesn't skew the counts.
	if _, err := prep.RunOnce(1); err != nil {
		t.Fatal(err)
	}
	if _, err := RunOnce(cfg, 1); err != nil {
		t.Fatal(err)
	}

	var seed uint64
	batched := testing.AllocsPerRun(5, func() {
		seed++
		if _, err := prep.RunOnce(seed); err != nil {
			t.Error(err)
		}
	})
	seed = 0
	single := testing.AllocsPerRun(5, func() {
		seed++
		if _, err := RunOnce(cfg, seed); err != nil {
			t.Error(err)
		}
	})
	if batched >= single {
		t.Errorf("batched replication allocates %.0f allocs/run, single-shot %.0f — sharing setup saved nothing", batched, single)
	}
	t.Logf("allocs/run: batched %.0f, single-shot %.0f", batched, single)
}
