package experiment

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/stats"
)

func testSummary() StreamSummary {
	awkward := stats.Summary{
		N: 3, Mean: 1.0 / 3.0, StdDev: 0.1 + 0.2, Min: 1e-17,
		P25: 2.0 / 7.0, Median: 0.5, P75: 0.75, P90: 123456.789012345, Max: 1e17,
	}
	return StreamSummary{
		Name: "round-trip", Runs: 2, Jobs: 8, Malleable: 6, Rejected: 1,
		MeanUtilization: 0.7000000000000001, OpsPerRun: 12.5,
		Exec: awkward, Response: awkward, AvgProcs: awkward, MaxProcs: awkward,
		Replications: []Replication{
			{Rep: 0, Seed: 1, Jobs: 4, Malleable: 3, Makespan: 1234.5678901234567, MeanUtilization: 0.1 + 0.7, Ops: 6, MeanExecution: 1.0 / 7.0, MeanResponse: 2.0 / 3.0},
			{Rep: 1, Seed: 2, Jobs: 4, Malleable: 3, Rejected: 1, Makespan: 999.0001},
		},
	}
}

// TestSummaryRoundTripStable pins the stable-serialization contract the
// on-disk result store depends on: decode(encode(s)) == s, and
// re-encoding the decoded value is byte-identical — floats chosen to
// stress shortest-round-trip formatting. This is what lets a restarted
// koalad serve a stored summary byte-identically to the process that
// computed it.
func TestSummaryRoundTripStable(t *testing.T) {
	sum := testSummary()
	b1, err := EncodeSummary(sum)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSummary(b1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := EncodeSummary(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("re-encode not byte-identical:\n b1: %s\n b2: %s", b1, b2)
	}
	if got.Replications[0].Makespan != sum.Replications[0].Makespan || got.Exec.Mean != sum.Exec.Mean {
		t.Fatalf("values drifted through the round trip: %+v", got)
	}
}

// TestDecodeSummaryStrict: a stored summary with fields this version
// does not know is an incompatible entry and must fail (degrading to a
// cache miss), not silently half-parse.
func TestDecodeSummaryStrict(t *testing.T) {
	if _, err := DecodeSummary([]byte(`{"name":"x","runs":1,"mystery_field":3}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := DecodeSummary([]byte(`{"name":"x"} trailing`)); err == nil {
		t.Fatal("trailing data accepted")
	}
	if _, err := DecodeSummary([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
	// And the happy path, via the wire form a real run produces.
	b, err := EncodeSummary(testSummary())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSummary(b); err != nil {
		t.Fatal(err)
	}
	// Whitespace variance (a hand-edited or pretty-printed entry) still
	// decodes; only the canonical encoding is byte-stable.
	pretty := strings.ReplaceAll(string(b), ",", ", ")
	if _, err := DecodeSummary([]byte(pretty)); err != nil {
		t.Fatal(err)
	}
}
