package experiment

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/gram"
	"repro/internal/workload"
)

// TestSpecFromConfigRoundTrip pins the coordinator → worker hand-off:
// rendering a config to its wire form and resolving it back must
// preserve the fingerprint (the whole multi-node dedupe keys on it),
// for presets, inline workloads, custom grids, overrides and both
// background regimes.
func TestSpecFromConfigRoundTrip(t *testing.T) {
	wm, err := workload.SpecByName("Wm", 3)
	if err != nil {
		t.Fatal(err)
	}
	bg := PWABackground()
	cases := map[string]Config{
		"defaults": {
			Workload: smallWorkload("small", 10, 60, 1)(1),
			Grid:     smallGrid,
			Runs:     2,
			Seed:     1,
		},
		"preset-with-background": {
			Workload: wm,
			Policy:   "EGS",
			Approach: "PWA",
			Seed:     3,
		},
		"overrides": {
			Workload:            smallWorkload("ov", 5, 45, 0.5)(9),
			Grid:                smallGrid,
			Placement:           "CF",
			Runs:                3,
			Seed:                9,
			PollInterval:        7,
			SamplePeriod:        11,
			GrowthReserve:       2,
			Horizon:             9999,
			GramOverride:        &gram.Config{SubmitLatency: 1, ReleaseLatency: 2, SubmitConcurrency: 3},
			Background:          &bg,
			DisableMalleability: true,
		},
		"no-background": {
			Workload:     smallWorkload("nb", 4, 30, 1)(2),
			Grid:         smallGrid,
			NoBackground: true,
			Seed:         2,
		},
	}
	for name, cfg := range cases {
		want, err := Fingerprint(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		spec, err := SpecFromConfig(cfg)
		if err != nil {
			t.Fatalf("%s: SpecFromConfig: %v", name, err)
		}
		// The wire form must survive the strict decoder a worker runs.
		b, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		decoded, err := DecodeConfigSpec(bytes.NewReader(b))
		if err != nil {
			t.Fatalf("%s: decode of own wire form: %v", name, err)
		}
		back, err := decoded.Config()
		if err != nil {
			t.Fatalf("%s: resolve of own wire form: %v", name, err)
		}
		got, err := Fingerprint(back)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != want {
			t.Errorf("%s: fingerprint changed across the wire: %s != %s", name, got, want)
		}
	}
}

// TestStreamResultFromSummary pins the remote result shim: accessors
// and Summary() read the precomputed wire summary, and re-encoding is
// byte-identical to the original.
func TestStreamResultFromSummary(t *testing.T) {
	cfg := Config{
		Workload: smallWorkload("small", 8, 60, 1)(1),
		Grid:     smallGrid,
		Runs:     2,
		Seed:     1,
	}
	local, err := RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum := local.Summary()
	remote := StreamResultFromSummary(cfg, sum)
	if remote.Jobs() != local.Jobs() || remote.Malleable() != local.Malleable() ||
		remote.Rejected() != local.Rejected() ||
		remote.MeanExecution() != local.MeanExecution() ||
		remote.MeanResponse() != local.MeanResponse() ||
		remote.MeanUtilization() != local.MeanUtilization() ||
		remote.TotalOps() != local.TotalOps() {
		t.Fatal("rebuilt result accessors diverge from the local result")
	}
	a, err := EncodeSummary(local.Summary())
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeSummary(remote.Summary())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("summary encoding changed through StreamResultFromSummary")
	}
}
