package experiment

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/workload"
)

// smallGrid keeps integration tests fast: two clusters, 48+32 nodes.
func smallGrid() *cluster.Multicluster {
	return cluster.NewMulticluster(cluster.New("A", 48), cluster.New("B", 32))
}

// smallWorkload is a scaled-down Wm.
func smallWorkload(name string, n int, inter float64, mall float64) func(uint64) workload.Spec {
	return func(seed uint64) workload.Spec {
		return workload.Spec{
			Name: name, Jobs: n, InterArrival: inter,
			MalleableFraction: mall, InitialSize: 2, RigidSize: 2, Seed: seed,
		}
	}
}

func TestRunOnceCompletesAllJobs(t *testing.T) {
	cfg := Config{
		Workload: smallWorkload("small", 20, 60, 1)(1),
		Policy:   "FPSMA",
		Approach: "PRA",
		Grid:     smallGrid,
		Runs:     1,
	}
	res, err := RunOnce(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 20 {
		t.Fatalf("records = %d, want 20", len(res.Records))
	}
	if res.Rejected != 0 {
		t.Fatalf("rejected = %d", res.Rejected)
	}
	if res.Makespan <= 0 {
		t.Fatal("makespan not recorded")
	}
	if res.GrowOps.Len() == 0 {
		t.Fatal("no grow operations under PRA with idle capacity")
	}
}

func TestRunPoolsRuns(t *testing.T) {
	cfg := Config{
		Workload: smallWorkload("small", 10, 60, 1)(1),
		Policy:   "EGS",
		Approach: "PRA",
		Grid:     smallGrid,
		Runs:     2,
		Seed:     5,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 2 {
		t.Fatalf("runs = %d", len(res.Runs))
	}
	if len(res.Pooled) != 20 {
		t.Fatalf("pooled = %d", len(res.Pooled))
	}
	if res.Runs[0].Seed == res.Runs[1].Seed {
		t.Fatal("runs share a seed")
	}
	if res.MeanExecution() <= 0 || res.MeanResponse() <= 0 {
		t.Fatal("aggregate stats empty")
	}
}

func TestRunOnceDeterministic(t *testing.T) {
	cfg := Config{
		Workload: smallWorkload("small", 10, 60, 0.5)(1),
		Policy:   "FPSMA",
		Approach: "PWA",
		Grid:     smallGrid,
	}
	a, err := RunOnce(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOnce(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs:\n%+v\n%+v", i, a.Records[i], b.Records[i])
		}
	}
}

func TestUnknownNamesFail(t *testing.T) {
	base := Config{Workload: smallWorkload("w", 2, 10, 1)(1), Grid: smallGrid}
	bad := []Config{
		{Workload: base.Workload, Grid: smallGrid, Policy: "NOPE"},
		{Workload: base.Workload, Grid: smallGrid, Approach: "NOPE"},
		{Workload: base.Workload, Grid: smallGrid, Placement: "NOPE"},
	}
	for i, cfg := range bad {
		if _, err := RunOnce(cfg, 1); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	fig := Fig6()
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	ft, gadget := fig.Series[0], fig.Series[1]
	// Anchors from the paper: FT 120 s at 2 procs, GADGET 600 s at 2 procs.
	if ft.Points[1].Percent != 120 || gadget.Points[1].Percent != 600 {
		t.Fatalf("anchors: FT(2)=%g GADGET(2)=%g", ft.Points[1].Percent, gadget.Points[1].Percent)
	}
	if !strings.Contains(fig.Render(), "Gadget2") {
		t.Fatal("render missing series")
	}
	if !strings.Contains(fig.CSV(), "FT") {
		t.Fatal("csv missing header")
	}
}

func TestTable1(t *testing.T) {
	tbl := Table1()
	for _, want := range []string{"Delft", "68", "272", "Myri-10G"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("Table I missing %q:\n%s", want, tbl)
		}
	}
}

func TestRunSetProducesAllFigures(t *testing.T) {
	combos := []Combo{
		{Policy: "FPSMA", Workload: smallWorkload("Wm", 12, 40, 1), Label: "FPSMA/Wm"},
		{Policy: "EGS", Workload: smallWorkload("Wm", 12, 40, 1), Label: "EGS/Wm"},
	}
	set, err := RunSet("PRA", combos, Config{Grid: smallGrid, Runs: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Labels) != 2 {
		t.Fatalf("labels = %v", set.Labels)
	}
	figs := []Figure{
		set.FigSizesAvg("7a"),
		set.FigSizesMax("7b"),
		set.FigExecTimes("7c"),
		set.FigResponseTimes("7d"),
		set.FigUtilization("7e", 0, 1000, 100),
		set.FigOps("7f", 0, 1000, 100),
	}
	for _, f := range figs {
		if len(f.Series) != 2 {
			t.Fatalf("figure %s has %d series", f.ID, len(f.Series))
		}
		for _, s := range f.Series {
			if len(s.Points) == 0 {
				t.Fatalf("figure %s series %s empty", f.ID, s.Label)
			}
		}
		if f.Render() == "" || f.CSV() == "" {
			t.Fatalf("figure %s does not render", f.ID)
		}
	}
	if !strings.Contains(set.SummaryTable(), "FPSMA/Wm") {
		t.Fatal("summary table missing combo")
	}
}

func TestCDFFiguresEndAtHundredPercent(t *testing.T) {
	combos := []Combo{{Policy: "FPSMA", Workload: smallWorkload("Wm", 8, 40, 1), Label: "FPSMA/Wm"}}
	set, err := RunSet("PRA", combos, Config{Grid: smallGrid, Runs: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	fig := set.FigExecTimes("7c")
	pts := fig.Series[0].Points
	if got := pts[len(pts)-1].Percent; got != 100 {
		t.Fatalf("CDF tail = %g, want 100", got)
	}
}

func TestDisableMalleabilityBaseline(t *testing.T) {
	cfg := Config{
		Workload:            smallWorkload("rigid-ish", 10, 60, 1)(1),
		Grid:                smallGrid,
		DisableMalleability: true,
	}
	res, err := RunOnce(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOps != 0 {
		t.Fatalf("plain KOALA performed %g malleability ops", res.TotalOps)
	}
	// Jobs stay at their initial size.
	for _, r := range res.Records {
		if r.MaxProcs != 2 {
			t.Fatalf("job %s reached %d procs without a manager", r.ID, r.MaxProcs)
		}
	}
}

func TestBackgroundLoadIntegration(t *testing.T) {
	cfg := Config{
		Workload:   smallWorkload("bg", 10, 60, 1)(1),
		Grid:       smallGrid,
		Policy:     "EGS",
		Approach:   "PRA",
		Background: &workload.BackgroundSpec{MeanInterArrival: 100, MeanDuration: 200, MaxNodes: 10},
	}
	res, err := RunOnce(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 10 {
		t.Fatalf("records = %d", len(res.Records))
	}
}
