package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gram"
	"repro/internal/koala"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Prepared is the share-once half of an experiment point: every piece of
// RunOnce's setup that does not depend on the replication seed — resolved
// policy/approach/placement lookups, the GRAM latency model, the prepared
// workload spec (rendered IDs, resolved profiles) and the shared site
// index table. One Prepared is built per sweep point and reused read-only
// by all of its replications; per-replication state (engine, grid, sites,
// scheduler, RNG streams) is still built fresh per seed, so results are
// byte-identical to the single-shot RunOnce path — which is in fact the
// same code: RunOnce is Prepare followed by one Prepared.RunOnce.
//
// A Prepared is immutable after Prepare returns and safe for concurrent
// use by parallel replication workers.
type Prepared struct {
	cfg Config

	pol     core.Policy
	apr     core.Approach
	place   koala.PlacementPolicy
	gramCfg gram.Config
	wl      *workload.PreparedSpec
	idx     *koala.SharedIndex

	// span is the measured workload's submission window, used to schedule
	// the background-load stop.
	span float64
}

// Prepare validates cfg, applies defaults and precomputes the
// seed-independent setup. The returned Prepared serves any number of
// replications via Prepared.RunOnce.
func Prepare(cfg Config) (*Prepared, error) {
	cfg = cfg.withDefaults()

	pol, ok := core.PolicyByName(cfg.Policy)
	if !ok {
		return nil, fmt.Errorf("experiment: unknown policy %q", cfg.Policy)
	}
	apr, ok := core.ApproachByName(cfg.Approach)
	if !ok {
		return nil, fmt.Errorf("experiment: unknown approach %q", cfg.Approach)
	}
	place, err := koala.PolicyByName(cfg.Placement)
	if err != nil {
		return nil, err
	}
	wl, err := workload.PrepareSpec(cfg.Workload)
	if err != nil {
		return nil, err
	}
	gramCfg := gram.DefaultConfig()
	if cfg.GramOverride != nil {
		gramCfg = *cfg.GramOverride
	}

	// The site index depends only on the grid topology (cluster names, in
	// order), which every cfg.Grid() call reproduces; one probe build here
	// funds the shared name↔index table for all replications.
	probe := cfg.Grid()
	names := make([]string, 0, len(probe.Clusters()))
	for _, c := range probe.Clusters() {
		names = append(names, c.Name())
	}

	return &Prepared{
		cfg:     cfg,
		pol:     pol,
		apr:     apr,
		place:   place,
		gramCfg: gramCfg,
		wl:      wl,
		idx:     koala.PrepareIndex(names),
		span:    float64(cfg.Workload.Jobs) * cfg.Workload.InterArrival,
	}, nil
}

// Config returns the point's config with defaults applied.
func (p *Prepared) Config() Config { return p.cfg }

// RunOnce executes one seeded replication against the prepared setup.
// Everything stateful — engine, grid, sites, scheduler, collector — is
// built fresh for this seed; only the immutable prepared parts are shared.
func (p *Prepared) RunOnce(seed uint64) (*RunResult, error) {
	cfg := p.cfg
	wl := p.wl.Generate(seed)

	sys := core.NewSystem(core.SystemConfig{
		Grid: cfg.Grid(),
		Gram: p.gramCfg,
		Scheduler: koala.Config{
			Policy:        p.place,
			PollInterval:  cfg.PollInterval,
			MRunnerConfig: runner.DefaultMRunnerConfig(),
			Index:         p.idx,
		},
		Manager: core.ManagerConfig{
			Policy:        p.pol,
			Approach:      p.apr,
			GrowthReserve: cfg.GrowthReserve,
			Stats:         cfg.SimStats,
		},
		DisableManager: cfg.DisableMalleability,
	})
	if cfg.SimStats != nil {
		// Guarded here, not in SetStats: boxing a nil *SimStats in the
		// interface would defeat the engine's nil check.
		sys.Engine.SetStats(cfg.SimStats)
	}
	col := metrics.NewCollector(sys.Engine, sys.Scheduler, sys.Grid, cfg.SamplePeriod)
	sample := cfg.SamplePeriod
	if sample <= 0 {
		sample = 10
	}
	col.Reserve(cfg.Workload.Jobs, int((p.span+2000)/sample)+2)

	if cfg.Background != nil {
		bgSpec := *cfg.Background
		bgSpec.Seed = seed ^ 0xbadc0ffee
		bg, err := workload.StartBackground(sys.Engine, sys.Grid, bgSpec)
		if err != nil {
			return nil, err
		}
		// Local users stop arriving a little after the measured workload's
		// submission window so runs can drain (running sessions still
		// terminate normally).
		sys.Engine.At(p.span+2000, bg.Stop)
	}

	sub := workload.Submit(sys.Engine, wl, func(js koala.JobSpec) error {
		_, err := sys.Scheduler.Submit(js)
		return err
	})

	if err := sys.RunUntilDone(cfg.Horizon); err != nil {
		return nil, fmt.Errorf("experiment %s (seed %d): %w", cfg.Name, seed, err)
	}
	col.Stop()
	if len(sub.Errs()) > 0 {
		return nil, fmt.Errorf("experiment %s: %d submission errors, first: %v", cfg.Name, len(sub.Errs()), sub.Errs()[0])
	}

	res := &RunResult{
		Seed:        seed,
		Records:     col.Records(),
		Rejected:    len(col.Rejected()),
		Utilization: col.Utilization(),
		Makespan:    lastEnd(col.Records()),
	}
	if sys.Manager != nil {
		res.GrowOps = sys.Manager.GrowOps().Series()
		res.ShrinkOps = sys.Manager.ShrinkOps().Series()
		res.TotalOps = sys.Manager.GrowOps().Total() + sys.Manager.ShrinkOps().Total()
	} else {
		res.GrowOps = stats.NewTimeSeries()
		res.ShrinkOps = stats.NewTimeSeries()
	}
	return res, nil
}
