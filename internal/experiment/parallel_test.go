package experiment

import (
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/cluster"
)

// TestRunParallelismIsDeterministic is the regression test for the parallel
// sweep engine: for a fixed seed, running the replications serially and on
// an 8-worker pool must produce identical results — same run order, same
// seeds, and value-identical pooled records.
func TestRunParallelismIsDeterministic(t *testing.T) {
	base := Config{
		Workload: smallWorkload("det", 12, 50, 0.5)(1),
		Policy:   "FPSMA",
		Approach: "PWA",
		Grid:     smallGrid,
		Runs:     6,
		Seed:     11,
	}

	serial := base
	serial.Parallelism = 1
	pooled := base
	pooled.Parallelism = 8

	a, err := Run(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(pooled)
	if err != nil {
		t.Fatal(err)
	}

	if len(a.Runs) != len(b.Runs) {
		t.Fatalf("run counts differ: %d vs %d", len(a.Runs), len(b.Runs))
	}
	for i := range a.Runs {
		if a.Runs[i].Seed != b.Runs[i].Seed {
			t.Fatalf("run %d seed: serial %d vs parallel %d", i, a.Runs[i].Seed, b.Runs[i].Seed)
		}
		if a.Runs[i].Makespan != b.Runs[i].Makespan {
			t.Fatalf("run %d makespan: %g vs %g", i, a.Runs[i].Makespan, b.Runs[i].Makespan)
		}
		if a.Runs[i].TotalOps != b.Runs[i].TotalOps {
			t.Fatalf("run %d ops: %g vs %g", i, a.Runs[i].TotalOps, b.Runs[i].TotalOps)
		}
	}
	if len(a.Pooled) != len(b.Pooled) {
		t.Fatalf("pooled lengths differ: %d vs %d", len(a.Pooled), len(b.Pooled))
	}
	for i := range a.Pooled {
		if a.Pooled[i] != b.Pooled[i] {
			t.Fatalf("pooled record %d differs:\nserial:   %+v\nparallel: %+v", i, a.Pooled[i], b.Pooled[i])
		}
	}
}

// TestRunSetParallelismIsDeterministic extends the determinism guarantee to
// the sweep-point fan-out: label order and every combo's pooled records are
// independent of the worker count.
func TestRunSetParallelismIsDeterministic(t *testing.T) {
	combos := []Combo{
		{Policy: "FPSMA", Workload: smallWorkload("Wm", 10, 40, 1), Label: "FPSMA/Wm"},
		{Policy: "EGS", Workload: smallWorkload("Wm", 10, 40, 1), Label: "EGS/Wm"},
		{Policy: "EQUI", Workload: smallWorkload("Wm", 10, 40, 1), Label: "EQUI/Wm"},
	}
	base := Config{Grid: smallGrid, Runs: 2, Seed: 7}

	serialBase := base
	serialBase.Parallelism = 1
	parallelBase := base
	parallelBase.Parallelism = 8

	a, err := RunSet("PRA", combos, serialBase)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSet("PRA", combos, parallelBase)
	if err != nil {
		t.Fatal(err)
	}

	if strings.Join(a.Labels, ",") != strings.Join(b.Labels, ",") {
		t.Fatalf("label order differs: %v vs %v", a.Labels, b.Labels)
	}
	for _, label := range a.Labels {
		ra, rb := a.Results[label], b.Results[label]
		if len(ra.Pooled) != len(rb.Pooled) {
			t.Fatalf("%s: pooled lengths differ: %d vs %d", label, len(ra.Pooled), len(rb.Pooled))
		}
		for i := range ra.Pooled {
			if ra.Pooled[i] != rb.Pooled[i] {
				t.Fatalf("%s: pooled record %d differs", label, i)
			}
		}
	}
}

// TestRunStopsPoolOnFirstFailure checks cancellation: when a replication
// fails (here: a horizon far too short for any job to finish), the pool
// stops dispatching further replications instead of grinding through all
// of them. The Grid hook runs once per started replication, so it counts
// how many RunOnce calls were dispatched.
func TestRunStopsPoolOnFirstFailure(t *testing.T) {
	var started atomic.Int64
	cfg := Config{
		Workload: smallWorkload("stuck", 10, 10, 1)(1),
		Policy:   "FPSMA",
		Approach: "PRA",
		Grid: func() *cluster.Multicluster {
			started.Add(1)
			return smallGrid()
		},
		Runs:        64,
		Parallelism: 4,
		Horizon:     1, // no job can reach a terminal state this early
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("Run succeeded with an impossible horizon")
	} else if !strings.Contains(err.Error(), "not terminal") {
		t.Fatalf("unexpected error: %v", err)
	}
	// The first failure cancels dispatch; only the replications the 4
	// workers had already picked up (plus at most one racing each worker)
	// may have started.
	if got := started.Load(); got > 16 {
		t.Fatalf("%d of 64 replications started after the first failure", got)
	}
}
