package experiment

import (
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/stats"
)

// These tests pin the paper's qualitative findings (§VII) at full scale:
// the DAS-3 grid, 300-job workloads. They are the reproduction's regression
// suite — if a refactor flips who wins, these fail.

var (
	praOnce sync.Once
	praSet  *Set
	praErr  error

	pwaOnce sync.Once
	pwaSet  *Set
	pwaErr  error
)

func praResults(t *testing.T) *Set {
	t.Helper()
	praOnce.Do(func() {
		praSet, praErr = RunSet("PRA", PRACombos(), Config{Runs: 2, Seed: 1})
	})
	if praErr != nil {
		t.Fatal(praErr)
	}
	return praSet
}

func pwaResults(t *testing.T) *Set {
	t.Helper()
	pwaOnce.Do(func() {
		pwaSet, pwaErr = RunSet("PWA", PWACombos(), Config{Runs: 2, Seed: 1})
	})
	if pwaErr != nil {
		t.Fatal(pwaErr)
	}
	return pwaSet
}

func TestClaimAllJobsComplete(t *testing.T) {
	for _, set := range []*Set{praResults(t), pwaResults(t)} {
		for _, label := range set.Labels {
			r := set.Results[label]
			want := 300 * len(r.Runs)
			if len(r.Pooled) != want {
				t.Errorf("%s/%s: %d records, want %d", set.Approach, label, len(r.Pooled), want)
			}
			for _, run := range r.Runs {
				if run.Rejected != 0 {
					t.Errorf("%s/%s: %d rejected jobs", set.Approach, label, run.Rejected)
				}
			}
		}
	}
}

// §VII-A: "the Wm workload results in better performance than the Wmr
// workload, which means that malleability makes applications actually
// perform better" (Figs. 7c, 7d).
func TestClaimMalleabilityImprovesPerformance(t *testing.T) {
	set := praResults(t)
	for _, policy := range []string{"FPSMA", "EGS"} {
		wm := set.Results[policy+"/Wm"]
		wmr := set.Results[policy+"/Wmr"]
		if wm.MeanExecution() >= wmr.MeanExecution() {
			t.Errorf("%s: exec Wm %.1f ≥ Wmr %.1f", policy, wm.MeanExecution(), wmr.MeanExecution())
		}
		if wm.MeanResponse() >= wmr.MeanResponse() {
			t.Errorf("%s: response Wm %.1f ≥ Wmr %.1f", policy, wm.MeanResponse(), wmr.MeanResponse())
		}
	}
}

// stuckAtMin returns the fraction of the records that never grew beyond
// their minimal size of 2 processors.
func stuckAtMin(recs []metrics.JobRecord) float64 {
	if len(recs) == 0 {
		return 0
	}
	n := 0
	for _, rec := range recs {
		if rec.MaxProcs <= 2 {
			n++
		}
	}
	return float64(n) / float64(len(recs))
}

// §VII-A: "EGS makes all jobs grow every time it is initiated. Hence, even
// jobs that have been started recently grow, and only few jobs do not grow
// beyond their minimal size" — while FPSMA leaves short applications stuck
// at the minimum (Fig. 7a).
func TestClaimEGSLeavesFewerJobsStuck(t *testing.T) {
	set := praResults(t)
	egs := stuckAtMin(set.Results["EGS/Wm"].MalleableRecords())
	fpsma := stuckAtMin(set.Results["FPSMA/Wm"].MalleableRecords())
	if egs >= fpsma {
		t.Errorf("stuck-at-min fraction: EGS %.2f ≥ FPSMA %.2f", egs, fpsma)
	}
}

// §VII-A: with FPSMA, short applications (FT, 1–2 minutes) terminate before
// it is their turn to grow far more often than the long GADGET-2 jobs.
func TestClaimFPSMAStrandsShortJobs(t *testing.T) {
	set := praResults(t)
	recs := set.Results["FPSMA/Wm"].MalleableRecords()
	ft := stuckAtMin(metrics.OnlyApp(recs, "FT"))
	gadget := stuckAtMin(metrics.OnlyApp(recs, "GADGET2"))
	if ft <= gadget {
		t.Errorf("stuck-at-min: FT %.2f ≤ GADGET %.2f under FPSMA", ft, gadget)
	}
}

// §VII-A: "the number of grow operations is much higher when all jobs are
// malleable (workload Wm). It is also higher with the EGS policy than with
// FPSMA" (Fig. 7f).
func TestClaimGrowMessageCounts(t *testing.T) {
	set := praResults(t)
	egsWm := set.Results["EGS/Wm"].TotalOps()
	fpsmaWm := set.Results["FPSMA/Wm"].TotalOps()
	egsWmr := set.Results["EGS/Wmr"].TotalOps()
	if egsWm <= fpsmaWm {
		t.Errorf("grow messages: EGS/Wm %.0f ≤ FPSMA/Wm %.0f", egsWm, fpsmaWm)
	}
	if egsWm <= egsWmr {
		t.Errorf("grow messages: EGS/Wm %.0f ≤ EGS/Wmr %.0f", egsWm, egsWmr)
	}
}

// §VII-A: PRA never shrinks.
func TestClaimPRANeverShrinks(t *testing.T) {
	set := praResults(t)
	for _, label := range set.Labels {
		for _, run := range set.Results[label].Runs {
			if run.ShrinkOps.Len() != 0 {
				t.Errorf("%s: PRA produced shrink operations", label)
			}
		}
	}
}

// §VII-B: under PWA with the loaded workloads "many of the jobs are stuck
// at their minimal size, whatever the workload and the policy" — more than
// under PRA (Figs. 7a vs 8a).
func TestClaimPWAStrandsJobsAtMinimum(t *testing.T) {
	pra := praResults(t)
	pwa := pwaResults(t)
	praStuck := stuckAtMin(pra.Results["FPSMA/Wm"].MalleableRecords())
	pwaStuck := stuckAtMin(pwa.Results["FPSMA/W'm"].MalleableRecords())
	if pwaStuck <= praStuck {
		t.Errorf("stuck-at-min: PWA %.2f ≤ PRA %.2f", pwaStuck, praStuck)
	}
}

// §VII-B: GADGET-2 execution times under PWA are notably higher than under
// PRA (about 30% in the paper, Fig. 8c).
func TestClaimPWAExecutionTimesHigher(t *testing.T) {
	pra := praResults(t)
	pwa := pwaResults(t)
	g := func(r *Result) float64 {
		return stats.Mean(metrics.ExecTimesOf(metrics.OnlyApp(r.Pooled, "GADGET2")))
	}
	for _, policy := range []string{"FPSMA", "EGS"} {
		praT := g(pra.Results[policy+"/Wm"])
		pwaT := g(pwa.Results[policy+"/W'm"])
		if pwaT <= praT {
			t.Errorf("%s: GADGET exec PWA %.1f ≤ PRA %.1f", policy, pwaT, praT)
		}
	}
}

// §VII-B: PWA performs mandatory shrinks, and EGS sends more malleability
// messages than FPSMA (Fig. 8f).
func TestClaimPWAShrinksAndEGSMessagesDominate(t *testing.T) {
	set := pwaResults(t)
	shrank := false
	for _, label := range set.Labels {
		for _, run := range set.Results[label].Runs {
			if run.ShrinkOps.Len() > 0 {
				shrank = true
			}
		}
	}
	if !shrank {
		t.Error("PWA never shrank under load")
	}
	if egs, fpsma := set.Results["EGS/W'm"].TotalOps(), set.Results["FPSMA/W'm"].TotalOps(); egs <= fpsma {
		t.Errorf("messages: EGS/W'm %.0f ≤ FPSMA/W'm %.0f", egs, fpsma)
	}
}

// §VII-B: PWA response times under load carry substantial wait, far beyond
// the lightly loaded PRA regime where jobs start almost immediately
// (Figs. 7d vs 8d; the paper attributes the difference to "higher wait
// time").
func TestClaimPWAWaitTimesExceedPRA(t *testing.T) {
	pra := praResults(t)
	pwa := pwaResults(t)
	meanWait := func(r *Result) float64 {
		var ws []float64
		for _, rec := range r.Pooled {
			ws = append(ws, rec.WaitTime)
		}
		return stats.Mean(ws)
	}
	for _, policy := range []string{"FPSMA", "EGS"} {
		praW := meanWait(pra.Results[policy+"/Wm"])
		pwaW := meanWait(pwa.Results[policy+"/W'm"])
		if pwaW <= praW {
			t.Errorf("%s: wait PWA %.1f ≤ PRA %.1f", policy, pwaW, praW)
		}
	}
}

// Utilisation sanity: the platform is busier under the loaded PWA
// workloads than the utilisation floor, and never exceeds the 272 nodes of
// DAS-3 (Figs. 7e, 8e).
func TestClaimUtilizationBounds(t *testing.T) {
	for _, set := range []*Set{praResults(t), pwaResults(t)} {
		for _, label := range set.Labels {
			for _, run := range set.Results[label].Runs {
				if peak := run.Utilization.MaxValue(); peak > 272 {
					t.Errorf("%s/%s: peak utilisation %g exceeds the testbed", set.Approach, label, peak)
				}
				if run.Utilization.MaxValue() == 0 {
					t.Errorf("%s/%s: utilisation never rose", set.Approach, label)
				}
			}
		}
	}
}
